/// \file bench_rewrite.cpp
/// Cost of the §4.1/§4.2 rewrite phases and the §4.3 March synthesis as the
/// GTS grows — supporting the paper's claim that the post-ATSP
/// transformations are of linear complexity.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/gts.hpp"
#include "core/march_builder.hpp"
#include "core/rewrite.hpp"
#include "core/test_pattern_graph.hpp"
#include "sim/two_cell_sim.hpp"
#include "util/table.hpp"

namespace {

using namespace mtg;
using core::Gts;

/// A chain of k copies of the four CFid<^,*> patterns (larger lists reuse
/// the same shapes; what matters here is GTS length).
Gts chain_of(int repeats) {
    std::vector<fault::TestPattern> chain;
    const auto classes = fault::extract_tp_classes(
        fault::parse_fault_kinds("CFid<^,0>,CFid<^,1>"));
    for (int r = 0; r < repeats; ++r)
        for (const auto& cls : classes)
            chain.push_back(cls.alternatives.front());
    return core::concatenate_tps(chain);
}

core::GtsValidator gate() {
    const auto instances =
        fault::instantiate(fault::parse_fault_kinds("CFid<^,0>,CFid<^,1>"));
    return [instances](const Gts& gts) {
        const auto ops = gts.ops();
        if (!sim::gts_well_formed(ops)) return false;
        for (const auto& inst : instances)
            if (!sim::gts_detects(ops, inst)) return false;
        return true;
    };
}

void print_summary() {
    TextTable table;
    table.set_header({"TP chain", "GTS ops", "after minimise", "March n"});
    for (int repeats : {1, 2, 4, 8}) {
        const Gts raw = chain_of(repeats);
        const Gts reordered = core::reorder(raw);
        const Gts minimised = core::minimise(reordered, gate());
        const auto test = core::build_march(minimised);
        table.add_row({std::to_string(repeats * 4) + " TPs",
                       std::to_string(raw.op_count()),
                       std::to_string(minimised.op_count()),
                       std::to_string(test.complexity()) + "n"});
    }
    std::printf("Rewrite pipeline on growing GTSs (repeated CFid<^,*> "
                "chains):\n\n%s\n", table.str().c_str());
}

void BM_Reorder(benchmark::State& state) {
    const Gts raw = chain_of(static_cast<int>(state.range(0)));
    for (auto _ : state) benchmark::DoNotOptimize(core::reorder(raw));
    state.SetLabel(std::to_string(raw.op_count()) + " ops");
}
BENCHMARK(BM_Reorder)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_Minimise(benchmark::State& state) {
    const Gts reordered = core::reorder(chain_of(static_cast<int>(state.range(0))));
    const auto validator = gate();
    for (auto _ : state)
        benchmark::DoNotOptimize(core::minimise(reordered, validator));
    state.SetLabel(std::to_string(reordered.op_count()) + " ops");
}
BENCHMARK(BM_Minimise)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_BuildMarch(benchmark::State& state) {
    const Gts reordered = core::reorder(chain_of(static_cast<int>(state.range(0))));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::build_march(reordered));
    state.SetLabel(std::to_string(reordered.op_count()) + " ops");
}
BENCHMARK(BM_BuildMarch)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
    print_summary();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
