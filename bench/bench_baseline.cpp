/// \file bench_baseline.cpp
/// The §2 comparison: our TPG/ATSP generator versus the prior-art
/// exhaustive transition-tree enumeration. Prints the head-to-head wall
/// clock per fault list and the exponential growth of the enumeration
/// space, then times both approaches.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "baseline/exhaustive.hpp"
#include "core/generator.hpp"
#include "util/table.hpp"

namespace {

const char* kLists[] = {"SAF", "SAF,TF", "CFin<^>", "CFin"};

void print_comparison() {
    mtg::TextTable table;
    table.set_header({"Fault list", "ours n", "ours (s)", "exhaustive n",
                      "exhaustive (s)", "tree nodes"});
    mtg::core::Generator generator;
    for (const char* list : kLists) {
        const auto kinds = mtg::fault::parse_fault_kinds(list);
        const auto ours = generator.generate(kinds);

        mtg::baseline::ExhaustiveOptions options;
        options.max_complexity = ours.valid ? ours.complexity : 6;
        const auto exhaustive =
            mtg::baseline::exhaustive_search(kinds, options);

        char ours_s[32], ex_s[32];
        std::snprintf(ours_s, sizeof ours_s, "%.3f", ours.seconds);
        std::snprintf(ex_s, sizeof ex_s, "%.3f", exhaustive.seconds);
        table.add_row(
            {list, std::to_string(ours.complexity) + "n", ours_s,
             exhaustive.test
                 ? std::to_string(exhaustive.test->complexity()) + "n"
                 : std::string("none"),
             ex_s, std::to_string(exhaustive.nodes_explored)});
    }
    std::printf("TPG/ATSP generator vs exhaustive transition-tree search "
                "(§2 baseline):\n\n%s\n", table.str().c_str());

    mtg::TextTable growth;
    growth.set_header({"complexity bound", "well-formed March candidates"});
    for (int c = 2; c <= 7; ++c)
        growth.add_row({std::to_string(c),
                        std::to_string(mtg::baseline::count_candidates(c))});
    std::printf("Transition-tree level sizes (the exponential blow-up the "
                "paper criticises):\n\n%s\n", growth.str().c_str());
}

void BM_Ours(benchmark::State& state) {
    const auto kinds = mtg::fault::parse_fault_kinds(kLists[state.range(0)]);
    mtg::core::Generator generator;
    for (auto _ : state) benchmark::DoNotOptimize(generator.generate(kinds));
    state.SetLabel(kLists[state.range(0)]);
}
BENCHMARK(BM_Ours)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_Exhaustive(benchmark::State& state) {
    const auto kinds = mtg::fault::parse_fault_kinds(kLists[state.range(0)]);
    mtg::baseline::ExhaustiveOptions options;
    options.max_complexity = 5;
    for (auto _ : state)
        benchmark::DoNotOptimize(mtg::baseline::exhaustive_search(kinds,
                                                                  options));
    state.SetLabel(kLists[state.range(0)]);
}
BENCHMARK(BM_Exhaustive)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_comparison();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
