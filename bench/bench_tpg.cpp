/// \file bench_tpg.cpp
/// Regenerates Figure 4 (the Test Pattern Graph for {⟨↑,1⟩, ⟨↑,0⟩}) and the
/// §4 worked example (GTS and the 8n March test), then times TPG
/// construction and minimum-path extraction as the fault list grows.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/gts.hpp"
#include "core/march_builder.hpp"
#include "core/rewrite.hpp"
#include "core/test_pattern_graph.hpp"
#include "fault/test_pattern.hpp"

namespace {

using mtg::core::TestPatternGraph;
using mtg::fault::TestPattern;

std::vector<TestPattern> patterns_for(const std::string& list) {
    std::vector<TestPattern> tps;
    for (const auto& cls :
         mtg::fault::extract_tp_classes(mtg::fault::parse_fault_kinds(list)))
        tps.push_back(cls.alternatives.front());
    return tps;
}

void print_figure4() {
    const auto tps = patterns_for("CFid<^,1>,CFid<^,0>");
    const TestPatternGraph tpg(tps);
    std::printf("Figure 4 — Test Pattern Graph for {<^,1>, <^,0>}\n\n%s\n",
                tpg.str().c_str());

    const auto path = tpg.solve(true);
    if (!path) return;
    std::vector<TestPattern> chain;
    for (int v : path->order) chain.push_back(tps[static_cast<std::size_t>(v)]);
    const mtg::core::Gts gts =
        mtg::core::reorder(mtg::core::concatenate_tps(chain));
    std::printf("GTS (cost %lld): %s\n",
                static_cast<long long>(path->cost), gts.str().c_str());
    const auto march = mtg::core::build_march(gts);
    std::printf("March test: %s  (%dn; the paper's §4.3 example reports "
                "8n)\n\n",
                march.str(mtg::march::Notation::Unicode).c_str(),
                march.complexity());
}

const char* kLists[] = {
    "CFid<^,0>",
    "CFid<^,1>,CFid<^,0>",
    "CFid",
    "CFid,CFin",
    "SAF,TF,ADF,CFin,CFid",
    "SAF,TF,ADF,CFin,CFid,CFst",
};

void BM_TpgBuild(benchmark::State& state) {
    const auto tps = patterns_for(kLists[state.range(0)]);
    for (auto _ : state) {
        TestPatternGraph tpg(tps);
        benchmark::DoNotOptimize(tpg.cost_matrix());
    }
    state.SetLabel(std::string(kLists[state.range(0)]) + " (" +
                   std::to_string(tps.size()) + " nodes)");
}
BENCHMARK(BM_TpgBuild)->DenseRange(0, 5);

void BM_TpgSolve(benchmark::State& state) {
    const auto tps = patterns_for(kLists[state.range(0)]);
    const TestPatternGraph tpg(tps);
    for (auto _ : state) benchmark::DoNotOptimize(tpg.solve(true));
    state.SetLabel(std::string(kLists[state.range(0)]) + " (" +
                   std::to_string(tps.size()) + " nodes)");
}
BENCHMARK(BM_TpgSolve)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_figure4();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
