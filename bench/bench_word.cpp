/// \file bench_word.cpp
/// Word-oriented extension: coverage of solid vs counting backgrounds on
/// intra-word coupling faults, simulation cost versus word width, and the
/// scalar-vs-packed kernel head-to-head (emits a BENCH_word.json summary
/// line mirroring bench_sim's).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_timing.hpp"

#include "engine/engine.hpp"
#include "march/library.hpp"
#include "net/remote_backend.hpp"
#include "net/worker.hpp"
#include "sim/lane_dispatch.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "word/word_batch_runner.hpp"
#include "word/word_march.hpp"
#include "word/word_trace.hpp"

namespace {

using namespace mtg;
using benchutil::seconds_per_sweep;

/// Sparse observation grids (PR 8), three legs. Runs FIRST in main():
/// ru_maxrss is monotonic, so the RSS head-to-head must precede anything
/// that inflates the process high-water mark, and within the leg the
/// sparse run must precede the dense one.
void print_sparse_grids() {
    const auto& test = march::march_c_minus();
    util::ThreadPool serial(1);

    // Leg 1 — trace memory at words=2048 × width=8: the dense fallback
    // materialises the full (background × site × word × bit) slab, the
    // sparse runs hold only the touched cells. Explicit W=8 so the block
    // width (and so the dense slab) matches the production shape.
    word::WordRunOptions big;
    big.words = 2048;
    big.width = 8;
    const auto big_backgrounds = word::counting_backgrounds(big.width);
    std::vector<word::InjectedBitFault> big_population;
    big_population.push_back(
        word::InjectedBitFault::single(fault::FaultKind::Saf0, {0, 0}));
    big_population.push_back(word::InjectedBitFault::coupling(
        fault::FaultKind::CfidUp1, {100, 3}, {2000, 3}));
    big_population.push_back(word::InjectedBitFault::coupling(
        fault::FaultKind::CfinDown, {1024, 1}, {1024, 6}));
    const word::WordBatchRunner big_runner(test, big_backgrounds, big,
                                           &serial, 8);
    // Warm up once so the (path-independent) simulation scratch — plane
    // vectors, per-fault tables, result buffers — is already in the
    // baseline; the deltas below then isolate the trace-grid memory,
    // which is what the sparse runs change.
    (void)big_runner.run(big_population);
    const double rss_start = benchutil::peak_rss_mb();
    const auto sparse_traces = big_runner.run(big_population);
    const double rss_sparse = benchutil::peak_rss_mb();
    sim::set_dense_trace_grids(true);
    const auto dense_traces = big_runner.run(big_population);
    sim::set_dense_trace_grids(false);
    const double rss_dense = benchutil::peak_rss_mb();
    if (dense_traces.size() != sparse_traces.size()) std::abort();
    // The high-water mark cannot shrink, so each delta is that leg's own
    // allocation ceiling; clamp to one page so the ratio stays finite.
    const double sparse_mb = std::max(rss_sparse - rss_start, 4.0 / 1024);
    const double dense_mb = std::max(rss_dense - rss_sparse, 4.0 / 1024);

    // Leg 2 — words=4096 × width=8 completes under the sparse grids (the
    // dense slab for this shape is not allocatable on a dev box).
    word::WordRunOptions huge;
    huge.words = 4096;
    huge.width = 8;
    std::vector<word::InjectedBitFault> huge_population = big_population;
    huge_population.push_back(word::InjectedBitFault::coupling(
        fault::FaultKind::CfidDown0, {4095, 7}, {0, 0}));
    const word::WordBatchRunner huge_runner(test, big_backgrounds, huge,
                                            &serial, 8);
    const double huge_s = seconds_per_sweep(
        [&] { return huge_runner.run(huge_population).size(); });
    const double huge_fps =
        static_cast<double>(huge_population.size()) / huge_s;

    // Leg 3 — throughput head-to-head on the existing 32 words × 16 bits
    // trace workload: the sparse path must not lose to the dense grid
    // where the dense grid is still comfortable.
    word::WordRunOptions wide;
    wide.words = 32;
    wide.width = 16;
    wide.max_any_expansion = 4;
    const auto wide_backgrounds = word::counting_backgrounds(wide.width);
    const auto wide_population =
        word::coverage_population(fault::FaultKind::CfidUp1, wide);
    const word::WordBatchRunner wide_runner(test, wide_backgrounds, wide,
                                            &serial);
    const double sparse_s = seconds_per_sweep(
        [&] { return wide_runner.run(wide_population).size(); });
    sim::set_dense_trace_grids(true);
    const double dense_s = seconds_per_sweep(
        [&] { return wide_runner.run(wide_population).size(); });
    sim::set_dense_trace_grids(false);
    const auto wide_faults = static_cast<double>(wide_population.size());
    const double sparse_fps = wide_faults / sparse_s;
    const double dense_fps = wide_faults / dense_s;

    std::printf(
        "Sparse observation grids (March C-, width 8):\n"
        "  trace RSS, words=2048   : dense %8.1f MiB   sparse %8.1f MiB "
        "(%.0fx smaller)\n"
        "  words=4096 extraction   : %12.0f faults/sec (dense: "
        "unallocatable)\n"
        "Trace throughput (March C-, 32 words x 16 bits, %zu placements, "
        "1 thread):\n"
        "  dense grid (PR4)        : %12.0f faults/sec\n"
        "  sparse runs             : %12.0f faults/sec  (%.2fx)\n\n",
        dense_mb, sparse_mb, dense_mb / sparse_mb, huge_fps,
        wide_population.size(), dense_fps, sparse_fps,
        sparse_fps / dense_fps);

    benchutil::JsonSummary summary("word");
    summary.field("workload", "sparse_grids")
        .field("march", "March C-")
        .field("rss_words", big.words)
        .field("rss_width", big.width)
        .field("trace_peak_rss_mb_before", dense_mb, 1)
        .field("trace_peak_rss_mb_after", sparse_mb, 1)
        .field("trace_rss_shrink", dense_mb / sparse_mb, 1)
        .field("huge_words", huge.words)
        .field("huge_population", huge_population.size())
        .field("huge_words_faults_per_sec", huge_fps)
        .field("sparse_words", wide.words)
        .field("sparse_width", wide.width)
        .field("sparse_population", wide_population.size())
        .field("dense_trace_faults_per_sec", dense_fps)
        .field("sparse_trace_faults_per_sec", sparse_fps)
        .field("sparse_vs_dense", sparse_fps / dense_fps, 2);
    summary.print();
}

/// Head-to-head: the per-fault scalar word sweep versus the word-lane
/// packed kernel on the exact covers_everywhere workload — CFid over the
/// counting backgrounds at width 8 (113 placements: 56 intra-word pairs,
/// 56 inter-word pairs, 1 cross pair) — plus a lane-width ablation on a
/// 32 words × 16 bits memory (1233 placements, ~20 plane words of lanes,
/// so the W=8 blocks actually fill; W=1 is the PR 2 packed baseline).
/// Emits a BENCH_word.json summary line (median-of-5 timings).
void print_scalar_vs_packed() {
    const auto& test = march::march_c_minus();
    word::WordRunOptions opts;  // 8 words × 8 bits
    const auto backgrounds = word::counting_backgrounds(opts.width);
    const auto population =
        word::coverage_population(fault::FaultKind::CfidUp1, opts);

    const double scalar_s = seconds_per_sweep([&] {
        bool all = true;
        for (const auto& fault : population)  // no short-circuit: every
            all &= word::detects(test, backgrounds, fault, opts);
        return all;  // fault must be simulated for a fair faults/sec
    });
    util::ThreadPool serial(1);
    const word::WordBatchRunner runner(test, backgrounds, opts, &serial);
    const double packed_s =
        seconds_per_sweep([&] { return runner.detects(population); });
    util::ThreadPool& pool = util::ThreadPool::global();
    const word::WordBatchRunner runner_mt(test, backgrounds, opts, &pool);
    const double packed_mt_s =
        seconds_per_sweep([&] { return runner_mt.detects(population); });

    // Lane-width ablation on a chunk-filling workload.
    word::WordRunOptions wide_opts;
    wide_opts.words = 32;
    wide_opts.width = 16;
    wide_opts.max_any_expansion = 4;
    const auto wide_backgrounds = word::counting_backgrounds(wide_opts.width);
    const auto wide_population =
        word::coverage_population(fault::FaultKind::CfidUp1, wide_opts);
    const word::WordBatchRunner runner_w1(test, wide_backgrounds, wide_opts,
                                          &serial, 1);
    const double w1_s = seconds_per_sweep(
        [&] { return runner_w1.detects(wide_population); });
    const int active_width = sim::active_lane_width();
    const word::WordBatchRunner runner_wide(test, wide_backgrounds,
                                            wide_opts, &serial,
                                            active_width);
    const double wide_s = seconds_per_sweep(
        [&] { return runner_wide.detects(wide_population); });

    const auto faults = static_cast<double>(population.size());
    const double scalar_fps = faults / scalar_s;
    const double packed_fps = faults / packed_s;
    const double packed_mt_fps = faults / packed_mt_s;
    const auto wide_faults = static_cast<double>(wide_population.size());
    const double w1_fps = wide_faults / w1_s;
    const double wide_fps = wide_faults / wide_s;
    std::printf(
        "Scalar vs packed word kernel (March C-, %d words x %d bits, "
        "%zu backgrounds, %zu CFid placements):\n"
        "  scalar          : %12.0f faults/sec\n"
        "  packed  (1 thr) : %12.0f faults/sec\n"
        "  packed  (%u thr) : %11.0f faults/sec\n"
        "  speedup         : %.1fx\n"
        "Lane-block width (March C-, %d words x %d bits, %zu placements, "
        "1 thread):\n"
        "  W=1 (PR2 base)  : %12.0f faults/sec\n"
        "  W=%d (active)    : %11.0f faults/sec\n"
        "  SIMD speedup    : %.2fx\n\n",
        opts.words, opts.width, backgrounds.size(), population.size(),
        scalar_fps, packed_fps, pool.worker_count(), packed_mt_fps,
        packed_fps / scalar_fps, wide_opts.words, wide_opts.width,
        wide_population.size(), w1_fps, active_width, wide_fps,
        wide_fps / w1_fps);

    // Engine backend head-to-head on the coverage workload: one packed
    // session versus a ShardedBackend with one shard per core (the
    // in-process multi-host split), tracking the merge overhead.
    const int shard_count = static_cast<int>(pool.worker_count());
    const engine::Engine packed_engine(
        engine::EngineConfig{.backend = engine::BackendKind::Packed});
    const engine::Engine sharded_engine(
        engine::EngineConfig{.backend = engine::BackendKind::Sharded,
                             .shards = shard_count});
    constexpr int kRemotePeers = 2;
    net::LoopbackFleet fleet(kRemotePeers);
    const engine::Engine remote_engine(
        engine::make_remote_backend(fleet.take_fds()));
    // A fleet that loses peer 0 on its first query, with the graceful
    // degradation policy on: the resilient-throughput line.
    net::LoopbackFleet degraded_fleet(kRemotePeers,
                                      {{.die_after_queries = 1}, {}});
    engine::RemoteOptions degraded_options;
    degraded_options.degrade = engine::DegradePolicy::DegradeLocal;
    const engine::Engine degraded_engine(engine::make_remote_backend(
        degraded_fleet.take_fds(), degraded_options));

    benchutil::JsonSummary summary("word");
    summary.field("workload", "covers_everywhere")
        .field("march", "March C-")
        .field("words", opts.words)
        .field("width", opts.width)
        .field("backgrounds", backgrounds.size())
        .field("population", population.size())
        .field("scalar_faults_per_sec", scalar_fps)
        .field("packed_faults_per_sec", packed_fps)
        .field("speedup", packed_fps / scalar_fps, 2)
        .field("threads", pool.worker_count())
        .field("packed_mt_faults_per_sec", packed_mt_fps)
        .field("parallel_speedup", packed_mt_fps / packed_fps, 2)
        .field("lane_width", active_width)
        .field("width_words", wide_opts.words)
        .field("width_bits", wide_opts.width)
        .field("width_population", wide_population.size())
        .field("w1_faults_per_sec", w1_fps)
        .field("wide_faults_per_sec", wide_fps)
        .field("simd_speedup", wide_fps / w1_fps, 2)
        .engine_backend_head_to_head(
            "coverage workload", faults, shard_count,
            [&] {
                return packed_engine.detects(test, backgrounds, population,
                                             opts);
            },
            [&] {
                return sharded_engine.detects(test, backgrounds, population,
                                              opts);
            })
        .remote_vs_packed(
            "coverage workload", faults, kRemotePeers,
            [&] {
                return packed_engine.detects(test, backgrounds, population,
                                             opts);
            },
            [&] {
                return remote_engine.detects(test, backgrounds, population,
                                             opts);
            })
        .degraded_vs_packed(
            "coverage workload", faults, kRemotePeers,
            [&] {
                return packed_engine.detects(test, backgrounds, population,
                                             opts);
            },
            [&] {
                return degraded_engine.detects(test, backgrounds,
                                               population, opts);
            });
    summary.print();
}

/// Trace-extraction head-to-head on the counting-background CFid sweep:
/// per-fault scalar word::guaranteed_trace versus one packed
/// WordBatchRunner::run() sweep (PR 4 acceptance: packed ≥ 10× scalar,
/// traces bit-identical — the identity is enforced by
/// tests/word_trace_test.cpp). Also measures the per-pass scratch pooling
/// before/after (ROADMAP SIMD follow-on (a)): the same packed sweep with
/// fresh per-pass allocations versus the pooled thread-local scratch.
void print_trace_head_to_head() {
    const auto& test = march::march_c_minus();
    word::WordRunOptions opts;  // 8 words × 8 bits
    const auto backgrounds = word::counting_backgrounds(opts.width);
    const auto population =
        word::coverage_population(fault::FaultKind::CfidUp1, opts);

    const double scalar_s = seconds_per_sweep([&] {
        std::size_t observations = 0;
        for (const auto& fault : population)
            observations += word::guaranteed_trace(test, backgrounds, fault,
                                                   opts)
                                .failing_observations.size();
        return observations;
    });
    util::ThreadPool serial(1);
    const word::WordBatchRunner runner(test, backgrounds, opts, &serial);
    sim::set_pass_scratch_enabled(false);
    const double unpooled_s =
        seconds_per_sweep([&] { return runner.run(population).size(); });
    sim::set_pass_scratch_enabled(true);
    const double packed_s =
        seconds_per_sweep([&] { return runner.run(population).size(); });

    const auto faults = static_cast<double>(population.size());
    const double scalar_fps = faults / scalar_s;
    const double unpooled_fps = faults / unpooled_s;
    const double packed_fps = faults / packed_s;
    std::printf(
        "Guaranteed-trace extraction (March C-, %d words x %d bits, "
        "%zu backgrounds, %zu CFid placements, 1 thread):\n"
        "  scalar oracle   : %12.0f faults/sec\n"
        "  packed, no pool : %12.0f faults/sec\n"
        "  packed, pooled  : %12.0f faults/sec\n"
        "  packed/scalar   : %.1fx   pooling: %.2fx\n\n",
        opts.words, opts.width, backgrounds.size(), population.size(),
        scalar_fps, unpooled_fps, packed_fps, packed_fps / scalar_fps,
        packed_fps / unpooled_fps);

    benchutil::JsonSummary summary("word");
    summary.field("workload", "trace_extraction")
        .field("march", "March C-")
        .field("words", opts.words)
        .field("width", opts.width)
        .field("backgrounds", backgrounds.size())
        .field("population", population.size())
        .field("trace_scalar_faults_per_sec", scalar_fps)
        .field("trace_packed_faults_per_sec", packed_fps)
        .field("trace_speedup", packed_fps / scalar_fps, 2)
        .field("alloc_before_faults_per_sec", unpooled_fps)
        .field("alloc_after_faults_per_sec", packed_fps)
        .field("alloc_pooling_speedup", packed_fps / unpooled_fps, 2);
    summary.print();
}

void print_summary() {
    TextTable table;
    table.set_header({"width", "backgrounds", "ops/word",
                      "intra-word CFid<^,1>"});
    for (int width : {4, 8, 16}) {
        const auto& test = march::march_c_minus();
        word::WordRunOptions opts;
        opts.width = width;
        for (bool counting : {false, true}) {
            const auto backgrounds = counting
                                         ? word::counting_backgrounds(width)
                                         : word::solid_background(width);
            table.add_row(
                {std::to_string(width),
                 counting ? "counting (" +
                                std::to_string(backgrounds.size()) + ")"
                          : "solid (1)",
                 std::to_string(word::word_complexity(test, backgrounds)),
                 word::covers_everywhere(test, backgrounds,
                                         fault::FaultKind::CfidUp1, opts)
                     ? "covered"
                     : "ESCAPES"});
        }
    }
    std::printf("March C- lifted to word-oriented memories:\n\n%s\n",
                table.str().c_str());
}

void BM_WordDetect(benchmark::State& state) {
    const int width = static_cast<int>(state.range(0));
    const auto& test = march::march_c_minus();
    const auto backgrounds = word::counting_backgrounds(width);
    word::WordRunOptions opts;
    opts.width = width;
    const auto fault = word::InjectedBitFault::coupling(
        fault::FaultKind::CfidUp1, {opts.words / 2, 0}, {opts.words / 2, 1});
    for (auto _ : state)
        benchmark::DoNotOptimize(word::detects(test, backgrounds, fault, opts));
}
BENCHMARK(BM_WordDetect)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_WordCoversIntraWord(benchmark::State& state) {
    const int width = static_cast<int>(state.range(0));
    const auto& test = march::march_c_minus();
    const auto backgrounds = word::counting_backgrounds(width);
    word::WordRunOptions opts;
    opts.width = width;
    for (auto _ : state)
        benchmark::DoNotOptimize(word::covers_everywhere(
            test, backgrounds, fault::FaultKind::CfidUp1, opts));
}
BENCHMARK(BM_WordCoversIntraWord)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_sparse_grids();  // first: RSS legs need a quiet high-water mark
    print_summary();
    print_scalar_vs_packed();
    print_trace_head_to_head();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
