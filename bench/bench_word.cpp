/// \file bench_word.cpp
/// Word-oriented extension: coverage of solid vs counting backgrounds on
/// intra-word coupling faults, and simulation cost versus word width.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "march/library.hpp"
#include "util/table.hpp"
#include "word/word_march.hpp"

namespace {

using namespace mtg;

void print_summary() {
    TextTable table;
    table.set_header({"width", "backgrounds", "ops/word",
                      "intra-word CFid<^,1>"});
    for (int width : {4, 8, 16}) {
        const auto& test = march::march_c_minus();
        word::WordRunOptions opts;
        opts.width = width;
        for (bool counting : {false, true}) {
            const auto backgrounds = counting
                                         ? word::counting_backgrounds(width)
                                         : word::solid_background(width);
            table.add_row(
                {std::to_string(width),
                 counting ? "counting (" +
                                std::to_string(backgrounds.size()) + ")"
                          : "solid (1)",
                 std::to_string(word::word_complexity(test, backgrounds)),
                 word::covers_everywhere(test, backgrounds,
                                         fault::FaultKind::CfidUp1, opts)
                     ? "covered"
                     : "ESCAPES"});
        }
    }
    std::printf("March C- lifted to word-oriented memories:\n\n%s\n",
                table.str().c_str());
}

void BM_WordDetect(benchmark::State& state) {
    const int width = static_cast<int>(state.range(0));
    const auto& test = march::march_c_minus();
    const auto backgrounds = word::counting_backgrounds(width);
    word::WordRunOptions opts;
    opts.width = width;
    const auto fault = word::InjectedBitFault::coupling(
        fault::FaultKind::CfidUp1, {opts.words / 2, 0}, {opts.words / 2, 1});
    for (auto _ : state)
        benchmark::DoNotOptimize(word::detects(test, backgrounds, fault, opts));
}
BENCHMARK(BM_WordDetect)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_WordCoversIntraWord(benchmark::State& state) {
    const int width = static_cast<int>(state.range(0));
    const auto& test = march::march_c_minus();
    const auto backgrounds = word::counting_backgrounds(width);
    word::WordRunOptions opts;
    opts.width = width;
    for (auto _ : state)
        benchmark::DoNotOptimize(word::covers_everywhere(
            test, backgrounds, fault::FaultKind::CfidUp1, opts));
}
BENCHMARK(BM_WordCoversIntraWord)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_summary();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
