/// \file bench_word.cpp
/// Word-oriented extension: coverage of solid vs counting backgrounds on
/// intra-word coupling faults, simulation cost versus word width, and the
/// scalar-vs-packed kernel head-to-head (emits a BENCH_word.json summary
/// line mirroring bench_sim's).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_timing.hpp"

#include "march/library.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "word/word_batch_runner.hpp"
#include "word/word_march.hpp"

namespace {

using namespace mtg;
using benchutil::seconds_per_sweep;

/// Head-to-head: the per-fault scalar word sweep versus the word-lane
/// packed kernel on the exact covers_everywhere workload — CFid over the
/// counting backgrounds at width 8 (113 placements: 56 intra-word pairs,
/// 56 inter-word pairs, 1 cross pair).
void print_scalar_vs_packed() {
    const auto& test = march::march_c_minus();
    word::WordRunOptions opts;  // 8 words × 8 bits
    const auto backgrounds = word::counting_backgrounds(opts.width);
    const auto population =
        word::coverage_population(fault::FaultKind::CfidUp1, opts);

    const double scalar_s = seconds_per_sweep([&] {
        bool all = true;
        for (const auto& fault : population)  // no short-circuit: every
            all &= word::detects(test, backgrounds, fault, opts);
        return all;  // fault must be simulated for a fair faults/sec
    });
    util::ThreadPool serial(1);
    const word::WordBatchRunner runner(test, backgrounds, opts, &serial);
    const double packed_s =
        seconds_per_sweep([&] { return runner.detects(population); });
    util::ThreadPool& pool = util::ThreadPool::global();
    const word::WordBatchRunner runner_mt(test, backgrounds, opts, &pool);
    const double packed_mt_s =
        seconds_per_sweep([&] { return runner_mt.detects(population); });

    const auto faults = static_cast<double>(population.size());
    const double scalar_fps = faults / scalar_s;
    const double packed_fps = faults / packed_s;
    const double packed_mt_fps = faults / packed_mt_s;
    std::printf(
        "Scalar vs packed word kernel (March C-, %d words x %d bits, "
        "%zu backgrounds, %zu CFid placements):\n"
        "  scalar          : %12.0f faults/sec\n"
        "  packed  (1 thr) : %12.0f faults/sec\n"
        "  packed  (%u thr) : %11.0f faults/sec\n"
        "  speedup         : %.1fx\n\n",
        opts.words, opts.width, backgrounds.size(), population.size(),
        scalar_fps, packed_fps, pool.worker_count(), packed_mt_fps,
        packed_fps / scalar_fps);
    std::printf(
        "BENCH_word.json {\"workload\":\"covers_everywhere\",\"march\":"
        "\"March C-\",\"words\":%d,\"width\":%d,\"backgrounds\":%zu,"
        "\"population\":%zu,\"scalar_faults_per_sec\":%.0f,"
        "\"packed_faults_per_sec\":%.0f,\"speedup\":%.2f,\"threads\":%u,"
        "\"packed_mt_faults_per_sec\":%.0f,\"parallel_speedup\":%.2f}\n\n",
        opts.words, opts.width, backgrounds.size(), population.size(),
        scalar_fps, packed_fps, packed_fps / scalar_fps, pool.worker_count(),
        packed_mt_fps, packed_mt_fps / packed_fps);
}

void print_summary() {
    TextTable table;
    table.set_header({"width", "backgrounds", "ops/word",
                      "intra-word CFid<^,1>"});
    for (int width : {4, 8, 16}) {
        const auto& test = march::march_c_minus();
        word::WordRunOptions opts;
        opts.width = width;
        for (bool counting : {false, true}) {
            const auto backgrounds = counting
                                         ? word::counting_backgrounds(width)
                                         : word::solid_background(width);
            table.add_row(
                {std::to_string(width),
                 counting ? "counting (" +
                                std::to_string(backgrounds.size()) + ")"
                          : "solid (1)",
                 std::to_string(word::word_complexity(test, backgrounds)),
                 word::covers_everywhere(test, backgrounds,
                                         fault::FaultKind::CfidUp1, opts)
                     ? "covered"
                     : "ESCAPES"});
        }
    }
    std::printf("March C- lifted to word-oriented memories:\n\n%s\n",
                table.str().c_str());
}

void BM_WordDetect(benchmark::State& state) {
    const int width = static_cast<int>(state.range(0));
    const auto& test = march::march_c_minus();
    const auto backgrounds = word::counting_backgrounds(width);
    word::WordRunOptions opts;
    opts.width = width;
    const auto fault = word::InjectedBitFault::coupling(
        fault::FaultKind::CfidUp1, {opts.words / 2, 0}, {opts.words / 2, 1});
    for (auto _ : state)
        benchmark::DoNotOptimize(word::detects(test, backgrounds, fault, opts));
}
BENCHMARK(BM_WordDetect)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_WordCoversIntraWord(benchmark::State& state) {
    const int width = static_cast<int>(state.range(0));
    const auto& test = march::march_c_minus();
    const auto backgrounds = word::counting_backgrounds(width);
    word::WordRunOptions opts;
    opts.width = width;
    for (auto _ : state)
        benchmark::DoNotOptimize(word::covers_everywhere(
            test, backgrounds, fault::FaultKind::CfidUp1, opts));
}
BENCHMARK(BM_WordCoversIntraWord)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_summary();
    print_scalar_vs_packed();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
