#pragma once

/// \file bench_timing.hpp
/// Shared timing + summary-emission helpers for the hand-rolled
/// head-to-head comparisons the benches print before handing over to
/// Google Benchmark.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace mtg::benchutil {

/// Peak RSS of the process in MiB (getrusage ru_maxrss; 0 where
/// unavailable). The high-water mark is monotonic: sample before and
/// after a leg and subtract, and run memory-sensitive legs before
/// anything that inflates the peak for the whole process.
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0)
        return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
    return 0.0;
}

/// Seconds per invocation of `sweep`: one warm-up, then enough
/// repetitions for a stable figure.
template <typename Sweep>
double seconds_per_sweep_once(Sweep&& sweep) {
    using clock = std::chrono::steady_clock;
    sweep();
    int reps = 1;
    for (;;) {
        const auto start = clock::now();
        for (int r = 0; r < reps; ++r) benchmark::DoNotOptimize(sweep());
        const std::chrono::duration<double> elapsed = clock::now() - start;
        if (elapsed.count() > 0.2)
            return elapsed.count() / static_cast<double>(reps);
        reps *= 4;
    }
}

/// Median of five independent measurements — the figure the BENCH_*.json
/// summary lines report, so one noisy neighbour on a shared box cannot
/// fake a regression (or an improvement).
template <typename Sweep>
double seconds_per_sweep(Sweep&& sweep) {
    double samples[5];
    for (double& s : samples) s = seconds_per_sweep_once(sweep);
    std::sort(std::begin(samples), std::end(samples));
    return samples[2];
}

/// Builder for the one-line machine-readable summaries
/// (`BENCH_<name>.json {...}`) CI greps out of the bench logs. Keeps the
/// key order of insertion; values are emitted as raw JSON numbers /
/// strings.
class JsonSummary {
public:
    explicit JsonSummary(std::string tag) : tag_(std::move(tag)) {}

    JsonSummary& field(const char* key, const std::string& value) {
        return raw(key, "\"" + value + "\"");
    }
    JsonSummary& field(const char* key, const char* value) {
        return field(key, std::string(value));
    }
    JsonSummary& field(const char* key, long long value) {
        return raw(key, std::to_string(value));
    }
    JsonSummary& field(const char* key, unsigned long long value) {
        return raw(key, std::to_string(value));
    }
    JsonSummary& field(const char* key, int value) {
        return field(key, static_cast<long long>(value));
    }
    JsonSummary& field(const char* key, unsigned value) {
        return field(key, static_cast<unsigned long long>(value));
    }
    JsonSummary& field(const char* key, std::size_t value) {
        return field(key, static_cast<unsigned long long>(value));
    }
    /// Doubles carry an explicit precision (decimal places).
    JsonSummary& field(const char* key, double value, int precision = 0) {
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
        return raw(key, buffer);
    }

    /// "BENCH_<tag>.json {...}" plus a trailing blank line, mirroring the
    /// historical hand-rolled format byte-for-byte where it matters (the
    /// CI greps for the BENCH_<tag>.json prefix). Also appends the object
    /// to $MTG_BENCH_DIR/BENCH_<tag>.json (default: the current
    /// directory) as one JSON object per line — the file the committed
    /// dev-box baselines and the CI regression diff (scripts/
    /// bench_diff.py) read. The first summary of a tag per process
    /// truncates the file so stale lines from a previous run never mix
    /// with fresh ones.
    void print() const {
        std::printf("BENCH_%s.json {%s}\n\n", tag_.c_str(), body_.c_str());
        const char* dir = std::getenv("MTG_BENCH_DIR");
        const std::string path = std::string(dir && *dir ? dir : ".") +
                                 "/BENCH_" + tag_ + ".json";
        static std::set<std::string> seen;
        const char* mode = seen.insert(path).second ? "w" : "a";
        if (std::FILE* f = std::fopen(path.c_str(), mode)) {
            std::fprintf(f, "{%s}\n", body_.c_str());
            std::fclose(f);
        }
    }

    /// The engine packed-vs-sharded head-to-head both benches report:
    /// times the two sweeps, prints the comparison section, and appends
    /// the engine_* summary fields — one implementation so the metric set
    /// and field names cannot drift between bench_sim and bench_word.
    template <typename PackedSweep, typename ShardedSweep>
    JsonSummary& engine_backend_head_to_head(const char* workload,
                                             double faults, int shards,
                                             PackedSweep&& packed,
                                             ShardedSweep&& sharded) {
        const double packed_fps = faults / seconds_per_sweep(packed);
        const double sharded_fps = faults / seconds_per_sweep(sharded);
        std::printf(
            "Engine backends (%s, %d shards):\n"
            "  packed          : %12.0f faults/sec\n"
            "  sharded         : %12.0f faults/sec\n"
            "  shard overhead  : %.2fx\n\n",
            workload, shards, packed_fps, sharded_fps,
            sharded_fps / packed_fps);
        return field("engine_shards", shards)
            .field("engine_packed_faults_per_sec", packed_fps)
            .field("engine_sharded_faults_per_sec", sharded_fps)
            .field("sharded_vs_packed", sharded_fps / packed_fps, 2);
    }

    /// The remote-transport head-to-head: one packed session versus a
    /// RemoteBackend over same-process loopback peers — the serialize +
    /// frame + scatter/gather cost of the socket transport on top of the
    /// identical packed evaluation.
    template <typename PackedSweep, typename RemoteSweep>
    JsonSummary& remote_vs_packed(const char* workload, double faults,
                                  int peers, PackedSweep&& packed,
                                  RemoteSweep&& remote) {
        const double packed_fps = faults / seconds_per_sweep(packed);
        const double remote_fps = faults / seconds_per_sweep(remote);
        std::printf(
            "Remote transport (%s, %d loopback peers):\n"
            "  packed          : %12.0f faults/sec\n"
            "  remote          : %12.0f faults/sec\n"
            "  remote/packed   : %.2fx\n\n",
            workload, peers, packed_fps, remote_fps,
            remote_fps / packed_fps);
        return field("remote_peers", peers)
            .field("engine_remote_faults_per_sec", remote_fps)
            .field("remote_vs_packed", remote_fps / packed_fps, 2);
    }

    /// The fault-tolerance head-to-head: the same remote sweep, but one
    /// peer of the fleet is killed mid-sweep and DegradePolicy::
    /// DegradeLocal is on — the price of detection, range requeue and
    /// (should the fleet empty) the coordinator-local fallback, relative
    /// to an undisturbed packed session.
    template <typename PackedSweep, typename DegradedSweep>
    JsonSummary& degraded_vs_packed(const char* workload, double faults,
                                    int peers, PackedSweep&& packed,
                                    DegradedSweep&& degraded) {
        const double packed_fps = faults / seconds_per_sweep(packed);
        const double degraded_fps = faults / seconds_per_sweep(degraded);
        std::printf(
            "Degraded fleet (%s, %d peers, one killed mid-sweep):\n"
            "  packed          : %12.0f faults/sec\n"
            "  degraded remote : %12.0f faults/sec\n"
            "  degraded/packed : %.2fx\n\n",
            workload, peers, packed_fps, degraded_fps,
            degraded_fps / packed_fps);
        return field("degraded_peers", peers)
            .field("engine_degraded_faults_per_sec", degraded_fps)
            .field("degraded_vs_packed", degraded_fps / packed_fps, 2);
    }

private:
    JsonSummary& raw(const char* key, const std::string& json) {
        if (!body_.empty()) body_ += ',';
        body_ += '"';
        body_ += key;
        body_ += "\":";
        body_ += json;
        return *this;
    }

    std::string tag_;
    std::string body_;
};

}  // namespace mtg::benchutil
