#pragma once

/// \file bench_timing.hpp
/// Shared timing helper for the hand-rolled head-to-head summaries the
/// benches print before handing over to Google Benchmark.

#include <benchmark/benchmark.h>

#include <chrono>

namespace mtg::benchutil {

/// Seconds per invocation of `sweep`: one warm-up, then enough
/// repetitions for a stable figure.
template <typename Sweep>
double seconds_per_sweep(Sweep&& sweep) {
    using clock = std::chrono::steady_clock;
    sweep();
    int reps = 1;
    for (;;) {
        const auto start = clock::now();
        for (int r = 0; r < reps; ++r) benchmark::DoNotOptimize(sweep());
        const std::chrono::duration<double> elapsed = clock::now() - start;
        if (elapsed.count() > 0.2)
            return elapsed.count() / static_cast<double>(reps);
        reps *= 4;
    }
}

}  // namespace mtg::benchutil
