/// \file bench_table3.cpp
/// Regenerates the paper's Table 3: for each of the six fault lists, the
/// generated March test, its complexity, the generation CPU time, the §6
/// non-redundancy verdict and the known equivalent from the literature.
/// Afterwards google-benchmark times the full generation per row.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/generator.hpp"
#include "fault/fault_list.hpp"
#include "march/library.hpp"
#include "util/table.hpp"

namespace {

using mtg::core::GenerationResult;
using mtg::core::Generator;

void print_table3() {
    mtg::TextTable table;
    table.set_header({"Fault list", "Generated March test", "n", "CPU(s)",
                      "complete", "non-red.", "known equivalent"});

    Generator generator;
    for (const auto& row : mtg::fault::table3_fault_lists()) {
        const GenerationResult result = generator.generate(row.kinds);
        std::string known = row.known_equivalent;
        if (row.known_complexity > 0)
            known += " (" + std::to_string(row.known_complexity) + "n)";
        char seconds[32];
        std::snprintf(seconds, sizeof seconds, "%.3f", result.seconds);
        table.add_row({row.name,
                       result.test.str(mtg::march::Notation::Unicode),
                       std::to_string(result.complexity) + "n", seconds,
                       result.redundancy.complete ? "yes" : "NO",
                       result.redundancy.non_redundant ? "yes" : "NO", known});
    }
    std::printf("Table 3 — automatically generated March tests\n"
                "(paper reference: 4n/5n/6n/6n/10n/5n in 0.49-0.85 s on a "
                "PIII-650 laptop)\n\n%s\n", table.str().c_str());
}

void BM_GenerateRow(benchmark::State& state) {
    const auto& row = mtg::fault::table3_fault_lists()
        [static_cast<std::size_t>(state.range(0))];
    Generator generator;
    for (auto _ : state) {
        benchmark::DoNotOptimize(generator.generate(row.kinds));
    }
    state.SetLabel(row.name);
}
BENCHMARK(BM_GenerateRow)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_table3();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
