/// \file bench_synth.cpp
/// Synthesis-loop throughput: fitness probes/sec sustained through the
/// Engine population cache, with and without dominance pruning, plus
/// end-to-end time-to-first-covering-test for the beam search.
///
/// The probe legs disable the Scorer's own probe cache (capacity 0) so
/// every probe really sweeps its population — the comparison isolates
/// what fault/dominance.hpp buys per probe on a two-cell universe
/// (coupling faults place O(n²) aggressor/victim pairs; dominance
/// collapses them to one representative per relational class). The
/// Engine's population cache stays warm in both legs, as it is in a real
/// search. The search leg then times whole BeamSearch::run calls on a
/// fresh Scorer each sweep (cold probe cache, warm Engine) — the figure
/// a user sees between typing `march_tool synth` and the test.
///
/// Emits BENCH_synth.json (keys end in _per_sec; scripts/bench_diff.py
/// diffs them against the committed dev-box baseline in CI).

#include <array>
#include <cstdio>
#include <vector>

#include "bench_timing.hpp"
#include "engine/engine.hpp"
#include "fault/kinds.hpp"
#include "synth/beam_search.hpp"
#include "synth/scorer.hpp"
#include "synth/skeleton.hpp"

namespace {

using namespace mtg;

/// Deterministic probe workload: every one- and two-slot skeleton over
/// the template library (orders × opening polarity) that renders
/// well-formed — the candidate shapes the first two beam rounds probe.
std::vector<synth::Skeleton> probe_candidates() {
    static constexpr std::array<march::AddressOrder, 3> kOrders{
        march::AddressOrder::Any, march::AddressOrder::Ascending,
        march::AddressOrder::Descending};
    const auto& templates = synth::slot_templates(/*include_delay=*/false);
    std::vector<synth::Skeleton> candidates;
    for (int polarity : {0, 1}) {
        for (const auto& first : templates) {
            for (const march::AddressOrder first_order : kOrders) {
                synth::Skeleton one{polarity,
                                    {synth::Slot{first_order, first}}};
                if (!one.starts_with_write()) continue;
                candidates.push_back(one);
                for (const auto& second : templates) {
                    synth::Skeleton two = one;
                    two.slots.push_back(
                        synth::Slot{march::AddressOrder::Any, second});
                    candidates.push_back(std::move(two));
                }
            }
        }
    }
    return candidates;
}

double probes_per_sec(const engine::Engine& engine,
                      const std::vector<synth::Skeleton>& candidates,
                      const std::vector<fault::FaultKind>& kinds,
                      bool prune) {
    synth::ScorerConfig config;
    config.kinds = kinds;
    config.prune = prune;
    config.probe_cache_capacity = 0;  // measure the sweep, not the memo
    synth::Scorer scorer(engine, config);
    const double seconds = benchutil::seconds_per_sweep([&] {
        std::size_t covered = 0;
        for (const synth::Skeleton& candidate : candidates)
            covered += scorer.probe(candidate).covered;
        return covered;
    });
    return static_cast<double>(candidates.size()) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);

    const engine::Engine engine;
    const std::vector<synth::Skeleton> candidates = probe_candidates();

    // Two-cell universe: inversion couplings + the single-cell kinds a
    // real search targets alongside them.
    const auto kinds = fault::parse_fault_kinds("SAF,TF,CFin");
    const auto full =
        engine.bit_population(kinds, sim::RunOptions{}.memory_size, false);
    const auto pruned =
        engine.bit_population(kinds, sim::RunOptions{}.memory_size, true);

    const double full_pps = probes_per_sec(engine, candidates, kinds, false);
    const double pruned_pps = probes_per_sec(engine, candidates, kinds, true);
    std::printf(
        "Fitness probes (%zu candidates, SAF,TF,CFin universe):\n"
        "  full universe   : %6zu faults, %10.0f probes/sec\n"
        "  pruned universe : %6zu faults, %10.0f probes/sec\n"
        "  pruning speedup : %.2fx\n\n",
        candidates.size(), full->faults.size(), full_pps,
        pruned->faults.size(), pruned_pps, pruned_pps / full_pps);

    // End-to-end: fresh probe cache per sweep, warm Engine — the
    // interactive `march_tool synth` latency.
    synth::SearchConfig search;
    search.beam_width = 8;
    search.seed = 1;
    const double search_sec = benchutil::seconds_per_sweep([&] {
        synth::ScorerConfig config;
        config.kinds = kinds;
        synth::Scorer scorer(engine, config);
        return synth::BeamSearch(scorer, search).run().found() ? 1 : 0;
    });
    std::printf(
        "Time to first covering test (SAF,TF,CFin, beam 8):\n"
        "  %8.1f ms/search (%.1f searches/sec)\n\n",
        search_sec * 1e3, 1.0 / search_sec);

    benchutil::JsonSummary("synth")
        .field("workload", "saf_tf_cfin")
        .field("probe_candidates", candidates.size())
        .field("full_faults", full->faults.size())
        .field("pruned_faults", pruned->faults.size())
        .field("full_probes_per_sec", full_pps)
        .field("pruned_probes_per_sec", pruned_pps)
        .field("pruned_vs_full", pruned_pps / full_pps, 2)
        .field("searches_per_sec", 1.0 / search_sec, 2)
        .field("time_to_first_test_ms", search_sec * 1e3, 1)
        .print();

    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
