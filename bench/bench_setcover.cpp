/// \file bench_setcover.cpp
/// Substrate ablation for the §6 non-redundancy analysis: coverage-matrix
/// construction cost and exact-vs-greedy set covering on both real
/// coverage matrices and synthetic instances.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "setcover/coverage_matrix.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace mtg;

setcover::BoolMatrix random_matrix(int rows, int cols, std::uint64_t seed,
                                   int density_pct) {
    SplitMix64 rng(seed);
    setcover::BoolMatrix m(static_cast<std::size_t>(rows),
                           std::vector<bool>(static_cast<std::size_t>(cols)));
    for (auto& row : m)
        for (std::size_t c = 0; c < row.size(); ++c)
            row[c] = rng.below(100) <
                     static_cast<std::uint64_t>(density_pct);
    // Guarantee feasibility.
    for (int c = 0; c < cols; ++c)
        m[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(rows)))]
         [static_cast<std::size_t>(c)] = true;
    return m;
}

void print_summary() {
    TextTable table;
    table.set_header({"March test", "blocks", "min cover", "verdict"});
    const auto kinds = fault::parse_fault_kinds("SAF,TF,ADF,CFin,CFid");
    for (const char* name : {"MATS++", "March X", "March C-", "March C",
                             "March B"}) {
        const auto& test = march::find_march_test(name).test;
        const auto report = setcover::analyse_redundancy(test, kinds);
        table.add_row({name, std::to_string(report.block_count),
                       std::to_string(report.min_cover_size),
                       !report.complete       ? "incomplete"
                       : report.non_redundant ? "non-redundant"
                                              : "REDUNDANT"});
    }
    std::printf("§6 set-covering verdicts against SAF+TF+ADF+CFin+CFid:\n\n%s\n",
                table.str().c_str());
}

void BM_BuildCoverageMatrix(benchmark::State& state) {
    const auto& test = march::march_c_minus();
    const auto kinds = fault::parse_fault_kinds("SAF,TF,ADF,CFin,CFid");
    for (auto _ : state)
        benchmark::DoNotOptimize(setcover::build_coverage_matrix(test, kinds));
}
BENCHMARK(BM_BuildCoverageMatrix)->Unit(benchmark::kMillisecond);

void BM_ExactCover(benchmark::State& state) {
    const auto m = random_matrix(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(0)) * 2, 99, 25);
    for (auto _ : state)
        benchmark::DoNotOptimize(setcover::minimum_cover(m));
}
BENCHMARK(BM_ExactCover)->Arg(10)->Arg(20)->Arg(30)
    ->Unit(benchmark::kMicrosecond);

void BM_GreedyCover(benchmark::State& state) {
    const auto m = random_matrix(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(0)) * 2, 99, 25);
    for (auto _ : state)
        benchmark::DoNotOptimize(setcover::greedy_cover(m));
}
BENCHMARK(BM_GreedyCover)->Arg(10)->Arg(20)->Arg(30)->Arg(60)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_summary();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
