/// \file bench_diagnosis.cpp
/// Diagnostic-resolution comparison across the classical March tests
/// (reference [6] extension): dictionary construction cost and the
/// resolution each test achieves on the full static fault set.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "diagnosis/dictionary.hpp"
#include "march/library.hpp"
#include "util/table.hpp"

namespace {

using namespace mtg;

const char* kTests[] = {"MATS++", "March X", "March C-", "PMOVI",
                        "March B", "March SS"};

void print_resolution_table() {
    const auto kinds =
        fault::parse_fault_kinds("SAF,TF,ADF,CFin,CFid,CFst");
    TextTable table;
    table.set_header({"March test", "n", "detected", "distinguished",
                      "resolution"});
    for (const char* name : kTests) {
        const auto& test = march::find_march_test(name).test;
        const auto dict = diagnosis::FaultDictionary::build(test, kinds);
        char res[16];
        std::snprintf(res, sizeof res, "%.2f", dict.resolution());
        table.add_row({name, std::to_string(test.complexity()),
                       std::to_string(dict.detected_count()) + "/" +
                           std::to_string(dict.instance_count()),
                       std::to_string(dict.distinguished_count()), res});
    }
    const int instances = static_cast<int>(fault::instantiate(kinds).size());
    std::printf("Diagnostic resolution on SAF+TF+ADF+CFin+CFid+CFst "
                "(%d instances):\n\n%s\n", instances, table.str().c_str());
}

void BM_BuildDictionary(benchmark::State& state) {
    const auto& test =
        march::find_march_test(kTests[state.range(0)]).test;
    const auto kinds = fault::parse_fault_kinds("SAF,TF,ADF,CFin,CFid,CFst");
    for (auto _ : state)
        benchmark::DoNotOptimize(diagnosis::FaultDictionary::build(test, kinds));
    state.SetLabel(kTests[state.range(0)]);
}
BENCHMARK(BM_BuildDictionary)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_Diagnose(benchmark::State& state) {
    const auto& test = march::march_c_minus();
    const auto kinds = fault::parse_fault_kinds("SAF,TF,ADF,CFin,CFid,CFst");
    const auto dict = diagnosis::FaultDictionary::build(test, kinds);
    const auto observed = diagnosis::signature_of(
        test, sim::InjectedFault::coupling(fault::FaultKind::CfidUp0, 2, 5));
    for (auto _ : state) benchmark::DoNotOptimize(dict.diagnose(observed));
}
BENCHMARK(BM_Diagnose);

}  // namespace

int main(int argc, char** argv) {
    print_resolution_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
