/// \file bench_atsp.cpp
/// Substrate ablation for the §4 claim that exact ATSP solvers handle the
/// TPG sizes produced by realistic fault lists "in very low computation
/// time" (the paper cites the CDT code as exact up to ~50 nodes). Measures
/// the exact branch-and-bound against instance size, and the quality gap of
/// the construction heuristics used for its upper bound.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "atsp/branch_bound.hpp"
#include "atsp/heuristics.hpp"
#include "atsp/hungarian.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace mtg::atsp;

CostMatrix random_instance(int n, std::uint64_t seed, Cost max_cost = 100) {
    mtg::SplitMix64 rng(seed);
    CostMatrix m(n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            if (i != j)
                m.set(i, j, static_cast<Cost>(rng.below(
                                static_cast<std::uint64_t>(max_cost) + 1)));
    return m;
}

/// TPG-like instance: small weights 0..2 as produced by f.4.1.
CostMatrix tpg_like_instance(int n, std::uint64_t seed) {
    return random_instance(n, seed, 2);
}

void print_summary() {
    mtg::TextTable table;
    table.set_header({"nodes", "B&B nodes", "AP solves", "heuristic gap"});
    for (int n : {8, 12, 16, 20, 24, 28}) {
        SolveStats stats;
        const CostMatrix m = tpg_like_instance(n, 42);
        const auto exact = solve_exact(m, &stats);
        const auto heur = heuristic_tour(m);
        char gap[32] = "-";
        if (exact && heur)
            std::snprintf(gap, sizeof gap, "%+lld",
                          static_cast<long long>(heur->cost - exact->cost));
        table.add_row({std::to_string(n), std::to_string(stats.nodes_explored),
                       std::to_string(stats.ap_solves), gap});
    }
    std::printf("Exact ATSP branch-and-bound on TPG-like instances "
                "(weights 0..2):\n\n%s\n", table.str().c_str());
}

void BM_ExactTpgLike(benchmark::State& state) {
    const CostMatrix m = tpg_like_instance(static_cast<int>(state.range(0)), 7);
    for (auto _ : state) benchmark::DoNotOptimize(solve_exact(m));
}
BENCHMARK(BM_ExactTpgLike)->Arg(8)->Arg(12)->Arg(16)->Arg(20)->Arg(24)->Arg(28)
    ->Unit(benchmark::kMicrosecond);

void BM_ExactGeneralWeights(benchmark::State& state) {
    const CostMatrix m = random_instance(static_cast<int>(state.range(0)), 7);
    for (auto _ : state) benchmark::DoNotOptimize(solve_exact(m));
}
BENCHMARK(BM_ExactGeneralWeights)->Arg(8)->Arg(12)->Arg(16)->Arg(20)
    ->Unit(benchmark::kMicrosecond);

void BM_AssignmentRelaxation(benchmark::State& state) {
    const CostMatrix m = random_instance(static_cast<int>(state.range(0)), 11);
    for (auto _ : state) benchmark::DoNotOptimize(solve_assignment(m));
}
BENCHMARK(BM_AssignmentRelaxation)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_Heuristic(benchmark::State& state) {
    const CostMatrix m = random_instance(static_cast<int>(state.range(0)), 13);
    for (auto _ : state) benchmark::DoNotOptimize(heuristic_tour(m));
}
BENCHMARK(BM_Heuristic)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_BruteForceReference(benchmark::State& state) {
    const CostMatrix m = random_instance(static_cast<int>(state.range(0)), 17);
    for (auto _ : state) benchmark::DoNotOptimize(solve_brute_force(m));
}
BENCHMARK(BM_BruteForceReference)->DenseRange(6, 10)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_summary();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
