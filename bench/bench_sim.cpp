/// \file bench_sim.cpp
/// Substrate ablation: throughput of the fault simulator (the §6 validation
/// engine) versus memory size and March-test complexity, plus the cost of a
/// full covers_everywhere sweep as used by the generator's validation gate.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "sim/march_runner.hpp"
#include "util/table.hpp"

namespace {

using namespace mtg;

void print_summary() {
    TextTable table;
    table.set_header({"March test", "n", "detects SAF0@mid",
                      "detects CFid<^,0>@(1,2)"});
    for (const char* name : {"MATS", "MATS++", "March C-", "March SS"}) {
        const auto& test = march::find_march_test(name).test;
        table.add_row(
            {name, std::to_string(test.complexity()),
             sim::detects(test, sim::InjectedFault::single(
                                    fault::FaultKind::Saf0, 4))
                 ? "yes"
                 : "no",
             sim::detects(test, sim::InjectedFault::coupling(
                                    fault::FaultKind::CfidUp0, 1, 2))
                 ? "yes"
                 : "no"});
    }
    std::printf("Fault simulator sanity snapshot:\n\n%s\n", table.str().c_str());
}

void BM_SingleRun(benchmark::State& state) {
    const auto& test = march::march_c_minus();
    const auto fault =
        sim::InjectedFault::coupling(fault::FaultKind::CfidUp0, 1, 2);
    sim::RunOptions opts;
    opts.memory_size = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::run_once(test, {fault}, 0u, opts));
    state.SetItemsProcessed(state.iterations() * opts.memory_size *
                            test.complexity());
}
BENCHMARK(BM_SingleRun)->Arg(8)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_DetectsWithExpansions(benchmark::State& state) {
    const auto& test = march::march_ss();  // two ⇕ elements -> 4 expansions
    const auto fault =
        sim::InjectedFault::coupling(fault::FaultKind::CfstS1F0, 2, 5);
    sim::RunOptions opts;
    opts.memory_size = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::detects(test, fault, opts));
}
BENCHMARK(BM_DetectsWithExpansions)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_CoversEverywhere(benchmark::State& state) {
    const auto& test = march::march_c_minus();
    sim::RunOptions opts;
    opts.memory_size = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::covers_everywhere(
            test, fault::FaultKind::CfidUp0, opts));
}
BENCHMARK(BM_CoversEverywhere)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_WellFormedCheck(benchmark::State& state) {
    const auto& test = march::find_march_test(
        state.range(0) == 0 ? "MATS" : "March SS").test;
    for (auto _ : state) benchmark::DoNotOptimize(sim::is_well_formed(test));
    state.SetLabel(state.range(0) == 0 ? "MATS" : "March SS");
}
BENCHMARK(BM_WellFormedCheck)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_summary();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
