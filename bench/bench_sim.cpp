/// \file bench_sim.cpp
/// Substrate ablation: throughput of the fault simulator (the §6 validation
/// engine) versus memory size and March-test complexity, plus the cost of a
/// full covers_everywhere sweep as used by the generator's validation gate.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_timing.hpp"

#include "engine/engine.hpp"
#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "net/remote_backend.hpp"
#include "net/worker.hpp"
#include "sim/batch_runner.hpp"
#include "sim/lane_dispatch.hpp"
#include "sim/march_runner.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace mtg;
using benchutil::seconds_per_sweep;

void print_summary() {
    TextTable table;
    table.set_header({"March test", "n", "detects SAF0@mid",
                      "detects CFid<^,0>@(1,2)"});
    for (const char* name : {"MATS", "MATS++", "March C-", "March SS"}) {
        const auto& test = march::find_march_test(name).test;
        table.add_row(
            {name, std::to_string(test.complexity()),
             sim::detects(test, sim::InjectedFault::single(
                                    fault::FaultKind::Saf0, 4))
                 ? "yes"
                 : "no",
             sim::detects(test, sim::InjectedFault::coupling(
                                    fault::FaultKind::CfidUp0, 1, 2))
                 ? "yes"
                 : "no"});
    }
    std::printf("Fault simulator sanity snapshot:\n\n%s\n", table.str().c_str());
}

/// Head-to-head: the per-fault scalar sweep versus one batched pass over
/// the full two-cell fault population of an 8-cell memory (the exact
/// workload covers_everywhere runs inside the generator's validation
/// gate), a lane-width ablation on the n=256 population (65k faults, deep
/// enough that every W=8 block is full — the PR 2 packed kernel is the
/// W=1 row), plus a threads=1 versus threads=N shard comparison on the
/// n=64 population where the chunk grid is deep enough to feed every
/// core. Emits a machine-readable BENCH_sim.json summary line
/// (median-of-5 timings).
void print_scalar_vs_batched() {
    const auto& test = march::march_c_minus();
    const sim::RunOptions opts{.memory_size = 8, .max_any_expansion = 6};
    const auto population =
        sim::full_population(fault::FaultKind::CfidUp0, opts.memory_size);

    const double scalar_s = seconds_per_sweep([&] {
        bool all = true;
        for (const auto& fault : population)
            all &= sim::detects(test, fault, opts);  // no short-circuit:
        return all;  // every fault must be simulated for a fair faults/sec
    });
    util::ThreadPool serial(1);
    const sim::BatchRunner runner(test, opts, &serial);
    const double batched_s =
        seconds_per_sweep([&] { return runner.detects(population); });

    // Lane-width ablation: n=256 -> 65280 two-cell faults; W=1 is the
    // PR 2 packed baseline, the active width is the SIMD lane-block
    // engine, both on one thread so the ratio isolates the block width.
    const sim::RunOptions opts256{.memory_size = 256, .max_any_expansion = 6};
    const auto population256 =
        sim::full_population(fault::FaultKind::CfidUp0, opts256.memory_size);
    const sim::BatchRunner runner_w1(test, opts256, &serial, 1);
    const double w1_s = seconds_per_sweep(
        [&] { return runner_w1.detects(population256); });
    const int active_width = sim::active_lane_width();
    const sim::BatchRunner runner_wide(test, opts256, &serial, active_width);
    const double wide_s = seconds_per_sweep(
        [&] { return runner_wide.detects(population256); });

    // Parallel shard comparison: n=64 -> 4032 two-cell faults.
    const sim::RunOptions opts64{.memory_size = 64, .max_any_expansion = 6};
    const auto population64 =
        sim::full_population(fault::FaultKind::CfidUp0, opts64.memory_size);
    const sim::BatchRunner runner64_serial(test, opts64, &serial);
    const double serial64_s = seconds_per_sweep(
        [&] { return runner64_serial.detects(population64); });
    util::ThreadPool& pool = util::ThreadPool::global();
    const sim::BatchRunner runner64_parallel(test, opts64, &pool);
    const double parallel64_s = seconds_per_sweep(
        [&] { return runner64_parallel.detects(population64); });

    const auto faults = static_cast<double>(population.size());
    const double scalar_fps = faults / scalar_s;
    const double batched_fps = faults / batched_s;
    const auto faults256 = static_cast<double>(population256.size());
    const double w1_fps = faults256 / w1_s;
    const double wide_fps = faults256 / wide_s;
    const auto faults64 = static_cast<double>(population64.size());
    const double serial64_fps = faults64 / serial64_s;
    const double parallel64_fps = faults64 / parallel64_s;
    std::printf(
        "Scalar vs batched kernel (March C-, n=%d, %zu two-cell faults):\n"
        "  scalar          : %12.0f faults/sec\n"
        "  batched (1 thr) : %12.0f faults/sec\n"
        "  speedup         : %.1fx\n"
        "Lane-block width (March C-, n=%d, %zu two-cell faults, 1 thread):\n"
        "  W=1 (PR2 base)  : %12.0f faults/sec\n"
        "  W=%d (active)    : %11.0f faults/sec\n"
        "  SIMD speedup    : %.2fx\n"
        "Thread sharding (March C-, n=%d, %zu two-cell faults):\n"
        "  threads=1       : %12.0f faults/sec\n"
        "  threads=%-2u      : %12.0f faults/sec\n"
        "  parallel speedup: %.2fx\n\n",
        opts.memory_size, population.size(), scalar_fps, batched_fps,
        batched_fps / scalar_fps, opts256.memory_size, population256.size(),
        w1_fps, active_width, wide_fps, wide_fps / w1_fps,
        opts64.memory_size, population64.size(), serial64_fps,
        pool.worker_count(), parallel64_fps, parallel64_fps / serial64_fps);

    // Engine backend head-to-head on the n=64 workload: one packed
    // session versus a ShardedBackend with one shard per core — the
    // in-process rehearsal of the multi-host chunk-range split, so the
    // merge overhead (concatenating per-shard lane verdicts) is tracked
    // from PR 5 onward.
    const int shard_count = static_cast<int>(pool.worker_count());
    const engine::Engine packed_engine(
        engine::EngineConfig{.backend = engine::BackendKind::Packed});
    const engine::Engine sharded_engine(
        engine::EngineConfig{.backend = engine::BackendKind::Sharded,
                             .shards = shard_count});
    constexpr int kRemotePeers = 2;
    net::LoopbackFleet fleet(kRemotePeers);
    const engine::Engine remote_engine(
        engine::make_remote_backend(fleet.take_fds()));
    // A fleet that loses peer 0 on its first query, with the graceful
    // degradation policy on: the resilient-throughput line.
    net::LoopbackFleet degraded_fleet(kRemotePeers,
                                      {{.die_after_queries = 1}, {}});
    engine::RemoteOptions degraded_options;
    degraded_options.degrade = engine::DegradePolicy::DegradeLocal;
    const engine::Engine degraded_engine(engine::make_remote_backend(
        degraded_fleet.take_fds(), degraded_options));

    benchutil::JsonSummary summary("sim");
    summary.field("workload", "covers_everywhere")
        .field("march", "March C-")
        .field("memory_size", opts.memory_size)
        .field("population", population.size())
        .field("scalar_faults_per_sec", scalar_fps)
        .field("batched_faults_per_sec", batched_fps)
        .field("speedup", batched_fps / scalar_fps, 2)
        .field("lane_width", active_width)
        .field("width_memory_size", opts256.memory_size)
        .field("width_population", population256.size())
        .field("w1_faults_per_sec", w1_fps)
        .field("wide_faults_per_sec", wide_fps)
        .field("simd_speedup", wide_fps / w1_fps, 2)
        .field("shard_memory_size", opts64.memory_size)
        .field("shard_population", population64.size())
        .field("threads", pool.worker_count())
        .field("batched_1thread_faults_per_sec", serial64_fps)
        .field("batched_mt_faults_per_sec", parallel64_fps)
        .field("parallel_speedup", parallel64_fps / serial64_fps, 2)
        .engine_backend_head_to_head(
            "n=64 covers sweep", faults64, shard_count,
            [&] { return packed_engine.detects(test, population64, opts64); },
            [&] {
                return sharded_engine.detects(test, population64, opts64);
            })
        .remote_vs_packed(
            "n=64 covers sweep", faults64, kRemotePeers,
            [&] { return packed_engine.detects(test, population64, opts64); },
            [&] {
                return remote_engine.detects(test, population64, opts64);
            })
        .degraded_vs_packed(
            "n=64 covers sweep", faults64, kRemotePeers,
            [&] { return packed_engine.detects(test, population64, opts64); },
            [&] {
                return degraded_engine.detects(test, population64, opts64);
            });
    summary.print();
}

void BM_SingleRun(benchmark::State& state) {
    const auto& test = march::march_c_minus();
    const auto fault =
        sim::InjectedFault::coupling(fault::FaultKind::CfidUp0, 1, 2);
    sim::RunOptions opts;
    opts.memory_size = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::run_once(test, {fault}, 0u, opts));
    state.SetItemsProcessed(state.iterations() * opts.memory_size *
                            test.complexity());
}
BENCHMARK(BM_SingleRun)->Arg(8)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_DetectsWithExpansions(benchmark::State& state) {
    const auto& test = march::march_ss();  // two ⇕ elements -> 4 expansions
    const auto fault =
        sim::InjectedFault::coupling(fault::FaultKind::CfstS1F0, 2, 5);
    sim::RunOptions opts;
    opts.memory_size = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::detects(test, fault, opts));
}
BENCHMARK(BM_DetectsWithExpansions)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_CoversEverywhere(benchmark::State& state) {
    const auto& test = march::march_c_minus();
    sim::RunOptions opts;
    opts.memory_size = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(sim::covers_everywhere(
            test, fault::FaultKind::CfidUp0, opts));
}
BENCHMARK(BM_CoversEverywhere)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_BatchDetects(benchmark::State& state) {
    const auto& test = march::march_c_minus();
    sim::RunOptions opts;
    opts.memory_size = static_cast<int>(state.range(0));
    const sim::BatchRunner runner(test, opts);
    const auto population =
        sim::full_population(fault::FaultKind::CfidUp0, opts.memory_size);
    for (auto _ : state) benchmark::DoNotOptimize(runner.detects(population));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(population.size()));
}
BENCHMARK(BM_BatchDetects)->Arg(8)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_WellFormedCheck(benchmark::State& state) {
    const auto& test = march::find_march_test(
        state.range(0) == 0 ? "MATS" : "March SS").test;
    for (auto _ : state) benchmark::DoNotOptimize(sim::is_well_formed(test));
    state.SetLabel(state.range(0) == 0 ? "MATS" : "March SS");
}
BENCHMARK(BM_WellFormedCheck)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
    print_summary();
    print_scalar_vs_batched();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
