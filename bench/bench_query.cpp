/// \file bench_query.cpp
/// Query-path throughput: the persistent query server over loopback TCP
/// versus a direct in-process Engine on the same workload mix.
///
/// The direct leg is the floor — Engine::run with warm population
/// caches, no serialisation. The server legs add JSON encode/decode,
/// line framing, the admission queue and the executor hand-off; the
/// single-client leg round-trips one request at a time (per-query
/// latency), the pipelined leg keeps the whole mix outstanding on one
/// connection (the replay workload — queue depth hides latency when
/// cores are available, and surfaces executor oversubscription when
/// they are not, which is exactly the number worth tracking). The
/// 1-deep/direct ratio is the protocol tax the ROADMAP asked to
/// measure; the coalescing and sweep caches are deliberately stepped
/// around by varying the (test, kinds) pair per request so every
/// request costs a backend run.
///
/// Emits BENCH_query.json (keys end in _per_sec; scripts/bench_diff.py
/// diffs them against the committed dev-box baseline in CI).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_timing.hpp"
#include "engine/engine.hpp"
#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "net/query_protocol.hpp"
#include "net/query_server.hpp"

namespace {

using namespace mtg;

/// The workload mix: every library test crossed with three kind lists,
/// Detects and DetectsAll alternating — the interactive shape of a
/// synthesis or verification client, no bulk sweeps.
std::vector<net::QueryRequest> workload_mix() {
    static const std::vector<std::string> kind_lists{
        "SAF,TF", "SAF,TF,CFin", "RDF,WDF,IRF"};
    std::vector<net::QueryRequest> mix;
    std::int64_t id = 0;
    for (const march::NamedMarchTest& named : march::known_march_tests()) {
        for (const std::string& kinds : kind_lists) {
            net::QueryRequest request;
            request.id = ++id;
            request.op = (id % 2 == 0) ? net::QueryOp::Detects
                                       : net::QueryOp::DetectsAll;
            request.test = named.test.str(march::Notation::Ascii);
            request.kinds = kinds;
            // Big enough that each query costs real kernel work (CFin
            // places O(n²) pairs) — the tax measured is protocol over
            // compute, not loopback scheduling over nothing.
            request.memory_size = 32;
            mix.push_back(std::move(request));
        }
    }
    return mix;
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);

    const std::vector<net::QueryRequest> mix = workload_mix();
    const double queries = static_cast<double>(mix.size());

    // Direct leg: the same resolved queries straight into one session.
    engine::Engine engine;
    std::vector<engine::Query> resolved;
    resolved.reserve(mix.size());
    for (const net::QueryRequest& request : mix)
        resolved.push_back(net::to_engine_query(request));
    const double direct_sec = benchutil::seconds_per_sweep([&] {
        int covered = 0;
        for (const engine::Query& query : resolved)
            covered += engine.run(query).all ? 1 : 0;
        return covered;
    });

    // Server legs: one loopback server, one client connection.
    net::QueryServer server;
    const std::uint16_t port = server.listen(0);

    net::QueryClient single("127.0.0.1", port);
    const double single_sec = benchutil::seconds_per_sweep([&] {
        int ok = 0;
        for (const net::QueryRequest& request : mix)
            if (single.roundtrip(request, /*timeout_ms=*/60000).has_value())
                ++ok;
        return ok;
    });

    net::QueryClient pipelined("127.0.0.1", port);
    const double pipelined_sec = benchutil::seconds_per_sweep([&] {
        for (const net::QueryRequest& request : mix)
            if (!pipelined.send(request)) return 0;
        int ok = 0;
        for (std::size_t i = 0; i < mix.size(); ++i)
            if (pipelined.read_reply(/*timeout_ms=*/60000).has_value()) ++ok;
        return ok;
    });

    server.stop();

    const double direct_qps = queries / direct_sec;
    const double single_qps = queries / single_sec;
    const double pipelined_qps = queries / pipelined_sec;
    std::printf(
        "Query path (%zu-request mix, loopback TCP):\n"
        "  direct engine   : %12.0f queries/sec\n"
        "  server (1 deep) : %12.0f queries/sec  (%8.0f us/query)\n"
        "  server (piped)  : %12.0f queries/sec  (%8.0f us/query)\n"
        "  protocol tax    : %.0fx (direct vs 1-deep server)\n\n",
        mix.size(), direct_qps, single_qps, 1e6 / single_qps,
        pipelined_qps, 1e6 / pipelined_qps, direct_qps / single_qps);

    benchutil::JsonSummary("query")
        .field("workload", "library_mix")
        .field("requests", mix.size())
        .field("direct_queries_per_sec", direct_qps)
        .field("server_queries_per_sec", single_qps)
        .field("server_pipelined_queries_per_sec", pipelined_qps)
        .field("direct_vs_server", direct_qps / single_qps, 2)
        .print();

    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
