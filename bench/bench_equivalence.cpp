/// \file bench_equivalence.cpp
/// §5 ablation: cost of the equivalence-class enumeration (E = Π |C_i|
/// reduced TPGs, one exact ATSP each) and the effect of the cross-class
/// dedup optimisation that removes classes already covered by mandatory
/// patterns.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/generator.hpp"
#include "util/table.hpp"

namespace {

using namespace mtg;
using core::Generator;
using core::GeneratorOptions;

const char* kLists[] = {"CFin", "CFin,CFid", "SAF,TF,ADF,CFin",
                        "SAF,TF,ADF,CFin,CFid"};

void print_summary() {
    TextTable table;
    table.set_header({"Fault list", "combos (dedup)", "n", "s",
                      "combos (no dedup)", "n", "s"});
    for (const char* list : kLists) {
        GeneratorOptions with;
        const auto a = Generator(with).generate_for(list);
        GeneratorOptions without;
        without.cross_class_dedup = false;
        const auto b = Generator(without).generate_for(list);
        char as[32], bs[32];
        std::snprintf(as, sizeof as, "%.3f", a.seconds);
        std::snprintf(bs, sizeof bs, "%.3f", b.seconds);
        table.add_row({list, std::to_string(a.combinations_tried),
                       std::to_string(a.complexity) + "n", as,
                       std::to_string(b.combinations_tried),
                       std::to_string(b.complexity) + "n", bs});
    }
    std::printf("§5 class enumeration with/without cross-class dedup:\n\n%s\n",
                table.str().c_str());
}

void BM_WithDedup(benchmark::State& state) {
    Generator generator;
    const auto kinds = fault::parse_fault_kinds(kLists[state.range(0)]);
    for (auto _ : state) benchmark::DoNotOptimize(generator.generate(kinds));
    state.SetLabel(kLists[state.range(0)]);
}
BENCHMARK(BM_WithDedup)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_WithoutDedup(benchmark::State& state) {
    GeneratorOptions options;
    options.cross_class_dedup = false;
    Generator generator(options);
    const auto kinds = fault::parse_fault_kinds(kLists[state.range(0)]);
    for (auto _ : state) benchmark::DoNotOptimize(generator.generate(kinds));
    state.SetLabel(kLists[state.range(0)]);
}
BENCHMARK(BM_WithoutDedup)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

/// Start-constraint ablation (f.4.4): constrained-only vs both modes.
void BM_StartConstraintOnly(benchmark::State& state) {
    GeneratorOptions options;
    options.try_both_start_modes = false;
    Generator generator(options);
    const auto kinds = fault::parse_fault_kinds(kLists[state.range(0)]);
    for (auto _ : state) benchmark::DoNotOptimize(generator.generate(kinds));
    state.SetLabel(kLists[state.range(0)]);
}
BENCHMARK(BM_StartConstraintOnly)->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_summary();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
