#!/usr/bin/env python3
"""Diff fresh BENCH_*.json results against committed baselines.

Each BENCH_<tag>.json file holds one JSON object per line (one line per
bench summary section). Throughput keys end in `_per_sec` (faults/sec
from the kernel benches, queries/sec and probes/sec from the query and
synthesis benches); a fresh
value more than --threshold below its baseline emits a GitHub Actions
`::warning::` annotation — loud, but never a failure: shared runners are
too noisy to gate merges on, the committed baselines come from a quiet
dev box, and the warning is the signal to re-measure there.

A markdown comparison table is appended to $GITHUB_STEP_SUMMARY when set
(and always printed to stdout). Exit code is always 0.

Usage: bench_diff.py --baseline BENCH_word.json --fresh out/BENCH_word.json
"""

import argparse
import json
import os
import sys


def load_metrics(path):
    """{qualified_key: value} for every numeric *_per_sec field; keys
    are qualified by the line's `workload` field so sections cannot
    shadow each other."""
    metrics = {}
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                workload = record.get("workload", "")
                for key, value in record.items():
                    if not key.endswith("_per_sec"):
                        continue
                    if not isinstance(value, (int, float)):
                        continue
                    qualified = f"{workload}.{key}" if workload else key
                    metrics[qualified] = float(value)
    except OSError as error:
        print(f"bench_diff: cannot read {path}: {error}", file=sys.stderr)
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json baseline")
    parser.add_argument("--fresh", required=True,
                        help="freshly generated BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative regression that triggers a warning"
                             " (default 0.25 = 25%%)")
    parser.add_argument("--label", default="",
                        help="label for the summary table heading")
    args = parser.parse_args()

    baseline = load_metrics(args.baseline)
    fresh = load_metrics(args.fresh)

    label = args.label or os.path.basename(args.baseline)
    lines = [f"### Bench diff: {label}", "",
             "| metric | baseline | fresh | ratio |",
             "|---|---:|---:|---:|"]
    regressions = []
    for key in sorted(baseline.keys() | fresh.keys()):
        base = baseline.get(key)
        new = fresh.get(key)
        if base is None or new is None:
            status = "missing baseline" if base is None else "missing fresh"
            lines.append(f"| {key} | {base or '—':} | {new or '—':} |"
                         f" {status} |")
            continue
        ratio = new / base if base else float("inf")
        marker = ""
        if base and ratio < 1.0 - args.threshold:
            marker = " ⚠️"
            regressions.append((key, base, new, ratio))
        lines.append(f"| {key} | {base:,.0f} | {new:,.0f} |"
                     f" {ratio:.2f}x{marker} |")
    table = "\n".join(lines) + "\n"

    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        try:
            with open(summary_path, "a", encoding="utf-8") as handle:
                handle.write(table + "\n")
        except OSError as error:
            print(f"bench_diff: cannot append step summary: {error}",
                  file=sys.stderr)

    for key, base, new, ratio in regressions:
        print(f"::warning title=Bench regression ({label})::{key} dropped "
              f"to {ratio:.0%} of baseline ({base:,.0f} -> {new:,.0f})")
    if not regressions and baseline and fresh:
        print(f"bench_diff: no >{args.threshold:.0%} regressions in "
              f"{len(fresh)} metrics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
