#include <gtest/gtest.h>

#include "march/library.hpp"
#include "march/parser.hpp"

namespace mtg::march {
namespace {

/// Complexities as tabulated in van de Goor's survey — the baseline data
/// the paper's Table 3 compares against.
TEST(Library, DocumentedComplexities) {
    EXPECT_EQ(scan().complexity(), 4);
    EXPECT_EQ(mats().complexity(), 4);
    EXPECT_EQ(mats_plus().complexity(), 5);
    EXPECT_EQ(mats_plus_plus().complexity(), 6);
    EXPECT_EQ(march_x().complexity(), 6);
    EXPECT_EQ(march_y().complexity(), 8);
    EXPECT_EQ(march_c_minus().complexity(), 10);
    EXPECT_EQ(march_c().complexity(), 11);
    EXPECT_EQ(march_a().complexity(), 15);
    EXPECT_EQ(march_b().complexity(), 17);
    EXPECT_EQ(march_u().complexity(), 13);
    EXPECT_EQ(march_lr().complexity(), 14);
    EXPECT_EQ(march_sr().complexity(), 14);
    EXPECT_EQ(march_ss().complexity(), 22);
    EXPECT_EQ(pmovi().complexity(), 13);
}

TEST(Library, RegistryIsConsistent) {
    const auto& tests = known_march_tests();
    ASSERT_GE(tests.size(), 15u);
    for (const auto& named : tests) {
        EXPECT_FALSE(named.name.empty());
        EXPECT_FALSE(named.test.empty()) << named.name;
        EXPECT_FALSE(named.coverage.empty()) << named.name;
        // Every library test round-trips through the parser.
        EXPECT_EQ(parse_march(named.test.str()), named.test) << named.name;
    }
}

TEST(Library, FindByName) {
    EXPECT_EQ(find_march_test("MATS+").test, mats_plus());
    EXPECT_EQ(find_march_test("March C-").test, march_c_minus());
    EXPECT_THROW((void)find_march_test("March ZZZ"), std::invalid_argument);
}

TEST(Library, MarchCMinusStructure) {
    const MarchTest test = march_c_minus();
    ASSERT_EQ(test.size(), 6u);
    EXPECT_EQ(test[0].order, AddressOrder::Any);
    EXPECT_EQ(test[1].order, AddressOrder::Ascending);
    EXPECT_EQ(test[2].order, AddressOrder::Ascending);
    EXPECT_EQ(test[3].order, AddressOrder::Descending);
    EXPECT_EQ(test[4].order, AddressOrder::Descending);
    EXPECT_EQ(test[5].order, AddressOrder::Any);
}

TEST(Library, RetentionVariantHasDelays) {
    EXPECT_TRUE(mats_plus_retention().has_wait());
    EXPECT_EQ(mats_plus_retention().complexity(), 6);
}

}  // namespace
}  // namespace mtg::march
