/// Engine ≡ legacy API: every Query kind must match the old free
/// functions and the scalar oracles bit-for-bit across execution
/// backends (Scalar vs Packed vs Sharded with shard counts {1, 2, 3}),
/// lane widths {1, 4, 8} and worker counts {1, 2, hardware_concurrency}
/// — the backend, width, pool and shard count are execution details,
/// never semantic ones. Also covers the Engine's population cache and
/// the chunk-aligned shard split on multi-block populations.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "net/remote_backend.hpp"
#include "net/worker.hpp"
#include "sim/batch_runner.hpp"
#include "util/thread_pool.hpp"
#include "word/word_batch_runner.hpp"

namespace mtg {
namespace {

using engine::BackendKind;
using engine::BitUniverse;
using engine::Engine;
using engine::EngineConfig;
using engine::Query;
using engine::Result;
using engine::Want;
using engine::WordUniverse;
using fault::FaultKind;

std::vector<unsigned> worker_counts() {
    const unsigned hardware =
        std::max(1u, std::thread::hardware_concurrency());
    return {1u, 2u, hardware};
}

/// Every (backend, shards) combination the differential sweeps.
struct BackendCase {
    BackendKind kind;
    int shards;
    const char* label;
};

const BackendCase kBackendCases[] = {
    {BackendKind::Packed, 0, "packed"},
    {BackendKind::Sharded, 1, "sharded/1"},
    {BackendKind::Sharded, 2, "sharded/2"},
    {BackendKind::Sharded, 3, "sharded/3"},
};

const std::vector<FaultKind> kBitKinds = {
    FaultKind::Saf0,     FaultKind::TfUp, FaultKind::Rdf1,
    FaultKind::CfidUp0,  FaultKind::CfinDown, FaultKind::AfMap,
};

void expect_traces_eq(const std::vector<sim::RunTrace>& got,
                      const std::vector<sim::RunTrace>& want,
                      const char* label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].detected, want[i].detected) << label << " #" << i;
        ASSERT_EQ(got[i].failing_reads, want[i].failing_reads)
            << label << " #" << i;
        ASSERT_EQ(got[i].failing_observations, want[i].failing_observations)
            << label << " #" << i;
    }
}

void expect_word_traces_eq(const std::vector<word::WordRunTrace>& got,
                           const std::vector<word::WordRunTrace>& want,
                           const char* label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].detected, want[i].detected) << label << " #" << i;
        ASSERT_EQ(got[i].failing_reads, want[i].failing_reads)
            << label << " #" << i;
        ASSERT_EQ(got[i].failing_observations, want[i].failing_observations)
            << label << " #" << i;
    }
}

TEST(EngineDifferential, BitQueriesMatchScalarOracleEverywhere) {
    const sim::RunOptions opts{.memory_size = 5, .max_any_expansion = 6};
    for (const char* name : {"MATS", "March SS"}) {
        const auto& test = march::find_march_test(name).test;

        // Scalar-backend reference: the per-fault oracles.
        const Engine scalar(EngineConfig{.backend = BackendKind::Scalar});
        Query query;
        query.test = test;
        query.universe = BitUniverse{opts};
        query.kinds = kBitKinds;

        query.want = Want::Detects;
        const Result ref_detects = scalar.run(query);
        query.want = Want::Traces;
        const Result ref_traces = scalar.run(query);
        query.want = Want::DetectsAll;
        const Result ref_all = scalar.run(query);
        ASSERT_EQ(ref_all.all,
                  std::all_of(ref_detects.detected.begin(),
                              ref_detects.detected.end(),
                              [](bool b) { return b; }));

        // The legacy free functions (now wrappers over Engine::global())
        // agree with the scalar session.
        EXPECT_EQ(sim::covers_all(test, kBitKinds, opts), ref_all.all);
        EXPECT_EQ(sim::first_uncovered(test, kBitKinds, opts).has_value(),
                  !ref_all.all);

        for (const BackendCase& backend : kBackendCases) {
            for (int width : {1, 4, 8}) {
                for (unsigned workers : worker_counts()) {
                    util::ThreadPool pool(workers);
                    const Engine eng(EngineConfig{.backend = backend.kind,
                                                  .pool = &pool,
                                                  .lane_width = width,
                                                  .shards = backend.shards});
                    query.want = Want::Detects;
                    EXPECT_EQ(eng.run(query).detected, ref_detects.detected)
                        << name << ' ' << backend.label << " W" << width
                        << " workers " << workers;
                    query.want = Want::DetectsAll;
                    EXPECT_EQ(eng.run(query).all, ref_all.all)
                        << name << ' ' << backend.label << " W" << width
                        << " workers " << workers;
                    query.want = Want::Traces;
                    expect_traces_eq(eng.run(query).traces, ref_traces.traces,
                                     backend.label);
                }
            }
        }
    }
}

TEST(EngineDifferential, WordQueriesMatchScalarOracleEverywhere) {
    word::WordRunOptions opts;
    opts.words = 6;
    opts.width = 4;
    opts.max_any_expansion = 4;
    const auto backgrounds = word::counting_backgrounds(opts.width);
    const std::vector<FaultKind> kinds = {FaultKind::Saf1,
                                          FaultKind::CfidUp1};
    const auto& test = march::march_c_minus();

    const Engine scalar(EngineConfig{.backend = BackendKind::Scalar});
    Query query;
    query.test = test;
    query.universe = WordUniverse{backgrounds, opts};
    query.kinds = kinds;

    query.want = Want::Detects;
    const Result ref_detects = scalar.run(query);
    query.want = Want::Traces;
    const Result ref_traces = scalar.run(query);
    query.want = Want::DetectsAll;
    const Result ref_all = scalar.run(query);

    // Legacy word wrapper agrees per kind.
    for (FaultKind kind : kinds) {
        Query single = query;
        single.kinds = {kind};
        single.want = Want::DetectsAll;
        EXPECT_EQ(word::covers_everywhere(test, backgrounds, kind, opts),
                  scalar.run(single).all);
    }

    for (const BackendCase& backend : kBackendCases) {
        for (int width : {1, 4, 8}) {
            for (unsigned workers : worker_counts()) {
                util::ThreadPool pool(workers);
                const Engine eng(EngineConfig{.backend = backend.kind,
                                              .pool = &pool,
                                              .lane_width = width,
                                              .shards = backend.shards});
                query.want = Want::Detects;
                EXPECT_EQ(eng.run(query).detected, ref_detects.detected)
                    << backend.label << " W" << width << " workers "
                    << workers;
                query.want = Want::DetectsAll;
                EXPECT_EQ(eng.run(query).all, ref_all.all)
                    << backend.label << " W" << width << " workers "
                    << workers;
                query.want = Want::Traces;
                expect_word_traces_eq(eng.run(query).word_traces,
                                      ref_traces.word_traces, backend.label);
            }
        }
    }
}

TEST(EngineDifferential, DictionarySweepMatchesPlacedGuaranteedTraces) {
    const sim::RunOptions opts{.memory_size = 8, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const std::vector<FaultKind> kinds = {FaultKind::Saf0, FaultKind::TfUp,
                                          FaultKind::CfidUp0};

    const std::vector<fault::FaultInstance> instances =
        fault::instantiate(kinds);
    for (const BackendCase& backend : kBackendCases) {
        const Engine eng(EngineConfig{.backend = backend.kind,
                                      .shards = backend.shards});
        const Result sweep = eng.dictionary_sweep(test, kinds, opts);
        ASSERT_EQ(sweep.instances, instances) << backend.label;
        ASSERT_EQ(sweep.traces.size(), instances.size()) << backend.label;
        for (std::size_t i = 0; i < instances.size(); ++i) {
            const auto placed =
                sim::place_instance(instances[i], opts.memory_size);
            EXPECT_EQ(sweep.traces[i].failing_observations,
                      sim::guaranteed_failing_observations(test, placed,
                                                           opts))
                << backend.label << " #" << i;
            EXPECT_EQ(sweep.traces[i].failing_reads,
                      sim::guaranteed_failing_reads(test, placed, opts))
                << backend.label << " #" << i;
        }
    }
}

TEST(EngineDifferential, ShardedSplitsMultiBlockPopulations) {
    // n=24 -> 552 two-cell faults: more than one 504-lane block, so a
    // shard count of 2+ actually splits the range. The merged per-fault
    // verdicts and traces must equal the unsharded packed answers.
    const sim::RunOptions opts{.memory_size = 24, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(FaultKind::CfidUp0, opts.memory_size);
    ASSERT_GT(population.size(), std::size_t{504});

    const Engine packed(EngineConfig{.backend = BackendKind::Packed});
    const auto want_detects = packed.detects(test, population, opts);
    const auto want_traces = packed.traces(test, population, opts);
    for (int shards : {2, 3}) {
        const Engine sharded(EngineConfig{.backend = BackendKind::Sharded,
                                          .shards = shards});
        EXPECT_EQ(sharded.detects(test, population, opts), want_detects)
            << shards;
        expect_traces_eq(sharded.traces(test, population, opts), want_traces,
                         "sharded multi-block");
        EXPECT_EQ(
            sharded.covers_everywhere(test, FaultKind::CfidUp0, opts),
            packed.covers_everywhere(test, FaultKind::CfidUp0, opts))
            << shards;
    }
}

/// Loopback peer counts the remote differential sweeps. MTG_TEST_PEERS
/// pins a single count (the CI transport matrix leg runs {2, 4}).
std::vector<int> remote_peer_counts() {
    if (const char* env = std::getenv("MTG_TEST_PEERS")) {
        const int n = std::atoi(env);
        if (n > 0) return {n};
    }
    return {1, 2, 3};
}

TEST(EngineRemote, BitQueriesMatchPackedOverLoopbackPeers) {
    // n=24 -> multi-kind population of several 504-lane blocks, so the
    // coordinator genuinely scatters ranges across the fleet.
    const sim::RunOptions opts{.memory_size = 24, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const Engine packed;
    Query query;
    query.test = test;
    query.universe = BitUniverse{opts};
    query.kinds = kBitKinds;

    query.want = Want::Detects;
    const Result ref_detects = packed.run(query);
    query.want = Want::DetectsAll;
    const Result ref_all = packed.run(query);
    query.want = Want::Traces;
    const Result ref_traces = packed.run(query);
    const Result ref_sweep = packed.dictionary_sweep(test, kBitKinds, opts);

    for (const int peers : remote_peer_counts()) {
        net::LoopbackFleet fleet(peers);
        const Engine remote(engine::make_remote_backend(fleet.take_fds()));
        query.want = Want::Detects;
        EXPECT_EQ(remote.run(query).detected, ref_detects.detected)
            << peers << " peers";
        query.want = Want::DetectsAll;
        EXPECT_EQ(remote.run(query).all, ref_all.all) << peers << " peers";
        query.want = Want::Traces;
        expect_traces_eq(remote.run(query).traces, ref_traces.traces,
                         "remote bit traces");
        const Result sweep = remote.dictionary_sweep(test, kBitKinds, opts);
        ASSERT_EQ(sweep.instances, ref_sweep.instances) << peers << " peers";
        expect_traces_eq(sweep.traces, ref_sweep.traces,
                         "remote dictionary sweep");
    }
}

TEST(EngineRemote, WordQueriesMatchPackedOverLoopbackPeers) {
    word::WordRunOptions opts;
    opts.words = 6;
    opts.width = 4;
    opts.max_any_expansion = 4;
    const auto backgrounds = word::counting_backgrounds(opts.width);
    const std::vector<FaultKind> kinds = {FaultKind::Saf1,
                                          FaultKind::CfidUp1};
    const auto& test = march::march_c_minus();
    const Engine packed;
    Query query;
    query.test = test;
    query.universe = WordUniverse{backgrounds, opts};
    query.kinds = kinds;

    query.want = Want::Detects;
    const Result ref_detects = packed.run(query);
    query.want = Want::DetectsAll;
    const Result ref_all = packed.run(query);
    query.want = Want::Traces;
    const Result ref_traces = packed.run(query);
    const Result ref_sweep =
        packed.dictionary_sweep(test, backgrounds, kinds, opts);

    for (const int peers : remote_peer_counts()) {
        net::LoopbackFleet fleet(peers);
        const Engine remote(engine::make_remote_backend(fleet.take_fds()));
        query.want = Want::Detects;
        EXPECT_EQ(remote.run(query).detected, ref_detects.detected)
            << peers << " peers";
        query.want = Want::DetectsAll;
        EXPECT_EQ(remote.run(query).all, ref_all.all) << peers << " peers";
        query.want = Want::Traces;
        expect_word_traces_eq(remote.run(query).word_traces,
                              ref_traces.word_traces, "remote word traces");
        const Result sweep =
            remote.dictionary_sweep(test, backgrounds, kinds, opts);
        ASSERT_EQ(sweep.instances, ref_sweep.instances) << peers << " peers";
        expect_word_traces_eq(sweep.word_traces, ref_sweep.word_traces,
                              "remote word dictionary sweep");
    }
}

TEST(EngineRemote, SurvivesPeerKilledMidQuery) {
    // Peer 0 closes its connection on the first query WITHOUT replying;
    // the coordinator must re-dispatch its ranges to peer 1 and still
    // produce the packed answers.
    const sim::RunOptions opts{.memory_size = 24, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(fault::FaultKind::CfidUp0, opts.memory_size);
    ASSERT_GT(population.size(), std::size_t{504});

    const Engine packed;
    const auto want_detects = packed.detects(test, population, opts);
    const auto want_traces = packed.traces(test, population, opts);

    net::LoopbackFleet fleet(2, {{.die_after_queries = 1}, {}});
    const Engine remote(engine::make_remote_backend(fleet.take_fds()));
    EXPECT_EQ(remote.detects(test, population, opts), want_detects);
    expect_traces_eq(remote.traces(test, population, opts), want_traces,
                     "after peer death");
}

TEST(EngineRemote, StragglerRangesAreReDispatched) {
    // Peer 0 answers every query only after a delay far beyond the
    // straggler timeout: peer 1 must pick up the duplicated ranges, the
    // late duplicate replies are dropped first-wins, and the merged
    // answers stay bit-identical to packed.
    const sim::RunOptions opts{.memory_size = 24, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(fault::FaultKind::CfidUp0, opts.memory_size);

    const Engine packed;
    const auto want_detects = packed.detects(test, population, opts);

    net::LoopbackFleet fleet(2, {{.delay_ms = 2000}, {}});
    engine::RemoteOptions options;
    options.straggler_timeout_ms = 100;
    const Engine remote(
        engine::make_remote_backend(fleet.take_fds(), options));
    EXPECT_EQ(remote.detects(test, population, opts), want_detects);
    // A second query on the same session still works: the straggler's
    // stale replies must not desynchronize later queries.
    EXPECT_EQ(remote.detects(test, population, opts), want_detects);
}

TEST(EngineRemote, CorruptFramesMarkThePeerDeadWithoutHanging) {
    const sim::RunOptions opts{.memory_size = 24, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(fault::FaultKind::CfidUp0, opts.memory_size);

    const Engine packed;
    const auto want_detects = packed.detects(test, population, opts);

    {
        // Peer 0 replies with an undecodable (garbage) frame.
        net::LoopbackFleet fleet(2, {{.garbage_after_queries = 1}, {}});
        const Engine remote(engine::make_remote_backend(fleet.take_fds()));
        EXPECT_EQ(remote.detects(test, population, opts), want_detects);
    }
    {
        // Peer 0 sends a length prefix promising more bytes than arrive.
        net::LoopbackFleet fleet(2, {{.truncate_after_queries = 1}, {}});
        const Engine remote(engine::make_remote_backend(fleet.take_fds()));
        EXPECT_EQ(remote.detects(test, population, opts), want_detects);
    }
}

TEST(EngineRemote, AllPeersDeadThrows) {
    const sim::RunOptions opts{.memory_size = 8, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(fault::FaultKind::Saf0, opts.memory_size);

    net::LoopbackFleet fleet(1, {{.die_after_queries = 1}});
    engine::RemoteOptions options;  // FailFast is the default; pin it
    options.degrade = engine::DegradePolicy::FailFast;
    const Engine remote(
        engine::make_remote_backend(fleet.take_fds(), options));
    EXPECT_THROW((void)remote.detects(test, population, opts),
                 std::runtime_error);
}

TEST(EngineRemote, DegradeLocalCompletesWithAllPeersDead) {
    // The only peer dies mid-query and can never come back; with
    // DegradeLocal the coordinator routes every unanswered range through
    // its local packed "peer of last resort" — same verdicts, no throw.
    const sim::RunOptions opts{.memory_size = 24, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(fault::FaultKind::CfidUp0, opts.memory_size);

    const Engine packed;
    const auto want_detects = packed.detects(test, population, opts);
    const auto want_traces = packed.traces(test, population, opts);

    net::LoopbackFleet fleet(1, {{.die_after_queries = 1}});
    engine::RemoteOptions options;
    options.degrade = engine::DegradePolicy::DegradeLocal;
    const Engine remote(
        engine::make_remote_backend(fleet.take_fds(), options));
    EXPECT_EQ(remote.detects(test, population, opts), want_detects);
    // Follow-up queries on the now-peerless session degrade too.
    expect_traces_eq(remote.traces(test, population, opts), want_traces,
                     "degraded traces");
}

TEST(EngineRemote, DeadlineBudgetDegradesLocally) {
    // The only peer answers far too slowly; the per-query deadline stops
    // the wait and DegradeLocal completes the query with packed-identical
    // results instead of throwing.
    const sim::RunOptions opts{.memory_size = 24, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(fault::FaultKind::CfidUp0, opts.memory_size);

    const Engine packed;
    const auto want_detects = packed.detects(test, population, opts);

    net::LoopbackFleet fleet(1, {{.delay_ms = 2500}});
    engine::RemoteOptions options;
    options.query_deadline_ms = 200;
    options.degrade = engine::DegradePolicy::DegradeLocal;
    const Engine remote(
        engine::make_remote_backend(fleet.take_fds(), options));
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(remote.detects(test, population, opts), want_detects);
    // Well under the peer's 2.5 s answer: the deadline cut the wait.
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(2));
}

TEST(EngineRemote, DeadlineBudgetFailFastThrows) {
    const sim::RunOptions opts{.memory_size = 8, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(fault::FaultKind::Saf0, opts.memory_size);

    net::LoopbackFleet fleet(1, {{.delay_ms = 2500}});
    engine::RemoteOptions options;
    options.query_deadline_ms = 200;
    options.degrade = engine::DegradePolicy::FailFast;
    const Engine remote(
        engine::make_remote_backend(fleet.take_fds(), options));
    EXPECT_THROW((void)remote.detects(test, population, opts),
                 std::runtime_error);
}

TEST(EngineRemote, FlappedPeerReconnectsAndServesRanges) {
    // The ONLY peer flaps (dies mid-query but its fleet accepts a
    // reconnect) and the policy is FailFast — so the query can complete
    // only if the supervisor actually revives the peer and the revived
    // connection serves the requeued ranges.
    const sim::RunOptions opts{.memory_size = 24, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(fault::FaultKind::CfidUp0, opts.memory_size);

    const Engine packed;
    const auto want_detects = packed.detects(test, population, opts);

    net::LoopbackFleet fleet(1, {{.flap_after_queries = 1}});
    std::vector<engine::PeerConfig> peers(1);
    peers[0].fd = fleet.take_fds()[0];
    peers[0].connect = fleet.reconnector(0);
    engine::RemoteOptions options;
    options.degrade = engine::DegradePolicy::FailFast;
    options.reconnect_backoff_ms = 10;
    options.reconnect_backoff_max_ms = 100;
    const Engine remote(
        engine::make_remote_backend(std::move(peers), options));
    EXPECT_EQ(remote.detects(test, population, opts), want_detects);
    EXPECT_GE(fleet.connection_count(0), 2);  // it really reconnected
    EXPECT_GE(fleet.queries_answered(0), 1);  // and served ranges after
    // The revived session keeps working.
    EXPECT_EQ(remote.detects(test, population, opts), want_detects);
}

TEST(EngineRemote, PinnedV1FramesStillServe) {
    // frame_version = 1 skips the Hello exchange and speaks bare v1
    // frames — the pre-negotiation wire format keeps working end to end.
    const sim::RunOptions opts{.memory_size = 24, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(fault::FaultKind::CfidUp0, opts.memory_size);

    const Engine packed;
    const auto want_detects = packed.detects(test, population, opts);

    net::LoopbackFleet fleet(2);
    engine::RemoteOptions options;
    options.frame_version = 1;
    const Engine remote(
        engine::make_remote_backend(fleet.take_fds(), options));
    EXPECT_EQ(remote.detects(test, population, opts), want_detects);
}

TEST(EngineRemote, NegotiatesDownToV1OnlyPeers) {
    // One worker only admits frame v1 in the Hello exchange while the
    // other speaks v2: per-connection negotiation keeps both serving.
    const sim::RunOptions opts{.memory_size = 24, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(fault::FaultKind::CfidUp0, opts.memory_size);

    const Engine packed;
    const auto want_detects = packed.detects(test, population, opts);

    net::LoopbackFleet fleet(2, {{.max_frame_version = 1}, {}});
    const Engine remote(engine::make_remote_backend(fleet.take_fds()));
    EXPECT_EQ(remote.detects(test, population, opts), want_detects);
}

TEST(EngineRemote, EmptyPopulationNeedsNoNetwork) {
    // An empty population must short-circuit without touching the peers —
    // even a fleet that would corrupt every query never gets the chance.
    net::LoopbackFleet fleet(1, {{.garbage_after_queries = 1}});
    const Engine remote(engine::make_remote_backend(fleet.take_fds()));
    Query query;
    query.test = march::find_march_test("MATS").test;
    query.universe = BitUniverse{{.memory_size = 4}};
    query.want = Want::DetectsAll;
    EXPECT_TRUE(remote.run(query).all);
    query.want = Want::Detects;
    EXPECT_TRUE(remote.run(query).detected.empty());
}

TEST(EngineCache, PopulationsAreSharedAndKeyed) {
    const Engine eng;
    const auto a = eng.bit_population(kBitKinds, 8);
    const auto b = eng.bit_population(kBitKinds, 8);
    EXPECT_EQ(a.get(), b.get());  // cache hit: same expansion object
    EXPECT_EQ(a->faults,
              sim::full_population(engine::canonical_kinds(kBitKinds), 8));

    const auto c = eng.bit_population(kBitKinds, 9);
    EXPECT_NE(a.get(), c.get());  // different memory size, different entry
    EXPECT_EQ(c->faults,
              sim::full_population(engine::canonical_kinds(kBitKinds), 9));

    word::WordRunOptions opts;
    opts.words = 6;
    opts.width = 4;
    const std::vector<FaultKind> kinds = {FaultKind::CfidUp1};
    const auto w1 = eng.word_population(kinds, opts);
    const auto w2 = eng.word_population(kinds, opts);
    EXPECT_EQ(w1.get(), w2.get());
    EXPECT_EQ(w1->faults, word::coverage_population(FaultKind::CfidUp1, opts));
}

TEST(EngineCache, PermutedAndDuplicatedKindListsShareOneEntry) {
    // Regression: the cache used to key on the kind list verbatim, so a
    // permuted (or duplicated) caller list bred a second multi-megafault
    // copy of the same population and burned budget until eviction.
    const Engine eng;
    const std::vector<FaultKind> permuted = {
        FaultKind::AfMap,   FaultKind::CfinDown, FaultKind::CfidUp0,
        FaultKind::Rdf1,    FaultKind::TfUp,     FaultKind::Saf0,
    };
    std::vector<FaultKind> duplicated = kBitKinds;
    duplicated.insert(duplicated.end(), permuted.begin(), permuted.end());

    const auto a = eng.bit_population(kBitKinds, 8);
    const auto b = eng.bit_population(permuted, 8);
    const auto c = eng.bit_population(duplicated, 8);
    EXPECT_EQ(a.get(), b.get());  // same entry, not a re-expansion
    EXPECT_EQ(a.get(), c.get());
    EXPECT_EQ(a->kinds, engine::canonical_kinds(kBitKinds));
    ASSERT_EQ(a->offsets.size(), a->kinds.size() + 1);
    EXPECT_EQ(a->offsets.front(), 0u);
    EXPECT_EQ(a->offsets.back(), a->faults.size());

    // kind_of maps every fault index back to the kind whose expansion
    // owns it — the contract first_uncovered's miss mapping rests on.
    for (std::size_t k = 0; k < a->kinds.size(); ++k)
        for (std::size_t i = a->offsets[k]; i < a->offsets[k + 1]; ++i)
            ASSERT_EQ(a->kind_of(i), a->kinds[k]) << "index " << i;

    const auto stats = eng.population_cache()->stats();
    EXPECT_EQ(stats.misses, 1u);  // one expansion served all three lists
    EXPECT_GE(stats.hits, 2u);

    word::WordRunOptions opts;
    opts.words = 6;
    opts.width = 4;
    const auto w1 = eng.word_population(
        {FaultKind::CfidUp1, FaultKind::Saf0}, opts);
    const auto w2 = eng.word_population(
        {FaultKind::Saf0, FaultKind::CfidUp1, FaultKind::Saf0}, opts);
    EXPECT_EQ(w1.get(), w2.get());
}

TEST(EngineQuery, ExplicitFaultsMatchKindExpansion) {
    const sim::RunOptions opts{.memory_size = 6, .max_any_expansion = 6};
    const auto& test = march::find_march_test("MATS").test;
    const Engine eng;

    Query by_kinds;
    by_kinds.test = test;
    by_kinds.universe = BitUniverse{opts};
    by_kinds.want = Want::Detects;
    by_kinds.kinds = {FaultKind::CfstS1F0};

    Query by_faults = by_kinds;
    by_faults.kinds.clear();
    by_faults.bit_faults =
        sim::full_population(FaultKind::CfstS1F0, opts.memory_size);

    EXPECT_EQ(eng.run(by_kinds).detected, eng.run(by_faults).detected);
}

TEST(EngineQuery, EmptyKindDictionarySweepIsEmpty) {
    // Regression: an empty kind list must yield the empty sweep (the
    // dictionaries' and coverage matrix's historical degenerate), not a
    // precondition violation.
    const Engine eng;
    const auto& test = march::find_march_test("MATS").test;
    const Result bit_sweep =
        eng.dictionary_sweep(test, std::vector<FaultKind>{});
    EXPECT_TRUE(bit_sweep.instances.empty());
    EXPECT_TRUE(bit_sweep.traces.empty());
    EXPECT_TRUE(bit_sweep.all);
    const Result word_sweep =
        eng.dictionary_sweep(test, word::solid_background(4), {}, {});
    EXPECT_TRUE(word_sweep.instances.empty());
    EXPECT_TRUE(word_sweep.word_traces.empty());
    EXPECT_TRUE(word_sweep.all);
}

TEST(EngineRemote, MismatchedFrameCapKillsThePeerDeterministically) {
    // A worker whose cap is far below the coordinator's rejects the
    // (larger-than-cap) query frame as Corrupt and closes; the
    // coordinator sees the peer die and FailFast surfaces it — no hang,
    // no silent truncation. This is exactly the failure mode the
    // RemoteOptions::max_frame_bytes doc warns about when only one side
    // raises its cap.
    const sim::RunOptions opts{.memory_size = 8, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(fault::FaultKind::CfidUp0, opts.memory_size);
    ASSERT_GT(population.size(), 32u);  // query frame certainly > 512 B

    net::WorkerHooks hooks;
    hooks.max_frame_bytes = 512;
    net::LoopbackFleet fleet(1, {hooks});
    engine::RemoteOptions options;
    options.degrade = engine::DegradePolicy::FailFast;
    const Engine remote(
        engine::make_remote_backend(fleet.take_fds(), options));
    EXPECT_THROW((void)remote.traces(test, population, opts),
                 std::runtime_error);
}

TEST(EngineRemote, RaisedFrameCapServesBitIdenticalResults) {
    // A raised cap on both ends (RemoteOptions on the coordinator,
    // WorkerHooks on the worker) leaves every answer bit-identical to the
    // packed oracle — the cap is plumbing, not semantics.
    const sim::RunOptions opts{.memory_size = 16, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        sim::full_population(fault::FaultKind::CfidUp0, opts.memory_size);

    const Engine packed;
    const auto want_detects = packed.detects(test, population, opts);
    const auto want_traces = packed.traces(test, population, opts);

    net::WorkerHooks hooks;
    hooks.max_frame_bytes = 256u << 20;
    net::LoopbackFleet fleet(2, {hooks, hooks});
    engine::RemoteOptions options;
    options.max_frame_bytes = 256u << 20;
    const Engine remote(
        engine::make_remote_backend(fleet.take_fds(), options));
    EXPECT_EQ(remote.detects(test, population, opts), want_detects);
    expect_traces_eq(remote.traces(test, population, opts), want_traces,
                     "raised-cap traces");
}

TEST(EngineQuery, EmptyPopulationIsVacuouslyCovered) {
    Query query;
    query.test = march::find_march_test("MATS").test;
    query.universe = BitUniverse{{.memory_size = 4}};
    query.want = Want::DetectsAll;
    for (const BackendCase& backend : kBackendCases) {
        const Engine eng(EngineConfig{.backend = backend.kind,
                                      .shards = backend.shards});
        EXPECT_TRUE(eng.run(query).all) << backend.label;
        Query detects = query;
        detects.want = Want::Detects;
        EXPECT_TRUE(eng.run(detects).detected.empty()) << backend.label;
    }
}

}  // namespace
}  // namespace mtg
