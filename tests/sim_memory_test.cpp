#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace mtg::sim {
namespace {

using fault::FaultKind;

TEST(SimMemory, StartsUninitialised) {
    SimMemory memory(4);
    for (int c = 0; c < 4; ++c) EXPECT_EQ(memory.peek(c), Trit::X);
}

TEST(SimMemory, FaultFreeReadsBackWrites) {
    SimMemory memory(4);
    memory.write(0, 1);
    memory.write(3, 0);
    EXPECT_EQ(memory.read(0), Trit::One);
    EXPECT_EQ(memory.read(3), Trit::Zero);
    EXPECT_EQ(memory.read(1), Trit::X);  // never written
}

TEST(SimMemory, AddressBoundsEnforced) {
    SimMemory memory(2);
    EXPECT_THROW(memory.write(2, 0), ContractViolation);
    EXPECT_THROW((void)memory.read(-1), ContractViolation);
}

TEST(SimMemory, StuckAt0IgnoresWritesOf1) {
    SimMemory memory(4);
    memory.inject(InjectedFault::single(FaultKind::Saf0, 1));
    memory.write(1, 1);
    EXPECT_EQ(memory.read(1), Trit::Zero);
    memory.write(1, 0);
    EXPECT_EQ(memory.read(1), Trit::Zero);
}

TEST(SimMemory, StuckAt1IgnoresWritesOf0) {
    SimMemory memory(4);
    memory.inject(InjectedFault::single(FaultKind::Saf1, 2));
    memory.write(2, 0);
    EXPECT_EQ(memory.read(2), Trit::One);
}

TEST(SimMemory, TransitionFaultBlocksOnlyOneDirection) {
    SimMemory memory(4);
    memory.inject(InjectedFault::single(FaultKind::TfUp, 0));
    memory.write(0, 0);
    memory.write(0, 1);  // 0 -> 1 fails
    EXPECT_EQ(memory.read(0), Trit::Zero);

    SimMemory memory2(4);
    memory2.inject(InjectedFault::single(FaultKind::TfDown, 0));
    memory2.write(0, 1);
    memory2.write(0, 0);  // 1 -> 0 fails
    EXPECT_EQ(memory2.read(0), Trit::One);
    memory2.write(0, 1);  // up transitions fine (already 1: idempotent)
    EXPECT_EQ(memory2.read(0), Trit::One);
}

TEST(SimMemory, WriteDisturbFlipsOnNonTransitionWrite) {
    SimMemory memory(4);
    memory.inject(InjectedFault::single(FaultKind::Wdf0, 0));
    memory.write(0, 0);  // establishes 0 (from X: no disturb, old unknown...)
    memory.poke(0, Trit::Zero);
    memory.write(0, 0);  // w0 on 0 flips
    EXPECT_EQ(memory.read(0), Trit::One);
}

TEST(SimMemory, ReadDisturbFlipsAndReturnsWrongValue) {
    SimMemory memory(4);
    memory.inject(InjectedFault::single(FaultKind::Rdf0, 0));
    memory.write(0, 0);
    EXPECT_EQ(memory.read(0), Trit::One);   // wrong value returned
    EXPECT_EQ(memory.peek(0), Trit::One);   // and the cell flipped
}

TEST(SimMemory, DeceptiveReadDisturbReturnsCorrectThenCorrupts) {
    SimMemory memory(4);
    memory.inject(InjectedFault::single(FaultKind::Drdf1, 0));
    memory.write(0, 1);
    EXPECT_EQ(memory.read(0), Trit::One);   // first read looks fine
    EXPECT_EQ(memory.peek(0), Trit::Zero);  // but the cell flipped
    EXPECT_EQ(memory.read(0), Trit::Zero);  // second read reveals it
}

TEST(SimMemory, IncorrectReadFaultLiesWithoutFlipping) {
    SimMemory memory(4);
    memory.inject(InjectedFault::single(FaultKind::Irf0, 0));
    memory.write(0, 0);
    EXPECT_EQ(memory.read(0), Trit::One);
    EXPECT_EQ(memory.peek(0), Trit::Zero);
}

TEST(SimMemory, RetentionFaultDecaysOnWait) {
    SimMemory memory(4);
    memory.inject(InjectedFault::single(FaultKind::Drf0, 0));
    memory.write(0, 1);
    EXPECT_EQ(memory.read(0), Trit::One);  // holds before the delay
    memory.wait();
    EXPECT_EQ(memory.read(0), Trit::Zero);
}

TEST(SimMemory, InversionCouplingOnRisingAggressor) {
    SimMemory memory(4);
    memory.inject(InjectedFault::coupling(FaultKind::CfinUp, 1, 3));
    memory.write(3, 1);
    memory.write(1, 0);
    memory.write(1, 1);  // rising aggressor -> victim inverts
    EXPECT_EQ(memory.read(3), Trit::Zero);
    memory.write(1, 1);  // idempotent write: no transition, no inversion
    EXPECT_EQ(memory.read(3), Trit::Zero);
}

TEST(SimMemory, IdempotentCouplingForcesValue) {
    SimMemory memory(4);
    memory.inject(InjectedFault::coupling(FaultKind::CfidDown1, 0, 2));
    memory.write(2, 0);
    memory.write(0, 1);
    memory.write(0, 0);  // falling aggressor -> victim forced to 1
    EXPECT_EQ(memory.read(2), Trit::One);
    // Forcing to the value it already has changes nothing.
    memory.write(0, 1);
    memory.write(0, 0);
    EXPECT_EQ(memory.read(2), Trit::One);
}

TEST(SimMemory, StateCouplingHoldsVictimWhileAggressorInState) {
    SimMemory memory(4);
    memory.inject(InjectedFault::coupling(FaultKind::CfstS1F0, 0, 1));
    memory.write(0, 1);  // aggressor enters state 1
    memory.write(1, 1);  // victim write is overridden to 0
    EXPECT_EQ(memory.read(1), Trit::Zero);
    memory.write(0, 0);  // aggressor leaves state 1
    memory.write(1, 1);  // now the victim can hold 1
    EXPECT_EQ(memory.read(1), Trit::One);
}

TEST(SimMemory, AddressFaultWritesThrough) {
    SimMemory memory(4);
    memory.inject(InjectedFault::coupling(FaultKind::Af, 0, 2));
    memory.write(2, 1);
    memory.write(0, 0);  // also lands on cell 2
    EXPECT_EQ(memory.read(2), Trit::Zero);
    EXPECT_EQ(memory.read(0), Trit::Zero);
}

TEST(SimMemory, FaultsAreLocalToTheirCells) {
    SimMemory memory(4);
    memory.inject(InjectedFault::single(FaultKind::Saf0, 1));
    memory.inject(InjectedFault::coupling(FaultKind::CfinUp, 2, 3));
    memory.write(0, 1);
    EXPECT_EQ(memory.read(0), Trit::One);  // untouched by either fault
}

TEST(SimMemory, InjectedFaultFactoriesValidateArity) {
    EXPECT_THROW((void)InjectedFault::single(FaultKind::CfinUp, 0),
                 ContractViolation);
    EXPECT_THROW((void)InjectedFault::coupling(FaultKind::Saf0, 0, 1),
                 ContractViolation);
    EXPECT_THROW((void)InjectedFault::coupling(FaultKind::CfinUp, 1, 1),
                 ContractViolation);
}

}  // namespace
}  // namespace mtg::sim
