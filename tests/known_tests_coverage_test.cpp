#include <gtest/gtest.h>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "sim/march_runner.hpp"

namespace mtg {
namespace {

using fault::FaultKind;
using march::MarchTest;

/// Classical coverage claims from van de Goor's survey, reproduced on our
/// fault simulator. These are the ground-truth anchors for the whole
/// reproduction: if the simulator disagreed with 30 years of literature,
/// everything downstream would be suspect.
struct CoverageCase {
    const char* test_name;
    const char* covered;      // fault families the test must fully cover
    const char* not_covered;  // families with at least one escape
};

class KnownCoverage : public ::testing::TestWithParam<CoverageCase> {};

TEST_P(KnownCoverage, MatchesLiterature) {
    const CoverageCase& param = GetParam();
    const MarchTest& test = march::find_march_test(param.test_name).test;

    for (FaultKind kind : fault::parse_fault_kinds(param.covered)) {
        EXPECT_TRUE(sim::covers_everywhere(test, kind))
            << param.test_name << " should cover " << fault::fault_kind_name(kind);
    }
    if (std::string(param.not_covered).empty()) return;
    for (FaultKind kind : fault::parse_fault_kinds(param.not_covered)) {
        EXPECT_FALSE(sim::covers_everywhere(test, kind))
            << param.test_name << " should NOT fully cover "
            << fault::fault_kind_name(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Literature, KnownCoverage,
    ::testing::Values(
        // SCAN: stuck-at only; misses TF (no read after both transitions
        // in-place? SCAN = w0,r0,w1,r1 actually covers TF<^>... it misses
        // TF<v>: the final w0 is never read back).
        CoverageCase{"SCAN", "SAF", "TF<v>,CFid<^,0>"},
        // MATS: SAF; misses down-transition faults, falling-inversion
        // coupling (its only falling write is never observed) and decoder
        // faults. Rising inversions are caught by its r0/r1 pairs.
        CoverageCase{"MATS", "SAF,CFin<^>", "TF<v>,CFin<v>,AF"},
        // MATS+: SAF + AF (the decoder-fault baseline of Table 3 row 2).
        CoverageCase{"MATS+", "SAF,AF", "TF<v>"},
        // MATS++: SAF + TF + AF (Table 3 row 3 equivalent).
        CoverageCase{"MATS++", "SAF,TF,AF", "CFid<^,0>"},
        // March X: adds inversion coupling (Table 3 row 4 equivalent).
        CoverageCase{"March X", "SAF,TF,AF,CFin", "CFid<v,1>"},
        // March Y: March X plus linked TF; still no idempotent CFs.
        CoverageCase{"March Y", "SAF,TF,AF,CFin", "CFid<v,0>"},
        // March C-: the Table 3 row 5 equivalent — everything unlinked.
        CoverageCase{"March C-", "SAF,TF,AF,CFin,CFid,CFst", ""},
        // March C: same coverage as March C- (with a redundant element).
        CoverageCase{"March C", "SAF,TF,AF,CFin,CFid,CFst", ""},
        // March A / March B: complete for the unlinked static set too.
        CoverageCase{"March A", "SAF,TF,AF,CFin,CFid", ""},
        CoverageCase{"March B", "SAF,TF,AF,CFin,CFid", ""},
        // March U: complete unlinked coverage.
        CoverageCase{"March U", "SAF,TF,AF,CFin,CFid", ""},
        // March SS covers the simple static faults including disturbs.
        CoverageCase{"March SS", "SAF,TF,AF,CFin,CFid,CFst,WDF,IRF", ""},
        // PMOVI detects the March C- set except CFid<v,1> with a lower
        // aggressor: its last falling write corrupts an already-swept
        // victim and, unlike March C-, no trailing read element remains.
        CoverageCase{"PMOVI", "SAF,TF,AF,CFin,CFid<^,0>,CFid<^,1>,CFid<v,0>",
                     "CFid<v,1>"}),
    [](const ::testing::TestParamInfo<CoverageCase>& info) {
        std::string name = info.param.test_name;
        for (char& c : name)
            if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
        return name;
    });

/// Read-disturb coverage needs back-to-back reads: March SR has them,
/// March C- does not (DRDF escapes March C-; RDF is caught by any read).
TEST(KnownCoverageExtras, ReadDisturbs) {
    EXPECT_TRUE(sim::covers_everywhere(march::find_march_test("March SR").test,
                                       FaultKind::Rdf0));
    EXPECT_TRUE(sim::covers_everywhere(march::march_c_minus(), FaultKind::Rdf0));
    EXPECT_TRUE(sim::covers_everywhere(march::march_c_minus(), FaultKind::Rdf1));
    EXPECT_FALSE(
        sim::covers_everywhere(march::march_c_minus(), FaultKind::Drdf0));
    EXPECT_TRUE(sim::covers_everywhere(march::march_ss(), FaultKind::Drdf0));
    EXPECT_TRUE(sim::covers_everywhere(march::march_ss(), FaultKind::Drdf1));
}

/// Data-retention faults need an explicit delay element.
TEST(KnownCoverageExtras, RetentionNeedsDelay) {
    EXPECT_FALSE(sim::covers_everywhere(march::mats_plus(), FaultKind::Drf0));
    const auto& with_delay = march::find_march_test("MATS+Del").test;
    EXPECT_TRUE(sim::covers_everywhere(with_delay, FaultKind::Drf0));
    EXPECT_TRUE(sim::covers_everywhere(with_delay, FaultKind::Drf1));
}

/// Write disturbs require a non-transition write followed by a read.
TEST(KnownCoverageExtras, WriteDisturbs) {
    EXPECT_FALSE(sim::covers_everywhere(march::mats(), FaultKind::Wdf0));
    EXPECT_TRUE(sim::covers_everywhere(march::march_ss(), FaultKind::Wdf0));
    EXPECT_TRUE(sim::covers_everywhere(march::march_ss(), FaultKind::Wdf1));
}

}  // namespace
}  // namespace mtg
