/// Randomized differential tests for the word-lane packed kernel:
/// PackedWordMemory lane-i behaviour must be bit-identical to a scalar
/// WordMemory carrying the same injected bit fault over random whole-word
/// operation sequences, and WordBatchRunner must reproduce the scalar
/// word::detects verdict lane-for-lane for every FaultKind — the scalar
/// word simulator is the ground-truth oracle for the word-oriented
/// bit-parallel kernel.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "util/rng.hpp"
#include "word/background.hpp"
#include "word/packed_word_memory.hpp"
#include "word/word_batch_runner.hpp"
#include "word/word_march.hpp"
#include "word/word_memory.hpp"

namespace mtg::word {
namespace {

using fault::FaultKind;

constexpr int kWords = 3;
constexpr int kWidth = 4;

/// Random placement of `kind` on a kWords × kWidth memory; two-cell kinds
/// land on any pair of distinct bit positions (intra- or inter-word).
InjectedBitFault random_placement(FaultKind kind, SplitMix64& rng) {
    const BitAddr a{rng.range(0, kWords - 1), rng.range(0, kWidth - 1)};
    if (!fault::is_two_cell(kind)) return InjectedBitFault::single(kind, a);
    for (;;) {
        const BitAddr b{rng.range(0, kWords - 1), rng.range(0, kWidth - 1)};
        if (!(b == a)) return InjectedBitFault::coupling(kind, a, b);
    }
}

/// Drives scalar and packed word memories through the same random
/// whole-word op sequence and compares every read result and the full bit
/// state after every operation.
void run_differential(const InjectedBitFault& fault, SplitMix64& rng, int lane,
                      int ops) {
    WordMemory scalar(kWords, kWidth);
    PackedWordMemory packed(kWords, kWidth);
    scalar.inject(fault);
    packed.inject(fault, LaneMask{1} << lane);
    const std::string label = fault_kind_name(fault.kind);

    PackedWordMemory::ReadResult got[64];
    for (int step = 0; step < ops; ++step) {
        const int choice = rng.range(0, 9);
        const int word = rng.range(0, kWords - 1);
        if (choice < 5) {
            const auto value =
                rng.next() & ((std::uint64_t{1} << kWidth) - 1);
            scalar.write(word, value);
            packed.write(word, value);
        } else if (choice < 9) {
            const std::vector<Trit> expected = scalar.read(word);
            packed.read(word, got);
            for (int b = 0; b < kWidth; ++b) {
                const Trit want = expected[static_cast<std::size_t>(b)];
                const bool known = (got[b].known >> lane) & 1u;
                ASSERT_EQ(known, is_known(want))
                    << "read w" << word << " bit " << b << " step " << step
                    << " fault " << label;
                if (known) {
                    ASSERT_EQ(static_cast<int>((got[b].value >> lane) & 1u),
                              trit_bit(want))
                        << "read w" << word << " bit " << b << " step "
                        << step << " fault " << label;
                }
            }
        } else {
            scalar.wait();
            packed.wait();
        }
        for (int w = 0; w < kWords; ++w)
            for (int b = 0; b < kWidth; ++b)
                ASSERT_EQ(packed.peek({w, b}, lane), scalar.peek({w, b}))
                    << "bit (" << w << ',' << b << ") step " << step
                    << " fault " << label;
    }
}

TEST(PackedWordDifferential, EveryFaultKindMatchesScalarOracle) {
    SplitMix64 rng(0x00D5EEDULL);
    for (FaultKind kind : fault::all_fault_kinds()) {
        for (int trial = 0; trial < 25; ++trial) {
            const InjectedBitFault fault = random_placement(kind, rng);
            const int lane = rng.range(0, kLaneCount - 1);
            run_differential(fault, rng, lane, 50);
            if (HasFatalFailure()) return;
        }
    }
}

TEST(PackedWordDifferential, IntraWordCouplingMatchesScalar) {
    // Intra-word pairs are the word-specific regime (simultaneous
    // aggressor/victim writes); force them explicitly for every two-cell
    // kind.
    SplitMix64 rng(0x1A7BA5EULL);
    for (FaultKind kind : fault::all_fault_kinds()) {
        if (!fault::is_two_cell(kind)) continue;
        for (int trial = 0; trial < 15; ++trial) {
            const int w = rng.range(0, kWords - 1);
            const int a = rng.range(0, kWidth - 1);
            int v = rng.range(0, kWidth - 2);
            if (v >= a) ++v;
            run_differential(
                InjectedBitFault::coupling(kind, {w, a}, {w, v}), rng,
                rng.range(0, kLaneCount - 1), 50);
            if (HasFatalFailure()) return;
        }
    }
}

TEST(PackedWordMemory, SixtyThreeLanesRunIndependently) {
    SplitMix64 rng(0x30D5ULL);
    std::vector<WordMemory> scalars;
    PackedWordMemory packed(kWords, kWidth);
    const auto& kinds = fault::all_fault_kinds();
    for (int lane = 1; lane < kLaneCount; ++lane) {
        const FaultKind kind =
            kinds[static_cast<std::size_t>(rng.below(kinds.size()))];
        const InjectedBitFault fault = random_placement(kind, rng);
        scalars.emplace_back(kWords, kWidth);
        scalars.back().inject(fault);
        packed.inject(fault, LaneMask{1} << lane);
    }
    WordMemory reference(kWords, kWidth);  // lane 0

    PackedWordMemory::ReadResult got[64];
    for (int step = 0; step < 150; ++step) {
        const int choice = rng.range(0, 9);
        const int word = rng.range(0, kWords - 1);
        if (choice < 5) {
            const auto value =
                rng.next() & ((std::uint64_t{1} << kWidth) - 1);
            reference.write(word, value);
            for (auto& s : scalars) s.write(word, value);
            packed.write(word, value);
        } else if (choice < 9) {
            const std::vector<Trit> ref = reference.read(word);
            packed.read(word, got);
            for (int b = 0; b < kWidth; ++b)
                ASSERT_EQ(((got[b].known >> 0) & 1u) != 0,
                          is_known(ref[static_cast<std::size_t>(b)]));
            for (int lane = 1; lane < kLaneCount; ++lane) {
                const std::vector<Trit> expected =
                    scalars[static_cast<std::size_t>(lane - 1)].read(word);
                for (int b = 0; b < kWidth; ++b) {
                    const Trit want = expected[static_cast<std::size_t>(b)];
                    const bool known = (got[b].known >> lane) & 1u;
                    ASSERT_EQ(known, is_known(want))
                        << "lane " << lane << " bit " << b;
                    if (known) {
                        ASSERT_EQ(
                            static_cast<int>((got[b].value >> lane) & 1u),
                            trit_bit(want))
                            << "lane " << lane << " bit " << b;
                    }
                }
            }
        } else {
            reference.wait();
            for (auto& s : scalars) s.wait();
            packed.wait();
        }
    }
    for (int w = 0; w < kWords; ++w)
        for (int b = 0; b < kWidth; ++b) {
            ASSERT_EQ(packed.peek({w, b}, 0), reference.peek({w, b}));
            for (int lane = 1; lane < kLaneCount; ++lane)
                ASSERT_EQ(
                    packed.peek({w, b}, lane),
                    scalars[static_cast<std::size_t>(lane - 1)].peek({w, b}))
                    << "bit (" << w << ',' << b << ") lane " << lane;
        }
}

TEST(PackedWordMemory, RejectsTwoFaultsInOneLane) {
    PackedWordMemory packed(2, 4);
    packed.inject(InjectedBitFault::single(FaultKind::Saf0, {0, 1}), 0b10);
    EXPECT_THROW(
        packed.inject(InjectedBitFault::single(FaultKind::Saf1, {1, 2}), 0b110),
        ContractViolation);
}

TEST(WordBatchRunner, MatchesScalarDetectsForEveryFaultKind) {
    SplitMix64 rng(0xD1FFULL);
    WordRunOptions opts;
    opts.words = kWords;
    opts.width = kWidth;
    const auto backgrounds = counting_backgrounds(kWidth);
    for (const char* name : {"MATS", "MATS++", "March C-"}) {
        const auto& test = march::find_march_test(name).test;
        const WordBatchRunner runner(test, backgrounds, opts);
        for (FaultKind kind : fault::all_fault_kinds()) {
            std::vector<InjectedBitFault> population;
            for (int trial = 0; trial < 8; ++trial)
                population.push_back(random_placement(kind, rng));
            const std::vector<bool> batched = runner.detects(population);
            for (std::size_t i = 0; i < population.size(); ++i)
                ASSERT_EQ(batched[i],
                          detects(test, backgrounds, population[i], opts))
                    << name << ' ' << fault_kind_name(kind) << " placement "
                    << i;
        }
    }
}

TEST(WordBatchRunner, PopulationsLargerThanOneChunk) {
    // 8 words × 16 bits = 128 single-bit placements: three packed chunks.
    WordRunOptions opts;
    opts.width = 16;
    const auto backgrounds = counting_backgrounds(16);
    const auto population =
        coverage_population(FaultKind::TfDown, opts);
    ASSERT_GT(population.size(), 2u * 63u);
    const auto& test = march::march_c_minus();
    const auto batched =
        WordBatchRunner(test, backgrounds, opts).detects(population);
    for (std::size_t i = 0; i < population.size(); ++i)
        ASSERT_TRUE(batched[i]) << i;
}

TEST(WordBatchRunner, CoversEverywhereMatchesScalarSweep) {
    // The batched covers_everywhere must agree with a scalar per-placement
    // sweep — both on fully-covered lists and on the known escape regimes
    // (solid-background CFid, MATS TF<v>).
    WordRunOptions opts;
    opts.width = 4;
    const struct {
        const char* march;
        bool counting;
        FaultKind kind;
    } cases[] = {
        {"March C-", true, FaultKind::CfidUp1},
        {"March C-", false, FaultKind::CfidUp1},
        {"March C-", true, FaultKind::CfstS1F0},
        {"MATS", false, FaultKind::TfDown},
        {"MATS", true, FaultKind::TfDown},
        {"MATS++", false, FaultKind::Saf0},
        {"March C-", true, FaultKind::CfinDown},
    };
    for (const auto& c : cases) {
        const auto& test = march::find_march_test(c.march).test;
        const auto backgrounds = c.counting ? counting_backgrounds(opts.width)
                                            : solid_background(opts.width);
        bool scalar = true;
        for (const InjectedBitFault& fault :
             coverage_population(c.kind, opts))
            scalar = scalar && detects(test, backgrounds, fault, opts);
        EXPECT_EQ(covers_everywhere(test, backgrounds, c.kind, opts), scalar)
            << c.march << ' ' << fault_kind_name(c.kind) << " counting="
            << c.counting;
    }
}

TEST(CoveragePopulation, MatchesDocumentedPlacementCounts) {
    WordRunOptions opts;  // 8 words × 8 bits
    EXPECT_EQ(coverage_population(FaultKind::Saf1, opts).size(), 64u);
    // 8·7 intra-word pairs + 8·7 inter-word pairs + 1 cross pair.
    EXPECT_EQ(coverage_population(FaultKind::CfidUp0, opts).size(), 113u);
    WordRunOptions narrow;
    narrow.width = 1;
    narrow.words = 4;
    // width 1: no intra-word pairs, no cross pair — inter-word only.
    EXPECT_EQ(coverage_population(FaultKind::CfinUp, narrow).size(), 12u);
}

TEST(CoveragePopulation, NeverContainsDuplicatePlacements) {
    // Regression: at words == 1 the "cross-bit" pair {0,0} -> {0, width-1}
    // collided with the identical intra-word pair, double-counting one
    // placement in every two-cell coverage population (and skewing any
    // per-fault verdict vector built over it).
    const std::vector<FaultKind> kinds = {
        FaultKind::Saf0,   FaultKind::TfDown,   FaultKind::CfidUp0,
        FaultKind::CfinUp, FaultKind::CfstS1F0, FaultKind::AfMap,
    };
    for (int words : {1, 2, 3, 8}) {
        for (int width : {1, 2, 4, 8}) {
            WordRunOptions opts;
            opts.words = words;
            opts.width = width;
            for (const FaultKind kind : kinds) {
                const auto population = coverage_population(kind, opts);
                for (std::size_t i = 0; i < population.size(); ++i)
                    for (std::size_t j = i + 1; j < population.size(); ++j)
                        ASSERT_FALSE(population[i] == population[j])
                            << fault::fault_kind_name(kind) << " words="
                            << words << " width=" << width << " #" << i
                            << " == #" << j;
            }
        }
    }
}

}  // namespace
}  // namespace mtg::word
