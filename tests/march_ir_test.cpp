#include <gtest/gtest.h>

#include "march/library.hpp"
#include "march/march_test.hpp"
#include "march/parser.hpp"
#include "util/rng.hpp"

namespace mtg::march {
namespace {

TEST(MarchOp, Printing) {
    EXPECT_EQ(MarchOp::r(0).str(), "r0");
    EXPECT_EQ(MarchOp::r(1).str(), "r1");
    EXPECT_EQ(MarchOp::w(0).str(), "w0");
    EXPECT_EQ(MarchOp::w(1).str(), "w1");
    EXPECT_EQ(MarchOp::del().str(), "del");
}

TEST(MarchElement, OpCountExcludesWait) {
    MarchElement e(AddressOrder::Any,
                   {MarchOp::w(0), MarchOp::del(), MarchOp::r(0)});
    EXPECT_EQ(e.op_count(), 2);
}

TEST(MarchElement, EmptyElementRejected) {
    EXPECT_THROW(MarchElement(AddressOrder::Any, std::vector<MarchOp>{}),
                 ContractViolation);
}

TEST(MarchTest, ComplexityIsTotalOpsPerCell) {
    MarchTest mats{{AddressOrder::Any, {MarchOp::w(0)}},
                   {AddressOrder::Any, {MarchOp::r(0), MarchOp::w(1)}},
                   {AddressOrder::Any, {MarchOp::r(1)}}};
    EXPECT_EQ(mats.complexity(), 4);
    EXPECT_EQ(mats.read_count(), 2);
    EXPECT_FALSE(mats.has_wait());
}

TEST(MarchTest, PrintAscii) {
    MarchTest test{{AddressOrder::Any, {MarchOp::w(0)}},
                   {AddressOrder::Ascending, {MarchOp::r(0), MarchOp::w(1)}},
                   {AddressOrder::Descending, {MarchOp::r(1), MarchOp::w(0)}}};
    EXPECT_EQ(test.str(), "{~(w0); ^(r0,w1); v(r1,w0)}");
}

TEST(MarchTest, PrintUnicodeArrows) {
    MarchTest test{{AddressOrder::Ascending, {MarchOp::r(0)}}};
    EXPECT_EQ(test.str(Notation::Unicode), "{⇑(r0)}");
}

TEST(Opposite, FlipsConcreteOrders) {
    EXPECT_EQ(opposite(AddressOrder::Ascending), AddressOrder::Descending);
    EXPECT_EQ(opposite(AddressOrder::Descending), AddressOrder::Ascending);
    EXPECT_THROW(opposite(AddressOrder::Any), ContractViolation);
}

TEST(Parser, ParsesMatsPlus) {
    const MarchTest test = parse_march("{~(w0); ^(r0,w1); v(r1,w0)}");
    ASSERT_EQ(test.size(), 3u);
    EXPECT_EQ(test[0].order, AddressOrder::Any);
    EXPECT_EQ(test[1].order, AddressOrder::Ascending);
    EXPECT_EQ(test[2].order, AddressOrder::Descending);
    EXPECT_EQ(test.complexity(), 5);
}

TEST(Parser, AcceptsUnicodeArrows) {
    const MarchTest test = parse_march("{⇕(w0); ⇑(r0,w1); ⇓(r1)}");
    EXPECT_EQ(test.complexity(), 4);
    EXPECT_EQ(test[1].order, AddressOrder::Ascending);
}

TEST(Parser, AcceptsBracelessAndWhitespace) {
    const MarchTest test = parse_march("  ~( w0 ) ; ^(r0, w1) ");
    EXPECT_EQ(test.size(), 2u);
}

TEST(Parser, ParsesDelays) {
    const MarchTest test = parse_march("{~(w0); ~(del); ~(r0)}");
    EXPECT_TRUE(test.has_wait());
    EXPECT_EQ(test.complexity(), 2);  // del not counted
}

TEST(Parser, RoundTripsThroughPrint) {
    const char* sources[] = {
        "{~(w0); ^(r0,w1); v(r1,w0,r0)}",
        "{v(w0); ^(r0,w1,r1,w0); ^(r0,r0); ^(w1); v(r1,w0,r0,w1); v(r1,r1)}",
        "{~(w0); ~(del); ~(r0)}",
    };
    for (const char* source : sources) {
        const MarchTest parsed = parse_march(source);
        EXPECT_EQ(parse_march(parsed.str()), parsed) << source;
    }
}

TEST(Parser, RoundTripsEveryLibraryTestInBothNotations) {
    for (const auto& named : known_march_tests()) {
        for (const Notation notation : {Notation::Ascii, Notation::Unicode}) {
            const std::string text = named.test.str(notation);
            EXPECT_EQ(parse_march(text), named.test) << text;
        }
    }
}

TEST(Parser, RoundTripsRandomTestsIncludingDelays) {
    // The synthesis probe cache keys on rendered text, so
    // parse(render(t)) == t must hold for arbitrary op soups — including
    // Wait ops, whose unused value byte must not break equality.
    SplitMix64 rng(20260807);
    for (int trial = 0; trial < 500; ++trial) {
        MarchTest test;
        const int elements = rng.range(1, 6);
        for (int e = 0; e < elements; ++e) {
            const auto order = static_cast<AddressOrder>(rng.range(0, 2));
            std::vector<MarchOp> ops;
            const int count = rng.range(1, 6);
            for (int i = 0; i < count; ++i) {
                switch (rng.range(0, 4)) {
                    case 0: ops.push_back(MarchOp::r(0)); break;
                    case 1: ops.push_back(MarchOp::r(1)); break;
                    case 2: ops.push_back(MarchOp::w(0)); break;
                    case 3: ops.push_back(MarchOp::w(1)); break;
                    default:
                        // Adversarial Wait: a junk value byte a hand-built
                        // op could carry. Prints as plain "del".
                        ops.push_back(MarchOp{OpKind::Wait,
                                              static_cast<std::uint8_t>(
                                                  rng.range(0, 1))});
                        break;
                }
            }
            test.push_back(MarchElement(order, std::move(ops)));
        }
        for (const Notation notation : {Notation::Ascii, Notation::Unicode}) {
            const std::string text = test.str(notation);
            ASSERT_EQ(parse_march(text), test) << text;
        }
    }
}

TEST(MarchOp, WaitComparesEqualRegardlessOfValueByte) {
    // No simulator reads a Wait's value and "del" prints without one;
    // equality canonicalises it away so text identity == op identity.
    EXPECT_EQ((MarchOp{OpKind::Wait, 1}), MarchOp::del());
    EXPECT_NE((MarchOp{OpKind::Write, 1}), (MarchOp{OpKind::Write, 0}));
}

TEST(Parser, RejectsMalformedInput) {
    EXPECT_THROW((void)parse_march(""), ParseError);
    EXPECT_THROW((void)parse_march("{}"), ParseError);
    EXPECT_THROW((void)parse_march("{~()}"), ParseError);
    EXPECT_THROW((void)parse_march("{x(r0)}"), ParseError);
    EXPECT_THROW((void)parse_march("{~(r2)}"), ParseError);
    EXPECT_THROW((void)parse_march("{~(q0)}"), ParseError);
    EXPECT_THROW((void)parse_march("{~(r0) extra"), ParseError);
    EXPECT_FALSE(is_valid_march_syntax("{~(r0,)}"));
    EXPECT_TRUE(is_valid_march_syntax("{~(r0)}"));
}

TEST(Parser, ReportsErrorPosition) {
    try {
        (void)parse_march("{~(r2)}");
        FAIL();
    } catch (const ParseError& e) {
        EXPECT_GT(e.position(), 0u);
    }
}

}  // namespace
}  // namespace mtg::march
