/// Synthesis battery: skeleton rendering invariants, dominance-pruning
/// soundness, scorer attribution, and the determinism contract — the
/// same (kinds, beam, lookahead, seed) must synthesise byte-identical
/// tests on every backend, lane width and worker count, because the
/// search consumes only Engine verdicts (bit-identical by contract) and
/// seeded tie-breaks (no wall-clock, no unordered iteration).

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "fault/dominance.hpp"
#include "fault/fault_list.hpp"
#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "march/parser.hpp"
#include "sim/batch_runner.hpp"
#include "sim/march_runner.hpp"
#include "synth/beam_search.hpp"
#include "synth/scorer.hpp"
#include "synth/skeleton.hpp"
#include "util/thread_pool.hpp"

namespace mtg {
namespace {

using fault::FaultKind;
using synth::Skeleton;
using synth::Slot;
using synth::SlotOp;

/// Every one- and two-slot skeleton over the full template library —
/// the shapes the first beam rounds probe.
std::vector<Skeleton> template_shapes() {
    static constexpr std::array<march::AddressOrder, 3> kOrders{
        march::AddressOrder::Any, march::AddressOrder::Ascending,
        march::AddressOrder::Descending};
    std::vector<Skeleton> shapes;
    const auto& templates = synth::slot_templates(/*include_delay=*/true);
    for (int polarity : {0, 1}) {
        for (const auto& first : templates) {
            for (const march::AddressOrder order : kOrders) {
                Skeleton one{polarity, {Slot{order, first}}};
                if (!one.starts_with_write()) continue;
                shapes.push_back(one);
                for (const auto& second : templates) {
                    Skeleton two = one;
                    two.slots.push_back(
                        Slot{march::AddressOrder::Descending, second});
                    shapes.push_back(std::move(two));
                }
            }
        }
    }
    return shapes;
}

// ---- Skeleton --------------------------------------------------------------

TEST(Skeleton, RendersWellFormedByConstruction) {
    for (const Skeleton& shape : template_shapes())
        EXPECT_TRUE(sim::is_well_formed(shape.render()))
            << shape.canonical_text();
}

TEST(Skeleton, RenderTracksValueAcrossSlots) {
    // init 0: w0 | r0, w1, r1 | r1, w0 — every read matches the value the
    // previous write left behind, across slot boundaries.
    const Skeleton s{0,
                     {Slot{march::AddressOrder::Any, {SlotOp::WriteSame}},
                      Slot{march::AddressOrder::Ascending,
                           {SlotOp::Read, SlotOp::WriteFlip, SlotOp::Read}},
                      Slot{march::AddressOrder::Descending,
                           {SlotOp::Read, SlotOp::WriteFlip}}}};
    EXPECT_EQ(s.render().str(), "{~(w0); ^(r0,w1,r1); v(r1,w0)}");
    EXPECT_EQ(s.complexity(), 6);

    Skeleton flipped = s;
    flipped.init_polarity = 1;
    EXPECT_EQ(flipped.render().str(), "{~(w1); ^(r1,w0,r0); v(r0,w1)}");
}

TEST(Skeleton, CanonicalTextRoundTripsTheParser) {
    // The probe cache and the determinism contract both key on this text;
    // parse(render(t)) == render(t) for every shape the search can emit.
    for (const Skeleton& shape : template_shapes()) {
        const march::MarchTest rendered = shape.render();
        EXPECT_EQ(march::parse_march(shape.canonical_text()), rendered)
            << shape.canonical_text();
    }
}

// ---- dominance pruning -----------------------------------------------------

TEST(Dominance, CollapsesPlacementsToRelationalClasses) {
    const auto full = sim::full_population(FaultKind::CfinUp, 8);
    const auto kept = fault::dominance_prune(
        std::span<const sim::InjectedFault>(full));
    // Two-cell kind, one kind present: one representative per relative
    // order of aggressor and victim.
    ASSERT_EQ(kept.size(), 2u);
    const bool first_ascending = kept[0].cell_a < kept[0].cell_b;
    EXPECT_NE(first_ascending, kept[1].cell_a < kept[1].cell_b);
}

TEST(Dominance, DropsKindsDominatedByPresentKinds) {
    engine::Engine engine;
    // SAF alone: kept (one placement per polarity).
    const auto saf = engine.bit_population({FaultKind::Saf0, FaultKind::Saf1},
                                           8, /*pruned=*/true);
    EXPECT_EQ(saf->faults.size(), 2u);
    // SAF + TF: the TFs dominate both SAF polarities — only TFs survive.
    const auto saftf = engine.bit_population(
        {FaultKind::Saf0, FaultKind::Saf1, FaultKind::TfUp,
         FaultKind::TfDown},
        8, /*pruned=*/true);
    std::set<FaultKind> kinds;
    for (const auto& fault : saftf->faults) kinds.insert(fault.kind);
    EXPECT_EQ(kinds, (std::set<FaultKind>{FaultKind::TfUp,
                                          FaultKind::TfDown}));
}

TEST(Dominance, PrunedVerdictAgreesWithFullOnEveryLibraryTest) {
    // The soundness property behind the accelerator: a test covers the
    // pruned universe iff it covers the full one. Checked for every
    // library test against every Table 3 fault list.
    engine::Engine engine;
    for (const auto& list : fault::table3_fault_lists()) {
        for (const auto& named : march::known_march_tests()) {
            engine::Query query;
            query.test = named.test;
            query.universe = engine::BitUniverse{};
            query.want = engine::Want::DetectsAll;
            query.kinds = list.kinds;
            const bool full = engine.run(query).all;
            query.prune = true;
            const bool pruned = engine.run(query).all;
            EXPECT_EQ(full, pruned)
                << named.name << " over " << list.name;
        }
    }
}

TEST(Dominance, PrunedCacheEntriesDeriveFromFullLayout) {
    engine::Engine engine;
    const std::vector<FaultKind> kinds{FaultKind::Saf0, FaultKind::CfinUp,
                                       FaultKind::Rdf1};
    const auto full = engine.bit_population(kinds, 8, false);
    const auto pruned = engine.bit_population(kinds, 8, true);
    ASSERT_EQ(full->kinds, pruned->kinds);
    ASSERT_EQ(pruned->offsets.size(), pruned->kinds.size() + 1);
    EXPECT_LT(pruned->faults.size(), full->faults.size());
    // Segment k of the pruned entry is a subsequence of segment k of the
    // full entry — per-kind attribution indexes stay meaningful.
    for (std::size_t k = 0; k + 1 < pruned->offsets.size(); ++k) {
        std::size_t cursor = full->offsets[k];
        for (std::size_t i = pruned->offsets[k]; i < pruned->offsets[k + 1];
             ++i) {
            while (cursor < full->offsets[k + 1] &&
                   !(full->faults[cursor] == pruned->faults[i]))
                ++cursor;
            ASSERT_LT(cursor, full->offsets[k + 1]);
            ++cursor;
        }
    }
    // Distinct cache keys: both entries retained, not one overwriting
    // the other.
    EXPECT_NE(full.get(), pruned.get());
    EXPECT_EQ(engine.bit_population(kinds, 8, false).get(), full.get());
    EXPECT_EQ(engine.bit_population(kinds, 8, true).get(), pruned.get());
}

TEST(Dominance, WordMaskKeepsBitPositionsDistinct) {
    // Backgrounds assign data per bit position, so pruning must never
    // collapse two placements at different bit positions.
    word::WordRunOptions opts;
    opts.words = 4;
    opts.width = 4;
    engine::Engine engine;
    const auto pruned = engine.word_population({FaultKind::Saf0}, opts, true);
    std::set<int> bits;
    for (const auto& fault : pruned->faults) bits.insert(fault.a.bit);
    EXPECT_EQ(bits.size(), 4u);
}

// ---- Engine observability --------------------------------------------------

TEST(EngineStats, CountsQueriesPerWant) {
    engine::Engine engine;
    engine::Query query;
    query.test = march::find_march_test("MATS+").test;
    query.universe = engine::BitUniverse{};
    query.kinds = {FaultKind::Saf0, FaultKind::Saf1};
    query.want = engine::Want::Detects;
    (void)engine.run(query);
    (void)engine.run(query);
    query.want = engine::Want::DetectsAll;
    (void)engine.run(query);
    query.want = engine::Want::Traces;
    (void)engine.run(query);

    const engine::Engine::Stats stats = engine.stats();
    EXPECT_EQ(stats.want_detects, 2u);
    EXPECT_EQ(stats.want_detects_all, 1u);
    EXPECT_EQ(stats.want_traces, 1u);
    EXPECT_EQ(stats.want_sweeps, 0u);
    EXPECT_EQ(stats.queries, 4u);
    EXPECT_GE(stats.cache.hits + stats.cache.misses, 1u);
}

// ---- Scorer ----------------------------------------------------------------

TEST(Scorer, AttributesCoveragePerKindThroughOffsets) {
    engine::Engine engine;
    synth::ScorerConfig config;
    config.kinds = {FaultKind::Saf0, FaultKind::Saf1, FaultKind::CfinUp};
    config.prune = false;
    synth::Scorer scorer(engine, config);

    // SCAN covers SAF everywhere but not CFin.
    Skeleton scan{0,
                  {Slot{march::AddressOrder::Any, {SlotOp::WriteSame}},
                   Slot{march::AddressOrder::Any, {SlotOp::Read}},
                   Slot{march::AddressOrder::Any, {SlotOp::WriteFlip}},
                   Slot{march::AddressOrder::Any, {SlotOp::Read}}}};
    ASSERT_EQ(scan.render().str(), "{~(w0); ~(r0); ~(w1); ~(r1)}");

    const synth::Score score = scorer.probe(scan);
    ASSERT_EQ(score.kind_covered.size(), 3u);
    ASSERT_EQ(scorer.kinds(),
              (std::vector<FaultKind>{FaultKind::Saf0, FaultKind::Saf1,
                                      FaultKind::CfinUp}));
    EXPECT_EQ(score.kind_covered[0], score.kind_total[0]);  // Saf0
    EXPECT_EQ(score.kind_covered[1], score.kind_total[1]);  // Saf1
    EXPECT_LT(score.kind_covered[2], score.kind_total[2]);  // CfinUp escapes
    EXPECT_FALSE(score.full());
    EXPECT_EQ(score.kinds_full(), 2u);
    std::size_t sum = 0;
    for (std::size_t k = 0; k < score.kind_covered.size(); ++k)
        sum += score.kind_covered[k];
    EXPECT_EQ(score.covered, sum);
    EXPECT_FALSE(scorer.accepts_full(scan));
}

TEST(Scorer, ProbeCacheServesRepeatedCandidates) {
    engine::Engine engine;
    synth::ScorerConfig config;
    config.kinds = {FaultKind::Saf0, FaultKind::Saf1};
    synth::Scorer scorer(engine, config);
    const Skeleton shape{
        0, {Slot{march::AddressOrder::Any,
                 {SlotOp::WriteSame, SlotOp::Read, SlotOp::WriteFlip,
                  SlotOp::Read}}}};
    const synth::Score first = scorer.probe(shape);
    const synth::Score second = scorer.probe(shape);
    EXPECT_EQ(first.covered, second.covered);
    EXPECT_EQ(scorer.stats().probes, 2u);
    EXPECT_EQ(scorer.stats().cache_hits, 1u);
}

// ---- BeamSearch: rediscovery + determinism ---------------------------------

/// Kind subsets the search must cover at-or-below the best library test
/// that covers them (the ROADMAP acceptance bar).
struct RediscoveryCase {
    const char* kinds;
    int library_best;  ///< shortest covering library test, ops per cell
};

const RediscoveryCase kRediscovery[] = {
    {"SAF", 4},          // SCAN / MATS
    {"SAF,TF", 6},       // MATS++ (5n MATS+ misses ⇕ TF corner cases)
    {"SAF,TF,ADF", 6},   // MATS++
    {"CFin", 6},         // March X
};

synth::SearchResult run_search(const engine::Engine& engine,
                               const std::string& kinds,
                               std::uint64_t seed) {
    synth::ScorerConfig config;
    config.kinds = fault::parse_fault_kinds(kinds);
    synth::Scorer scorer(engine, config);
    synth::SearchConfig search;
    search.beam_width = 6;
    search.seed = seed;
    return synth::BeamSearch(scorer, search).run();
}

TEST(BeamSearch, RediscoversLibraryTestsOrShorter) {
    engine::Engine engine;
    for (const RediscoveryCase& c : kRediscovery) {
        const synth::SearchResult result = run_search(engine, c.kinds, 1);
        ASSERT_TRUE(result.found()) << c.kinds;
        EXPECT_LE(result.test.complexity(), c.library_best) << c.kinds;
        // The accepted test proves coverage on the FULL universe.
        synth::ScorerConfig config;
        config.kinds = fault::parse_fault_kinds(c.kinds);
        synth::Scorer gate(engine, config);
        EXPECT_TRUE(gate.accepts_full(result.test)) << c.kinds;
        EXPECT_TRUE(sim::is_well_formed(result.test)) << c.kinds;
    }
}

TEST(BeamSearch, PrunedSearchResultRevalidatesOnFullUniverse) {
    // The search probes the pruned universe; its accept is only issued
    // through the full-universe gate. Check the invariant end to end.
    engine::Engine engine;
    const synth::SearchResult result = run_search(engine, "SAF,TF,CFin", 7);
    ASSERT_TRUE(result.found());
    engine::Query query;
    query.test = result.test;
    query.universe = engine::BitUniverse{};
    query.want = engine::Want::DetectsAll;
    query.kinds = fault::parse_fault_kinds("SAF,TF,CFin");
    query.prune = false;
    EXPECT_TRUE(engine.run(query).all);
}

TEST(BeamSearch, DeterministicAcrossBackendsWidthsAndWorkers) {
    // The determinism battery: every session shape must synthesise the
    // same test for the same (kinds, beam, seed).
    const std::string kinds = "SAF,TF";
    std::vector<std::string> synthesised;

    for (const unsigned workers : {1u, 2u, 4u}) {
        util::ThreadPool pool(workers);
        engine::EngineConfig config;
        config.backend = engine::BackendKind::Packed;
        config.pool = &pool;
        engine::Engine engine(config);
        synthesised.push_back(run_search(engine, kinds, 42).test.str());
    }
    {
        engine::EngineConfig config;
        config.backend = engine::BackendKind::Scalar;
        engine::Engine engine(config);
        synthesised.push_back(run_search(engine, kinds, 42).test.str());
    }
    for (const int width : {1, 4, 8}) {
        engine::EngineConfig config;
        config.backend = engine::BackendKind::Packed;
        config.lane_width = width;
        engine::Engine engine(config);
        synthesised.push_back(run_search(engine, kinds, 42).test.str());
    }
    {
        engine::EngineConfig config;
        config.backend = engine::BackendKind::Sharded;
        config.shards = 3;
        engine::Engine engine(config);
        synthesised.push_back(run_search(engine, kinds, 42).test.str());
    }

    for (std::size_t i = 1; i < synthesised.size(); ++i)
        EXPECT_EQ(synthesised[i], synthesised[0]) << "session shape " << i;
}

TEST(BeamSearch, SeedOnlyPerturbsTieBreaks) {
    // Different seeds may pick different equally-good tests, but every
    // accepted test still passes the gate at equal-or-better length.
    engine::Engine engine;
    for (const std::uint64_t seed : {1ull, 2ull, 99ull}) {
        const synth::SearchResult result = run_search(engine, "SAF", seed);
        ASSERT_TRUE(result.found()) << seed;
        EXPECT_LE(result.test.complexity(), 4) << seed;
    }
    // And the same seed twice on one engine is byte-identical.
    EXPECT_EQ(run_search(engine, "SAF", 5).test.str(),
              run_search(engine, "SAF", 5).test.str());
}

TEST(LookaheadRefiner, NeverLengthensAndPreservesAcceptance) {
    engine::Engine engine;
    synth::ScorerConfig config;
    config.kinds = fault::parse_fault_kinds("SAF");
    synth::Scorer scorer(engine, config);
    // A deliberately bloated covering skeleton: refine must shrink it (or
    // at worst keep it) while staying accepted.
    const Skeleton bloated{
        0,
        {Slot{march::AddressOrder::Any, {SlotOp::WriteSame, SlotOp::Read}},
         Slot{march::AddressOrder::Ascending, {SlotOp::Read, SlotOp::Read}},
         Slot{march::AddressOrder::Any, {SlotOp::WriteFlip, SlotOp::Read}},
         Slot{march::AddressOrder::Descending, {SlotOp::Read}}}};
    ASSERT_TRUE(scorer.accepts_full(bloated));
    const Skeleton refined = synth::LookaheadRefiner(scorer).refine(bloated);
    EXPECT_LE(refined.complexity(), bloated.complexity());
    EXPECT_TRUE(scorer.accepts_full(refined));
    EXPECT_LT(refined.complexity(), bloated.complexity());
}

TEST(TieBreakHash, SeededAndStable) {
    const std::uint64_t a = synth::tie_break_hash("{~(w0)}", 1);
    EXPECT_EQ(a, synth::tie_break_hash("{~(w0)}", 1));
    EXPECT_NE(a, synth::tie_break_hash("{~(w0)}", 2));
    EXPECT_NE(a, synth::tie_break_hash("{~(w1)}", 1));
}

}  // namespace
}  // namespace mtg
