#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "fault/fault_list.hpp"
#include "march/library.hpp"
#include "march/parser.hpp"
#include "sim/march_runner.hpp"

namespace mtg::core {
namespace {

/// End-to-end reproduction of the paper's Table 3: for each fault list the
/// generator must produce a March test that
///  (a) the fault simulator confirms complete (every primitive, every
///      cell/pair placement, every ⇕ expansion),
///  (b) the §6 set-covering analysis confirms non-redundant,
///  (c) matches the complexity the paper reports (the headline numbers:
///      4n / 5n / 6n / 6n / 10n — equal to MATS, MATS+, MATS++, March X
///      and March C-).
///
/// Row 6 ("CFin" alone) reproduces the paper's headline novelty: a 5n March
/// test for inversion coupling faults with no literature equivalent. The
/// generator discovers the single-direction double-transition element
/// structure (e.g. {⇓(w0); ⇓(r0,w1,w0); ⇓(r0)}) on its own.
class Table3 : public ::testing::TestWithParam<int> {};

TEST_P(Table3, RowReproduced) {
    const auto& row =
        fault::table3_fault_lists()[static_cast<std::size_t>(GetParam())];
    Generator generator;
    const GenerationResult result = generator.generate(row.kinds);

    ASSERT_TRUE(result.valid) << row.name << ": " << result.summary();
    EXPECT_TRUE(result.redundancy.complete) << row.name;
    EXPECT_TRUE(result.redundancy.non_redundant)
        << row.name << ": " << result.summary();

    EXPECT_EQ(result.complexity, row.paper_complexity)
        << row.name << ": " << result.summary();

    // "Very low computation time": every row generates in well under the
    // paper's own sub-second budget (0.49-0.85 s on a PIII-650).
    EXPECT_LT(result.seconds, 30.0) << row.name;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table3, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                             std::string name = fault::table3_fault_lists()
                                 [static_cast<std::size_t>(info.param)].name;
                             for (char& c : name)
                                 if (!std::isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             return name;
                         });

/// Row 6, spelled out by hand: a single-direction test whose middle
/// element drives both transitions on every cell, with a trailing read
/// element. Every one of the four CFin instances (two directions × two
/// relative address orders) is caught.
TEST(Table3Row6, FiveNCfinTestVerifiedByHand) {
    const auto test = march::parse_march("{v(w0); v(r0,w1,w0); v(r0)}");
    EXPECT_EQ(test.complexity(), 5);
    EXPECT_TRUE(sim::is_well_formed(test));
    EXPECT_TRUE(sim::covers_everywhere(test, fault::FaultKind::CfinUp));
    EXPECT_TRUE(sim::covers_everywhere(test, fault::FaultKind::CfinDown));
    // And its mirror works too.
    const auto mirror = march::parse_march("{^(w0); ^(r0,w1,w0); ^(r0)}");
    EXPECT_TRUE(sim::covers_everywhere(mirror, fault::FaultKind::CfinUp));
    EXPECT_TRUE(sim::covers_everywhere(mirror, fault::FaultKind::CfinDown));
}

/// Known-test complexity equivalences claimed by Table 3's last column.
TEST(Table3, KnownEquivalentsHaveTabulatedComplexities) {
    for (const auto& row : fault::table3_fault_lists()) {
        if (row.known_complexity == 0) continue;
        const auto& known = march::find_march_test(row.known_equivalent);
        EXPECT_EQ(known.test.complexity(), row.known_complexity) << row.name;
    }
}

}  // namespace
}  // namespace mtg::core
