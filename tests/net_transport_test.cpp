/// Wire-format and framing unit tests for the remote transport: every
/// message kind must survive an encode/decode round trip bit-for-bit,
/// every malformed payload must be rejected with WireFormatError (never
/// accepted, never a crash), and FrameChannel must report the exact
/// failure taxonomy (Timeout before a frame, Corrupt mid-frame) the
/// coordinator's fault tolerance is built on. Also covers the wire v2
/// frame format (CRC32C trailer, Hello negotiation, v1 compatibility),
/// the partial-write send path and the bounded tcp_connect.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "march/library.hpp"
#include "net/crc32c.hpp"
#include "net/framing.hpp"
#include "net/wire.hpp"
#include "net/worker.hpp"
#include "word/background.hpp"

namespace mtg::net {
namespace {

using fault::FaultKind;

WireQuery sample_bit_query() {
    WireQuery query;
    query.id = 0x1122334455667788ull;
    query.universe = UniverseTag::Bit;
    query.want = WantTag::Detects;
    query.range_begin = 504;
    query.range_end = 507;
    query.test = march::march_c_minus();
    query.bit_opts = {.memory_size = 24, .max_any_expansion = 6};
    query.bit_faults = {
        sim::InjectedFault::single(FaultKind::Saf0, 3),
        sim::InjectedFault::coupling(FaultKind::CfidUp0, 1, 7),
        sim::InjectedFault::coupling(FaultKind::CfinDown, 7, 1),
    };
    return query;
}

WireQuery sample_word_query() {
    WireQuery query;
    query.id = 42;
    query.universe = UniverseTag::Word;
    query.want = WantTag::Traces;
    query.range_begin = 0;
    query.range_end = 2;
    query.test = march::find_march_test("MATS").test;
    query.word_opts.words = 6;
    query.word_opts.width = 4;
    query.word_opts.max_any_expansion = 4;
    query.backgrounds = word::counting_backgrounds(4);
    query.word_faults = {
        word::InjectedBitFault::single(FaultKind::Rdf1, {2, 3}),
        word::InjectedBitFault::coupling(FaultKind::CfidUp1, {0, 0}, {5, 3}),
    };
    return query;
}

TEST(WireFormat, BitQueryRoundTrip) {
    const WireQuery query = sample_bit_query();
    const Message decoded = decode_message(encode_query(query));
    ASSERT_EQ(decoded.type, MessageType::Query);
    const WireQuery& got = decoded.query;
    EXPECT_EQ(got.id, query.id);
    EXPECT_EQ(got.universe, query.universe);
    EXPECT_EQ(got.want, query.want);
    EXPECT_EQ(got.range_begin, query.range_begin);
    EXPECT_EQ(got.range_end, query.range_end);
    EXPECT_EQ(got.test.str(), query.test.str());
    EXPECT_EQ(got.bit_opts.memory_size, query.bit_opts.memory_size);
    EXPECT_EQ(got.bit_opts.max_any_expansion,
              query.bit_opts.max_any_expansion);
    EXPECT_EQ(got.bit_faults, query.bit_faults);
}

TEST(WireFormat, WordQueryRoundTrip) {
    const WireQuery query = sample_word_query();
    const Message decoded = decode_message(encode_query(query));
    ASSERT_EQ(decoded.type, MessageType::Query);
    const WireQuery& got = decoded.query;
    EXPECT_EQ(got.id, query.id);
    EXPECT_EQ(got.universe, UniverseTag::Word);
    EXPECT_EQ(got.want, WantTag::Traces);
    EXPECT_EQ(got.test.str(), query.test.str());
    EXPECT_EQ(got.word_opts.words, query.word_opts.words);
    EXPECT_EQ(got.word_opts.width, query.word_opts.width);
    EXPECT_EQ(got.word_opts.max_any_expansion,
              query.word_opts.max_any_expansion);
    EXPECT_EQ(got.backgrounds, query.backgrounds);
    EXPECT_EQ(got.word_faults, query.word_faults);
}

TEST(WireFormat, VerdictResultRoundTripAcrossMaskBoundaries) {
    // 67 verdicts: straddles the 64-bit mask boundary, partial final mask.
    WireResult result;
    result.id = 7;
    result.universe = UniverseTag::Bit;
    result.want = WantTag::Detects;
    result.range_begin = 0;
    result.range_end = 67;
    for (int i = 0; i < 67; ++i) result.verdicts.push_back(i % 3 != 0);
    const Message decoded = decode_message(encode_result(result));
    ASSERT_EQ(decoded.type, MessageType::Result);
    EXPECT_EQ(decoded.result.id, result.id);
    EXPECT_EQ(decoded.result.verdicts, result.verdicts);
}

TEST(WireFormat, TraceResultRoundTrip) {
    WireResult result;
    result.id = 9;
    result.universe = UniverseTag::Bit;
    result.want = WantTag::Traces;
    result.range_begin = 10;
    result.range_end = 12;
    sim::RunTrace trace;
    trace.detected = true;
    trace.failing_reads = {{1, 0}, {2, 1}};
    trace.failing_observations = {{{1, 0}, 3}, {{2, 1}, 0}};
    result.traces = {trace, sim::RunTrace{}};
    const Message decoded = decode_message(encode_result(result));
    ASSERT_EQ(decoded.type, MessageType::Result);
    ASSERT_EQ(decoded.result.traces.size(), 2u);
    EXPECT_EQ(decoded.result.traces[0].detected, trace.detected);
    EXPECT_EQ(decoded.result.traces[0].failing_reads, trace.failing_reads);
    EXPECT_EQ(decoded.result.traces[0].failing_observations,
              trace.failing_observations);
    EXPECT_FALSE(decoded.result.traces[1].detected);
}

TEST(WireFormat, WordTraceResultRoundTrip) {
    WireResult result;
    result.id = 11;
    result.universe = UniverseTag::Word;
    result.want = WantTag::Traces;
    result.range_begin = 0;
    result.range_end = 1;
    word::WordRunTrace trace;
    trace.detected = true;
    trace.failing_reads = {{0, {1, 0}}, {2, {2, 1}}};
    trace.failing_observations = {{1, {1, 0}, 4, 0b1011}};
    result.word_traces = {trace};
    const Message decoded = decode_message(encode_result(result));
    ASSERT_EQ(decoded.type, MessageType::Result);
    ASSERT_EQ(decoded.result.word_traces.size(), 1u);
    EXPECT_EQ(decoded.result.word_traces[0], trace);
}

TEST(WireFormat, DetectsAllAndErrorRoundTrip) {
    WireResult result;
    result.id = 13;
    result.want = WantTag::DetectsAll;
    result.range_begin = 0;
    result.range_end = 504;
    result.all = false;
    const Message decoded = decode_message(encode_result(result));
    ASSERT_EQ(decoded.type, MessageType::Result);
    EXPECT_FALSE(decoded.result.all);

    const Message error =
        decode_message(encode_error({21, "worker exploded"}));
    ASSERT_EQ(error.type, MessageType::Error);
    EXPECT_EQ(error.error.id, 21u);
    EXPECT_EQ(error.error.message, "worker exploded");
}

TEST(WireFormat, RejectsMalformedPayloads) {
    const std::vector<std::uint8_t> encoded =
        encode_query(sample_bit_query());

    // Empty, garbage, wrong version, unknown message type.
    EXPECT_THROW((void)decode_message({}), WireFormatError);
    const std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef};
    EXPECT_THROW((void)decode_message(garbage), WireFormatError);
    std::vector<std::uint8_t> bad_version = encoded;
    bad_version[0] = kWireVersion + 1;
    EXPECT_THROW((void)decode_message(bad_version), WireFormatError);
    std::vector<std::uint8_t> bad_type = encoded;
    bad_type[1] = 99;
    EXPECT_THROW((void)decode_message(bad_type), WireFormatError);

    // Every possible truncation must throw, never read out of bounds.
    for (std::size_t keep = 0; keep < encoded.size(); ++keep) {
        const std::span<const std::uint8_t> cut(encoded.data(), keep);
        EXPECT_THROW((void)decode_message(cut), WireFormatError) << keep;
    }
    // Trailing bytes are rejected too: a frame is exactly one message.
    std::vector<std::uint8_t> padded = encoded;
    padded.push_back(0);
    EXPECT_THROW((void)decode_message(padded), WireFormatError);
}

TEST(WireFormat, RejectsRangePopulationMismatch) {
    WireQuery query = sample_bit_query();
    query.range_end = query.range_begin + query.bit_faults.size() + 1;
    EXPECT_THROW((void)decode_message(encode_query(query)), WireFormatError);
}

TEST(Framing, RoundTripAndTimeoutTaxonomy) {
    const auto [a_fd, b_fd] = socket_pair();
    FrameChannel a(a_fd);
    FrameChannel b(b_fd);

    std::vector<std::uint8_t> payload;
    // Nothing sent yet: a bounded recv times out (peer merely slow).
    EXPECT_EQ(b.recv(payload, 10), FrameChannel::RecvStatus::Timeout);

    const std::vector<std::uint8_t> frame = {1, 2, 3, 4, 5};
    ASSERT_TRUE(a.send(frame));
    ASSERT_TRUE(a.send({}));  // empty frames are legal
    EXPECT_EQ(b.recv(payload, 1000), FrameChannel::RecvStatus::Ok);
    EXPECT_EQ(payload, frame);
    EXPECT_EQ(b.recv(payload, 1000), FrameChannel::RecvStatus::Ok);
    EXPECT_TRUE(payload.empty());
}

TEST(Crc32c, KnownAnswerVectors) {
    // The CRC-32C (Castagnoli) check value: crc of the ASCII digits
    // "123456789" is 0xE3069283 in every published table.
    const std::uint8_t digits[] = {'1', '2', '3', '4', '5',
                                   '6', '7', '8', '9'};
    EXPECT_EQ(crc32c(digits), 0xE3069283u);
    EXPECT_EQ(crc32c({}), 0u);
    // 32 zero bytes: another standard vector (iSCSI test pattern).
    const std::vector<std::uint8_t> zeros(32, 0);
    EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
    // Incremental == one-shot.
    EXPECT_EQ(crc32c(std::span(digits).subspan(4),
                     crc32c(std::span(digits).first(4))),
              0xE3069283u);
}

TEST(Crc32c, HardwareAndSoftwareKernelsAgree) {
    // Every length 0..130 with varying alignment offsets: the SSE4.2
    // path (when this CPU has it) and the slice-by-8 tables must be the
    // same function.
    std::vector<std::uint8_t> bytes(160);
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<std::uint8_t>(i * 167 + 13);
    for (std::size_t offset : {0u, 1u, 3u, 7u}) {
        for (std::size_t len = 0; len + offset <= 130; ++len) {
            const std::span<const std::uint8_t> slice(bytes.data() + offset,
                                                      len);
            EXPECT_EQ(crc32c(slice), crc32c_software(slice, 0))
                << "offset " << offset << " len " << len;
        }
    }
}

TEST(Framing, V2FramesRoundTripAndRejectCorruption) {
    const auto [a_fd, b_fd] = socket_pair();
    FrameChannel a(a_fd);
    FrameChannel b(b_fd);
    a.set_frame_version(2);
    b.set_frame_version(2);

    const std::vector<std::uint8_t> frame = {9, 8, 7, 6, 5, 4};
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(a.send(frame));
    ASSERT_TRUE(a.send({}));  // empty frames carry a CRC of nothing
    EXPECT_EQ(b.recv(payload, 1000), FrameChannel::RecvStatus::Ok);
    EXPECT_EQ(payload, frame);
    EXPECT_EQ(b.recv(payload, 1000), FrameChannel::RecvStatus::Ok);
    EXPECT_TRUE(payload.empty());

    // A bit flipped in the payload: the CRC trailer catches it at the
    // frame layer — RecvStatus::Corrupt, before any decode_message.
    std::vector<std::uint8_t> raw;
    const std::uint32_t length = 4;
    const std::uint8_t body[] = {0xaa, 0xbb, 0xcc, 0xdd};
    const std::uint32_t crc = crc32c(body);
    for (int shift : {0, 8, 16, 24})
        raw.push_back(static_cast<std::uint8_t>(length >> shift));
    raw.insert(raw.end(), body, body + sizeof(body));
    raw[4] ^= 0x01;  // corrupt after the CRC was computed
    for (int shift : {0, 8, 16, 24})
        raw.push_back(static_cast<std::uint8_t>(crc >> shift));
    ASSERT_EQ(::write(a.fd(), raw.data(), raw.size()),
              static_cast<ssize_t>(raw.size()));
    EXPECT_EQ(b.recv(payload, 1000), FrameChannel::RecvStatus::Corrupt);
}

TEST(Framing, HelloNegotiatesV2WithAWorker) {
    const auto [coordinator_fd, worker_fd] = socket_pair();
    std::thread worker([fd = worker_fd] { serve_connection(fd); });
    FrameChannel channel(coordinator_fd);

    ASSERT_TRUE(channel.send(encode_hello({kMaxFrameVersion})));
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(channel.recv(payload, 2000), FrameChannel::RecvStatus::Ok);
    const Message reply = decode_message(payload);
    ASSERT_EQ(reply.type, MessageType::Hello);
    EXPECT_EQ(reply.hello.max_frame_version, 2);
    channel.set_frame_version(2);

    // The agreed connection really speaks v2: a query round-trips and a
    // ping is answered, all CRC-framed.
    ASSERT_TRUE(channel.send(encode_ping({77})));
    ASSERT_EQ(channel.recv(payload, 2000), FrameChannel::RecvStatus::Ok);
    const Message pong = decode_message(payload);
    ASSERT_EQ(pong.type, MessageType::Pong);
    EXPECT_EQ(pong.ping.nonce, 77u);

    WireQuery query = sample_bit_query();
    query.range_begin = 0;
    query.range_end = query.bit_faults.size();
    ASSERT_TRUE(channel.send(encode_query(query)));
    ASSERT_EQ(channel.recv(payload, 5000), FrameChannel::RecvStatus::Ok);
    const Message result = decode_message(payload);
    ASSERT_EQ(result.type, MessageType::Result);
    EXPECT_EQ(result.result.id, query.id);

    channel.shutdown();
    worker.join();
}

TEST(Framing, HelloNegotiatesDownToV1OnlyWorker) {
    const auto [coordinator_fd, worker_fd] = socket_pair();
    std::thread worker([fd = worker_fd] {
        serve_connection(fd, {.max_frame_version = 1});
    });
    FrameChannel channel(coordinator_fd);

    ASSERT_TRUE(channel.send(encode_hello({kMaxFrameVersion})));
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(channel.recv(payload, 2000), FrameChannel::RecvStatus::Ok);
    const Message reply = decode_message(payload);
    ASSERT_EQ(reply.type, MessageType::Hello);
    EXPECT_EQ(reply.hello.max_frame_version, 1);
    // Both ends stay on bare v1 frames; queries still work.
    WireQuery query = sample_bit_query();
    query.range_begin = 0;
    query.range_end = query.bit_faults.size();
    ASSERT_TRUE(channel.send(encode_query(query)));
    ASSERT_EQ(channel.recv(payload, 5000), FrameChannel::RecvStatus::Ok);
    EXPECT_EQ(decode_message(payload).type, MessageType::Result);

    channel.shutdown();
    worker.join();
}

TEST(Framing, V1CoordinatorIsServedWithoutHello) {
    // A pre-negotiation coordinator opens with a Query; the worker must
    // serve bare v1 frames exactly as before.
    const auto [coordinator_fd, worker_fd] = socket_pair();
    std::thread worker([fd = worker_fd] { serve_connection(fd); });
    FrameChannel channel(coordinator_fd);

    WireQuery query = sample_bit_query();
    query.range_begin = 0;
    query.range_end = query.bit_faults.size();
    ASSERT_TRUE(channel.send(encode_query(query)));
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(channel.recv(payload, 5000), FrameChannel::RecvStatus::Ok);
    const Message result = decode_message(payload);
    ASSERT_EQ(result.type, MessageType::Result);
    EXPECT_EQ(result.result.id, query.id);

    channel.shutdown();
    worker.join();
}

TEST(Framing, PartialWritesRoundTripLargeFrames) {
    // Shrink the send buffer so ::send() must return short counts: the
    // send loop has to keep resuming mid-frame (and mid-chunk) until a
    // multi-MiB frame is fully on the wire.
    const auto [a_fd, b_fd] = socket_pair();
    const int tiny = 4096;
    ASSERT_EQ(::setsockopt(a_fd, SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny)),
              0);
    FrameChannel a(a_fd);
    FrameChannel b(b_fd);
    a.set_frame_version(2);  // CRC trailer rides along as a third chunk
    b.set_frame_version(2);

    std::vector<std::uint8_t> big(3u << 20);
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<std::uint8_t>(i * 131 + 7);
    std::thread sender([&a, &big] { ASSERT_TRUE(a.send(big)); });
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(b.recv(payload, 10000), FrameChannel::RecvStatus::Ok);
    sender.join();
    EXPECT_EQ(payload, big);
}

TEST(Framing, TcpConnectTimesOutInsteadOfHanging) {
    // A listener whose accept backlog is saturated and never drained
    // behaves like a blackholed host: the SYN is queued, the handshake
    // never completes, and a blocking connect() would hang for the OS
    // default of minutes. tcp_connect must give up within its timeout.
    const int listen_fd = tcp_listen(0);
    ::listen(listen_fd, 0);  // shrink the backlog to its minimum
    sockaddr_in addr{};
    socklen_t addr_len = sizeof(addr);
    ASSERT_EQ(::getsockname(listen_fd,
                            reinterpret_cast<sockaddr*>(&addr), &addr_len),
              0);
    const std::uint16_t port = ntohs(addr.sin_port);

    std::vector<int> held;
    bool timed_out = false;
    const auto start = std::chrono::steady_clock::now();
    for (int attempt = 0; attempt < 16 && !timed_out; ++attempt) {
        try {
            held.push_back(tcp_connect("127.0.0.1", port,
                                       /*timeout_ms=*/250));
        } catch (const std::runtime_error&) {
            timed_out = true;
        }
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_TRUE(timed_out);
    EXPECT_LT(elapsed, std::chrono::seconds(10));
    for (const int fd : held) ::close(fd);
    ::close(listen_fd);
}

TEST(Framing, CloseAndCorruptionAreDistinguished) {
    // Note on EINTR: read_exact/send treat EINTR as "zero bytes moved,
    // try again" — a signal delivered mid-frame must never surface as
    // Closed or Corrupt, only a real EOF/error can. The taxonomy below
    // therefore only uses genuine closes and malformed prefixes.
    {
        // Orderly close between frames -> Closed.
        const auto [a_fd, b_fd] = socket_pair();
        FrameChannel b(b_fd);
        { FrameChannel a(a_fd); }  // destructor closes
        std::vector<std::uint8_t> payload;
        EXPECT_EQ(b.recv(payload, 1000), FrameChannel::RecvStatus::Closed);
    }
    {
        // A length prefix promising bytes that never arrive -> Corrupt:
        // a truncated frame can never be resynchronized.
        const auto [a_fd, b_fd] = socket_pair();
        FrameChannel b(b_fd);
        std::thread sender([fd = a_fd] {
            const std::uint8_t truncated[] = {64, 0, 0, 0, 0x01};
            (void)!::write(fd, truncated, sizeof(truncated));
            ::close(fd);
        });
        std::vector<std::uint8_t> payload;
        EXPECT_EQ(b.recv(payload, 1000), FrameChannel::RecvStatus::Corrupt);
        sender.join();
    }
    {
        // An oversized length prefix -> Corrupt, no giant allocation.
        const auto [a_fd, b_fd] = socket_pair();
        FrameChannel b(b_fd);
        std::thread sender([fd = a_fd] {
            const std::uint8_t oversized[] = {0xff, 0xff, 0xff, 0xff};
            (void)!::write(fd, oversized, sizeof(oversized));
            ::close(fd);
        });
        std::vector<std::uint8_t> payload;
        EXPECT_EQ(b.recv(payload, 1000), FrameChannel::RecvStatus::Corrupt);
        sender.join();
    }
}

TEST(Framing, MidFrameStallIsCorruptNotAHang) {
    // A peer that starts a frame and then stops making progress — without
    // closing — used to hold recv() forever (the mid-frame wait was
    // unbounded). With the idle-progress bound it is Corrupt: the stream
    // cannot resync, and the receiver gets its thread back.
    const auto [a_fd, b_fd] = socket_pair();
    FrameChannel b(b_fd);
    b.set_mid_frame_idle_ms(50);
    // Length prefix promising 64 bytes, two payload bytes, then silence.
    // The sender fd stays OPEN for the duration: only the idle bound can
    // end the read.
    const std::uint8_t partial[] = {64, 0, 0, 0, 0x01, 0x02};
    ASSERT_EQ(::write(a_fd, partial, sizeof(partial)),
              static_cast<ssize_t>(sizeof(partial)));
    std::vector<std::uint8_t> payload;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(b.recv(payload, /*timeout_ms=*/-1),
              FrameChannel::RecvStatus::Corrupt);
    const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    EXPECT_GE(waited, 40);    // the bound, not an instant failure
    EXPECT_LT(waited, 5000);  // and certainly not forever
    ::close(a_fd);
}

TEST(Framing, MidFrameStallInHeaderIsCorrupt) {
    // The stall can hit inside the 4-byte length prefix too: a partial
    // header is already a started frame.
    const auto [a_fd, b_fd] = socket_pair();
    FrameChannel b(b_fd);
    b.set_mid_frame_idle_ms(50);
    const std::uint8_t half_header[] = {64, 0};
    ASSERT_EQ(::write(a_fd, half_header, sizeof(half_header)),
              static_cast<ssize_t>(sizeof(half_header)));
    std::vector<std::uint8_t> payload;
    EXPECT_EQ(b.recv(payload, /*timeout_ms=*/-1),
              FrameChannel::RecvStatus::Corrupt);
    ::close(a_fd);
}

TEST(Framing, SlowButProgressingPeerStillCompletes) {
    // The bound is idle-progress, not total-duration: a peer dribbling
    // one chunk per 20 ms under a 120 ms idle bound takes ~8 bounds'
    // worth of wall clock and must still deliver the frame intact.
    const auto [a_fd, b_fd] = socket_pair();
    FrameChannel a(a_fd);
    FrameChannel b(b_fd);
    b.set_mid_frame_idle_ms(120);
    std::vector<std::uint8_t> frame(64);
    for (std::size_t i = 0; i < frame.size(); ++i)
        frame[i] = static_cast<std::uint8_t>(i * 7);
    std::thread sender([fd = a_fd, &frame] {
        std::uint8_t header[4] = {64, 0, 0, 0};
        (void)!::write(fd, header, sizeof(header));
        for (std::size_t off = 0; off < frame.size(); off += 8) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            (void)!::write(fd, frame.data() + off, 8);
        }
    });
    std::vector<std::uint8_t> payload;
    EXPECT_EQ(b.recv(payload, /*timeout_ms=*/-1),
              FrameChannel::RecvStatus::Ok);
    EXPECT_EQ(payload, frame);
    sender.join();
}

TEST(Framing, DisabledIdleBoundRestoresInfiniteWait) {
    // set_mid_frame_idle_ms(-1) keeps a wedgeable channel for tests that
    // want the historical behaviour; 0 restores the 30 s default.
    const auto [a_fd, b_fd] = socket_pair();
    FrameChannel b(b_fd);
    EXPECT_EQ(b.mid_frame_idle_ms(), kDefaultMidFrameIdleMs);
    b.set_mid_frame_idle_ms(-1);
    EXPECT_EQ(b.mid_frame_idle_ms(), -1);
    b.set_mid_frame_idle_ms(0);
    EXPECT_EQ(b.mid_frame_idle_ms(), kDefaultMidFrameIdleMs);
    ::close(a_fd);
}

TEST(Framing, PerChannelFrameCapBindsBothDirections) {
    // The 64 MiB default is per-channel configurable (large word-memory
    // Traces replies can exceed it); the cap moves, the enforcement
    // doesn't — a sender refuses oversize payloads, a receiver rejects
    // oversize length prefixes as Corrupt.
    const auto [a_fd, b_fd] = socket_pair();
    FrameChannel a(a_fd);
    FrameChannel b(b_fd);
    EXPECT_EQ(a.max_frame_bytes(), kMaxFrameBytes);
    a.set_max_frame_bytes(1024);
    EXPECT_EQ(a.max_frame_bytes(), 1024u);

    // Send side: exactly at the cap passes, one byte over is refused
    // (channel stays usable — nothing went on the wire).
    std::vector<std::uint8_t> at_cap(1024, 0x5a);
    std::vector<std::uint8_t> over_cap(1025, 0x5a);
    EXPECT_FALSE(a.send(over_cap));
    ASSERT_TRUE(a.send(at_cap));
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(b.recv(payload, 1000), FrameChannel::RecvStatus::Ok);
    EXPECT_EQ(payload, at_cap);

    // Recv side: a lowered cap turns a legitimate-for-the-peer frame into
    // Corrupt (an oversize prefix must never drive a giant allocation).
    b.set_max_frame_bytes(16);
    ASSERT_TRUE(a.send(at_cap));
    EXPECT_EQ(b.recv(payload, 1000), FrameChannel::RecvStatus::Corrupt);

    // A raised cap admits frames beyond the old bound; 0 restores the
    // default.
    const auto [c_fd, d_fd] = socket_pair();
    FrameChannel c(c_fd);
    FrameChannel d(d_fd);
    c.set_max_frame_bytes(128u << 20);
    d.set_max_frame_bytes(128u << 20);
    std::vector<std::uint8_t> big((64u << 20) + 1, 0x11);
    std::thread sender([&c, &big] { ASSERT_TRUE(c.send(big)); });
    ASSERT_EQ(d.recv(payload, 30000), FrameChannel::RecvStatus::Ok);
    sender.join();
    EXPECT_EQ(payload.size(), big.size());
    d.set_max_frame_bytes(0);
    EXPECT_EQ(d.max_frame_bytes(), kMaxFrameBytes);
}

}  // namespace
}  // namespace mtg::net
