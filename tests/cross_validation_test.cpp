#include <gtest/gtest.h>

#include "fault/instance.hpp"
#include "sim/memory.hpp"

namespace mtg {
namespace {

using fault::FaultInstance;
using fault::FaultKind;
using fsm::Cell;
using fsm::Input;
using fsm::MemoryFsm;
using fsm::PairState;

/// The FSM fault models (src/fault, used by the generator) and the
/// simulator fault semantics (src/sim, used as ground truth) are written
/// independently. This suite proves they agree on a two-cell memory for
/// every fault kind, state and input — the strongest internal consistency
/// check in the repository.
class CrossValidation : public ::testing::TestWithParam<FaultInstance> {};

/// Applies one FSM input to a two-cell SimMemory with the instance's fault
/// injected; returns (resulting state, read output).
std::pair<PairState, Trit> sim_step(const FaultInstance& instance,
                                    const PairState& start, Input input) {
    sim::SimMemory memory(2);
    const int aggressor = instance.aggressor == Cell::I ? 0 : 1;
    if (fault::is_two_cell(instance.kind)) {
        memory.inject(
            sim::InjectedFault::coupling(instance.kind, aggressor, 1 - aggressor));
    } else {
        memory.inject(sim::InjectedFault::single(instance.kind, aggressor));
    }
    memory.poke(0, start.i);
    memory.poke(1, start.j);

    Trit output = Trit::X;
    switch (input) {
        case Input::Ri: output = memory.read(0); break;
        case Input::Rj: output = memory.read(1); break;
        case Input::W0i: memory.write(0, 0); break;
        case Input::W1i: memory.write(0, 1); break;
        case Input::W0j: memory.write(1, 0); break;
        case Input::W1j: memory.write(1, 1); break;
        case Input::T: memory.wait(); break;
    }
    return {PairState{memory.peek(0), memory.peek(1)}, output};
}

TEST_P(CrossValidation, FsmAndSimulatorAgreeOnEveryEntry) {
    const FaultInstance instance = GetParam();
    const MemoryFsm machine = fault::faulty_machine(instance);

    // Physically unreachable states (a stuck-at cell holding the opposite
    // value, a CFst pair violating the forced condition) are skipped: the
    // FSM models perturb only reachable entries, while poking the simulator
    // into an impossible state exercises undefined physics.
    const auto reachable = [&](const PairState& state) {
        const Trit a = state.get(instance.aggressor);
        const Trit v = state.get(instance.victim());
        switch (instance.kind) {
            case FaultKind::Saf0: return a != Trit::One;
            case FaultKind::Saf1: return a != Trit::Zero;
            case FaultKind::CfstS0F0: return !(a == Trit::Zero && v == Trit::One);
            case FaultKind::CfstS0F1: return !(a == Trit::Zero && v == Trit::Zero);
            case FaultKind::CfstS1F0: return !(a == Trit::One && v == Trit::One);
            case FaultKind::CfstS1F1: return !(a == Trit::One && v == Trit::Zero);
            default: return true;
        }
    };

    for (const PairState& state : fsm::all_known_states()) {
        if (!reachable(state)) continue;

        for (Input input : fsm::all_inputs()) {
            const auto [sim_state, sim_out] = sim_step(instance, state, input);
            const PairState fsm_state = machine.next(state, input);
            const Trit fsm_out = machine.output(state, input);
            EXPECT_EQ(sim_state.str(), fsm_state.str())
                << instance.name() << " state " << state.str() << " input "
                << fsm::input_str(input);
            if (fsm::is_read(input)) {
                EXPECT_EQ(trit_char(sim_out), trit_char(fsm_out))
                    << instance.name() << " state " << state.str() << " input "
                    << fsm::input_str(input);
            }
        }
    }
}

std::vector<FaultInstance> all_instances() {
    return fault::instantiate(fault::all_fault_kinds());
}

INSTANTIATE_TEST_SUITE_P(AllFaults, CrossValidation,
                         ::testing::ValuesIn(all_instances()),
                         [](const ::testing::TestParamInfo<FaultInstance>& info) {
                             std::string name = info.param.name();
                             std::string out;
                             for (char c : name)
                                 out += std::isalnum(static_cast<unsigned char>(c))
                                            ? c
                                            : '_';
                             return out + std::to_string(info.index);
                         });

}  // namespace
}  // namespace mtg
