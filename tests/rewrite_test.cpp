#include <gtest/gtest.h>

#include "core/gts.hpp"
#include "core/rewrite.hpp"
#include "core/test_pattern_graph.hpp"
#include "sim/two_cell_sim.hpp"

namespace mtg::core {
namespace {

using fault::FaultInstance;
using fault::FaultKind;
using fault::TestPattern;
using fsm::AbstractOp;
using fsm::Cell;
using fsm::PairState;

/// Validator requiring well-formedness plus detection of the given
/// instances — the gate the generator uses.
GtsValidator gate_for(std::vector<FaultInstance> instances) {
    return [instances = std::move(instances)](const Gts& gts) {
        const auto ops = gts.ops();
        if (!sim::gts_well_formed(ops)) return false;
        for (const auto& inst : instances)
            if (!sim::gts_detects(ops, inst)) return false;
        return true;
    };
}

Gts cfid_example_gts() {
    TestPattern tp3{PairState::parse("00"), AbstractOp::write(Cell::I, 1),
                    AbstractOp::read(Cell::J, 0)};
    TestPattern tp2{PairState::parse("10"), AbstractOp::write(Cell::J, 1),
                    AbstractOp::read(Cell::I, 1)};
    TestPattern tp4{PairState::parse("00"), AbstractOp::write(Cell::J, 1),
                    AbstractOp::read(Cell::I, 0)};
    TestPattern tp1{PairState::parse("01"), AbstractOp::write(Cell::I, 1),
                    AbstractOp::read(Cell::J, 1)};
    return concatenate_tps({tp3, tp2, tp4, tp1});
}

std::vector<FaultInstance> cfid_instances() {
    return {{FaultKind::CfidUp1, Cell::I},
            {FaultKind::CfidUp1, Cell::J},
            {FaultKind::CfidUp0, Cell::I},
            {FaultKind::CfidUp0, Cell::J}};
}

TEST(Reorder, SortsInitRunsCellIFirst) {
    // Build a chain whose second TP needs j then i writes in one run.
    TestPattern a{PairState::parse("11"), AbstractOp::write(Cell::I, 0),
                  AbstractOp::read(Cell::I, 0)};
    TestPattern b{PairState::parse("10"), std::nullopt,
                  AbstractOp::read(Cell::I, 1)};
    Gts gts = concatenate_tps({a, b});
    // After TP a: state 01 — TP b needs i=1 and j=0: two init writes.
    Gts reordered = reorder(gts);
    std::vector<std::string> ops;
    for (const auto& s : reordered.symbols) ops.push_back(s.op.str());
    // The init run for b must come out i-first.
    bool found = false;
    for (std::size_t k = 0; k + 1 < ops.size(); ++k) {
        if (ops[k] == "w1i" && ops[k + 1] == "w0j") found = true;
    }
    EXPECT_TRUE(found) << reordered.str();
}

TEST(Reorder, ColoursCrossCellPairs) {
    const Gts reordered = reorder(cfid_example_gts());
    int reds = 0, blues = 0;
    for (const auto& s : reordered.symbols) {
        if (s.colour == Colour::Red) {
            ++reds;
            EXPECT_EQ(s.role, SymbolRole::Excite);
        }
        if (s.colour == Colour::Blue) {
            ++blues;
            EXPECT_EQ(s.role, SymbolRole::Observe);
        }
    }
    EXPECT_EQ(reds, 4);   // all four TPs are cross-cell
    EXPECT_EQ(blues, 4);
}

TEST(Reorder, LeavesSingleCellPairsUncoloured) {
    TestPattern tf{PairState::parse("0x"), AbstractOp::write(Cell::I, 1),
                   AbstractOp::read(Cell::I, 1)};
    const Gts reordered = reorder(concatenate_tps({tf}));
    for (const auto& s : reordered.symbols)
        EXPECT_EQ(s.colour, Colour::None);
}

TEST(Reorder, MarksAllSymbolsTerminal) {
    const Gts reordered = reorder(cfid_example_gts());
    for (const auto& s : reordered.symbols) EXPECT_TRUE(s.terminal);
}

TEST(Reorder, PreservesDetection) {
    const Gts reordered = reorder(cfid_example_gts());
    EXPECT_TRUE(gate_for(cfid_instances())(reordered));
}

TEST(Minimise, RemovesNothingFromTightSequence) {
    // The paper example GTS is already write-minimal at GTS level: each
    // init write is needed by some TP.
    const Gts gts = reorder(cfid_example_gts());
    const auto gate = gate_for(cfid_instances());
    const Gts minimised = minimise(gts, gate);
    EXPECT_EQ(minimised.op_count(), gts.op_count());
    EXPECT_TRUE(is_minimal(minimised, gate));
}

TEST(Minimise, DropsGenuinelyRedundantInitWrites) {
    // Chain two identical TF<^> patterns: the second TP's re-init w0i is
    // redundant (one excitation already detects the instance).
    TestPattern tf{PairState::parse("0x"), AbstractOp::write(Cell::I, 1),
                   AbstractOp::read(Cell::I, 1)};
    Gts gts = reorder(concatenate_tps({tf, tf}));
    ASSERT_EQ(gts.op_count(), 6);  // w0i w1i r1i w0i w1i r1i
    const auto gate = gate_for({{FaultKind::TfUp, Cell::I}});
    const Gts minimised = minimise(gts, gate);
    EXPECT_LT(minimised.op_count(), 6);
    EXPECT_TRUE(gate(minimised));
    EXPECT_TRUE(is_minimal(minimised, gate));
}

TEST(Minimise, NeverTouchesExcitesOrObserves) {
    Gts gts = reorder(cfid_example_gts());
    const Gts minimised = minimise(gts, gate_for(cfid_instances()));
    int excites = 0, observes = 0;
    for (const auto& s : minimised.symbols) {
        excites += s.role == SymbolRole::Excite;
        observes += s.role == SymbolRole::Observe;
    }
    EXPECT_EQ(excites, 4);
    EXPECT_EQ(observes, 4);
}

TEST(Minimise, RejectsInvalidInput) {
    Gts empty;
    const auto gate = [](const Gts&) { return false; };
    EXPECT_THROW((void)minimise(empty, gate), ContractViolation);
}

}  // namespace
}  // namespace mtg::core
