/// \file lane_width_test.cpp
/// Lane-width correctness: the packed kernels must produce bit-identical
/// detects / detects_all / traces at every lane-block width W ∈ {1, 4, 8}
/// (every width is runnable on every host — wide blocks without the
/// matching ISA just run generic codegen), on both the bit- and
/// word-oriented kernels, for every fault kind, plus the pure dispatch
/// rules behind MTG_LANE_WIDTH / CPUID resolution.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "sim/batch_runner.hpp"
#include "sim/lane_dispatch.hpp"
#include "sim/march_runner.hpp"
#include "util/thread_pool.hpp"
#include "word/background.hpp"
#include "word/word_batch_runner.hpp"
#include "word/word_march.hpp"

namespace mtg {
namespace {

using fault::FaultKind;

const std::vector<int> kWidths{1, 4, 8};

std::vector<FaultKind> all_kinds() {
    return {FaultKind::Saf0,      FaultKind::Saf1,      FaultKind::TfUp,
            FaultKind::TfDown,    FaultKind::Wdf0,      FaultKind::Wdf1,
            FaultKind::Rdf0,      FaultKind::Rdf1,      FaultKind::Drdf0,
            FaultKind::Drdf1,     FaultKind::Irf0,      FaultKind::Irf1,
            FaultKind::Drf0,      FaultKind::Drf1,      FaultKind::CfinUp,
            FaultKind::CfinDown,  FaultKind::CfidUp0,   FaultKind::CfidUp1,
            FaultKind::CfidDown0, FaultKind::CfidDown1, FaultKind::CfstS0F0,
            FaultKind::CfstS0F1,  FaultKind::CfstS1F0,  FaultKind::CfstS1F1,
            FaultKind::Af,        FaultKind::AfMap};
}

/// detects / detects_all / run must agree with the W=1 kernel for every
/// fault kind; W=1 itself is proven against the scalar oracle by the PR 1
/// differential tests, so transitively every width matches the oracle.
TEST(LaneWidth, BitKernelBitIdenticalAcrossWidthsForEveryKind) {
    util::ThreadPool serial(1);
    const auto& test = march::march_ss();  // two ⇕ elements, waits, rich mix
    const sim::RunOptions opts{.memory_size = 14, .max_any_expansion = 4};
    for (FaultKind kind : all_kinds()) {
        const auto population = sim::full_population(kind, opts.memory_size);
        ASSERT_FALSE(population.empty());

        const sim::BatchRunner scalar(test, opts, &serial, 1);
        const auto expected_detects = scalar.detects(population);
        const bool expected_all = scalar.detects_all(population);
        const auto expected_traces = scalar.run(population);

        for (int width : kWidths) {
            const sim::BatchRunner runner(test, opts, &serial, width);
            ASSERT_EQ(runner.lane_width(), width);
            EXPECT_EQ(runner.detects(population), expected_detects)
                << "kind " << fault::fault_kind_name(kind) << " width " << width;
            EXPECT_EQ(runner.detects_all(population), expected_all)
                << "kind " << fault::fault_kind_name(kind) << " width " << width;
            const auto traces = runner.run(population);
            ASSERT_EQ(traces.size(), expected_traces.size());
            for (std::size_t i = 0; i < traces.size(); ++i) {
                EXPECT_EQ(traces[i].detected, expected_traces[i].detected)
                    << "kind " << fault::fault_kind_name(kind) << " width "
                    << width << " fault " << i;
                EXPECT_EQ(traces[i].failing_reads,
                          expected_traces[i].failing_reads)
                    << "kind " << fault::fault_kind_name(kind) << " width "
                    << width << " fault " << i;
                EXPECT_EQ(traces[i].failing_observations,
                          expected_traces[i].failing_observations)
                    << "kind " << fault::fault_kind_name(kind) << " width "
                    << width << " fault " << i;
            }
        }
    }
}

/// A population spanning several W=8 chunks (n=24 -> 552 two-cell
/// placements > 504) exercises full blocks, the partial tail chunk and
/// the chunk-index reduction at every width, cross-checked against the
/// scalar per-fault oracle.
TEST(LaneWidth, MultiChunkPopulationsMatchTheScalarOracle) {
    util::ThreadPool serial(1);
    const auto& test = march::march_c_minus();
    const sim::RunOptions opts{.memory_size = 24, .max_any_expansion = 6};
    const auto population =
        sim::full_population(FaultKind::CfidUp0, opts.memory_size);
    ASSERT_GT(population.size(), 504u);

    std::vector<bool> oracle;
    oracle.reserve(population.size());
    for (const auto& fault : population)
        oracle.push_back(sim::detects(test, fault, opts));

    for (int width : kWidths) {
        const sim::BatchRunner runner(test, opts, &serial, width);
        EXPECT_EQ(runner.detects(population), oracle) << "width " << width;
        EXPECT_EQ(runner.detects_all(population),
                  std::find(oracle.begin(), oracle.end(), false) ==
                      oracle.end())
            << "width " << width;
    }
}

/// Word kernel: detects / detects_all bit-identical across widths for
/// every kind, with the W=1 kernel anchored to the scalar word oracle.
TEST(LaneWidth, WordKernelBitIdenticalAcrossWidthsForEveryKind) {
    util::ThreadPool serial(1);
    const auto& test = march::march_c_minus();
    word::WordRunOptions opts;
    opts.words = 6;
    opts.width = 4;  // counting backgrounds need a power-of-two width
    const auto backgrounds = word::counting_backgrounds(opts.width);
    for (FaultKind kind : all_kinds()) {
        const auto population = word::coverage_population(kind, opts);
        ASSERT_FALSE(population.empty());

        const word::WordBatchRunner scalar(test, backgrounds, opts, &serial,
                                           1);
        const auto expected_detects = scalar.detects(population);
        const bool expected_all = scalar.detects_all(population);
        // Spot-anchor the W=1 kernel to the scalar oracle on the first
        // few placements (full per-kind equivalence is word_batch_test's
        // job).
        for (std::size_t i = 0; i < population.size() && i < 3; ++i)
            ASSERT_EQ(expected_detects[i],
                      word::detects(test, backgrounds, population[i], opts))
                << "kind " << fault::fault_kind_name(kind) << " fault " << i;

        for (int width : kWidths) {
            const word::WordBatchRunner runner(test, backgrounds, opts,
                                               &serial, width);
            ASSERT_EQ(runner.lane_width(), width);
            EXPECT_EQ(runner.detects(population), expected_detects)
                << "kind " << fault::fault_kind_name(kind) << " width " << width;
            EXPECT_EQ(runner.detects_all(population), expected_all)
                << "kind " << fault::fault_kind_name(kind) << " width " << width;
        }
    }
}

/// The wide kernels must stay bit-identical when the grid is sharded
/// across workers (per-worker accumulators merge by AND, stealing pool
/// hands out ranges nondeterministically).
TEST(LaneWidth, WideKernelsAreDeterministicAcrossWorkerCounts) {
    const auto& test = march::march_c_minus();
    const sim::RunOptions opts{.memory_size = 16, .max_any_expansion = 6};
    const auto population =
        sim::full_population(FaultKind::CfidDown1, opts.memory_size);

    util::ThreadPool serial(1);
    for (int width : kWidths) {
        const sim::BatchRunner reference(test, opts, &serial, width);
        const auto expected = reference.detects(population);
        for (unsigned workers : {2u, 5u}) {
            util::ThreadPool pool(workers);
            const sim::BatchRunner runner(test, opts, &pool, width);
            EXPECT_EQ(runner.detects(population), expected)
                << "width " << width << " workers " << workers;
            EXPECT_EQ(runner.detects_all(population),
                      reference.detects_all(population))
                << "width " << width << " workers " << workers;
        }
    }
}

TEST(LaneDispatch, ParsesLaneWidthOverride) {
    EXPECT_EQ(sim::parse_lane_width(nullptr), 0);
    EXPECT_EQ(sim::parse_lane_width(""), 0);
    EXPECT_EQ(sim::parse_lane_width("1"), 1);
    EXPECT_EQ(sim::parse_lane_width("4"), 4);
    EXPECT_EQ(sim::parse_lane_width("8"), 8);
    EXPECT_EQ(sim::parse_lane_width("2"), 0);   // not an instantiated width
    EXPECT_EQ(sim::parse_lane_width("16"), 0);
    EXPECT_EQ(sim::parse_lane_width("0"), 0);
    EXPECT_EQ(sim::parse_lane_width("-4"), 0);
    EXPECT_EQ(sim::parse_lane_width("4x"), 0);
    EXPECT_EQ(sim::parse_lane_width("wide"), 0);
}

TEST(LaneDispatch, ResolvesWidthFromOverrideThenCpuid) {
    EXPECT_EQ(sim::resolve_lane_width(nullptr, false, false), 1);
    EXPECT_EQ(sim::resolve_lane_width(nullptr, true, false), 4);
    EXPECT_EQ(sim::resolve_lane_width(nullptr, true, true), 8);
    EXPECT_EQ(sim::resolve_lane_width(nullptr, false, true), 8);
    EXPECT_EQ(sim::resolve_lane_width("1", true, true), 1);
    EXPECT_EQ(sim::resolve_lane_width("8", false, false), 8);  // always safe
    EXPECT_EQ(sim::resolve_lane_width("junk", true, false), 4);
    EXPECT_EQ(sim::active_lane_width(),
              sim::active_lane_width());  // cached and stable
    EXPECT_TRUE(sim::lane_width_supported(sim::active_lane_width()));
}

TEST(LaneDispatch, ClampPicksTheNarrowestFillingWidth) {
    // <= 3 plane words of faults: scalar chunks win.
    EXPECT_EQ(sim::clamp_lane_width(8, 0), 1);
    EXPECT_EQ(sim::clamp_lane_width(8, 63), 1);
    EXPECT_EQ(sim::clamp_lane_width(8, 189), 1);
    // 4..7 words: one AVX2-sized block.
    EXPECT_EQ(sim::clamp_lane_width(8, 190), 4);
    EXPECT_EQ(sim::clamp_lane_width(8, 441), 4);
    // 8+ words: full-width blocks (bounded by the runner's width).
    EXPECT_EQ(sim::clamp_lane_width(8, 504), 8);
    EXPECT_EQ(sim::clamp_lane_width(8, 100000), 8);
    EXPECT_EQ(sim::clamp_lane_width(4, 100000), 4);
    EXPECT_EQ(sim::clamp_lane_width(1, 100000), 1);
}

/// Constructing a runner with an explicit width keeps that width exact
/// even for tiny populations (the differential tests above rely on it).
TEST(LaneDispatch, ExplicitRunnerWidthIsNotClamped) {
    util::ThreadPool serial(1);
    const auto& test = march::find_march_test("MATS++").test;
    const sim::RunOptions opts{.memory_size = 4, .max_any_expansion = 4};
    const auto population = sim::full_population(FaultKind::Saf0, 4);
    const sim::BatchRunner w8(test, opts, &serial, 8);
    const sim::BatchRunner w1(test, opts, &serial, 1);
    EXPECT_EQ(w8.lane_width(), 8);
    EXPECT_EQ(w8.detects(population), w1.detects(population));
}

}  // namespace
}  // namespace mtg
