#include <gtest/gtest.h>

#include "core/test_pattern_graph.hpp"
#include "fault/test_pattern.hpp"

namespace mtg::core {
namespace {

using fault::FaultKind;
using fault::TestPattern;
using fsm::AbstractOp;
using fsm::Cell;
using fsm::PairState;

/// The paper's §4 running example: FaultList = {⟨↑,1⟩, ⟨↑,0⟩} giving
///   TP1 = (01, w1i, r1j)   TP2 = (10, w1j, r1i)
///   TP3 = (00, w1i, r0j)   TP4 = (00, w1j, r0i)
std::vector<TestPattern> figure4_patterns() {
    TestPattern tp1{PairState::parse("01"), AbstractOp::write(Cell::I, 1),
                    AbstractOp::read(Cell::J, 1)};
    TestPattern tp2{PairState::parse("10"), AbstractOp::write(Cell::J, 1),
                    AbstractOp::read(Cell::I, 1)};
    TestPattern tp3{PairState::parse("00"), AbstractOp::write(Cell::I, 1),
                    AbstractOp::read(Cell::J, 0)};
    TestPattern tp4{PairState::parse("00"), AbstractOp::write(Cell::J, 1),
                    AbstractOp::read(Cell::I, 0)};
    return {tp1, tp2, tp3, tp4};
}

/// The same patterns as extracted from the fault library (sanity: our
/// front-end reproduces the paper's TP list for this fault list).
TEST(Figure4, ExtractionMatchesPaperTps) {
    const auto classes = fault::extract_tp_classes(
        {FaultKind::CfidUp1, FaultKind::CfidUp0});
    ASSERT_EQ(classes.size(), 4u);
    for (const auto& cls : classes) EXPECT_EQ(cls.alternatives.size(), 1u);
    EXPECT_EQ(classes[0].alternatives[0].str(), "(00, w1i, r0j)");  // TP3
    EXPECT_EQ(classes[1].alternatives[0].str(), "(00, w1j, r0i)");  // TP4
    EXPECT_EQ(classes[2].alternatives[0].str(), "(01, w1i, r1j)");  // TP1
    EXPECT_EQ(classes[3].alternatives[0].str(), "(10, w1j, r1i)");  // TP2
}

/// Observation states: TP1: 01-w1i->11, TP2: 10-w1j->11, TP3: 00-w1i->10,
/// TP4: 00-w1j->01.
TEST(Figure4, ObservationStates) {
    const auto tps = figure4_patterns();
    EXPECT_EQ(tps[0].observation_state().str(), "11");
    EXPECT_EQ(tps[1].observation_state().str(), "11");
    EXPECT_EQ(tps[2].observation_state().str(), "10");
    EXPECT_EQ(tps[3].observation_state().str(), "01");
}

/// Figure 4 edge weights (f.4.1): hamming distance from the source's
/// observation state to the target's initialisation state.
TEST(Figure4, EdgeWeights) {
    const TestPatternGraph tpg(figure4_patterns());
    // Indices: 0=TP1, 1=TP2, 2=TP3, 3=TP4.
    // From TP1 (obs 11): to TP2 (init 10) = 1; TP3 (00) = 2; TP4 (00) = 2.
    EXPECT_EQ(tpg.weight(0, 1), 1);
    EXPECT_EQ(tpg.weight(0, 2), 2);
    EXPECT_EQ(tpg.weight(0, 3), 2);
    // From TP2 (obs 11): to TP1 (init 01) = 1.
    EXPECT_EQ(tpg.weight(1, 0), 1);
    // The two zero-weight chains of the figure: TP3 -> TP2 and TP4 -> TP1.
    EXPECT_EQ(tpg.weight(2, 1), 0);
    EXPECT_EQ(tpg.weight(3, 0), 0);
    // From TP3 (obs 10): TP1 (01) = 2, TP4 (00) = 1.
    EXPECT_EQ(tpg.weight(2, 0), 2);
    EXPECT_EQ(tpg.weight(2, 3), 1);
    // From TP4 (obs 01): TP2 (10) = 2, TP3 (00) = 1.
    EXPECT_EQ(tpg.weight(3, 1), 2);
    EXPECT_EQ(tpg.weight(3, 2), 1);
}

TEST(Figure4, StartCostsAndConstraint) {
    const TestPatternGraph tpg(figure4_patterns());
    for (int v = 0; v < 4; ++v) EXPECT_EQ(tpg.start_cost(v), 2);
    // f.4.4: only uniform-background initialisations may start the tour.
    EXPECT_FALSE(tpg.uniform_start(0));  // 01
    EXPECT_FALSE(tpg.uniform_start(1));  // 10
    EXPECT_TRUE(tpg.uniform_start(2));   // 00
    EXPECT_TRUE(tpg.uniform_start(3));   // 00
}

/// The minimum-weight Hamiltonian path: the paper's GTS chains
/// TP3 -> TP2 (0), then two writes to 00, TP4 -> TP1 (0): total
/// 2 (cold start) + 0 + 2 + 0 = 4 which is 12 operations overall
/// (4 writes + 4 excites + 4 observes).
TEST(Figure4, OptimalPathCost) {
    const TestPatternGraph tpg(figure4_patterns());
    const auto path = tpg.solve(/*constrain_start=*/true);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->cost, 4);
    // Start must honour f.4.4.
    EXPECT_TRUE(tpg.uniform_start(path->order.front()));
    // Unconstrained search cannot do better here.
    const auto free_path = tpg.solve(false);
    ASSERT_TRUE(free_path.has_value());
    EXPECT_EQ(free_path->cost, 4);
}

TEST(Figure4, Rendering) {
    const TestPatternGraph tpg(figure4_patterns());
    const std::string text = tpg.str();
    EXPECT_NE(text.find("TP1"), std::string::npos);
    EXPECT_NE(text.find("TP4"), std::string::npos);
    EXPECT_NE(text.find("weights"), std::string::npos);
}

TEST(TestPatternGraph, SingleNodeGraph) {
    TestPattern tp{PairState::parse("0x"), AbstractOp::write(Cell::I, 1),
                   AbstractOp::read(Cell::I, 1)};
    const TestPatternGraph tpg({tp});
    EXPECT_EQ(tpg.size(), 1);
    EXPECT_EQ(tpg.start_cost(0), 1);
    const auto path = tpg.solve(true);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->cost, 1);
}

TEST(TestPatternGraph, DontCareInitsReduceWeights) {
    // A TP with unconstrained init is reachable for free from anywhere.
    TestPattern strict{PairState::parse("01"), AbstractOp::write(Cell::I, 1),
                       AbstractOp::read(Cell::J, 1)};
    TestPattern loose{PairState::parse("xx"), std::nullopt,
                      AbstractOp::read(Cell::I, 0)};
    // Give `loose` a consistent observe: read i expecting 0 — make init 0x.
    loose.init = PairState::parse("0x");
    const TestPatternGraph tpg({strict, loose});
    EXPECT_EQ(tpg.weight(0, 1), 1);  // obs 11 -> need i=0: one write
    EXPECT_EQ(tpg.weight(1, 0), 1);  // obs 0x -> need 01: j unknown: one write
}

}  // namespace
}  // namespace mtg::core
