/// The query-server differential: everything a client reads off the wire
/// — over a real TCP socket or an in-process socketpair, alone or racing
/// other sessions — must be byte-identical to rendering a locally-run
/// PackedBackend Engine's Result. On top of the differential, the
/// admission machinery is pinned down: identical in-flight queries
/// observably collapse onto one backend run, interactive probes complete
/// while a dictionary sweep is in flight on the bulk lane, repeated
/// sweeps are answered from the sweep cache without a backend run, and
/// malformed input gets an "ok": false reply without killing the
/// connection. The TSan CI leg replays this whole file.

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "march/library.hpp"
#include "net/framing.hpp"
#include "net/query_protocol.hpp"
#include "net/query_server.hpp"

namespace mtg::net {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

QueryRequest make_request(std::int64_t id, QueryOp op, std::string test,
                          std::string kinds) {
    QueryRequest request;
    request.id = id;
    request.op = op;
    request.test = std::move(test);
    request.kinds = std::move(kinds);
    return request;
}

QueryRequest make_word_request(std::int64_t id, QueryOp op) {
    QueryRequest request = make_request(id, op, "MATS+", "SAF,TF");
    request.word = true;
    request.words = 6;
    request.width = 4;
    return request;
}

/// What the server must emit for `request`, computed on a local Engine —
/// the whole differential in one line: resolve, run, render.
std::string expected_reply(const engine::Engine& local,
                           const QueryRequest& request) {
    return render_result(request.id, local.run(to_engine_query(request)));
}

/// The mixed battery both transports replay: every op, both universes,
/// a permuted-kind spelling, and an explicit syntax spelling of MATS+.
std::vector<QueryRequest> battery() {
    std::vector<QueryRequest> requests;
    requests.push_back(make_request(1, QueryOp::Detects, "MATS+", "SAF,TF"));
    requests.push_back(make_request(2, QueryOp::Detects, "MATS+", "TF,SAF"));
    requests.push_back(
        make_request(3, QueryOp::DetectsAll, "March C-", "SAF,TF,CFin"));
    requests.push_back(make_request(4, QueryOp::Traces, "MATS", "SAF"));
    requests.push_back(make_request(5, QueryOp::Sweep, "MATS+", "SAF,TF"));
    requests.push_back(make_word_request(6, QueryOp::Detects));
    requests.push_back(make_word_request(7, QueryOp::Traces));
    requests.push_back(make_word_request(8, QueryOp::Sweep));
    QueryRequest bigger = make_request(9, QueryOp::Detects, "March C-", "CFid");
    bigger.memory_size = 12;
    requests.push_back(std::move(bigger));
    return requests;
}

TEST(QueryProtocol, JsonDumpParseRoundTripsAndMaskIsNibbleLsbFirst) {
    const std::string line =
        R"({"id": 7, "op": "detects", "test": "MATS+", "kinds": "SAF,TF", "n": 10})";
    const QueryRequest request = parse_request(line);
    EXPECT_EQ(request.id, 7);
    EXPECT_EQ(request.op, QueryOp::Detects);
    EXPECT_EQ(request.memory_size, 10);
    // render -> parse -> render is a fixed point.
    const std::string rendered = render_request(request);
    EXPECT_EQ(render_request(parse_request(rendered)), rendered);

    // bit i of the mask is detected[i]; nibble j holds bits [4j, 4j+4).
    EXPECT_EQ(detected_mask({}), "");
    EXPECT_EQ(detected_mask({true, false, false, false}), "1");
    EXPECT_EQ(detected_mask({false, false, false, true}), "8");
    EXPECT_EQ(detected_mask({true, true, true, true, true}), "f1");
}

TEST(QueryProtocol, CoalesceKeyCollapsesSpellingsAndPermutations) {
    const QueryRequest a = make_request(1, QueryOp::Detects, "MATS+", "SAF,TF");
    const QueryRequest b = make_request(2, QueryOp::Detects, "MATS+", "TF,SAF");
    EXPECT_EQ(coalesce_key(a, to_engine_query(a)),
              coalesce_key(b, to_engine_query(b)));

    // A library name and its spelled-out March syntax are one key too:
    // the key is built from the resolved test, not the request text.
    QueryRequest c = a;
    c.test = march::find_march_test("MATS+").test.str();
    EXPECT_EQ(coalesce_key(a, to_engine_query(a)),
              coalesce_key(c, to_engine_query(c)));

    const QueryRequest other =
        make_request(3, QueryOp::Traces, "MATS+", "SAF,TF");
    EXPECT_NE(coalesce_key(a, to_engine_query(a)),
              coalesce_key(other, to_engine_query(other)));
}

TEST(QueryServer, SocketpairSessionMatchesLocalEngineByteForByte) {
    QueryServer server;
    const auto [server_fd, client_fd] = socket_pair();
    server.serve_fd(server_fd);
    QueryClient client(client_fd);

    const engine::Engine local;
    for (const QueryRequest& request : battery()) {
        const auto reply = client.roundtrip(request, /*timeout_ms=*/30000);
        ASSERT_TRUE(reply.has_value()) << "id " << request.id;
        EXPECT_EQ(*reply, expected_reply(local, request))
            << "id " << request.id;
    }

    const QueryServer::Stats stats = server.stats();
    EXPECT_EQ(stats.requests, battery().size());
    EXPECT_EQ(stats.responses, battery().size());
    EXPECT_EQ(stats.errors, 0u);
}

TEST(QueryServer, ConcurrentTcpClientsMatchLocalEngineByteForByte) {
    QueryServer server;
    const std::uint16_t port = server.listen(0);
    ASSERT_GT(port, 0);

    const engine::Engine local;
    const std::vector<QueryRequest> requests = battery();
    std::vector<std::string> expected;
    expected.reserve(requests.size());
    for (const QueryRequest& request : requests)
        expected.push_back(expected_reply(local, request));

    constexpr int kClients = 4;
    constexpr int kRounds = 3;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            QueryClient client("127.0.0.1", port);
            for (int round = 0; round < kRounds; ++round) {
                for (std::size_t i = 0; i < requests.size(); ++i) {
                    // Walk from a per-client phase so distinct queries
                    // overlap across sessions.
                    const std::size_t index =
                        (i + static_cast<std::size_t>(c) * 3) %
                        requests.size();
                    const auto reply =
                        client.roundtrip(requests[index], 30000);
                    if (!reply.has_value() || *reply != expected[index])
                        mismatches.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(server.stats().sessions, static_cast<std::size_t>(kClients));
}

/// A query heavy enough to hold the single bulk executor for half a
/// second (per-fault detects of CFid + CFst on a 128-cell memory: ~130k
/// placements), forced onto the bulk lane with the explicit class
/// override — so requests admitted behind it are deterministically
/// queued, not racing its completion. Detects rather than Traces keeps
/// the reply to a ~33 KB mask the un-drained client socket can buffer
/// (a multi-MB trace dump would wedge the executor in write_line), and a
/// DictionarySweep won't do either: dictionaries are canonical
/// *instances*, a few dozen traces, finished in microseconds.
QueryRequest blocking_bulk_query(std::int64_t id) {
    QueryRequest request =
        make_request(id, QueryOp::Detects, "March C-", "CFid,CFst");
    // Debug and sanitizer builds run the simulation 10-100x slower; the
    // blocker only has to outlast the admission of a handful of tiny
    // requests, so scale it down rather than time the whole leg out.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__) || \
    !defined(NDEBUG)
    request.memory_size = 48;
#else
    request.memory_size = 128;
#endif
    request.klass = QueryClass::Bulk;
    return request;
}

TEST(QueryServer, IdenticalInFlightQueriesCoalesceOntoOneBackendRun) {
    QueryServerOptions options;
    options.interactive_executors = 1;
    options.bulk_executors = 1;
    QueryServer server(options);

    // Occupy the only bulk executor.
    const auto [blocker_server_fd, blocker_client_fd] = socket_pair();
    server.serve_fd(blocker_server_fd);
    QueryClient blocker(blocker_client_fd);
    ASSERT_TRUE(blocker.send(blocking_bulk_query(100)));
    std::this_thread::sleep_for(50ms);

    // Five sessions ask the identical bulk question while the executor is
    // busy: the first admission creates the queued task, the other four
    // must attach to it — five answers, ONE backend run.
    const QueryRequest shared =
        make_request(200, QueryOp::Traces, "MATS+", "SAF,TF");
    constexpr int kSubscribers = 5;
    std::vector<QueryClient> clients;
    clients.reserve(kSubscribers);
    for (int i = 0; i < kSubscribers; ++i) {
        const auto [server_fd, client_fd] = socket_pair();
        server.serve_fd(server_fd);
        clients.emplace_back(client_fd);
        QueryRequest request = shared;
        request.id = 200 + i;
        // Permute the kind spelling on half the sessions: the resolved
        // key must collapse those too.
        if (i % 2 == 1) request.kinds = "TF,SAF";
        ASSERT_TRUE(clients.back().send(request));
    }

    const engine::Engine local;
    for (int i = 0; i < kSubscribers; ++i) {
        const auto reply = clients[i].read_reply(/*timeout_ms=*/60000);
        ASSERT_TRUE(reply.has_value()) << "subscriber " << i;
        QueryRequest request = shared;
        request.id = 200 + i;
        EXPECT_EQ(*reply, expected_reply(local, request)) << "subscriber " << i;
    }
    ASSERT_TRUE(blocker.read_reply(/*timeout_ms=*/60000).has_value());

    // The response counter is bumped after the reply line is written, so
    // a client can read its answer a beat before the count lands — give
    // the executor threads a moment to settle before snapshotting.
    const auto deadline = Clock::now() + 2s;
    while (server.stats().responses <
               static_cast<std::size_t>(kSubscribers) + 1 &&
           Clock::now() < deadline)
        std::this_thread::sleep_for(1ms);

    const QueryServer::Stats stats = server.stats();
    // The blocker ran, the shared question ran once; the other four
    // identical requests coalesced and consumed no executor.
    EXPECT_EQ(stats.backend_runs, 2u);
    EXPECT_EQ(stats.coalesced, static_cast<std::size_t>(kSubscribers - 1));
    EXPECT_EQ(stats.responses, static_cast<std::size_t>(kSubscribers) + 1);
}

TEST(QueryServer, InteractiveProbeCompletesWhileSweepInFlight) {
    QueryServerOptions options;
    options.interactive_executors = 1;
    options.bulk_executors = 1;
    QueryServer server(options);

    const auto [sweep_server_fd, sweep_client_fd] = socket_pair();
    server.serve_fd(sweep_server_fd);
    QueryClient sweeper(sweep_client_fd);

    const auto [probe_server_fd, probe_client_fd] = socket_pair();
    server.serve_fd(probe_server_fd);
    QueryClient prober(probe_client_fd);

    ASSERT_TRUE(sweeper.send(blocking_bulk_query(1)));
    std::this_thread::sleep_for(50ms);

    // The probe must be answered by the reserved interactive lane while
    // the sweep still holds the bulk lane — not queued behind it.
    const QueryRequest probe =
        make_request(2, QueryOp::Detects, "MATS+", "SAF,TF");
    const auto probe_reply = prober.roundtrip(probe, /*timeout_ms=*/30000);
    const Clock::time_point probe_done = Clock::now();
    ASSERT_TRUE(probe_reply.has_value());
    const engine::Engine local;
    EXPECT_EQ(*probe_reply, expected_reply(local, probe));

    const auto sweep_reply = sweeper.read_reply(/*timeout_ms=*/120000);
    const Clock::time_point sweep_done = Clock::now();
    ASSERT_TRUE(sweep_reply.has_value());
    EXPECT_LT(probe_done, sweep_done)
        << "interactive probe was gated behind the in-flight sweep";
}

TEST(QueryServer, RepeatedSweepIsAnsweredFromTheSweepCache) {
    QueryServer server;
    const engine::Engine local;
    const QueryRequest sweep = make_request(1, QueryOp::Sweep, "MATS+", "SAF");

    // Two separate sessions — the cache is server-wide, not per-session.
    std::optional<std::string> first;
    {
        const auto [server_fd, client_fd] = socket_pair();
        server.serve_fd(server_fd);
        QueryClient client(client_fd);
        first = client.roundtrip(sweep, 30000);
    }
    const auto [server_fd, client_fd] = socket_pair();
    server.serve_fd(server_fd);
    QueryClient client(client_fd);
    QueryRequest again = sweep;
    again.id = 2;
    const auto second = client.roundtrip(again, 30000);

    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*first, expected_reply(local, sweep));
    EXPECT_EQ(*second, expected_reply(local, again));

    const QueryServer::Stats stats = server.stats();
    EXPECT_EQ(stats.backend_runs, 1u);
    EXPECT_EQ(stats.sweep_cache_hits, 1u);
}

TEST(QueryServer, MalformedInputGetsAnErrorAndTheConnectionSurvives) {
    QueryServer server;
    const auto [server_fd, client_fd] = socket_pair();
    server.serve_fd(server_fd);
    LineChannel raw(client_fd);

    const auto expect_error = [&raw](const std::string& line,
                                     std::int64_t id) {
        ASSERT_TRUE(raw.write_line(line));
        std::string reply;
        ASSERT_EQ(raw.read_line(reply, 30000), LineChannel::ReadStatus::Ok)
            << line;
        const Json root = Json::parse(reply);
        ASSERT_NE(root.find("ok"), nullptr) << reply;
        EXPECT_FALSE(root.find("ok")->as_bool()) << reply;
        ASSERT_NE(root.find("id"), nullptr) << reply;
        EXPECT_EQ(root.find("id")->as_int(), id) << reply;
        ASSERT_NE(root.find("error"), nullptr) << reply;
        EXPECT_FALSE(root.find("error")->as_string().empty()) << reply;
    };

    expect_error("this is not json", 0);
    expect_error(R"({"id": 41, "op": "warp-core"})", 41);
    expect_error(R"({"id": 42, "op": "detects"})", 42);  // no test
    expect_error(
        R"({"id": 43, "op": "detects", "test": "NoSuchMarch!!", "kinds": "SAF"})",
        43);
    expect_error(
        R"({"id": 44, "op": "detects", "test": "MATS+", "kinds": "XYZZY"})",
        44);
    expect_error(
        R"({"id": 45, "op": "detects", "test": "MATS+", "kinds": "SAF", "n": -3})",
        45);

    // Six bad lines later the session still answers real questions.
    const QueryRequest request =
        make_request(46, QueryOp::Detects, "MATS+", "SAF,TF");
    ASSERT_TRUE(raw.write_line(render_request(request)));
    std::string reply;
    ASSERT_EQ(raw.read_line(reply, 30000), LineChannel::ReadStatus::Ok);
    const engine::Engine local;
    EXPECT_EQ(reply, expected_reply(local, request));

    const QueryServer::Stats stats = server.stats();
    EXPECT_EQ(stats.errors, 6u);
    EXPECT_EQ(stats.requests, 7u);
}

TEST(QueryServer, PingAndStatsAnswerWithoutABackendRun) {
    QueryServer server;
    const auto [server_fd, client_fd] = socket_pair();
    server.serve_fd(server_fd);
    QueryClient client(client_fd);

    QueryRequest ping;
    ping.id = 9;
    ping.op = QueryOp::Ping;
    const auto pong = client.roundtrip(ping, 30000);
    ASSERT_TRUE(pong.has_value());
    const Json pong_root = Json::parse(*pong);
    EXPECT_EQ(pong_root.find("id")->as_int(), 9);
    EXPECT_TRUE(pong_root.find("ok")->as_bool());
    ASSERT_NE(pong_root.find("pong"), nullptr);
    EXPECT_TRUE(pong_root.find("pong")->as_bool());

    QueryRequest stats_request;
    stats_request.id = 10;
    stats_request.op = QueryOp::Stats;
    const auto stats_reply = client.roundtrip(stats_request, 30000);
    ASSERT_TRUE(stats_reply.has_value());
    const Json stats_root = Json::parse(*stats_reply);
    EXPECT_TRUE(stats_root.find("ok")->as_bool());
    const Json* body = stats_root.find("stats");
    ASSERT_NE(body, nullptr);
    EXPECT_EQ(body->find("backend_runs")->as_int(), 0);
    EXPECT_GE(body->find("requests")->as_int(), 1);
    EXPECT_EQ(server.stats().backend_runs, 0u);
}

TEST(QueryServer, StatsOpReportsPerWantAndCacheCounters) {
    QueryServer server;
    const auto [server_fd, client_fd] = socket_pair();
    server.serve_fd(server_fd);
    QueryClient client(client_fd);

    QueryRequest detects;
    detects.id = 1;
    detects.op = QueryOp::Detects;
    detects.test = "MATS+";
    detects.kinds = "SAF";
    ASSERT_TRUE(client.roundtrip(detects, 30000).has_value());
    QueryRequest all = detects;
    all.id = 2;
    all.op = QueryOp::DetectsAll;
    ASSERT_TRUE(client.roundtrip(all, 30000).has_value());
    ASSERT_TRUE(client.roundtrip(all, 30000).has_value());

    QueryRequest stats_request;
    stats_request.id = 3;
    stats_request.op = QueryOp::Stats;
    const auto reply = client.roundtrip(stats_request, 30000);
    ASSERT_TRUE(reply.has_value());
    const Json* body = Json::parse(*reply).find("stats");
    ASSERT_NE(body, nullptr);
    // Per-Want counts summed over the interactive and bulk engines. The
    // second DetectsAll may be coalesced or served again — >= 1, == for
    // Detects which ran exactly once.
    EXPECT_EQ(body->find("want_detects")->as_int(), 1);
    EXPECT_GE(body->find("want_detects_all")->as_int(), 1);
    EXPECT_EQ(body->find("want_traces")->as_int(), 0);
    EXPECT_EQ(body->find("want_sweeps")->as_int(), 0);
    EXPECT_EQ(body->find("engine_queries")->as_int(),
              body->find("want_detects")->as_int() +
                  body->find("want_detects_all")->as_int());
    // The population cache counters cover both engines (shared cache):
    // three backend-run-worthy requests, at most one miss per universe.
    EXPECT_GE(body->find("cache_hits")->as_int() +
                  body->find("cache_misses")->as_int(),
              1);
}

}  // namespace
}  // namespace mtg::net
