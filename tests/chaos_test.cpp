/// The chaos invariant: every seeded failure schedule — peers killed,
/// delayed, corrupting, truncating, flapping or dribbling mid-frame, in
/// any combination, down
/// to every peer dead — must leave the supervised RemoteBackend's
/// results bit-identical to a local PackedBackend. The harness
/// (net/chaos.hpp) runs all four Engine Wants over both universes per
/// schedule; CI replays a wider seed battery through `march_tool chaos`.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "march/library.hpp"
#include "net/chaos.hpp"

namespace mtg::net {
namespace {

std::string failure_text(const ChaosReport& report) {
    std::ostringstream out;
    out << report.schedule;
    for (const std::string& mismatch : report.mismatches)
        out << " MISMATCH:" << mismatch;
    return out.str();
}

TEST(Chaos, EverySeededScheduleMatchesThePackedOracle) {
    for (const int peers : {1, 2, 3}) {
        for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
            ChaosConfig config;
            config.seed = seed;
            config.peers = peers;
            const ChaosReport report =
                run_chaos(march::march_c_minus(), config);
            EXPECT_TRUE(report.ok)
                << peers << " peers, " << failure_text(report);
            EXPECT_EQ(report.checks, 8)
                << peers << " peers, seed " << seed;
        }
    }
}

TEST(Chaos, SingleKindSchedulesMatchThePackedOracle) {
    // Each failure mode in isolation, including the all-peers-fatal ones
    // (kill/garbage/truncate on every peer force DegradeLocal to carry
    // the whole query).
    for (const ChaosKind kind :
         {ChaosKind::Kill, ChaosKind::Delay, ChaosKind::Garbage,
          ChaosKind::Truncate, ChaosKind::Flap, ChaosKind::Dribble}) {
        ChaosConfig config;
        config.seed = 11;
        config.peers = 2;
        config.kinds = {kind};
        const ChaosReport report = run_chaos(march::march_c_minus(), config);
        EXPECT_TRUE(report.ok)
            << chaos_kind_name(kind) << ": " << failure_text(report);
    }
}

TEST(Chaos, SchedulesAreDeterministicInTheSeed) {
    const std::vector<ChaosKind> kinds = parse_chaos_kinds("all");
    const ChaosSchedule a = ChaosSchedule::generate(99, 4, kinds);
    const ChaosSchedule b = ChaosSchedule::generate(99, 4, kinds);
    EXPECT_EQ(a.describe(), b.describe());
    const ChaosSchedule other = ChaosSchedule::generate(100, 4, kinds);
    EXPECT_NE(a.describe(), other.describe());
    // The peer count is folded into the stream: prefixes differ too.
    const ChaosSchedule fewer = ChaosSchedule::generate(99, 2, kinds);
    EXPECT_NE(a.describe().substr(0, fewer.describe().size()),
              fewer.describe());
}

TEST(Chaos, ParseKindsAcceptsListsAndRejectsGarbage) {
    EXPECT_EQ(parse_chaos_kinds("all").size(), 6u);
    const auto kinds = parse_chaos_kinds("flap,kill,dribble");
    ASSERT_EQ(kinds.size(), 3u);
    EXPECT_EQ(kinds[0], ChaosKind::Flap);
    EXPECT_EQ(kinds[1], ChaosKind::Kill);
    EXPECT_EQ(kinds[2], ChaosKind::Dribble);
    EXPECT_THROW((void)parse_chaos_kinds("meteor"), std::runtime_error);
    EXPECT_THROW((void)parse_chaos_kinds(""), std::runtime_error);
}

TEST(Chaos, AllPeersDribblingStillMatchesTheOracle) {
    // Every peer starts a reply and stalls mid-frame. Without the
    // idle-progress bound this schedule wedged the receivers for the
    // whole stall; with it, the streams go Corrupt, the peers die, and
    // DegradeLocal carries the ranges — bit-identically.
    ChaosConfig config;
    config.seed = 7;
    config.peers = 2;
    config.kinds = {ChaosKind::Dribble};
    const ChaosReport report = run_chaos(march::march_c_minus(), config);
    EXPECT_TRUE(report.ok) << failure_text(report);
    EXPECT_EQ(report.checks, 8);
}

}  // namespace
}  // namespace mtg::net
