#include <gtest/gtest.h>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "setcover/coverage_matrix.hpp"
#include "setcover/set_cover.hpp"
#include "util/rng.hpp"

namespace mtg::setcover {
namespace {

TEST(SetCover, TrivialCases) {
    EXPECT_EQ(minimum_cover({}).value().size(), 0u);
    // Single row covering a single column.
    EXPECT_EQ(minimum_cover({{true}}).value(), std::vector<int>{0});
}

TEST(SetCover, InfeasibleWhenColumnUncovered) {
    const BoolMatrix m = {{true, false}, {true, false}};
    EXPECT_FALSE(minimum_cover(m).has_value());
    EXPECT_FALSE(greedy_cover(m).has_value());
}

TEST(SetCover, PrefersSingleCoveringRow) {
    const BoolMatrix m = {
        {true, false, false},
        {false, true, true},
        {true, true, true},
    };
    EXPECT_EQ(minimum_cover(m).value(), std::vector<int>{2});
}

TEST(SetCover, ExactBeatsGreedyOnClassicTrap) {
    // Greedy picks the big middle row first and needs 3 rows; optimum is 2.
    const BoolMatrix m = {
        {true, true, true, false, false, false},
        {false, false, false, true, true, true},
        {false, true, true, true, true, false},
    };
    const auto exact = minimum_cover(m).value();
    const auto greedy = greedy_cover(m).value();
    EXPECT_EQ(exact.size(), 2u);
    EXPECT_GE(greedy.size(), exact.size());
}

TEST(SetCover, ExactMatchesBruteForceOnRandomInstances) {
    SplitMix64 rng(2002);
    for (int trial = 0; trial < 30; ++trial) {
        const int rows = rng.range(2, 7);
        const int cols = rng.range(1, 9);
        BoolMatrix m(static_cast<std::size_t>(rows),
                     std::vector<bool>(static_cast<std::size_t>(cols)));
        for (auto& row : m)
            for (std::size_t c = 0; c < row.size(); ++c) row[c] = rng.coin();

        // Brute force over all row subsets.
        int best = -1;
        for (int mask = 0; mask < (1 << rows); ++mask) {
            bool covers_all = true;
            for (int c = 0; c < cols && covers_all; ++c) {
                bool covered = false;
                for (int r = 0; r < rows; ++r)
                    if ((mask >> r & 1) &&
                        m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]) {
                        covered = true;
                        break;
                    }
                covers_all = covered;
            }
            if (covers_all &&
                (best < 0 || __builtin_popcount(static_cast<unsigned>(mask)) < best))
                best = __builtin_popcount(static_cast<unsigned>(mask));
        }

        const auto exact = minimum_cover(m);
        if (best < 0) {
            EXPECT_FALSE(exact.has_value()) << "trial " << trial;
        } else {
            ASSERT_TRUE(exact.has_value()) << "trial " << trial;
            EXPECT_EQ(static_cast<int>(exact->size()), best) << "trial " << trial;
        }
    }
}

TEST(SetCover, RemovableRowsDetected) {
    const BoolMatrix m = {
        {true, false},
        {false, true},
        {true, true},  // removable: rows 0+1 suffice... and 2 overlaps both
    };
    const auto removable = individually_removable_rows(m);
    // Each row is individually removable here (the other two still cover).
    EXPECT_EQ(removable.size(), 3u);

    const BoolMatrix tight = {{true, false}, {false, true}};
    EXPECT_TRUE(individually_removable_rows(tight).empty());
}

/// §6 on a real case: March C- against its full fault list is complete and
/// non-redundant — every elementary block is needed.
TEST(CoverageMatrix, MarchCMinusIsNonRedundant) {
    const auto kinds = fault::parse_fault_kinds("SAF,TF,ADF,CFin,CFid");
    const auto matrix =
        build_coverage_matrix(march::march_c_minus(), kinds);
    EXPECT_EQ(matrix.blocks.size(), 5u);  // five reads in March C-
    const auto report = analyse_redundancy(matrix);
    EXPECT_TRUE(report.complete);
    EXPECT_TRUE(report.non_redundant);
    EXPECT_EQ(report.min_cover_size, report.block_count);
    EXPECT_TRUE(report.removable_blocks.empty());
}

/// March C (the original) carries a deliberately redundant ~(r0) element:
/// the set-covering analysis must flag it.
TEST(CoverageMatrix, MarchCIsRedundant) {
    const auto kinds = fault::parse_fault_kinds("SAF,TF,ADF,CFin,CFid");
    const auto report =
        analyse_redundancy(march::march_c(), kinds);
    EXPECT_TRUE(report.complete);
    EXPECT_FALSE(report.non_redundant);
    EXPECT_LT(report.min_cover_size, report.block_count);
}

/// An under-powered test yields an incomplete matrix.
TEST(CoverageMatrix, IncompleteWhenTestTooWeak) {
    const auto kinds = fault::parse_fault_kinds("CFid");
    const auto report = analyse_redundancy(march::mats(), kinds);
    EXPECT_FALSE(report.complete);
}

TEST(CoverageMatrix, LabelsAreInformative) {
    const auto matrix = build_coverage_matrix(
        march::mats(), fault::parse_fault_kinds("SAF"));
    ASSERT_EQ(matrix.blocks.size(), 2u);
    EXPECT_EQ(matrix.block_names[0], "E1.op0(r0)");
    EXPECT_EQ(matrix.fault_names[0], "SAF0@i");
    EXPECT_NE(matrix.str().find("E1.op0(r0)"), std::string::npos);
}

}  // namespace
}  // namespace mtg::setcover
