#include <gtest/gtest.h>

#include "core/march_builder.hpp"
#include "core/rewrite.hpp"
#include "core/test_pattern_graph.hpp"
#include "sim/march_runner.hpp"

namespace mtg::core {
namespace {

using fault::FaultKind;
using fault::TestPattern;
using fsm::AbstractOp;
using fsm::Cell;
using fsm::PairState;
using march::AddressOrder;

Gts cfid_example_gts() {
    TestPattern tp3{PairState::parse("00"), AbstractOp::write(Cell::I, 1),
                    AbstractOp::read(Cell::J, 0)};
    TestPattern tp2{PairState::parse("10"), AbstractOp::write(Cell::J, 1),
                    AbstractOp::read(Cell::I, 1)};
    TestPattern tp4{PairState::parse("00"), AbstractOp::write(Cell::J, 1),
                    AbstractOp::read(Cell::I, 0)};
    TestPattern tp1{PairState::parse("01"), AbstractOp::write(Cell::I, 1),
                    AbstractOp::read(Cell::J, 1)};
    return concatenate_tps({tp3, tp2, tp4, tp1});
}

/// The §4.3 worked example: the pipeline's output for {⟨↑,1⟩,⟨↑,0⟩} is an
/// 8n March test, valid for all four instances.
TEST(MarchBuilder, PaperWorkedExampleGivesValid8n) {
    const march::MarchTest test = build_march(reorder(cfid_example_gts()));
    EXPECT_EQ(test.complexity(), 8) << test.str();
    EXPECT_TRUE(sim::is_well_formed(test));
    for (FaultKind kind : {FaultKind::CfidUp0, FaultKind::CfidUp1})
        EXPECT_TRUE(sim::covers_everywhere(test, kind))
            << test.str() << " misses " << fault::fault_kind_name(kind);
}

TEST(MarchBuilder, PaperExampleStructure) {
    const march::MarchTest test = build_march(reorder(cfid_example_gts()));
    // Expected shape: ⇕(w0); ⇑(r0,w1); ⇑(r1); ⇕(w0); ⇓(r0,w1); ⇓(r1).
    ASSERT_EQ(test.size(), 6u) << test.str();
    EXPECT_EQ(test[1].order, AddressOrder::Ascending);
    EXPECT_EQ(test[2].order, AddressOrder::Ascending);
    EXPECT_EQ(test[4].order, AddressOrder::Descending);
    EXPECT_EQ(test[5].order, AddressOrder::Descending);
}

TEST(MarchBuilder, SingleCellChainBuildsCompactTest) {
    // SAF-style: w1/r1 then w0/r0, all on one cell, no order anchors.
    TestPattern saf0{PairState::parse("1x"), std::nullopt,
                     AbstractOp::read(Cell::I, 1)};
    TestPattern saf1{PairState::parse("0x"), std::nullopt,
                     AbstractOp::read(Cell::I, 0)};
    const march::MarchTest test =
        build_march(reorder(concatenate_tps({saf0, saf1})));
    EXPECT_EQ(test.complexity(), 4) << test.str();
    EXPECT_TRUE(sim::is_well_formed(test));
    EXPECT_TRUE(sim::covers_everywhere(test, FaultKind::Saf0));
    EXPECT_TRUE(sim::covers_everywhere(test, FaultKind::Saf1));
    for (const auto& element : test.elements())
        EXPECT_EQ(element.order, AddressOrder::Any);  // Rule 5
}

TEST(MarchBuilder, TransitionFaultChain) {
    TestPattern tf_up{PairState::parse("0x"), AbstractOp::write(Cell::I, 1),
                      AbstractOp::read(Cell::I, 1)};
    TestPattern tf_down{PairState::parse("1x"), AbstractOp::write(Cell::I, 0),
                        AbstractOp::read(Cell::I, 0)};
    const march::MarchTest test =
        build_march(reorder(concatenate_tps({tf_up, tf_down})));
    EXPECT_EQ(test.complexity(), 5) << test.str();
    EXPECT_TRUE(sim::is_well_formed(test));
    EXPECT_TRUE(sim::covers_everywhere(test, FaultKind::TfUp));
    EXPECT_TRUE(sim::covers_everywhere(test, FaultKind::TfDown));
}

TEST(MarchBuilder, RetentionChainEmitsDelay) {
    TestPattern drf{PairState::parse("1x"), AbstractOp::wait(),
                    AbstractOp::read(Cell::I, 1)};
    const march::MarchTest test = build_march(reorder(concatenate_tps({drf})));
    EXPECT_TRUE(test.has_wait());
    EXPECT_TRUE(sim::is_well_formed(test));
    EXPECT_TRUE(sim::covers_everywhere(test, FaultKind::Drf0));
}

TEST(MarchBuilder, CfstVictimHonoursAggressorState) {
    // CFst<1,0>@i>j BFE with excite and observe both on j but aggressor i
    // constrained to 1: (10, w1j, r1j).
    TestPattern cfst{PairState::parse("10"), AbstractOp::write(Cell::J, 1),
                     AbstractOp::read(Cell::J, 1)};
    const march::MarchTest test = build_march(reorder(concatenate_tps({cfst})));
    EXPECT_TRUE(sim::is_well_formed(test)) << test.str();
    EXPECT_TRUE(
        sim::detects(test, sim::InjectedFault::coupling(FaultKind::CfstS1F0,
                                                        1, 5)))
        << test.str();
}

TEST(MarchBuilder, AfPairNeedsBothDirections) {
    // One AF alternative per role: (x0, w1i, r0j) and (x1, w0j, r1i).
    TestPattern af_ij{PairState::parse("x0"), AbstractOp::write(Cell::I, 1),
                      AbstractOp::read(Cell::J, 0)};
    TestPattern af_ji{PairState::parse("1x"), AbstractOp::write(Cell::J, 0),
                      AbstractOp::read(Cell::I, 1)};
    // Fix af_ji's init to the proper victim constraint (i=1).
    const march::MarchTest test =
        build_march(reorder(concatenate_tps({af_ij, af_ji})));
    EXPECT_TRUE(sim::is_well_formed(test)) << test.str();
    EXPECT_TRUE(sim::covers_everywhere(test, FaultKind::Af)) << test.str();
}

TEST(MarchBuilder, EmptyChainRejected) {
    Gts empty;
    EXPECT_THROW((void)build_march(empty), ContractViolation);
}

}  // namespace
}  // namespace mtg::core
