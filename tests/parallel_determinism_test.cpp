/// Thread-count independence: the sharded batched runners must return
/// bit-identical results for worker counts {1, 2, hardware_concurrency}
/// and agree with the scalar oracles — threading is an execution detail,
/// never a semantic one.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "sim/batch_runner.hpp"
#include "sim/march_runner.hpp"
#include "util/thread_pool.hpp"
#include "word/background.hpp"
#include "word/word_batch_runner.hpp"
#include "word/word_march.hpp"

namespace mtg {
namespace {

using fault::FaultKind;

/// The worker counts every runner must agree across.
std::vector<unsigned> worker_counts() {
    const unsigned hardware =
        std::max(1u, std::thread::hardware_concurrency());
    return {1u, 2u, hardware};
}

TEST(ParallelDeterminism, BatchRunnerDetectsAndTracesMatchEveryPoolSize) {
    const sim::RunOptions opts{.memory_size = 5, .max_any_expansion = 6};
    const std::vector<FaultKind> kinds = {
        FaultKind::Saf0,   FaultKind::TfUp,      FaultKind::Rdf1,
        FaultKind::Drf0,   FaultKind::CfidUp0,   FaultKind::CfinDown,
        FaultKind::CfstS1F0, FaultKind::Af,      FaultKind::AfMap,
    };
    for (const char* name : {"MATS", "March SS"}) {
        const auto& test = march::find_march_test(name).test;
        for (FaultKind kind : kinds) {
            const auto population =
                sim::full_population(kind, opts.memory_size);

            // Scalar-oracle reference verdicts.
            std::vector<bool> scalar;
            scalar.reserve(population.size());
            for (const auto& fault : population)
                scalar.push_back(sim::detects(test, fault, opts));

            std::vector<sim::RunTrace> reference_traces;
            for (unsigned workers : worker_counts()) {
                util::ThreadPool pool(workers);
                const sim::BatchRunner runner(test, opts, &pool);
                ASSERT_EQ(runner.detects(population), scalar)
                    << name << ' ' << fault_kind_name(kind) << " workers "
                    << workers;

                const auto traces = runner.run(population);
                ASSERT_EQ(traces.size(), population.size());
                if (reference_traces.empty()) {
                    reference_traces = traces;
                } else {
                    for (std::size_t i = 0; i < traces.size(); ++i) {
                        ASSERT_EQ(traces[i].detected,
                                  reference_traces[i].detected);
                        ASSERT_EQ(traces[i].failing_reads,
                                  reference_traces[i].failing_reads)
                            << name << ' ' << fault_kind_name(kind)
                            << " workers " << workers << " fault " << i;
                        ASSERT_EQ(traces[i].failing_observations,
                                  reference_traces[i].failing_observations);
                    }
                }
                for (std::size_t i = 0; i < traces.size(); ++i)
                    ASSERT_EQ(traces[i].detected, scalar[i]);
            }
        }
    }
}

TEST(ParallelDeterminism, DetectsAllFailFastAgreesWithFullEvaluation) {
    const sim::RunOptions opts{.memory_size = 6, .max_any_expansion = 6};
    // MATS misses several kinds, March C- covers the static list: both the
    // escaping and the fully-covered verdicts must be stable under any
    // worker count.
    for (const char* name : {"MATS", "March C-"}) {
        const auto& test = march::find_march_test(name).test;
        for (FaultKind kind : {FaultKind::TfDown, FaultKind::CfidUp0,
                               FaultKind::Saf1}) {
            const auto population =
                sim::full_population(kind, opts.memory_size);
            bool all = true;
            for (const auto& fault : population)
                all = all && sim::detects(test, fault, opts);
            for (unsigned workers : worker_counts()) {
                util::ThreadPool pool(workers);
                EXPECT_EQ(sim::BatchRunner(test, opts, &pool)
                              .detects_all(population),
                          all)
                    << name << ' ' << fault_kind_name(kind) << " workers "
                    << workers;
            }
        }
    }
}

TEST(ParallelDeterminism, WordBatchRunnerMatchesEveryPoolSize) {
    word::WordRunOptions opts;
    opts.words = 4;
    opts.width = 4;
    const auto backgrounds = word::counting_backgrounds(opts.width);
    const auto& test = march::march_c_minus();
    for (FaultKind kind : {FaultKind::Saf0, FaultKind::TfDown,
                           FaultKind::CfidUp1, FaultKind::CfstS0F1,
                           FaultKind::AfMap}) {
        const auto population = word::coverage_population(kind, opts);

        std::vector<bool> scalar;
        scalar.reserve(population.size());
        for (const auto& fault : population)
            scalar.push_back(word::detects(test, backgrounds, fault, opts));

        for (unsigned workers : worker_counts()) {
            util::ThreadPool pool(workers);
            const word::WordBatchRunner runner(test, backgrounds, opts,
                                               &pool);
            ASSERT_EQ(runner.detects(population), scalar)
                << fault_kind_name(kind) << " workers " << workers;
            bool all = true;
            for (const bool d : scalar) all = all && d;
            ASSERT_EQ(runner.detects_all(population), all)
                << fault_kind_name(kind) << " workers " << workers;
        }
    }
}

TEST(ParallelDeterminism, CoversAllMatchesPerKindSweep) {
    // The generator's single all-kind gate must be exactly the conjunction
    // of the per-kind covers_everywhere verdicts.
    const sim::RunOptions opts{.memory_size = 5, .max_any_expansion = 6};
    const auto static_list = fault::parse_fault_kinds("SAF,TF,CFin,CFid,CFst");
    for (const char* name : {"MATS", "MATS++", "March C-"}) {
        const auto& test = march::find_march_test(name).test;
        EXPECT_EQ(sim::covers_all(test, static_list, opts),
                  !sim::first_uncovered(test, static_list, opts).has_value())
            << name;
    }
    EXPECT_TRUE(sim::covers_all(march::march_c_minus(), {}, opts));
}

}  // namespace
}  // namespace mtg
