/// Randomized differential test: PackedSimMemory lane-i behaviour must be
/// bit-identical to a scalar SimMemory carrying the same injected fault,
/// over random operation sequences, for every FaultKind — the scalar
/// simulator is the ground-truth oracle for the bit-parallel kernel.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "march/parser.hpp"
#include "sim/batch_runner.hpp"
#include "sim/march_runner.hpp"
#include "sim/packed_memory.hpp"
#include "util/rng.hpp"

namespace mtg::sim {
namespace {

using fault::FaultKind;

constexpr int kCells = 6;

/// Random placement of `kind` on a kCells memory.
InjectedFault random_placement(FaultKind kind, SplitMix64& rng) {
    if (!fault::is_two_cell(kind))
        return InjectedFault::single(kind, rng.range(0, kCells - 1));
    const int a = rng.range(0, kCells - 1);
    int v = rng.range(0, kCells - 2);
    if (v >= a) ++v;
    return InjectedFault::coupling(kind, a, v);
}

/// Drives scalar and packed memories through the same random op sequence
/// and checks the read results and full cell state after every operation.
/// Passing nullptr exercises the fault-free path (nothing injected).
void run_differential(const InjectedFault* fault, SplitMix64& rng, int lane,
                      int ops) {
    SimMemory scalar(kCells);
    PackedSimMemory packed(kCells);
    if (fault) {
        scalar.inject(*fault);
        packed.inject(*fault, LaneMask{1} << lane);
    }
    const std::string label =
        fault ? fault_kind_name(fault->kind) : "fault-free";

    for (int step = 0; step < ops; ++step) {
        const int choice = rng.range(0, 9);
        const int addr = rng.range(0, kCells - 1);
        if (choice < 5) {
            const int d = rng.coin() ? 1 : 0;
            scalar.write(addr, d);
            packed.write(addr, d);
        } else if (choice < 9) {
            const Trit expected = scalar.read(addr);
            const auto got = packed.read(addr);
            const bool known = (got.known >> lane) & 1u;
            ASSERT_EQ(known, is_known(expected))
                << "read @" << addr << " step " << step << " fault "
                << label;
            if (known) {
                ASSERT_EQ(static_cast<int>((got.value >> lane) & 1u),
                          trit_bit(expected))
                    << "read @" << addr << " step " << step << " fault "
                    << label;
            }
        } else {
            scalar.wait();
            packed.wait();
        }
        for (int c = 0; c < kCells; ++c)
            ASSERT_EQ(packed.peek(c, lane), scalar.peek(c))
                << "cell " << c << " step " << step << " fault "
                << label;
    }
}

TEST(PackedSimDifferential, EveryFaultKindMatchesScalarOracle) {
    SplitMix64 rng(0xBE50C0DEULL);
    for (FaultKind kind : fault::all_fault_kinds()) {
        for (int trial = 0; trial < 25; ++trial) {
            const InjectedFault fault = random_placement(kind, rng);
            const int lane = rng.range(0, kLaneCount - 1);
            run_differential(&fault, rng, lane, 60);
            if (HasFatalFailure()) return;
        }
    }
}

TEST(PackedSimDifferential, FaultFreeLaneMatchesFaultFreeScalar) {
    SplitMix64 rng(7u);
    // No injection at all: every lane must behave like the fault-free
    // scalar memory (lane 0 is the conventional reference lane).
    run_differential(nullptr, rng, 0, 80);
}

TEST(PackedSim, SixtyThreeLanesRunIndependently) {
    SplitMix64 rng(0x5EEDULL);
    std::vector<InjectedFault> faults;
    std::vector<SimMemory> scalars;
    PackedSimMemory packed(kCells);
    const auto& kinds = fault::all_fault_kinds();
    for (int lane = 1; lane < kLaneCount; ++lane) {
        const FaultKind kind =
            kinds[static_cast<std::size_t>(rng.below(kinds.size()))];
        faults.push_back(random_placement(kind, rng));
        scalars.emplace_back(kCells);
        scalars.back().inject(faults.back());
        packed.inject(faults.back(), LaneMask{1} << lane);
    }
    SimMemory reference(kCells);  // lane 0

    for (int step = 0; step < 200; ++step) {
        const int choice = rng.range(0, 9);
        const int addr = rng.range(0, kCells - 1);
        if (choice < 5) {
            const int d = rng.coin() ? 1 : 0;
            reference.write(addr, d);
            for (auto& s : scalars) s.write(addr, d);
            packed.write(addr, d);
        } else if (choice < 9) {
            const Trit ref = reference.read(addr);
            const auto got = packed.read(addr);
            ASSERT_EQ(((got.known >> 0) & 1u) != 0, is_known(ref));
            for (int lane = 1; lane < kLaneCount; ++lane) {
                const Trit expected = scalars[static_cast<std::size_t>(
                                                  lane - 1)]
                                          .read(addr);
                const bool known = (got.known >> lane) & 1u;
                ASSERT_EQ(known, is_known(expected)) << "lane " << lane;
                if (known) {
                    ASSERT_EQ(static_cast<int>((got.value >> lane) & 1u),
                              trit_bit(expected))
                        << "lane " << lane;
                }
            }
        } else {
            reference.wait();
            for (auto& s : scalars) s.wait();
            packed.wait();
        }
    }
    for (int c = 0; c < kCells; ++c) {
        ASSERT_EQ(packed.peek(c, 0), reference.peek(c));
        for (int lane = 1; lane < kLaneCount; ++lane)
            ASSERT_EQ(packed.peek(c, lane),
                      scalars[static_cast<std::size_t>(lane - 1)].peek(c))
                << "cell " << c << " lane " << lane;
    }
}

TEST(PackedSim, RejectsTwoFaultsInOneLane) {
    PackedSimMemory packed(4);
    packed.inject(InjectedFault::single(FaultKind::Saf0, 1), 0b10);
    EXPECT_THROW(packed.inject(InjectedFault::single(FaultKind::Saf1, 2), 0b110),
                 ContractViolation);
}

/// Scalar-oracle recomputation of the guaranteed failing reads: intersects
/// run_once traces over every ⇕ expansion, then sorts into the canonical
/// textual order the batched runner reports.
std::vector<ReadSite> scalar_guaranteed_reads(const march::MarchTest& test,
                                              const InjectedFault& fault,
                                              const RunOptions& opts) {
    std::vector<ReadSite> guaranteed;
    bool first = true;
    for (unsigned choice : expansion_choices(test, opts)) {
        const RunTrace trace = run_once(test, {fault}, choice, opts);
        if (first) {
            guaranteed = trace.failing_reads;
            first = false;
        } else {
            std::erase_if(guaranteed, [&](const ReadSite& site) {
                return std::find(trace.failing_reads.begin(),
                                 trace.failing_reads.end(),
                                 site) == trace.failing_reads.end();
            });
        }
    }
    std::sort(guaranteed.begin(), guaranteed.end(),
              [](const ReadSite& a, const ReadSite& b) {
                  return a.element != b.element ? a.element < b.element
                                                : a.op < b.op;
              });
    return guaranteed;
}

/// Scalar-oracle recomputation of the guaranteed failing observations:
/// intersects run_once (site, cell) observations over every ⇕ expansion,
/// sorted into the canonical textual-site-then-ascending-cell order the
/// batched runner reports.
std::vector<Observation> scalar_guaranteed_observations(
    const march::MarchTest& test, const InjectedFault& fault,
    const RunOptions& opts) {
    std::vector<Observation> guaranteed;
    bool first = true;
    for (unsigned choice : expansion_choices(test, opts)) {
        const RunTrace trace = run_once(test, {fault}, choice, opts);
        if (first) {
            guaranteed = trace.failing_observations;
            first = false;
        } else {
            std::erase_if(guaranteed, [&](const Observation& obs) {
                return std::find(trace.failing_observations.begin(),
                                 trace.failing_observations.end(),
                                 obs) == trace.failing_observations.end();
            });
        }
    }
    std::sort(guaranteed.begin(), guaranteed.end(),
              [](const Observation& a, const Observation& b) {
                  if (a.site.element != b.site.element)
                      return a.site.element < b.site.element;
                  if (a.site.op != b.site.op) return a.site.op < b.site.op;
                  return a.cell < b.cell;
              });
    return guaranteed;
}

/// BatchRunner must reproduce the scalar detects() verdict and the
/// guaranteed failing reads/observations (as sets) for whole populations.
TEST(BatchRunner, MatchesScalarSweepOnLibraryTests) {
    const RunOptions opts{.memory_size = 5, .max_any_expansion = 6};
    for (const char* name : {"MATS", "MATS++", "March C-", "March SS"}) {
        const auto& test = march::find_march_test(name).test;
        for (FaultKind kind : fault::all_fault_kinds()) {
            const auto population = full_population(kind, opts.memory_size);
            const BatchRunner runner(test, opts);
            const auto batched = runner.detects(population);
            const auto traces = runner.run(population);
            ASSERT_EQ(batched.size(), population.size());
            for (std::size_t i = 0; i < population.size(); ++i) {
                const bool scalar = detects(test, population[i], opts);
                ASSERT_EQ(batched[i], scalar)
                    << name << ' ' << fault_kind_name(kind) << " placement "
                    << i;
                ASSERT_EQ(traces[i].detected, scalar);

                ASSERT_EQ(traces[i].failing_reads,
                          scalar_guaranteed_reads(test, population[i], opts))
                    << name << ' ' << fault_kind_name(kind);
                ASSERT_EQ(traces[i].failing_observations,
                          scalar_guaranteed_observations(test, population[i],
                                                         opts))
                    << name << ' ' << fault_kind_name(kind);
            }
        }
    }
}

TEST(BatchRunner, PopulationsLargerThanOneChunk) {
    // 12 cells -> 132 ordered pairs: three packed chunks.
    const RunOptions opts{.memory_size = 12, .max_any_expansion = 6};
    const auto& test = march::march_c_minus();
    const auto population =
        full_population(FaultKind::CfidUp0, opts.memory_size);
    ASSERT_GT(population.size(), 2u * 63u);
    const auto batched = BatchRunner(test, opts).detects(population);
    for (std::size_t i = 0; i < population.size(); ++i)
        ASSERT_TRUE(batched[i]) << i;
    EXPECT_TRUE(covers_everywhere(test, FaultKind::CfidUp0, opts));
}

TEST(FullPopulation, EnumeratesPlacements) {
    EXPECT_EQ(full_population(FaultKind::Saf0, 8).size(), 8u);
    EXPECT_EQ(full_population(FaultKind::CfidUp0, 8).size(), 56u);
}

TEST(FullPopulation, DegenerateMemoriesYieldEmptyPopulations) {
    // n=1 has no ordered cell pair, so the two-cell population is
    // mathematically empty; n=0 has nothing at all — neither may crash.
    EXPECT_TRUE(full_population(FaultKind::CfidUp0, 1).empty());
    EXPECT_EQ(full_population(FaultKind::Saf0, 1).size(), 1u);
    EXPECT_TRUE(full_population(FaultKind::CfidUp0, 0).empty());
    EXPECT_TRUE(full_population(FaultKind::Saf0, 0).empty());
}

TEST(FullPopulation, AllKindOverloadConcatenatesInListOrder) {
    const std::vector<FaultKind> kinds = {FaultKind::Saf0,
                                          FaultKind::CfidUp0};
    const auto population = full_population(kinds, 4);
    ASSERT_EQ(population.size(), 4u + 12u);
    EXPECT_EQ(population.front().kind, FaultKind::Saf0);
    EXPECT_EQ(population.back().kind, FaultKind::CfidUp0);
    EXPECT_TRUE(full_population(std::vector<FaultKind>{}, 4).empty());
}

TEST(PackedSim, ResetReuseMatchesFreshMemory) {
    // A reset() memory (the batch kernels' pooled per-pass scratch) must
    // behave exactly like a freshly constructed one, across a geometry
    // change and a different fault population.
    SplitMix64 rng(0x4E5E7ULL);
    PackedSimMemory reused(4);
    reused.inject(InjectedFault::coupling(FaultKind::CfidUp1, 0, 3),
                  LaneMask{1} << 7);
    reused.inject(InjectedFault::single(FaultKind::Rdf0, 1),
                  LaneMask{1} << 11);
    reused.write(0, 1);
    (void)reused.read(3);

    reused.reset(6);
    PackedSimMemory fresh(6);
    const auto fault = InjectedFault::coupling(FaultKind::CfstS1F0, 2, 4);
    reused.inject(fault, LaneMask{1} << 7);
    fresh.inject(fault, LaneMask{1} << 7);
    for (int step = 0; step < 60; ++step) {
        const int cell = rng.range(0, 5);
        const int choice = rng.range(0, 9);
        if (choice < 5) {
            const int d = rng.range(0, 1);
            reused.write(cell, d);
            fresh.write(cell, d);
        } else if (choice < 9) {
            const auto a = reused.read(cell);
            const auto b = fresh.read(cell);
            ASSERT_EQ(a.value, b.value) << "step " << step;
            ASSERT_EQ(a.known, b.known) << "step " << step;
        } else {
            reused.wait();
            fresh.wait();
        }
        for (int c = 0; c < 6; ++c)
            ASSERT_EQ(reused.peek(c, 7), fresh.peek(c, 7))
                << "cell " << c << " step " << step;
    }
}

TEST(BatchRunner, EmptyPopulationIsTriviallyCovered) {
    const RunOptions opts{.memory_size = 1, .max_any_expansion = 6};
    const BatchRunner runner(march::march_c_minus(), opts);
    const auto empty = full_population(FaultKind::CfidUp0, 1);
    EXPECT_TRUE(runner.detects_all(empty));
    EXPECT_TRUE(runner.detects(empty).empty());
    EXPECT_TRUE(runner.run(empty).empty());
    // covers_everywhere on the degenerate memory: vacuously true for
    // two-cell kinds, still meaningful for single-cell kinds.
    EXPECT_TRUE(covers_everywhere(march::march_c_minus(), FaultKind::CfidUp0,
                                  opts));
    EXPECT_TRUE(covers_everywhere(march::march_c_minus(), FaultKind::Saf0,
                                  opts));
}

}  // namespace
}  // namespace mtg::sim
