#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "sim/march_runner.hpp"

namespace mtg::core {
namespace {

using fault::FaultKind;

TEST(Generator, RejectsEmptyList) {
    Generator generator;
    EXPECT_THROW((void)generator.generate({}), std::invalid_argument);
    EXPECT_THROW((void)generator.generate_for(""), std::invalid_argument);
}

TEST(Generator, SafOnlyIsFourN) {
    Generator generator;
    const GenerationResult result = generator.generate_for("SAF");
    EXPECT_TRUE(result.valid) << result.summary();
    EXPECT_EQ(result.complexity, 4) << result.summary();
    EXPECT_TRUE(result.redundancy.complete);
    EXPECT_TRUE(result.redundancy.non_redundant);
}

TEST(Generator, ResultIsSimulatorClean) {
    Generator generator;
    const GenerationResult result = generator.generate_for("SAF,TF");
    ASSERT_TRUE(result.valid);
    EXPECT_TRUE(sim::is_well_formed(result.test));
    for (FaultKind kind : fault::parse_fault_kinds("SAF,TF"))
        EXPECT_TRUE(sim::covers_everywhere(result.test, kind));
}

TEST(Generator, ArtifactsAreConsistent) {
    Generator generator;
    const GenerationResult result = generator.generate_for("SAF,TF");
    ASSERT_TRUE(result.valid);
    EXPECT_FALSE(result.chain.empty());
    EXPECT_FALSE(result.gts_raw.symbols.empty());
    EXPECT_FALSE(result.gts_reordered.symbols.empty());
    EXPECT_GE(result.gts_reordered.op_count(), result.gts_minimised.op_count());
    EXPECT_GE(result.test_unminimised.complexity(), result.complexity);
    EXPECT_GT(result.combinations_tried, 0);
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_GT(result.atsp_stats.ap_solves, 0);
}

TEST(Generator, EachSingleFaultFamilyGeneratesValidTest) {
    Generator generator;
    for (const char* family :
         {"SAF", "TF", "WDF", "RDF", "DRDF", "IRF", "CFin", "CFid", "CFst",
          "ADF", "DRF"}) {
        const GenerationResult result = generator.generate_for(family);
        EXPECT_TRUE(result.valid) << family << ": " << result.summary();
        EXPECT_TRUE(result.redundancy.non_redundant)
            << family << ": " << result.summary();
    }
}

TEST(Generator, RetentionListEmitsDelay) {
    Generator generator;
    const GenerationResult result = generator.generate_for("SAF,DRF");
    ASSERT_TRUE(result.valid) << result.summary();
    EXPECT_TRUE(result.test.has_wait());
}

TEST(Generator, MixedStaticListIsValid) {
    Generator generator;
    const GenerationResult result = generator.generate_for("SAF,TF,CFst");
    EXPECT_TRUE(result.valid) << result.summary();
}

/// §5 enumeration actually reduces complexity: with a single combination
/// the CFin list cannot explore alternative sensitisations.
TEST(Generator, ClassEnumerationHelpsCfin) {
    GeneratorOptions one_combo;
    one_combo.max_class_combinations = 1;
    const GenerationResult limited = Generator(one_combo).generate_for("CFin");

    const GenerationResult full = Generator().generate_for("CFin");
    ASSERT_TRUE(full.valid);
    ASSERT_TRUE(limited.valid);
    EXPECT_LE(full.complexity, limited.complexity);
}

/// Generated tests must stay valid when regenerated (determinism).
TEST(Generator, Deterministic) {
    Generator generator;
    const auto a = generator.generate_for("SAF,TF,ADF");
    const auto b = generator.generate_for("SAF,TF,ADF");
    EXPECT_EQ(a.test, b.test);
    EXPECT_EQ(a.complexity, b.complexity);
}

/// Options plumbing: disabling the March-level minimisation keeps the raw
/// §4.3 output.
TEST(Generator, MinimisationToggle) {
    GeneratorOptions options;
    options.march_minimise = false;
    const GenerationResult raw = Generator(options).generate_for("SAF,TF");
    ASSERT_TRUE(raw.valid);
    EXPECT_EQ(raw.test, raw.test_unminimised);
}

TEST(Generator, UserDefinedSinglePrimitive) {
    // A user targeting one specific coupling primitive gets a small test.
    Generator generator;
    const GenerationResult result = generator.generate_for("CFid<^,0>");
    ASSERT_TRUE(result.valid) << result.summary();
    EXPECT_LE(result.complexity, 8);
    EXPECT_TRUE(sim::covers_everywhere(result.test, FaultKind::CfidUp0));
}

}  // namespace
}  // namespace mtg::core
