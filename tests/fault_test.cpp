#include <gtest/gtest.h>

#include <algorithm>

#include "fault/fault_list.hpp"
#include "fault/instance.hpp"
#include "fault/kinds.hpp"
#include "fault/test_pattern.hpp"

namespace mtg::fault {
namespace {

using fsm::Cell;
using fsm::Input;
using fsm::MemoryFsm;
using fsm::PairState;

TEST(Kinds, FamilyExpansion) {
    EXPECT_EQ(expand_fault_family("SAF").size(), 2u);
    EXPECT_EQ(expand_fault_family("TF").size(), 2u);
    EXPECT_EQ(expand_fault_family("CFid").size(), 4u);
    EXPECT_EQ(expand_fault_family("CFst").size(), 4u);
    EXPECT_EQ(expand_fault_family("ADF"), expand_fault_family("AF"));
    EXPECT_THROW((void)expand_fault_family("XYZ"), std::invalid_argument);
}

TEST(Kinds, ParseListDeduplicates) {
    const auto kinds = parse_fault_kinds("SAF, TF, SAF");
    EXPECT_EQ(kinds.size(), 4u);  // SAF0, SAF1, TF<^>, TF<v>
}

TEST(Kinds, ParseSinglePrimitives) {
    EXPECT_EQ(parse_fault_kinds("SAF0"), std::vector<FaultKind>{FaultKind::Saf0});
    EXPECT_EQ(parse_fault_kinds("CFid<^,1>"),
              std::vector<FaultKind>{FaultKind::CfidUp1});
}

TEST(Kinds, NamesRoundTripThroughParser) {
    for (FaultKind k : all_fault_kinds()) {
        const auto parsed = expand_fault_family(fault_kind_name(k));
        ASSERT_EQ(parsed.size(), 1u) << fault_kind_name(k);
        EXPECT_EQ(parsed[0], k);
    }
}

TEST(Kinds, TwoCellClassification) {
    EXPECT_FALSE(is_two_cell(FaultKind::Saf0));
    EXPECT_FALSE(is_two_cell(FaultKind::Drf1));
    EXPECT_TRUE(is_two_cell(FaultKind::CfinUp));
    EXPECT_TRUE(is_two_cell(FaultKind::Af));
    EXPECT_TRUE(needs_wait(FaultKind::Drf0));
    EXPECT_FALSE(needs_wait(FaultKind::Saf0));
}

TEST(Instances, SingleCellGetsOneRole) {
    const auto instances = instantiate({FaultKind::Saf0});
    ASSERT_EQ(instances.size(), 1u);
    EXPECT_EQ(instances[0].aggressor, Cell::I);
    EXPECT_EQ(instances[0].name(), "SAF0@i");
}

TEST(Instances, CouplingGetsBothRoles) {
    const auto instances = instantiate({FaultKind::CfidUp0});
    ASSERT_EQ(instances.size(), 2u);
    EXPECT_EQ(instances[0].name(), "CFid<^,0>@i>j");
    EXPECT_EQ(instances[1].name(), "CFid<^,0>@j>i");
    EXPECT_EQ(instances[0].victim(), Cell::J);
    EXPECT_EQ(instances[1].victim(), Cell::I);
}

/// Figure 2: the M1 machine for CFid ⟨↑,0⟩ differs from M0 by the two
/// bolded edges — one per aggressor role. Our per-instance machines carry
/// one each.
TEST(FaultyMachine, CfidUp0MatchesFigure2) {
    const MemoryFsm m0 = MemoryFsm::good();

    const MemoryFsm aggressor_i =
        faulty_machine({FaultKind::CfidUp0, Cell::I});
    auto bfes = aggressor_i.diff(m0);
    ASSERT_EQ(bfes.size(), 1u);
    EXPECT_EQ(bfes[0].state.str(), "01");
    EXPECT_EQ(bfes[0].input, Input::W1i);
    EXPECT_EQ(bfes[0].faulty_next.str(), "10");  // victim j forced to 0

    const MemoryFsm aggressor_j =
        faulty_machine({FaultKind::CfidUp0, Cell::J});
    bfes = aggressor_j.diff(m0);
    ASSERT_EQ(bfes.size(), 1u);
    EXPECT_EQ(bfes[0].state.str(), "10");
    EXPECT_EQ(bfes[0].input, Input::W1j);
    EXPECT_EQ(bfes[0].faulty_next.str(), "01");
}

TEST(FaultyMachine, Saf0PerturbsWritesAndReads) {
    const MemoryFsm m0 = MemoryFsm::good();
    const MemoryFsm faulty = faulty_machine({FaultKind::Saf0, Cell::I});
    // w1i fails from i==0 states; reads of i==1 states return 0.
    EXPECT_EQ(faulty.next(PairState::parse("00"), Input::W1i).str(), "00");
    EXPECT_EQ(faulty.next(PairState::parse("01"), Input::W1i).str(), "01");
    EXPECT_EQ(faulty.output(PairState::parse("10"), Input::Ri), Trit::Zero);
    EXPECT_EQ(faulty.output(PairState::parse("11"), Input::Ri), Trit::Zero);
    EXPECT_EQ(faulty.perturbation_count(m0), 4);
}

TEST(FaultyMachine, TfUpOnlyBlocksRisingWrites) {
    const MemoryFsm faulty = faulty_machine({FaultKind::TfUp, Cell::J});
    EXPECT_EQ(faulty.next(PairState::parse("00"), Input::W1j).str(), "00");
    EXPECT_EQ(faulty.next(PairState::parse("10"), Input::W1j).str(), "10");
    // Falling writes and reads untouched.
    EXPECT_EQ(faulty.next(PairState::parse("01"), Input::W0j).str(), "00");
    EXPECT_EQ(faulty.output(PairState::parse("01"), Input::Rj), Trit::One);
}

TEST(FaultyMachine, DrfDecaysOnWait) {
    const MemoryFsm faulty = faulty_machine({FaultKind::Drf0, Cell::I});
    EXPECT_EQ(faulty.next(PairState::parse("10"), Input::T).str(), "00");
    EXPECT_EQ(faulty.next(PairState::parse("11"), Input::T).str(), "01");
    EXPECT_EQ(faulty.next(PairState::parse("00"), Input::T).str(), "00");
}

TEST(FaultyMachine, RdfFlipsAndLies) {
    const MemoryFsm faulty = faulty_machine({FaultKind::Rdf0, Cell::I});
    EXPECT_EQ(faulty.next(PairState::parse("00"), Input::Ri).str(), "10");
    EXPECT_EQ(faulty.output(PairState::parse("00"), Input::Ri), Trit::One);
}

TEST(FaultyMachine, DrdfFlipsButTellsTruth) {
    const MemoryFsm faulty = faulty_machine({FaultKind::Drdf0, Cell::I});
    EXPECT_EQ(faulty.next(PairState::parse("00"), Input::Ri).str(), "10");
    EXPECT_EQ(faulty.output(PairState::parse("00"), Input::Ri), Trit::Zero);
}

/// Paper §3: the two BFEs of CFid ⟨↑,0⟩ are tested by TP1 = (01, w1i, r1j)
/// and TP2 = (10, w1j, r1i).
TEST(TestPatterns, CfidUp0MatchesPaperExample) {
    const TpClass class_i = extract_tp_class({FaultKind::CfidUp0, Cell::I});
    ASSERT_EQ(class_i.alternatives.size(), 1u);
    EXPECT_EQ(class_i.alternatives[0].str(), "(01, w1i, r1j)");

    const TpClass class_j = extract_tp_class({FaultKind::CfidUp0, Cell::J});
    ASSERT_EQ(class_j.alternatives.size(), 1u);
    EXPECT_EQ(class_j.alternatives[0].str(), "(10, w1j, r1i)");
}

/// Paper §4: ⟨↑,1⟩ is tested by TP3 = (00, w1i, r0j) / TP4 = (00, w1j, r0i).
TEST(TestPatterns, CfidUp1MatchesPaperExample) {
    EXPECT_EQ(extract_tp_class({FaultKind::CfidUp1, Cell::I}).alternatives[0].str(),
              "(00, w1i, r0j)");
    EXPECT_EQ(extract_tp_class({FaultKind::CfidUp1, Cell::J}).alternatives[0].str(),
              "(00, w1j, r0i)");
}

/// Paper §5: an inversion CF splits into two BFEs, but either TP covers the
/// fault — a two-alternative equivalence class.
TEST(TestPatterns, CfinFormsEquivalenceClass) {
    const TpClass cls = extract_tp_class({FaultKind::CfinUp, Cell::I});
    ASSERT_EQ(cls.alternatives.size(), 2u);
    std::vector<std::string> tps = {cls.alternatives[0].str(),
                                    cls.alternatives[1].str()};
    std::sort(tps.begin(), tps.end());
    EXPECT_EQ(tps[0], "(00, w1i, r0j)");
    EXPECT_EQ(tps[1], "(01, w1i, r1j)");
}

/// Don't-care merging: TF⟨↑⟩'s two BFEs collapse into one pattern with the
/// companion cell unconstrained.
TEST(TestPatterns, TfMergesToDontCare) {
    const TpClass cls = extract_tp_class({FaultKind::TfUp, Cell::I});
    ASSERT_EQ(cls.alternatives.size(), 1u);
    EXPECT_EQ(cls.alternatives[0].str(), "(0x, w1i, r1i)");
}

TEST(TestPatterns, SafHasExciteAndDirectObserveAlternatives) {
    const TpClass cls = extract_tp_class({FaultKind::Saf0, Cell::I});
    ASSERT_EQ(cls.alternatives.size(), 2u);
    std::vector<std::string> tps = {cls.alternatives[0].str(),
                                    cls.alternatives[1].str()};
    std::sort(tps.begin(), tps.end());
    EXPECT_EQ(tps[0], "(0x, w1i, r1i)");   // δ alternative
    EXPECT_EQ(tps[1], "(1x, -, r1i)");     // λ alternative (verify-read only)
}

TEST(TestPatterns, DrfUsesWaitExcitation) {
    const TpClass cls = extract_tp_class({FaultKind::Drf0, Cell::I});
    ASSERT_EQ(cls.alternatives.size(), 1u);
    EXPECT_EQ(cls.alternatives[0].str(), "(1x, T, r1i)");
}

TEST(TestPatterns, ObservationStateFollowsExcite) {
    const TestPattern tp = extract_tp_class({FaultKind::CfidUp1, Cell::I})
                               .alternatives.front();
    EXPECT_EQ(tp.init.str(), "00");
    EXPECT_EQ(tp.observation_state().str(), "10");
    EXPECT_EQ(tp.init_cost(), 2);
}

TEST(TestPatterns, AfClassesHaveTwoPolarities) {
    const TpClass cls = extract_tp_class({FaultKind::Af, Cell::I});
    ASSERT_EQ(cls.alternatives.size(), 2u);
    std::vector<std::string> tps = {cls.alternatives[0].str(),
                                    cls.alternatives[1].str()};
    std::sort(tps.begin(), tps.end());
    EXPECT_EQ(tps[0], "(x0, w1i, r0j)");
    EXPECT_EQ(tps[1], "(x1, w0i, r1j)");
}

TEST(FaultLists, Table3RowsAreWellFormed) {
    const auto& rows = table3_fault_lists();
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(rows[0].name, "SAF");
    EXPECT_EQ(rows[0].known_equivalent, "MATS");
    EXPECT_EQ(rows[4].paper_complexity, 10);
    for (const auto& row : rows) EXPECT_FALSE(row.kinds.empty());
}

}  // namespace
}  // namespace mtg::fault
