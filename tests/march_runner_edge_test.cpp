/// Edge cases of the March runner: ⇕-expansion cap overflow, multi-fault
/// composition order in the scalar oracle, and X-reads of uninitialised
/// cells.

#include <gtest/gtest.h>

#include "march/library.hpp"
#include "march/parser.hpp"
#include "sim/march_runner.hpp"

namespace mtg::sim {
namespace {

using fault::FaultKind;
using march::parse_march;

// --------------------------------------------------------- ⇕ expansion cap

TEST(ExpansionCap, FullEnumerationUpToTheCap) {
    // Three ⇕ elements, cap 6: all 2^3 = 8 order combinations.
    const auto test = parse_march("{~(w0); ~(r0,w1); ~(r1)}");
    RunOptions opts;
    opts.max_any_expansion = 6;
    EXPECT_EQ(expansion_choices(test, opts).size(), 8u);
}

TEST(ExpansionCap, OverflowFallsBackToUniformSweeps) {
    // Seven ⇕ elements with cap 6: only the all-ascending and
    // all-descending resolutions remain.
    const auto test =
        parse_march("{~(w0); ~(r0); ~(w1); ~(r1); ~(w0); ~(r0); ~(r0)}");
    RunOptions opts;
    opts.max_any_expansion = 6;
    const auto choices = expansion_choices(test, opts);
    ASSERT_EQ(choices.size(), 2u);
    EXPECT_EQ(choices[0], 0u);
    EXPECT_EQ(choices[1], ~0u);
}

TEST(ExpansionCap, CapZeroStillEvaluatesBothUniformOrders) {
    const auto test = parse_march("{~(w0); ~(r0,w1); ~(r1)}");
    RunOptions opts;
    opts.max_any_expansion = 0;
    EXPECT_EQ(expansion_choices(test, opts).size(), 2u);
    // The capped run must agree with the full expansion on this test (its
    // detection here does not depend on mixed orders).
    EXPECT_TRUE(covers_everywhere(test, FaultKind::Saf0, opts));
    EXPECT_TRUE(covers_everywhere(test, FaultKind::Saf0));
}

TEST(ExpansionCap, CappedRunIsOptimisticAboutMixedOrders) {
    // CFid<^,0> with aggressor above victim needs a descending-then-read
    // pattern; uniform sweeps alone can claim detection that a mixed
    // expansion would refute, so the capped verdict may only ever be *more*
    // optimistic, never more pessimistic.
    const auto& test = march::march_ss();
    RunOptions full;
    RunOptions capped;
    capped.max_any_expansion = 0;
    for (FaultKind kind :
         {FaultKind::CfidUp0, FaultKind::CfidDown1, FaultKind::CfinUp}) {
        if (covers_everywhere(test, kind, full)) {
            EXPECT_TRUE(covers_everywhere(test, kind, capped))
                << fault_kind_name(kind);
        }
    }
}

// ------------------------------------------------ multi-fault composition

TEST(MultiFault, CompositionAppliesInInjectionOrder) {
    // Saf0 then Saf1 on the same cell: the later fault wins the write
    // effect, so the cell behaves stuck-at-1 on writes.
    SimMemory first_then_second(4);
    first_then_second.inject(InjectedFault::single(FaultKind::Saf0, 1));
    first_then_second.inject(InjectedFault::single(FaultKind::Saf1, 1));
    first_then_second.write(1, 0);
    EXPECT_EQ(first_then_second.peek(1), Trit::One);

    SimMemory second_then_first(4);
    second_then_first.inject(InjectedFault::single(FaultKind::Saf1, 1));
    second_then_first.inject(InjectedFault::single(FaultKind::Saf0, 1));
    second_then_first.write(1, 1);
    EXPECT_EQ(second_then_first.peek(1), Trit::Zero);
}

TEST(MultiFault, RunOnceComposesFaults) {
    // A TF<^> victim cell that is also the victim of a CFid<^,1> from a
    // neighbour: the coupling can set the cell to 1 even though its own
    // 0->1 write fails.
    const auto test = parse_march("{^(w0); ^(w1); ^(r1)}");
    const std::vector<InjectedFault> faults = {
        InjectedFault::single(FaultKind::TfUp, 2),
        InjectedFault::coupling(FaultKind::CfidUp1, 1, 2),
    };
    const RunTrace trace = run_once(test, faults, 0u);
    // Cell 1's 0->1 write repairs cell 2 before cell 2's own (failing)
    // write; the final read of cell 2 sees 1... but the w1 on cell 2
    // happens *after* the coupling fired, and TF<^> keeps it at the value
    // the coupling left, which is already 1 -> no mismatch at cell 2.
    for (const auto& obs : trace.failing_observations)
        EXPECT_NE(obs.cell, 2) << "composed faults should mask each other";
}

TEST(MultiFault, OrderMattersThroughStaticCoupling) {
    // AfMap(0 -> 2) plus CfstS1F0(2 -> 3): a write redirected into the
    // static coupling's aggressor must still trigger the forcing.
    SimMemory memory(4);
    memory.inject(InjectedFault::coupling(FaultKind::AfMap, 0, 2));
    memory.inject(InjectedFault::coupling(FaultKind::CfstS1F0, 2, 3));
    memory.write(3, 1);
    EXPECT_EQ(memory.peek(3), Trit::One);
    memory.write(0, 1);  // lands on cell 2, sensitising the coupling
    EXPECT_EQ(memory.peek(2), Trit::One);
    EXPECT_EQ(memory.peek(3), Trit::Zero);
}

// ------------------------------------------------------ uninitialised reads

TEST(UninitialisedReads, ReadOfUntouchedCellReturnsX) {
    SimMemory memory(4);
    EXPECT_EQ(memory.read(2), Trit::X);
}

TEST(UninitialisedReads, XNeverCountsAsDetection) {
    // Reading uninitialised cells cannot produce a guaranteed mismatch,
    // whatever value the op expects.
    const auto test = parse_march("{^(r0); ^(r1)}");
    const RunTrace trace =
        run_once(test, {InjectedFault::coupling(FaultKind::CfinUp, 0, 1)}, 0u);
    EXPECT_FALSE(trace.detected);
    EXPECT_TRUE(trace.failing_reads.empty());
}

TEST(UninitialisedReads, MakeTestsIllFormed) {
    EXPECT_FALSE(is_well_formed(parse_march("{^(r0,w0)}")));
    EXPECT_TRUE(is_well_formed(parse_march("{^(w0); ^(r0)}")));
}

TEST(UninitialisedReads, StuckAtCellsReadDespiteNoInitialisation) {
    // SAF cells have a definite value from the start: a read-only test can
    // observe them even though the cell was never written.
    SimMemory memory(4);
    memory.inject(InjectedFault::single(FaultKind::Saf1, 2));
    EXPECT_EQ(memory.read(2), Trit::One);
    const auto test = parse_march("{^(r0)}");
    const RunTrace trace =
        run_once(test, {InjectedFault::single(FaultKind::Saf1, 2)}, 0u);
    EXPECT_TRUE(trace.detected);
}

}  // namespace
}  // namespace mtg::sim
