#include <gtest/gtest.h>

#include "diagnosis/dictionary.hpp"
#include "march/library.hpp"
#include "march/parser.hpp"

namespace mtg::diagnosis {
namespace {

using fault::FaultKind;

TEST(Signature, PrintsSitesAndEscape) {
    Signature escape;
    EXPECT_FALSE(escape.detected());
    EXPECT_EQ(escape.str(), "(escape)");

    Signature sig{{{{1, 0}, 2}, {{4, 2}, 5}}};
    EXPECT_TRUE(sig.detected());
    EXPECT_EQ(sig.str(), "E1.0@c2 E4.2@c5");
}

TEST(Signature, OfConcreteFault) {
    const auto test = march::parse_march("{~(w0); ~(r0); ~(w1); ~(r1)}");
    const Signature sig = signature_of(
        test, sim::InjectedFault::single(FaultKind::Saf1, 3));
    // SAF1 fails the r0 of element 1 at its own address only.
    ASSERT_EQ(sig.failing.size(), 1u);
    EXPECT_EQ(sig.failing[0], (sim::Observation{{1, 0}, 3}));
}

TEST(Dictionary, AccountsForEveryInstance) {
    const auto kinds = fault::parse_fault_kinds("SAF,TF");
    const auto dict = FaultDictionary::build(march::mats_plus_plus(), kinds);
    EXPECT_EQ(dict.instance_count(), 4);
    EXPECT_EQ(dict.detected_count(), 4);  // MATS++ covers SAF+TF
    int total = 0;
    for (const auto& entry : dict.entries())
        total += static_cast<int>(entry.instances.size());
    EXPECT_EQ(total, dict.instance_count());
}

TEST(Dictionary, EscapesLandInTheEscapeBucket) {
    // MATS misses TF<v>: its instance must map to the empty signature.
    const auto kinds = fault::parse_fault_kinds("SAF,TF<v>");
    const auto dict = FaultDictionary::build(march::mats(), kinds);
    EXPECT_EQ(dict.detected_count(), 2);  // SAF0, SAF1
    const auto escapes = dict.diagnose(Signature{});
    ASSERT_EQ(escapes.size(), 1u);
    EXPECT_EQ(escapes[0].kind, FaultKind::TfDown);
}

TEST(Dictionary, DiagnoseReturnsCompatibleInstances) {
    const auto kinds = fault::parse_fault_kinds("SAF");
    const auto dict = FaultDictionary::build(march::march_c_minus(), kinds);
    for (const auto& entry : dict.entries()) {
        EXPECT_EQ(dict.diagnose(entry.signature), entry.instances);
    }
    // Unknown signature -> no candidates.
    EXPECT_TRUE(dict.diagnose(Signature{{{0, 99}}}).empty());
}

/// The hash-bucket lookup must agree with the original linear bucket scan
/// on every known signature, the escape bucket, and unknown signatures.
TEST(Dictionary, HashDiagnoseMatchesLinearScan) {
    const auto kinds = fault::parse_fault_kinds("SAF,TF,CFin,CFid");
    for (const char* name : {"MATS++", "March C-"}) {
        const auto dict =
            FaultDictionary::build(march::find_march_test(name).test, kinds);
        for (const auto& entry : dict.entries())
            EXPECT_EQ(dict.diagnose(entry.signature),
                      dict.diagnose_linear(entry.signature))
                << name << ' ' << entry.signature.str();
        const Signature escape;
        EXPECT_EQ(dict.diagnose(escape), dict.diagnose_linear(escape));
        const Signature unknown{{{{0, 99}, 7}}};
        EXPECT_EQ(dict.diagnose(unknown), dict.diagnose_linear(unknown));
        EXPECT_TRUE(dict.diagnose(unknown).empty());
    }
}

TEST(Dictionary, ResolutionBounds) {
    const auto kinds = fault::parse_fault_kinds("SAF,TF,CFin,CFid");
    for (const char* name : {"MATS++", "March C-", "PMOVI", "March SS"}) {
        const auto dict =
            FaultDictionary::build(march::find_march_test(name).test, kinds);
        EXPECT_GE(dict.resolution(), 0.0) << name;
        EXPECT_LE(dict.resolution(), 1.0) << name;
        EXPECT_LE(dict.distinguished_count(), dict.detected_count()) << name;
    }
}

/// The classic diagnosis claim [6]: tests with more observation points
/// distinguish more faults. March SS (9 reads) must resolve at least as
/// well as MATS++ (3 reads) on the static fault set it covers.
TEST(Dictionary, MoreReadsNeverHurtResolution) {
    const auto kinds = fault::parse_fault_kinds("SAF,TF");
    const auto coarse = FaultDictionary::build(march::mats_plus_plus(), kinds);
    const auto fine = FaultDictionary::build(march::march_ss(), kinds);
    EXPECT_GE(fine.distinguished_count(), coarse.distinguished_count());
}

TEST(Dictionary, RenderingListsEveryEntry) {
    const auto kinds = fault::parse_fault_kinds("SAF");
    const auto dict = FaultDictionary::build(march::mats(), kinds);
    const std::string text = dict.str();
    EXPECT_NE(text.find("SAF0@i"), std::string::npos);
    EXPECT_NE(text.find("SAF1@i"), std::string::npos);
}

/// AF2 integration: decoder-map faults are detected, and the two roles are
/// *behaviourally equivalent* — both alias the same address pair, and
/// which physical cell backs the pair is unobservable — so they must land
/// in the same dictionary bucket rather than being distinguished.
TEST(Dictionary, Af2RolesAreEquivalentUnderOutputTracing) {
    const auto kinds = fault::parse_fault_kinds("AF2");
    const auto dict = FaultDictionary::build(march::march_c_minus(), kinds);
    EXPECT_EQ(dict.instance_count(), 2);
    EXPECT_EQ(dict.detected_count(), 2);
    EXPECT_EQ(dict.distinguished_count(), 0);
    ASSERT_EQ(dict.entries().size(), 1u);
    EXPECT_EQ(dict.entries().front().instances.size(), 2u);
}

/// Address-aware signatures separate faults that plain read-site traces
/// conflate: the two roles of an idempotent coupling fault fail the same
/// element reads but at different victim addresses.
TEST(Dictionary, AddressAwarenessSeparatesCouplingRoles) {
    const auto kinds = fault::parse_fault_kinds("CFid<^,0>");
    const auto dict = FaultDictionary::build(march::march_c_minus(), kinds);
    EXPECT_EQ(dict.detected_count(), 2);
    EXPECT_EQ(dict.distinguished_count(), 2);
}

}  // namespace
}  // namespace mtg::diagnosis
