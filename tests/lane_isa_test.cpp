/// \file lane_isa_test.cpp
/// LaneIsa dispatch (PR 8): the W=8 pass exists in three semantically
/// identical codegen flavours — zmm wrappers (target("avx512f")), the
/// ymm-pair "256-bit clone" (target("avx2")) and the baseline-codegen
/// template instantiation. MTG_LANE_ISA / set_requested_lane_isa pick a
/// flavour, Auto applies the small-work-grid heuristic, and every
/// flavour must be bit-identical on both the bit- and word-oriented
/// kernels. Mirrors lane_width_test.cpp, one level down the dispatch.

#include <gtest/gtest.h>

#include <vector>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "sim/batch_runner.hpp"
#include "sim/lane_dispatch.hpp"
#include "util/thread_pool.hpp"
#include "word/background.hpp"
#include "word/word_batch_runner.hpp"

namespace mtg {
namespace {

using fault::FaultKind;
using sim::LaneIsa;

/// RAII requested-ISA override so a failing ASSERT cannot leak a forced
/// flavour into later tests.
class RequestedIsa {
public:
    explicit RequestedIsa(LaneIsa isa) : saved_(sim::requested_lane_isa()) {
        sim::set_requested_lane_isa(isa);
    }
    ~RequestedIsa() { sim::set_requested_lane_isa(saved_); }

private:
    LaneIsa saved_;
};

TEST(LaneIsaDispatch, ParsesLaneIsaOverride) {
    EXPECT_EQ(sim::parse_lane_isa(nullptr), LaneIsa::Auto);
    EXPECT_EQ(sim::parse_lane_isa(""), LaneIsa::Auto);
    EXPECT_EQ(sim::parse_lane_isa("auto"), LaneIsa::Auto);
    EXPECT_EQ(sim::parse_lane_isa("avx512"), LaneIsa::Avx512);
    EXPECT_EQ(sim::parse_lane_isa("avx2"), LaneIsa::Avx2);
    EXPECT_EQ(sim::parse_lane_isa("generic"), LaneIsa::Generic);
    EXPECT_EQ(sim::parse_lane_isa("AVX2"), LaneIsa::Auto);  // case-sensitive
    EXPECT_EQ(sim::parse_lane_isa("avx"), LaneIsa::Auto);
    EXPECT_EQ(sim::parse_lane_isa("junk"), LaneIsa::Auto);
}

TEST(LaneIsaDispatch, ResolveHonoursForcedIsasDownTheFeatureLadder) {
    // Generic is always runnable.
    for (bool avx2 : {false, true})
        for (bool avx512 : {false, true})
            EXPECT_EQ(sim::resolve_lane_isa(LaneIsa::Generic, 1000, avx2,
                                            avx512),
                      LaneIsa::Generic);
    // Forced flavours degrade to the widest the CPU actually has — the
    // getters must never hand out an unrunnable wrapper.
    EXPECT_EQ(sim::resolve_lane_isa(LaneIsa::Avx512, 1, true, true),
              LaneIsa::Avx512);
    EXPECT_EQ(sim::resolve_lane_isa(LaneIsa::Avx512, 1, true, false),
              LaneIsa::Avx2);
    EXPECT_EQ(sim::resolve_lane_isa(LaneIsa::Avx512, 1, false, false),
              LaneIsa::Generic);
    EXPECT_EQ(sim::resolve_lane_isa(LaneIsa::Avx2, 1, true, true),
              LaneIsa::Avx2);
    EXPECT_EQ(sim::resolve_lane_isa(LaneIsa::Avx2, 1, false, true),
              LaneIsa::Generic);
}

TEST(LaneIsaDispatch, AutoPrefersTheCloneForSmallWorkGrids) {
    const std::size_t small = sim::kZmmWorkItemThreshold - 1;
    const std::size_t large = sim::kZmmWorkItemThreshold;
    // AVX-512 host: zmm for large grids, ymm clone below the threshold
    // (short bursts never amortise the frequency-license ramp).
    EXPECT_EQ(sim::resolve_lane_isa(LaneIsa::Auto, large, true, true),
              LaneIsa::Avx512);
    EXPECT_EQ(sim::resolve_lane_isa(LaneIsa::Auto, small, true, true),
              LaneIsa::Avx2);
    // AVX2-only host: always the clone.
    EXPECT_EQ(sim::resolve_lane_isa(LaneIsa::Auto, large, true, false),
              LaneIsa::Avx2);
    // AVX-512 without AVX2 (not a real host, but the ladder must hold).
    EXPECT_EQ(sim::resolve_lane_isa(LaneIsa::Auto, small, false, true),
              LaneIsa::Avx512);
    // No vector ISA at all.
    EXPECT_EQ(sim::resolve_lane_isa(LaneIsa::Auto, large, false, false),
              LaneIsa::Generic);
}

TEST(LaneIsaDispatch, RequestedIsaRoundTrips) {
    const LaneIsa original = sim::requested_lane_isa();
    {
        RequestedIsa forced(LaneIsa::Generic);
        EXPECT_EQ(sim::requested_lane_isa(), LaneIsa::Generic);
    }
    EXPECT_EQ(sim::requested_lane_isa(), original);
}

/// Every ISA flavour must produce bit-identical detects / traces on the
/// bit-oriented kernel at forced W=8 — same template, different
/// instruction selection. Flavours the host lacks degrade to a runnable
/// one, so the test is meaningful everywhere and exhaustive on AVX-512
/// CI hosts.
TEST(LaneIsaDifferential, BitKernelBitIdenticalAcrossIsas) {
    util::ThreadPool serial(1);
    const auto& test = march::march_ss();
    const sim::RunOptions opts{.memory_size = 14, .max_any_expansion = 4};
    const auto population =
        sim::full_population(FaultKind::CfidUp0, opts.memory_size);

    std::vector<bool> expected_detects;
    std::vector<sim::RunTrace> expected_traces;
    {
        RequestedIsa forced(LaneIsa::Generic);
        const sim::BatchRunner runner(test, opts, &serial, 8);
        expected_detects = runner.detects(population);
        expected_traces = runner.run(population);
    }
    for (LaneIsa isa : {LaneIsa::Avx2, LaneIsa::Avx512, LaneIsa::Auto}) {
        RequestedIsa forced(isa);
        const sim::BatchRunner runner(test, opts, &serial, 8);
        EXPECT_EQ(runner.detects(population), expected_detects)
            << "isa " << static_cast<int>(isa);
        const auto traces = runner.run(population);
        ASSERT_EQ(traces.size(), expected_traces.size());
        for (std::size_t i = 0; i < traces.size(); ++i) {
            EXPECT_EQ(traces[i].detected, expected_traces[i].detected)
                << "isa " << static_cast<int>(isa) << " fault " << i;
            EXPECT_EQ(traces[i].failing_reads,
                      expected_traces[i].failing_reads)
                << "isa " << static_cast<int>(isa) << " fault " << i;
            EXPECT_EQ(traces[i].failing_observations,
                      expected_traces[i].failing_observations)
                << "isa " << static_cast<int>(isa) << " fault " << i;
        }
    }
}

/// Same differential on the word kernel — the clone covers both pass
/// families, and the sparse trace extraction must not care which flavour
/// filled the runs.
TEST(LaneIsaDifferential, WordKernelBitIdenticalAcrossIsas) {
    util::ThreadPool serial(1);
    const auto& test = march::march_c_minus();
    word::WordRunOptions opts;
    opts.words = 6;
    opts.width = 8;
    const auto backgrounds = word::counting_backgrounds(opts.width);
    const auto population =
        word::coverage_population(FaultKind::CfidDown0, opts);

    std::vector<word::WordRunTrace> expected;
    {
        RequestedIsa forced(LaneIsa::Generic);
        expected = word::WordBatchRunner(test, backgrounds, opts, &serial, 8)
                       .run(population);
    }
    for (LaneIsa isa : {LaneIsa::Avx2, LaneIsa::Avx512, LaneIsa::Auto}) {
        RequestedIsa forced(isa);
        const auto traces =
            word::WordBatchRunner(test, backgrounds, opts, &serial, 8)
                .run(population);
        ASSERT_EQ(traces.size(), expected.size());
        for (std::size_t i = 0; i < traces.size(); ++i)
            EXPECT_EQ(traces[i], expected[i])
                << "isa " << static_cast<int>(isa) << " placement " << i;
    }
}

}  // namespace
}  // namespace mtg
