#include <gtest/gtest.h>

#include "fsm/memory_fsm.hpp"

namespace mtg::fsm {
namespace {

TEST(AbstractOp, Printing) {
    EXPECT_EQ(AbstractOp::write(Cell::I, 0).str(), "w0i");
    EXPECT_EQ(AbstractOp::write(Cell::J, 1).str(), "w1j");
    EXPECT_EQ(AbstractOp::read(Cell::I, 1).str(), "r1i");
    EXPECT_EQ(AbstractOp::wait().str(), "T");
}

TEST(PairState, IndexRoundTrips) {
    for (int idx = 0; idx < 4; ++idx)
        EXPECT_EQ(PairState::from_index(idx).index(), idx);
}

TEST(PairState, ParseAndPrint) {
    EXPECT_EQ(PairState::parse("01").str(), "01");
    EXPECT_EQ(PairState::parse("x1").str(), "x1");
    EXPECT_EQ(PairState::parse("1-").str(), "1x");
}

TEST(PairState, AfterAppliesWritesOnly) {
    const PairState s = PairState::parse("0x");
    EXPECT_EQ(s.after(AbstractOp::write(Cell::J, 1)).str(), "01");
    EXPECT_EQ(s.after(AbstractOp::read(Cell::I, 0)).str(), "0x");
    EXPECT_EQ(s.after(AbstractOp::wait()).str(), "0x");
}

TEST(PairState, SatisfiesHonoursDontCares) {
    EXPECT_TRUE(PairState::parse("01").satisfies(PairState::parse("0x")));
    EXPECT_TRUE(PairState::parse("01").satisfies(PairState::parse("xx")));
    EXPECT_FALSE(PairState::parse("01").satisfies(PairState::parse("11")));
    EXPECT_FALSE(PairState::parse("x1").satisfies(PairState::parse("01")));
}

/// f.4.1: weight = hamming distance between fully known states.
TEST(WriteDistance, MatchesHammingOnKnownStates) {
    EXPECT_EQ(write_distance(PairState::parse("00"), PairState::parse("00")), 0);
    EXPECT_EQ(write_distance(PairState::parse("00"), PairState::parse("01")), 1);
    EXPECT_EQ(write_distance(PairState::parse("01"), PairState::parse("10")), 2);
    EXPECT_EQ(write_distance(PairState::parse("11"), PairState::parse("00")), 2);
}

TEST(WriteDistance, GeneralisedForDontCares) {
    // Unconstrained target cells are free.
    EXPECT_EQ(write_distance(PairState::parse("00"), PairState::parse("xx")), 0);
    EXPECT_EQ(write_distance(PairState::parse("00"), PairState::parse("1x")), 1);
    // Unknown source cells must be written when the target is constrained.
    EXPECT_EQ(write_distance(PairState::parse("xx"), PairState::parse("00")), 2);
    EXPECT_EQ(write_distance(PairState::parse("0x"), PairState::parse("01")), 1);
}

/// Figure 1: the fault-free machine M0.
TEST(MemoryFsm, GoodMachineTransitionTable) {
    const MemoryFsm m0 = MemoryFsm::good();
    // Writes move between states as in Figure 1.
    EXPECT_EQ(m0.next(PairState::parse("00"), Input::W1i).str(), "10");
    EXPECT_EQ(m0.next(PairState::parse("00"), Input::W1j).str(), "01");
    EXPECT_EQ(m0.next(PairState::parse("01"), Input::W1i).str(), "11");
    EXPECT_EQ(m0.next(PairState::parse("10"), Input::W1j).str(), "11");
    EXPECT_EQ(m0.next(PairState::parse("11"), Input::W0i).str(), "01");
    EXPECT_EQ(m0.next(PairState::parse("11"), Input::W0j).str(), "10");
    // Idempotent writes and waits are self-loops.
    for (const auto& s : all_known_states()) {
        EXPECT_EQ(m0.next(s, Input::T), s);
        EXPECT_EQ(m0.next(s, Input::Ri), s);
        EXPECT_EQ(m0.next(s, Input::Rj), s);
    }
}

TEST(MemoryFsm, GoodMachineOutputTable) {
    const MemoryFsm m0 = MemoryFsm::good();
    EXPECT_EQ(m0.output(PairState::parse("10"), Input::Ri), Trit::One);
    EXPECT_EQ(m0.output(PairState::parse("10"), Input::Rj), Trit::Zero);
    EXPECT_EQ(m0.output(PairState::parse("01"), Input::Ri), Trit::Zero);
    EXPECT_EQ(m0.output(PairState::parse("01"), Input::Rj), Trit::One);
    // Writes and waits output '-' (X).
    EXPECT_EQ(m0.output(PairState::parse("00"), Input::W1i), Trit::X);
    EXPECT_EQ(m0.output(PairState::parse("11"), Input::T), Trit::X);
}

TEST(MemoryFsm, RunCollectsOutputs) {
    const MemoryFsm m0 = MemoryFsm::good();
    std::vector<Trit> outputs;
    const PairState end = m0.run(PairState::parse("00"),
                                 {Input::W1i, Input::Ri, Input::Rj}, &outputs);
    EXPECT_EQ(end.str(), "10");
    ASSERT_EQ(outputs.size(), 3u);
    EXPECT_EQ(outputs[0], Trit::X);
    EXPECT_EQ(outputs[1], Trit::One);
    EXPECT_EQ(outputs[2], Trit::Zero);
}

TEST(MemoryFsm, GoodMachineHasNoSelfDiff) {
    const MemoryFsm m0 = MemoryFsm::good();
    EXPECT_TRUE(m0.diff(m0).empty());
    EXPECT_EQ(m0.perturbation_count(m0), 0);
}

TEST(MemoryFsm, PerturbationShowsUpInDiff) {
    const MemoryFsm m0 = MemoryFsm::good();
    MemoryFsm faulty = m0;
    faulty.set_next(PairState::parse("01"), Input::W1i, PairState::parse("10"));
    const auto bfes = faulty.diff(m0);
    ASSERT_EQ(bfes.size(), 1u);
    EXPECT_TRUE(bfes[0].is_delta_fault());
    EXPECT_FALSE(bfes[0].is_lambda_fault());
    EXPECT_EQ(bfes[0].state.str(), "01");
    EXPECT_EQ(bfes[0].input, Input::W1i);
    EXPECT_EQ(bfes[0].good_next.str(), "11");
    EXPECT_EQ(bfes[0].faulty_next.str(), "10");
}

TEST(MemoryFsm, InputHelpers) {
    EXPECT_EQ(write_input(Cell::I, 1), Input::W1i);
    EXPECT_EQ(write_input(Cell::J, 0), Input::W0j);
    EXPECT_EQ(read_input(Cell::J), Input::Rj);
    EXPECT_EQ(input_cell(Input::W0j), Cell::J);
    EXPECT_EQ(input_value(Input::W1i), 1);
    EXPECT_TRUE(is_read(Input::Ri));
    EXPECT_TRUE(is_write(Input::W0i));
    EXPECT_FALSE(is_write(Input::T));
}

TEST(MemoryFsm, TableDumpMentionsEveryState) {
    const std::string table = MemoryFsm::good().table_str();
    for (const char* state : {"00", "01", "10", "11"})
        EXPECT_NE(table.find(state), std::string::npos) << state;
}

}  // namespace
}  // namespace mtg::fsm
