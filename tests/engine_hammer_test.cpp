/// The re-entrancy hammer: N threads fire mixed queries (all four Wants,
/// both universes, permuted kind lists) at ONE shared Engine, with the
/// population cache squeezed to a budget small enough that evictions and
/// rebuilds happen mid-run — and every answer must be bit-identical to a
/// single-threaded replay of the same query sequence. This is the test
/// the query server's "one long-lived Engine under concurrent sessions"
/// design rests on; CI additionally runs it under ThreadSanitizer
/// (-DMTG_SANITIZE=thread), where any data race in the Engine, the
/// caches, the backends or the thread pool is a hard failure.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "word/background.hpp"

namespace mtg {
namespace {

using engine::BitUniverse;
using engine::Engine;
using engine::EngineConfig;
using engine::Query;
using engine::Result;
using engine::Want;
using engine::WordUniverse;
using fault::FaultKind;

bool results_eq(const Result& a, const Result& b) {
    return a.detected == b.detected && a.all == b.all &&
           a.traces.size() == b.traces.size() &&
           a.word_traces == b.word_traces &&
           a.instances == b.instances &&
           [&] {
               for (std::size_t i = 0; i < a.traces.size(); ++i)
                   if (a.traces[i].detected != b.traces[i].detected ||
                       a.traces[i].failing_reads !=
                           b.traces[i].failing_reads ||
                       a.traces[i].failing_observations !=
                           b.traces[i].failing_observations)
                       return false;
               return true;
           }();
}

/// The mixed workload: every (want × universe) pair, several kind lists
/// including permutations and duplicates of one another (which must land
/// on one cache entry), two memory sizes. Small enough to run in
/// seconds, large enough that the kind expansions overflow the tiny
/// cache budget below and force mid-run evictions.
std::vector<Query> build_workload() {
    const auto& test = march::march_c_minus();
    const auto& mats = march::find_march_test("MATS+").test;
    const std::vector<std::vector<FaultKind>> bit_kind_lists = {
        {FaultKind::Saf0, FaultKind::TfUp},
        {FaultKind::TfUp, FaultKind::Saf0},  // permutation of the above
        {FaultKind::CfidUp0},
        {FaultKind::CfidUp0, FaultKind::CfidUp0, FaultKind::Rdf1},
        {FaultKind::Rdf1, FaultKind::CfidUp0},  // dedup/permute of above
    };
    std::vector<Query> workload;
    for (const auto& kinds : bit_kind_lists) {
        for (const int memory_size : {8, 12}) {
            for (const Want want :
                 {Want::Detects, Want::DetectsAll, Want::Traces,
                  Want::DictionarySweep}) {
                Query query;
                query.test = memory_size == 8 ? test : mats;
                query.universe = BitUniverse{
                    {.memory_size = memory_size, .max_any_expansion = 6}};
                query.want = want;
                query.kinds = kinds;
                workload.push_back(std::move(query));
            }
        }
    }
    word::WordRunOptions word_opts;
    word_opts.words = 6;
    word_opts.width = 4;
    const auto backgrounds = word::counting_backgrounds(word_opts.width);
    for (const auto& kinds : {std::vector<FaultKind>{FaultKind::CfidUp1},
                              std::vector<FaultKind>{FaultKind::CfidUp1,
                                                     FaultKind::Saf1},
                              std::vector<FaultKind>{FaultKind::Saf1,
                                                     FaultKind::CfidUp1}}) {
        for (const Want want :
             {Want::Detects, Want::DetectsAll, Want::Traces,
              Want::DictionarySweep}) {
            Query query;
            query.test = test;
            query.universe = WordUniverse{backgrounds, word_opts};
            query.want = want;
            query.kinds = kinds;
            workload.push_back(std::move(query));
        }
    }
    return workload;
}

TEST(EngineHammer, ConcurrentMixedQueriesMatchSingleThreadedReplay) {
    const std::vector<Query> workload = build_workload();

    // Reference answers, single-threaded, on a separate session.
    const Engine reference;
    std::vector<Result> expected;
    expected.reserve(workload.size());
    for (const Query& query : workload)
        expected.push_back(reference.run(query));

    // The hammered session: one Engine, cache budget small enough that
    // the workload's expansions cross it repeatedly (the largest bit
    // list at n=12 alone is ~500 placements).
    EngineConfig config;
    config.cache_budget = 500;
    const Engine hammered(config);

    constexpr int kThreads = 8;
    constexpr int kRounds = 6;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            // Each thread walks the workload from a different phase so
            // distinct queries overlap in time.
            const std::size_t size = workload.size();
            for (int round = 0; round < kRounds; ++round) {
                for (std::size_t i = 0; i < size; ++i) {
                    const std::size_t index =
                        (i + static_cast<std::size_t>(t) * 7) % size;
                    const Result got = hammered.run(workload[index]);
                    if (!results_eq(got, expected[index]))
                        mismatches.fetch_add(1,
                                             std::memory_order_relaxed);
                }
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0);

    const auto stats = hammered.population_cache()->stats();
    // The point of the tiny budget: evictions really happened mid-run,
    // so the hammer covered the rebuild-under-contention path.
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_LE(stats.retained_faults, hammered.population_cache()->fault_budget());
}

TEST(EngineHammer, SharedCacheWarmsAcrossSessions) {
    // Two Engines handed one PopulationCache (the query server's
    // interactive/bulk pairing): an expansion missed by one session must
    // be a pointer-identical hit for the other.
    auto cache = std::make_shared<engine::PopulationCache>();
    EngineConfig config_a;
    config_a.cache = cache;
    EngineConfig config_b;
    config_b.cache = cache;
    const Engine a(config_a);
    const Engine b(config_b);
    ASSERT_EQ(a.population_cache().get(), cache.get());
    ASSERT_EQ(b.population_cache().get(), cache.get());

    const std::vector<FaultKind> kinds = {FaultKind::CfidUp0,
                                          FaultKind::Saf0};
    const auto from_a = a.bit_population(kinds, 10);
    const auto from_b = b.bit_population({FaultKind::Saf0,
                                          FaultKind::CfidUp0}, 10);
    EXPECT_EQ(from_a.get(), from_b.get());
    const auto stats = cache->stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_GE(stats.hits, 1u);
}

}  // namespace
}  // namespace mtg
