#include <gtest/gtest.h>

#include "sim/two_cell_sim.hpp"

namespace mtg::sim {
namespace {

using fault::FaultInstance;
using fault::FaultKind;
using fsm::AbstractOp;
using fsm::Cell;

std::vector<AbstractOp> tp1_sequence() {
    // TP1 of the paper's CFid<^,0> example: init 01, excite w1i, observe r1j.
    return {AbstractOp::write(Cell::I, 0), AbstractOp::write(Cell::J, 1),
            AbstractOp::write(Cell::I, 1), AbstractOp::read(Cell::J, 1)};
}

TEST(GtsDetects, Tp1DetectsItsTargetInstance) {
    EXPECT_TRUE(gts_detects(tp1_sequence(),
                            FaultInstance{FaultKind::CfidUp0, Cell::I}));
}

TEST(GtsDetects, Tp1MissesTheOppositeRole) {
    EXPECT_FALSE(gts_detects(tp1_sequence(),
                             FaultInstance{FaultKind::CfidUp0, Cell::J}));
}

TEST(GtsDetects, PaperWorkedExampleGtsCoversAllFourInstances) {
    // §4: GTS = w0i,w0j,w1i,r0j,w1j,r1i,w0i,w0j,w1j,r0i,w1i,r1j covering
    // {<^,1>, <^,0>} in both roles.
    const std::vector<AbstractOp> gts = {
        AbstractOp::write(Cell::I, 0), AbstractOp::write(Cell::J, 0),
        AbstractOp::write(Cell::I, 1), AbstractOp::read(Cell::J, 0),
        AbstractOp::write(Cell::J, 1), AbstractOp::read(Cell::I, 1),
        AbstractOp::write(Cell::I, 0), AbstractOp::write(Cell::J, 0),
        AbstractOp::write(Cell::J, 1), AbstractOp::read(Cell::I, 0),
        AbstractOp::write(Cell::I, 1), AbstractOp::read(Cell::J, 1),
    };
    for (FaultKind kind : {FaultKind::CfidUp0, FaultKind::CfidUp1}) {
        EXPECT_TRUE(gts_detects(gts, FaultInstance{kind, Cell::I}))
            << fault::fault_kind_name(kind);
        EXPECT_TRUE(gts_detects(gts, FaultInstance{kind, Cell::J}))
            << fault::fault_kind_name(kind);
    }
    EXPECT_TRUE(gts_well_formed(gts));
}

TEST(GtsDetects, RequiresDetectionFromEveryPowerUpState) {
    // w1i,r1i detects SAF0 only if the cell starts low... in fact a stuck-
    // at-0 cell ignores the write from any start, so detection holds.
    const std::vector<AbstractOp> ops = {AbstractOp::write(Cell::I, 1),
                                         AbstractOp::read(Cell::I, 1)};
    EXPECT_TRUE(gts_detects(ops, FaultInstance{FaultKind::Saf0, Cell::I}));
    // But TF<^> needs the explicit 0 background: without w0i first, a
    // power-up-high cell shows no transition failure.
    EXPECT_FALSE(gts_detects(ops, FaultInstance{FaultKind::TfUp, Cell::I}));
    const std::vector<AbstractOp> with_background = {
        AbstractOp::write(Cell::I, 0), AbstractOp::write(Cell::I, 1),
        AbstractOp::read(Cell::I, 1)};
    EXPECT_TRUE(gts_detects(with_background,
                            FaultInstance{FaultKind::TfUp, Cell::I}));
}

TEST(GtsWellFormed, RejectsReadsOfUninitialisedCells) {
    EXPECT_FALSE(gts_well_formed({AbstractOp::read(Cell::I, 0)}));
}

TEST(GtsWellFormed, RejectsWrongExpectations) {
    EXPECT_FALSE(gts_well_formed(
        {AbstractOp::write(Cell::I, 0), AbstractOp::read(Cell::I, 1)}));
}

TEST(GtsWellFormed, AcceptsProperSequences) {
    EXPECT_TRUE(gts_well_formed(
        {AbstractOp::write(Cell::I, 0), AbstractOp::read(Cell::I, 0),
         AbstractOp::write(Cell::J, 1), AbstractOp::read(Cell::J, 1),
         AbstractOp::wait(), AbstractOp::read(Cell::J, 1)}));
}

TEST(GtsDetects, WaitSensitisesRetention) {
    const std::vector<AbstractOp> ops = {AbstractOp::write(Cell::I, 1),
                                         AbstractOp::wait(),
                                         AbstractOp::read(Cell::I, 1)};
    EXPECT_TRUE(gts_detects(ops, FaultInstance{FaultKind::Drf0, Cell::I}));
    // Without the wait the decay never happens.
    const std::vector<AbstractOp> without = {AbstractOp::write(Cell::I, 1),
                                             AbstractOp::read(Cell::I, 1)};
    EXPECT_FALSE(gts_detects(without, FaultInstance{FaultKind::Drf0, Cell::I}));
}

}  // namespace
}  // namespace mtg::sim
