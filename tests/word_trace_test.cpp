/// Differential battery for word-path guaranteed traces: the packed
/// WordBatchRunner::run() must reproduce the scalar WordMemory oracle
/// (word::guaranteed_trace) bit-for-bit — for every FaultKind (including
/// forced intra-word pairs), at every lane width W ∈ {1, 4, 8}, for every
/// worker count — and traces must come out in canonical order
/// ((background, element, op[, word]) ascending). Also locks down the
/// per-pass scratch pooling: reset() reuse and the fresh-allocation path
/// produce identical results.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "march/parser.hpp"
#include "sim/lane_dispatch.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "word/background.hpp"
#include "word/packed_word_memory.hpp"
#include "word/word_batch_runner.hpp"
#include "word/word_trace.hpp"

namespace mtg::word {
namespace {

using fault::FaultKind;

constexpr int kWords = 3;
constexpr int kWidth = 4;

InjectedBitFault random_placement(FaultKind kind, SplitMix64& rng, int words,
                                  int width) {
    const BitAddr a{rng.range(0, words - 1), rng.range(0, width - 1)};
    if (!fault::is_two_cell(kind)) return InjectedBitFault::single(kind, a);
    for (;;) {
        const BitAddr b{rng.range(0, words - 1), rng.range(0, width - 1)};
        if (!(b == a)) return InjectedBitFault::coupling(kind, a, b);
    }
}

/// Readable mismatch dump for one fault's trace pair.
void expect_trace_eq(const WordRunTrace& packed, const WordRunTrace& oracle,
                     const char* march, FaultKind kind, std::size_t i) {
    ASSERT_EQ(packed.detected, oracle.detected)
        << march << ' ' << fault_kind_name(kind) << " placement " << i;
    ASSERT_EQ(packed.failing_reads.size(), oracle.failing_reads.size())
        << march << ' ' << fault_kind_name(kind) << " placement " << i;
    for (std::size_t r = 0; r < oracle.failing_reads.size(); ++r)
        ASSERT_EQ(packed.failing_reads[r], oracle.failing_reads[r])
            << march << ' ' << fault_kind_name(kind) << " placement " << i
            << " read " << r;
    ASSERT_EQ(packed.failing_observations.size(),
              oracle.failing_observations.size())
        << march << ' ' << fault_kind_name(kind) << " placement " << i;
    for (std::size_t o = 0; o < oracle.failing_observations.size(); ++o)
        ASSERT_EQ(packed.failing_observations[o],
                  oracle.failing_observations[o])
            << march << ' ' << fault_kind_name(kind) << " placement " << i
            << " observation " << o;
}

TEST(WordTraceDifferential, EveryFaultKindMatchesScalarOracle) {
    SplitMix64 rng(0x7ACEDULL);
    WordRunOptions opts;
    opts.words = kWords;
    opts.width = kWidth;
    const auto backgrounds = counting_backgrounds(kWidth);
    for (const char* name : {"MATS++", "March C-"}) {
        const auto& test = march::find_march_test(name).test;
        const WordBatchRunner runner(test, backgrounds, opts);
        for (FaultKind kind : fault::all_fault_kinds()) {
            std::vector<InjectedBitFault> population;
            for (int trial = 0; trial < 8; ++trial)
                population.push_back(
                    random_placement(kind, rng, kWords, kWidth));
            const auto traces = runner.run(population);
            ASSERT_EQ(traces.size(), population.size());
            for (std::size_t i = 0; i < population.size(); ++i)
                expect_trace_eq(
                    traces[i],
                    guaranteed_trace(test, backgrounds, population[i], opts),
                    name, kind, i);
            if (HasFatalFailure()) return;
        }
    }
}

TEST(WordTraceDifferential, ForcedIntraWordPairsMatchScalarOracle) {
    // Intra-word pairs are the word-specific regime (simultaneous
    // aggressor/victim writes in one store); force them for every
    // two-cell kind instead of waiting for the RNG to produce them.
    SplitMix64 rng(0x1A7BAULL);
    WordRunOptions opts;
    opts.words = kWords;
    opts.width = kWidth;
    const auto backgrounds = counting_backgrounds(kWidth);
    const auto& test = march::march_c_minus();
    const WordBatchRunner runner(test, backgrounds, opts);
    for (FaultKind kind : fault::all_fault_kinds()) {
        if (!fault::is_two_cell(kind)) continue;
        std::vector<InjectedBitFault> population;
        for (int trial = 0; trial < 6; ++trial) {
            const int w = rng.range(0, kWords - 1);
            const int a = rng.range(0, kWidth - 1);
            int v = rng.range(0, kWidth - 2);
            if (v >= a) ++v;
            population.push_back(
                InjectedBitFault::coupling(kind, {w, a}, {w, v}));
        }
        const auto traces = runner.run(population);
        for (std::size_t i = 0; i < population.size(); ++i)
            expect_trace_eq(
                traces[i],
                guaranteed_trace(test, backgrounds, population[i], opts),
                "March C-", kind, i);
        if (HasFatalFailure()) return;
    }
}

TEST(WordTraceDifferential, BitIdenticalAcrossLaneWidths) {
    // 8 words × 16 bits single-bit sweep: 128 placements fill three W=1
    // chunks, so the wide blocks actually carry multiple plane words.
    WordRunOptions opts;
    opts.width = 16;
    const auto backgrounds = counting_backgrounds(16);
    const auto& test = march::march_c_minus();
    auto population = coverage_population(FaultKind::TfDown, opts);
    for (int i = 0; i < 40; ++i)  // add two-cell variety across chunks
        population.push_back(coverage_population(FaultKind::CfidUp1, opts)[
            static_cast<std::size_t>(i * 7 % 113)]);
    const auto w1 =
        WordBatchRunner(test, backgrounds, opts, nullptr, 1).run(population);
    const auto w4 =
        WordBatchRunner(test, backgrounds, opts, nullptr, 4).run(population);
    const auto w8 =
        WordBatchRunner(test, backgrounds, opts, nullptr, 8).run(population);
    ASSERT_EQ(w1.size(), population.size());
    for (std::size_t i = 0; i < population.size(); ++i) {
        ASSERT_EQ(w1[i], w4[i]) << "W1 vs W4 placement " << i;
        ASSERT_EQ(w1[i], w8[i]) << "W1 vs W8 placement " << i;
    }
    // Spot-check the widths against the scalar oracle too.
    for (std::size_t i = 0; i < population.size(); i += 17)
        expect_trace_eq(w8[i],
                        guaranteed_trace(test, backgrounds, population[i],
                                         opts),
                        "March C-", population[i].kind, i);
}

TEST(WordTraceDifferential, BitIdenticalAcrossWorkerCounts) {
    WordRunOptions opts;
    opts.width = 8;
    const auto backgrounds = counting_backgrounds(8);
    const auto& test = march::march_c_minus();
    const auto population =
        coverage_population(FaultKind::CfidDown0, opts);
    util::ThreadPool one(1);
    util::ThreadPool two(2);
    const auto serial =
        WordBatchRunner(test, backgrounds, opts, &one).run(population);
    const auto dual =
        WordBatchRunner(test, backgrounds, opts, &two).run(population);
    const auto pooled =
        WordBatchRunner(test, backgrounds, opts).run(population);
    ASSERT_EQ(serial.size(), population.size());
    for (std::size_t i = 0; i < population.size(); ++i) {
        ASSERT_EQ(serial[i], dual[i]) << "1 vs 2 workers, placement " << i;
        ASSERT_EQ(serial[i], pooled[i]) << "1 vs hw workers, placement " << i;
    }
}

TEST(WordTraceDifferential, TracesComeOutInCanonicalOrder) {
    WordRunOptions opts;  // 8 × 8
    const auto backgrounds = counting_backgrounds(8);
    const auto& test = march::march_c_minus();
    const auto population =
        coverage_population(FaultKind::CfinUp, opts);
    const auto traces =
        WordBatchRunner(test, backgrounds, opts).run(population);
    bool any_reads = false, any_obs = false;
    for (const WordRunTrace& trace : traces) {
        for (std::size_t r = 1; r < trace.failing_reads.size(); ++r) {
            const auto& p = trace.failing_reads[r - 1];
            const auto& q = trace.failing_reads[r];
            ASSERT_LT(std::tuple(p.background, p.site.element, p.site.op),
                      std::tuple(q.background, q.site.element, q.site.op));
        }
        for (std::size_t o = 1; o < trace.failing_observations.size(); ++o) {
            const auto& p = trace.failing_observations[o - 1];
            const auto& q = trace.failing_observations[o];
            ASSERT_LT(std::tuple(p.background, p.site.element, p.site.op,
                                 p.word),
                      std::tuple(q.background, q.site.element, q.site.op,
                                 q.word));
        }
        any_reads = any_reads || !trace.failing_reads.empty();
        any_obs = any_obs || !trace.failing_observations.empty();
        for (const WordObservation& obs : trace.failing_observations)
            ASSERT_NE(obs.bits, 0u);  // empty masks must not survive
    }
    EXPECT_TRUE(any_reads);
    EXPECT_TRUE(any_obs);
}

TEST(WordTraceDifferential, MultiReadElementsAndDecoderFaults) {
    // Elements with several reads are where a site can fail at more than
    // one word with another site interleaving (decoder faults fail at
    // both the aggressor and the victim word) — the regime where naive
    // execution-order read lists pick up duplicates. The oracle must
    // stay strictly canonical and the packed path must match it.
    SplitMix64 rng(0xAF2AF2ULL);
    const auto test = march::parse_march(
        "{^(w0); ^(r0,w1,r1); v(r1,w0,r0); ^(r0)}");
    WordRunOptions opts;
    opts.words = 4;
    opts.width = 4;
    const auto backgrounds = counting_backgrounds(opts.width);
    const WordBatchRunner runner(test, backgrounds, opts);
    std::vector<InjectedBitFault> population;
    for (FaultKind kind : fault::all_fault_kinds()) {
        if (!fault::is_two_cell(kind)) continue;
        for (int trial = 0; trial < 6; ++trial)
            population.push_back(
                random_placement(kind, rng, opts.words, opts.width));
    }
    const auto traces = runner.run(population);
    for (std::size_t i = 0; i < population.size(); ++i) {
        const auto oracle =
            guaranteed_trace(test, backgrounds, population[i], opts);
        for (std::size_t r = 1; r < oracle.failing_reads.size(); ++r) {
            const auto& p = oracle.failing_reads[r - 1];
            const auto& q = oracle.failing_reads[r];
            ASSERT_LT(std::tuple(p.background, p.site.element, p.site.op),
                      std::tuple(q.background, q.site.element, q.site.op))
                << fault_kind_name(population[i].kind) << " placement "
                << i;
        }
        expect_trace_eq(traces[i], oracle, "multi-read",
                        population[i].kind, i);
        if (HasFatalFailure()) return;
    }
}

TEST(WordTraceDifferential, SiteFailingAtManyWordsStaysCanonical) {
    // A single site failing at several words with another failing site
    // interleaved is where an execution-order read list picks up
    // duplicates ((site A @ word 0), (site C @ word 0), (site A @ word
    // 1), ...). The trace API accepts such tests (the generator only
    // guards ITS candidates with is_well_formed), so the oracle and the
    // packed path must both emit each (background, site) read once.
    const auto test = march::parse_march("{^(w0); ^(r1,r0,r1)}");
    WordRunOptions opts;
    opts.words = 4;
    opts.width = 4;
    const auto backgrounds = counting_backgrounds(opts.width);
    const auto fault =
        InjectedBitFault::single(FaultKind::Saf0, {1, 2});
    const auto oracle = guaranteed_trace(test, backgrounds, fault, opts);
    // Both r1 sites mismatch at every word in every background; each must
    // appear exactly once per background (the r0 site additionally fails
    // where the stuck bit contradicts the background, which is fine — the
    // strict ordering below is what forbids duplicates).
    std::size_t r1_reads = 0;
    for (const WordReadSite& read : oracle.failing_reads)
        if (read.site.op != 1) ++r1_reads;
    ASSERT_EQ(r1_reads, 2 * backgrounds.size());
    for (std::size_t r = 1; r < oracle.failing_reads.size(); ++r) {
        const auto& p = oracle.failing_reads[r - 1];
        const auto& q = oracle.failing_reads[r];
        ASSERT_LT(std::tuple(p.background, p.site.element, p.site.op),
                  std::tuple(q.background, q.site.element, q.site.op));
    }
    const std::vector<InjectedBitFault> population{fault};
    const auto traces =
        WordBatchRunner(test, backgrounds, opts).run(population);
    expect_trace_eq(traces[0], oracle, "ill-formed", fault.kind, 0);
}

TEST(WordTraceDifferential, DetectedAgreesWithDetects) {
    SplitMix64 rng(0xDE7EC7ULL);
    WordRunOptions opts;
    opts.words = kWords;
    opts.width = kWidth;
    const auto backgrounds = counting_backgrounds(kWidth);
    const auto& test = march::mats_plus_plus();
    const WordBatchRunner runner(test, backgrounds, opts);
    std::vector<InjectedBitFault> population;
    for (FaultKind kind : fault::all_fault_kinds())
        for (int trial = 0; trial < 3; ++trial)
            population.push_back(
                random_placement(kind, rng, kWords, kWidth));
    const auto traces = runner.run(population);
    const auto verdicts = runner.detects(population);
    for (std::size_t i = 0; i < population.size(); ++i)
        ASSERT_EQ(traces[i].detected, verdicts[i]) << i;
}

TEST(WordTraceDifferential, EmptyPopulation) {
    WordRunOptions opts;
    const auto& test = march::mats_plus_plus();
    const WordBatchRunner runner(test, counting_backgrounds(8), opts);
    EXPECT_TRUE(runner.run({}).empty());
}

// A reset() memory must behave exactly like a freshly constructed one —
// including across a geometry change and with a different fault.
TEST(PackedWordMemoryReset, GeometryAndFaultChange) {
    SplitMix64 rng(0x5C7A7CULL);
    PackedWordMemory reused(2, 2);
    reused.inject(InjectedBitFault::coupling(FaultKind::CfidUp1, {0, 0},
                                             {1, 1}),
                  LaneMask{1} << 5);
    PackedWordMemory::ReadResult got[64];
    reused.write(0, 0b11);
    reused.read(1, got);

    // Re-arm with a different geometry and fault; a fresh memory is the
    // reference.
    reused.reset(kWords, kWidth);
    PackedWordMemory fresh(kWords, kWidth);
    const auto fault =
        InjectedBitFault::single(FaultKind::TfUp, {2, 1});
    reused.inject(fault, LaneMask{1} << 9);
    fresh.inject(fault, LaneMask{1} << 9);
    PackedWordMemory::ReadResult a[64], b[64];
    for (int step = 0; step < 40; ++step) {
        const int word = rng.range(0, kWords - 1);
        const int choice = rng.range(0, 9);
        if (choice < 5) {
            const auto value = rng.next() & ((std::uint64_t{1} << kWidth) - 1);
            reused.write(word, value);
            fresh.write(word, value);
        } else if (choice < 9) {
            reused.read(word, a);
            fresh.read(word, b);
            for (int bit = 0; bit < kWidth; ++bit) {
                ASSERT_EQ(a[bit].value, b[bit].value) << "step " << step;
                ASSERT_EQ(a[bit].known, b[bit].known) << "step " << step;
            }
        } else {
            reused.wait();
            fresh.wait();
        }
        for (int w = 0; w < kWords; ++w)
            for (int bit = 0; bit < kWidth; ++bit)
                ASSERT_EQ(reused.peek({w, bit}, 9), fresh.peek({w, bit}, 9))
                    << "bit (" << w << ',' << bit << ") step " << step;
    }
}

TEST(PassScratch, PooledAndFreshPassesAgree) {
    WordRunOptions opts;
    opts.width = 8;
    const auto backgrounds = counting_backgrounds(8);
    const auto& test = march::march_c_minus();
    const auto population = coverage_population(FaultKind::CfidUp1, opts);
    const WordBatchRunner runner(test, backgrounds, opts);
    ASSERT_TRUE(sim::pass_scratch_enabled());  // default is pooled
    const auto pooled = runner.run(population);
    const auto pooled_again = runner.run(population);  // scratch reuse
    sim::set_pass_scratch_enabled(false);
    const auto fresh = runner.run(population);
    sim::set_pass_scratch_enabled(true);
    ASSERT_EQ(pooled.size(), fresh.size());
    for (std::size_t i = 0; i < pooled.size(); ++i) {
        ASSERT_EQ(pooled[i], fresh[i]) << i;
        ASSERT_EQ(pooled[i], pooled_again[i]) << i;
    }
}

}  // namespace
}  // namespace mtg::word
