#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/trit.hpp"

namespace mtg {
namespace {

TEST(Contracts, ExpectsThrowsOnViolation) {
    EXPECT_THROW(MTG_EXPECTS(1 == 2), ContractViolation);
    EXPECT_NO_THROW(MTG_EXPECTS(1 == 1));
}

TEST(Contracts, MessageNamesKindAndCondition) {
    try {
        MTG_ASSERT(false && "broken invariant");
        FAIL() << "should have thrown";
    } catch (const ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("Assertion"), std::string::npos);
        EXPECT_NE(what.find("broken invariant"), std::string::npos);
    }
}

TEST(Trit, BitConversionRoundTrips) {
    EXPECT_EQ(trit_from_bit(0), Trit::Zero);
    EXPECT_EQ(trit_from_bit(1), Trit::One);
    EXPECT_EQ(trit_bit(Trit::Zero), 0);
    EXPECT_EQ(trit_bit(Trit::One), 1);
}

TEST(Trit, KnownnessAndNegation) {
    EXPECT_TRUE(is_known(Trit::Zero));
    EXPECT_TRUE(is_known(Trit::One));
    EXPECT_FALSE(is_known(Trit::X));
    EXPECT_EQ(trit_not(Trit::Zero), Trit::One);
    EXPECT_EQ(trit_not(Trit::One), Trit::Zero);
    EXPECT_EQ(trit_not(Trit::X), Trit::X);
}

TEST(Trit, CompatibilityTreatsXAsWildcard) {
    EXPECT_TRUE(trits_compatible(Trit::X, Trit::One));
    EXPECT_TRUE(trits_compatible(Trit::Zero, Trit::X));
    EXPECT_TRUE(trits_compatible(Trit::One, Trit::One));
    EXPECT_FALSE(trits_compatible(Trit::Zero, Trit::One));
}

TEST(Trit, ParseAcceptsPaperNotation) {
    EXPECT_EQ(trit_parse('0'), Trit::Zero);
    EXPECT_EQ(trit_parse('1'), Trit::One);
    EXPECT_EQ(trit_parse('x'), Trit::X);
    EXPECT_EQ(trit_parse('-'), Trit::X);  // the paper's uninitialised mark
    EXPECT_THROW(trit_parse('2'), ContractViolation);
}

TEST(Rng, DeterministicAcrossInstances) {
    SplitMix64 a(42), b(42);
    for (int k = 0; k < 100; ++k) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeStaysInBounds) {
    SplitMix64 rng(7);
    for (int k = 0; k < 1000; ++k) {
        const int v = rng.range(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, BelowCoversAllResidues) {
    SplitMix64 rng(11);
    bool seen[5] = {};
    for (int k = 0; k < 200; ++k) seen[rng.below(5)] = true;
    for (bool s : seen) EXPECT_TRUE(s);
}

TEST(TextTable, AlignsColumns) {
    TextTable table;
    table.set_header({"name", "value"});
    table.add_row({"x", "1"});
    table.add_row({"longer", "22"});
    const std::string out = table.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, HandlesRaggedRows) {
    TextTable table;
    table.set_header({"a", "b", "c"});
    table.add_row({"1"});
    EXPECT_NO_THROW((void)table.str());
}

}  // namespace
}  // namespace mtg
