#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "diagnosis/dictionary.hpp"
#include "march/library.hpp"
#include "setcover/coverage_matrix.hpp"
#include "word/word_march.hpp"

namespace mtg {
namespace {

using fault::FaultKind;

/// Cross-module pipeline: generate bit-oriented, lift to word-oriented
/// with counting backgrounds, verify coverage including intra-word pairs.
TEST(Integration, GeneratedTestsLiftToWords) {
    core::Generator generator;
    for (const char* list : {"SAF,TF", "CFid", "SAF,TF,ADF,CFin,CFid"}) {
        const auto result = generator.generate_for(list);
        ASSERT_TRUE(result.valid) << list;

        const auto backgrounds = word::counting_backgrounds(4);
        word::WordRunOptions opts;
        opts.width = 4;
        EXPECT_TRUE(word::is_well_formed(result.test, backgrounds, opts))
            << list;
        for (FaultKind kind : fault::parse_fault_kinds(list)) {
            EXPECT_TRUE(word::covers_everywhere(result.test, backgrounds,
                                                kind, opts))
                << list << " / " << fault::fault_kind_name(kind);
        }
    }
}

/// Generated tests feed straight into the diagnosis machinery: every
/// targeted instance gets a non-empty signature.
TEST(Integration, GeneratedTestsAreDiagnosable) {
    core::Generator generator;
    const auto kinds = fault::parse_fault_kinds("SAF,TF,CFin,CFid");
    const auto result = generator.generate(kinds);
    ASSERT_TRUE(result.valid);
    const auto dict = diagnosis::FaultDictionary::build(result.test, kinds);
    EXPECT_EQ(dict.detected_count(), dict.instance_count());
    // The minimal test cannot out-resolve the longer classical March C-.
    const auto reference =
        diagnosis::FaultDictionary::build(march::march_c_minus(), kinds);
    EXPECT_GT(dict.detected_count(), 0);
    EXPECT_GE(reference.detected_count(), dict.detected_count());
}

/// The §6 analysis agrees with the simulator on every generated result:
/// completeness per coverage matrix implies no escape in covers_everywhere
/// and vice versa.
TEST(Integration, RedundancyAnalysisConsistentWithSimulator) {
    core::Generator generator;
    for (const char* list : {"SAF", "SAF,TF,ADF", "CFst"}) {
        const auto kinds = fault::parse_fault_kinds(list);
        const auto result = generator.generate(kinds);
        ASSERT_TRUE(result.valid) << list;
        EXPECT_TRUE(result.redundancy.complete) << list;
        EXPECT_FALSE(sim::first_uncovered(result.test, kinds).has_value())
            << list;
    }
}

/// End-to-end determinism across the whole pipeline, including diagnosis
/// artifacts.
TEST(Integration, FullPipelineDeterministic) {
    core::Generator generator;
    const auto kinds = fault::parse_fault_kinds("SAF,TF,CFin");
    const auto a = generator.generate(kinds);
    const auto b = generator.generate(kinds);
    EXPECT_EQ(a.test, b.test);
    const auto da = diagnosis::FaultDictionary::build(a.test, kinds);
    const auto db = diagnosis::FaultDictionary::build(b.test, kinds);
    EXPECT_EQ(da.str(), db.str());
}

/// Library baseline sanity at a different memory size: coverage verdicts
/// are stable for n in {4, 8, 12} (the theory is size-independent for
/// n >= 3).
TEST(Integration, CoverageVerdictsStableAcrossMemorySizes) {
    for (int n : {4, 8, 12}) {
        sim::RunOptions opts;
        opts.memory_size = n;
        EXPECT_TRUE(sim::covers_everywhere(march::march_c_minus(),
                                           FaultKind::CfidDown1, opts))
            << n;
        EXPECT_FALSE(
            sim::covers_everywhere(march::mats(), FaultKind::CfidUp0, opts))
            << n;
    }
}

}  // namespace
}  // namespace mtg
