#include <gtest/gtest.h>

#include "baseline/exhaustive.hpp"
#include "core/generator.hpp"
#include "sim/march_runner.hpp"

namespace mtg::baseline {
namespace {

using fault::FaultKind;

TEST(Exhaustive, FindsFourNTestForSaf) {
    ExhaustiveOptions options;
    options.max_complexity = 4;
    const ExhaustiveResult result =
        exhaustive_search(fault::parse_fault_kinds("SAF"), options);
    ASSERT_TRUE(result.test.has_value());
    EXPECT_EQ(result.test->complexity(), 4);
    EXPECT_TRUE(sim::is_well_formed(*result.test));
    EXPECT_TRUE(sim::covers_everywhere(*result.test, FaultKind::Saf0));
    EXPECT_TRUE(sim::covers_everywhere(*result.test, FaultKind::Saf1));
}

/// Optimality certificate for Table 3 row 1: no March test of complexity
/// <= 3 covers SAF (so the generator's 4n is optimal).
TEST(Exhaustive, NoThreeOpMarchCoversSaf) {
    ExhaustiveOptions options;
    options.max_complexity = 3;
    const ExhaustiveResult result =
        exhaustive_search(fault::parse_fault_kinds("SAF"), options);
    EXPECT_FALSE(result.test.has_value());
    EXPECT_FALSE(result.budget_exhausted);
}

/// Optimality certificate for Table 3 row 2: SAF+TF needs 5n.
TEST(Exhaustive, NoFourOpMarchCoversSafTf) {
    ExhaustiveOptions options;
    options.max_complexity = 4;
    const ExhaustiveResult result =
        exhaustive_search(fault::parse_fault_kinds("SAF,TF"), options);
    EXPECT_FALSE(result.test.has_value());
    EXPECT_FALSE(result.budget_exhausted);
}

/// Optimality certificate for Table 3 row 6: no 4-op March test covers
/// inversion coupling in both directions and both address orders, so the
/// paper's (and our generator's) 5n CFin test is optimal. The exhaustive
/// search also confirms a 5-op solution exists.
TEST(Exhaustive, CfinOptimumIsFiveOps) {
    ExhaustiveOptions options;
    options.max_complexity = 5;
    const ExhaustiveResult result =
        exhaustive_search(fault::parse_fault_kinds("CFin"), options);
    ASSERT_TRUE(result.test.has_value());
    EXPECT_EQ(result.test->complexity(), 5) << result.test->str();
}

/// The generator's result equals the exhaustive optimum where the latter
/// is feasible to compute — the central optimality cross-check.
TEST(Exhaustive, GeneratorMatchesExhaustiveOptimum) {
    for (const char* list : {"SAF", "SAF,TF", "CFin<^>"}) {
        const auto kinds = fault::parse_fault_kinds(list);
        core::Generator generator;
        const auto generated = generator.generate(kinds);
        ASSERT_TRUE(generated.valid) << list;

        ExhaustiveOptions options;
        options.max_complexity = generated.complexity;
        const ExhaustiveResult exhaustive = exhaustive_search(kinds, options);
        ASSERT_TRUE(exhaustive.test.has_value())
            << list << ": exhaustive found nothing up to "
            << generated.complexity;
        EXPECT_EQ(exhaustive.test->complexity(), generated.complexity)
            << list << ": generator " << generated.summary()
            << " vs exhaustive " << exhaustive.test->str();
    }
}

TEST(Exhaustive, BudgetCapIsHonoured) {
    ExhaustiveOptions options;
    options.max_complexity = 10;
    options.max_nodes = 1000;
    const ExhaustiveResult result =
        exhaustive_search(fault::parse_fault_kinds("CFid"), options);
    EXPECT_TRUE(result.budget_exhausted);
    EXPECT_LE(result.nodes_explored, 1100);
}

/// The §2 argument: the candidate space grows exponentially with the
/// complexity bound.
TEST(Exhaustive, CandidateCountGrowsExponentially) {
    const long long c3 = count_candidates(3);
    const long long c4 = count_candidates(4);
    const long long c5 = count_candidates(5);
    EXPECT_GT(c4, 2 * c3);
    EXPECT_GT(c5, 2 * c4);
}

}  // namespace
}  // namespace mtg::baseline
