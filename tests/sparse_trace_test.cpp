/// Sparse-vs-dense trace battery (PR 8): the word trace path keeps only
/// sparse per-(background, site) observation runs by default; the PR 4
/// dense grid stays compiled behind sim::set_dense_trace_grids(true) for
/// one release. The two paths must agree bit-for-bit across W ∈ {1, 4, 8}
/// × workers {1, 2, hw} × every fault kind (forced intra-word pairs
/// included), and the sparse path must complete word memories whose dense
/// grid is unallocatable (words=4096 × width=8, RAM-gated smoke). Plus
/// unit coverage of the SparseGuaranteedRuns merge-walk itself.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "sim/lane_dispatch.hpp"
#include "sim/trace_masks.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "word/background.hpp"
#include "word/word_batch_runner.hpp"
#include "word/word_trace.hpp"

namespace mtg::word {
namespace {

using fault::FaultKind;
using sim::detail::SparseGuaranteedRuns;

/// RAII dense-grid toggle so a failing ASSERT cannot leak the test-only
/// fallback into later tests.
class DenseGrids {
public:
    explicit DenseGrids(bool enabled) { sim::set_dense_trace_grids(enabled); }
    ~DenseGrids() { sim::set_dense_trace_grids(false); }
};

TEST(SparseGuaranteedRuns, FirstPassSeedsLaterPassesIntersect) {
    SparseGuaranteedRuns<sim::LaneMask> runs(1);
    runs.begin_pass();
    runs.append(0, 2, 0, 0b0110);
    runs.append(0, 5, 1, 0b0010);
    runs.commit_pass();
    ASSERT_EQ(runs.run(0).size(), 2u);

    // Second pass: (2,0) survives on one lane, (5,1) misses entirely, and
    // a fresh (7,0) appears — fresh keys die (not guaranteed), matched
    // keys AND their lanes, empty intersections drop.
    runs.begin_pass();
    runs.append(0, 2, 0, 0b0100);
    runs.append(0, 7, 0, 0b1000);
    runs.commit_pass();
    const auto& run = runs.run(0);
    ASSERT_EQ(run.size(), 1u);
    EXPECT_EQ(run[0].word, 2);
    EXPECT_EQ(run[0].bit, 0);
    EXPECT_EQ(run[0].lanes, 0b0100u);
    EXPECT_EQ(runs.entry_count(), 1u);
}

TEST(SparseGuaranteedRuns, CommitSortsDescendingPassOrder) {
    // A descending-address pass appends words high-to-low; commit must
    // canonicalise to ascending (word, bit) so the merge-walk and the
    // extraction both see sorted runs.
    SparseGuaranteedRuns<sim::LaneMask> runs(2);
    runs.begin_pass();
    runs.append(1, 9, 1, 0b1);
    runs.append(1, 9, 0, 0b1);
    runs.append(1, 3, 2, 0b1);
    runs.commit_pass();
    const auto& run = runs.run(1);
    ASSERT_EQ(run.size(), 3u);
    EXPECT_TRUE(run[0].word == 3 && run[0].bit == 2);
    EXPECT_TRUE(run[1].word == 9 && run[1].bit == 0);
    EXPECT_TRUE(run[2].word == 9 && run[2].bit == 1);
    EXPECT_TRUE(runs.run(0).empty());
}

TEST(SparseGuaranteedRuns, EmptyPassClearsEverything) {
    SparseGuaranteedRuns<sim::LaneMask> runs(1);
    runs.begin_pass();
    runs.append(0, 0, 0, 0b10);
    runs.commit_pass();
    runs.begin_pass();  // pass with no failures at this coordinate
    runs.commit_pass();
    EXPECT_EQ(runs.entry_count(), 0u);
}

InjectedBitFault random_placement(FaultKind kind, SplitMix64& rng, int words,
                                  int width) {
    const BitAddr a{rng.range(0, words - 1), rng.range(0, width - 1)};
    if (!fault::is_two_cell(kind)) return InjectedBitFault::single(kind, a);
    for (;;) {
        const BitAddr b{rng.range(0, words - 1), rng.range(0, width - 1)};
        if (!(b == a)) return InjectedBitFault::coupling(kind, a, b);
    }
}

/// Mixed population: random placements of every kind plus forced
/// intra-word pairs for every two-cell kind (the word-specific regime).
std::vector<InjectedBitFault> mixed_population(SplitMix64& rng, int words,
                                               int width) {
    std::vector<InjectedBitFault> population;
    for (FaultKind kind : fault::all_fault_kinds()) {
        for (int trial = 0; trial < 4; ++trial)
            population.push_back(random_placement(kind, rng, words, width));
        if (!fault::is_two_cell(kind)) continue;
        const int w = rng.range(0, words - 1);
        const int a = rng.range(0, width - 1);
        int v = rng.range(0, width - 2);
        if (v >= a) ++v;
        population.push_back(
            InjectedBitFault::coupling(kind, {w, a}, {w, v}));
    }
    return population;
}

TEST(SparseTraceDifferential, MatchesDenseAcrossWidthsAndWorkers) {
    SplitMix64 rng(0x5BA25EULL);
    WordRunOptions opts;
    opts.words = 6;
    opts.width = 8;
    const auto backgrounds = counting_backgrounds(opts.width);
    const auto& test = march::march_c_minus();
    const auto population = mixed_population(rng, opts.words, opts.width);

    util::ThreadPool one(1);
    util::ThreadPool two(2);
    util::ThreadPool* pools[] = {&one, &two, nullptr};  // 1, 2, hw
    const char* pool_names[] = {"1", "2", "hw"};
    for (int width : {1, 4, 8})
        for (int p = 0; p < 3; ++p) {
            const WordBatchRunner runner(test, backgrounds, opts, pools[p],
                                         width);
            const auto sparse = runner.run(population);
            std::vector<WordRunTrace> dense;
            {
                DenseGrids guard(true);
                dense = runner.run(population);
            }
            ASSERT_EQ(sparse.size(), dense.size());
            for (std::size_t i = 0; i < sparse.size(); ++i)
                ASSERT_EQ(sparse[i], dense[i])
                    << "W=" << width << " workers=" << pool_names[p]
                    << " placement " << i;
        }
}

TEST(SparseTraceDifferential, MatchesScalarOracleOnIntraWordPairs) {
    WordRunOptions opts;
    opts.words = 4;
    opts.width = 8;
    const auto backgrounds = counting_backgrounds(opts.width);
    const auto& test = march::march_c_minus();
    std::vector<InjectedBitFault> population;
    for (FaultKind kind : fault::all_fault_kinds()) {
        if (!fault::is_two_cell(kind)) continue;
        population.push_back(
            InjectedBitFault::coupling(kind, {1, 2}, {1, 5}));
        population.push_back(
            InjectedBitFault::coupling(kind, {2, 7}, {2, 0}));
    }
    const auto traces =
        WordBatchRunner(test, backgrounds, opts).run(population);
    ASSERT_EQ(traces.size(), population.size());
    for (std::size_t i = 0; i < population.size(); ++i) {
        const WordRunTrace oracle =
            guaranteed_trace(test, backgrounds, population[i], opts);
        ASSERT_EQ(traces[i], oracle)
            << fault_kind_name(population[i].kind) << " placement " << i;
    }
}

/// Affinity determinism: pinning policy moves workers between cores but
/// must never change a single output bit — the full trace battery agrees
/// across MTG_AFFINITY ∈ {off, compact, spread} pools of every size.
TEST(SparseTraceDifferential, BitIdenticalAcrossAffinityModes) {
    SplitMix64 rng(0xAFF1ULL);
    WordRunOptions opts;
    opts.words = 6;
    opts.width = 8;
    const auto backgrounds = counting_backgrounds(opts.width);
    const auto& test = march::march_c_minus();
    const auto population = mixed_population(rng, opts.words, opts.width);

    util::ThreadPool reference_pool(1, util::AffinityMode::Off);
    const auto reference =
        WordBatchRunner(test, backgrounds, opts, &reference_pool)
            .run(population);
    for (util::AffinityMode mode :
         {util::AffinityMode::Off, util::AffinityMode::Compact,
          util::AffinityMode::Spread})
        for (unsigned workers : {2u, 4u}) {
            util::ThreadPool pool(workers, mode);
            const auto traces =
                WordBatchRunner(test, backgrounds, opts, &pool)
                    .run(population);
            ASSERT_EQ(traces.size(), reference.size());
            for (std::size_t i = 0; i < traces.size(); ++i)
                ASSERT_EQ(traces[i], reference[i])
                    << "mode " << static_cast<int>(mode) << " workers "
                    << workers << " placement " << i;
        }
}

/// MemAvailable from /proc/meminfo in MiB; 0 when unreadable.
std::size_t mem_available_mib() {
    std::ifstream in("/proc/meminfo");
    std::string key;
    std::size_t kib = 0;
    while (in >> key >> kib) {
        if (key == "MemAvailable:") return kib / 1024;
        in.ignore(256, '\n');
    }
    return 0;
}

TEST(SparseTraceLargeMemory, Words4096Width8Completes) {
    // The point of the sparse grids: at words=4096 × width=8 the dense
    // observation grid alone is sites × backgrounds × 4096 × 8 blocks —
    // ~3.4 GiB of LaneBlock<8> per chunk for March C- — while the sparse
    // runs hold only the touched cells. Gated on RAM headroom for the
    // scalar oracle's own working set, not for the sparse run.
    if (mem_available_mib() < 1024)
        GTEST_SKIP() << "needs ~1 GiB available RAM";
    WordRunOptions opts;
    opts.words = 4096;
    opts.width = 8;
    const auto backgrounds = counting_backgrounds(opts.width);
    const auto& test = march::march_c_minus();
    std::vector<InjectedBitFault> population;
    population.push_back(
        InjectedBitFault::single(FaultKind::Saf0, {0, 0}));
    population.push_back(
        InjectedBitFault::single(FaultKind::TfUp, {4095, 7}));
    population.push_back(InjectedBitFault::coupling(
        FaultKind::CfidUp1, {100, 3}, {4000, 3}));
    population.push_back(InjectedBitFault::coupling(
        FaultKind::CfinDown, {2048, 1}, {2048, 6}));
    const auto traces =
        WordBatchRunner(test, backgrounds, opts).run(population);
    ASSERT_EQ(traces.size(), population.size());
    for (std::size_t i = 0; i < population.size(); ++i) {
        const WordRunTrace oracle =
            guaranteed_trace(test, backgrounds, population[i], opts);
        ASSERT_EQ(traces[i], oracle) << "placement " << i;
        EXPECT_TRUE(traces[i].detected) << "placement " << i;
    }
}

}  // namespace
}  // namespace mtg::word
