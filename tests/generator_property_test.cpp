#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/generator.hpp"
#include "march/library.hpp"
#include "sim/march_runner.hpp"
#include "util/rng.hpp"

namespace mtg::core {
namespace {

using fault::FaultKind;

/// Random fault subset, deterministic per seed. Always non-empty.
std::vector<FaultKind> random_subset(std::uint64_t seed) {
    SplitMix64 rng(seed);
    const auto& all = fault::all_fault_kinds();
    std::vector<FaultKind> subset;
    while (subset.empty()) {
        for (FaultKind k : all)
            if (rng.below(100) < 22) subset.push_back(k);
    }
    return subset;
}

class RandomListProperty : public ::testing::TestWithParam<int> {};

/// The central generator invariant, swept over random fault lists: the
/// result is always well-formed, complete (simulator-verified at every
/// placement and sweep order) and operation-minimal under the march-level
/// deletion check.
TEST_P(RandomListProperty, GeneratedTestIsSoundAndComplete) {
    const auto kinds = random_subset(static_cast<std::uint64_t>(GetParam()));
    std::string label;
    for (FaultKind k : kinds) label += fault::fault_kind_name(k) + " ";

    Generator generator;
    const GenerationResult result = generator.generate(kinds);
    ASSERT_TRUE(result.valid) << label << "-> " << result.summary();
    EXPECT_TRUE(sim::is_well_formed(result.test)) << label;
    EXPECT_FALSE(
        sim::first_uncovered(result.test, kinds).has_value())
        << label << "-> " << result.summary();
    // Completeness per the §6 coverage matrix too.
    EXPECT_TRUE(result.redundancy.complete) << label;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomListProperty, ::testing::Range(1, 21));

class MonotonicityProperty : public ::testing::TestWithParam<int> {};

/// Adding fault models never reduces the generated complexity: a superset
/// list yields a test at least as long as each of its parts.
TEST_P(MonotonicityProperty, SupersetNeverCheaper) {
    SplitMix64 rng(1000u + static_cast<std::uint64_t>(GetParam()));
    const auto& all = fault::all_fault_kinds();
    std::vector<FaultKind> small, large;
    for (FaultKind k : all) {
        const bool in_small = rng.below(100) < 12;
        const bool in_large = in_small || rng.below(100) < 12;
        if (in_small) small.push_back(k);
        if (in_large) large.push_back(k);
    }
    if (small.empty() || large.size() == small.size()) GTEST_SKIP();

    Generator generator;
    const auto small_result = generator.generate(small);
    const auto large_result = generator.generate(large);
    ASSERT_TRUE(small_result.valid);
    ASSERT_TRUE(large_result.valid);
    EXPECT_GE(large_result.complexity, small_result.complexity);
    // And the superset's test covers the subset list as well.
    EXPECT_FALSE(sim::first_uncovered(large_result.test, small).has_value());
}

INSTANTIATE_TEST_SUITE_P(Sweep, MonotonicityProperty, ::testing::Range(1, 11));

/// Generated tests never exceed the classical catch-all March SS (22n) and
/// never beat the information-theoretic floor of 2 ops (one write + one
/// read).
TEST(GeneratorBounds, ComplexityStaysInSaneRange) {
    Generator generator;
    for (int seed = 50; seed < 60; ++seed) {
        const auto kinds = random_subset(static_cast<std::uint64_t>(seed));
        const auto result = generator.generate(kinds);
        ASSERT_TRUE(result.valid);
        EXPECT_GE(result.complexity, 2);
        EXPECT_LE(result.complexity, march::march_ss().complexity());
    }
}

/// The generator's output never loses to the corresponding known March
/// test on the fault lists where the literature has a dedicated answer.
TEST(GeneratorVsLibrary, NeverWorseThanTheKnownEquivalent) {
    struct Case {
        const char* list;
        const char* known;
    };
    const Case cases[] = {
        {"SAF", "MATS"},
        {"SAF,ADF", "MATS+"},
        {"SAF,TF,ADF", "MATS++"},
        {"SAF,TF,ADF,CFin", "March X"},
        {"SAF,TF,ADF,CFin,CFid", "March C-"},
        {"SAF,TF,ADF,CFin,CFid,CFst", "March C-"},
    };
    Generator generator;
    for (const Case& c : cases) {
        const auto result = generator.generate_for(c.list);
        ASSERT_TRUE(result.valid) << c.list;
        EXPECT_LE(result.complexity,
                  march::find_march_test(c.known).test.complexity())
            << c.list << " vs " << c.known;
    }
}

}  // namespace
}  // namespace mtg::core
