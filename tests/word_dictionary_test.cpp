/// Word diagnosis dictionary tests: the word-path dictionary must
/// reproduce the bit-path FaultDictionary bucket-for-bucket in the regime
/// where both apply (width 1, solid background, words = memory_size — a
/// word test degenerates to the bit test), and its ambiguity-class /
/// resolution edge cases (escape bucket, identical signatures, single-
/// instance classes) must behave like the bit path's.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "diagnosis/dictionary.hpp"
#include "diagnosis/word_dictionary.hpp"
#include "march/library.hpp"
#include "march/parser.hpp"
#include "sim/batch_runner.hpp"
#include "word/background.hpp"
#include "word/word_batch_runner.hpp"

namespace mtg::diagnosis {
namespace {

using fault::FaultKind;

/// The word options that make a word test degenerate to the bit test of
/// sim::RunOptions{memory_size = 8}.
word::WordRunOptions bit_equivalent_opts() {
    word::WordRunOptions opts;
    opts.words = 8;
    opts.width = 1;
    opts.max_any_expansion = sim::RunOptions{}.max_any_expansion;
    return opts;
}

/// Maps a bit-path signature into the word-path encoding: cell c becomes
/// word c read under background 0 with failing bit mask 0b1.
WordSignature lifted(const Signature& sig) {
    WordSignature out;
    for (const sim::Observation& obs : sig.failing)
        out.failing.push_back({0, obs.site, obs.cell, 1});
    return out;
}

TEST(WordDictionary, EquivalentToBitDictionaryAtWidthOne) {
    const auto opts = bit_equivalent_opts();
    const auto backgrounds = word::solid_background(1);
    for (const char* kinds_text :
         {"SAF,TF", "SAF,TF,CFin,CFid", "CFst", "AF2"}) {
        const auto kinds = fault::parse_fault_kinds(kinds_text);
        for (const char* name : {"MATS++", "March C-"}) {
            const auto& test = march::find_march_test(name).test;
            const auto bit_dict = FaultDictionary::build(test, kinds);
            const auto word_dict =
                WordFaultDictionary::build(test, backgrounds, kinds, opts);

            EXPECT_EQ(word_dict.instance_count(), bit_dict.instance_count())
                << name << ' ' << kinds_text;
            EXPECT_EQ(word_dict.detected_count(), bit_dict.detected_count())
                << name << ' ' << kinds_text;
            EXPECT_EQ(word_dict.distinguished_count(),
                      bit_dict.distinguished_count())
                << name << ' ' << kinds_text;
            EXPECT_DOUBLE_EQ(word_dict.resolution(), bit_dict.resolution())
                << name << ' ' << kinds_text;
            ASSERT_EQ(word_dict.entries().size(), bit_dict.entries().size())
                << name << ' ' << kinds_text;
            // Bucket-for-bucket: every bit bucket maps to a word bucket
            // holding exactly the same instances.
            for (const DictionaryEntry& entry : bit_dict.entries())
                EXPECT_EQ(word_dict.diagnose(lifted(entry.signature)),
                          entry.instances)
                    << name << ' ' << kinds_text << " bucket "
                    << entry.signature.str();
        }
    }
}

TEST(WordDictionary, EscapesLandInTheEscapeBucket) {
    // MATS misses TF<v>: its instance must map to the empty signature —
    // in the word path exactly as in the bit path.
    const auto kinds = fault::parse_fault_kinds("SAF,TF<v>");
    const auto dict = WordFaultDictionary::build(
        march::mats(), word::solid_background(1), kinds,
        bit_equivalent_opts());
    EXPECT_EQ(dict.detected_count(), 2);  // SAF0, SAF1
    EXPECT_FALSE(WordSignature{}.detected());
    const auto escapes = dict.diagnose(WordSignature{});
    ASSERT_EQ(escapes.size(), 1u);
    EXPECT_EQ(escapes[0].kind, FaultKind::TfDown);
}

TEST(WordDictionary, IdenticalSignaturesShareABucket) {
    // The two roles of a decoder-map fault are behaviourally equivalent,
    // so they must collapse into one ambiguity class.
    const auto dict = WordFaultDictionary::build(
        march::march_c_minus(), word::solid_background(1),
        fault::parse_fault_kinds("AF2"), bit_equivalent_opts());
    EXPECT_EQ(dict.instance_count(), 2);
    EXPECT_EQ(dict.detected_count(), 2);
    EXPECT_EQ(dict.distinguished_count(), 0);
    ASSERT_EQ(dict.entries().size(), 1u);
    EXPECT_EQ(dict.entries().front().instances.size(), 2u);
}

TEST(WordDictionary, SingleInstanceClassesAreDistinguished) {
    // Address-aware word observations separate the two roles of an
    // idempotent coupling fault (same sites, different victim words).
    const auto dict = WordFaultDictionary::build(
        march::march_c_minus(), word::solid_background(1),
        fault::parse_fault_kinds("CFid<^,0>"), bit_equivalent_opts());
    EXPECT_EQ(dict.detected_count(), 2);
    EXPECT_EQ(dict.distinguished_count(), 2);
    EXPECT_DOUBLE_EQ(dict.resolution(), 1.0);
}

/// The hash-bucket lookup must agree with the original linear bucket scan
/// on every known signature, the escape bucket, and unknown signatures.
TEST(WordDictionary, HashDiagnoseMatchesLinearScan) {
    word::WordRunOptions opts;  // 8 words × 8 bits
    const auto dict = WordFaultDictionary::build(
        march::march_c_minus(), word::counting_backgrounds(opts.width),
        fault::parse_fault_kinds("SAF,TF,CFin,CFid"), opts);
    for (const auto& entry : dict.entries())
        EXPECT_EQ(dict.diagnose(entry.signature),
                  dict.diagnose_linear(entry.signature))
            << entry.signature.str();
    const WordSignature escape;
    EXPECT_EQ(dict.diagnose(escape), dict.diagnose_linear(escape));
    const WordSignature unknown{{{0, {0, 99}, 7, 1}}};
    EXPECT_EQ(dict.diagnose(unknown), dict.diagnose_linear(unknown));
    EXPECT_TRUE(dict.diagnose(unknown).empty());
}

TEST(WordDictionary, WidthEightCountingBackgrounds) {
    // The genuinely word-oriented regime: 8×8 memory, counting
    // backgrounds. Every instance must be accounted for, diagnose must
    // round-trip every bucket, and the scalar-oracle signature of a
    // placed instance must equal the bucket the packed build put it in.
    word::WordRunOptions opts;  // 8 words × 8 bits
    const auto backgrounds = word::counting_backgrounds(opts.width);
    const auto kinds = fault::parse_fault_kinds("SAF,TF,CFin,CFid");
    const auto& test = march::march_c_minus();
    const auto dict =
        WordFaultDictionary::build(test, backgrounds, kinds, opts);

    const auto instances = fault::instantiate(kinds);
    EXPECT_EQ(dict.instance_count(),
              static_cast<int>(instances.size()));
    int total = 0;
    for (const auto& entry : dict.entries())
        total += static_cast<int>(entry.instances.size());
    EXPECT_EQ(total, dict.instance_count());
    EXPECT_GE(dict.resolution(), 0.0);
    EXPECT_LE(dict.resolution(), 1.0);
    for (const auto& entry : dict.entries())
        EXPECT_EQ(dict.diagnose(entry.signature), entry.instances);

    // Packed build vs scalar oracle, instance by instance.
    for (const fault::FaultInstance& inst : instances) {
        const auto sig = word_signature_of(
            test, backgrounds, word::place_instance(inst, opts), opts);
        const auto bucket = dict.diagnose(sig);
        EXPECT_NE(std::find(bucket.begin(), bucket.end(), inst),
                  bucket.end())
            << inst.name() << " not in its own bucket " << sig.str();
    }
}

TEST(WordDictionary, MoreBackgroundsNeverHurtResolution) {
    // The word-path analogue of "more reads never hurt": the counting
    // set observes strictly more than the solid background alone.
    word::WordRunOptions opts;
    const auto kinds = fault::parse_fault_kinds("SAF,TF,CFid");
    const auto& test = march::march_c_minus();
    const auto coarse = WordFaultDictionary::build(
        test, word::solid_background(opts.width), kinds, opts);
    const auto fine = WordFaultDictionary::build(
        test, word::counting_backgrounds(opts.width), kinds, opts);
    EXPECT_GE(fine.detected_count(), coarse.detected_count());
    EXPECT_GE(fine.distinguished_count(), coarse.distinguished_count());
}

TEST(WordSignatureRendering, PrintsObservationsAndEscape) {
    EXPECT_EQ(WordSignature{}.str(), "(escape)");
    WordSignature sig;
    sig.failing.push_back({0, {1, 0}, 2, 0b101});
    sig.failing.push_back({2, {4, 2}, 5, 0b1});
    EXPECT_TRUE(sig.detected());
    EXPECT_EQ(sig.str(), "B0.E1.0@w2#5 B2.E4.2@w5#1");
}

TEST(WordPlaceInstance, MirrorsBitPlacement) {
    const auto opts = bit_equivalent_opts();
    const auto instances =
        fault::instantiate(fault::parse_fault_kinds("SAF,CFid<^,0>"));
    for (const fault::FaultInstance& inst : instances) {
        const auto bit = sim::place_instance(inst, opts.words);
        const auto word = word::place_instance(inst, opts);
        EXPECT_EQ(word.a.word, bit.cell_a) << inst.name();
        EXPECT_EQ(word.a.bit, 0) << inst.name();
        if (fault::is_two_cell(inst.kind)) {
            EXPECT_EQ(word.b.word, bit.cell_b) << inst.name();
            EXPECT_EQ(word.b.bit, 0) << inst.name();
        }
    }
}

}  // namespace
}  // namespace mtg::diagnosis
