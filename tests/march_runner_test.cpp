#include <gtest/gtest.h>

#include "march/library.hpp"
#include "march/parser.hpp"
#include "sim/march_runner.hpp"

namespace mtg::sim {
namespace {

using fault::FaultKind;
using march::parse_march;

TEST(ReadSites, EnumeratesInTextualOrder) {
    const auto test = parse_march("{~(w0); ^(r0,w1); v(r1,w0,r0)}");
    const auto sites = read_sites(test);
    ASSERT_EQ(sites.size(), 3u);
    EXPECT_EQ(sites[0], (ReadSite{1, 0}));
    EXPECT_EQ(sites[1], (ReadSite{2, 0}));
    EXPECT_EQ(sites[2], (ReadSite{2, 2}));
}

TEST(RunOnce, FaultFreeRunDetectsNothing) {
    const auto test = march::march_c_minus();
    const RunTrace trace = run_once(test, {}, 0u);
    EXPECT_FALSE(trace.detected);
    EXPECT_TRUE(trace.failing_reads.empty());
}

TEST(RunOnce, ReportsFailingReadSite) {
    const auto test = parse_march("{~(w0); ~(r0)}");
    const RunTrace trace =
        run_once(test, {InjectedFault::single(FaultKind::Saf1, 3)}, 0u);
    EXPECT_TRUE(trace.detected);
    ASSERT_EQ(trace.failing_reads.size(), 1u);
    EXPECT_EQ(trace.failing_reads[0], (ReadSite{1, 0}));
}

TEST(Detects, RequiresDetectionUnderEveryAnyOrderExpansion) {
    // This test detects the fault only when the second element happens to
    // run ascending; with ⇕ it is not guaranteed.
    const auto asc_only = parse_march("{~(w0); ^(r0,w1); ~(r1)}");
    // CFid<^,0> with aggressor 1 (low) and victim 2 (high): ascending
    // sweep of element 2 excites (w1 on cell 1 while cell 2 still 0...).
    const InjectedFault f =
        InjectedFault::coupling(FaultKind::CfidUp0, 1, 2);
    // MATS-like test without direction guarantees cannot guarantee
    // detection of CFids in general; March C- can.
    EXPECT_TRUE(detects(march::march_c_minus(), f));
    (void)asc_only;
}

TEST(Detects, MarchCMinusDetectsRepresentativeFaults) {
    const auto test = march::march_c_minus();
    EXPECT_TRUE(detects(test, InjectedFault::single(FaultKind::Saf0, 0)));
    EXPECT_TRUE(detects(test, InjectedFault::single(FaultKind::TfDown, 7)));
    EXPECT_TRUE(detects(test, InjectedFault::coupling(FaultKind::CfinUp, 2, 5)));
    EXPECT_TRUE(detects(test, InjectedFault::coupling(FaultKind::CfidDown1, 6, 1)));
}

TEST(Detects, ScanMissesCouplingFaults) {
    const auto test = march::scan();
    EXPECT_FALSE(
        detects(test, InjectedFault::coupling(FaultKind::CfidUp0, 2, 1)));
}

TEST(CoversEverywhere, PlacementsAtEveryCellAndPair) {
    EXPECT_TRUE(covers_everywhere(march::mats(), FaultKind::Saf0));
    EXPECT_TRUE(covers_everywhere(march::mats(), FaultKind::Saf1));
    // MATS cannot cover idempotent coupling faults.
    EXPECT_FALSE(covers_everywhere(march::mats(), FaultKind::CfidUp0));
}

TEST(FirstUncovered, FindsTheGap) {
    const auto gap = first_uncovered(march::mats(),
                                     {FaultKind::Saf0, FaultKind::CfidUp0});
    ASSERT_TRUE(gap.has_value());
    EXPECT_EQ(*gap, FaultKind::CfidUp0);

    EXPECT_FALSE(first_uncovered(march::mats(), {FaultKind::Saf0}).has_value());
}

TEST(IsWellFormed, LibraryTestsNeverReadUnknownOrWrongValues) {
    for (const auto& named : march::known_march_tests())
        EXPECT_TRUE(is_well_formed(named.test)) << named.name;
}

TEST(IsWellFormed, RejectsReadBeforeInitialisation) {
    EXPECT_FALSE(is_well_formed(parse_march("{~(r0); ~(w0)}")));
}

TEST(IsWellFormed, RejectsWrongExpectedValue) {
    EXPECT_FALSE(is_well_formed(parse_march("{~(w0); ~(r1)}")));
}

TEST(GuaranteedFailingReads, IntersectionOverExpansions) {
    // SAF1 at some cell: the r0 of element 1 always fails regardless of
    // sweep orders.
    const auto test = parse_march("{~(w0); ~(r0); ~(w1); ~(r1)}");
    const auto sites = guaranteed_failing_reads(
        test, InjectedFault::single(FaultKind::Saf1, 2));
    ASSERT_FALSE(sites.empty());
    EXPECT_EQ(sites[0], (ReadSite{1, 0}));
}

TEST(GuaranteedFailingReads, EmptyWhenUndetected) {
    const auto sites = guaranteed_failing_reads(
        march::scan(), InjectedFault::coupling(FaultKind::CfidUp0, 1, 2));
    EXPECT_TRUE(sites.empty());
}

TEST(RunOptions, SmallerMemoryStillWorks) {
    RunOptions opts;
    opts.memory_size = 3;
    EXPECT_TRUE(covers_everywhere(march::march_c_minus(), FaultKind::CfidUp1,
                                  opts));
}

}  // namespace
}  // namespace mtg::sim
