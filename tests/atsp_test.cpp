#include <gtest/gtest.h>

#include <algorithm>

#include "atsp/branch_bound.hpp"
#include "atsp/heuristics.hpp"
#include "atsp/hungarian.hpp"
#include "atsp/path.hpp"
#include "util/rng.hpp"

namespace mtg::atsp {
namespace {

CostMatrix random_instance(int n, SplitMix64& rng, Cost max_cost = 50) {
    CostMatrix m(n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j)
            if (i != j)
                m.set(i, j, static_cast<Cost>(rng.below(
                                static_cast<std::uint64_t>(max_cost) + 1)));
    return m;
}

TEST(CostMatrix, DiagonalForbidden) {
    CostMatrix m(3, 7);
    EXPECT_TRUE(m.is_forbidden(1, 1));
    EXPECT_EQ(m.at(0, 1), 7);
    m.forbid(0, 1);
    EXPECT_TRUE(m.is_forbidden(0, 1));
}

TEST(Tour, CostAndFeasibility) {
    CostMatrix m(3, 1);
    m.set(0, 1, 2);
    m.set(1, 2, 3);
    m.set(2, 0, 4);
    EXPECT_EQ(tour_cost(m, {0, 1, 2}), 9);
    EXPECT_TRUE(tour_feasible(m, {0, 1, 2}));
    EXPECT_FALSE(tour_feasible(m, {0, 1}));       // not a permutation
    EXPECT_FALSE(tour_feasible(m, {0, 1, 1}));    // duplicate
    m.forbid(1, 2);
    EXPECT_FALSE(tour_feasible(m, {0, 1, 2}));
}

TEST(Tour, RotateToFront) {
    EXPECT_EQ(rotate_to_front({3, 1, 4, 2}, 4), (std::vector<int>{4, 2, 3, 1}));
}

TEST(Hungarian, SolvesTextbookAssignment) {
    CostMatrix m(3, 0);
    // Row i assigned column (i+1)%3 is optimal here.
    const Cost costs[3][3] = {{10, 1, 10}, {10, 10, 1}, {1, 10, 10}};
    for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
            if (i != j) m.set(i, j, costs[i][j]);
    // Diagonal entries stay forbidden; the optimum avoids them anyway.
    const Assignment ap = solve_assignment(m);
    EXPECT_TRUE(ap.feasible);
    EXPECT_EQ(ap.cost, 3);
    EXPECT_EQ(ap.to[0], 1);
    EXPECT_EQ(ap.to[1], 2);
    EXPECT_EQ(ap.to[2], 0);
}

TEST(Hungarian, AssignmentIsLowerBoundOfTour) {
    SplitMix64 rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = rng.range(3, 8);
        const CostMatrix m = random_instance(n, rng);
        const Assignment ap = solve_assignment(m);
        const auto tour = solve_brute_force(m);
        ASSERT_TRUE(tour.has_value());
        EXPECT_LE(ap.cost, tour->cost) << "trial " << trial;
    }
}

TEST(Hungarian, CycleDecomposition) {
    // Permutation (0->1->0)(2->3->4->2).
    const auto cycles = assignment_cycles({1, 0, 3, 4, 2});
    ASSERT_EQ(cycles.size(), 2u);
    EXPECT_EQ(cycles[0].size(), 2u);
    EXPECT_EQ(cycles[1].size(), 3u);
}

TEST(Heuristics, NearestNeighbourProducesValidTour) {
    SplitMix64 rng(11);
    const CostMatrix m = random_instance(6, rng);
    const auto tour = nearest_neighbour(m, 0);
    ASSERT_TRUE(tour.has_value());
    EXPECT_TRUE(tour_feasible(m, tour->order));
    EXPECT_EQ(tour->cost, tour_cost(m, tour->order));
}

TEST(Heuristics, OrOptNeverWorsens) {
    SplitMix64 rng(13);
    for (int trial = 0; trial < 10; ++trial) {
        const CostMatrix m = random_instance(8, rng);
        const auto nn = best_nearest_neighbour(m);
        ASSERT_TRUE(nn.has_value());
        const Tour improved = or_opt(m, *nn);
        EXPECT_LE(improved.cost, nn->cost);
        EXPECT_TRUE(tour_feasible(m, improved.order));
    }
}

TEST(Exact, MatchesBruteForceOnRandomInstances) {
    SplitMix64 rng(2002);
    for (int trial = 0; trial < 40; ++trial) {
        const int n = rng.range(3, 8);
        const CostMatrix m = random_instance(n, rng);
        const auto exact = solve_exact(m);
        const auto brute = solve_brute_force(m);
        ASSERT_EQ(exact.has_value(), brute.has_value()) << "trial " << trial;
        if (exact) {
            EXPECT_EQ(exact->cost, brute->cost) << "trial " << trial;
            EXPECT_TRUE(tour_feasible(m, exact->order));
        }
    }
}

TEST(Exact, HandlesForbiddenArcs) {
    SplitMix64 rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = rng.range(4, 7);
        CostMatrix m = random_instance(n, rng);
        // Forbid a third of the arcs.
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < n; ++j)
                if (i != j && rng.below(3) == 0) m.forbid(i, j);
        const auto exact = solve_exact(m);
        const auto brute = solve_brute_force(m);
        ASSERT_EQ(exact.has_value(), brute.has_value()) << "trial " << trial;
        if (exact) EXPECT_EQ(exact->cost, brute->cost) << "trial " << trial;
    }
}

TEST(Exact, ReportsSearchStats) {
    SplitMix64 rng(17);
    const CostMatrix m = random_instance(9, rng);
    SolveStats stats;
    (void)solve_exact(m, &stats);
    EXPECT_GT(stats.nodes_explored, 0);
    EXPECT_GT(stats.ap_solves, 0);
}

TEST(Exact, SingleNodeDegenerate) {
    CostMatrix m(1);
    const auto tour = solve_exact(m);
    ASSERT_TRUE(tour.has_value());
    EXPECT_EQ(tour->cost, 0);
}

TEST(Exact, InfeasibleInstanceReturnsNullopt) {
    CostMatrix m(3, 2);
    // Node 2 has no outgoing arcs.
    m.forbid(2, 0);
    m.forbid(2, 1);
    EXPECT_FALSE(solve_exact(m).has_value());
}

/// Oracle for the path solver: brute-force over all permutations.
std::optional<std::pair<std::vector<int>, Cost>> brute_path(
    const CostMatrix& m, const PathOptions& options) {
    const int n = m.size();
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
    std::optional<std::pair<std::vector<int>, Cost>> best;
    do {
        if (!options.allowed_starts.empty() &&
            std::find(options.allowed_starts.begin(),
                      options.allowed_starts.end(),
                      perm[0]) == options.allowed_starts.end())
            continue;
        Cost cost = options.start_cost.empty()
                        ? 0
                        : options.start_cost[static_cast<std::size_t>(perm[0])];
        bool ok = true;
        for (int k = 0; k + 1 < n && ok; ++k) {
            if (m.is_forbidden(perm[static_cast<std::size_t>(k)],
                               perm[static_cast<std::size_t>(k + 1)]))
                ok = false;
            else
                cost += m.at(perm[static_cast<std::size_t>(k)],
                             perm[static_cast<std::size_t>(k + 1)]);
        }
        if (ok && (!best || cost < best->second)) best = {{perm}, cost};
    } while (std::next_permutation(perm.begin(), perm.end()));
    return best;
}

TEST(Path, MatchesBruteForce) {
    SplitMix64 rng(23);
    for (int trial = 0; trial < 25; ++trial) {
        const int n = rng.range(2, 7);
        const CostMatrix m = random_instance(n, rng);
        PathOptions options;
        for (int v = 0; v < n; ++v)
            options.start_cost.push_back(
                static_cast<Cost>(rng.below(4)));
        const auto path = solve_shortest_path(m, options);
        const auto brute = brute_path(m, options);
        ASSERT_EQ(path.has_value(), brute.has_value()) << "trial " << trial;
        if (path) EXPECT_EQ(path->cost, brute->second) << "trial " << trial;
    }
}

TEST(Path, HonoursAllowedStarts) {
    SplitMix64 rng(29);
    const int n = 6;
    const CostMatrix m = random_instance(n, rng);
    PathOptions options;
    options.allowed_starts = {3, 5};
    const auto path = solve_shortest_path(m, options);
    ASSERT_TRUE(path.has_value());
    EXPECT_TRUE(path->order.front() == 3 || path->order.front() == 5);
    const auto brute = brute_path(m, options);
    EXPECT_EQ(path->cost, brute->second);
}

TEST(Path, EmptyAllowedStartSetMeansUnconstrained) {
    SplitMix64 rng(31);
    const CostMatrix m = random_instance(5, rng);
    EXPECT_TRUE(solve_shortest_path(m, {}).has_value());
}

TEST(Path, SingleNode) {
    CostMatrix m(1);
    PathOptions options;
    options.start_cost = {2};
    const auto path = solve_shortest_path(m, options);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->cost, 2);
    EXPECT_EQ(path->order, std::vector<int>{0});
}

}  // namespace
}  // namespace mtg::atsp
