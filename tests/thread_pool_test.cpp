#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace mtg::util {
namespace {

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
    for (unsigned workers : {1u, 2u, 4u}) {
        ThreadPool pool(workers);
        constexpr std::size_t kCount = 1000;
        std::vector<std::atomic<int>> hits(kCount);
        pool.parallel_for(kCount, [&](std::size_t i, unsigned) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < kCount; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " workers "
                                         << workers;
    }
}

TEST(ThreadPool, WorkerIdsStayBelowWorkerCount) {
    ThreadPool pool(3);
    ASSERT_EQ(pool.worker_count(), 3u);
    std::vector<std::atomic<int>> by_worker(pool.worker_count());
    pool.parallel_for(500, [&](std::size_t, unsigned worker) {
        ASSERT_LT(worker, pool.worker_count());
        by_worker[worker].fetch_add(1, std::memory_order_relaxed);
    });
    int total = 0;
    for (auto& w : by_worker) total += w.load();
    EXPECT_EQ(total, 500);
}

TEST(ThreadPool, PerWorkerAccumulatorsMergeToTheFullSet) {
    // The usage pattern of the batched runners: lock-free per-worker
    // partial results, merged after the loop drains.
    ThreadPool pool(4);
    std::vector<std::vector<std::size_t>> acc(pool.worker_count());
    pool.parallel_for(257, [&](std::size_t i, unsigned worker) {
        acc[worker].push_back(i);
    });
    std::set<std::size_t> merged;
    for (const auto& partial : acc) merged.insert(partial.begin(), partial.end());
    EXPECT_EQ(merged.size(), 257u);
}

TEST(ThreadPool, ZeroAndSingleIndexLoops) {
    ThreadPool pool(4);
    int runs = 0;
    pool.parallel_for(0, [&](std::size_t, unsigned) { ++runs; });
    EXPECT_EQ(runs, 0);
    pool.parallel_for(1, [&](std::size_t i, unsigned worker) {
        EXPECT_EQ(i, 0u);
        EXPECT_EQ(worker, 0u);  // single-index loops run inline
        ++runs;
    });
    EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, ExceptionsPropagateToTheCaller) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](std::size_t i, unsigned) {
                                       if (i == 37)
                                           throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool stays usable after a failed loop.
    std::atomic<int> ok{0};
    pool.parallel_for(10, [&](std::size_t, unsigned) { ++ok; });
    EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, NestedLoopsRunInlineOnTheEnclosingWorker) {
    // A same-pool nested loop runs inline and keeps reporting the
    // enclosing worker's id, so per-worker accumulator slots never
    // collide across concurrently-nesting bodies.
    ThreadPool pool(2);
    std::atomic<int> inner_total{0};
    pool.parallel_for(8, [&](std::size_t, unsigned outer) {
        pool.parallel_for(8, [&](std::size_t, unsigned inner) {
            EXPECT_EQ(inner, outer);
            inner_total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(inner_total.load(), 64);

    // Cross-pool nesting also runs inline; the foreign pool's id space is
    // unknown to the nested thread, so it reports worker 0 there.
    ThreadPool other(2);
    std::atomic<int> cross_total{0};
    pool.parallel_for(4, [&](std::size_t, unsigned) {
        other.parallel_for(4, [&](std::size_t, unsigned inner) {
            EXPECT_EQ(inner, 0u);
            cross_total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(cross_total.load(), 16);
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
    ThreadPool pool(3);
    std::atomic<long> total{0};
    for (int round = 0; round < 50; ++round)
        pool.parallel_for(17, [&](std::size_t i, unsigned) {
            total.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
        });
    EXPECT_EQ(total.load(), 50L * (16 * 17 / 2));
}

TEST(ThreadPool, ParsesWorkerCountOverride) {
    EXPECT_EQ(ThreadPool::parse_worker_count(nullptr, 5), 5u);
    EXPECT_EQ(ThreadPool::parse_worker_count("", 5), 5u);
    EXPECT_EQ(ThreadPool::parse_worker_count("3", 5), 3u);
    EXPECT_EQ(ThreadPool::parse_worker_count("1", 5), 1u);
    EXPECT_EQ(ThreadPool::parse_worker_count("0", 5), 5u);
    EXPECT_EQ(ThreadPool::parse_worker_count("-2", 5), 5u);
    EXPECT_EQ(ThreadPool::parse_worker_count("8x", 5), 5u);
    EXPECT_EQ(ThreadPool::parse_worker_count("notanumber", 5), 5u);
    EXPECT_EQ(ThreadPool::parse_worker_count("99999", 5), 5u);  // > cap
}

TEST(ThreadPool, StealingRebalancesSkewedWork) {
    // One range hides almost all the work behind a single slow prefix:
    // worker 0's initial range [0, 250) carries long items, so the other
    // workers must steal from it to finish. Exactly-once execution proves
    // range splits never duplicate or drop indices.
    ThreadPool pool(4);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    std::atomic<int> stolen_by_others{0};
    pool.parallel_for(kCount, [&](std::size_t i, unsigned worker) {
        if (i < 250) {
            // Skewed cost: busy-wait so the front range drains slowly.
            for (volatile int spin = 0; spin < 2000; ++spin) {
            }
            if (worker != 0)
                stolen_by_others.fetch_add(1, std::memory_order_relaxed);
        }
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    // Not asserted > 0: a 1-core host may legitimately drain in order.
    SUCCEED() << "items stolen from the slow range: "
              << stolen_by_others.load();
}

TEST(ThreadPool, ExactlyOnceAcrossManyShapes) {
    // Range handout + batch stealing across worker counts and loop sizes,
    // including counts that do not divide evenly and counts smaller than
    // the worker count (some workers start with empty ranges and must
    // steal or exit).
    for (unsigned workers : {2u, 3u, 8u}) {
        ThreadPool pool(workers);
        for (std::size_t count : {2ul, 7ul, 63ul, 64ul, 257ul, 4096ul}) {
            std::vector<std::atomic<int>> hits(count);
            pool.parallel_for(count, [&](std::size_t i, unsigned) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
            });
            for (std::size_t i = 0; i < count; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "workers " << workers << " count " << count
                    << " index " << i;
        }
    }
}

TEST(ThreadPool, GlobalPoolExistsAndWorks) {
    ThreadPool& pool = ThreadPool::global();
    ASSERT_GE(pool.worker_count(), 1u);
    std::atomic<int> runs{0};
    pool.parallel_for(32, [&](std::size_t, unsigned) { ++runs; });
    EXPECT_EQ(runs.load(), 32);
}

}  // namespace
}  // namespace mtg::util
