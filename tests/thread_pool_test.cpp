#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/affinity.hpp"
#include "util/thread_pool.hpp"

namespace mtg::util {
namespace {

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
    for (unsigned workers : {1u, 2u, 4u}) {
        ThreadPool pool(workers);
        constexpr std::size_t kCount = 1000;
        std::vector<std::atomic<int>> hits(kCount);
        pool.parallel_for(kCount, [&](std::size_t i, unsigned) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < kCount; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " workers "
                                         << workers;
    }
}

TEST(ThreadPool, WorkerIdsStayBelowWorkerCount) {
    ThreadPool pool(3);
    ASSERT_EQ(pool.worker_count(), 3u);
    std::vector<std::atomic<int>> by_worker(pool.worker_count());
    pool.parallel_for(500, [&](std::size_t, unsigned worker) {
        ASSERT_LT(worker, pool.worker_count());
        by_worker[worker].fetch_add(1, std::memory_order_relaxed);
    });
    int total = 0;
    for (auto& w : by_worker) total += w.load();
    EXPECT_EQ(total, 500);
}

TEST(ThreadPool, PerWorkerAccumulatorsMergeToTheFullSet) {
    // The usage pattern of the batched runners: lock-free per-worker
    // partial results, merged after the loop drains.
    ThreadPool pool(4);
    std::vector<std::vector<std::size_t>> acc(pool.worker_count());
    pool.parallel_for(257, [&](std::size_t i, unsigned worker) {
        acc[worker].push_back(i);
    });
    std::set<std::size_t> merged;
    for (const auto& partial : acc) merged.insert(partial.begin(), partial.end());
    EXPECT_EQ(merged.size(), 257u);
}

TEST(ThreadPool, ZeroAndSingleIndexLoops) {
    ThreadPool pool(4);
    int runs = 0;
    pool.parallel_for(0, [&](std::size_t, unsigned) { ++runs; });
    EXPECT_EQ(runs, 0);
    pool.parallel_for(1, [&](std::size_t i, unsigned worker) {
        EXPECT_EQ(i, 0u);
        EXPECT_EQ(worker, 0u);  // single-index loops run inline
        ++runs;
    });
    EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, ExceptionsPropagateToTheCaller) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallel_for(100,
                                   [&](std::size_t i, unsigned) {
                                       if (i == 37)
                                           throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool stays usable after a failed loop.
    std::atomic<int> ok{0};
    pool.parallel_for(10, [&](std::size_t, unsigned) { ++ok; });
    EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, NestedLoopsRunInlineOnTheEnclosingWorker) {
    // A same-pool nested loop runs inline and keeps reporting the
    // enclosing worker's id, so per-worker accumulator slots never
    // collide across concurrently-nesting bodies.
    ThreadPool pool(2);
    std::atomic<int> inner_total{0};
    pool.parallel_for(8, [&](std::size_t, unsigned outer) {
        pool.parallel_for(8, [&](std::size_t, unsigned inner) {
            EXPECT_EQ(inner, outer);
            inner_total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(inner_total.load(), 64);

    // Cross-pool nesting also runs inline; the foreign pool's id space is
    // unknown to the nested thread, so it reports worker 0 there.
    ThreadPool other(2);
    std::atomic<int> cross_total{0};
    pool.parallel_for(4, [&](std::size_t, unsigned) {
        other.parallel_for(4, [&](std::size_t, unsigned inner) {
            EXPECT_EQ(inner, 0u);
            cross_total.fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_EQ(cross_total.load(), 16);
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
    ThreadPool pool(3);
    std::atomic<long> total{0};
    for (int round = 0; round < 50; ++round)
        pool.parallel_for(17, [&](std::size_t i, unsigned) {
            total.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
        });
    EXPECT_EQ(total.load(), 50L * (16 * 17 / 2));
}

TEST(ThreadPool, ParsesWorkerCountOverride) {
    EXPECT_EQ(ThreadPool::parse_worker_count(nullptr, 5), 5u);
    EXPECT_EQ(ThreadPool::parse_worker_count("", 5), 5u);
    EXPECT_EQ(ThreadPool::parse_worker_count("3", 5), 3u);
    EXPECT_EQ(ThreadPool::parse_worker_count("1", 5), 1u);
    EXPECT_EQ(ThreadPool::parse_worker_count("0", 5), 5u);
    EXPECT_EQ(ThreadPool::parse_worker_count("-2", 5), 5u);
    EXPECT_EQ(ThreadPool::parse_worker_count("8x", 5), 5u);
    EXPECT_EQ(ThreadPool::parse_worker_count("notanumber", 5), 5u);
    EXPECT_EQ(ThreadPool::parse_worker_count("99999", 5), 5u);  // > cap
}

TEST(ThreadPool, StealingRebalancesSkewedWork) {
    // One range hides almost all the work behind a single slow prefix:
    // worker 0's initial range [0, 250) carries long items, so the other
    // workers must steal from it to finish. Exactly-once execution proves
    // range splits never duplicate or drop indices.
    ThreadPool pool(4);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    std::atomic<int> stolen_by_others{0};
    pool.parallel_for(kCount, [&](std::size_t i, unsigned worker) {
        if (i < 250) {
            // Skewed cost: busy-wait so the front range drains slowly.
            for (volatile int spin = 0; spin < 2000; ++spin) {
            }
            if (worker != 0)
                stolen_by_others.fetch_add(1, std::memory_order_relaxed);
        }
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    // Not asserted > 0: a 1-core host may legitimately drain in order.
    SUCCEED() << "items stolen from the slow range: "
              << stolen_by_others.load();
}

TEST(ThreadPool, ExactlyOnceAcrossManyShapes) {
    // Range handout + batch stealing across worker counts and loop sizes,
    // including counts that do not divide evenly and counts smaller than
    // the worker count (some workers start with empty ranges and must
    // steal or exit).
    for (unsigned workers : {2u, 3u, 8u}) {
        ThreadPool pool(workers);
        for (std::size_t count : {2ul, 7ul, 63ul, 64ul, 257ul, 4096ul}) {
            std::vector<std::atomic<int>> hits(count);
            pool.parallel_for(count, [&](std::size_t i, unsigned) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
            });
            for (std::size_t i = 0; i < count; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "workers " << workers << " count " << count
                    << " index " << i;
        }
    }
}

TEST(ThreadPool, GlobalPoolExistsAndWorks) {
    ThreadPool& pool = ThreadPool::global();
    ASSERT_GE(pool.worker_count(), 1u);
    std::atomic<int> runs{0};
    pool.parallel_for(32, [&](std::size_t, unsigned) { ++runs; });
    EXPECT_EQ(runs.load(), 32);
}

TEST(Affinity, ParsesAffinityMode) {
    EXPECT_EQ(parse_affinity_mode(nullptr), AffinityMode::Auto);
    EXPECT_EQ(parse_affinity_mode(""), AffinityMode::Auto);
    EXPECT_EQ(parse_affinity_mode("auto"), AffinityMode::Auto);
    EXPECT_EQ(parse_affinity_mode("off"), AffinityMode::Off);
    EXPECT_EQ(parse_affinity_mode("compact"), AffinityMode::Compact);
    EXPECT_EQ(parse_affinity_mode("spread"), AffinityMode::Spread);
    EXPECT_EQ(parse_affinity_mode("COMPACT"), AffinityMode::Auto);
    EXPECT_EQ(parse_affinity_mode("numa"), AffinityMode::Auto);
}

TEST(Affinity, ParsesSysfsCpuLists) {
    using List = std::vector<int>;
    EXPECT_EQ(parse_cpu_list("0-3"), (List{0, 1, 2, 3}));
    EXPECT_EQ(parse_cpu_list("0-3,8,10-11"), (List{0, 1, 2, 3, 8, 10, 11}));
    EXPECT_EQ(parse_cpu_list("5"), (List{5}));
    EXPECT_EQ(parse_cpu_list("0-1,1-2"), (List{0, 1, 2}));  // de-duplicated
    EXPECT_EQ(parse_cpu_list("3,1,2"), (List{1, 2, 3}));    // sorted
    EXPECT_EQ(parse_cpu_list("0-3\n"), (List{0, 1, 2, 3}));  // sysfs newline
    EXPECT_EQ(parse_cpu_list(""), List{});
    EXPECT_EQ(parse_cpu_list("abc"), List{});
    EXPECT_EQ(parse_cpu_list("3-1"), List{});  // inverted range
    EXPECT_EQ(parse_cpu_list("-1"), List{});
}

/// A synthetic two-node topology pins compact workers into node 0 first
/// and deals spread workers across nodes; worker 0 (the caller) is never
/// pinned but keeps a node slot for steal grouping.
TEST(Affinity, PlansCompactAndSpreadPlacements) {
    CpuTopology topo;
    topo.node_cpus = {{0, 1, 2, 3}, {4, 5, 6, 7}};

    const auto compact = plan_worker_cpus(topo, AffinityMode::Compact, 4);
    ASSERT_EQ(compact.size(), 4u);
    EXPECT_EQ(compact[0].cpu, -1);  // caller stays unpinned
    EXPECT_EQ(compact[0].node, 0);
    EXPECT_EQ(compact[1].cpu, 1);
    EXPECT_EQ(compact[2].cpu, 2);
    EXPECT_EQ(compact[3].cpu, 3);
    for (const auto& p : compact) EXPECT_EQ(p.node, 0);

    const auto spread = plan_worker_cpus(topo, AffinityMode::Spread, 4);
    ASSERT_EQ(spread.size(), 4u);
    EXPECT_EQ(spread[0].cpu, -1);
    EXPECT_EQ(spread[0].node, 0);  // would have been cpu 0 on node 0
    EXPECT_EQ(spread[1].cpu, 4);
    EXPECT_EQ(spread[1].node, 1);
    EXPECT_EQ(spread[2].cpu, 1);
    EXPECT_EQ(spread[2].node, 0);
    EXPECT_EQ(spread[3].cpu, 5);
    EXPECT_EQ(spread[3].node, 1);

    // Off and (single-node) Auto never pin.
    for (const auto& p : plan_worker_cpus(topo, AffinityMode::Off, 4))
        EXPECT_EQ(p.cpu, -1);
    CpuTopology uma;
    uma.node_cpus = {{0, 1}};
    for (const auto& p : plan_worker_cpus(uma, AffinityMode::Auto, 4))
        EXPECT_EQ(p.cpu, -1);
    // Multi-node Auto spreads.
    const auto auto_plan = plan_worker_cpus(topo, AffinityMode::Auto, 3);
    EXPECT_EQ(auto_plan[1].cpu, 4);
    EXPECT_EQ(auto_plan[2].cpu, 1);
}

TEST(Affinity, MoreWorkersThanCpusWrapAround) {
    CpuTopology topo;
    topo.node_cpus = {{0, 1}};
    const auto plan = plan_worker_cpus(topo, AffinityMode::Compact, 5);
    ASSERT_EQ(plan.size(), 5u);
    EXPECT_EQ(plan[0].cpu, -1);
    EXPECT_EQ(plan[1].cpu, 1);
    EXPECT_EQ(plan[2].cpu, 0);  // wrapped
    EXPECT_EQ(plan[3].cpu, 1);
    EXPECT_EQ(plan[4].cpu, 0);
}

TEST(Affinity, StealOrderVisitsSameNodeVictimsFirst) {
    // Workers 0,2 on node 0 and 1,3 on node 1: each worker's steal order
    // must list every other worker exactly once, same-node first, ring
    // order within each group.
    const std::vector<WorkerPlacement> placements{
        {-1, 0}, {4, 1}, {1, 0}, {5, 1}};
    EXPECT_EQ(plan_steal_order(placements, 0),
              (std::vector<unsigned>{2, 1, 3}));
    EXPECT_EQ(plan_steal_order(placements, 1),
              (std::vector<unsigned>{3, 2, 0}));
    EXPECT_EQ(plan_steal_order(placements, 2),
              (std::vector<unsigned>{0, 3, 1}));
    EXPECT_EQ(plan_steal_order(placements, 3),
              (std::vector<unsigned>{1, 0, 2}));

    // Single-node placements degenerate to the plain ring.
    const std::vector<WorkerPlacement> flat{{-1, 0}, {1, 0}, {2, 0}};
    EXPECT_EQ(plan_steal_order(flat, 1), (std::vector<unsigned>{2, 0}));
    EXPECT_TRUE(plan_steal_order({{-1, 0}}, 0).empty());
}

TEST(Affinity, SystemTopologyIsSane) {
    const CpuTopology& topo = system_topology();
    ASSERT_GE(topo.node_count(), 1u);
    ASSERT_GE(topo.cpu_count(), 1u);
    for (const auto& cpus : topo.node_cpus) EXPECT_FALSE(cpus.empty());
}

/// Every affinity mode must produce the same parallel_for semantics —
/// exactly-once execution and in-range worker ids — since placement can
/// only move threads, never change the work they do. (The runner-level
/// bit-identical differential is sparse_trace_test / word_trace_test's
/// job; this is the pool-level contract under explicit modes.)
TEST(Affinity, PoolSemanticsIdenticalUnderEveryMode) {
    for (AffinityMode mode : {AffinityMode::Off, AffinityMode::Compact,
                              AffinityMode::Spread}) {
        ThreadPool pool(3, mode);
        constexpr std::size_t kCount = 512;
        std::vector<std::atomic<int>> hits(kCount);
        std::atomic<int> bad_worker{0};
        pool.parallel_for(kCount, [&](std::size_t i, unsigned worker) {
            if (worker >= pool.worker_count())
                bad_worker.fetch_add(1, std::memory_order_relaxed);
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < kCount; ++i)
            ASSERT_EQ(hits[i].load(), 1)
                << "mode " << static_cast<int>(mode) << " index " << i;
        EXPECT_EQ(bad_worker.load(), 0);
    }
}

}  // namespace
}  // namespace mtg::util
