#include <gtest/gtest.h>

#include "march/library.hpp"
#include "word/background.hpp"
#include "word/word_march.hpp"
#include "word/word_memory.hpp"

namespace mtg::word {
namespace {

using fault::FaultKind;

TEST(Background, BitAccessAndComplement) {
    Background bg{8, 0b00001111};
    EXPECT_EQ(bg.bit(0), 1);
    EXPECT_EQ(bg.bit(3), 1);
    EXPECT_EQ(bg.bit(4), 0);
    EXPECT_EQ(bg.complement().bits, 0b11110000u);
    EXPECT_EQ(bg.str(), "00001111");
}

TEST(Background, CountingSetForWidth8) {
    const auto set = counting_backgrounds(8);
    ASSERT_EQ(set.size(), 4u);  // solid + log2(8)
    EXPECT_EQ(set[0].str(), "00000000");
    EXPECT_EQ(set[1].str(), "10101010");
    EXPECT_EQ(set[2].str(), "11001100");
    EXPECT_EQ(set[3].str(), "11110000");
}

TEST(Background, CountingSetSeparatesAllPairs) {
    for (int width : {1, 2, 4, 8, 16, 32, 64})
        EXPECT_TRUE(separates_all_bit_pairs(counting_backgrounds(width)))
            << width;
}

TEST(Background, SolidAloneSeparatesNothing) {
    EXPECT_FALSE(separates_all_bit_pairs(solid_background(8)));
    // Except trivially for 1-bit words.
    EXPECT_TRUE(separates_all_bit_pairs(solid_background(1)));
}

TEST(Background, RejectsNonPowerOfTwo) {
    EXPECT_THROW((void)counting_backgrounds(12), ContractViolation);
    EXPECT_THROW((void)counting_backgrounds(0), ContractViolation);
}

TEST(WordMemory, ReadsBackWrites) {
    WordMemory memory(4, 8);
    memory.write(2, 0b10110001);
    const auto got = memory.read(2);
    for (int b = 0; b < 8; ++b) {
        EXPECT_TRUE(is_known(got[static_cast<std::size_t>(b)]));
        EXPECT_EQ(trit_bit(got[static_cast<std::size_t>(b)]),
                  (0b10110001 >> b) & 1);
    }
    // Unwritten words stay unknown.
    EXPECT_EQ(memory.peek({0, 0}), Trit::X);
}

TEST(WordMemory, SingleBitStuckAt) {
    WordMemory memory(4, 8);
    memory.inject(InjectedBitFault::single(FaultKind::Saf0, {1, 3}));
    memory.write(1, 0xFF);
    const auto got = memory.read(1);
    EXPECT_EQ(trit_bit(got[3]), 0);
    EXPECT_EQ(trit_bit(got[2]), 1);
}

TEST(WordMemory, IntraWordCouplingCorruptsAfterOwnWrite) {
    // CFid<^,1> aggressor bit 0, victim bit 1 of the same word: writing a
    // word that raises bit 0 while writing 0 to bit 1 leaves bit 1 at 1.
    WordMemory memory(2, 4);
    memory.inject(
        InjectedBitFault::coupling(FaultKind::CfidUp1, {0, 0}, {0, 1}));
    memory.write(0, 0b0000);
    memory.write(0, 0b0001);  // bit0 rises, bit1 written 0 -> forced to 1
    const auto got = memory.read(0);
    EXPECT_EQ(trit_bit(got[1]), 1);
    EXPECT_EQ(trit_bit(got[0]), 1);
}

TEST(WordMemory, IntraWordCouplingInvisibleWhenVictimAgrees) {
    WordMemory memory(2, 4);
    memory.inject(
        InjectedBitFault::coupling(FaultKind::CfidUp1, {0, 0}, {0, 1}));
    memory.write(0, 0b0000);
    memory.write(0, 0b0011);  // victim written 1 anyway: no visible effect
    EXPECT_EQ(trit_bit(memory.read(0)[1]), 1);
}

TEST(WordMemory, InterWordCoupling) {
    WordMemory memory(4, 8);
    memory.inject(
        InjectedBitFault::coupling(FaultKind::CfinUp, {0, 2}, {3, 5}));
    memory.write(3, 0x00);
    memory.write(0, 0x00);
    memory.write(0, 0x04);  // bit 2 rises -> victim (3,5) inverts
    EXPECT_EQ(trit_bit(memory.read(3)[5]), 1);
}

TEST(WordMemory, RetentionDecay) {
    WordMemory memory(2, 8);
    memory.inject(InjectedBitFault::single(FaultKind::Drf0, {1, 7}));
    memory.write(1, 0xFF);
    memory.wait();
    EXPECT_EQ(trit_bit(memory.read(1)[7]), 0);
}

TEST(WordMarch, ComplexityScalesWithBackgrounds) {
    EXPECT_EQ(word_complexity(march::march_c_minus(), counting_backgrounds(8)),
              40);  // 10n x 4 backgrounds
    EXPECT_EQ(word_complexity(march::mats(), solid_background(16)), 4);
}

TEST(WordMarch, WellFormedUnderAllBackgrounds) {
    for (const char* name : {"MATS", "MATS++", "March C-"})
        EXPECT_TRUE(is_well_formed(march::find_march_test(name).test,
                                   counting_backgrounds(8)))
            << name;
}

TEST(WordMarch, SingleBitFaultsNeedOnlySolid) {
    EXPECT_TRUE(covers_everywhere(march::mats_plus_plus(), solid_background(8),
                                  FaultKind::Saf0));
    EXPECT_TRUE(covers_everywhere(march::mats_plus_plus(), solid_background(8),
                                  FaultKind::TfDown));
}

/// The headline theorem of the word-oriented extension: a solid background
/// misses intra-word CFid<^,1> (aggressor and victim are always written the
/// same value, so the forced 1 is never observable), while the counting
/// background set catches every intra-word pair.
TEST(WordMarch, IntraWordCouplingNeedsCountingBackgrounds) {
    const auto& test = march::march_c_minus();
    EXPECT_FALSE(covers_everywhere(test, solid_background(8),
                                   FaultKind::CfidUp1));
    EXPECT_TRUE(covers_everywhere(test, counting_backgrounds(8),
                                  FaultKind::CfidUp1));
}

TEST(WordMarch, InterWordCouplingCoveredEvenWithSolid) {
    // Inter-word victims are independent cells: March C- catches them under
    // any background.
    const auto& test = march::march_c_minus();
    WordRunOptions opts;
    for (int wa : {0, 3}) {
        for (int wv : {1, 6}) {
            if (wa == wv) continue;
            EXPECT_TRUE(detects(test, solid_background(8),
                                InjectedBitFault::coupling(FaultKind::CfidUp0,
                                                           {wa, 2}, {wv, 2}),
                                opts));
        }
    }
}

TEST(WordMarch, FullStaticListWithCountingBackgrounds) {
    const auto& test = march::march_c_minus();
    const auto backgrounds = counting_backgrounds(4);
    WordRunOptions opts;
    opts.width = 4;
    for (FaultKind kind :
         fault::parse_fault_kinds("SAF,TF,CFin,CFid,CFst")) {
        EXPECT_TRUE(covers_everywhere(test, backgrounds, kind, opts))
            << fault::fault_kind_name(kind);
    }
}

TEST(WordMarch, SolidBackgroundPreservesBitwiseEscapes) {
    // MATS misses TF<v> bit-wise, and a single solid background cannot
    // repair that (no falling transition is ever read back).
    EXPECT_FALSE(covers_everywhere(march::mats(), solid_background(8),
                                   FaultKind::TfDown));
}

TEST(WordMarch, BackgroundBoundariesAddTransitions) {
    // Consecutive backgrounds run on the same memory: re-initialising from
    // ~b_k to b_(k+1) exercises falling writes that the bit-oriented test
    // alone never reads — MATS + counting backgrounds does catch TF<v>.
    EXPECT_TRUE(covers_everywhere(march::mats(), counting_backgrounds(8),
                                  FaultKind::TfDown));
}

}  // namespace
}  // namespace mtg::word
