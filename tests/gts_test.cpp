#include <gtest/gtest.h>

#include "core/gts.hpp"
#include "core/test_pattern_graph.hpp"
#include "sim/two_cell_sim.hpp"

namespace mtg::core {
namespace {

using fault::FaultInstance;
using fault::FaultKind;
using fault::TestPattern;
using fsm::AbstractOp;
using fsm::Cell;
using fsm::PairState;

std::vector<TestPattern> paper_chain() {
    // The §4 example tour: TP3, TP2, TP4, TP1.
    TestPattern tp3{PairState::parse("00"), AbstractOp::write(Cell::I, 1),
                    AbstractOp::read(Cell::J, 0)};
    TestPattern tp2{PairState::parse("10"), AbstractOp::write(Cell::J, 1),
                    AbstractOp::read(Cell::I, 1)};
    TestPattern tp4{PairState::parse("00"), AbstractOp::write(Cell::J, 1),
                    AbstractOp::read(Cell::I, 0)};
    TestPattern tp1{PairState::parse("01"), AbstractOp::write(Cell::I, 1),
                    AbstractOp::read(Cell::J, 1)};
    return {tp3, tp2, tp4, tp1};
}

/// §4: concatenating the tour TP3,TP2,TP4,TP1 yields exactly
///   GTS = w0i,w0j, w1i,r0j, w1j,r1i, w0i,w0j, w1j,r0i, w1i,r1j
TEST(Gts, PaperWorkedExampleConcatenation) {
    const Gts gts = concatenate_tps(paper_chain());
    const std::vector<std::string> expected = {
        "w0i", "w0j", "w1i", "r0j", "w1j", "r1i",
        "w0i", "w0j", "w1j", "r0i", "w1i", "r1j"};
    ASSERT_EQ(gts.symbols.size(), expected.size());
    for (std::size_t k = 0; k < expected.size(); ++k)
        EXPECT_EQ(gts.symbols[k].op.str(), expected[k]) << "symbol " << k;
    EXPECT_EQ(gts.op_count(), 12);
}

TEST(Gts, RolesTrackTpStructure) {
    const Gts gts = concatenate_tps(paper_chain());
    EXPECT_EQ(gts.symbols[0].role, SymbolRole::InitWrite);
    EXPECT_EQ(gts.symbols[1].role, SymbolRole::InitWrite);
    EXPECT_EQ(gts.symbols[2].role, SymbolRole::Excite);
    EXPECT_EQ(gts.symbols[3].role, SymbolRole::Observe);
    // TP2 chains with zero writes (the 0-weight edge of Figure 4).
    EXPECT_EQ(gts.symbols[4].role, SymbolRole::Excite);
    EXPECT_EQ(gts.symbols[4].tp_index, 1);
}

TEST(Gts, ZeroWeightEdgesEmitNoInitWrites) {
    const Gts gts = concatenate_tps(paper_chain());
    int init_writes = 0;
    for (const auto& s : gts.symbols)
        if (s.role == SymbolRole::InitWrite) ++init_writes;
    EXPECT_EQ(init_writes, 4);  // 2 cold start + 2 for the TP2->TP4 hop
}

TEST(Gts, SequenceIsWellFormedAndDetectsChain) {
    const Gts gts = concatenate_tps(paper_chain());
    EXPECT_TRUE(sim::gts_well_formed(gts.ops()));
    for (FaultKind kind : {FaultKind::CfidUp0, FaultKind::CfidUp1})
        for (Cell role : {Cell::I, Cell::J})
            EXPECT_TRUE(sim::gts_detects(gts.ops(), FaultInstance{kind, role}))
                << fault_kind_name(kind);
}

TEST(Gts, LambdaTpEmitsNoExcite) {
    TestPattern lambda_tp{PairState::parse("1x"), std::nullopt,
                          AbstractOp::read(Cell::I, 1)};
    const Gts gts = concatenate_tps({lambda_tp});
    ASSERT_EQ(gts.symbols.size(), 2u);
    EXPECT_EQ(gts.symbols[0].op.str(), "w1i");
    EXPECT_EQ(gts.symbols[1].op.str(), "r1i");
}

TEST(Gts, WaitExciteEmitsT) {
    TestPattern drf_tp{PairState::parse("1x"), AbstractOp::wait(),
                       AbstractOp::read(Cell::I, 1)};
    const Gts gts = concatenate_tps({drf_tp});
    ASSERT_EQ(gts.symbols.size(), 3u);
    EXPECT_EQ(gts.symbols[1].op.str(), "T");
    EXPECT_EQ(gts.op_count(), 2);  // T not a memory operation
}

TEST(Gts, PrintingShowsAnnotations) {
    Gts gts = concatenate_tps(paper_chain());
    gts.symbols[3].colour = Colour::Blue;
    gts.symbols[2].terminal = true;
    const std::string text = gts.str();
    EXPECT_NE(text.find("[r0j]B"), std::string::npos);
    EXPECT_NE(text.find("^w1i"), std::string::npos);
}

}  // namespace
}  // namespace mtg::core
