/// \file quickstart.cpp
/// Five-minute tour of the library: pick a fault list, generate an optimal
/// March test, inspect every intermediate artifact of the paper's pipeline.
///
/// Usage: quickstart [fault-list]
///   fault-list defaults to "SAF,TF,ADF" — families or single primitives,
///   comma separated (SAF, TF, ADF/AF, CFin, CFid, CFst, WDF, RDF, DRDF,
///   IRF, DRF, or e.g. "CFid<^,1>").

#include <cstdio>
#include <exception>

#include "core/generator.hpp"
#include "march/march_test.hpp"

int main(int argc, char** argv) {
    const std::string list = argc > 1 ? argv[1] : "SAF,TF,ADF";
    std::printf("Generating a March test for: %s\n\n", list.c_str());

    try {
        mtg::core::Generator generator;
        const mtg::core::GenerationResult result = generator.generate_for(list);

        std::printf("Equivalence classes (paper §5):\n");
        for (const auto& cls : result.classes)
            std::printf("  %s\n", cls.str().c_str());

        std::printf("\nWinning TP chain (minimum-length ATSP path):\n  ");
        for (std::size_t k = 0; k < result.chain.size(); ++k)
            std::printf("%s%s", k ? " -> " : "", result.chain[k].str().c_str());

        std::printf("\n\nGlobal Test Sequence (§4):      %s\n",
                    result.gts_raw.str().c_str());
        std::printf("after reordering (§4.1):        %s\n",
                    result.gts_reordered.str().c_str());
        std::printf("after minimisation (§4.2):      %s\n",
                    result.gts_minimised.str().c_str());
        std::printf("March test (§4.3):              %s\n",
                    result.test_unminimised.str(mtg::march::Notation::Unicode)
                        .c_str());

        std::printf("\n=> %s   complexity %dn\n",
                    result.test.str(mtg::march::Notation::Unicode).c_str(),
                    result.complexity);
        std::printf("   simulator-verified complete: %s\n",
                    result.valid ? "yes" : "NO");
        std::printf("   non-redundant (§6):          %s\n",
                    result.redundancy.non_redundant ? "yes" : "NO");
        std::printf("   class combinations tried:    %d\n",
                    result.combinations_tried);
        std::printf("   generation time:             %.3f s\n", result.seconds);
        return result.valid ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}
