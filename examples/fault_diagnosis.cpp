/// \file fault_diagnosis.cpp
/// Fault diagnosis by output tracing (paper reference [6]): builds the
/// fault dictionary of a March test, prints the signature table and the
/// diagnostic resolution, then demonstrates diagnosing an "observed"
/// failure signature back to candidate faults.
///
/// Usage: fault_diagnosis [march-name] [fault-list]
///   defaults: "March C-" and SAF,TF,ADF,CFin,CFid.

#include <cstdio>
#include <string>

#include "diagnosis/dictionary.hpp"
#include "march/library.hpp"
#include "march/parser.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace mtg;

    const std::string which = argc > 1 ? argv[1] : "March C-";
    const std::string list = argc > 2 ? argv[2] : "SAF,TF,ADF,CFin,CFid";

    march::MarchTest test;
    try {
        test = march::find_march_test(which).test;
    } catch (const std::invalid_argument&) {
        test = march::parse_march(which);
    }
    const auto kinds = fault::parse_fault_kinds(list);

    std::printf("March test: %s\nfault list: %s\n\n",
                test.str(march::Notation::Unicode).c_str(), list.c_str());

    const auto dict = diagnosis::FaultDictionary::build(test, kinds);
    std::printf("Fault dictionary (signature -> candidate faults):\n%s\n",
                dict.str().c_str());
    std::printf("instances:     %d\n", dict.instance_count());
    std::printf("detected:      %d\n", dict.detected_count());
    std::printf("distinguished: %d\n", dict.distinguished_count());
    std::printf("resolution:    %.2f\n\n", dict.resolution());

    // Simulate a field failure: inject a fault, capture its trace, then
    // pretend we only saw the trace.
    const auto observed = diagnosis::signature_of(
        test, sim::InjectedFault::coupling(fault::FaultKind::CfidUp0,
                                           /*aggressor=*/2, /*victim=*/5));
    std::printf("observed failure signature: %s\ncandidates:\n",
                observed.str().c_str());
    for (const auto& candidate : dict.diagnose(observed))
        std::printf("  %s\n", candidate.name().c_str());
    return 0;
}
