/// \file march_tool.cpp
/// Command-line front end combining the library's main workflows:
///
///   march_tool generate <fault-list>
///       generate an optimal March test (with §6 report)
///   march_tool verify "<march-test>" <fault-list>
///       simulate an existing March test against a fault list
///   march_tool diagnose "<march-test>" <fault-list>
///       print the fault dictionary and diagnostic resolution
///   march_tool word <fault-list> <width>
///       generate, then lift to W-bit words with counting backgrounds
///   march_tool serve <port>
///       run a fleet worker: answer shard queries on a TCP port
///       (SIGTERM/SIGINT close the listener, drain connections, exit 0)
///   march_tool fleet "<march-test>" <fault-list> <host:port>...
///       verify over remote workers (the RemoteBackend coordinator)
///   march_tool chaos "<march-test>" <kinds|all> <seed> [peers]
///       replay one seeded chaos schedule over a loopback fleet and
///       check the results against the local packed oracle
///   march_tool query-serve <port>
///       run the persistent query server: one long-lived Engine pair
///       (shared population cache, prebuilt sweep results, query
///       coalescing, two-class admission) behind the line-JSON protocol
///       (SIGTERM/SIGINT stop the server and drain sessions)
///   march_tool query <host:port> <op> "<test>" <fault-list> [word
///       [words width]]
///       one query against a running query server; or
///   march_tool query <host:port> --replay <file>
///       pipeline every request line of <file> (the line-JSON request
///       format) and print the replies in completion order
///   march_tool synth <fault-list> [--beam B] [--lookahead K] [--seed S]
///       synthesise a March test from scratch by beam search over the
///       slot IR (src/synth/), probing the dominance-pruned universe and
///       accepting only on the full-universe DetectsAll gate; prints the
///       test, its complexity, and the probe/cache counters
///
/// March tests are written in the conventional notation, e.g.
/// "{~(w0); ^(r0,w1); v(r1,w0)}"; fault lists are comma-separated families
/// (SAF, TF, ADF, AF2, CFin, CFid, CFst, WDF, RDF, DRDF, IRF, DRF) or
/// single primitives such as CFid<^,1>.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/generator.hpp"
#include "diagnosis/dictionary.hpp"
#include "engine/engine.hpp"
#include "march/library.hpp"
#include "march/parser.hpp"
#include "net/chaos.hpp"
#include "net/framing.hpp"
#include "net/query_protocol.hpp"
#include "net/query_server.hpp"
#include "net/remote_backend.hpp"
#include "net/worker.hpp"
#include "setcover/coverage_matrix.hpp"
#include "synth/beam_search.hpp"
#include "word/word_march.hpp"

namespace {

using namespace mtg;

int usage() {
    std::fprintf(stderr,
                 "usage:\n"
                 "  march_tool generate <fault-list>\n"
                 "  march_tool verify \"<march-test>\" <fault-list>\n"
                 "  march_tool diagnose \"<march-test>\" <fault-list>\n"
                 "  march_tool word <fault-list> <width>\n"
                 "  march_tool serve <port>\n"
                 "  march_tool fleet \"<march-test>\" <fault-list> "
                 "<host:port>...\n"
                 "  march_tool chaos \"<march-test>\" "
                 "<kill,delay,garbage,truncate,flap,dribble|all> <seed> "
                 "[peers]\n"
                 "  march_tool query-serve <port>\n"
                 "  march_tool query <host:port> <op> \"<march-test>\" "
                 "<fault-list> [word [words width]]\n"
                 "  march_tool query <host:port> --replay <file>\n"
                 "  march_tool synth <fault-list> [--beam B] "
                 "[--lookahead K] [--seed S]\n");
    return 2;
}

march::MarchTest parse_test_arg(const std::string& text) {
    try {
        return march::find_march_test(text).test;
    } catch (const std::invalid_argument&) {
        return march::parse_march(text);
    }
}

int cmd_generate(const std::string& list) {
    core::Generator generator;
    const auto result = generator.generate_for(list);
    std::printf("%s\n", result.test.str(march::Notation::Unicode).c_str());
    std::printf("complexity:    %dn\n", result.complexity);
    std::printf("complete:      %s\n", result.valid ? "yes" : "NO");
    std::printf("non-redundant: %s\n",
                result.redundancy.non_redundant ? "yes" : "NO");
    std::printf("time:          %.3f s  (%d class combinations)\n",
                result.seconds, result.combinations_tried);
    return result.valid ? 0 : 1;
}

int cmd_verify(const std::string& text, const std::string& list) {
    const auto test = parse_test_arg(text);
    const auto kinds = fault::parse_fault_kinds(list);
    if (!sim::is_well_formed(test)) {
        std::printf("ILL-FORMED: the test reads unknown or wrong values on "
                    "a fault-free memory\n");
        return 1;
    }
    const engine::Engine& engine = engine::Engine::global();
    bool all = true;
    for (fault::FaultKind kind : kinds) {
        const bool ok = engine.covers_everywhere(test, kind);
        std::printf("%-12s %s\n", fault::fault_kind_name(kind).c_str(),
                    ok ? "covered" : "ESCAPES");
        all = all && ok;
    }
    const auto report = setcover::analyse_redundancy(test, kinds);
    std::printf("non-redundant: %s\n", report.non_redundant ? "yes" : "NO");
    return all ? 0 : 1;
}

int cmd_diagnose(const std::string& text, const std::string& list) {
    const auto test = parse_test_arg(text);
    const auto dict = diagnosis::FaultDictionary::build(
        test, fault::parse_fault_kinds(list));
    std::printf("%s", dict.str().c_str());
    std::printf("resolution: %.2f (%d/%d distinguished)\n", dict.resolution(),
                dict.distinguished_count(), dict.detected_count());
    return 0;
}

int cmd_word(const std::string& list, int width) {
    core::Generator generator;
    const auto result = generator.generate_for(list);
    if (!result.valid) {
        std::printf("generation failed\n");
        return 1;
    }
    const auto backgrounds = word::counting_backgrounds(width);
    word::WordRunOptions opts;
    opts.width = width;
    std::printf("bit-oriented:  %s (%dn)\n",
                result.test.str(march::Notation::Unicode).c_str(),
                result.complexity);
    std::printf("word-oriented: %zu backgrounds, %d ops/word\n",
                backgrounds.size(),
                word::word_complexity(result.test, backgrounds));
    const engine::Engine& engine = engine::Engine::global();
    bool all = true;
    for (fault::FaultKind kind : fault::parse_fault_kinds(list)) {
        const bool ok =
            engine.covers_everywhere(result.test, backgrounds, kind, opts);
        std::printf("%-12s %s\n", fault::fault_kind_name(kind).c_str(),
                    ok ? "covered" : "ESCAPES");
        all = all && ok;
    }
    return all ? 0 : 1;
}

volatile std::sig_atomic_t g_serve_stop = 0;
volatile int g_serve_listen_fd = -1;

extern "C" void serve_signal_handler(int) {
    g_serve_stop = 1;
    // Wake the blocked accept (shutdown is async-signal-safe); the loop
    // sees g_serve_stop and drains instead of treating it as an error.
    if (g_serve_listen_fd >= 0) ::shutdown(g_serve_listen_fd, SHUT_RDWR);
}

int cmd_serve(int port) {
    const int listen_fd = net::tcp_listen(static_cast<std::uint16_t>(port));
    g_serve_listen_fd = listen_fd;
    struct sigaction action{};
    action.sa_handler = serve_signal_handler;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
    std::fprintf(stderr, "march_tool serve: listening on port %d\n", port);
    std::vector<std::thread> sessions;
    for (;;) {
        int fd = -1;
        try {
            fd = net::tcp_accept(listen_fd);
        } catch (const std::exception&) {
            if (g_serve_stop) break;
            throw;
        }
        if (g_serve_stop) {
            ::close(fd);
            break;
        }
        // One session thread per coordinator connection, joined on
        // shutdown so in-flight queries drain before exit.
        sessions.emplace_back([fd] { net::serve_connection(fd); });
    }
    ::close(listen_fd);
    std::fprintf(stderr,
                 "march_tool serve: shutting down, draining %zu "
                 "connection(s)\n",
                 sessions.size());
    for (std::thread& session : sessions)
        if (session.joinable()) session.join();
    return 0;
}

int cmd_fleet(const std::string& text, const std::string& list,
              const std::vector<std::string>& peers) {
    const auto test = parse_test_arg(text);
    const auto kinds = fault::parse_fault_kinds(list);
    std::vector<int> fds;
    fds.reserve(peers.size());
    for (const std::string& peer : peers) {
        const std::size_t colon = peer.rfind(':');
        if (colon == std::string::npos)
            throw std::invalid_argument("peer must be host:port: " + peer);
        fds.push_back(net::tcp_connect(
            peer.substr(0, colon),
            static_cast<std::uint16_t>(
                std::atoi(peer.c_str() + colon + 1)),
            /*timeout_ms=*/5000));
    }
    const engine::Engine engine(engine::make_remote_backend(std::move(fds)));
    std::printf("fleet: %zu peer(s)\n", peers.size());
    bool all = true;
    for (fault::FaultKind kind : kinds) {
        const bool ok = engine.covers_everywhere(test, kind);
        std::printf("%-12s %s\n", fault::fault_kind_name(kind).c_str(),
                    ok ? "covered" : "ESCAPES");
        all = all && ok;
    }
    return all ? 0 : 1;
}

int cmd_query_serve(int port) {
    net::QueryServer server;
    const std::uint16_t bound =
        server.listen(static_cast<std::uint16_t>(port));
    // The handler only sets the flag (g_serve_listen_fd stays -1); the
    // main thread polls it and runs the orderly stop() itself.
    struct sigaction action{};
    action.sa_handler = serve_signal_handler;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
    std::fprintf(stderr, "march_tool query-serve: listening on port %u\n",
                 bound);
    while (!g_serve_stop)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const net::QueryServer::Stats stats = server.stats();
    server.stop();
    std::fprintf(stderr,
                 "march_tool query-serve: stopped after %zu request(s), "
                 "%zu backend run(s), %zu coalesced, %zu sweep cache "
                 "hit(s)\n",
                 stats.requests, stats.backend_runs, stats.coalesced,
                 stats.sweep_cache_hits);
    return 0;
}

std::pair<std::string, std::uint16_t> parse_peer_arg(
    const std::string& peer) {
    const std::size_t colon = peer.rfind(':');
    if (colon == std::string::npos)
        throw std::invalid_argument("peer must be host:port: " + peer);
    return {peer.substr(0, colon),
            static_cast<std::uint16_t>(std::atoi(peer.c_str() + colon + 1))};
}

int cmd_query(const std::string& peer, std::vector<std::string> args) {
    const auto [host, port] = parse_peer_arg(peer);
    net::QueryClient client(host, port, /*connect_timeout_ms=*/5000);
    if (args.size() >= 2 && args[0] == "--replay") {
        // Pipelined replay: every request line goes out before the first
        // reply is awaited; the server answers in completion order, so
        // replies are matched by id, not position.
        std::ifstream file(args[1]);
        if (!file) throw std::runtime_error("cannot open " + args[1]);
        int sent = 0;
        std::string line;
        while (std::getline(file, line)) {
            if (line.empty()) continue;
            if (!client.send(net::parse_request(line)))
                throw std::runtime_error("connection lost while sending");
            ++sent;
        }
        for (int i = 0; i < sent; ++i) {
            const auto reply = client.read_reply(/*timeout_ms=*/60000);
            if (!reply.has_value()) {
                std::fprintf(stderr, "query: only %d/%d replies arrived\n",
                             i, sent);
                return 1;
            }
            std::printf("%s\n", reply->c_str());
        }
        return 0;
    }
    if (args.empty()) return usage();
    // Assemble the request as a protocol line and round-trip it through
    // parse_request so the CLI validates exactly what the server would.
    net::Json root = net::Json::object();
    root.set("id", net::Json(std::int64_t{1}));
    root.set("op", net::Json(args[0]));
    if (args.size() > 1) root.set("test", net::Json(args[1]));
    if (args.size() > 2) root.set("kinds", net::Json(args[2]));
    if (args.size() > 3 && args[3] == "word") {
        root.set("universe", net::Json("word"));
        if (args.size() > 5) {
            root.set("words",
                     net::Json(std::int64_t{std::atoi(args[4].c_str())}));
            root.set("width",
                     net::Json(std::int64_t{std::atoi(args[5].c_str())}));
        }
    }
    const auto reply = client.roundtrip(net::parse_request(root.dump()),
                                        /*timeout_ms=*/60000);
    if (!reply.has_value()) {
        std::fprintf(stderr, "query: no reply\n");
        return 1;
    }
    std::printf("%s\n", reply->c_str());
    const net::Json parsed = net::Json::parse(*reply);
    const net::Json* ok = parsed.find("ok");
    return ok != nullptr && ok->kind() == net::Json::Kind::Bool &&
                   ok->as_bool()
               ? 0
               : 1;
}

int cmd_synth(const std::string& list, std::vector<std::string> flags) {
    synth::SearchConfig search;
    for (std::size_t i = 0; i + 1 < flags.size(); i += 2) {
        if (flags[i] == "--beam")
            search.beam_width = std::atoi(flags[i + 1].c_str());
        else if (flags[i] == "--lookahead")
            search.lookahead = std::atoi(flags[i + 1].c_str());
        else if (flags[i] == "--seed")
            search.seed = std::strtoull(flags[i + 1].c_str(), nullptr, 10);
        else
            return usage();
    }
    if (flags.size() % 2 != 0) return usage();

    const auto kinds = fault::parse_fault_kinds(list);
    search.include_delay = std::any_of(kinds.begin(), kinds.end(),
                                       fault::needs_wait);

    const engine::Engine& engine = engine::Engine::global();
    synth::ScorerConfig scorer_config;
    scorer_config.kinds = kinds;
    synth::Scorer scorer(engine, scorer_config);
    const synth::SearchResult result =
        synth::BeamSearch(scorer, search).run();

    if (!result.found()) {
        std::printf("no covering test within %d element(s) "
                    "(best pruned coverage %zu/%zu)\n",
                    search.max_slots, result.best_covered, result.best_total);
        return 1;
    }
    std::printf("%s\n", result.test.str(march::Notation::Unicode).c_str());
    std::printf("complexity: %dn\n", result.test.complexity());
    std::printf("rounds:     %d\n", result.rounds);
    std::printf("probes:     %zu (%zu probe-cache hit(s), %zu full "
                "check(s))\n",
                result.probe_stats.probes, result.probe_stats.cache_hits,
                result.probe_stats.full_checks);
    const engine::Engine::Stats stats = engine.stats();
    std::printf("engine:     %zu quer(ies), population cache %zu hit(s) / "
                "%zu miss(es)\n",
                stats.queries, stats.cache.hits, stats.cache.misses);

    // Context: the shortest library test covering the same kinds.
    const march::NamedMarchTest* best = nullptr;
    for (const march::NamedMarchTest& known : march::known_march_tests()) {
        if (!engine.covers_all(known.test, kinds)) continue;
        if (best == nullptr ||
            known.test.complexity() < best->test.complexity())
            best = &known;
    }
    if (best != nullptr)
        std::printf("library:    %s (%dn)\n", best->name.c_str(),
                    best->test.complexity());
    return 0;
}

int cmd_chaos(const std::string& text, const std::string& kinds_csv,
              std::uint64_t seed, int peers) {
    net::ChaosConfig config;
    config.seed = seed;
    config.peers = peers;
    config.kinds = net::parse_chaos_kinds(kinds_csv);
    const auto report = net::run_chaos(parse_test_arg(text), config);
    std::printf("schedule: %s\n", report.schedule.c_str());
    for (std::size_t p = 0; p < report.connections.size(); ++p)
        std::printf("peer %zu: %d connection(s)\n", p,
                    report.connections[p]);
    std::printf("%d/%d checks bit-identical to packed\n",
                report.checks - static_cast<int>(report.mismatches.size()),
                report.checks);
    for (const std::string& mismatch : report.mismatches)
        std::printf("MISMATCH: %s\n", mismatch.c_str());
    return report.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string command = argv[1];
    try {
        if (command == "generate") return cmd_generate(argv[2]);
        if (command == "verify" && argc >= 4)
            return cmd_verify(argv[2], argv[3]);
        if (command == "diagnose" && argc >= 4)
            return cmd_diagnose(argv[2], argv[3]);
        if (command == "word" && argc >= 4)
            return cmd_word(argv[2], std::atoi(argv[3]));
        if (command == "serve") return cmd_serve(std::atoi(argv[2]));
        if (command == "fleet" && argc >= 5)
            return cmd_fleet(
                argv[2], argv[3],
                std::vector<std::string>(argv + 4, argv + argc));
        if (command == "query-serve")
            return cmd_query_serve(std::atoi(argv[2]));
        if (command == "query" && argc >= 4)
            return cmd_query(
                argv[2], std::vector<std::string>(argv + 3, argv + argc));
        if (command == "synth")
            return cmd_synth(
                argv[2], std::vector<std::string>(argv + 3, argv + argc));
        if (command == "chaos" && argc >= 5)
            return cmd_chaos(
                argv[2], argv[3],
                static_cast<std::uint64_t>(std::strtoull(argv[4], nullptr,
                                                         10)),
                argc >= 6 ? std::atoi(argv[5]) : 2);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
