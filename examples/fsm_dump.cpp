/// \file fsm_dump.cpp
/// Programmatic rendition of the paper's definitional figures:
///   Figure 1 — the fault-free machine M0 (full transition/output table);
///   Figure 2 — the faulty machine M1 for CFid ⟨↑,0⟩ (its perturbed edges);
///   Figure 3 — the BFE decomposition of ⟨↑,0⟩ and the derived TPs;
///   Figure 4 — the Test Pattern Graph for {⟨↑,1⟩, ⟨↑,0⟩}.

#include <cstdio>

#include "core/test_pattern_graph.hpp"
#include "fault/test_pattern.hpp"

int main() {
    using namespace mtg;

    std::printf("Figure 1 — fault-free two-cell machine M0 "
                "(rows: state, cells i,j; entries: next/output):\n\n%s\n",
                fsm::MemoryFsm::good().table_str().c_str());

    std::printf("Figure 2 — CFid<^,0>: perturbed entries per aggressor role\n");
    for (fsm::Cell role : {fsm::Cell::I, fsm::Cell::J}) {
        const auto machine =
            fault::faulty_machine({fault::FaultKind::CfidUp0, role});
        for (const auto& bfe : machine.diff(fsm::MemoryFsm::good()))
            std::printf("  aggressor %c:  %s\n", fsm::cell_char(role),
                        bfe.str().c_str());
    }

    std::printf("\nFigure 3 — BFEs and their Test Patterns:\n");
    for (fsm::Cell role : {fsm::Cell::I, fsm::Cell::J}) {
        const auto cls =
            fault::extract_tp_class({fault::FaultKind::CfidUp0, role});
        std::printf("  %s\n", cls.str().c_str());
    }

    std::printf("\nFigure 4 — TPG for {<^,1>, <^,0>}:\n\n");
    std::vector<fault::TestPattern> tps;
    for (fault::FaultKind kind :
         {fault::FaultKind::CfidUp1, fault::FaultKind::CfidUp0})
        for (fsm::Cell role : {fsm::Cell::I, fsm::Cell::J})
            tps.push_back(
                fault::extract_tp_class({kind, role}).alternatives.front());
    const core::TestPatternGraph tpg(tps);
    std::printf("%s", tpg.str().c_str());

    const auto path = tpg.solve(/*constrain_start=*/true);
    if (path) {
        std::printf("\nminimum-weight Hamiltonian path (f.4.4 constrained), "
                    "cost %lld:\n  ",
                    static_cast<long long>(path->cost));
        for (std::size_t k = 0; k < path->order.size(); ++k)
            std::printf("%sTP%d", k ? " -> " : "", path->order[k] + 1);
        std::printf("\n");
    }
    return 0;
}
