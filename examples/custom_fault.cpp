/// \file custom_fault.cpp
/// The paper's "possibly add new user-defined faults" workflow, end to end
/// and below the Generator facade:
///
///   1. describe a fault the library does not know about by perturbing the
///      good machine M0 directly (here: a read-destructive coupling fault
///      — reading the aggressor while it holds 1 flips the victim);
///   2. extract its BFEs by diffing against M0 (Figure 3);
///   3. synthesise Test Patterns, build the Test Pattern Graph, solve the
///      ATSP, run the rewrite phases and emit a March test;
///   4. verify the result by simulating the faulty machines against the
///      generated GTS.

#include <cstdio>

#include "core/gts.hpp"
#include "core/march_builder.hpp"
#include "core/rewrite.hpp"
#include "core/test_pattern_graph.hpp"
#include "fault/test_pattern.hpp"
#include "sim/two_cell_sim.hpp"

using namespace mtg;

namespace {

/// Builds the faulty machine for "read-destructive coupling": a read of the
/// aggressor cell while it holds 1 flips the victim cell.
fsm::MemoryFsm read_destructive_coupling(fsm::Cell aggressor) {
    fsm::MemoryFsm machine = fsm::MemoryFsm::good();
    const fsm::Cell victim = fsm::other(aggressor);
    const fsm::Input read = fsm::read_input(aggressor);
    for (const fsm::PairState& state : fsm::all_known_states()) {
        if (trit_bit(state.get(aggressor)) != 1) continue;
        fsm::PairState next = state;
        next.set(victim, trit_not(state.get(victim)));
        machine.set_next(state, read, next);
    }
    return machine;
}

}  // namespace

int main() {
    const fsm::MemoryFsm good = fsm::MemoryFsm::good();

    std::printf("User-defined fault: read-destructive coupling <r1,~>\n");
    std::printf("(reading the aggressor at 1 inverts the victim)\n\n");

    // Step 1+2: both aggressor roles; BFEs by diff against M0.
    std::vector<fault::TestPattern> patterns;
    std::vector<fsm::MemoryFsm> machines;
    for (fsm::Cell role : {fsm::Cell::I, fsm::Cell::J}) {
        const fsm::MemoryFsm faulty = read_destructive_coupling(role);
        machines.push_back(faulty);
        std::printf("BFEs for aggressor %c:\n", fsm::cell_char(role));
        for (const fsm::Bfe& bfe : faulty.diff(good)) {
            const fault::TestPattern tp = fault::tp_from_bfe(bfe);
            std::printf("  %-34s -> TP %s\n", bfe.str().c_str(),
                        tp.str().c_str());
            patterns.push_back(tp);
        }
    }

    // The two BFEs per role are alternative sensitisations of the same
    // physical fault (an equivalence class, §5); keep the cheaper pattern
    // of each pair for this demo and let the pipeline chain them.
    std::vector<fault::TestPattern> chosen = {patterns[0], patterns[2]};

    // Step 3: TPG -> ATSP -> GTS -> March.
    core::TestPatternGraph tpg(chosen);
    std::printf("\nTest Pattern Graph:\n%s", tpg.str().c_str());

    // f.4.4 prefers uniform-background starts; when no TP qualifies (both
    // patterns here initialise to mixed states) fall back to the
    // unconstrained search, exactly as the Generator facade does.
    auto path = tpg.solve(/*constrain_start=*/true);
    if (!path) path = tpg.solve(/*constrain_start=*/false);
    if (!path) {
        std::fprintf(stderr, "no feasible tour\n");
        return 1;
    }
    std::vector<fault::TestPattern> chain;
    for (int node : path->order)
        chain.push_back(chosen[static_cast<std::size_t>(node)]);

    const core::Gts gts = core::reorder(core::concatenate_tps(chain));
    std::printf("\nGTS: %s\n", gts.str().c_str());

    const march::MarchTest test = core::build_march(gts);
    std::printf("March test: %s   (%dn)\n",
                test.str(march::Notation::Unicode).c_str(), test.complexity());

    // Step 4: verify against both faulty machines using the GTS simulator.
    bool all_detected = true;
    for (std::size_t m = 0; m < machines.size(); ++m) {
        const bool detected = sim::gts_detects(gts.ops(), machines[m]);
        std::printf("aggressor %c detected by GTS: %s\n", m == 0 ? 'i' : 'j',
                    detected ? "yes" : "NO");
        all_detected = all_detected && detected;
    }
    return all_detected ? 0 : 1;
}
