/// \file word_memories.cpp
/// Word-oriented testing: lifting a bit-oriented March test to a W-bit
/// memory with data backgrounds. Shows why the solid background is not
/// enough for intra-word coupling faults, how the binary-counting set
/// fixes it, and what diagnostic resolution the lifted test achieves
/// (word diagnosis dictionary built from guaranteed word traces).
///
/// Usage: word_memories [width]   (power of two, default 8)

#include <cstdio>
#include <cstdlib>

#include "diagnosis/word_dictionary.hpp"
#include "engine/engine.hpp"
#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "util/table.hpp"
#include "word/word_march.hpp"

int main(int argc, char** argv) {
    using namespace mtg;

    // One session for every coverage query below (the dictionary builds
    // route through the same process-wide engine internally).
    const engine::Engine engine;

    const int width = argc > 1 ? std::atoi(argv[1]) : 8;
    const auto solid = word::solid_background(width);
    const auto counting = word::counting_backgrounds(width);

    std::printf("word width %d; counting backgrounds:\n", width);
    for (const auto& bg : counting) std::printf("  %s\n", bg.str().c_str());
    std::printf("separates all bit pairs: %s\n\n",
                word::separates_all_bit_pairs(counting) ? "yes" : "NO");

    const auto& test = march::march_c_minus();
    word::WordRunOptions opts;
    opts.width = width;

    std::printf("March C- (10n bit-oriented) lifted to %d-bit words:\n",
                width);
    std::printf("  solid only:    %d ops/word\n",
                word::word_complexity(test, solid));
    std::printf("  counting set:  %d ops/word\n\n",
                word::word_complexity(test, counting));

    TextTable table;
    table.set_header({"fault", "solid bg", "counting bgs"});
    for (const char* family : {"SAF", "TF", "CFin", "CFid", "CFst"}) {
        for (fault::FaultKind kind : fault::expand_fault_family(family)) {
            table.add_row({fault::fault_kind_name(kind),
                           engine.covers_everywhere(test, solid, kind, opts)
                               ? "yes"
                               : "MISS",
                           engine.covers_everywhere(test, counting, kind,
                                                    opts)
                               ? "yes"
                               : "MISS"});
        }
    }
    std::printf("coverage (single-bit, intra-word and inter-word "
                "placements):\n\n%s", table.str().c_str());

    // Diagnosis: how many fault instances do the guaranteed word traces
    // distinguish? More backgrounds -> more observations -> finer classes.
    const auto kinds = fault::parse_fault_kinds("SAF,TF,CFin,CFid");
    TextTable diag;
    diag.set_header({"backgrounds", "instances", "detected",
                     "distinguished", "resolution"});
    for (bool use_counting : {false, true}) {
        const auto dict = diagnosis::WordFaultDictionary::build(
            test, use_counting ? counting : solid, kinds, opts);
        char res[16];
        std::snprintf(res, sizeof(res), "%.2f", dict.resolution());
        diag.add_row({use_counting ? "counting" : "solid",
                      std::to_string(dict.instance_count()),
                      std::to_string(dict.detected_count()),
                      std::to_string(dict.distinguished_count()), res});
    }
    std::printf("\nword diagnosis dictionary (March C-, %d-bit words):\n\n%s",
                width, diag.str().c_str());
    return 0;
}
