/// \file diagnose_coverage.cpp
/// The paper-§6 analysis as a standalone tool: builds the Coverage Matrix
/// (elementary blocks × fault instances) for a March test and runs the
/// set-covering non-redundancy check. March C (with its historically
/// redundant element) and March C- make an instructive pair:
///
///   diagnose_coverage "March C-" SAF,TF,ADF,CFin,CFid
///   diagnose_coverage "March C"  SAF,TF,ADF,CFin,CFid
///
/// Usage: diagnose_coverage [march-name-or-text] [fault-list]

#include <cstdio>
#include <string>

#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "march/parser.hpp"
#include "setcover/coverage_matrix.hpp"

int main(int argc, char** argv) {
    using namespace mtg;

    const std::string which = argc > 1 ? argv[1] : "March C";
    const std::string list = argc > 2 ? argv[2] : "SAF,TF,ADF,CFin,CFid";

    march::MarchTest test;
    try {
        test = march::find_march_test(which).test;
    } catch (const std::invalid_argument&) {
        test = march::parse_march(which);  // accept literal March syntax
    }
    const auto kinds = fault::parse_fault_kinds(list);

    std::printf("March test: %s   (%dn)\nfault list: %s\n\n",
                test.str(march::Notation::Unicode).c_str(), test.complexity(),
                list.c_str());

    const auto matrix = setcover::build_coverage_matrix(test, kinds);
    std::printf("Coverage matrix (blocks x fault instances):\n%s\n",
                matrix.str().c_str());

    const auto report = setcover::analyse_redundancy(matrix);
    std::printf("complete:       %s\n", report.complete ? "yes" : "NO");
    std::printf("blocks:         %d observing, %zu support\n",
                report.block_count, report.support_blocks.size());
    std::printf("minimum cover:  %d\n", report.min_cover_size);
    std::printf("non-redundant:  %s\n", report.non_redundant ? "yes" : "NO");
    if (!report.removable_blocks.empty()) {
        std::printf("individually removable blocks:");
        for (int r : report.removable_blocks)
            std::printf(" %s", matrix.block_names[static_cast<std::size_t>(r)]
                                   .c_str());
        std::printf("\n");
    }
    return 0;
}
