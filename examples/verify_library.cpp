/// \file verify_library.cpp
/// March test verification tool (the use case of van de Goor & Smit,
/// "Automating the Verification of March Tests", the paper's ref. [3]):
/// runs every known March test from the library against the standard fault
/// families on the fault simulator and prints the coverage matrix.
///
/// Usage: verify_library [fault-families]
///   default families: SAF TF ADF CFin CFid CFst WDF RDF DRDF IRF

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "fault/kinds.hpp"
#include "march/library.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using namespace mtg;

    // One simulation session for the whole sweep: the packed backend, the
    // process-wide pool, and a population cache shared by every
    // (test, kind) coverage query.
    const engine::Engine engine;

    std::vector<std::string> families;
    if (argc > 1) {
        for (int a = 1; a < argc; ++a) families.emplace_back(argv[a]);
    } else {
        families = {"SAF", "TF",  "ADF",  "CFin", "CFid",
                    "CFst", "WDF", "RDF", "DRDF", "IRF"};
    }

    TextTable table;
    std::vector<std::string> header = {"March test", "n"};
    header.insert(header.end(), families.begin(), families.end());
    table.set_header(header);

    for (const auto& named : march::known_march_tests()) {
        std::vector<std::string> row = {named.name,
                                        std::to_string(named.test.complexity())};
        for (const auto& family : families) {
            bool all = true;
            bool some = false;
            for (fault::FaultKind kind : fault::expand_fault_family(family)) {
                const bool ok = engine.covers_everywhere(named.test, kind);
                all = all && ok;
                some = some || ok;
            }
            row.push_back(all ? "yes" : (some ? "part" : "-"));
        }
        table.add_row(row);
    }

    std::printf("Fault coverage of the known March tests "
                "(fault-simulator verified, 8-cell memory, all placements "
                "and sweep orders):\n\n%s", table.str().c_str());
    std::printf("\n'yes' = every primitive of the family detected at every "
                "cell/pair;\n'part' = some primitives only; '-' = none.\n");
    return 0;
}
