#pragma once

/// \file test_pattern.hpp
/// Test Patterns (paper f.2.3) and their extraction from fault instances.
///
/// A TP is a triplet (I, E, O): initialisation state, exciting operation and
/// observing read-and-verify. TPs are synthesised from the BFEs of the
/// faulty machine; BFEs that are alternative sensitisations of the *same*
/// physical fault instance form an equivalence class (paper §5): covering
/// any one TP of the class covers the instance.

#include <optional>
#include <string>
#include <vector>

#include "fault/instance.hpp"
#include "fsm/abstract_op.hpp"
#include "fsm/memory_fsm.hpp"
#include "fsm/pair_state.hpp"

namespace mtg::fault {

/// One test pattern (I, E, O).
struct TestPattern {
    fsm::PairState init;                      ///< I — may contain don't-cares
    std::optional<fsm::AbstractOp> excite;    ///< E — absent when the observing
                                              ///  read itself excites (pure λ-faults)
    fsm::AbstractOp observe;                  ///< O — always a verify-read r_d^c

    /// State reached after applying E to I in the good machine — the
    /// "observation state" S_S used for the TPG edge weights (f.4.1).
    /// (Reads leave the good state unchanged, so this is also the state
    /// after O.)
    [[nodiscard]] fsm::PairState observation_state() const;

    /// Number of cold-start writes needed to establish I from an unknown
    /// memory: the weight of the dummy-start edge in the open-path ATSP.
    [[nodiscard]] int init_cost() const { return init.known_count(); }

    /// "(01, w1i, r1j)"; E printed as "-" when absent.
    [[nodiscard]] std::string str() const;

    friend bool operator==(const TestPattern&, const TestPattern&) = default;
};

/// Equivalence class of alternative TPs for one fault instance (paper §5).
struct TpClass {
    FaultInstance instance;
    std::vector<TestPattern> alternatives;  ///< non-empty; any one suffices

    [[nodiscard]] std::string str() const;
};

/// Synthesises the TP for a single BFE (Figure 3 -> f.2.3):
/// - δ-fault: I = BFE state, E = BFE input, O = verify-read of a cell whose
///   faulty next-state value differs from the good one (expected = good value);
/// - pure λ-fault on a read: I = BFE state, E absent, O = that read with the
///   good output as expected value.
[[nodiscard]] TestPattern tp_from_bfe(const fsm::Bfe& bfe);

/// All TPs of a fault instance: BFE extraction (diff against M0), TP
/// synthesis, then don't-care merging — TPs identical except for the value
/// of one unrelated cell in I are collapsed with that cell set to X (this
/// turns e.g. the two TF⟨↑⟩ BFEs (00,w1i,r1i),(01,w1i,r1i) into the single
/// pattern (0x,w1i,r1i)).
[[nodiscard]] TpClass extract_tp_class(const FaultInstance& instance);

/// Convenience: classes for a whole primitive list, in instance order.
[[nodiscard]] std::vector<TpClass> extract_tp_classes(
    const std::vector<FaultKind>& kinds);

}  // namespace mtg::fault
