#include "fault/fault_list.hpp"

namespace mtg::fault {

const std::vector<NamedFaultList>& table3_fault_lists() {
    static const std::vector<NamedFaultList> lists = {
        {"SAF", parse_fault_kinds("SAF"), "MATS", 4, 4},
        {"SAF+TF", parse_fault_kinds("SAF,TF"), "MATS+", 5, 5},
        {"SAF+TF+ADF", parse_fault_kinds("SAF,TF,ADF"), "MATS++", 6, 6},
        {"SAF+TF+ADF+CFin", parse_fault_kinds("SAF,TF,ADF,CFin"), "March X", 6,
         6},
        {"SAF+TF+ADF+CFin+CFid", parse_fault_kinds("SAF,TF,ADF,CFin,CFid"),
         "March C-", 10, 10},
        {"CFin", parse_fault_kinds("CFin"), "(not found)", 0, 5},
    };
    return lists;
}

const std::vector<NamedFaultList>& extended_fault_lists() {
    static const std::vector<NamedFaultList> lists = {
        {"CFid", parse_fault_kinds("CFid"), "", 0, 0},
        {"CFst", parse_fault_kinds("CFst"), "", 0, 0},
        {"SAF+WDF", parse_fault_kinds("SAF,WDF"), "", 0, 0},
        {"SAF+RDF+IRF", parse_fault_kinds("SAF,RDF,IRF"), "", 0, 0},
        {"SAF+DRDF", parse_fault_kinds("SAF,DRDF"), "", 0, 0},
        {"SAF+TF+DRF", parse_fault_kinds("SAF,TF,DRF"), "", 0, 0},
        {"SAF+TF+ADF+CFin+CFid+CFst",
         parse_fault_kinds("SAF,TF,ADF,CFin,CFid,CFst"), "March C-", 10, 0},
    };
    return lists;
}

}  // namespace mtg::fault
