#pragma once

/// \file instance.hpp
/// Fault *instances*: a fault primitive bound to abstract cell roles.
///
/// A two-cell primitive such as CFid⟨↑,0⟩ yields two instances in the
/// two-cell model: aggressor = lower-address cell i (victim j) and
/// aggressor = higher-address cell j (victim i). A March test must detect
/// the fault for *both* relative address orders, so each instance is an
/// independent coverage obligation (this is exactly why the paper's Figure 2
/// machine carries two bold edges and both TP1 and TP2 are required).
/// Single-cell primitives yield a single instance on cell i: a March test
/// applies the same operations to every cell, so one role is representative.

#include <string>
#include <vector>

#include "fault/kinds.hpp"
#include "fsm/memory_fsm.hpp"

namespace mtg::fault {

/// A primitive bound to a role assignment.
struct FaultInstance {
    FaultKind kind{FaultKind::Saf0};
    fsm::Cell aggressor{fsm::Cell::I};  ///< faulty cell for 1-cell faults

    [[nodiscard]] fsm::Cell victim() const { return fsm::other(aggressor); }

    /// "CFid<^,0>@i>j" (aggressor i, victim j) or "SAF0@i".
    [[nodiscard]] std::string name() const;

    friend bool operator==(const FaultInstance&, const FaultInstance&) = default;
};

/// Expands primitives into instances (two roles for two-cell primitives).
[[nodiscard]] std::vector<FaultInstance> instantiate(
    const std::vector<FaultKind>& kinds);

/// Builds the faulty Mealy machine Mi for an instance by perturbing M0
/// (paper §3, f.2.2 / Figure 2). The returned machine differs from
/// MemoryFsm::good() exactly in the entries affected by the fault.
[[nodiscard]] fsm::MemoryFsm faulty_machine(const FaultInstance& instance);

}  // namespace mtg::fault
