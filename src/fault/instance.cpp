#include "fault/instance.hpp"

#include "util/contracts.hpp"

namespace mtg::fault {

using fsm::Cell;
using fsm::Input;
using fsm::MemoryFsm;
using fsm::PairState;
using mtg::Trit;
using mtg::trit_from_bit;

std::string FaultInstance::name() const {
    std::string n = fault_kind_name(kind);
    if (is_two_cell(kind)) {
        n += aggressor == Cell::I ? "@i>j" : "@j>i";
    } else {
        n += aggressor == Cell::I ? "@i" : "@j";
    }
    return n;
}

std::vector<FaultInstance> instantiate(const std::vector<FaultKind>& kinds) {
    std::vector<FaultInstance> instances;
    for (FaultKind k : kinds) {
        instances.push_back({k, Cell::I});
        if (is_two_cell(k)) instances.push_back({k, Cell::J});
    }
    return instances;
}

namespace {

/// Iterates the four known states, calling fn(state).
template <typename Fn>
void for_each_state(Fn&& fn) {
    for (const auto& s : fsm::all_known_states()) fn(s);
}

/// Perturbs a single-cell fault on cell `c`.
void perturb_single_cell(MemoryFsm& m, FaultKind kind, Cell c) {
    const Input w0 = fsm::write_input(c, 0);
    const Input w1 = fsm::write_input(c, 1);
    const Input rd = fsm::read_input(c);

    for_each_state([&](const PairState& s) {
        const int v = trit_bit(s.get(c));
        switch (kind) {
            case FaultKind::Saf0:
                // Cannot be set to 1; reads of a (nominally) 1 cell give 0.
                if (v == 0) m.set_next(s, w1, s);
                if (v == 1) m.set_output(s, rd, Trit::Zero);
                break;
            case FaultKind::Saf1:
                if (v == 1) m.set_next(s, w0, s);
                if (v == 0) m.set_output(s, rd, Trit::One);
                break;
            case FaultKind::TfUp:
                if (v == 0) m.set_next(s, w1, s);
                break;
            case FaultKind::TfDown:
                if (v == 1) m.set_next(s, w0, s);
                break;
            case FaultKind::Wdf0:
                if (v == 0) {
                    PairState n = s;
                    n.set(c, Trit::One);
                    m.set_next(s, w0, n);
                }
                break;
            case FaultKind::Wdf1:
                if (v == 1) {
                    PairState n = s;
                    n.set(c, Trit::Zero);
                    m.set_next(s, w1, n);
                }
                break;
            case FaultKind::Rdf0:
                if (v == 0) {
                    PairState n = s;
                    n.set(c, Trit::One);
                    m.set_next(s, rd, n);
                    m.set_output(s, rd, Trit::One);
                }
                break;
            case FaultKind::Rdf1:
                if (v == 1) {
                    PairState n = s;
                    n.set(c, Trit::Zero);
                    m.set_next(s, rd, n);
                    m.set_output(s, rd, Trit::Zero);
                }
                break;
            case FaultKind::Drdf0:
                if (v == 0) {
                    PairState n = s;
                    n.set(c, Trit::One);
                    m.set_next(s, rd, n);  // output stays correct (deceptive)
                }
                break;
            case FaultKind::Drdf1:
                if (v == 1) {
                    PairState n = s;
                    n.set(c, Trit::Zero);
                    m.set_next(s, rd, n);
                }
                break;
            case FaultKind::Irf0:
                if (v == 0) m.set_output(s, rd, Trit::One);
                break;
            case FaultKind::Irf1:
                if (v == 1) m.set_output(s, rd, Trit::Zero);
                break;
            case FaultKind::Drf0:
                if (v == 1) {
                    PairState n = s;
                    n.set(c, Trit::Zero);
                    m.set_next(s, Input::T, n);
                }
                break;
            case FaultKind::Drf1:
                if (v == 0) {
                    PairState n = s;
                    n.set(c, Trit::One);
                    m.set_next(s, Input::T, n);
                }
                break;
            default: MTG_ASSERT(false && "not a single-cell fault");
        }
    });
}

/// Perturbs a two-cell fault with aggressor `a`, victim `v`.
void perturb_two_cell(MemoryFsm& m, FaultKind kind, Cell a) {
    const Cell v = fsm::other(a);
    const Input w0a = fsm::write_input(a, 0);
    const Input w1a = fsm::write_input(a, 1);

    for_each_state([&](const PairState& s) {
        const int va = trit_bit(s.get(a));
        const int vv = trit_bit(s.get(v));
        switch (kind) {
            case FaultKind::CfinUp:
                // rising write on aggressor inverts victim
                if (va == 0) {
                    PairState n = s;
                    n.set(a, Trit::One);
                    n.set(v, trit_from_bit(1 - vv));
                    m.set_next(s, w1a, n);
                }
                break;
            case FaultKind::CfinDown:
                if (va == 1) {
                    PairState n = s;
                    n.set(a, Trit::Zero);
                    n.set(v, trit_from_bit(1 - vv));
                    m.set_next(s, w0a, n);
                }
                break;
            case FaultKind::CfidUp0:
            case FaultKind::CfidUp1: {
                const int f = kind == FaultKind::CfidUp1 ? 1 : 0;
                // rising write on aggressor forces victim to f; only a
                // perturbation when the victim actually changes
                if (va == 0 && vv != f) {
                    PairState n = s;
                    n.set(a, Trit::One);
                    n.set(v, trit_from_bit(f));
                    m.set_next(s, w1a, n);
                }
                break;
            }
            case FaultKind::CfidDown0:
            case FaultKind::CfidDown1: {
                const int f = kind == FaultKind::CfidDown1 ? 1 : 0;
                if (va == 1 && vv != f) {
                    PairState n = s;
                    n.set(a, Trit::Zero);
                    n.set(v, trit_from_bit(f));
                    m.set_next(s, w0a, n);
                }
                break;
            }
            case FaultKind::CfstS0F0:
            case FaultKind::CfstS0F1:
            case FaultKind::CfstS1F0:
            case FaultKind::CfstS1F1: {
                // ⟨sv, f⟩: while aggressor is in state sv the victim is
                // forced to f. Operationally: every transition whose good
                // destination has (a == sv, v == ~f) lands on v == f instead.
                const int sv = (kind == FaultKind::CfstS1F0 ||
                                kind == FaultKind::CfstS1F1)
                                   ? 1
                                   : 0;
                const int f = (kind == FaultKind::CfstS0F1 ||
                               kind == FaultKind::CfstS1F1)
                                  ? 1
                                  : 0;
                for (Input in : fsm::all_inputs()) {
                    if (!fsm::is_write(in)) continue;
                    const PairState good = MemoryFsm::good().next(s, in);
                    // Skip unreachable source states (they already violate
                    // the forced condition).
                    if (trit_bit(s.get(a)) == sv && trit_bit(s.get(v)) != f)
                        continue;
                    if (trit_bit(good.get(a)) == sv &&
                        trit_bit(good.get(v)) != f) {
                        PairState n = good;
                        n.set(v, trit_from_bit(f));
                        m.set_next(s, in, n);
                    }
                }
                break;
            }
            case FaultKind::Af:
                // Shorted decoder lines: a write to the aggressor also
                // writes the victim with the same value.
                for (int d = 0; d < 2; ++d) {
                    if (vv != d) {
                        PairState n = s;
                        n.set(a, trit_from_bit(d));
                        n.set(v, trit_from_bit(d));
                        m.set_next(s, d ? w1a : w0a, n);
                    }
                }
                break;
            case FaultKind::AfMap: {
                // Decoder-map fault: the aggressor's address accesses the
                // victim's cell. Writes to a land on v only; reads of a
                // return v's value.
                for (int d = 0; d < 2; ++d) {
                    PairState n = s;
                    n.set(v, trit_from_bit(d));  // a's cell untouched
                    const PairState good =
                        MemoryFsm::good().next(s, d ? w1a : w0a);
                    if (n != good) m.set_next(s, d ? w1a : w0a, n);
                }
                if (va != vv)
                    m.set_output(s, fsm::read_input(a), trit_from_bit(vv));
                break;
            }
            default: MTG_ASSERT(false && "not a two-cell fault");
        }
        (void)va;
    });
}

}  // namespace

fsm::MemoryFsm faulty_machine(const FaultInstance& instance) {
    MemoryFsm m = MemoryFsm::good();
    if (is_two_cell(instance.kind)) {
        perturb_two_cell(m, instance.kind, instance.aggressor);
    } else {
        perturb_single_cell(m, instance.kind, instance.aggressor);
    }
    return m;
}

}  // namespace mtg::fault
