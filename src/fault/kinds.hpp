#pragma once

/// \file kinds.hpp
/// Catalogue of memory fault primitives.
///
/// Notation follows van de Goor [paper refs 1, 9]. Two-cell faults are
/// written ⟨S,F⟩: S is the sensitising condition on the aggressor cell, F
/// the effect on the victim. "up"/"down" denote rising/falling write
/// transitions on the aggressor.

#include <cstdint>
#include <string>
#include <vector>

namespace mtg::fault {

/// Every supported fault primitive.
enum class FaultKind : std::uint8_t {
    // --- single-cell ---
    Saf0,     ///< stuck-at-0
    Saf1,     ///< stuck-at-1
    TfUp,     ///< transition fault: 0->1 write fails
    TfDown,   ///< transition fault: 1->0 write fails
    Wdf0,     ///< write disturb: w0 on a 0 cell flips it to 1
    Wdf1,     ///< write disturb: w1 on a 1 cell flips it to 0
    Rdf0,     ///< read disturb: reading a 0 cell flips it and returns 1
    Rdf1,     ///< read disturb: reading a 1 cell flips it and returns 0
    Drdf0,    ///< deceptive read disturb: reading a 0 cell returns 0 but flips it
    Drdf1,    ///< deceptive read disturb: reading a 1 cell returns 1 but flips it
    Irf0,     ///< incorrect read: reading a 0 cell returns 1 (no flip)
    Irf1,     ///< incorrect read: reading a 1 cell returns 0 (no flip)
    Drf0,     ///< data retention: a 1 cell decays to 0 after the wait period
    Drf1,     ///< data retention: a 0 cell decays to 1 after the wait period
    // --- two-cell (coupling); aggressor/victim roles instantiated later ---
    CfinUp,   ///< inversion coupling ⟨↑,~⟩: rising aggressor inverts victim
    CfinDown, ///< inversion coupling ⟨↓,~⟩: falling aggressor inverts victim
    CfidUp0,  ///< idempotent coupling ⟨↑,0⟩
    CfidUp1,  ///< idempotent coupling ⟨↑,1⟩
    CfidDown0,///< idempotent coupling ⟨↓,0⟩
    CfidDown1,///< idempotent coupling ⟨↓,1⟩
    CfstS0F0, ///< state coupling ⟨0,0⟩: victim forced to 0 while aggressor is 0
    CfstS0F1, ///< state coupling ⟨0,1⟩
    CfstS1F0, ///< state coupling ⟨1,0⟩
    CfstS1F1, ///< state coupling ⟨1,1⟩
    // --- address decoder ---
    Af,       ///< address decoder fault, modelled by its coupling-equivalent
              ///  condition: a write to the aggressor also writes the victim
              ///  (shorted decoder lines); see DESIGN.md §4.7
    AfMap,    ///< concrete decoder-map fault (van de Goor AF types 2/4): the
              ///  aggressor address accesses the victim's cell instead of its
              ///  own — writes land on the victim, reads return the victim
};

/// All kinds, in declaration order.
[[nodiscard]] const std::vector<FaultKind>& all_fault_kinds();

/// Canonical short name, e.g. "SAF0", "CFid<^,1>", "AF".
[[nodiscard]] std::string fault_kind_name(FaultKind k);

/// True for coupling faults and AF (they involve two cells / two roles).
[[nodiscard]] bool is_two_cell(FaultKind k);

/// True when sensitisation requires the wait operation T.
[[nodiscard]] bool needs_wait(FaultKind k);

/// Expands a fault *family* name into primitives:
///   "SAF" -> {Saf0, Saf1};        "TF"   -> {TfUp, TfDown};
///   "ADF"/"AF" -> {Af};           "CFin" -> {CfinUp, CfinDown};
///   "CFid" -> 4 idempotent CFs;   "CFst" -> 4 state CFs;
///   "WDF", "RDF", "DRDF", "IRF", "DRF" -> their 2 polarities;
/// individual primitive names ("SAF0", "CFid<^,1>") are accepted too.
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::vector<FaultKind> expand_fault_family(const std::string& name);

/// Parses a comma/space separated list of family or primitive names,
/// e.g. "SAF, TF, ADF". Duplicates are removed, order preserved.
[[nodiscard]] std::vector<FaultKind> parse_fault_kinds(const std::string& list);

}  // namespace mtg::fault
