#pragma once

/// \file placement.hpp
/// Canonical representative placement shared by the bit and word stacks.
///
/// The coverage matrix and both diagnosis dictionaries place each fault
/// instance at fixed representative positions so their populations stay
/// aligned: the "lo" slot at count/3 and the "hi" slot at 2·count/3 of the
/// address range (cells for the bit stack, words for the word stack), with
/// the instance's aggressor role deciding which slot is the aggressor.
/// sim::place_instance and word::place_instance both resolve their slots
/// through this helper, so the two placements can never drift apart.

#include "fault/instance.hpp"

namespace mtg::fault {

/// The two representative slots of an address range of `count` positions.
struct CanonicalSlots {
    int lo{0};  ///< count/3 — single-cell faults and the Cell::I aggressor
    int hi{0};  ///< 2·count/3 — the Cell::J role
};

[[nodiscard]] constexpr CanonicalSlots canonical_slots(int count) {
    return {count / 3, 2 * count / 3};
}

/// True when the instance's aggressor takes the lo slot (aggressor role is
/// the lower-address cell i).
[[nodiscard]] constexpr bool aggressor_at_lo(const FaultInstance& instance) {
    return instance.aggressor == fsm::Cell::I;
}

}  // namespace mtg::fault
