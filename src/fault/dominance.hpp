#pragma once

/// \file dominance.hpp
/// Field-wise primitive-dominance reduction of fault populations.
///
/// The synthesis engine (src/synth/) probes the Engine thousands of times
/// per search; each probe sweeps the whole kind-expanded population. Most
/// of that population is redundant *for search purposes*: one fault can
/// dominate another, meaning every March test that guarantees detection
/// of the dominator also guarantees detection of the dominated. A
/// dominated fault contributes nothing to the fitness signal and can be
/// dropped from the population the oracle sweeps per probe.
///
/// Two field-wise reductions compose here:
///
/// 1. **Placement classes (within a kind).** March elements apply the
///    same operation sequence to every cell, so detection of a
///    single-cell fault does not depend on the cell address, and
///    detection of a two-cell fault depends only on the *relative* order
///    of aggressor and victim (which decides the op interleaving in every
///    address sweep). The full bit population (every cell / every ordered
///    pair) collapses to one representative per relational class: one
///    placement for single-cell kinds, two (aggressor-below and
///    aggressor-above) for two-cell kinds. Word populations keep bit
///    positions distinct — data backgrounds assign values per bit, so bit
///    identity matters — and collapse only across word placements with
///    the same (aggressor bit, victim bit, word-order) signature.
///
/// 2. **Primitive dominance (across kinds, same placement).** Derived
///    per ⇕ expansion from the detection conditions of the FSM models:
///    the read that catches the dominator also catches the dominated.
///      - {SAF0, RDF1, IRF1} are mutually equivalent (each is detected
///        exactly when the test guarantees a read expecting 1 on the
///        cell), and each is dominated by TFup, WDF1 and DRDF1 (whose
///        detection *requires* such a read to observe the sensitised
///        state).
///      - Symmetrically {SAF1, RDF0, IRF0} are equivalent and dominated
///        by TFdown, WDF0 and DRDF0.
///    Within an equivalence group the enum-smallest member present in the
///    universe is kept as the representative.
///
/// The reduction is a *search* heuristic with a safety net, not a proof
/// obligation: synth::Scorer always re-validates accepted tests with
/// Want::DetectsAll over the full unpruned universe, so an unsound drop
/// could only cost extra search iterations, never a wrong accept. The
/// Engine caches pruned expansions under keys distinct from the full ones
/// (see engine::PopulationCache), so both coexist warm.

#include <span>
#include <vector>

#include "sim/memory.hpp"
#include "word/word_memory.hpp"

namespace mtg::fault {

/// Keep-mask over `faults` (1 = keep, 0 = dominated). Order-preserving:
/// the representative of every class is its first occurrence in `faults`,
/// so per-kind segment layouts (engine population offsets) survive the
/// filter. Cross-kind dominance considers exactly the kinds present in
/// `faults` — the mask of a concatenated multi-kind population is NOT the
/// concatenation of per-kind masks.
[[nodiscard]] std::vector<char> dominance_keep_mask(
    std::span<const sim::InjectedFault> faults);

/// Word-universe counterpart: classes keep (aggressor bit, victim bit,
/// word-order relation) distinct and collapse across word placements.
[[nodiscard]] std::vector<char> dominance_keep_mask(
    std::span<const word::InjectedBitFault> faults);

/// Convenience filters: the kept faults, in their original order.
[[nodiscard]] std::vector<sim::InjectedFault> dominance_prune(
    std::span<const sim::InjectedFault> faults);
[[nodiscard]] std::vector<word::InjectedBitFault> dominance_prune(
    std::span<const word::InjectedBitFault> faults);

}  // namespace mtg::fault
