#pragma once

/// \file fault_list.hpp
/// Named fault lists, including the six lists of the paper's Table 3.

#include <string>
#include <vector>

#include "fault/kinds.hpp"

namespace mtg::fault {

/// A named fault list with the paper's reference data where applicable.
struct NamedFaultList {
    std::string name;                 ///< e.g. "SAF+TF+ADF"
    std::vector<FaultKind> kinds;     ///< expanded primitives
    std::string known_equivalent;     ///< Table 3 "Equivalent Known March Test"
    int known_complexity{0};          ///< complexity of that equivalent (0 = none)
    int paper_complexity{0};          ///< complexity the paper's generator reached
};

/// The six rows of Table 3, in paper order:
///   1. SAF                          -> 4n  (MATS)
///   2. SAF,TF                       -> 5n  (MATS+)
///   3. SAF,TF,ADF                   -> 6n  (MATS++)
///   4. SAF,TF,ADF,CFin              -> 6n  (March X)
///   5. SAF,TF,ADF,CFin,CFid         -> 10n (March C-)
///   6. CFin                         -> 5n  (not found in literature)
[[nodiscard]] const std::vector<NamedFaultList>& table3_fault_lists();

/// Additional lists exercised by tests/benches beyond Table 3 (static
/// read/write disturbs, state coupling, retention).
[[nodiscard]] const std::vector<NamedFaultList>& extended_fault_lists();

}  // namespace mtg::fault
