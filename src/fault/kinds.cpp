#include "fault/kinds.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>

namespace mtg::fault {

const std::vector<FaultKind>& all_fault_kinds() {
    static const std::vector<FaultKind> kinds = {
        FaultKind::Saf0,      FaultKind::Saf1,      FaultKind::TfUp,
        FaultKind::TfDown,    FaultKind::Wdf0,      FaultKind::Wdf1,
        FaultKind::Rdf0,      FaultKind::Rdf1,      FaultKind::Drdf0,
        FaultKind::Drdf1,     FaultKind::Irf0,      FaultKind::Irf1,
        FaultKind::Drf0,      FaultKind::Drf1,      FaultKind::CfinUp,
        FaultKind::CfinDown,  FaultKind::CfidUp0,   FaultKind::CfidUp1,
        FaultKind::CfidDown0, FaultKind::CfidDown1, FaultKind::CfstS0F0,
        FaultKind::CfstS0F1,  FaultKind::CfstS1F0,  FaultKind::CfstS1F1,
        FaultKind::Af,        FaultKind::AfMap,
    };
    return kinds;
}

std::string fault_kind_name(FaultKind k) {
    switch (k) {
        case FaultKind::Saf0: return "SAF0";
        case FaultKind::Saf1: return "SAF1";
        case FaultKind::TfUp: return "TF<^>";
        case FaultKind::TfDown: return "TF<v>";
        case FaultKind::Wdf0: return "WDF0";
        case FaultKind::Wdf1: return "WDF1";
        case FaultKind::Rdf0: return "RDF0";
        case FaultKind::Rdf1: return "RDF1";
        case FaultKind::Drdf0: return "DRDF0";
        case FaultKind::Drdf1: return "DRDF1";
        case FaultKind::Irf0: return "IRF0";
        case FaultKind::Irf1: return "IRF1";
        case FaultKind::Drf0: return "DRF0";
        case FaultKind::Drf1: return "DRF1";
        case FaultKind::CfinUp: return "CFin<^>";
        case FaultKind::CfinDown: return "CFin<v>";
        case FaultKind::CfidUp0: return "CFid<^,0>";
        case FaultKind::CfidUp1: return "CFid<^,1>";
        case FaultKind::CfidDown0: return "CFid<v,0>";
        case FaultKind::CfidDown1: return "CFid<v,1>";
        case FaultKind::CfstS0F0: return "CFst<0,0>";
        case FaultKind::CfstS0F1: return "CFst<0,1>";
        case FaultKind::CfstS1F0: return "CFst<1,0>";
        case FaultKind::CfstS1F1: return "CFst<1,1>";
        case FaultKind::Af: return "AF";
        case FaultKind::AfMap: return "AF2";
    }
    return "?";
}

bool is_two_cell(FaultKind k) {
    switch (k) {
        case FaultKind::CfinUp:
        case FaultKind::CfinDown:
        case FaultKind::CfidUp0:
        case FaultKind::CfidUp1:
        case FaultKind::CfidDown0:
        case FaultKind::CfidDown1:
        case FaultKind::CfstS0F0:
        case FaultKind::CfstS0F1:
        case FaultKind::CfstS1F0:
        case FaultKind::CfstS1F1:
        case FaultKind::Af:
        case FaultKind::AfMap: return true;
        default: return false;
    }
}

bool needs_wait(FaultKind k) {
    return k == FaultKind::Drf0 || k == FaultKind::Drf1;
}

namespace {

std::string normalise(std::string s) {
    std::string out;
    for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
    return out;
}

const std::map<std::string, std::vector<FaultKind>>& family_table() {
    using K = FaultKind;
    static const std::map<std::string, std::vector<FaultKind>> table = {
        {"SAF", {K::Saf0, K::Saf1}},
        {"SAF0", {K::Saf0}},
        {"SAF1", {K::Saf1}},
        {"TF", {K::TfUp, K::TfDown}},
        {"TF<^>", {K::TfUp}},
        {"TF<V>", {K::TfDown}},
        {"WDF", {K::Wdf0, K::Wdf1}},
        {"WDF0", {K::Wdf0}},
        {"WDF1", {K::Wdf1}},
        {"RDF", {K::Rdf0, K::Rdf1}},
        {"RDF0", {K::Rdf0}},
        {"RDF1", {K::Rdf1}},
        {"DRDF", {K::Drdf0, K::Drdf1}},
        {"DRDF0", {K::Drdf0}},
        {"DRDF1", {K::Drdf1}},
        {"IRF", {K::Irf0, K::Irf1}},
        {"IRF0", {K::Irf0}},
        {"IRF1", {K::Irf1}},
        {"DRF", {K::Drf0, K::Drf1}},
        {"DRF0", {K::Drf0}},
        {"DRF1", {K::Drf1}},
        {"CFIN", {K::CfinUp, K::CfinDown}},
        {"CFIN<^>", {K::CfinUp}},
        {"CFIN<V>", {K::CfinDown}},
        {"CFID", {K::CfidUp0, K::CfidUp1, K::CfidDown0, K::CfidDown1}},
        {"CFID<^,0>", {K::CfidUp0}},
        {"CFID<^,1>", {K::CfidUp1}},
        {"CFID<V,0>", {K::CfidDown0}},
        {"CFID<V,1>", {K::CfidDown1}},
        {"CFST", {K::CfstS0F0, K::CfstS0F1, K::CfstS1F0, K::CfstS1F1}},
        {"CFST<0,0>", {K::CfstS0F0}},
        {"CFST<0,1>", {K::CfstS0F1}},
        {"CFST<1,0>", {K::CfstS1F0}},
        {"CFST<1,1>", {K::CfstS1F1}},
        {"AF", {K::Af}},
        {"ADF", {K::Af}},
        {"AF2", {K::AfMap}},
        {"AFMAP", {K::AfMap}},
    };
    return table;
}

}  // namespace

std::vector<FaultKind> expand_fault_family(const std::string& name) {
    const auto& table = family_table();
    auto it = table.find(normalise(name));
    if (it == table.end())
        throw std::invalid_argument("unknown fault family or primitive: " + name);
    return it->second;
}

std::vector<FaultKind> parse_fault_kinds(const std::string& list) {
    std::vector<FaultKind> kinds;
    std::string token;
    auto flush = [&] {
        if (token.empty()) return;
        for (FaultKind k : expand_fault_family(token))
            if (std::find(kinds.begin(), kinds.end(), k) == kinds.end())
                kinds.push_back(k);
        token.clear();
    };
    int angle_depth = 0;
    for (char c : list) {
        if (c == '<') ++angle_depth;
        if (c == '>') --angle_depth;
        if ((c == ',' || c == ';') && angle_depth == 0) {
            flush();
        } else {
            token.push_back(c);
        }
    }
    flush();
    if (kinds.empty())
        throw std::invalid_argument("empty fault list: '" + list + "'");
    return kinds;
}

}  // namespace mtg::fault
