#include "fault/test_pattern.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace mtg::fault {

using fsm::AbstractOp;
using fsm::Bfe;
using fsm::Cell;
using fsm::PairState;
using mtg::Trit;

fsm::PairState TestPattern::observation_state() const {
    return excite ? init.after(*excite) : init;
}

std::string TestPattern::str() const {
    std::ostringstream os;
    os << '(' << init.str() << ", " << (excite ? excite->str() : "-") << ", "
       << observe.str() << ')';
    return os.str();
}

std::string TpClass::str() const {
    std::ostringstream os;
    os << instance.name() << ": {";
    for (std::size_t k = 0; k < alternatives.size(); ++k) {
        if (k) os << ", ";
        os << alternatives[k].str();
    }
    os << '}';
    return os.str();
}

TestPattern tp_from_bfe(const Bfe& bfe) {
    TestPattern tp;
    tp.init = bfe.state;
    if (bfe.is_lambda_fault() && fsm::is_read(bfe.input) &&
        !bfe.is_delta_fault()) {
        // The faulty read output itself reveals the fault: observe directly.
        MTG_EXPECTS(is_known(bfe.good_out));
        tp.excite = std::nullopt;
        tp.observe =
            AbstractOp::read(fsm::input_cell(bfe.input), trit_bit(bfe.good_out));
        return tp;
    }
    MTG_EXPECTS(bfe.is_delta_fault());
    tp.excite = fsm::input_to_op(
        bfe.input,
        fsm::is_read(bfe.input) && is_known(bfe.good_out) ? trit_bit(bfe.good_out)
                                                          : 0);
    // Observe a cell whose faulty value diverges from the good one. Prefer
    // the cell that differs; when both differ pick cell i (arbitrary but
    // deterministic).
    Cell observed = Cell::I;
    if (bfe.good_next.i != bfe.faulty_next.i) {
        observed = Cell::I;
    } else {
        MTG_ASSERT(bfe.good_next.j != bfe.faulty_next.j);
        observed = Cell::J;
    }
    tp.observe = AbstractOp::read(observed, trit_bit(bfe.good_next.get(observed)));
    return tp;
}

namespace {

/// Attempts to merge two TPs that differ only in the init value of a single
/// cell (both values covered -> don't-care). Returns the merged TP or
/// nullopt.
std::optional<TestPattern> try_merge(const TestPattern& a,
                                     const TestPattern& b) {
    if (a.excite != b.excite || a.observe != b.observe) return std::nullopt;
    const bool diff_i = a.init.i != b.init.i;
    const bool diff_j = a.init.j != b.init.j;
    if (diff_i == diff_j) return std::nullopt;  // differ in 0 or 2 cells
    const Cell c = diff_i ? Cell::I : Cell::J;
    if (!is_known(a.init.get(c)) || !is_known(b.init.get(c)))
        return std::nullopt;
    TestPattern merged = a;
    merged.init.set(c, Trit::X);
    return merged;
}

/// Repeatedly merges mergeable TP pairs until a fixed point.
std::vector<TestPattern> merge_dont_cares(std::vector<TestPattern> tps) {
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t x = 0; x < tps.size() && !changed; ++x) {
            for (std::size_t y = x + 1; y < tps.size() && !changed; ++y) {
                if (auto merged = try_merge(tps[x], tps[y])) {
                    tps[x] = *merged;
                    tps.erase(tps.begin() + static_cast<std::ptrdiff_t>(y));
                    changed = true;
                }
            }
        }
    }
    return tps;
}

}  // namespace

TpClass extract_tp_class(const FaultInstance& instance) {
    const fsm::MemoryFsm good = fsm::MemoryFsm::good();
    const fsm::MemoryFsm faulty = faulty_machine(instance);
    const std::vector<Bfe> bfes = faulty.diff(good);
    MTG_ENSURES(!bfes.empty());

    std::vector<TestPattern> tps;
    tps.reserve(bfes.size());
    for (const Bfe& bfe : bfes) tps.push_back(tp_from_bfe(bfe));
    tps = merge_dont_cares(std::move(tps));

    return TpClass{instance, std::move(tps)};
}

std::vector<TpClass> extract_tp_classes(const std::vector<FaultKind>& kinds) {
    std::vector<TpClass> classes;
    for (const FaultInstance& inst : instantiate(kinds))
        classes.push_back(extract_tp_class(inst));
    return classes;
}

}  // namespace mtg::fault
