#include "fault/dominance.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <tuple>
#include <utility>

namespace mtg::fault {

namespace {

/// The two detection-equivalence groups and their directed dominators
/// (see the header derivation). Group order is enum order, so the kept
/// representative is deterministic.
struct DominanceGroup {
    std::array<FaultKind, 3> members;
    std::array<FaultKind, 3> dominators;
};

constexpr std::array<DominanceGroup, 2> kGroups{{
    // Detected exactly by a guaranteed read expecting 1.
    {{FaultKind::Saf0, FaultKind::Rdf1, FaultKind::Irf1},
     {FaultKind::TfUp, FaultKind::Wdf1, FaultKind::Drdf1}},
    // Detected exactly by a guaranteed read expecting 0.
    {{FaultKind::Saf1, FaultKind::Rdf0, FaultKind::Irf0},
     {FaultKind::TfDown, FaultKind::Wdf0, FaultKind::Drdf0}},
}};

/// True when `kind` is cross-kind dominated given the kind set of the
/// universe: an earlier member of its equivalence group is present, or
/// any directed dominator of the group is.
bool kind_dominated(FaultKind kind, const std::set<FaultKind>& present) {
    for (const DominanceGroup& group : kGroups) {
        const auto member = std::find(group.members.begin(),
                                      group.members.end(), kind);
        if (member == group.members.end()) continue;
        for (auto it = group.members.begin(); it != member; ++it)
            if (present.count(*it) != 0) return true;
        for (FaultKind dominator : group.dominators)
            if (present.count(dominator) != 0) return true;
        return false;
    }
    return false;
}

/// Relation of two addresses, the field-wise signature component that
/// decides the op interleaving of a two-cell fault under uniform March
/// elements.
int order_sign(int a, int b) { return a < b ? -1 : (a > b ? 1 : 0); }

template <typename Fault, typename ClassKey, typename KindOf,
          typename KeyOf>
std::vector<char> keep_mask(std::span<const Fault> faults, KindOf kind_of,
                            KeyOf key_of) {
    std::set<FaultKind> present;
    for (const Fault& fault : faults) present.insert(kind_of(fault));

    std::vector<char> keep(faults.size(), 0);
    std::set<ClassKey> seen;
    for (std::size_t i = 0; i < faults.size(); ++i) {
        if (kind_dominated(kind_of(faults[i]), present)) continue;
        if (seen.insert(key_of(faults[i])).second) keep[i] = 1;
    }
    return keep;
}

}  // namespace

std::vector<char> dominance_keep_mask(
    std::span<const sim::InjectedFault> faults) {
    // Bit placements: single-cell detection is address-independent;
    // two-cell detection depends only on sign(aggressor - victim).
    using Key = std::pair<int, int>;  // (kind, relative order)
    return keep_mask<sim::InjectedFault, Key>(
        faults, [](const sim::InjectedFault& f) { return f.kind; },
        [](const sim::InjectedFault& f) {
            const bool two_cell = f.cell_b >= 0;
            return Key{static_cast<int>(f.kind),
                       two_cell ? order_sign(f.cell_a, f.cell_b) : 0};
        });
}

std::vector<char> dominance_keep_mask(
    std::span<const word::InjectedBitFault> faults) {
    // Word placements: backgrounds assign data per *bit position* (the
    // same pattern in every word), so bit identity must survive; only
    // word placements with identical (bit_a, bit_b, word-order) collapse.
    using Key = std::tuple<int, int, int, int>;
    return keep_mask<word::InjectedBitFault, Key>(
        faults, [](const word::InjectedBitFault& f) { return f.kind; },
        [](const word::InjectedBitFault& f) {
            if (!fault::is_two_cell(f.kind))
                return Key{static_cast<int>(f.kind), f.a.bit, -1, 0};
            return Key{static_cast<int>(f.kind), f.a.bit, f.b.bit,
                       order_sign(f.a.word, f.b.word)};
        });
}

std::vector<sim::InjectedFault> dominance_prune(
    std::span<const sim::InjectedFault> faults) {
    const std::vector<char> keep = dominance_keep_mask(faults);
    std::vector<sim::InjectedFault> kept;
    for (std::size_t i = 0; i < faults.size(); ++i)
        if (keep[i] != 0) kept.push_back(faults[i]);
    return kept;
}

std::vector<word::InjectedBitFault> dominance_prune(
    std::span<const word::InjectedBitFault> faults) {
    const std::vector<char> keep = dominance_keep_mask(faults);
    std::vector<word::InjectedBitFault> kept;
    for (std::size_t i = 0; i < faults.size(); ++i)
        if (keep[i] != 0) kept.push_back(faults[i]);
    return kept;
}

}  // namespace mtg::fault
