#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool for data-parallel loops over independent indices.
///
/// The batched simulation kernels shard their (chunk × ⇕-expansion) work
/// grids across this pool: `parallel_for(count, body)` invokes
/// `body(index, worker)` exactly once for every index in [0, count), with
/// `worker` in [0, worker_count()) identifying the executing lane so
/// callers can keep atomic-free per-worker accumulators and merge them
/// after the call returns. Each worker owns a contiguous index range and
/// pops it front-to-back lock-free; when a range drains the worker steals
/// the back half of another worker's remaining range (batch stealing), so
/// the handout costs O(workers · log count) CAS operations per job
/// instead of one contended fetch_add per index — the wide lane-block
/// kernels shrink the grid enough that per-index counter traffic was
/// measurable. Item → worker assignment is nondeterministic either way;
/// callers already merge order-independently.
///
/// The process-wide pool (`ThreadPool::global()`) sizes itself from the
/// MTG_THREADS environment variable when set to a positive integer,
/// falling back to std::thread::hardware_concurrency(). MTG_THREADS=1
/// disables threading entirely (every loop runs inline on the caller).
///
/// Worker placement follows MTG_AFFINITY (see affinity.hpp): background
/// workers optionally pin themselves to planned CPUs, and each worker's
/// steal order visits same-NUMA-node victims before crossing nodes — a
/// stolen range stays in the node's LLC and on the node that owns its
/// memory. Placement is invisible in results (the merges are
/// order-independent); it only moves throughput.

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/affinity.hpp"

namespace mtg::util {

class ThreadPool {
public:
    /// Pool with `worker_count` total execution lanes. The calling thread
    /// of parallel_for always participates as worker 0, so only
    /// `worker_count - 1` background threads are spawned. Workers are
    /// placed per `mode` (default: the process-wide MTG_AFFINITY policy)
    /// on the host topology.
    explicit ThreadPool(unsigned worker_count);
    ThreadPool(unsigned worker_count, AffinityMode mode);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total execution lanes (background threads + the caller).
    [[nodiscard]] unsigned worker_count() const { return workers_; }

    /// Runs body(index, worker) once per index in [0, count). Blocks until
    /// every index completed. The first exception thrown by any invocation
    /// is rethrown on the caller after the loop drains. Concurrent
    /// parallel_for calls from different threads are serialised; a nested
    /// call from inside a body runs inline on the calling worker.
    /// `count` must fit in 32 bits (ranges pack two 32-bit bounds into one
    /// atomic word).
    void parallel_for(std::size_t count,
                      const std::function<void(std::size_t, unsigned)>& body);

    /// The shared process-wide pool used by the batched runners by default.
    static ThreadPool& global();

    /// Worker count the global pool is created with: MTG_THREADS when it
    /// parses to a positive integer, else hardware_concurrency (min 1).
    [[nodiscard]] static unsigned configured_worker_count();

    /// Parsing rule behind MTG_THREADS, exposed for tests: a decimal
    /// integer in [1, 1024] wins; null/empty/garbage/0 yield `fallback`.
    [[nodiscard]] static unsigned parse_worker_count(const char* value,
                                                     unsigned fallback);

private:
    struct Impl;
    Impl* impl_;        ///< synchronisation state shared with the workers
    unsigned workers_;  ///< total lanes, >= 1
    /// Planned (cpu, node) per worker and the per-worker steal order
    /// (same-node victims first), fixed at construction.
    std::vector<WorkerPlacement> placements_;
    std::vector<std::vector<unsigned>> steal_order_;
    std::vector<std::thread> threads_;

    void worker_loop(unsigned worker);
    void drain(unsigned worker);
    /// Next index for `worker`: own range front, else a stolen back half.
    std::size_t take_index(unsigned worker);
};

}  // namespace mtg::util
