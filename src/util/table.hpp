#pragma once

/// \file table.hpp
/// Minimal ASCII table formatter used by the benchmark binaries to print the
/// paper's tables (e.g. Table 3) in a readable, aligned form.

#include <string>
#include <vector>

namespace mtg {

/// Collects rows of strings and renders them as an aligned ASCII table.
class TextTable {
public:
    /// Sets the header row.
    void set_header(std::vector<std::string> header);

    /// Appends a data row. Rows may have fewer columns than the header.
    void add_row(std::vector<std::string> row);

    /// Renders the table, including a separator under the header.
    [[nodiscard]] std::string str() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace mtg
