#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace mtg {

void TextTable::set_header(std::vector<std::string> header) {
    header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
    // Compute per-column widths over header and all rows.
    std::size_t ncols = header_.size();
    for (const auto& row : rows_) ncols = std::max(ncols, row.size());
    std::vector<std::size_t> width(ncols, 0);
    auto widen = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string cell = c < row.size() ? row[c] : std::string{};
            os << cell << std::string(width[c] - cell.size(), ' ');
            if (c + 1 < ncols) os << " | ";
        }
        os << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        for (std::size_t c = 0; c < ncols; ++c) {
            os << std::string(width[c], '-');
            if (c + 1 < ncols) os << "-+-";
        }
        os << '\n';
    }
    for (const auto& row : rows_) emit(row);
    return os.str();
}

}  // namespace mtg
