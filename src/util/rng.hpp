#pragma once

/// \file rng.hpp
/// Small deterministic pseudo-random generator (SplitMix64) used by
/// property-based tests and the benchmark workload generators. Deterministic
/// seeding keeps every experiment reproducible run-to-run.

#include <cstdint>

namespace mtg {

/// SplitMix64: tiny, fast, well-distributed 64-bit PRNG.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

    /// Next raw 64-bit value.
    constexpr std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform value in [0, bound). bound must be > 0.
    constexpr std::uint64_t below(std::uint64_t bound) {
        return next() % bound;
    }

    /// Uniform integer in [lo, hi] inclusive.
    constexpr int range(int lo, int hi) {
        return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Fair coin.
    constexpr bool coin() { return (next() & 1u) != 0; }

private:
    std::uint64_t state_;
};

}  // namespace mtg
