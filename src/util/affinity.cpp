#include "util/affinity.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace mtg::util {

AffinityMode parse_affinity_mode(const char* value) {
    if (value == nullptr) return AffinityMode::Auto;
    if (std::strcmp(value, "off") == 0) return AffinityMode::Off;
    if (std::strcmp(value, "compact") == 0) return AffinityMode::Compact;
    if (std::strcmp(value, "spread") == 0) return AffinityMode::Spread;
    return AffinityMode::Auto;
}

AffinityMode configured_affinity_mode() {
    static const AffinityMode mode =
        parse_affinity_mode(std::getenv("MTG_AFFINITY"));
    return mode;
}

std::vector<int> parse_cpu_list(const std::string& list) {
    std::vector<int> cpus;
    std::istringstream in(list);
    std::string token;
    while (std::getline(in, token, ',')) {
        // Trim the trailing newline sysfs appends and any stray spaces.
        while (!token.empty() &&
               (token.back() == '\n' || token.back() == ' '))
            token.pop_back();
        while (!token.empty() && token.front() == ' ')
            token.erase(token.begin());
        if (token.empty()) continue;
        const std::size_t dash = token.find('-');
        char* end = nullptr;
        if (dash == std::string::npos) {
            const long cpu = std::strtol(token.c_str(), &end, 10);
            if (end == token.c_str() || *end != '\0' || cpu < 0) return {};
            cpus.push_back(static_cast<int>(cpu));
        } else {
            const std::string lo_s = token.substr(0, dash);
            const std::string hi_s = token.substr(dash + 1);
            const long lo = std::strtol(lo_s.c_str(), &end, 10);
            if (end == lo_s.c_str() || *end != '\0' || lo < 0) return {};
            const long hi = std::strtol(hi_s.c_str(), &end, 10);
            if (end == hi_s.c_str() || *end != '\0' || hi < lo) return {};
            for (long cpu = lo; cpu <= hi; ++cpu)
                cpus.push_back(static_cast<int>(cpu));
        }
    }
    std::sort(cpus.begin(), cpus.end());
    cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
    return cpus;
}

namespace {

CpuTopology read_system_topology() {
    CpuTopology topology;
#if defined(__linux__)
    // Node ids are dense in practice but probe a generous range anyway;
    // stop at the first gap only after node0 was missing too.
    for (int node = 0; node < 1024; ++node) {
        std::ifstream in("/sys/devices/system/node/node" +
                         std::to_string(node) + "/cpulist");
        if (!in.is_open()) {
            if (node == 0) break;  // no sysfs node topology at all
            break;
        }
        std::string list;
        std::getline(in, list);
        std::vector<int> cpus = parse_cpu_list(list);
        if (!cpus.empty()) topology.node_cpus.push_back(std::move(cpus));
    }
#endif
    if (topology.node_cpus.empty()) {
        // Fallback: one flat node over hardware_concurrency CPUs.
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        std::vector<int> cpus(hw);
        for (unsigned c = 0; c < hw; ++c) cpus[c] = static_cast<int>(c);
        topology.node_cpus.push_back(std::move(cpus));
    }
    return topology;
}

}  // namespace

const CpuTopology& system_topology() {
    static const CpuTopology topology = read_system_topology();
    return topology;
}

std::vector<WorkerPlacement> plan_worker_cpus(const CpuTopology& topology,
                                              AffinityMode mode,
                                              unsigned workers) {
    std::vector<WorkerPlacement> plan(workers);
    if (workers == 0) return plan;
    const std::size_t nodes = topology.node_count();
    if (mode == AffinityMode::Auto)
        mode = nodes > 1 ? AffinityMode::Spread : AffinityMode::Off;
    if (mode == AffinityMode::Off || topology.cpu_count() == 0) return plan;

    // Flatten the topology into one visit order per policy: compact walks
    // node 0's CPUs first, spread deals CPUs round-robin across nodes.
    std::vector<WorkerPlacement> order;
    order.reserve(topology.cpu_count());
    if (mode == AffinityMode::Compact) {
        for (std::size_t n = 0; n < nodes; ++n)
            for (int cpu : topology.node_cpus[n])
                order.push_back({cpu, static_cast<int>(n)});
    } else {  // Spread
        for (std::size_t i = 0;; ++i) {
            bool any = false;
            for (std::size_t n = 0; n < nodes; ++n)
                if (i < topology.node_cpus[n].size()) {
                    order.push_back({topology.node_cpus[n][i],
                                     static_cast<int>(n)});
                    any = true;
                }
            if (!any) break;
        }
    }

    for (unsigned w = 0; w < workers; ++w)
        plan[w] = order[w % order.size()];
    // Worker 0 is the caller: keep its node slot (for steal grouping) but
    // never pin the application's own thread.
    plan[0].cpu = -1;
    return plan;
}

std::vector<unsigned> plan_steal_order(
    const std::vector<WorkerPlacement>& placements, unsigned worker) {
    const auto workers = static_cast<unsigned>(placements.size());
    std::vector<unsigned> order;
    if (workers <= 1) return order;
    order.reserve(workers - 1);
    const int home = placements[worker].node;
    for (int pass = 0; pass < 2; ++pass)
        for (unsigned off = 1; off < workers; ++off) {
            const unsigned victim = (worker + off) % workers;
            const bool same = placements[victim].node == home;
            if (same == (pass == 0)) order.push_back(victim);
        }
    return order;
}

bool pin_current_thread_to_cpu(int cpu) {
#if defined(__linux__)
    if (cpu < 0) return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(cpu), &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

}  // namespace mtg::util
