#pragma once

/// \file trit.hpp
/// Three-valued logic used throughout the library: a memory cell (or a bit of
/// an abstract two-cell state) is either 0, 1, or unknown/don't-care (X).
/// The paper's memory model (f.2.1) uses the symbol `-` for the value of a
/// non-initialised cell; we call it Trit::X.

#include <cstdint>

#include "util/contracts.hpp"

namespace mtg {

/// A three-valued bit: 0, 1 or unknown / don't-care.
enum class Trit : std::uint8_t { Zero = 0, One = 1, X = 2 };

/// Converts a plain bit (0 or 1) to a Trit.
constexpr Trit trit_from_bit(int bit) {
    return bit == 0 ? Trit::Zero : Trit::One;
}

/// True when the trit carries a definite 0/1 value.
constexpr bool is_known(Trit t) { return t != Trit::X; }

/// Definite value of a known trit as 0/1.
constexpr int trit_bit(Trit t) {
    return t == Trit::One ? 1 : 0;
}

/// Logical negation; X stays X.
constexpr Trit trit_not(Trit t) {
    switch (t) {
        case Trit::Zero: return Trit::One;
        case Trit::One: return Trit::Zero;
        case Trit::X: return Trit::X;
    }
    return Trit::X;
}

/// True when the two trits cannot be distinguished: equal values, or at
/// least one side is a don't-care.
constexpr bool trits_compatible(Trit a, Trit b) {
    return a == Trit::X || b == Trit::X || a == b;
}

/// Printable character: '0', '1' or 'x'.
constexpr char trit_char(Trit t) {
    switch (t) {
        case Trit::Zero: return '0';
        case Trit::One: return '1';
        case Trit::X: return 'x';
    }
    return '?';
}

/// Parses '0', '1', 'x'/'X'/'-' into a Trit; anything else is a
/// precondition violation.
inline Trit trit_parse(char c) {
    switch (c) {
        case '0': return Trit::Zero;
        case '1': return Trit::One;
        case 'x':
        case 'X':
        case '-': return Trit::X;
        default: MTG_EXPECTS(false && "invalid trit character"); return Trit::X;
    }
}

}  // namespace mtg
