#pragma once

/// \file contracts.hpp
/// Lightweight precondition / postcondition / assertion support in the style
/// of the C++ Core Guidelines `Expects()` / `Ensures()` (I.5, I.7).
/// Violations throw mtg::ContractViolation so tests can assert on misuse.

#include <stdexcept>
#include <string>

namespace mtg {

/// Thrown when a precondition, postcondition or internal invariant fails.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Builds the diagnostic message and throws ContractViolation.
[[noreturn]] void contract_fail(const char* kind, const char* condition,
                                const char* file, int line);

}  // namespace mtg

/// Precondition check: argument validation at API boundaries.
#define MTG_EXPECTS(cond)                                                  \
    do {                                                                   \
        if (!(cond)) ::mtg::contract_fail("Precondition", #cond, __FILE__, __LINE__); \
    } while (false)

/// Postcondition check.
#define MTG_ENSURES(cond)                                                  \
    do {                                                                   \
        if (!(cond)) ::mtg::contract_fail("Postcondition", #cond, __FILE__, __LINE__); \
    } while (false)

/// Internal invariant check.
#define MTG_ASSERT(cond)                                                   \
    do {                                                                   \
        if (!(cond)) ::mtg::contract_fail("Assertion", #cond, __FILE__, __LINE__); \
    } while (false)
