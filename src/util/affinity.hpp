#pragma once

/// \file affinity.hpp
/// NUMA-aware worker placement for util::ThreadPool, without hwloc.
///
/// The stealing pool hands each worker a contiguous index range, so when
/// the runners shard a (chunk × expansion) grid the data a worker streams
/// is contiguous too — but with no pinning the scheduler migrates workers
/// across cores (and on multi-socket hosts across NUMA nodes), so a range
/// warmed into one L2/LLC finishes on another, and cross-node steals are
/// as likely as same-node ones. This module reads the node topology from
/// /sys/devices/system/node/node*/cpulist (falling back to one flat node
/// when sysfs is absent), plans one CPU per worker, and the pool pins its
/// background threads with pthread_setaffinity_np and orders each
/// worker's steal victims same-node-first.
///
/// MTG_AFFINITY ∈ {auto, off, compact, spread} selects the policy:
///   - off:     no pinning (the pre-PR 8 behaviour);
///   - compact: fill node 0's CPUs before spilling to node 1 — best for
///              jobs smaller than one node's core count (shared LLC);
///   - spread:  round-robin workers across nodes — best for memory-bound
///              jobs that want every node's bandwidth;
///   - auto:    off on single-node hosts (pinning can only hurt there if
///              the machine is shared), spread on multi-node hosts.
///
/// Placement never changes results: the pool's merge logic is
/// order-independent and the determinism test re-runs the differential
/// battery under every mode.

#include <cstddef>
#include <string>
#include <vector>

namespace mtg::util {

enum class AffinityMode {
    Auto,
    Off,
    Compact,
    Spread,
};

/// Parses an MTG_AFFINITY-style value ("auto", "off", "compact",
/// "spread"); Auto on null/empty/garbage.
[[nodiscard]] AffinityMode parse_affinity_mode(const char* value);

/// Process-wide mode from MTG_AFFINITY, resolved once at first use.
[[nodiscard]] AffinityMode configured_affinity_mode();

/// CPU lists per NUMA node, in node-id order. Node 0 exists even on
/// UMA hosts (the fallback topology is one node holding every CPU).
struct CpuTopology {
    std::vector<std::vector<int>> node_cpus;

    [[nodiscard]] std::size_t node_count() const { return node_cpus.size(); }
    [[nodiscard]] std::size_t cpu_count() const {
        std::size_t n = 0;
        for (const auto& cpus : node_cpus) n += cpus.size();
        return n;
    }
};

/// Parses a sysfs cpulist ("0-3,8,10-11") into ascending CPU ids; empty
/// on malformed input. Exposed for tests.
[[nodiscard]] std::vector<int> parse_cpu_list(const std::string& list);

/// Host topology from /sys/devices/system/node/node*/cpulist, falling
/// back to a single node of hardware_concurrency CPUs.
[[nodiscard]] const CpuTopology& system_topology();

/// One (cpu, node) placement per worker. cpu == -1 means "leave this
/// worker unpinned"; node is always valid (the node the worker would
/// belong to), so the steal-order planner can group unpinned workers too.
struct WorkerPlacement {
    int cpu{-1};
    int node{0};
};

/// Pure placement rule, exposed for tests: the per-worker CPU plan for
/// `workers` execution lanes under `mode` on `topology`. Worker 0 is the
/// caller of parallel_for and is never pinned (its cpu stays -1) — pinning
/// the application's thread would leak policy out of the pool — but it is
/// assigned a node slot like everyone else. More workers than CPUs wrap
/// around (two workers may share a CPU).
[[nodiscard]] std::vector<WorkerPlacement> plan_worker_cpus(
    const CpuTopology& topology, AffinityMode mode, unsigned workers);

/// Steal order for `worker`: every other worker exactly once, same-node
/// victims (in ring order from the worker) before cross-node ones (in
/// ring order too). With placements all on one node this degenerates to
/// the plain ring the pool used before.
[[nodiscard]] std::vector<unsigned> plan_steal_order(
    const std::vector<WorkerPlacement>& placements, unsigned worker);

/// Pins the calling thread to `cpu` (no-op on cpu < 0 or non-Linux).
/// Returns true when the pin took effect.
bool pin_current_thread_to_cpu(int cpu);

}  // namespace mtg::util
