#include "util/contracts.hpp"

#include <sstream>

namespace mtg {

void contract_fail(const char* kind, const char* condition, const char* file,
                   int line) {
    std::ostringstream os;
    os << kind << " failed: (" << condition << ") at " << file << ':' << line;
    throw ContractViolation(os.str());
}

}  // namespace mtg
