#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>

#include "util/contracts.hpp"

namespace mtg::util {

namespace {

/// Set while the current thread executes inside a parallel_for body, so a
/// nested call degrades to an inline loop instead of deadlocking on the
/// pool's job mutex. The (pool, worker) pair lets a same-pool nested loop
/// keep reporting the enclosing worker's id — required for the per-worker
/// accumulator contract (two lanes must never share an id).
thread_local bool tls_inside_pool = false;
thread_local const void* tls_pool = nullptr;
thread_local unsigned tls_worker = 0;

}  // namespace

struct ThreadPool::Impl {
    std::mutex job_mutex;  ///< serialises whole parallel_for calls

    std::mutex mutex;  ///< guards the fields below
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    std::uint64_t generation{0};
    std::size_t count{0};
    const std::function<void(std::size_t, unsigned)>* body{nullptr};
    std::atomic<std::size_t> next{0};
    unsigned running{0};  ///< background workers still draining the job
    bool stop{false};
    std::exception_ptr error;
};

ThreadPool::ThreadPool(unsigned worker_count)
    : impl_(new Impl), workers_(worker_count == 0 ? 1 : worker_count) {
    threads_.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w)
        threads_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stop = true;
    }
    impl_->work_cv.notify_all();
    for (std::thread& t : threads_) t.join();
    delete impl_;
}

void ThreadPool::drain(unsigned worker) {
    tls_pool = this;
    tls_worker = worker;
    for (;;) {
        const std::size_t i =
            impl_->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= impl_->count) return;
        try {
            (*impl_->body)(i, worker);
        } catch (...) {
            std::lock_guard<std::mutex> lock(impl_->mutex);
            if (!impl_->error) impl_->error = std::current_exception();
            // Starve the remaining indices so the loop winds down fast.
            impl_->next.store(impl_->count, std::memory_order_relaxed);
            return;
        }
    }
}

void ThreadPool::worker_loop(unsigned worker) {
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(impl_->mutex);
            impl_->work_cv.wait(lock, [&] {
                return impl_->stop || impl_->generation != seen;
            });
            if (impl_->stop) return;
            seen = impl_->generation;
        }
        tls_inside_pool = true;
        drain(worker);
        tls_inside_pool = false;
        {
            std::lock_guard<std::mutex> lock(impl_->mutex);
            if (--impl_->running == 0) impl_->done_cv.notify_one();
        }
    }
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, unsigned)>& body) {
    if (count == 0) return;
    // Serial pools, tiny loops and nested calls run inline: the loop is
    // already inside a worker's quantum, so forking again cannot help. A
    // same-pool nested loop keeps the enclosing worker's id so concurrent
    // bodies never collide on one per-worker accumulator slot; inline
    // loops outside any pool context report worker 0.
    if (workers_ == 1 || count == 1 || tls_inside_pool) {
        const unsigned worker = tls_pool == this ? tls_worker : 0;
        for (std::size_t i = 0; i < count; ++i) body(i, worker);
        return;
    }

    std::lock_guard<std::mutex> job(impl_->job_mutex);
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->count = count;
        impl_->body = &body;
        impl_->next.store(0, std::memory_order_relaxed);
        impl_->running = workers_ - 1;
        impl_->error = nullptr;
        ++impl_->generation;
    }
    impl_->work_cv.notify_all();

    tls_inside_pool = true;
    drain(/*worker=*/0);
    tls_inside_pool = false;

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        impl_->done_cv.wait(lock, [&] { return impl_->running == 0; });
        impl_->body = nullptr;
        error = impl_->error;
    }
    if (error) std::rethrow_exception(error);
}

unsigned ThreadPool::parse_worker_count(const char* value, unsigned fallback) {
    if (value == nullptr || *value == '\0') return fallback;
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0') return fallback;
    if (parsed < 1 || parsed > 1024) return fallback;
    return static_cast<unsigned>(parsed);
}

unsigned ThreadPool::configured_worker_count() {
    const unsigned hardware = std::thread::hardware_concurrency();
    const unsigned fallback = hardware == 0 ? 1 : hardware;
    return parse_worker_count(std::getenv("MTG_THREADS"), fallback);
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool(configured_worker_count());
    return pool;
}

}  // namespace mtg::util
