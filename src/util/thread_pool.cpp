#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "util/contracts.hpp"

namespace mtg::util {

namespace {

/// Set while the current thread executes inside a parallel_for body, so a
/// nested call degrades to an inline loop instead of deadlocking on the
/// pool's job mutex. The (pool, worker) pair lets a same-pool nested loop
/// keep reporting the enclosing worker's id — required for the per-worker
/// accumulator contract (two lanes must never share an id).
thread_local bool tls_inside_pool = false;
thread_local const void* tls_pool = nullptr;
thread_local unsigned tls_worker = 0;

/// [begin, end) packed into one atomically-updatable word: begin in the
/// high half, end in the low half. Owners pop from the front; thieves chop
/// the back, so the two ends never contend on the same boundary.
constexpr std::uint64_t pack_range(std::uint64_t begin, std::uint64_t end) {
    return (begin << 32) | end;
}
constexpr std::uint32_t range_begin(std::uint64_t r) {
    return static_cast<std::uint32_t>(r >> 32);
}
constexpr std::uint32_t range_end(std::uint64_t r) {
    return static_cast<std::uint32_t>(r);
}

constexpr std::size_t kNoIndex = ~std::size_t{0};

}  // namespace

struct ThreadPool::Impl {
    std::mutex job_mutex;  ///< serialises whole parallel_for calls

    std::mutex mutex;  ///< guards the fields below
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    std::uint64_t generation{0};
    const std::function<void(std::size_t, unsigned)>* body{nullptr};
    /// One contiguous index range per worker; work moves between slots
    /// only through the CAS protocol in drain().
    std::unique_ptr<std::atomic<std::uint64_t>[]> ranges;
    unsigned running{0};  ///< background workers still draining the job
    bool stop{false};
    /// Raised (before the ranges are cleared) when a body throws, so the
    /// drain loops stop executing even if an in-flight steal republishes
    /// a range after the clear — bounds post-error execution to one
    /// in-flight index per worker.
    std::atomic<bool> job_failed{false};
    std::exception_ptr error;
};

ThreadPool::ThreadPool(unsigned worker_count)
    : ThreadPool(worker_count, configured_affinity_mode()) {}

ThreadPool::ThreadPool(unsigned worker_count, AffinityMode mode)
    : impl_(new Impl), workers_(worker_count == 0 ? 1 : worker_count) {
    placements_ = plan_worker_cpus(system_topology(), mode, workers_);
    steal_order_.resize(workers_);
    for (unsigned w = 0; w < workers_; ++w)
        steal_order_[w] = plan_steal_order(placements_, w);
    impl_->ranges =
        std::make_unique<std::atomic<std::uint64_t>[]>(workers_);
    for (unsigned w = 0; w < workers_; ++w)
        impl_->ranges[w].store(0, std::memory_order_relaxed);
    threads_.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w)
        threads_.emplace_back([this, w] {
            // Pin before the first drain: ranges are handed out
            // contiguously, so a pinned worker streams its slice from one
            // core (and one NUMA node) for the pool's whole lifetime.
            pin_current_thread_to_cpu(placements_[w].cpu);
            worker_loop(w);
        });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->stop = true;
    }
    impl_->work_cv.notify_all();
    for (std::thread& t : threads_) t.join();
    delete impl_;
}

std::size_t ThreadPool::take_index(unsigned worker) {
    auto& ranges = impl_->ranges;

    // Fast path: pop the front of this worker's own range.
    std::uint64_t cur = ranges[worker].load(std::memory_order_relaxed);
    while (range_begin(cur) < range_end(cur)) {
        const std::uint64_t next =
            pack_range(range_begin(cur) + std::uint64_t{1}, range_end(cur));
        if (ranges[worker].compare_exchange_weak(cur, next,
                                                 std::memory_order_relaxed))
            return range_begin(cur);
    }

    // Own range drained: steal half of another worker's remaining range
    // (the back half, so the victim's front-popping continues unimpeded).
    // One steal amortises the handoff over many indices — the whole point
    // of range handout versus the PR 2 shared counter. Victims are
    // visited same-NUMA-node-first (plan_steal_order), so work crosses
    // nodes only when the whole home node is dry.
    for (const unsigned victim : steal_order_[worker]) {
        std::uint64_t vcur = ranges[victim].load(std::memory_order_relaxed);
        for (;;) {
            const std::uint32_t begin = range_begin(vcur);
            const std::uint32_t end = range_end(vcur);
            if (begin >= end) break;
            const std::uint32_t mid = begin + (end - begin) / 2;
            if (!ranges[victim].compare_exchange_weak(
                    vcur, pack_range(begin, mid),
                    std::memory_order_relaxed))
                continue;
            // [mid, end) is ours now: run `mid`, publish the rest as this
            // worker's range so future pops stay on the fast path. Our
            // slot is empty, so the store cannot orphan indices.
            ranges[worker].store(pack_range(mid + std::uint64_t{1}, end),
                                 std::memory_order_relaxed);
            return mid;
        }
    }
    return kNoIndex;  // nothing left anywhere: the grid is drained
}

void ThreadPool::drain(unsigned worker) {
    tls_pool = this;
    tls_worker = worker;
    for (;;) {
        if (impl_->job_failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = take_index(worker);
        if (i == kNoIndex) return;
        try {
            (*impl_->body)(i, worker);
        } catch (...) {
            impl_->job_failed.store(true, std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> lock(impl_->mutex);
                if (!impl_->error) impl_->error = std::current_exception();
            }
            // Starve the remaining indices so the loop winds down fast.
            for (unsigned w = 0; w < workers_; ++w)
                impl_->ranges[w].store(0, std::memory_order_relaxed);
            return;
        }
    }
}

void ThreadPool::worker_loop(unsigned worker) {
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(impl_->mutex);
            impl_->work_cv.wait(lock, [&] {
                return impl_->stop || impl_->generation != seen;
            });
            if (impl_->stop) return;
            seen = impl_->generation;
        }
        tls_inside_pool = true;
        drain(worker);
        tls_inside_pool = false;
        {
            std::lock_guard<std::mutex> lock(impl_->mutex);
            if (--impl_->running == 0) impl_->done_cv.notify_one();
        }
    }
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, unsigned)>& body) {
    if (count == 0) return;
    // Serial pools, tiny loops and nested calls run inline: the loop is
    // already inside a worker's quantum, so forking again cannot help. A
    // same-pool nested loop keeps the enclosing worker's id so concurrent
    // bodies never collide on one per-worker accumulator slot; inline
    // loops outside any pool context report worker 0.
    if (workers_ == 1 || count == 1 || tls_inside_pool) {
        const unsigned worker = tls_pool == this ? tls_worker : 0;
        for (std::size_t i = 0; i < count; ++i) body(i, worker);
        return;
    }
    MTG_EXPECTS(count <= 0xFFFFFFFFu);  // ranges pack two 32-bit bounds

    std::lock_guard<std::mutex> job(impl_->job_mutex);
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->body = &body;
        // Contiguous per-worker ranges, balanced to within one index.
        // Workers pop their own range front lock-free and steal the back
        // half of a victim's range only when theirs drains — at most
        // O(workers · log(count)) CAS handoffs per job instead of one
        // shared-counter fetch_add per index.
        for (unsigned w = 0; w < workers_; ++w)
            impl_->ranges[w].store(
                pack_range(std::uint64_t{count} * w / workers_,
                           std::uint64_t{count} * (w + 1) / workers_),
                std::memory_order_relaxed);
        impl_->running = workers_ - 1;
        impl_->error = nullptr;
        impl_->job_failed.store(false, std::memory_order_relaxed);
        ++impl_->generation;
    }
    impl_->work_cv.notify_all();

    tls_inside_pool = true;
    drain(/*worker=*/0);
    tls_inside_pool = false;

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        impl_->done_cv.wait(lock, [&] { return impl_->running == 0; });
        impl_->body = nullptr;
        error = impl_->error;
    }
    if (error) std::rethrow_exception(error);
}

unsigned ThreadPool::parse_worker_count(const char* value, unsigned fallback) {
    if (value == nullptr || *value == '\0') return fallback;
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0') return fallback;
    if (parsed < 1 || parsed > 1024) return fallback;
    return static_cast<unsigned>(parsed);
}

unsigned ThreadPool::configured_worker_count() {
    const unsigned hardware = std::thread::hardware_concurrency();
    const unsigned fallback = hardware == 0 ? 1 : hardware;
    return parse_worker_count(std::getenv("MTG_THREADS"), fallback);
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool(configured_worker_count());
    return pool;
}

}  // namespace mtg::util
