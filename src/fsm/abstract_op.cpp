#include "fsm/abstract_op.hpp"

namespace mtg::fsm {

std::string AbstractOp::str() const {
    switch (kind) {
        case AbstractOpKind::Read:
            return std::string("r") + static_cast<char>('0' + value) + cell_char(cell);
        case AbstractOpKind::Write:
            return std::string("w") + static_cast<char>('0' + value) + cell_char(cell);
        case AbstractOpKind::Wait: return "T";
    }
    return "?";
}

}  // namespace mtg::fsm
