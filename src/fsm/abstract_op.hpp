#pragma once

/// \file abstract_op.hpp
/// Operations of the two-cell memory model (paper §3, f.2.1).
///
/// The input alphabet is X = { r_c, w0_c, w1_c | c in {i,j} } ∪ {T}: reads
/// and writes addressed to one of the two abstract cells, plus the wait
/// operation `T` used to sensitise data-retention faults. Cell `i` is by
/// convention the cell with the LOWER address, `j` the one with the higher
/// address (paper §3: "the address of cell i is less than the address of
/// cell j").

#include <cstdint>
#include <string>

#include "util/contracts.hpp"

namespace mtg::fsm {

/// Abstract cell role in the two-cell model.
enum class Cell : std::uint8_t {
    I = 0,  ///< lower-address cell
    J = 1,  ///< higher-address cell
};

/// Returns the other cell role.
constexpr Cell other(Cell c) { return c == Cell::I ? Cell::J : Cell::I; }

/// 'i' or 'j'.
constexpr char cell_char(Cell c) { return c == Cell::I ? 'i' : 'j'; }

/// Kind of an abstract operation.
enum class AbstractOpKind : std::uint8_t {
    Read,   ///< r_c — read cell c (observing reads carry an expected value)
    Write,  ///< w d_c — write value d to cell c
    Wait,   ///< T — wait for the retention period (no cell addressed)
};

/// One symbol of the input alphabet X, optionally annotated with the
/// expected read value (the paper's "read and verify" r_d^c, f.2.3).
struct AbstractOp {
    AbstractOpKind kind{AbstractOpKind::Read};
    Cell cell{Cell::I};      ///< addressed cell (meaningless for Wait)
    std::uint8_t value{0};   ///< written value, or expected value of a verify-read

    static constexpr AbstractOp read(Cell c, int expected) {
        return {AbstractOpKind::Read, c, static_cast<std::uint8_t>(expected != 0)};
    }
    static constexpr AbstractOp write(Cell c, int d) {
        return {AbstractOpKind::Write, c, static_cast<std::uint8_t>(d != 0)};
    }
    static constexpr AbstractOp wait() {
        return {AbstractOpKind::Wait, Cell::I, 0};
    }

    [[nodiscard]] constexpr bool is_read() const {
        return kind == AbstractOpKind::Read;
    }
    [[nodiscard]] constexpr bool is_write() const {
        return kind == AbstractOpKind::Write;
    }
    [[nodiscard]] constexpr bool is_wait() const {
        return kind == AbstractOpKind::Wait;
    }

    friend constexpr bool operator==(const AbstractOp&, const AbstractOp&) = default;

    /// "r1i", "w0j", "T".
    [[nodiscard]] std::string str() const;
};

/// Total order so ops can key maps/sets.
constexpr bool operator<(const AbstractOp& a, const AbstractOp& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.cell != b.cell) return a.cell < b.cell;
    return a.value < b.value;
}

}  // namespace mtg::fsm
