#pragma once

/// \file pair_state.hpp
/// State of the abstract two-cell memory. The paper's state set is
/// Q = {0,1,-}^2 (f.2.1); we represent each cell with a Trit so that states
/// can carry don't-care / uninitialised components. Fully known states
/// (00, 01, 10, 11) are the four states of the M0 machine in Figure 1.

#include <array>
#include <string>

#include "fsm/abstract_op.hpp"
#include "util/trit.hpp"

namespace mtg::fsm {

/// Value pair (cell i, cell j); either component may be unknown (X).
struct PairState {
    Trit i{Trit::X};
    Trit j{Trit::X};

    constexpr PairState() = default;
    constexpr PairState(Trit ci, Trit cj) : i(ci), j(cj) {}

    /// Fully known state from two bits.
    static constexpr PairState known(int vi, int vj) {
        return {trit_from_bit(vi), trit_from_bit(vj)};
    }

    /// Completely unconstrained state.
    static constexpr PairState any() { return {Trit::X, Trit::X}; }

    /// Parses "01", "x1", "0x", ... ('-' also accepted for X).
    static PairState parse(const std::string& text);

    [[nodiscard]] constexpr Trit get(Cell c) const {
        return c == Cell::I ? i : j;
    }
    constexpr void set(Cell c, Trit v) {
        (c == Cell::I ? i : j) = v;
    }

    /// True when both cells have definite values.
    [[nodiscard]] constexpr bool fully_known() const {
        return is_known(i) && is_known(j);
    }

    /// Number of cells with a definite value (0..2). For a TP's
    /// initialisation state this is the number of cold-start writes needed.
    [[nodiscard]] constexpr int known_count() const {
        return (is_known(i) ? 1 : 0) + (is_known(j) ? 1 : 0);
    }

    /// Index 0..3 of a fully known state (i is the MSB: "01" -> 1,
    /// "10" -> 2). Precondition: fully_known().
    [[nodiscard]] int index() const;

    /// Inverse of index().
    static PairState from_index(int idx);

    /// Applies a write (or wait: identity) to this state in the *good*
    /// machine. Reads do not change state here. Returns the new state.
    [[nodiscard]] PairState after(const AbstractOp& op) const;

    /// True when `this` can serve where `required` is demanded: every
    /// constrained cell of `required` matches.
    [[nodiscard]] constexpr bool satisfies(const PairState& required) const {
        return (!is_known(required.i) || required.i == i) &&
               (!is_known(required.j) || required.j == j);
    }

    friend constexpr bool operator==(const PairState&, const PairState&) = default;

    /// "01", "x1", ...
    [[nodiscard]] std::string str() const;
};

/// Generalised Hamming distance of the paper's f.4.1: the number of write
/// operations needed to take a memory whose (partially known) contents are
/// `from` into a state satisfying `to`. A constrained target cell costs one
/// write iff the source value is unknown or different; unconstrained target
/// cells are free.
[[nodiscard]] int write_distance(const PairState& from, const PairState& to);

/// All four fully known states, in index order 00, 01, 10, 11.
[[nodiscard]] const std::array<PairState, 4>& all_known_states();

}  // namespace mtg::fsm
