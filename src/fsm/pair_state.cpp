#include "fsm/pair_state.hpp"

namespace mtg::fsm {

PairState PairState::parse(const std::string& text) {
    MTG_EXPECTS(text.size() == 2);
    return {trit_parse(text[0]), trit_parse(text[1])};
}

int PairState::index() const {
    MTG_EXPECTS(fully_known());
    return trit_bit(i) * 2 + trit_bit(j);
}

PairState PairState::from_index(int idx) {
    MTG_EXPECTS(idx >= 0 && idx < 4);
    return known((idx >> 1) & 1, idx & 1);
}

PairState PairState::after(const AbstractOp& op) const {
    PairState next = *this;
    if (op.is_write()) next.set(op.cell, trit_from_bit(op.value));
    return next;
}

std::string PairState::str() const {
    return std::string{trit_char(i), trit_char(j)};
}

int write_distance(const PairState& from, const PairState& to) {
    int distance = 0;
    if (is_known(to.i) && to.i != from.i) ++distance;
    if (is_known(to.j) && to.j != from.j) ++distance;
    return distance;
}

const std::array<PairState, 4>& all_known_states() {
    static const std::array<PairState, 4> states = {
        PairState::known(0, 0), PairState::known(0, 1),
        PairState::known(1, 0), PairState::known(1, 1)};
    return states;
}

}  // namespace mtg::fsm
