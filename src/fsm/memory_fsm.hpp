#pragma once

/// \file memory_fsm.hpp
/// Deterministic Mealy automaton model of a two-cell RAM (paper §3).
///
/// M = (Q, X, Y, δ, λ) with Q the four fully known states {00,01,10,11},
/// X the seven inputs {r_i, r_j, w0_i, w1_i, w0_j, w1_j, T} and
/// Y = {0, 1, -}. The fault-free machine M0 (Figure 1) writes/waits with
/// output `-` and reads with the stored value. A faulty machine Mi differs
/// from M0 in its δ and/or λ entries; a Basic Fault Effect (BFE) is a single
/// such difference (paper §3, Figure 3).

#include <string>
#include <vector>

#include "fsm/abstract_op.hpp"
#include "fsm/pair_state.hpp"
#include "util/trit.hpp"

namespace mtg::fsm {

/// The seven-symbol input alphabet X of the memory model, as an index type.
enum class Input : std::uint8_t {
    Ri = 0,   ///< read cell i
    Rj = 1,   ///< read cell j
    W0i = 2,  ///< write 0 into cell i
    W1i = 3,  ///< write 1 into cell i
    W0j = 4,  ///< write 0 into cell j
    W1j = 5,  ///< write 1 into cell j
    T = 6,    ///< wait (data-retention delay)
};

inline constexpr int kInputCount = 7;
inline constexpr int kStateCount = 4;

/// All inputs in index order.
[[nodiscard]] const std::vector<Input>& all_inputs();

/// Human-readable input name: "ri", "w0j", "T", ...
[[nodiscard]] std::string input_str(Input in);

/// Classification helpers.
[[nodiscard]] constexpr bool is_read(Input in) {
    return in == Input::Ri || in == Input::Rj;
}
[[nodiscard]] constexpr bool is_write(Input in) {
    return in == Input::W0i || in == Input::W1i || in == Input::W0j ||
           in == Input::W1j;
}

/// The cell addressed by a read/write input. Precondition: not T.
[[nodiscard]] Cell input_cell(Input in);

/// The value written by a write input. Precondition: is_write(in).
[[nodiscard]] int input_value(Input in);

/// Builds the write input for (cell, value) / the read input for a cell.
[[nodiscard]] Input write_input(Cell c, int value);
[[nodiscard]] Input read_input(Cell c);

/// Converts an input symbol to an AbstractOp. Reads get expected value
/// `expected` (pass the good-machine stored value to build a verify-read).
[[nodiscard]] AbstractOp input_to_op(Input in, int expected = 0);

/// One Basic Fault Effect: a single δ-entry or λ-entry of a faulty machine
/// that differs from M0. The paper shows (Figure 3) how a fault machine
/// splits into these.
struct Bfe {
    PairState state;       ///< source state of the perturbed entry (fully known)
    Input input{Input::T}; ///< input symbol of the perturbed entry
    PairState good_next;   ///< δ0(state, input)
    PairState faulty_next; ///< δi(state, input); == good_next for pure λ-faults
    Trit good_out{Trit::X};    ///< λ0(state, input)
    Trit faulty_out{Trit::X};  ///< λi(state, input); == good_out for pure δ-faults

    [[nodiscard]] bool is_delta_fault() const { return faulty_next != good_next; }
    [[nodiscard]] bool is_lambda_fault() const { return faulty_out != good_out; }

    /// e.g. "δ(01,w1i): 11 -> 10" or "λ(10,ri): 1 -> 0".
    [[nodiscard]] std::string str() const;
};

/// Deterministic Mealy automaton over the fixed alphabet above. Value type;
/// M0 and every faulty Mi use this one class.
class MemoryFsm {
public:
    /// Fault-free machine M0 of Figure 1.
    static MemoryFsm good();

    /// δ(state, input): states are the four known states.
    [[nodiscard]] PairState next(const PairState& state, Input in) const;

    /// λ(state, input): the read value for reads, X ('-') otherwise.
    [[nodiscard]] Trit output(const PairState& state, Input in) const;

    /// Overrides one δ entry (builds a faulty machine).
    void set_next(const PairState& state, Input in, const PairState& next);

    /// Overrides one λ entry.
    void set_output(const PairState& state, Input in, Trit out);

    /// Runs an input word from `start`, returning the final state. Outputs
    /// are appended to `outputs` when non-null.
    [[nodiscard]] PairState run(const PairState& start,
                                const std::vector<Input>& word,
                                std::vector<Trit>* outputs = nullptr) const;

    /// Lists every entry where this machine differs from `reference`
    /// (normally M0): the machine's BFE decomposition.
    [[nodiscard]] std::vector<Bfe> diff(const MemoryFsm& reference) const;

    /// Number of entries differing from `reference`.
    [[nodiscard]] int perturbation_count(const MemoryFsm& reference) const;

    /// Full transition/output table as text (the programmatic rendition of
    /// Figure 1 used by examples/fsm_dump).
    [[nodiscard]] std::string table_str() const;

    friend bool operator==(const MemoryFsm&, const MemoryFsm&) = default;

private:
    MemoryFsm() = default;

    // next_[state][input] as state index; out_[state][input].
    std::array<std::uint8_t, kStateCount * kInputCount> next_{};
    std::array<Trit, kStateCount * kInputCount> out_{};

    [[nodiscard]] static int slot(const PairState& state, Input in);
};

}  // namespace mtg::fsm
