#include "fsm/memory_fsm.hpp"

#include <sstream>

namespace mtg::fsm {

const std::vector<Input>& all_inputs() {
    static const std::vector<Input> inputs = {Input::Ri,  Input::Rj, Input::W0i,
                                              Input::W1i, Input::W0j,
                                              Input::W1j, Input::T};
    return inputs;
}

std::string input_str(Input in) {
    switch (in) {
        case Input::Ri: return "ri";
        case Input::Rj: return "rj";
        case Input::W0i: return "w0i";
        case Input::W1i: return "w1i";
        case Input::W0j: return "w0j";
        case Input::W1j: return "w1j";
        case Input::T: return "T";
    }
    return "?";
}

Cell input_cell(Input in) {
    MTG_EXPECTS(in != Input::T);
    switch (in) {
        case Input::Ri:
        case Input::W0i:
        case Input::W1i: return Cell::I;
        default: return Cell::J;
    }
}

int input_value(Input in) {
    MTG_EXPECTS(is_write(in));
    return (in == Input::W1i || in == Input::W1j) ? 1 : 0;
}

Input write_input(Cell c, int value) {
    if (c == Cell::I) return value ? Input::W1i : Input::W0i;
    return value ? Input::W1j : Input::W0j;
}

Input read_input(Cell c) { return c == Cell::I ? Input::Ri : Input::Rj; }

AbstractOp input_to_op(Input in, int expected) {
    if (in == Input::T) return AbstractOp::wait();
    if (is_read(in)) return AbstractOp::read(input_cell(in), expected);
    return AbstractOp::write(input_cell(in), input_value(in));
}

std::string Bfe::str() const {
    std::ostringstream os;
    if (is_delta_fault()) {
        os << "delta(" << state.str() << ',' << input_str(input)
           << "): " << good_next.str() << " -> " << faulty_next.str();
        if (is_lambda_fault()) os << "; ";
    }
    if (is_lambda_fault()) {
        os << "lambda(" << state.str() << ',' << input_str(input)
           << "): " << trit_char(good_out) << " -> " << trit_char(faulty_out);
    }
    return os.str();
}

int MemoryFsm::slot(const PairState& state, Input in) {
    MTG_EXPECTS(state.fully_known());
    return state.index() * kInputCount + static_cast<int>(in);
}

MemoryFsm MemoryFsm::good() {
    MemoryFsm m;
    for (const auto& s : all_known_states()) {
        for (Input in : all_inputs()) {
            PairState next = s;
            Trit out = Trit::X;  // '-' for writes and wait
            if (is_write(in)) {
                next.set(input_cell(in), trit_from_bit(input_value(in)));
            } else if (is_read(in)) {
                out = s.get(input_cell(in));
            }
            // T: identity transition, output '-'.
            m.next_[static_cast<std::size_t>(slot(s, in))] =
                static_cast<std::uint8_t>(next.index());
            m.out_[static_cast<std::size_t>(slot(s, in))] = out;
        }
    }
    return m;
}

PairState MemoryFsm::next(const PairState& state, Input in) const {
    return PairState::from_index(
        next_[static_cast<std::size_t>(slot(state, in))]);
}

Trit MemoryFsm::output(const PairState& state, Input in) const {
    return out_[static_cast<std::size_t>(slot(state, in))];
}

void MemoryFsm::set_next(const PairState& state, Input in,
                         const PairState& next) {
    MTG_EXPECTS(next.fully_known());
    next_[static_cast<std::size_t>(slot(state, in))] =
        static_cast<std::uint8_t>(next.index());
}

void MemoryFsm::set_output(const PairState& state, Input in, Trit out) {
    out_[static_cast<std::size_t>(slot(state, in))] = out;
}

PairState MemoryFsm::run(const PairState& start, const std::vector<Input>& word,
                         std::vector<Trit>* outputs) const {
    PairState state = start;
    for (Input in : word) {
        if (outputs) outputs->push_back(output(state, in));
        state = next(state, in);
    }
    return state;
}

std::vector<Bfe> MemoryFsm::diff(const MemoryFsm& reference) const {
    std::vector<Bfe> bfes;
    for (const auto& s : all_known_states()) {
        for (Input in : all_inputs()) {
            const PairState good_next = reference.next(s, in);
            const PairState faulty_next = next(s, in);
            const Trit good_out = reference.output(s, in);
            const Trit faulty_out = output(s, in);
            if (good_next != faulty_next || good_out != faulty_out) {
                bfes.push_back(Bfe{s, in, good_next, faulty_next, good_out,
                                   faulty_out});
            }
        }
    }
    return bfes;
}

int MemoryFsm::perturbation_count(const MemoryFsm& reference) const {
    return static_cast<int>(diff(reference).size());
}

std::string MemoryFsm::table_str() const {
    std::ostringstream os;
    os << "state";
    for (Input in : all_inputs()) os << '\t' << input_str(in);
    os << '\n';
    for (const auto& s : all_known_states()) {
        os << s.str();
        for (Input in : all_inputs()) {
            os << '\t' << next(s, in).str() << '/'
               << trit_char(output(s, in));
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace mtg::fsm
