#include "sim/packed_memory.hpp"

namespace mtg::sim {

using fault::FaultKind;

PackedSimMemory::PackedSimMemory(int cell_count)
    : value_(static_cast<std::size_t>(cell_count), 0),
      known_(static_cast<std::size_t>(cell_count), 0),
      single_(static_cast<std::size_t>(cell_count)),
      coupling_(static_cast<std::size_t>(cell_count)),
      afmap_(static_cast<std::size_t>(cell_count)) {
    MTG_EXPECTS(cell_count > 0);
}

void PackedSimMemory::check_addr(int addr) const {
    MTG_EXPECTS(addr >= 0 && addr < size());
}

void PackedSimMemory::inject(const InjectedFault& fault, LaneMask lanes) {
    check_addr(fault.cell_a);
    if (fault.cell_b >= 0) check_addr(fault.cell_b);
    MTG_EXPECTS((occupied_ & lanes) == 0);  // one fault per lane
    occupied_ |= lanes;

    auto& s = single_[static_cast<std::size_t>(fault.cell_a)];
    switch (fault.kind) {
        case FaultKind::Saf0: s.saf0 |= lanes; return;
        case FaultKind::Saf1: s.saf1 |= lanes; return;
        case FaultKind::TfUp: s.tf_up |= lanes; return;
        case FaultKind::TfDown: s.tf_down |= lanes; return;
        case FaultKind::Wdf0: s.wdf0 |= lanes; return;
        case FaultKind::Wdf1: s.wdf1 |= lanes; return;
        case FaultKind::Rdf0: s.rdf0 |= lanes; return;
        case FaultKind::Rdf1: s.rdf1 |= lanes; return;
        case FaultKind::Drdf0: s.drdf0 |= lanes; return;
        case FaultKind::Drdf1: s.drdf1 |= lanes; return;
        case FaultKind::Irf0: s.irf0 |= lanes; return;
        case FaultKind::Irf1: s.irf1 |= lanes; return;
        case FaultKind::Drf0: s.drf0 |= lanes; return;
        case FaultKind::Drf1: s.drf1 |= lanes; return;
        case FaultKind::CfinUp:
        case FaultKind::CfinDown:
        case FaultKind::CfidUp0:
        case FaultKind::CfidUp1:
        case FaultKind::CfidDown0:
        case FaultKind::CfidDown1:
        case FaultKind::Af:
            coupling_[static_cast<std::size_t>(fault.cell_a)].push_back(
                {fault.kind, fault.cell_b, lanes});
            return;
        case FaultKind::CfstS0F0:
            static_.push_back({fault.cell_a, fault.cell_b, false, false, lanes});
            return;
        case FaultKind::CfstS0F1:
            static_.push_back({fault.cell_a, fault.cell_b, false, true, lanes});
            return;
        case FaultKind::CfstS1F0:
            static_.push_back({fault.cell_a, fault.cell_b, true, false, lanes});
            return;
        case FaultKind::CfstS1F1:
            static_.push_back({fault.cell_a, fault.cell_b, true, true, lanes});
            return;
        case FaultKind::AfMap:
            afmap_[static_cast<std::size_t>(fault.cell_a)].push_back(
                {fault.cell_b, lanes});
            return;
    }
    MTG_ASSERT(false && "unhandled fault kind");
}

void PackedSimMemory::enforce_static_coupling() {
    for (const StaticEntry& s : static_) {
        const LaneMask av = value_[static_cast<std::size_t>(s.aggressor)];
        const LaneMask ak = known_[static_cast<std::size_t>(s.aggressor)];
        const LaneMask match = s.lanes & ak & (s.sense ? av : ~av);
        if (!match) continue;
        auto& vv = value_[static_cast<std::size_t>(s.victim)];
        vv = s.force ? (vv | match) : (vv & ~match);
        known_[static_cast<std::size_t>(s.victim)] |= match;
    }
}

void PackedSimMemory::write(int addr, int d) {
    check_addr(addr);
    const auto a = static_cast<std::size_t>(addr);
    const LaneMask dmask = d ? kAllLanes : LaneMask{0};

    // Decoder-map lanes: the whole access is redirected to the victim cell.
    LaneMask redirected = 0;
    for (const MapEntry& m : afmap_[a]) {
        const auto v = static_cast<std::size_t>(m.victim);
        value_[v] = (value_[v] & ~m.lanes) | (dmask & m.lanes);
        known_[v] |= m.lanes;
        redirected |= m.lanes;
    }
    const LaneMask active = ~redirected;

    const LaneMask old_v = value_[a];
    const LaneMask old_k = known_[a];
    const LaneMask old0 = old_k & ~old_v;  // lanes with a known stored 0
    const LaneMask old1 = old_k & old_v;   // lanes with a known stored 1

    // Effective written value per lane. The single-cell masks are disjoint
    // lane-wise (one fault per lane), so sequential application is exact.
    const SingleCellMasks& s = single_[a];
    LaneMask eff = dmask;
    eff = (eff & ~s.saf0) | s.saf1;
    if (d == 1) {
        eff &= ~(s.tf_up & old0);  // 0 -> 1 transition fails
        eff &= ~(s.wdf1 & old1);   // w1 over a 1 flips the cell to 0
    } else {
        eff |= s.tf_down & old1;   // 1 -> 0 transition fails
        eff |= s.wdf0 & old0;      // w0 over a 0 flips the cell to 1
    }

    value_[a] = (old_v & ~active) | (eff & active);
    known_[a] |= active;

    // Coupling sensitised by the stored-value transition of this aggressor.
    const LaneMask rising = active & old0 & eff;
    const LaneMask falling = active & old1 & ~eff;
    for (const CouplingEntry& c : coupling_[a]) {
        const auto v = static_cast<std::size_t>(c.victim);
        LaneMask t = 0;
        switch (c.kind) {
            case FaultKind::CfinUp:
                t = c.lanes & rising;
                value_[v] ^= t & known_[v];  // X victims stay X
                continue;
            case FaultKind::CfinDown:
                t = c.lanes & falling;
                value_[v] ^= t & known_[v];
                continue;
            case FaultKind::CfidUp0: t = c.lanes & rising; break;
            case FaultKind::CfidUp1: t = c.lanes & rising; break;
            case FaultKind::CfidDown0: t = c.lanes & falling; break;
            case FaultKind::CfidDown1: t = c.lanes & falling; break;
            case FaultKind::Af: t = c.lanes & active; break;
            default: MTG_ASSERT(false && "not a coupling kind"); break;
        }
        if (!t) continue;
        switch (c.kind) {
            case FaultKind::CfidUp0:
            case FaultKind::CfidDown0: value_[v] &= ~t; break;
            case FaultKind::CfidUp1:
            case FaultKind::CfidDown1: value_[v] |= t; break;
            case FaultKind::Af:
                // Shorted decoder: the write lands on the victim as well.
                value_[v] = (value_[v] & ~t) | (eff & t);
                break;
            default: break;
        }
        known_[v] |= t;
    }

    enforce_static_coupling();
}

PackedSimMemory::ReadResult PackedSimMemory::read(int addr) {
    check_addr(addr);
    const auto a = static_cast<std::size_t>(addr);

    // Decoder-map lanes observe the victim's cell instead.
    ReadResult out;
    LaneMask redirected = 0;
    for (const MapEntry& m : afmap_[a]) {
        const auto v = static_cast<std::size_t>(m.victim);
        out.value |= value_[v] & m.lanes;
        out.known |= known_[v] & m.lanes;
        redirected |= m.lanes;
    }
    const LaneMask active = ~redirected;

    const LaneMask cell_v = value_[a];
    const LaneMask cell_k = known_[a];
    const LaneMask is0 = cell_k & ~cell_v;
    const LaneMask is1 = cell_k & cell_v;
    const SingleCellMasks& s = single_[a];

    LaneMask seen_v = cell_v;
    LaneMask seen_k = cell_k;
    // Stuck-at cells always read back the stuck value, even before any
    // write has initialised them.
    seen_v = (seen_v & ~s.saf0) | s.saf1;
    seen_k |= s.saf0 | s.saf1;

    LaneMask t;
    t = s.rdf0 & is0;  // flips the cell and returns the wrong value
    value_[a] |= t;
    seen_v |= t;
    t = s.rdf1 & is1;
    value_[a] &= ~t;
    seen_v &= ~t;
    t = s.drdf0 & is0;  // deceptive: flips the cell, returns the old value
    value_[a] |= t;
    t = s.drdf1 & is1;
    value_[a] &= ~t;
    seen_v |= s.irf0 & is0;     // wrong value, no flip
    seen_v &= ~(s.irf1 & is1);

    out.value |= seen_v & active;
    out.known |= seen_k & active;
    out.value &= out.known;  // normalise: X lanes report 0

    enforce_static_coupling();
    return out;
}

void PackedSimMemory::wait() {
    for (std::size_t c = 0; c < value_.size(); ++c) {
        const SingleCellMasks& s = single_[c];
        if (!(s.drf0 | s.drf1)) continue;
        const LaneMask is0 = known_[c] & ~value_[c];
        const LaneMask is1 = known_[c] & value_[c];
        value_[c] = (value_[c] & ~(s.drf0 & is1)) | (s.drf1 & is0);
    }
    enforce_static_coupling();
}

Trit PackedSimMemory::peek(int addr, int lane) const {
    check_addr(addr);
    MTG_EXPECTS(lane >= 0 && lane < kLaneCount);
    const LaneMask bit = LaneMask{1} << lane;
    if (!(known_[static_cast<std::size_t>(addr)] & bit)) return Trit::X;
    return (value_[static_cast<std::size_t>(addr)] & bit) ? Trit::One
                                                          : Trit::Zero;
}

void PackedSimMemory::poke(int addr, LaneMask lanes, Trit v) {
    check_addr(addr);
    const auto a = static_cast<std::size_t>(addr);
    if (v == Trit::X) {
        known_[a] &= ~lanes;
        value_[a] &= ~lanes;
    } else {
        known_[a] |= lanes;
        value_[a] = v == Trit::One ? (value_[a] | lanes) : (value_[a] & ~lanes);
    }
    enforce_static_coupling();
}

}  // namespace mtg::sim
