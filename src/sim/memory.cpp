#include "sim/memory.hpp"

namespace mtg::sim {

using fault::FaultKind;

SimMemory::SimMemory(int cell_count)
    : cells_(static_cast<std::size_t>(cell_count), Trit::X) {
    MTG_EXPECTS(cell_count > 0);
}

void SimMemory::inject(const InjectedFault& fault) {
    check_addr(fault.cell_a);
    if (fault.cell_b >= 0) check_addr(fault.cell_b);
    faults_.push_back(fault);
}

void SimMemory::check_addr(int addr) const {
    MTG_EXPECTS(addr >= 0 && addr < size());
}

void SimMemory::enforce_static_coupling() {
    for (const auto& f : faults_) {
        int sv = 0, fv = 0;
        switch (f.kind) {
            case FaultKind::CfstS0F0: sv = 0; fv = 0; break;
            case FaultKind::CfstS0F1: sv = 0; fv = 1; break;
            case FaultKind::CfstS1F0: sv = 1; fv = 0; break;
            case FaultKind::CfstS1F1: sv = 1; fv = 1; break;
            default: continue;
        }
        const Trit a = cells_[static_cast<std::size_t>(f.cell_a)];
        if (is_known(a) && trit_bit(a) == sv)
            cells_[static_cast<std::size_t>(f.cell_b)] = trit_from_bit(fv);
    }
}

void SimMemory::write(int addr, int d) {
    check_addr(addr);

    // Decoder-map faults redirect the whole access: the faulty address
    // operates on the victim's cell and leaves its own cell untouched.
    for (const auto& f : faults_) {
        if (f.kind == FaultKind::AfMap && f.cell_a == addr) {
            cells_[static_cast<std::size_t>(f.cell_b)] = trit_from_bit(d);
            enforce_static_coupling();
            return;
        }
    }

    const Trit old = cells_[static_cast<std::size_t>(addr)];
    Trit effective = trit_from_bit(d);

    // Single-cell effects on the written cell itself.
    for (const auto& f : faults_) {
        if (f.cell_a != addr || fault::is_two_cell(f.kind)) continue;
        switch (f.kind) {
            case FaultKind::Saf0: effective = Trit::Zero; break;
            case FaultKind::Saf1: effective = Trit::One; break;
            case FaultKind::TfUp:
                // 0 -> 1 transition fails; also fails from unknown state
                // conservatively only when the old value is a known 0.
                if (d == 1 && old == Trit::Zero) effective = Trit::Zero;
                break;
            case FaultKind::TfDown:
                if (d == 0 && old == Trit::One) effective = Trit::One;
                break;
            case FaultKind::Wdf0:
                if (d == 0 && old == Trit::Zero) effective = Trit::One;
                break;
            case FaultKind::Wdf1:
                if (d == 1 && old == Trit::One) effective = Trit::Zero;
                break;
            default: break;
        }
    }
    cells_[static_cast<std::size_t>(addr)] = effective;

    // Coupling effects where this write addresses the aggressor. The
    // transition is judged on the *stored* values (old -> effective).
    for (const auto& f : faults_) {
        if (!fault::is_two_cell(f.kind) || f.cell_a != addr) continue;
        const bool rising = old == Trit::Zero && effective == Trit::One;
        const bool falling = old == Trit::One && effective == Trit::Zero;
        auto& victim = cells_[static_cast<std::size_t>(f.cell_b)];
        switch (f.kind) {
            case FaultKind::CfinUp:
                if (rising) victim = trit_not(victim);
                break;
            case FaultKind::CfinDown:
                if (falling) victim = trit_not(victim);
                break;
            case FaultKind::CfidUp0:
                if (rising) victim = Trit::Zero;
                break;
            case FaultKind::CfidUp1:
                if (rising) victim = Trit::One;
                break;
            case FaultKind::CfidDown0:
                if (falling) victim = Trit::Zero;
                break;
            case FaultKind::CfidDown1:
                if (falling) victim = Trit::One;
                break;
            case FaultKind::Af:
                // Shorted decoder: the write lands on the victim as well.
                victim = effective;
                break;
            default: break;
        }
    }

    enforce_static_coupling();
}

Trit SimMemory::read(int addr) {
    check_addr(addr);

    for (const auto& f : faults_) {
        if (f.kind == FaultKind::AfMap && f.cell_a == addr) {
            // The decoder selects the victim's cell instead.
            enforce_static_coupling();
            return cells_[static_cast<std::size_t>(f.cell_b)];
        }
    }

    Trit value = cells_[static_cast<std::size_t>(addr)];

    for (const auto& f : faults_) {
        if (f.cell_a != addr || fault::is_two_cell(f.kind)) continue;
        switch (f.kind) {
            case FaultKind::Saf0: value = Trit::Zero; break;
            case FaultKind::Saf1: value = Trit::One; break;
            case FaultKind::Rdf0:
                if (value == Trit::Zero) {
                    cells_[static_cast<std::size_t>(addr)] = Trit::One;
                    value = Trit::One;
                }
                break;
            case FaultKind::Rdf1:
                if (value == Trit::One) {
                    cells_[static_cast<std::size_t>(addr)] = Trit::Zero;
                    value = Trit::Zero;
                }
                break;
            case FaultKind::Drdf0:
                if (value == Trit::Zero)
                    cells_[static_cast<std::size_t>(addr)] = Trit::One;
                break;  // returned value stays correct (deceptive)
            case FaultKind::Drdf1:
                if (value == Trit::One)
                    cells_[static_cast<std::size_t>(addr)] = Trit::Zero;
                break;
            case FaultKind::Irf0:
                if (value == Trit::Zero) value = Trit::One;
                break;
            case FaultKind::Irf1:
                if (value == Trit::One) value = Trit::Zero;
                break;
            default: break;
        }
    }

    enforce_static_coupling();
    return value;
}

void SimMemory::wait() {
    for (const auto& f : faults_) {
        auto& cell = cells_[static_cast<std::size_t>(f.cell_a)];
        switch (f.kind) {
            case FaultKind::Drf0:
                if (cell == Trit::One) cell = Trit::Zero;
                break;
            case FaultKind::Drf1:
                if (cell == Trit::Zero) cell = Trit::One;
                break;
            default: break;
        }
    }
    enforce_static_coupling();
}

Trit SimMemory::peek(int addr) const {
    check_addr(addr);
    return cells_[static_cast<std::size_t>(addr)];
}

void SimMemory::poke(int addr, Trit v) {
    check_addr(addr);
    cells_[static_cast<std::size_t>(addr)] = v;
    enforce_static_coupling();
}

}  // namespace mtg::sim
