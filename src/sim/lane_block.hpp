#pragma once

/// \file lane_block.hpp
/// Lane-block abstraction behind the packed simulation kernels.
///
/// PR 1/PR 2 packed 64 simulation lanes into one `uint64_t` plane word. A
/// `LaneBlock<W>` widens every plane to W contiguous 64-bit words, so one
/// bitwise plane operation processes 64·W lanes — on AVX2 (W=4) or AVX-512
/// (W=8) hardware the whole block retires as one vector instruction, giving
/// a near-free 4–8× over the scalar word path. The packing convention is
/// per-word: each 64-lane word keeps bit 0 as the fault-free reference
/// lane, so a block chunk carries 63·W fault lanes and is bit-for-bit W
/// stacked scalar chunks. That makes every width produce identical
/// detection masks per fault, which the lane-width differential tests
/// enforce.
///
/// The width-generic kernels are written against the small trait surface
/// below (`block_zero`, `block_ones`, `block_none`, `block_word`, ...) and
/// instantiated for `LaneMask` (the scalar W=1 fallback — plain `uint64_t`,
/// zero abstraction cost) and `LaneBlock<4>` / `LaneBlock<8>`. All block
/// code is plain C++ (unrolled word loops, no intrinsics), so every width
/// is safe to *run* on every host; SIMD codegen is supplied by the
/// `target`-attributed kernel wrappers in lane_kernels.cpp, selected at
/// runtime by CPUID (see lane_dispatch.hpp).

#include <bit>
#include <cstddef>
#include <cstdint>

namespace mtg::sim {

/// One bit per simulation lane.
using LaneMask = std::uint64_t;

/// Number of lanes packed into one plane word.
inline constexpr int kLaneCount = 64;

/// All-ones lane mask.
inline constexpr LaneMask kAllLanes = ~LaneMask{0};

/// Population lanes per plane word: 63 fault lanes + the fault-free
/// reference lane 0. Shared by the bit- and word-oriented batch runners so
/// the packing convention cannot diverge.
inline constexpr int kChunkLanes = kLaneCount - 1;

/// Mask of the population lanes 1..count of one plane word.
constexpr LaneMask used_lanes(int count) {
    return (count == kChunkLanes ? kAllLanes
                                 : (LaneMask{1} << (count + 1)) - 1) &
           ~LaneMask{1};
}

/// Lane count of chunk `c` of a population of `population` faults (scalar
/// 63-lane chunking; the block-generic variant is block_chunk_count below).
constexpr int chunk_count(std::size_t population, std::size_t c) {
    const std::size_t remaining = population - c * kChunkLanes;
    return remaining < static_cast<std::size_t>(kChunkLanes)
               ? static_cast<int>(remaining)
               : kChunkLanes;
}

/// Block storage: a GNU vector type where available, so every bitwise
/// block operation is guaranteed to lower to whole-register vector
/// instructions (SSE2 pairs on a baseline x86-64 build, single ymm/zmm
/// ops inside the `target`-attributed wrappers) instead of relying on the
/// auto-vectoriser finding the word loops; a plain array otherwise.
#if defined(__GNUC__) || defined(__clang__)
#define MTG_LANE_VECTOR_EXT 1
template <int W>
struct LaneVec;
template <>
struct LaneVec<4> {
    typedef std::uint64_t type __attribute__((vector_size(32)));
};
template <>
struct LaneVec<8> {
    typedef std::uint64_t type __attribute__((vector_size(64)));
};
#else
#define MTG_LANE_VECTOR_EXT 0
template <int W>
struct LaneVec {
    using type = std::uint64_t[W];
};
#endif

/// W contiguous plane words, operated on as one value. Alignment matches
/// the natural vector register size so vector loads stay aligned.
template <int W>
struct alignas(8 * W) LaneBlock {
    static_assert(W == 4 || W == 8,
                  "lane blocks span 4 or 8 plane words (256/512-bit)");

    typename LaneVec<W>::type w{};

    friend LaneBlock operator&(LaneBlock a, const LaneBlock& b) {
#if MTG_LANE_VECTOR_EXT
        a.w &= b.w;
#else
        for (int i = 0; i < W; ++i) a.w[i] &= b.w[i];
#endif
        return a;
    }
    friend LaneBlock operator|(LaneBlock a, const LaneBlock& b) {
#if MTG_LANE_VECTOR_EXT
        a.w |= b.w;
#else
        for (int i = 0; i < W; ++i) a.w[i] |= b.w[i];
#endif
        return a;
    }
    friend LaneBlock operator^(LaneBlock a, const LaneBlock& b) {
#if MTG_LANE_VECTOR_EXT
        a.w ^= b.w;
#else
        for (int i = 0; i < W; ++i) a.w[i] ^= b.w[i];
#endif
        return a;
    }
    friend LaneBlock operator~(LaneBlock a) {
#if MTG_LANE_VECTOR_EXT
        a.w = ~a.w;
#else
        for (int i = 0; i < W; ++i) a.w[i] = ~a.w[i];
#endif
        return a;
    }
    LaneBlock& operator&=(const LaneBlock& b) {
#if MTG_LANE_VECTOR_EXT
        w &= b.w;
#else
        for (int i = 0; i < W; ++i) w[i] &= b.w[i];
#endif
        return *this;
    }
    LaneBlock& operator|=(const LaneBlock& b) {
#if MTG_LANE_VECTOR_EXT
        w |= b.w;
#else
        for (int i = 0; i < W; ++i) w[i] |= b.w[i];
#endif
        return *this;
    }
    LaneBlock& operator^=(const LaneBlock& b) {
#if MTG_LANE_VECTOR_EXT
        w ^= b.w;
#else
        for (int i = 0; i < W; ++i) w[i] ^= b.w[i];
#endif
        return *this;
    }
    friend bool operator==(const LaneBlock& a, const LaneBlock& b) {
        for (int i = 0; i < W; ++i)
            if (a.w[i] != b.w[i]) return false;
        return true;
    }
};

/// Uniform access to a block's plane words; specialised so the scalar
/// `LaneMask` path compiles to exactly the PR 2 code.
template <typename Block>
struct BlockTraits;

template <>
struct BlockTraits<LaneMask> {
    static constexpr int words = 1;
    static constexpr LaneMask zero() { return 0; }
    static constexpr LaneMask ones() { return kAllLanes; }
    static constexpr bool none(LaneMask b) { return b == 0; }
    static constexpr LaneMask word(LaneMask b, int) { return b; }
    static constexpr void set_word(LaneMask& b, int, LaneMask v) { b = v; }
    static constexpr LaneMask& word_ref(LaneMask& b, int) { return b; }
};

template <int W>
struct BlockTraits<LaneBlock<W>> {
    static constexpr int words = W;
    static LaneBlock<W> zero() { return {}; }
    static LaneBlock<W> ones() {
        LaneBlock<W> b;
        for (int i = 0; i < W; ++i) b.w[i] = kAllLanes;
        return b;
    }
    static bool none(const LaneBlock<W>& b) {
        LaneMask any = 0;
        for (int i = 0; i < W; ++i) any |= b.w[i];
        return any == 0;
    }
    static LaneMask word(const LaneBlock<W>& b, int i) { return b.w[i]; }
    static void set_word(LaneBlock<W>& b, int i, LaneMask v) { b.w[i] = v; }
    static LaneMask& word_ref(LaneBlock<W>& b, int i) {
        return reinterpret_cast<LaneMask*>(&b.w)[i];
    }
};

/// Plane words per block (1 for the scalar LaneMask path).
template <typename Block>
inline constexpr int block_words = BlockTraits<Block>::words;

/// Simulation lanes per block (64·W).
template <typename Block>
inline constexpr int block_lane_count = kLaneCount * block_words<Block>;

/// Fault lanes per block chunk (63·W — bit 0 of every word is reserved for
/// the fault-free reference by the per-word packing convention).
template <typename Block>
inline constexpr int block_fault_lanes = kChunkLanes * block_words<Block>;

template <typename Block>
inline Block block_zero() {
    return BlockTraits<Block>::zero();
}

template <typename Block>
inline Block block_ones() {
    return BlockTraits<Block>::ones();
}

/// All-ones when `bit` is set, all-zeros otherwise (broadcast of a written
/// or expected data bit across every lane).
template <typename Block>
inline Block block_fill(bool bit) {
    return bit ? block_ones<Block>() : block_zero<Block>();
}

template <typename Block>
inline bool block_none(const Block& b) {
    return BlockTraits<Block>::none(b);
}

template <typename Block>
inline bool block_any(const Block& b) {
    return !block_none(b);
}

/// Plane word `i` of the block.
template <typename Block>
inline LaneMask block_word(const Block& b, int i) {
    return BlockTraits<Block>::word(b, i);
}

template <typename Block>
inline LaneMask& block_word_ref(Block& b, int i) {
    return BlockTraits<Block>::word_ref(b, i);
}

/// Block with exactly lane `lane` set.
template <typename Block>
inline Block block_lane_bit(int lane) {
    Block b = block_zero<Block>();
    BlockTraits<Block>::set_word(b, lane / kLaneCount,
                                 LaneMask{1} << (lane % kLaneCount));
    return b;
}

/// Invokes fn(word, mask) for every plane word of `lanes` with at least
/// one lane set — how the packed memories split a multi-word lane mask
/// into word-sparse per-fault entries (a single fault always lands in
/// exactly ONE plane word, the invariant that keeps per-fault bookkeeping
/// at scalar cost regardless of the block width).
template <typename Block, typename Fn>
inline void for_each_block_word(const Block& lanes, Fn&& fn) {
    for (int w = 0; w < block_words<Block>; ++w) {
        const LaneMask m = block_word(lanes, w);
        if (m) fn(w, m);
    }
}

/// Invokes fn(lane) for every set lane of `lanes`, in ascending lane
/// order — the sparse-trace extraction walks populated cells and fans
/// their lane masks out to per-fault traces, so it iterates set bits
/// instead of probing all 64·W lanes per cell.
template <typename Block, typename Fn>
inline void for_each_lane(const Block& lanes, Fn&& fn) {
    for (int w = 0; w < block_words<Block>; ++w) {
        LaneMask m = block_word(lanes, w);
        while (m != 0) {
            fn(w * kLaneCount + std::countr_zero(m));
            m &= m - 1;
        }
    }
}

/// Value of lane `lane` of the block.
template <typename Block>
inline bool block_test(const Block& b, int lane) {
    return ((BlockTraits<Block>::word(b, lane / kLaneCount) >>
             (lane % kLaneCount)) &
            1u) != 0;
}

/// Lane index of member `i` of a block chunk: word i/63, bit 1 + i%63 —
/// faults fill each plane word's 63 population lanes before moving to the
/// next word, so word k of a block chunk is bit-identical to scalar chunk
/// (c·W + k).
constexpr int fault_lane(int i) {
    return (i / kChunkLanes) * kLaneCount + 1 + i % kChunkLanes;
}

/// Mask of the population lanes of a chunk carrying `count` faults.
template <typename Block>
inline Block block_used_lanes(int count) {
    Block b = block_zero<Block>();
    for (int w = 0; w < block_words<Block> && count > 0; ++w) {
        const int here = count < kChunkLanes ? count : kChunkLanes;
        BlockTraits<Block>::set_word(b, w, used_lanes(here));
        count -= here;
    }
    return b;
}

/// Number of block chunks a population of `population` faults occupies.
template <typename Block>
constexpr std::size_t block_chunk_total(std::size_t population) {
    const auto per = static_cast<std::size_t>(block_fault_lanes<Block>);
    return (population + per - 1) / per;
}

/// Fault count of block chunk `c` of a population of `population` faults.
template <typename Block>
constexpr int block_chunk_count(std::size_t population, std::size_t c) {
    const auto per = static_cast<std::size_t>(block_fault_lanes<Block>);
    const std::size_t remaining = population - c * per;
    return remaining < per ? static_cast<int>(remaining)
                           : block_fault_lanes<Block>;
}

}  // namespace mtg::sim
