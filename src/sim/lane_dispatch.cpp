#include "sim/lane_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "sim/lane_block.hpp"

namespace mtg::sim {

namespace {
std::atomic<bool> g_pass_scratch{true};
std::atomic<bool> g_dense_trace_grids{false};
std::atomic<int> g_requested_isa{-1};  // -1: resolve MTG_LANE_ISA lazily
}  // namespace

bool pass_scratch_enabled() {
    return g_pass_scratch.load(std::memory_order_relaxed);
}

void set_pass_scratch_enabled(bool enabled) {
    g_pass_scratch.store(enabled, std::memory_order_relaxed);
}

bool dense_trace_grids() {
    return g_dense_trace_grids.load(std::memory_order_relaxed);
}

void set_dense_trace_grids(bool enabled) {
    g_dense_trace_grids.store(enabled, std::memory_order_relaxed);
}

LaneIsa parse_lane_isa(const char* value) {
    if (value == nullptr) return LaneIsa::Auto;
    if (std::strcmp(value, "avx512") == 0) return LaneIsa::Avx512;
    if (std::strcmp(value, "avx2") == 0) return LaneIsa::Avx2;
    if (std::strcmp(value, "generic") == 0) return LaneIsa::Generic;
    return LaneIsa::Auto;
}

LaneIsa resolve_lane_isa(LaneIsa requested, std::size_t work_items,
                         bool has_avx2, bool has_avx512f) {
    // Forced ISAs degrade down the feature ladder rather than crash: a
    // forced avx512 on an AVX2-only host runs the clone, a forced avx2 on
    // a pre-AVX2 host runs the generic instantiation.
    if (requested == LaneIsa::Generic) return LaneIsa::Generic;
    if (requested == LaneIsa::Avx512)
        return has_avx512f ? LaneIsa::Avx512
                           : (has_avx2 ? LaneIsa::Avx2 : LaneIsa::Generic);
    if (requested == LaneIsa::Avx2)
        return has_avx2 ? LaneIsa::Avx2 : LaneIsa::Generic;
    // Auto: zmm only when the job is long enough to amortise the AVX-512
    // frequency-license ramp; short bursts run the 256-bit clone.
    if (has_avx512f && work_items >= kZmmWorkItemThreshold)
        return LaneIsa::Avx512;
    if (has_avx2) return LaneIsa::Avx2;
    if (has_avx512f) return LaneIsa::Avx512;
    return LaneIsa::Generic;
}

LaneIsa requested_lane_isa() {
    int isa = g_requested_isa.load(std::memory_order_relaxed);
    if (isa < 0) {
        isa = static_cast<int>(parse_lane_isa(std::getenv("MTG_LANE_ISA")));
        g_requested_isa.store(isa, std::memory_order_relaxed);
    }
    return static_cast<LaneIsa>(isa);
}

void set_requested_lane_isa(LaneIsa isa) {
    g_requested_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

LaneIsa active_lane_isa(std::size_t work_items) {
    return resolve_lane_isa(requested_lane_isa(), work_items,
                            cpu_has_avx2(), cpu_has_avx512f());
}

bool lane_width_supported(int width) {
    return width == 1 || width == 4 || width == 8;
}

int parse_lane_width(const char* value) {
    if (value == nullptr || *value == '\0') return 0;
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0') return 0;
    return lane_width_supported(static_cast<int>(parsed))
               ? static_cast<int>(parsed)
               : 0;
}

int resolve_lane_width(const char* override_value, bool has_avx2,
                       bool has_avx512f) {
    const int forced = parse_lane_width(override_value);
    if (forced != 0) return forced;
    if (has_avx512f) return 8;
    if (has_avx2) return 4;
    return 1;
}

bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool cpu_has_avx512f() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx512f") != 0;
#else
    return false;
#endif
}

int active_lane_width() {
    static const int width = resolve_lane_width(
        std::getenv("MTG_LANE_WIDTH"), cpu_has_avx2(), cpu_has_avx512f());
    return width;
}

bool lane_width_forced() {
    static const bool forced =
        parse_lane_width(std::getenv("MTG_LANE_WIDTH")) != 0;
    return forced;
}

int clamp_lane_width(int width, std::size_t population) {
    const std::size_t words =
        (population + kChunkLanes - 1) / kChunkLanes;
    if (words <= 3) return 1;
    if (words <= 7 || width < 8) return width < 4 ? 1 : 4;
    return width;
}

}  // namespace mtg::sim
