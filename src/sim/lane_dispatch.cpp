#include "sim/lane_dispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "sim/lane_block.hpp"

namespace mtg::sim {

namespace {
std::atomic<bool> g_pass_scratch{true};
}  // namespace

bool pass_scratch_enabled() {
    return g_pass_scratch.load(std::memory_order_relaxed);
}

void set_pass_scratch_enabled(bool enabled) {
    g_pass_scratch.store(enabled, std::memory_order_relaxed);
}

bool lane_width_supported(int width) {
    return width == 1 || width == 4 || width == 8;
}

int parse_lane_width(const char* value) {
    if (value == nullptr || *value == '\0') return 0;
    char* end = nullptr;
    const long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0') return 0;
    return lane_width_supported(static_cast<int>(parsed))
               ? static_cast<int>(parsed)
               : 0;
}

int resolve_lane_width(const char* override_value, bool has_avx2,
                       bool has_avx512f) {
    const int forced = parse_lane_width(override_value);
    if (forced != 0) return forced;
    if (has_avx512f) return 8;
    if (has_avx2) return 4;
    return 1;
}

bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool cpu_has_avx512f() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx512f") != 0;
#else
    return false;
#endif
}

int active_lane_width() {
    static const int width = resolve_lane_width(
        std::getenv("MTG_LANE_WIDTH"), cpu_has_avx2(), cpu_has_avx512f());
    return width;
}

bool lane_width_forced() {
    static const bool forced =
        parse_lane_width(std::getenv("MTG_LANE_WIDTH")) != 0;
    return forced;
}

int clamp_lane_width(int width, std::size_t population) {
    const std::size_t words =
        (population + kChunkLanes - 1) / kChunkLanes;
    if (words <= 3) return 1;
    if (words <= 7 || width < 8) return width < 4 ? 1 : 4;
    return width;
}

}  // namespace mtg::sim
