#pragma once

/// \file batch_runner.hpp
/// Evaluates one March test against a whole fault population per pass.
///
/// The runner packs up to 63 fault instances into the lanes of one
/// PackedSimMemory (lane 0 stays fault-free as the reference), executes the
/// test once per ⇕ expansion, and intersects the per-lane failing-read masks
/// across expansions — exactly the guaranteed-detection semantics of the
/// scalar march_runner, but one memory pass per 63 faults instead of one
/// pass per fault.
///
/// Passes are independent, so the runner shards them across a
/// util::ThreadPool: detects()/detects_all() fuse the ceil(population/63)
/// chunks with the 2^k ⇕ expansions into one (chunk × expansion) work grid
/// — small populations on big expansion counts still saturate every core —
/// and merge atomic-free per-worker lane masks after the loop drains.
/// detects_all keeps its fail-fast behaviour through an atomic early-exit
/// flag shared by the workers. Results are bit-identical for every worker
/// count (intersection is order-independent), which the determinism tests
/// enforce against the scalar oracle.

#include <vector>

#include "march/march_test.hpp"
#include "sim/march_runner.hpp"
#include "sim/packed_memory.hpp"
#include "util/thread_pool.hpp"

namespace mtg::fault {
struct FaultInstance;
}

namespace mtg::sim {

/// Reusable batched evaluator for one March test. Precomputes the ⇕
/// expansion set and the read-site table once, then serves any number of
/// populations. `pool` (default: the process-wide pool) supplies the
/// workers; pass an explicit single-worker pool for serial execution.
class BatchRunner {
public:
    explicit BatchRunner(const march::MarchTest& test,
                         const RunOptions& opts = {},
                         util::ThreadPool* pool = nullptr);

    /// Detection decided under EVERY ⇕ expansion (the `detects` semantics),
    /// element i answering for population[i]. One packed pass handles 63
    /// faults, so the cost is ceil(population/63) × expansions runs,
    /// sharded across the pool.
    [[nodiscard]] std::vector<bool> detects(
        const std::vector<InjectedFault>& population) const;

    /// True when every population member is detected; an atomic flag stops
    /// the remaining work items at the first escaping lane (the fail-fast
    /// covers_everywhere needs).
    [[nodiscard]] bool detects_all(
        const std::vector<InjectedFault>& population) const;

    /// Full guaranteed traces: element i holds the reads / (site, cell)
    /// observations of population[i] that fail in EVERY ⇕ expansion, in
    /// textual order — bit-identical to the scalar guaranteed_failing_reads
    /// / guaranteed_failing_observations pair. Sharded chunk-wise (each
    /// chunk writes a disjoint result range).
    [[nodiscard]] std::vector<RunTrace> run(
        const std::vector<InjectedFault>& population) const;

    [[nodiscard]] const march::MarchTest& test() const { return test_; }
    [[nodiscard]] const RunOptions& options() const { return opts_; }

private:
    march::MarchTest test_;
    RunOptions opts_;
    util::ThreadPool* pool_;
    std::vector<unsigned> expansions_;
    std::vector<ReadSite> sites_;
    std::vector<std::vector<int>> site_id_;  ///< (element, op) -> flat site

    /// Per-site × per-cell failing-lane masks of one population chunk,
    /// already intersected across every ⇕ expansion.
    struct ChunkResult {
        LaneMask detected{0};
        std::vector<LaneMask> site_fail;         ///< [site]
        std::vector<LaneMask> observation_fail;  ///< [site * n + cell]
    };
    [[nodiscard]] ChunkResult run_chunk(const InjectedFault* faults,
                                        int count) const;

    /// One full test execution of one chunk under one fixed ⇕ choice.
    /// Returns the lanes with at least one definite read mismatch; when
    /// site_now/obs_now are non-null they receive the per-site and
    /// per-(site, cell) mismatch masks of this single pass.
    LaneMask run_pass(const InjectedFault* faults, int count, unsigned choice,
                      std::vector<LaneMask>* site_now,
                      std::vector<LaneMask>* obs_now) const;
};

/// Every concrete placement of `kind` on an n-cell memory: n single-cell
/// instances, or the n·(n-1) ordered (aggressor, victim) pairs. This is the
/// population covers_everywhere sweeps. Degenerate memories yield the
/// mathematically empty population (n=1 has no ordered pair; n=0 nothing).
[[nodiscard]] std::vector<InjectedFault> full_population(fault::FaultKind kind,
                                                         int memory_size);

/// Concatenated full populations of every kind in `kinds`, in list order —
/// the all-kind population behind the generator's single sharded gate.
[[nodiscard]] std::vector<InjectedFault> full_population(
    const std::vector<fault::FaultKind>& kinds, int memory_size);

/// Canonical concrete placement of a fault instance on representative cells
/// of an n-cell memory (n >= 3): single-cell faults at n/3; two-cell faults
/// on (n/3, 2n/3) ordered by the instance's aggressor role. Shared by the
/// coverage matrix and the diagnosis dictionary so their populations stay
/// aligned.
[[nodiscard]] InjectedFault place_instance(const fault::FaultInstance& instance,
                                           int memory_size);

}  // namespace mtg::sim
