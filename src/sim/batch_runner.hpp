#pragma once

/// \file batch_runner.hpp
/// Evaluates one March test against a whole fault population per pass.
///
/// The runner packs up to 63·W fault instances into the lanes of one
/// PackedSimMemoryT lane block (bit 0 of every plane word stays fault-free
/// as the reference), executes the test once per ⇕ expansion, and
/// intersects the per-lane failing-read masks across expansions — exactly
/// the guaranteed-detection semantics of the scalar march_runner, but one
/// memory pass per 63·W faults instead of one pass per fault.
///
/// The block width W ∈ {1, 4, 8} is chosen once per process by runtime
/// CPUID dispatch (AVX-512 → 8, AVX2 → 4, else 1; MTG_LANE_WIDTH
/// overrides — see lane_dispatch.hpp) or per runner via the constructor.
/// Every width produces bit-identical results: each plane word of a block
/// is exactly one scalar chunk, which the lane-width differential tests
/// enforce.
///
/// Passes are independent, so the runner shards them across a
/// util::ThreadPool: detects()/detects_all() fuse the ceil(population/63W)
/// chunks with the 2^k ⇕ expansions into one (chunk × expansion) work grid
/// — small populations on big expansion counts still saturate every core —
/// and merge atomic-free per-worker lane masks after the loop drains.
/// detects_all keeps its fail-fast behaviour through an atomic early-exit
/// flag shared by the workers. Results are bit-identical for every worker
/// count (intersection is order-independent), which the determinism tests
/// enforce against the scalar oracle.

#include <span>
#include <vector>

#include "march/march_test.hpp"
#include "sim/march_runner.hpp"
#include "sim/sim_kernels.hpp"
#include "util/thread_pool.hpp"

namespace mtg::fault {
struct FaultInstance;
}

namespace mtg::sim {

/// Reusable batched evaluator for one March test. Precomputes the ⇕
/// expansion set and the read-site table once, then serves any number of
/// populations. `pool` (default: the process-wide pool) supplies the
/// workers; pass an explicit single-worker pool for serial execution.
/// `lane_width` forces a block width (1, 4 or 8) for testing; 0 uses the
/// process-wide active_lane_width().
class BatchRunner {
public:
    explicit BatchRunner(const march::MarchTest& test,
                         const RunOptions& opts = {},
                         util::ThreadPool* pool = nullptr,
                         int lane_width = 0);

    /// Detection decided under EVERY ⇕ expansion (the `detects`
    /// semantics), element i answering for population[i]. One packed pass
    /// handles 63·W faults, so the cost is ceil(population/63W) ×
    /// expansions runs, sharded across the pool.
    [[nodiscard]] std::vector<bool> detects(
        std::span<const InjectedFault> population) const;

    /// True when every population member is detected; an atomic flag stops
    /// the remaining work items at the first escaping lane (the fail-fast
    /// covers_everywhere needs).
    [[nodiscard]] bool detects_all(
        std::span<const InjectedFault> population) const;

    /// Full guaranteed traces: element i holds the reads / (site, cell)
    /// observations of population[i] that fail in EVERY ⇕ expansion, in
    /// textual order — bit-identical to the scalar guaranteed_failing_reads
    /// / guaranteed_failing_observations pair. Sharded chunk-wise (each
    /// chunk writes a disjoint result range).
    [[nodiscard]] std::vector<RunTrace> run(
        std::span<const InjectedFault> population) const;

    [[nodiscard]] const march::MarchTest& test() const { return plan_.test; }
    [[nodiscard]] const RunOptions& options() const { return plan_.opts; }

    /// Block width this runner executes with (1, 4 or 8 plane words). An
    /// auto-detected width is an upper bound: per call the runner clamps
    /// to the narrowest block the population fills (results are
    /// bit-identical at every width); explicit ctor / MTG_LANE_WIDTH
    /// widths are exact.
    [[nodiscard]] int lane_width() const { return width_; }

private:
    detail::SimPlan plan_;
    int width_;
    bool adaptive_;

    [[nodiscard]] int width_for(std::size_t population) const;
    /// Resolved W=8 codegen flavour (zmm / ymm clone / generic) for a
    /// population of this size — see resolve_lane_isa.
    [[nodiscard]] LaneIsa isa_for(std::size_t population) const;
};

/// Every concrete placement of `kind` on an n-cell memory: n single-cell
/// instances, or the n·(n-1) ordered (aggressor, victim) pairs. This is the
/// population covers_everywhere sweeps. Degenerate memories yield the
/// mathematically empty population (n=1 has no ordered pair; n=0 nothing).
[[nodiscard]] std::vector<InjectedFault> full_population(fault::FaultKind kind,
                                                         int memory_size);

/// Concatenated full populations of every kind in `kinds`, in list order —
/// the all-kind population behind the generator's single sharded gate.
[[nodiscard]] std::vector<InjectedFault> full_population(
    const std::vector<fault::FaultKind>& kinds, int memory_size);

/// Canonical concrete placement of a fault instance on representative cells
/// of an n-cell memory (n >= 3): single-cell faults at n/3; two-cell faults
/// on (n/3, 2n/3) ordered by the instance's aggressor role. Shared by the
/// coverage matrix and the diagnosis dictionary so their populations stay
/// aligned.
[[nodiscard]] InjectedFault place_instance(const fault::FaultInstance& instance,
                                           int memory_size);

}  // namespace mtg::sim
