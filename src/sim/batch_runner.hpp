#pragma once

/// \file batch_runner.hpp
/// Evaluates one March test against a whole fault population per pass.
///
/// The runner packs up to 63 fault instances into the lanes of one
/// PackedSimMemory (lane 0 stays fault-free as the reference), executes the
/// test once per ⇕ expansion, and intersects the per-lane failing-read masks
/// across expansions — exactly the guaranteed-detection semantics of the
/// scalar march_runner, but one memory pass per 63 faults instead of one
/// pass per fault.

#include <vector>

#include "march/march_test.hpp"
#include "sim/march_runner.hpp"
#include "sim/packed_memory.hpp"

namespace mtg::sim {

/// Reusable batched evaluator for one March test. Precomputes the ⇕
/// expansion set and the read-site table once, then serves any number of
/// populations.
class BatchRunner {
public:
    explicit BatchRunner(const march::MarchTest& test,
                         const RunOptions& opts = {});

    /// Detection decided under EVERY ⇕ expansion (the `detects` semantics),
    /// element i answering for population[i]. One packed pass handles 63
    /// faults, so the cost is ceil(population/63) × expansions runs.
    [[nodiscard]] std::vector<bool> detects(
        const std::vector<InjectedFault>& population) const;

    /// True when every population member is detected; stops at the first
    /// chunk containing an escape (the fail-fast covers_everywhere needs).
    [[nodiscard]] bool detects_all(
        const std::vector<InjectedFault>& population) const;

    /// Full guaranteed traces: element i holds the reads / (site, cell)
    /// observations of population[i] that fail in EVERY ⇕ expansion, in
    /// textual order — bit-identical to the scalar guaranteed_failing_reads
    /// / guaranteed_failing_observations pair.
    [[nodiscard]] std::vector<RunTrace> run(
        const std::vector<InjectedFault>& population) const;

    [[nodiscard]] const march::MarchTest& test() const { return test_; }
    [[nodiscard]] const RunOptions& options() const { return opts_; }

private:
    march::MarchTest test_;
    RunOptions opts_;
    std::vector<unsigned> expansions_;
    std::vector<ReadSite> sites_;
    std::vector<std::vector<int>> site_id_;  ///< (element, op) -> flat site

    /// Per-site × per-cell failing-lane masks of one population chunk,
    /// already intersected across every ⇕ expansion.
    struct ChunkResult {
        LaneMask detected{0};
        std::vector<LaneMask> site_fail;         ///< [site]
        std::vector<LaneMask> observation_fail;  ///< [site * n + cell]
    };
    [[nodiscard]] ChunkResult run_chunk(const InjectedFault* faults, int count,
                                        bool want_traces) const;
};

/// Every concrete placement of `kind` on an n-cell memory: n single-cell
/// instances, or the n·(n-1) ordered (aggressor, victim) pairs. This is the
/// population covers_everywhere sweeps.
[[nodiscard]] std::vector<InjectedFault> full_population(fault::FaultKind kind,
                                                         int memory_size);

}  // namespace mtg::sim
