#include "sim/two_cell_sim.hpp"

#include "util/contracts.hpp"

namespace mtg::sim {

using fsm::AbstractOp;
using fsm::AbstractOpKind;
using fsm::Input;
using fsm::MemoryFsm;
using fsm::PairState;

namespace {

/// Converts an abstract op to the FSM input symbol.
Input op_input(const AbstractOp& op) {
    switch (op.kind) {
        case AbstractOpKind::Read: return fsm::read_input(op.cell);
        case AbstractOpKind::Write: return fsm::write_input(op.cell, op.value);
        case AbstractOpKind::Wait: return Input::T;
    }
    MTG_ASSERT(false && "unreachable");
    return Input::T;
}

/// Runs the word from one concrete power-up state; true when a verify-read
/// mismatches.
bool run_from(const std::vector<AbstractOp>& ops, const MemoryFsm& machine,
              PairState start, bool* read_of_unknown) {
    PairState state = start;
    bool detected = false;
    for (const AbstractOp& op : ops) {
        const Input in = op_input(op);
        if (op.is_read()) {
            const Trit out = machine.output(state, in);
            if (!is_known(out)) {
                if (read_of_unknown) *read_of_unknown = true;
            } else if (trit_bit(out) != op.value) {
                detected = true;
            }
        }
        state = machine.next(state, in);
    }
    return detected;
}

}  // namespace

bool gts_detects(const std::vector<AbstractOp>& ops, const MemoryFsm& faulty) {
    // Guaranteed detection: mismatch under every power-up completion.
    for (const PairState& start : fsm::all_known_states()) {
        if (!run_from(ops, faulty, start, nullptr)) return false;
    }
    return true;
}

bool gts_detects(const std::vector<AbstractOp>& ops,
                 const fault::FaultInstance& instance) {
    return gts_detects(ops, fault::faulty_machine(instance));
}

bool gts_well_formed(const std::vector<AbstractOp>& ops) {
    const MemoryFsm good = MemoryFsm::good();
    for (const PairState& start : fsm::all_known_states()) {
        bool read_unknown = false;
        const bool mismatch = run_from(ops, good, start, &read_unknown);
        if (mismatch || read_unknown) return false;
    }
    return true;
}

}  // namespace mtg::sim
