#pragma once

/// \file packed_memory.hpp
/// Bit-parallel counterpart of SimMemory: 64·W independent fault instances
/// are simulated at once, one lane per bit of a LaneBlock plane pair per
/// cell (W plane words per block; see lane_block.hpp).
///
/// Each cell is represented by two lane blocks: `value` (lane l = stored
/// bit of lane l) and `known` (lane l = lane l holds a definite 0/1 rather
/// than X). Every memory operation is a handful of bitwise operations over
/// those blocks, so one pass over a March test evaluates 63·W faults. By
/// convention bit 0 of every plane word is left fault-free as the
/// reference, which keeps each word bit-identical to the scalar W=1 path.
///
/// Per-fault bookkeeping (coupling, static-coupling and decoder-map
/// entries) is stored word-sparse: a fault occupies one lane in ONE plane
/// word, so its entry carries (word index, 64-bit mask) and is applied at
/// scalar cost regardless of the block width — only the aggregate
/// single-cell masks and the plane updates widen with W.
///
/// Restriction: at most ONE injected fault per lane. The scalar SimMemory
/// composes multiple faults in injection order, which has no bitwise
/// equivalent; population evaluation (the batch use case) never needs more
/// than one fault per lane. SimMemory remains the multi-fault oracle, and
/// tests/packed_sim_test.cpp proves lane-for-lane equivalence against it.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/lane_block.hpp"
#include "sim/memory.hpp"
#include "util/trit.hpp"

namespace mtg::sim {

/// n-cell RAM simulating up to 64·W fault instances in parallel. Cells
/// start uninitialised (X) in every lane. `Block` is LaneMask (scalar) or
/// a LaneBlock<W>.
template <typename Block>
class PackedSimMemoryT {
public:
    explicit PackedSimMemoryT(int cell_count)
        : value_(static_cast<std::size_t>(cell_count), block_zero<Block>()),
          known_(static_cast<std::size_t>(cell_count), block_zero<Block>()),
          single_(static_cast<std::size_t>(cell_count)),
          coupling_(static_cast<std::size_t>(cell_count)),
          afmap_(static_cast<std::size_t>(cell_count)) {
        MTG_EXPECTS(cell_count > 0);
    }

    [[nodiscard]] int size() const { return static_cast<int>(value_.size()); }

    /// Re-arms the memory for a fresh pass: every lane back to X, every
    /// fault forgotten — but every allocation kept at its high-water
    /// capacity (the inner coupling/static/map vectors only clear()).
    /// Dirty-index lists keep the cost at O(cells touched by faults), so
    /// a 63·W-fault chunk pass pays no per-pass malloc traffic (ROADMAP
    /// SIMD follow-on (a)); the batch kernels call this on a thread-local
    /// scratch memory between passes.
    void reset(int cell_count) {
        MTG_EXPECTS(cell_count > 0);
        for (int c : single_dirty_)
            single_[static_cast<std::size_t>(c)] = SingleCellMasks{};
        single_dirty_.clear();
        for (int c : coupling_dirty_)
            coupling_[static_cast<std::size_t>(c)].clear();
        coupling_dirty_.clear();
        for (int c : afmap_dirty_)
            afmap_[static_cast<std::size_t>(c)].clear();
        afmap_dirty_.clear();
        static_.clear();
        occupied_ = block_zero<Block>();
        const auto n = static_cast<std::size_t>(cell_count);
        if (n != value_.size()) {
            value_.resize(n);
            known_.resize(n);
            single_.resize(n);
            coupling_.resize(n);
            afmap_.resize(n);
        }
        std::fill(value_.begin(), value_.end(), block_zero<Block>());
        std::fill(known_.begin(), known_.end(), block_zero<Block>());
    }

    /// Injects `fault` into every lane of `lanes`. Lanes must not already
    /// hold a fault (see the one-fault-per-lane restriction above).
    void inject(const InjectedFault& fault, Block lanes) {
        check_addr(fault.cell_a);
        if (fault.cell_b >= 0) check_addr(fault.cell_b);
        MTG_EXPECTS(block_none(occupied_ & lanes));  // one fault per lane
        occupied_ |= lanes;

        if (!fault::is_two_cell(fault.kind))
            single_dirty_.push_back(fault.cell_a);
        auto& s = single_[static_cast<std::size_t>(fault.cell_a)];
        switch (fault.kind) {
            case fault::FaultKind::Saf0: s.saf0 |= lanes; return;
            case fault::FaultKind::Saf1: s.saf1 |= lanes; return;
            case fault::FaultKind::TfUp: s.tf_up |= lanes; return;
            case fault::FaultKind::TfDown: s.tf_down |= lanes; return;
            case fault::FaultKind::Wdf0: s.wdf0 |= lanes; return;
            case fault::FaultKind::Wdf1: s.wdf1 |= lanes; return;
            case fault::FaultKind::Rdf0: s.rdf0 |= lanes; return;
            case fault::FaultKind::Rdf1: s.rdf1 |= lanes; return;
            case fault::FaultKind::Drdf0: s.drdf0 |= lanes; return;
            case fault::FaultKind::Drdf1: s.drdf1 |= lanes; return;
            case fault::FaultKind::Irf0: s.irf0 |= lanes; return;
            case fault::FaultKind::Irf1: s.irf1 |= lanes; return;
            case fault::FaultKind::Drf0: s.drf0 |= lanes; return;
            case fault::FaultKind::Drf1: s.drf1 |= lanes; return;
            case fault::FaultKind::CfinUp:
            case fault::FaultKind::CfinDown:
            case fault::FaultKind::CfidUp0:
            case fault::FaultKind::CfidUp1:
            case fault::FaultKind::CfidDown0:
            case fault::FaultKind::CfidDown1:
            case fault::FaultKind::Af:
                coupling_dirty_.push_back(fault.cell_a);
                for_each_block_word(lanes, [&](int w, LaneMask m) {
                    coupling_[static_cast<std::size_t>(fault.cell_a)]
                        .push_back({fault.kind, fault.cell_b, w, m});
                });
                return;
            case fault::FaultKind::CfstS0F0:
                push_static(fault, false, false, lanes);
                return;
            case fault::FaultKind::CfstS0F1:
                push_static(fault, false, true, lanes);
                return;
            case fault::FaultKind::CfstS1F0:
                push_static(fault, true, false, lanes);
                return;
            case fault::FaultKind::CfstS1F1:
                push_static(fault, true, true, lanes);
                return;
            case fault::FaultKind::AfMap:
                afmap_dirty_.push_back(fault.cell_a);
                for_each_block_word(lanes, [&](int w, LaneMask m) {
                    afmap_[static_cast<std::size_t>(fault.cell_a)].push_back(
                        {fault.cell_b, w, m});
                });
                return;
        }
        MTG_ASSERT(false && "unhandled fault kind");
    }

    /// Per-lane outcome of a read: lane l of `value` is the value seen by
    /// lane l, valid only where lane l of `known` is set (clear = X).
    struct ReadResult {
        Block value{};
        Block known{};
    };

    /// Write value d (0/1) to `addr` in every lane, applying fault effects.
    void write(int addr, int d) {
        check_addr(addr);
        const auto a = static_cast<std::size_t>(addr);
        const Block dmask = block_fill<Block>(d != 0);

        // Decoder-map lanes: the access is redirected to the victim cell.
        Block redirected = block_zero<Block>();
        const LaneMask dword = d ? kAllLanes : LaneMask{0};
        for (const MapEntry& m : afmap_[a]) {
            const auto v = static_cast<std::size_t>(m.victim);
            LaneMask& vv = block_word_ref(value_[v], m.word);
            vv = (vv & ~m.lanes) | (dword & m.lanes);
            block_word_ref(known_[v], m.word) |= m.lanes;
            block_word_ref(redirected, m.word) |= m.lanes;
        }
        const Block active = ~redirected;

        const Block old_v = value_[a];
        const Block old_k = known_[a];
        const Block old0 = old_k & ~old_v;  // lanes with a known stored 0
        const Block old1 = old_k & old_v;   // lanes with a known stored 1

        // Effective written value per lane. The single-cell masks are
        // disjoint lane-wise (one fault per lane), so sequential
        // application is exact.
        const SingleCellMasks& s = single_[a];
        Block eff = dmask;
        eff = (eff & ~s.saf0) | s.saf1;
        if (d == 1) {
            eff &= ~(s.tf_up & old0);  // 0 -> 1 transition fails
            eff &= ~(s.wdf1 & old1);   // w1 over a 1 flips the cell to 0
        } else {
            eff |= s.tf_down & old1;  // 1 -> 0 transition fails
            eff |= s.wdf0 & old0;     // w0 over a 0 flips the cell to 1
        }

        value_[a] = (old_v & ~active) | (eff & active);
        known_[a] |= active;

        // Coupling sensitised by the stored-value transition of this
        // aggressor. Entries are word-sparse, so each fault's effect costs
        // one word regardless of the block width.
        const Block rising = active & old0 & eff;
        const Block falling = active & old1 & ~eff;
        for (const CouplingEntry& c : coupling_[a]) {
            const auto v = static_cast<std::size_t>(c.victim);
            const int bw = c.word;
            LaneMask t = 0;
            switch (c.kind) {
                case fault::FaultKind::CfinUp:
                    t = c.lanes & block_word(rising, bw);
                    block_word_ref(value_[v], bw) ^=
                        t & block_word(known_[v], bw);  // X victims stay X
                    continue;
                case fault::FaultKind::CfinDown:
                    t = c.lanes & block_word(falling, bw);
                    block_word_ref(value_[v], bw) ^=
                        t & block_word(known_[v], bw);
                    continue;
                case fault::FaultKind::CfidUp0:
                case fault::FaultKind::CfidUp1:
                    t = c.lanes & block_word(rising, bw);
                    break;
                case fault::FaultKind::CfidDown0:
                case fault::FaultKind::CfidDown1:
                    t = c.lanes & block_word(falling, bw);
                    break;
                case fault::FaultKind::Af:
                    t = c.lanes & block_word(active, bw);
                    break;
                default:
                    MTG_ASSERT(false && "not a coupling kind");
                    break;
            }
            if (!t) continue;
            switch (c.kind) {
                case fault::FaultKind::CfidUp0:
                case fault::FaultKind::CfidDown0:
                    block_word_ref(value_[v], bw) &= ~t;
                    break;
                case fault::FaultKind::CfidUp1:
                case fault::FaultKind::CfidDown1:
                    block_word_ref(value_[v], bw) |= t;
                    break;
                case fault::FaultKind::Af: {
                    // Shorted decoder: the write lands on the victim too.
                    LaneMask& vv = block_word_ref(value_[v], bw);
                    vv = (vv & ~t) | (block_word(eff, bw) & t);
                    break;
                }
                default:
                    break;
            }
            block_word_ref(known_[v], bw) |= t;
        }

        enforce_static_coupling();
    }

    /// Read `addr` in every lane, applying fault effects (read disturbs).
    [[nodiscard]] ReadResult read(int addr) {
        check_addr(addr);
        const auto a = static_cast<std::size_t>(addr);

        // Decoder-map lanes observe the victim's cell instead.
        ReadResult out;
        Block redirected = block_zero<Block>();
        for (const MapEntry& m : afmap_[a]) {
            const auto v = static_cast<std::size_t>(m.victim);
            block_word_ref(out.value, m.word) |=
                block_word(value_[v], m.word) & m.lanes;
            block_word_ref(out.known, m.word) |=
                block_word(known_[v], m.word) & m.lanes;
            block_word_ref(redirected, m.word) |= m.lanes;
        }
        const Block active = ~redirected;

        const Block cell_v = value_[a];
        const Block cell_k = known_[a];
        const Block is0 = cell_k & ~cell_v;
        const Block is1 = cell_k & cell_v;
        const SingleCellMasks& s = single_[a];

        Block seen_v = cell_v;
        Block seen_k = cell_k;
        // Stuck-at cells always read back the stuck value, even before any
        // write has initialised them.
        seen_v = (seen_v & ~s.saf0) | s.saf1;
        seen_k |= s.saf0 | s.saf1;

        Block t;
        t = s.rdf0 & is0;  // flips the cell and returns the wrong value
        value_[a] |= t;
        seen_v |= t;
        t = s.rdf1 & is1;
        value_[a] = value_[a] & ~t;
        seen_v = seen_v & ~t;
        t = s.drdf0 & is0;  // deceptive: flips the cell, returns old value
        value_[a] |= t;
        t = s.drdf1 & is1;
        value_[a] = value_[a] & ~t;
        seen_v |= s.irf0 & is0;  // wrong value, no flip
        seen_v = seen_v & ~(s.irf1 & is1);

        out.value |= seen_v & active;
        out.known |= seen_k & active;
        out.value &= out.known;  // normalise: X lanes report 0

        enforce_static_coupling();
        return out;
    }

    /// Elapse the data-retention period in every lane.
    void wait() {
        for (std::size_t c = 0; c < value_.size(); ++c) {
            const SingleCellMasks& s = single_[c];
            if (block_none(s.drf0 | s.drf1)) continue;
            const Block is0 = known_[c] & ~value_[c];
            const Block is1 = known_[c] & value_[c];
            value_[c] = (value_[c] & ~(s.drf0 & is1)) | (s.drf1 & is0);
        }
        enforce_static_coupling();
    }

    /// Raw cell value of one lane without triggering read faults (tests).
    [[nodiscard]] Trit peek(int addr, int lane) const {
        check_addr(addr);
        MTG_EXPECTS(lane >= 0 && lane < block_lane_count<Block>);
        if (!block_test(known_[static_cast<std::size_t>(addr)], lane))
            return Trit::X;
        return block_test(value_[static_cast<std::size_t>(addr)], lane)
                   ? Trit::One
                   : Trit::Zero;
    }

    /// Directly sets a cell in the given lanes, bypassing fault effects.
    void poke(int addr, Block lanes, Trit v) {
        check_addr(addr);
        const auto a = static_cast<std::size_t>(addr);
        if (v == Trit::X) {
            known_[a] &= ~lanes;
            value_[a] &= ~lanes;
        } else {
            known_[a] |= lanes;
            value_[a] = v == Trit::One ? (value_[a] | lanes)
                                       : (value_[a] & ~lanes);
        }
        enforce_static_coupling();
    }

private:
    /// Per-cell lane blocks of the single-cell fault kinds (aggregated
    /// across every fault injected at the cell, so these stay dense).
    struct SingleCellMasks {
        Block saf0{}, saf1{};
        Block tf_up{}, tf_down{};
        Block wdf0{}, wdf1{};
        Block rdf0{}, rdf1{};
        Block drdf0{}, drdf1{};
        Block irf0{}, irf1{};
        Block drf0{}, drf1{};
    };
    /// Transition/Af coupling bound to an aggressor cell. Word-sparse: the
    /// fault's lanes live in plane word `word` of the block.
    struct CouplingEntry {
        fault::FaultKind kind;
        int victim;
        int word;
        LaneMask lanes;
    };
    /// State coupling ⟨sv,fv⟩ — enforced after every state change.
    struct StaticEntry {
        int aggressor;
        int victim;
        bool sense;  ///< aggressor value that sensitises
        bool force;  ///< value forced onto the victim
        int word;
        LaneMask lanes;
    };
    /// Decoder-map fault: accesses to `aggressor` land on `victim`.
    struct MapEntry {
        int victim;
        int word;
        LaneMask lanes;
    };

    std::vector<Block> value_;
    std::vector<Block> known_;
    std::vector<SingleCellMasks> single_;
    std::vector<std::vector<CouplingEntry>> coupling_;  ///< by aggressor
    std::vector<std::vector<MapEntry>> afmap_;          ///< by aggressor
    std::vector<StaticEntry> static_;
    Block occupied_{};  ///< lanes already holding a fault
    // Cells whose single/coupling/afmap entries a reset() must undo
    // (duplicates are fine — clearing is idempotent).
    std::vector<int> single_dirty_;
    std::vector<int> coupling_dirty_;
    std::vector<int> afmap_dirty_;

    void check_addr(int addr) const {
        MTG_EXPECTS(addr >= 0 && addr < size());
    }

    void push_static(const InjectedFault& fault, bool sense, bool force,
                     const Block& lanes) {
        for_each_block_word(lanes, [&](int w, LaneMask m) {
            static_.push_back(
                {fault.cell_a, fault.cell_b, sense, force, w, m});
        });
    }

    void enforce_static_coupling() {
        for (const StaticEntry& s : static_) {
            const LaneMask av =
                block_word(value_[static_cast<std::size_t>(s.aggressor)],
                           s.word);
            const LaneMask ak =
                block_word(known_[static_cast<std::size_t>(s.aggressor)],
                           s.word);
            const LaneMask match = s.lanes & ak & (s.sense ? av : ~av);
            if (!match) continue;
            LaneMask& vv = block_word_ref(
                value_[static_cast<std::size_t>(s.victim)], s.word);
            vv = s.force ? (vv | match) : (vv & ~match);
            block_word_ref(known_[static_cast<std::size_t>(s.victim)],
                           s.word) |= match;
        }
    }
};

/// The scalar 64-lane memory of PR 1 — template instantiated at W=1.
/// (Implicit instantiation everywhere: the definitions must stay visible
/// and inlinable so the `target`-attributed kernel wrappers can flatten
/// them with vector codegen.)
using PackedSimMemory = PackedSimMemoryT<LaneMask>;

}  // namespace mtg::sim
