#pragma once

/// \file packed_memory.hpp
/// Bit-parallel counterpart of SimMemory: 64 independent fault instances are
/// simulated at once, one lane per bit of a uint64_t plane pair per cell.
///
/// Each cell is represented by two lane masks: `value` (bit l = stored bit of
/// lane l) and `known` (bit l = lane l holds a definite 0/1 rather than X).
/// Every memory operation is a handful of bitwise operations over those
/// planes, so one pass over a March test evaluates an entire fault
/// population. By convention lane 0 is left fault-free as the reference.
///
/// Restriction: at most ONE injected fault per lane. The scalar SimMemory
/// composes multiple faults in injection order, which has no bitwise
/// equivalent; population evaluation (the batch use case) never needs more
/// than one fault per lane. SimMemory remains the multi-fault oracle, and
/// tests/packed_sim_test.cpp proves lane-for-lane equivalence against it.

#include <cstdint>
#include <vector>

#include "sim/memory.hpp"
#include "util/trit.hpp"

namespace mtg::sim {

/// One bit per simulation lane.
using LaneMask = std::uint64_t;

/// Number of lanes packed into one plane word.
inline constexpr int kLaneCount = 64;

/// All-ones lane mask.
inline constexpr LaneMask kAllLanes = ~LaneMask{0};

/// Population lanes per batched pass: 63 fault lanes + the fault-free
/// reference lane 0. Shared by the bit- and word-oriented batch runners so
/// the packing convention cannot diverge.
inline constexpr int kChunkLanes = kLaneCount - 1;

/// Mask of the population lanes 1..count of one chunk.
constexpr LaneMask used_lanes(int count) {
    return (count == kChunkLanes ? kAllLanes
                                 : (LaneMask{1} << (count + 1)) - 1) &
           ~LaneMask{1};
}

/// Lane count of chunk `c` of a population of `population` faults.
constexpr int chunk_count(std::size_t population, std::size_t c) {
    const std::size_t remaining = population - c * kChunkLanes;
    return remaining < static_cast<std::size_t>(kChunkLanes)
               ? static_cast<int>(remaining)
               : kChunkLanes;
}

/// n-cell RAM simulating up to 64 fault instances in parallel. Cells start
/// uninitialised (X) in every lane.
class PackedSimMemory {
public:
    explicit PackedSimMemory(int cell_count);

    [[nodiscard]] int size() const { return static_cast<int>(value_.size()); }

    /// Injects `fault` into every lane of `lanes`. Lanes must not already
    /// hold a fault (see the one-fault-per-lane restriction above).
    void inject(const InjectedFault& fault, LaneMask lanes);

    /// Per-lane outcome of a read: bit l of `value` is the value seen by
    /// lane l, valid only where bit l of `known` is set (clear = X).
    struct ReadResult {
        LaneMask value{0};
        LaneMask known{0};
    };

    /// Write value d (0/1) to `addr` in every lane, applying fault effects.
    void write(int addr, int d);

    /// Read `addr` in every lane, applying fault effects (read disturbs).
    [[nodiscard]] ReadResult read(int addr);

    /// Elapse the data-retention period in every lane.
    void wait();

    /// Raw cell value of one lane without triggering read faults (tests).
    [[nodiscard]] Trit peek(int addr, int lane) const;

    /// Directly sets a cell in the given lanes, bypassing fault effects.
    void poke(int addr, LaneMask lanes, Trit v);

private:
    /// Per-cell lane masks of the single-cell fault kinds, indexed by the
    /// faulty cell. A zero mask means "no lane has this fault here".
    struct SingleCellMasks {
        LaneMask saf0{0}, saf1{0};
        LaneMask tf_up{0}, tf_down{0};
        LaneMask wdf0{0}, wdf1{0};
        LaneMask rdf0{0}, rdf1{0};
        LaneMask drdf0{0}, drdf1{0};
        LaneMask irf0{0}, irf1{0};
        LaneMask drf0{0}, drf1{0};
    };
    /// Transition/Af coupling bound to an aggressor cell.
    struct CouplingEntry {
        fault::FaultKind kind;
        int victim;
        LaneMask lanes;
    };
    /// State coupling ⟨sv,fv⟩ — enforced after every state change.
    struct StaticEntry {
        int aggressor;
        int victim;
        bool sense;  ///< aggressor value that sensitises
        bool force;  ///< value forced onto the victim
        LaneMask lanes;
    };
    /// Decoder-map fault: accesses to `aggressor` land on `victim`.
    struct MapEntry {
        int victim;
        LaneMask lanes;
    };

    std::vector<LaneMask> value_;
    std::vector<LaneMask> known_;
    std::vector<SingleCellMasks> single_;
    std::vector<std::vector<CouplingEntry>> coupling_;  ///< by aggressor cell
    std::vector<std::vector<MapEntry>> afmap_;          ///< by aggressor cell
    std::vector<StaticEntry> static_;
    LaneMask occupied_{0};  ///< lanes already holding a fault

    void check_addr(int addr) const;
    void enforce_static_coupling();
};

}  // namespace mtg::sim
