#pragma once

/// \file march_runner.hpp
/// Executes March tests against the fault simulator and decides detection.
///
/// ⇕ (either-order) elements are expanded: the test only *guarantees*
/// detection if every combination of order choices detects the fault, so
/// the runner enumerates all 2^k combinations (k = number of ⇕ elements,
/// capped; beyond the cap the two uniform choices are used).
///
/// The population-level entry points below (covers_everywhere,
/// first_uncovered, covers_all, guaranteed_*) are thin compatibility
/// wrappers over the process-wide engine::Engine session — new code
/// should issue engine Queries directly (see engine/engine.hpp); the
/// per-fault run_once/detects pair remains the scalar oracle.

#include <optional>
#include <string>
#include <vector>

#include "march/march_test.hpp"
#include "sim/memory.hpp"

namespace mtg::sim {

/// Static identity of a read operation inside a March test.
struct ReadSite {
    int element{0};  ///< index of the March element
    int op{0};       ///< index of the read op within the element

    friend bool operator==(const ReadSite&, const ReadSite&) = default;
};

/// All read sites of a test, in textual order.
[[nodiscard]] std::vector<ReadSite> read_sites(const march::MarchTest& test);

/// Flat site id of every (element, op) of the test — the index into
/// read_sites(test), or -1 for writes/waits. The lookup table both batch
/// kernels (bit and word) use to attribute mismatches while executing.
[[nodiscard]] std::vector<std::vector<int>> read_site_ids(
    const march::MarchTest& test);

/// Options for the runner.
struct RunOptions {
    int memory_size{8};        ///< number of cells of the simulated memory
    int max_any_expansion{6};  ///< expand up to 2^k order choices for ⇕
};

/// One observed mismatch: which read of the test failed, at which address.
/// The (site, cell) pair is the unit of output tracing used for diagnosis.
struct Observation {
    ReadSite site;
    int cell{0};

    friend bool operator==(const Observation&, const Observation&) = default;
};

/// Result of one full execution under fixed order choices.
struct RunTrace {
    bool detected{false};
    std::vector<ReadSite> failing_reads;  ///< sites where a mismatch occurred
    std::vector<Observation> failing_observations;  ///< with addresses
};

/// Runs the test once on a fresh memory with the given fault(s), with every
/// ⇕ element resolved by `any_choices` (bit k = element-k-of-the-⇕-elements
/// runs descending). Returns which reads failed.
[[nodiscard]] RunTrace run_once(const march::MarchTest& test,
                                const std::vector<InjectedFault>& faults,
                                unsigned any_choices, const RunOptions& opts = {});

/// True when the test detects the fault under EVERY ⇕ expansion.
[[nodiscard]] bool detects(const march::MarchTest& test,
                           const InjectedFault& fault,
                           const RunOptions& opts = {});

/// Places the fault at every cell (single-cell) or every ordered cell pair
/// (two-cell) of the memory and requires detection everywhere. This is the
/// paper-§6 notion of a March test "covering" a fault model.
[[nodiscard]] bool covers_everywhere(const march::MarchTest& test,
                                     fault::FaultKind kind,
                                     const RunOptions& opts = {});

/// Checks every primitive of a fault list. Returns the first kind NOT
/// covered, or nullopt when the list is fully covered.
[[nodiscard]] std::optional<fault::FaultKind> first_uncovered(
    const march::MarchTest& test, const std::vector<fault::FaultKind>& kinds,
    const RunOptions& opts = {});

/// Single batched verdict over the whole list: one population spanning
/// every kind's full placement set, evaluated by one sharded fail-fast
/// BatchRunner sweep. Equivalent to !first_uncovered(...) but pays one
/// runner setup and keeps every worker busy across kind boundaries — the
/// generator's validation gate.
[[nodiscard]] bool covers_all(const march::MarchTest& test,
                              const std::vector<fault::FaultKind>& kinds,
                              const RunOptions& opts = {});

/// Sanity property: on a fault-free memory every read must observe a known,
/// matching value in every ⇕ expansion (no read of uninitialised cells, no
/// wrong expected values). All library and generated tests must satisfy it.
[[nodiscard]] bool is_well_formed(const march::MarchTest& test,
                                  const RunOptions& opts = {});

/// The concrete ⇕ resolutions evaluated by detects() and the batched
/// runner: all 2^k choices when the test has k <= opts.max_any_expansion ⇕
/// elements, otherwise only the two uniform (all-ascending,
/// all-descending) sweeps. Bit j of a choice resolves the j-th ⇕ element
/// (set = descending).
[[nodiscard]] std::vector<unsigned> expansion_choices(
    const march::MarchTest& test, const RunOptions& opts = {});

/// Read sites that mismatch for `fault` in EVERY ⇕ expansion — the sites
/// with *guaranteed* observation, used as coverage-matrix entries.
/// Canonical order: textual (element, op) order of the test.
[[nodiscard]] std::vector<ReadSite> guaranteed_failing_reads(
    const march::MarchTest& test, const InjectedFault& fault,
    const RunOptions& opts = {});

/// (site, address) observations that mismatch in EVERY ⇕ expansion — the
/// address-aware output trace used by the diagnosis dictionary.
/// Canonical order: textual site order, then ascending cell address.
[[nodiscard]] std::vector<Observation> guaranteed_failing_observations(
    const march::MarchTest& test, const InjectedFault& fault,
    const RunOptions& opts = {});

}  // namespace mtg::sim
