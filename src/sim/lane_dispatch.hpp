#pragma once

/// \file lane_dispatch.hpp
/// Runtime selection of the packed kernels' lane-block width.
///
/// The width-generic kernels are instantiated for W ∈ {1, 4, 8} plane
/// words (64/256/512 lanes per block). All instantiations are plain C++
/// and safe to run on any host; the width choice is purely a performance
/// decision, made once per process:
///
///   1. `MTG_LANE_WIDTH` ∈ {1, 4, 8} forces a width (testing override);
///   2. otherwise CPUID picks the widest block the hardware retires as one
///      vector op: 8 on AVX-512F, 4 on AVX2, else 1.
///
/// SIMD *codegen* for the wide widths comes from `target`-attributed
/// wrappers in lane_kernels.cpp; those are only dispatched to when the
/// matching CPUID feature is present, so a forced W=8 on a non-AVX host
/// runs the generic-codegen instantiation instead of crashing.

#include <cstddef>

namespace mtg::sim {

/// True for the widths the kernels are instantiated for: 1, 4, 8.
[[nodiscard]] bool lane_width_supported(int width);

/// Parses an MTG_LANE_WIDTH-style override: returns 1, 4 or 8, or 0 when
/// the value is null/empty/garbage/unsupported. Exposed for tests.
[[nodiscard]] int parse_lane_width(const char* value);

/// Pure resolution rule behind active_lane_width(), exposed for tests:
/// a valid `override_value` wins; otherwise the widest width the reported
/// CPU features retire as one vector op.
[[nodiscard]] int resolve_lane_width(const char* override_value,
                                     bool has_avx2, bool has_avx512f);

/// Width every BatchRunner / WordBatchRunner constructed without an
/// explicit width uses. Resolved once from MTG_LANE_WIDTH and CPUID, then
/// cached for the process lifetime.
[[nodiscard]] int active_lane_width();

/// True when MTG_LANE_WIDTH forces a width. Forced widths are exact (the
/// differential tests and the scalar CI leg must exercise the width they
/// ask for); auto-detected widths are an upper bound the runners clamp
/// per population.
[[nodiscard]] bool lane_width_forced();

/// Widest profitable width ≤ `width` for a population of `population`
/// faults: a chunk only amortises its per-pass machinery over lanes that
/// exist, so populations spanning few 63-lane plane words run narrower
/// blocks (≤3 words → 1, ≤7 → 4, else 8). Results are bit-identical at
/// every width, so the clamp is invisible except in throughput.
[[nodiscard]] int clamp_lane_width(int width, std::size_t population);

/// Host CPU feature queries (false on non-x86 builds).
[[nodiscard]] bool cpu_has_avx2();
[[nodiscard]] bool cpu_has_avx512f();

/// Codegen flavour of the W=8 pass wrappers. The W=8 block is two
/// *semantically identical* SIMD lowerings: single zmm ops under
/// `target("avx512f")`, or ymm pairs under `target("avx2")` (GCC/Clang
/// split the 64-byte GNU vector type in half — the "256-bit clone";
/// `-mprefer-vector-width=256` only steers the auto-vectoriser, explicit
/// vector types need the narrower target to emit ymm). On AVX-512 hosts
/// whose cores downclock under sustained zmm load, the clone wins for
/// short bursts that never amortise the frequency-license ramp, so Auto
/// picks it for small work grids. Every flavour is bit-identical (same
/// template, different instruction selection).
enum class LaneIsa {
    Auto,     ///< heuristic: zmm for large work grids, ymm clone for small
    Avx512,   ///< force the zmm wrappers (when CPUID allows)
    Avx2,     ///< force the ymm-pair clone (when CPUID allows)
    Generic,  ///< force the baseline-codegen template instantiation
};

/// Parses an MTG_LANE_ISA-style override ("auto", "avx512", "avx2",
/// "generic", case-sensitive): Auto on null/empty/garbage.
[[nodiscard]] LaneIsa parse_lane_isa(const char* value);

/// Pure resolution rule behind the Auto heuristic, exposed for tests: the
/// ISA a W=8 dispatch should use for a job of `work_items` (chunk ×
/// expansion) pass executions given the reported CPU features. Forced
/// ISAs fall back down the feature ladder when CPUID lacks them (the
/// getters never hand out an unrunnable wrapper).
[[nodiscard]] LaneIsa resolve_lane_isa(LaneIsa requested,
                                       std::size_t work_items,
                                       bool has_avx2, bool has_avx512f);

/// Work-grid size below which Auto prefers the 256-bit clone on AVX-512
/// hosts. Exposed so tests and the resolve rule agree on the boundary.
inline constexpr std::size_t kZmmWorkItemThreshold = 64;

/// Process-wide requested ISA: MTG_LANE_ISA at first use, overridable at
/// runtime for the dispatch differential tests (set Generic/Avx2/Avx512
/// and re-run — results must be bit-identical).
[[nodiscard]] LaneIsa requested_lane_isa();
void set_requested_lane_isa(LaneIsa isa);

/// The ISA a W=8 dispatch should hand to sim_pass_w8/word_pass_w8 for a
/// job of `work_items` pass executions: resolve_lane_isa over the
/// process-wide request and the host CPUID features.
[[nodiscard]] LaneIsa active_lane_isa(std::size_t work_items);

/// Dense trace-grid fallback: when enabled, word_run_chunk materialises
/// the full dense (background × site × word × bit) observation grid of
/// PR 4 instead of the sparse runs. Test-only — kept compiled for one
/// release so the sparse-vs-dense differential can exercise both paths;
/// the dense grid is O(words) memory and cannot allocate at words=4096.
[[nodiscard]] bool dense_trace_grids();
void set_dense_trace_grids(bool enabled);

/// Per-pass scratch pooling: when enabled (the default) the packed pass
/// kernels reuse a thread-local PackedSimMemoryT / PackedWordMemoryT,
/// re-armed with reset(), so the plane vectors and the per-fault
/// coupling/static/map tables keep their capacity across passes instead
/// of being reallocated 63·W injects per chunk. Results are identical
/// either way; the toggle exists for the bench before/after head-to-head
/// and for tests of the fresh-allocation path.
[[nodiscard]] bool pass_scratch_enabled();
void set_pass_scratch_enabled(bool enabled);

}  // namespace mtg::sim
