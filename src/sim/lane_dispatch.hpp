#pragma once

/// \file lane_dispatch.hpp
/// Runtime selection of the packed kernels' lane-block width.
///
/// The width-generic kernels are instantiated for W ∈ {1, 4, 8} plane
/// words (64/256/512 lanes per block). All instantiations are plain C++
/// and safe to run on any host; the width choice is purely a performance
/// decision, made once per process:
///
///   1. `MTG_LANE_WIDTH` ∈ {1, 4, 8} forces a width (testing override);
///   2. otherwise CPUID picks the widest block the hardware retires as one
///      vector op: 8 on AVX-512F, 4 on AVX2, else 1.
///
/// SIMD *codegen* for the wide widths comes from `target`-attributed
/// wrappers in lane_kernels.cpp; those are only dispatched to when the
/// matching CPUID feature is present, so a forced W=8 on a non-AVX host
/// runs the generic-codegen instantiation instead of crashing.

#include <cstddef>

namespace mtg::sim {

/// True for the widths the kernels are instantiated for: 1, 4, 8.
[[nodiscard]] bool lane_width_supported(int width);

/// Parses an MTG_LANE_WIDTH-style override: returns 1, 4 or 8, or 0 when
/// the value is null/empty/garbage/unsupported. Exposed for tests.
[[nodiscard]] int parse_lane_width(const char* value);

/// Pure resolution rule behind active_lane_width(), exposed for tests:
/// a valid `override_value` wins; otherwise the widest width the reported
/// CPU features retire as one vector op.
[[nodiscard]] int resolve_lane_width(const char* override_value,
                                     bool has_avx2, bool has_avx512f);

/// Width every BatchRunner / WordBatchRunner constructed without an
/// explicit width uses. Resolved once from MTG_LANE_WIDTH and CPUID, then
/// cached for the process lifetime.
[[nodiscard]] int active_lane_width();

/// True when MTG_LANE_WIDTH forces a width. Forced widths are exact (the
/// differential tests and the scalar CI leg must exercise the width they
/// ask for); auto-detected widths are an upper bound the runners clamp
/// per population.
[[nodiscard]] bool lane_width_forced();

/// Widest profitable width ≤ `width` for a population of `population`
/// faults: a chunk only amortises its per-pass machinery over lanes that
/// exist, so populations spanning few 63-lane plane words run narrower
/// blocks (≤3 words → 1, ≤7 → 4, else 8). Results are bit-identical at
/// every width, so the clamp is invisible except in throughput.
[[nodiscard]] int clamp_lane_width(int width, std::size_t population);

/// Host CPU feature queries (false on non-x86 builds).
[[nodiscard]] bool cpu_has_avx2();
[[nodiscard]] bool cpu_has_avx512f();

/// Per-pass scratch pooling: when enabled (the default) the packed pass
/// kernels reuse a thread-local PackedSimMemoryT / PackedWordMemoryT,
/// re-armed with reset(), so the plane vectors and the per-fault
/// coupling/static/map tables keep their capacity across passes instead
/// of being reallocated 63·W injects per chunk. Results are identical
/// either way; the toggle exists for the bench before/after head-to-head
/// and for tests of the fresh-allocation path.
[[nodiscard]] bool pass_scratch_enabled();
void set_pass_scratch_enabled(bool enabled);

}  // namespace mtg::sim
