#include "sim/march_runner.hpp"

#include <algorithm>

#include "engine/engine.hpp"
#include "march/expansion.hpp"

namespace mtg::sim {

using march::AddressOrder;
using march::MarchOp;
using march::MarchTest;
using march::OpKind;

std::vector<ReadSite> read_sites(const MarchTest& test) {
    std::vector<ReadSite> sites;
    for (std::size_t e = 0; e < test.size(); ++e) {
        const auto& ops = test[e].ops;
        for (std::size_t o = 0; o < ops.size(); ++o)
            if (ops[o].kind == OpKind::Read)
                sites.push_back({static_cast<int>(e), static_cast<int>(o)});
    }
    return sites;
}

std::vector<std::vector<int>> read_site_ids(const MarchTest& test) {
    std::vector<std::vector<int>> ids(test.size());
    int next = 0;
    for (std::size_t e = 0; e < test.size(); ++e) {
        ids[e].assign(test[e].ops.size(), -1);
        for (std::size_t o = 0; o < test[e].ops.size(); ++o)
            if (test[e].ops[o].kind == OpKind::Read) ids[e][o] = next++;
    }
    return ids;
}

namespace {

/// Concrete visiting order for one element given the ⇕ choice bit.
bool runs_descending(AddressOrder order, bool any_desc) {
    if (order == AddressOrder::Descending) return true;
    if (order == AddressOrder::Ascending) return false;
    return any_desc;
}

}  // namespace

RunTrace run_once(const MarchTest& test, const std::vector<InjectedFault>& faults,
                  unsigned any_choices, const RunOptions& opts) {
    SimMemory memory(opts.memory_size);
    for (const auto& f : faults) memory.inject(f);

    RunTrace trace;
    int any_seen = 0;
    for (std::size_t e = 0; e < test.size(); ++e) {
        const auto& element = test[e];
        bool desc = false;
        if (element.order == AddressOrder::Any) {
            desc = runs_descending(element.order,
                                   ((any_choices >> any_seen) & 1u) != 0);
            ++any_seen;
        } else {
            desc = runs_descending(element.order, false);
        }

        const int n = memory.size();
        for (int step = 0; step < n; ++step) {
            const int cell = desc ? n - 1 - step : step;
            for (std::size_t o = 0; o < element.ops.size(); ++o) {
                const MarchOp& op = element.ops[o];
                switch (op.kind) {
                    case OpKind::Write:
                        memory.write(cell, op.value);
                        break;
                    case OpKind::Wait:
                        memory.wait();
                        break;
                    case OpKind::Read: {
                        const Trit got = memory.read(cell);
                        // An unknown value cannot be *guaranteed* to
                        // mismatch, so only definite mismatches detect.
                        if (is_known(got) && trit_bit(got) != op.value) {
                            trace.detected = true;
                            const ReadSite site{static_cast<int>(e),
                                                static_cast<int>(o)};
                            if (std::find(trace.failing_reads.begin(),
                                          trace.failing_reads.end(),
                                          site) == trace.failing_reads.end())
                                trace.failing_reads.push_back(site);
                            const Observation obs{site, cell};
                            if (std::find(trace.failing_observations.begin(),
                                          trace.failing_observations.end(),
                                          obs) ==
                                trace.failing_observations.end())
                                trace.failing_observations.push_back(obs);
                        }
                        break;
                    }
                }
            }
        }
    }
    return trace;
}

std::vector<unsigned> expansion_choices(const MarchTest& test,
                                        const RunOptions& opts) {
    return march::expansion_choices(test, opts.max_any_expansion);
}

bool detects(const MarchTest& test, const InjectedFault& fault,
             const RunOptions& opts) {
    for (unsigned choice : expansion_choices(test, opts)) {
        if (!run_once(test, {fault}, choice, opts).detected) return false;
    }
    return true;
}

bool covers_everywhere(const MarchTest& test, fault::FaultKind kind,
                       const RunOptions& opts) {
    return engine::Engine::global().covers_everywhere(test, kind, opts);
}

std::optional<fault::FaultKind> first_uncovered(
    const MarchTest& test, const std::vector<fault::FaultKind>& kinds,
    const RunOptions& opts) {
    return engine::Engine::global().first_uncovered(test, kinds, opts);
}

bool covers_all(const MarchTest& test,
                const std::vector<fault::FaultKind>& kinds,
                const RunOptions& opts) {
    return engine::Engine::global().covers_all(test, kinds, opts);
}

bool is_well_formed(const MarchTest& test, const RunOptions& opts) {
    for (unsigned choice : expansion_choices(test, opts)) {
        SimMemory memory(opts.memory_size);
        int any_seen = 0;
        for (const auto& element : test.elements()) {
            bool desc = false;
            if (element.order == AddressOrder::Any) {
                desc = ((choice >> any_seen) & 1u) != 0;
                ++any_seen;
            } else {
                desc = element.order == AddressOrder::Descending;
            }
            const int n = memory.size();
            for (int step = 0; step < n; ++step) {
                const int cell = desc ? n - 1 - step : step;
                for (const MarchOp& op : element.ops) {
                    switch (op.kind) {
                        case OpKind::Write: memory.write(cell, op.value); break;
                        case OpKind::Wait: memory.wait(); break;
                        case OpKind::Read: {
                            const Trit got = memory.read(cell);
                            if (!is_known(got) || trit_bit(got) != op.value)
                                return false;
                            break;
                        }
                    }
                }
            }
        }
    }
    return true;
}

std::vector<Observation> guaranteed_failing_observations(
    const MarchTest& test, const InjectedFault& fault,
    const RunOptions& opts) {
    const std::vector<InjectedFault> population{fault};
    return engine::Engine::global()
        .traces(test, population, opts)
        .front()
        .failing_observations;
}

std::vector<ReadSite> guaranteed_failing_reads(const MarchTest& test,
                                               const InjectedFault& fault,
                                               const RunOptions& opts) {
    const std::vector<InjectedFault> population{fault};
    return engine::Engine::global()
        .traces(test, population, opts)
        .front()
        .failing_reads;
}

}  // namespace mtg::sim
