#include "sim/march_runner.hpp"

#include <algorithm>

namespace mtg::sim {

using march::AddressOrder;
using march::MarchOp;
using march::MarchTest;
using march::OpKind;

std::vector<ReadSite> read_sites(const MarchTest& test) {
    std::vector<ReadSite> sites;
    for (std::size_t e = 0; e < test.size(); ++e) {
        const auto& ops = test[e].ops;
        for (std::size_t o = 0; o < ops.size(); ++o)
            if (ops[o].kind == OpKind::Read)
                sites.push_back({static_cast<int>(e), static_cast<int>(o)});
    }
    return sites;
}

namespace {

/// Number of ⇕ elements of a test.
int any_count(const MarchTest& test) {
    int k = 0;
    for (const auto& e : test.elements())
        if (e.order == AddressOrder::Any) ++k;
    return k;
}

/// Concrete visiting order for one element given the ⇕ choice bit.
bool runs_descending(AddressOrder order, bool any_desc) {
    if (order == AddressOrder::Descending) return true;
    if (order == AddressOrder::Ascending) return false;
    return any_desc;
}

}  // namespace

RunTrace run_once(const MarchTest& test, const std::vector<InjectedFault>& faults,
                  unsigned any_choices, const RunOptions& opts) {
    SimMemory memory(opts.memory_size);
    for (const auto& f : faults) memory.inject(f);

    RunTrace trace;
    int any_seen = 0;
    for (std::size_t e = 0; e < test.size(); ++e) {
        const auto& element = test[e];
        bool desc = false;
        if (element.order == AddressOrder::Any) {
            desc = runs_descending(element.order,
                                   ((any_choices >> any_seen) & 1u) != 0);
            ++any_seen;
        } else {
            desc = runs_descending(element.order, false);
        }

        const int n = memory.size();
        for (int step = 0; step < n; ++step) {
            const int cell = desc ? n - 1 - step : step;
            for (std::size_t o = 0; o < element.ops.size(); ++o) {
                const MarchOp& op = element.ops[o];
                switch (op.kind) {
                    case OpKind::Write:
                        memory.write(cell, op.value);
                        break;
                    case OpKind::Wait:
                        memory.wait();
                        break;
                    case OpKind::Read: {
                        const Trit got = memory.read(cell);
                        // An unknown value cannot be *guaranteed* to
                        // mismatch, so only definite mismatches detect.
                        if (is_known(got) && trit_bit(got) != op.value) {
                            trace.detected = true;
                            const ReadSite site{static_cast<int>(e),
                                                static_cast<int>(o)};
                            if (std::find(trace.failing_reads.begin(),
                                          trace.failing_reads.end(),
                                          site) == trace.failing_reads.end())
                                trace.failing_reads.push_back(site);
                            const Observation obs{site, cell};
                            if (std::find(trace.failing_observations.begin(),
                                          trace.failing_observations.end(),
                                          obs) ==
                                trace.failing_observations.end())
                                trace.failing_observations.push_back(obs);
                        }
                        break;
                    }
                }
            }
        }
    }
    return trace;
}

namespace {

/// Enumerates the ⇕ expansions to test: all 2^k when k <= cap, otherwise
/// the two uniform (all-ascending / all-descending) choices.
std::vector<unsigned> expansions(const MarchTest& test, const RunOptions& opts) {
    const int k = any_count(test);
    if (k <= opts.max_any_expansion) {
        std::vector<unsigned> all;
        for (unsigned c = 0; c < (1u << k); ++c) all.push_back(c);
        return all;
    }
    return {0u, ~0u};
}

}  // namespace

bool detects(const MarchTest& test, const InjectedFault& fault,
             const RunOptions& opts) {
    for (unsigned choice : expansions(test, opts)) {
        if (!run_once(test, {fault}, choice, opts).detected) return false;
    }
    return true;
}

bool covers_everywhere(const MarchTest& test, fault::FaultKind kind,
                       const RunOptions& opts) {
    const int n = opts.memory_size;
    if (fault::is_two_cell(kind)) {
        for (int a = 0; a < n; ++a) {
            for (int v = 0; v < n; ++v) {
                if (a == v) continue;
                if (!detects(test, InjectedFault::coupling(kind, a, v), opts))
                    return false;
            }
        }
        return true;
    }
    for (int c = 0; c < n; ++c) {
        if (!detects(test, InjectedFault::single(kind, c), opts)) return false;
    }
    return true;
}

std::optional<fault::FaultKind> first_uncovered(
    const MarchTest& test, const std::vector<fault::FaultKind>& kinds,
    const RunOptions& opts) {
    for (fault::FaultKind k : kinds)
        if (!covers_everywhere(test, k, opts)) return k;
    return std::nullopt;
}

bool is_well_formed(const MarchTest& test, const RunOptions& opts) {
    for (unsigned choice : expansions(test, opts)) {
        SimMemory memory(opts.memory_size);
        int any_seen = 0;
        for (const auto& element : test.elements()) {
            bool desc = false;
            if (element.order == AddressOrder::Any) {
                desc = ((choice >> any_seen) & 1u) != 0;
                ++any_seen;
            } else {
                desc = element.order == AddressOrder::Descending;
            }
            const int n = memory.size();
            for (int step = 0; step < n; ++step) {
                const int cell = desc ? n - 1 - step : step;
                for (const MarchOp& op : element.ops) {
                    switch (op.kind) {
                        case OpKind::Write: memory.write(cell, op.value); break;
                        case OpKind::Wait: memory.wait(); break;
                        case OpKind::Read: {
                            const Trit got = memory.read(cell);
                            if (!is_known(got) || trit_bit(got) != op.value)
                                return false;
                            break;
                        }
                    }
                }
            }
        }
    }
    return true;
}

std::vector<Observation> guaranteed_failing_observations(
    const MarchTest& test, const InjectedFault& fault,
    const RunOptions& opts) {
    std::vector<Observation> guaranteed;
    bool first = true;
    for (unsigned choice : expansions(test, opts)) {
        const RunTrace trace = run_once(test, {fault}, choice, opts);
        if (first) {
            guaranteed = trace.failing_observations;
            first = false;
        } else {
            std::vector<Observation> kept;
            for (const auto& obs : guaranteed)
                if (std::find(trace.failing_observations.begin(),
                              trace.failing_observations.end(),
                              obs) != trace.failing_observations.end())
                    kept.push_back(obs);
            guaranteed = std::move(kept);
        }
        if (guaranteed.empty()) break;
    }
    return guaranteed;
}

std::vector<ReadSite> guaranteed_failing_reads(const MarchTest& test,
                                               const InjectedFault& fault,
                                               const RunOptions& opts) {
    std::vector<ReadSite> guaranteed;
    bool first = true;
    for (unsigned choice : expansions(test, opts)) {
        const RunTrace trace = run_once(test, {fault}, choice, opts);
        if (first) {
            guaranteed = trace.failing_reads;
            first = false;
        } else {
            std::vector<ReadSite> kept;
            for (const auto& site : guaranteed)
                if (std::find(trace.failing_reads.begin(),
                              trace.failing_reads.end(),
                              site) != trace.failing_reads.end())
                    kept.push_back(site);
            guaranteed = std::move(kept);
        }
        if (guaranteed.empty()) break;
    }
    return guaranteed;
}

}  // namespace mtg::sim
