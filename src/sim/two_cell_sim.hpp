#pragma once

/// \file two_cell_sim.hpp
/// Simulation of abstract operation sequences (GTS fragments) on the
/// two-cell memory model. Used to prove that the rewrite phases of §4.1/4.2
/// preserve fault coverage: a Global Test Sequence detects a fault instance
/// iff some verify-read observes a value different from its expectation when
/// the sequence runs on the faulty machine.
///
/// Cells start uninitialised; unknown components are handled by enumerating
/// every consistent completion and requiring detection in all of them
/// (guaranteed detection).

#include <vector>

#include "fault/instance.hpp"
#include "fsm/abstract_op.hpp"
#include "fsm/memory_fsm.hpp"

namespace mtg::sim {

/// Runs `ops` on the machine from an all-unknown start. Verify-reads
/// compare the machine's output with the op's expected value. Returns true
/// iff a mismatch occurs in EVERY completion of the initially-unknown cell
/// values (i.e. detection is guaranteed regardless of power-up contents).
[[nodiscard]] bool gts_detects(const std::vector<fsm::AbstractOp>& ops,
                               const fsm::MemoryFsm& faulty);

/// Convenience overload building the machine from a fault instance.
[[nodiscard]] bool gts_detects(const std::vector<fsm::AbstractOp>& ops,
                               const fault::FaultInstance& instance);

/// True when every verify-read of `ops` sees its expected value on the
/// *good* machine from any power-up state (the sequence never reads an
/// uninitialised or wrongly-predicted value). Generated GTSs must satisfy
/// this before and after every rewrite phase.
[[nodiscard]] bool gts_well_formed(const std::vector<fsm::AbstractOp>& ops);

}  // namespace mtg::sim
