#pragma once

/// \file trace_masks.hpp
/// Shared guaranteed-trace machinery of the packed grid kernels.
///
/// Both trace-extracting drivers (sim_run_chunk for the bit-oriented
/// kernel, word_run_chunk for the word-oriented one) follow the same
/// scheme: a flat grid of per-coordinate failing-lane masks is zeroed
/// before each ⇕-expansion pass, the pass ORs the lanes that mismatch at
/// each coordinate into it, and the grids of all passes are intersected —
/// a lane survives at a coordinate only when EVERY expansion failed there,
/// which is exactly the "guaranteed" trace semantics of the scalar
/// runners. GuaranteedMasks owns that now/intersected grid pair so the two
/// kernels cannot drift apart in how they canonicalise traces.
///
/// SparseGuaranteedRuns is the same contract for grids too large to
/// materialise densely: per-coordinate sorted runs of (word, bit, lanes)
/// entries, intersected across passes by merge-walking two sorted runs
/// instead of AND-ing a dense slab (the word path's observation grid is
/// O(backgrounds · sites · words · width) dense but only O(touched cells)
/// sparse — see word_kernels.hpp).

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/lane_block.hpp"

namespace mtg::sim::detail {

/// One guaranteed-trace grid: `now` collects the failing lanes of the
/// running pass, `guaranteed` holds the intersection of every committed
/// pass. Coordinates are flat indices chosen by the caller (per read site,
/// or per (background, site, word, bit) — whatever the kernel traces).
template <typename Block>
class GuaranteedMasks {
public:
    /// `size` coordinates, all lanes of `init` initially guaranteed (the
    /// kernels seed with the chunk's used-lane mask: intersecting the
    /// first pass then leaves exactly that pass's failures).
    GuaranteedMasks(std::size_t size, const Block& init)
        : guaranteed_(size, init), now_(size, block_zero<Block>()) {}

    /// Zeroes the per-pass grid; call before every expansion pass.
    void begin_pass() {
        std::fill(now_.begin(), now_.end(), block_zero<Block>());
    }

    /// The per-pass grid, in the pointer form the pass functions take
    /// (the cross-ISA call boundary is pointer-only).
    [[nodiscard]] std::vector<Block>* pass_grid() { return &now_; }

    /// Intersects the finished pass into the guaranteed grid.
    void commit_pass() {
        for (std::size_t i = 0; i < guaranteed_.size(); ++i)
            guaranteed_[i] &= now_[i];
    }

    [[nodiscard]] const Block& guaranteed(std::size_t i) const {
        return guaranteed_[i];
    }
    [[nodiscard]] std::size_t size() const { return guaranteed_.size(); }

private:
    std::vector<Block> guaranteed_;
    std::vector<Block> now_;
};

/// One sparse observation cell: the failing-lane mask at a (word, bit)
/// coordinate of a (background, site) run. `word` before `bit` so the
/// default ordering is the canonical trace order within a run.
template <typename Block>
struct SparseObsEntry {
    std::int32_t word;
    std::int32_t bit;
    Block lanes;

    [[nodiscard]] friend bool operator<(const SparseObsEntry& a,
                                        const SparseObsEntry& b) {
        return a.word != b.word ? a.word < b.word : a.bit < b.bit;
    }
};

/// Sparse counterpart of GuaranteedMasks for grids where almost every
/// coordinate stays empty: the dense (background × site × word × bit)
/// observation grid touches O(words · width) cells per run, but a fault
/// lane only ever mismatches at words holding one of its victim bits, so
/// the populated cells per run are O(lanes) regardless of the memory size.
///
/// Layout is site-major: one run (sorted vector of SparseObsEntry) per
/// (background, site) coordinate. A pass appends the cells it actually
/// fails at; commit_pass sorts the pass run (passes emit words in one
/// address order, so the sort sees nearly- or reverse-sorted input) and
/// intersects it into the guaranteed run by merge-walking the two sorted
/// runs: matching (word, bit) keys AND their lane masks, unmatched keys
/// die, empty intersections are dropped. The first committed pass seeds
/// the guaranteed run outright — the sparse equivalent of GuaranteedMasks
/// seeding with the used-lane mask.
///
/// Invariant required of the appender (and upheld by the word pass: every
/// site reads each word exactly once per background per pass): within one
/// pass, a (word, bit) key is appended to a given run at most once.
template <typename Block>
class SparseGuaranteedRuns {
public:
    explicit SparseGuaranteedRuns(std::size_t coords)
        : guaranteed_(coords), now_(coords) {}

    /// Clears the per-pass runs (keeping their capacity); call before
    /// every expansion pass.
    void begin_pass() {
        for (auto& run : now_) run.clear();
    }

    /// Records that `lanes` mismatched at (word, bit) of run `coord`
    /// during the current pass.
    void append(std::size_t coord, int word, int bit, const Block& lanes) {
        now_[coord].push_back({static_cast<std::int32_t>(word),
                               static_cast<std::int32_t>(bit), lanes});
    }

    /// Intersects the finished pass into the guaranteed runs.
    void commit_pass() {
        for (std::size_t c = 0; c < now_.size(); ++c) {
            auto& now = now_[c];
            std::sort(now.begin(), now.end());
            if (first_pass_) {
                guaranteed_[c] = now;
                continue;
            }
            auto& guaranteed = guaranteed_[c];
            std::size_t out = 0, gi = 0, ni = 0;
            while (gi < guaranteed.size() && ni < now.size()) {
                const auto& g = guaranteed[gi];
                const auto& n = now[ni];
                if (g < n) {
                    ++gi;  // failed in earlier passes only: not guaranteed
                } else if (n < g) {
                    ++ni;  // failed in this pass only: not guaranteed
                } else {
                    const Block lanes = g.lanes & n.lanes;
                    if (!block_none(lanes))
                        guaranteed[out++] = {g.word, g.bit, lanes};
                    ++gi;
                    ++ni;
                }
            }
            guaranteed.resize(out);
        }
        first_pass_ = false;
    }

    /// The guaranteed run of coordinate `coord`, sorted by (word, bit).
    [[nodiscard]] const std::vector<SparseObsEntry<Block>>& run(
        std::size_t coord) const {
        return guaranteed_[coord];
    }
    [[nodiscard]] std::size_t size() const { return guaranteed_.size(); }

    /// Total populated cells across every guaranteed run (the sparse
    /// grid's memory footprint, for benches and tests).
    [[nodiscard]] std::size_t entry_count() const {
        std::size_t n = 0;
        for (const auto& run : guaranteed_) n += run.size();
        return n;
    }

    /// Hands the guaranteed runs off to the caller (the chunk result).
    [[nodiscard]] std::vector<std::vector<SparseObsEntry<Block>>> take() {
        return std::move(guaranteed_);
    }

private:
    std::vector<std::vector<SparseObsEntry<Block>>> guaranteed_;
    std::vector<std::vector<SparseObsEntry<Block>>> now_;
    bool first_pass_{true};
};

}  // namespace mtg::sim::detail
