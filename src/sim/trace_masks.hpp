#pragma once

/// \file trace_masks.hpp
/// Shared guaranteed-trace machinery of the packed grid kernels.
///
/// Both trace-extracting drivers (sim_run_chunk for the bit-oriented
/// kernel, word_run_chunk for the word-oriented one) follow the same
/// scheme: a flat grid of per-coordinate failing-lane masks is zeroed
/// before each ⇕-expansion pass, the pass ORs the lanes that mismatch at
/// each coordinate into it, and the grids of all passes are intersected —
/// a lane survives at a coordinate only when EVERY expansion failed there,
/// which is exactly the "guaranteed" trace semantics of the scalar
/// runners. GuaranteedMasks owns that now/intersected grid pair so the two
/// kernels cannot drift apart in how they canonicalise traces.

#include <algorithm>
#include <vector>

#include "sim/lane_block.hpp"

namespace mtg::sim::detail {

/// One guaranteed-trace grid: `now` collects the failing lanes of the
/// running pass, `guaranteed` holds the intersection of every committed
/// pass. Coordinates are flat indices chosen by the caller (per read site,
/// or per (background, site, word, bit) — whatever the kernel traces).
template <typename Block>
class GuaranteedMasks {
public:
    /// `size` coordinates, all lanes of `init` initially guaranteed (the
    /// kernels seed with the chunk's used-lane mask: intersecting the
    /// first pass then leaves exactly that pass's failures).
    GuaranteedMasks(std::size_t size, const Block& init)
        : guaranteed_(size, init), now_(size, block_zero<Block>()) {}

    /// Zeroes the per-pass grid; call before every expansion pass.
    void begin_pass() {
        std::fill(now_.begin(), now_.end(), block_zero<Block>());
    }

    /// The per-pass grid, in the pointer form the pass functions take
    /// (the cross-ISA call boundary is pointer-only).
    [[nodiscard]] std::vector<Block>* pass_grid() { return &now_; }

    /// Intersects the finished pass into the guaranteed grid.
    void commit_pass() {
        for (std::size_t i = 0; i < guaranteed_.size(); ++i)
            guaranteed_[i] &= now_[i];
    }

    [[nodiscard]] const Block& guaranteed(std::size_t i) const {
        return guaranteed_[i];
    }
    [[nodiscard]] std::size_t size() const { return guaranteed_.size(); }

private:
    std::vector<Block> guaranteed_;
    std::vector<Block> now_;
};

}  // namespace mtg::sim::detail
