/// \file lane_kernels.cpp
/// SIMD codegen for the wide lane-block passes.
///
/// The width-generic pass templates compile to correct code on any target,
/// but a stock build (no -mavx*) only emits baseline (SSE2-pair) vector
/// instructions for the LaneBlock vector type. The wrappers below re-emit
/// the whole pass — with every packed-memory operation flattened in —
/// under `target("avx2")` / `target("avx512f")`, so the 256/512-bit block
/// operations lower to single ymm/zmm bitwise ops. The wrappers are strong
/// symbols local to this TU (no per-TU -m flags, no weak-symbol ODR
/// leakage into generic code), and the getters only hand them out when
/// CPUID reports the feature, so every lane width stays runnable on every
/// host. All pass signatures are pointer-only: returning a 256/512-bit
/// vector by value across the wrapper boundary would change the calling
/// convention with the ISA.

#include "sim/lane_dispatch.hpp"
#include "sim/sim_kernels.hpp"
#include "word/word_kernels.hpp"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define MTG_SIMD_WRAPPERS 1
#else
#define MTG_SIMD_WRAPPERS 0
#endif

namespace mtg::sim::detail {

#if MTG_SIMD_WRAPPERS
namespace {

__attribute__((target("avx2,tune=haswell"), flatten)) void sim_pass_avx2(
    const SimPlan& plan, const InjectedFault* faults, int count,
    unsigned choice, LaneBlock<4>* detected_out,
    std::vector<LaneBlock<4>>* site_now,
    std::vector<LaneBlock<4>>* obs_now) {
    sim_run_pass<LaneBlock<4>>(plan, faults, count, choice, detected_out,
                               site_now, obs_now);
}

__attribute__((target("avx512f"), flatten)) void sim_pass_avx512(
    const SimPlan& plan, const InjectedFault* faults, int count,
    unsigned choice, LaneBlock<8>* detected_out,
    std::vector<LaneBlock<8>>* site_now,
    std::vector<LaneBlock<8>>* obs_now) {
    sim_run_pass<LaneBlock<8>>(plan, faults, count, choice, detected_out,
                               site_now, obs_now);
}

// The 256-bit clone of the W=8 pass: same LaneBlock<8> template, compiled
// under `target("avx2")` so each 64-byte block operation lowers to a pair
// of ymm ops instead of one zmm op. (`-mprefer-vector-width=256` only
// steers the auto-vectoriser; for explicit GNU vector types the narrower
// target IS how you ask for ymm.) On AVX-512 hosts that downclock under
// sustained zmm load this wins for short jobs — see resolve_lane_isa.
__attribute__((target("avx2,tune=haswell"), flatten)) void
sim_pass_avx512_as_avx2(const SimPlan& plan, const InjectedFault* faults,
                        int count, unsigned choice,
                        LaneBlock<8>* detected_out,
                        std::vector<LaneBlock<8>>* site_now,
                        std::vector<LaneBlock<8>>* obs_now) {
    sim_run_pass<LaneBlock<8>>(plan, faults, count, choice, detected_out,
                               site_now, obs_now);
}

}  // namespace
#endif

SimPassFn<LaneMask> sim_pass_w1() { return &sim_run_pass<LaneMask>; }

SimPassFn<LaneBlock<4>> sim_pass_w4() {
#if MTG_SIMD_WRAPPERS
    if (cpu_has_avx2()) return &sim_pass_avx2;
#endif
    return &sim_run_pass<LaneBlock<4>>;
}

SimPassFn<LaneBlock<8>> sim_pass_w8(LaneIsa isa) {
#if MTG_SIMD_WRAPPERS
    // The CPUID guards double as the degrade ladder: an isa the host
    // cannot run falls through to the next-widest runnable codegen.
    if (isa == LaneIsa::Avx512 && cpu_has_avx512f())
        return &sim_pass_avx512;
    if (isa != LaneIsa::Generic && cpu_has_avx2())
        return &sim_pass_avx512_as_avx2;
#else
    (void)isa;
#endif
    return &sim_run_pass<LaneBlock<8>>;
}

}  // namespace mtg::sim::detail

namespace mtg::word::detail {

#if MTG_SIMD_WRAPPERS
namespace {

__attribute__((target("avx2,tune=haswell"), flatten)) void word_pass_avx2(
    const WordPlan& plan, const InjectedBitFault* faults, int count,
    unsigned choice, LaneBlock<4>* detected_out,
    std::vector<LaneBlock<4>>* site_now, WordObsSink<LaneBlock<4>>* obs) {
    word_run_pass<LaneBlock<4>>(plan, faults, count, choice, detected_out,
                                site_now, obs);
}

__attribute__((target("avx512f"), flatten)) void word_pass_avx512(
    const WordPlan& plan, const InjectedBitFault* faults, int count,
    unsigned choice, LaneBlock<8>* detected_out,
    std::vector<LaneBlock<8>>* site_now, WordObsSink<LaneBlock<8>>* obs) {
    word_run_pass<LaneBlock<8>>(plan, faults, count, choice, detected_out,
                                site_now, obs);
}

// 256-bit clone of the W=8 word pass (ymm pairs; see the sim clone above).
__attribute__((target("avx2,tune=haswell"), flatten)) void
word_pass_avx512_as_avx2(const WordPlan& plan,
                         const InjectedBitFault* faults, int count,
                         unsigned choice, LaneBlock<8>* detected_out,
                         std::vector<LaneBlock<8>>* site_now,
                         WordObsSink<LaneBlock<8>>* obs) {
    word_run_pass<LaneBlock<8>>(plan, faults, count, choice, detected_out,
                                site_now, obs);
}

}  // namespace
#endif

WordPassFn<LaneMask> word_pass_w1() { return &word_run_pass<LaneMask>; }

WordPassFn<LaneBlock<4>> word_pass_w4() {
#if MTG_SIMD_WRAPPERS
    if (sim::cpu_has_avx2()) return &word_pass_avx2;
#endif
    return &word_run_pass<LaneBlock<4>>;
}

WordPassFn<LaneBlock<8>> word_pass_w8(sim::LaneIsa isa) {
#if MTG_SIMD_WRAPPERS
    if (isa == sim::LaneIsa::Avx512 && sim::cpu_has_avx512f())
        return &word_pass_avx512;
    if (isa != sim::LaneIsa::Generic && sim::cpu_has_avx2())
        return &word_pass_avx512_as_avx2;
#else
    (void)isa;
#endif
    return &word_run_pass<LaneBlock<8>>;
}

}  // namespace mtg::word::detail
