#pragma once

/// \file sim_kernels.hpp
/// Width-generic grid kernels behind sim::BatchRunner.
///
/// The kernels are templates over the lane-block type (LaneMask,
/// LaneBlock<4>, LaneBlock<8>): one `sim_run_pass` executes a whole March
/// test against a chunk of 63·W faults under one fixed ⇕ choice, and the
/// drivers shard the (chunk × ⇕-expansion) work grid across a
/// util::ThreadPool exactly like PR 2 — atomic-free per-worker AND
/// accumulators for detects(), an atomic escape flag for detects_all(),
/// chunk-wise disjoint result slices for run(). Because each plane word of
/// a block is bit-identical to a scalar chunk, every width produces the
/// same per-fault results for any worker count.
///
/// The hot pass is reached through a `SimPassFn` function pointer so the
/// runner can substitute the `target("avx2"/"avx512f")`-attributed
/// wrappers from lane_kernels.cpp when the host CPU supports them; the
/// template instantiation used as the fallback is plain C++ and safe on
/// any host.

#include <algorithm>
#include <atomic>
#include <optional>
#include <span>
#include <vector>

#include "march/march_test.hpp"
#include "sim/lane_block.hpp"
#include "sim/lane_dispatch.hpp"
#include "sim/march_runner.hpp"
#include "sim/packed_memory.hpp"
#include "sim/trace_masks.hpp"
#include "util/thread_pool.hpp"

namespace mtg::sim::detail {

/// Everything a BatchRunner precomputes once per March test; shared by the
/// kernels of every width.
struct SimPlan {
    march::MarchTest test;
    RunOptions opts;
    util::ThreadPool* pool{nullptr};
    std::vector<unsigned> expansions;
    std::vector<ReadSite> sites;
    std::vector<std::vector<int>> site_id;  ///< (element, op) -> flat site
};

/// One full test execution of one chunk under one fixed ⇕ choice. The
/// detection mask comes back through `detected_out` rather than by value:
/// the AVX-attributed wrappers and their generic callers disagree on the
/// register convention for returning a 256/512-bit vector, so the
/// cross-ISA call boundary must stay pointer-only.
template <typename Block>
using SimPassFn = void (*)(const SimPlan&, const InjectedFault*, int,
                           unsigned, Block*, std::vector<Block>*,
                           std::vector<Block>*);

/// Writes the lanes with at least one definite read mismatch to
/// `*detected_out`; when site_now/obs_now are non-null they receive the
/// per-site and per-(site, cell) mismatch masks of this single pass.
template <typename Block>
void sim_run_pass(const SimPlan& plan, const InjectedFault* faults,
                  int count, unsigned choice, Block* detected_out,
                  std::vector<Block>* site_now, std::vector<Block>* obs_now) {
    const int n = plan.opts.memory_size;
    const Block used = block_used_lanes<Block>(count);

    // Per-pass scratch pooling (ROADMAP SIMD follow-on (a)): pool workers
    // are long-lived, so a thread-local memory re-armed with reset()
    // keeps the plane vectors and the per-fault coupling/static/map
    // tables at their high-water capacity instead of reallocating 63·W
    // injects per chunk.
    std::optional<PackedSimMemoryT<Block>> fresh;
    PackedSimMemoryT<Block>* mem;
    if (pass_scratch_enabled()) {
        thread_local PackedSimMemoryT<Block> scratch(n);
        scratch.reset(n);
        mem = &scratch;
    } else {
        fresh.emplace(n);
        mem = &*fresh;
    }
    PackedSimMemoryT<Block>& memory = *mem;
    for (int i = 0; i < count; ++i)
        memory.inject(faults[i], block_lane_bit<Block>(fault_lane(i)));

    Block detected = block_zero<Block>();
    int any_seen = 0;
    for (std::size_t e = 0; e < plan.test.size(); ++e) {
        const auto& element = plan.test[e];
        bool desc = element.order == march::AddressOrder::Descending;
        if (element.order == march::AddressOrder::Any) {
            desc = ((choice >> any_seen) & 1u) != 0;
            ++any_seen;
        }
        for (int step = 0; step < n; ++step) {
            const int cell = desc ? n - 1 - step : step;
            for (std::size_t o = 0; o < element.ops.size(); ++o) {
                const march::MarchOp& op = element.ops[o];
                switch (op.kind) {
                    case march::OpKind::Write:
                        memory.write(cell, op.value);
                        break;
                    case march::OpKind::Wait:
                        memory.wait();
                        break;
                    case march::OpKind::Read: {
                        const auto got = memory.read(cell);
                        const Block expected =
                            block_fill<Block>(op.value != 0);
                        // Only definite mismatches detect (X cannot be
                        // guaranteed to differ from the expected value).
                        const Block mismatch =
                            got.known & (got.value ^ expected) & used;
                        if (block_none(mismatch)) break;
                        detected |= mismatch;
                        if (site_now == nullptr) break;
                        const auto sid =
                            static_cast<std::size_t>(plan.site_id[e][o]);
                        (*site_now)[sid] |= mismatch;
                        if (obs_now != nullptr)
                            (*obs_now)[sid * static_cast<std::size_t>(n) +
                                       static_cast<std::size_t>(cell)] |=
                                mismatch;
                        break;
                    }
                }
            }
        }
    }
    *detected_out = detected;
}

/// Per-site × per-cell failing-lane masks of one population chunk,
/// already intersected across every ⇕ expansion.
template <typename Block>
struct SimChunkResult {
    Block detected{};
    std::vector<Block> site_fail;         ///< [site]
    std::vector<Block> observation_fail;  ///< [site * n + cell]
};

template <typename Block>
SimChunkResult<Block> sim_run_chunk(const SimPlan& plan,
                                    SimPassFn<Block> pass,
                                    const InjectedFault* faults, int count) {
    MTG_EXPECTS(count > 0 && count <= block_fault_lanes<Block>);
    const int n = plan.opts.memory_size;
    const Block used = block_used_lanes<Block>(count);

    SimChunkResult<Block> out;
    out.detected = used;
    GuaranteedMasks<Block> sites(plan.sites.size(), used);
    GuaranteedMasks<Block> observations(
        plan.sites.size() * static_cast<std::size_t>(n), used);

    Block pass_detected = block_zero<Block>();
    for (unsigned choice : plan.expansions) {
        sites.begin_pass();
        observations.begin_pass();
        pass(plan, faults, count, choice, &pass_detected,
             sites.pass_grid(), observations.pass_grid());
        out.detected &= pass_detected;
        sites.commit_pass();
        observations.commit_pass();
    }

    out.site_fail.resize(sites.size());
    for (std::size_t s = 0; s < sites.size(); ++s)
        out.site_fail[s] = sites.guaranteed(s);
    out.observation_fail.resize(observations.size());
    for (std::size_t k = 0; k < observations.size(); ++k)
        out.observation_fail[k] = observations.guaranteed(k);
    return out;
}

template <typename Block>
std::vector<bool> sim_detects(const SimPlan& plan, SimPassFn<Block> pass,
                              std::span<const InjectedFault> population) {
    std::vector<bool> result(population.size(), false);
    if (population.empty()) return result;
    const std::size_t chunks = block_chunk_total<Block>(population.size());
    const std::size_t expansions = plan.expansions.size();
    const auto per = static_cast<std::size_t>(block_fault_lanes<Block>);

    // Fused (chunk × expansion) grid: every work item is one full test
    // pass; worker w ANDs its passes into acc[w], and the per-worker
    // accumulators are intersected once the grid drains. AND is
    // commutative and associative, so the result is independent of how
    // the items were distributed.
    std::vector<std::vector<Block>> acc(
        plan.pool->worker_count(),
        std::vector<Block>(chunks, block_ones<Block>()));
    plan.pool->parallel_for(
        chunks * expansions, [&](std::size_t item, unsigned worker) {
            const std::size_t c = item / expansions;
            const unsigned choice = plan.expansions[item % expansions];
            Block detected = block_zero<Block>();
            pass(plan, population.data() + c * per,
                 block_chunk_count<Block>(population.size(), c), choice,
                 &detected, nullptr, nullptr);
            acc[worker][c] &= detected;
        });

    for (std::size_t c = 0; c < chunks; ++c) {
        const int count = block_chunk_count<Block>(population.size(), c);
        Block detected = block_used_lanes<Block>(count);
        for (const auto& worker_acc : acc) detected &= worker_acc[c];
        for (int i = 0; i < count; ++i)
            result[c * per + static_cast<std::size_t>(i)] =
                block_test(detected, fault_lane(i));
    }
    return result;
}

template <typename Block>
bool sim_detects_all(const SimPlan& plan, SimPassFn<Block> pass,
                     std::span<const InjectedFault> population) {
    if (population.empty()) return true;
    const std::size_t chunks = block_chunk_total<Block>(population.size());
    const std::size_t expansions = plan.expansions.size();
    const auto per = static_cast<std::size_t>(block_fault_lanes<Block>);

    // A lane escapes as soon as ONE expansion misses it, so any work item
    // observing an incomplete detection mask settles the answer; the flag
    // lets the remaining items return immediately.
    std::atomic<bool> escape{false};
    plan.pool->parallel_for(
        chunks * expansions, [&](std::size_t item, unsigned) {
            if (escape.load(std::memory_order_relaxed)) return;
            const std::size_t c = item / expansions;
            const unsigned choice = plan.expansions[item % expansions];
            const int count =
                block_chunk_count<Block>(population.size(), c);
            Block detected = block_zero<Block>();
            pass(plan, population.data() + c * per, count, choice,
                 &detected, nullptr, nullptr);
            if (!(detected == block_used_lanes<Block>(count)))
                escape.store(true, std::memory_order_relaxed);
        });
    return !escape.load(std::memory_order_relaxed);
}

template <typename Block>
std::vector<RunTrace> sim_run(const SimPlan& plan, SimPassFn<Block> pass,
                              std::span<const InjectedFault> population) {
    const int n = plan.opts.memory_size;
    std::vector<RunTrace> result(population.size());
    if (population.empty()) return result;
    const std::size_t chunks = block_chunk_total<Block>(population.size());
    const auto per = static_cast<std::size_t>(block_fault_lanes<Block>);

    // Chunk-wise sharding: each item expands every ⇕ choice itself (the
    // per-(site, cell) masks would make a fused grid's per-worker state
    // quadratic) and writes a disjoint slice of the result.
    plan.pool->parallel_for(chunks, [&](std::size_t c, unsigned) {
        const std::size_t base = c * per;
        const int count = block_chunk_count<Block>(population.size(), c);
        const SimChunkResult<Block> chunk =
            sim_run_chunk<Block>(plan, pass, population.data() + base,
                                 count);
        for (int i = 0; i < count; ++i) {
            const int lane = fault_lane(i);
            RunTrace& trace = result[base + static_cast<std::size_t>(i)];
            trace.detected = block_test(chunk.detected, lane);
            for (std::size_t s = 0; s < plan.sites.size(); ++s) {
                if (block_test(chunk.site_fail[s], lane))
                    trace.failing_reads.push_back(plan.sites[s]);
                for (int cell = 0; cell < n; ++cell)
                    if (block_test(
                            chunk.observation_fail
                                [s * static_cast<std::size_t>(n) +
                                 static_cast<std::size_t>(cell)],
                            lane))
                        trace.failing_observations.push_back(
                            {plan.sites[s], cell});
            }
        }
    });
    return result;
}

/// Pass-function getters: the widest safe codegen for each block width —
/// the `target`-attributed AVX wrapper when the host CPU has the feature,
/// the generic-codegen template instantiation otherwise. Defined in
/// lane_kernels.cpp.
[[nodiscard]] SimPassFn<LaneMask> sim_pass_w1();
[[nodiscard]] SimPassFn<LaneBlock<4>> sim_pass_w4();
/// The W=8 getter picks between the zmm wrapper, the 256-bit (ymm-pair)
/// clone and the generic instantiation per the resolved LaneIsa.
[[nodiscard]] SimPassFn<LaneBlock<8>> sim_pass_w8(
    LaneIsa isa = LaneIsa::Avx512);

}  // namespace mtg::sim::detail
