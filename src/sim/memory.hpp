#pragma once

/// \file memory.hpp
/// Behavioural model of an n-cell bit-oriented RAM with injected faults —
/// the reproduction of the paper's "ad hoc memory fault simulator" (§6).
///
/// Fault semantics here are implemented *independently* of the FSM fault
/// models in src/fault: the simulator acts as ground truth against which the
/// generator's FSM-based models are cross-validated (see
/// tests/cross_validation_test.cpp).

#include <vector>

#include "fault/kinds.hpp"
#include "util/contracts.hpp"
#include "util/trit.hpp"

namespace mtg::sim {

/// A fault primitive bound to concrete cell addresses.
struct InjectedFault {
    fault::FaultKind kind{fault::FaultKind::Saf0};
    int cell_a{0};   ///< faulty cell (single-cell) or aggressor (two-cell)
    int cell_b{-1};  ///< victim for two-cell faults; -1 otherwise

    /// Single-cell fault at `cell`.
    static InjectedFault single(fault::FaultKind k, int cell) {
        MTG_EXPECTS(!fault::is_two_cell(k));
        return {k, cell, -1};
    }
    /// Two-cell fault with aggressor `a` and victim `v` (a != v).
    static InjectedFault coupling(fault::FaultKind k, int a, int v) {
        MTG_EXPECTS(fault::is_two_cell(k));
        MTG_EXPECTS(a != v);
        return {k, a, v};
    }

    friend bool operator==(const InjectedFault&,
                           const InjectedFault&) = default;
};

/// n-cell RAM; cells start uninitialised (X). Zero or more faults may be
/// injected before use.
class SimMemory {
public:
    explicit SimMemory(int cell_count);

    [[nodiscard]] int size() const { return static_cast<int>(cells_.size()); }

    /// Adds a fault. Multiple faults are legal; effects compose in
    /// injection order.
    void inject(const InjectedFault& fault);

    /// Write value d (0/1) to `addr`, applying fault effects.
    void write(int addr, int d);

    /// Read `addr`, applying fault effects (read disturbs); X when the
    /// returned value is unknown (uninitialised cell).
    [[nodiscard]] Trit read(int addr);

    /// Elapse the data-retention period (the paper's `T` input).
    void wait();

    /// Raw cell value without triggering read faults (for tests).
    [[nodiscard]] Trit peek(int addr) const;

    /// Directly sets a cell, bypassing fault effects (for tests).
    void poke(int addr, Trit v);

private:
    std::vector<Trit> cells_;
    std::vector<InjectedFault> faults_;

    void check_addr(int addr) const;
    /// Applies CFst forcing invariants after any state change.
    void enforce_static_coupling();
};

}  // namespace mtg::sim
