#include "sim/batch_runner.hpp"

#include <algorithm>
#include <atomic>

#include "fault/instance.hpp"

namespace mtg::sim {

using march::AddressOrder;
using march::MarchOp;
using march::MarchTest;
using march::OpKind;

BatchRunner::BatchRunner(const MarchTest& test, const RunOptions& opts,
                         util::ThreadPool* pool)
    : test_(test), opts_(opts),
      pool_(pool != nullptr ? pool : &util::ThreadPool::global()),
      expansions_(expansion_choices(test, opts)), sites_(read_sites(test)) {
    MTG_EXPECTS(opts.memory_size > 0);
    // Flat site id of each (element, op); -1 for writes/waits.
    site_id_.resize(test_.size());
    int next = 0;
    for (std::size_t e = 0; e < test_.size(); ++e) {
        site_id_[e].assign(test_[e].ops.size(), -1);
        for (std::size_t o = 0; o < test_[e].ops.size(); ++o)
            if (test_[e].ops[o].kind == OpKind::Read) site_id_[e][o] = next++;
    }
}

LaneMask BatchRunner::run_pass(const InjectedFault* faults, int count,
                               unsigned choice,
                               std::vector<LaneMask>* site_now,
                               std::vector<LaneMask>* obs_now) const {
    const int n = opts_.memory_size;
    const LaneMask used = used_lanes(count);

    PackedSimMemory memory(n);
    for (int i = 0; i < count; ++i)
        memory.inject(faults[i], LaneMask{1} << (i + 1));

    LaneMask detected = 0;
    int any_seen = 0;
    for (std::size_t e = 0; e < test_.size(); ++e) {
        const auto& element = test_[e];
        bool desc = element.order == AddressOrder::Descending;
        if (element.order == AddressOrder::Any) {
            desc = ((choice >> any_seen) & 1u) != 0;
            ++any_seen;
        }
        for (int step = 0; step < n; ++step) {
            const int cell = desc ? n - 1 - step : step;
            for (std::size_t o = 0; o < element.ops.size(); ++o) {
                const MarchOp& op = element.ops[o];
                switch (op.kind) {
                    case OpKind::Write:
                        memory.write(cell, op.value);
                        break;
                    case OpKind::Wait:
                        memory.wait();
                        break;
                    case OpKind::Read: {
                        const auto got = memory.read(cell);
                        const LaneMask expected =
                            op.value ? kAllLanes : LaneMask{0};
                        // Only definite mismatches detect (X cannot be
                        // guaranteed to differ from the expected value).
                        const LaneMask mismatch =
                            got.known & (got.value ^ expected) & used;
                        if (!mismatch) break;
                        detected |= mismatch;
                        if (site_now == nullptr) break;
                        const auto sid =
                            static_cast<std::size_t>(site_id_[e][o]);
                        (*site_now)[sid] |= mismatch;
                        if (obs_now != nullptr)
                            (*obs_now)[sid * static_cast<std::size_t>(n) +
                                       static_cast<std::size_t>(cell)] |=
                                mismatch;
                        break;
                    }
                }
            }
        }
    }
    return detected;
}

BatchRunner::ChunkResult BatchRunner::run_chunk(const InjectedFault* faults,
                                                int count) const {
    MTG_EXPECTS(count > 0 && count <= kChunkLanes);
    const int n = opts_.memory_size;
    const LaneMask used = used_lanes(count);

    ChunkResult out;
    out.detected = used;
    out.site_fail.assign(sites_.size(), used);
    out.observation_fail.assign(sites_.size() * static_cast<std::size_t>(n),
                                used);

    std::vector<LaneMask> site_now(sites_.size());
    std::vector<LaneMask> obs_now(sites_.size() * static_cast<std::size_t>(n));

    for (unsigned choice : expansions_) {
        std::fill(site_now.begin(), site_now.end(), 0);
        std::fill(obs_now.begin(), obs_now.end(), 0);
        out.detected &= run_pass(faults, count, choice, &site_now, &obs_now);
        for (std::size_t s = 0; s < sites_.size(); ++s)
            out.site_fail[s] &= site_now[s];
        for (std::size_t k = 0; k < obs_now.size(); ++k)
            out.observation_fail[k] &= obs_now[k];
    }
    return out;
}

std::vector<bool> BatchRunner::detects(
    const std::vector<InjectedFault>& population) const {
    std::vector<bool> result(population.size(), false);
    if (population.empty()) return result;
    const std::size_t chunks = (population.size() + kChunkLanes - 1) / kChunkLanes;
    const std::size_t expansions = expansions_.size();

    // Fused (chunk × expansion) grid: every work item is one full test
    // pass; worker w ANDs its passes into acc[w], and the per-worker
    // accumulators are intersected once the grid drains. AND is
    // commutative and associative, so the result is independent of how
    // the items were distributed.
    std::vector<std::vector<LaneMask>> acc(
        pool_->worker_count(), std::vector<LaneMask>(chunks, kAllLanes));
    pool_->parallel_for(
        chunks * expansions, [&](std::size_t item, unsigned worker) {
            const std::size_t c = item / expansions;
            const unsigned choice = expansions_[item % expansions];
            acc[worker][c] &=
                run_pass(population.data() + c * kChunkLanes,
                         chunk_count(population.size(), c), choice,
                         nullptr, nullptr);
        });

    for (std::size_t c = 0; c < chunks; ++c) {
        LaneMask detected = used_lanes(chunk_count(population.size(), c));
        for (const auto& worker_acc : acc) detected &= worker_acc[c];
        const int count = chunk_count(population.size(), c);
        for (int i = 0; i < count; ++i)
            result[c * kChunkLanes + static_cast<std::size_t>(i)] =
                ((detected >> (i + 1)) & 1u) != 0;
    }
    return result;
}

bool BatchRunner::detects_all(
    const std::vector<InjectedFault>& population) const {
    if (population.empty()) return true;
    const std::size_t chunks = (population.size() + kChunkLanes - 1) / kChunkLanes;
    const std::size_t expansions = expansions_.size();

    // A lane escapes as soon as ONE expansion misses it, so any work item
    // observing an incomplete detection mask settles the answer; the flag
    // lets the remaining items return immediately.
    std::atomic<bool> escape{false};
    pool_->parallel_for(
        chunks * expansions, [&](std::size_t item, unsigned) {
            if (escape.load(std::memory_order_relaxed)) return;
            const std::size_t c = item / expansions;
            const unsigned choice = expansions_[item % expansions];
            const int count = chunk_count(population.size(), c);
            const LaneMask detected =
                run_pass(population.data() + c * kChunkLanes, count, choice,
                         nullptr, nullptr);
            if (detected != used_lanes(count))
                escape.store(true, std::memory_order_relaxed);
        });
    return !escape.load(std::memory_order_relaxed);
}

std::vector<RunTrace> BatchRunner::run(
    const std::vector<InjectedFault>& population) const {
    const int n = opts_.memory_size;
    std::vector<RunTrace> result(population.size());
    if (population.empty()) return result;
    const std::size_t chunks = (population.size() + kChunkLanes - 1) / kChunkLanes;

    // Chunk-wise sharding: each item expands every ⇕ choice itself (the
    // per-(site, cell) masks would make a fused grid's per-worker state
    // quadratic) and writes a disjoint slice of the result.
    pool_->parallel_for(chunks, [&](std::size_t c, unsigned) {
        const std::size_t base = c * kChunkLanes;
        const int count = chunk_count(population.size(), c);
        const ChunkResult chunk =
            run_chunk(population.data() + base, count);
        for (int i = 0; i < count; ++i) {
            const LaneMask lane = LaneMask{1} << (i + 1);
            RunTrace& trace = result[base + static_cast<std::size_t>(i)];
            trace.detected = (chunk.detected & lane) != 0;
            for (std::size_t s = 0; s < sites_.size(); ++s) {
                if (chunk.site_fail[s] & lane)
                    trace.failing_reads.push_back(sites_[s]);
                for (int cell = 0; cell < n; ++cell)
                    if (chunk.observation_fail[s * static_cast<std::size_t>(n) +
                                               static_cast<std::size_t>(
                                                   cell)] &
                        lane)
                        trace.failing_observations.push_back(
                            {sites_[s], cell});
            }
        }
    });
    return result;
}

std::vector<InjectedFault> full_population(fault::FaultKind kind,
                                           int memory_size) {
    std::vector<InjectedFault> population;
    if (memory_size <= 0) return population;
    if (fault::is_two_cell(kind)) {
        if (memory_size < 2) return population;  // no ordered pair exists
        population.reserve(static_cast<std::size_t>(memory_size) *
                           static_cast<std::size_t>(memory_size - 1));
        for (int a = 0; a < memory_size; ++a)
            for (int v = 0; v < memory_size; ++v)
                if (a != v)
                    population.push_back(InjectedFault::coupling(kind, a, v));
    } else {
        population.reserve(static_cast<std::size_t>(memory_size));
        for (int c = 0; c < memory_size; ++c)
            population.push_back(InjectedFault::single(kind, c));
    }
    return population;
}

std::vector<InjectedFault> full_population(
    const std::vector<fault::FaultKind>& kinds, int memory_size) {
    std::vector<InjectedFault> population;
    for (fault::FaultKind kind : kinds) {
        const std::vector<InjectedFault> placed =
            full_population(kind, memory_size);
        population.insert(population.end(), placed.begin(), placed.end());
    }
    return population;
}

InjectedFault place_instance(const fault::FaultInstance& instance,
                             int memory_size) {
    const int lo = memory_size / 3;
    const int hi = 2 * memory_size / 3;
    MTG_EXPECTS(lo != hi);
    if (!fault::is_two_cell(instance.kind))
        return InjectedFault::single(instance.kind, lo);
    if (instance.aggressor == fsm::Cell::I)
        return InjectedFault::coupling(instance.kind, lo, hi);
    return InjectedFault::coupling(instance.kind, hi, lo);
}

}  // namespace mtg::sim
