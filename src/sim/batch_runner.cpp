#include "sim/batch_runner.hpp"

#include <algorithm>

namespace mtg::sim {

using march::AddressOrder;
using march::MarchOp;
using march::MarchTest;
using march::OpKind;

namespace {

/// Faults packed per pass: 63 population lanes + the fault-free lane 0.
constexpr int kChunk = kLaneCount - 1;

/// Mask of the population lanes 1..count of a chunk.
constexpr LaneMask used_lanes(int count) {
    return (count == kChunk ? kAllLanes : (LaneMask{1} << (count + 1)) - 1) &
           ~LaneMask{1};
}

}  // namespace

BatchRunner::BatchRunner(const MarchTest& test, const RunOptions& opts)
    : test_(test), opts_(opts), expansions_(expansion_choices(test, opts)),
      sites_(read_sites(test)) {
    MTG_EXPECTS(opts.memory_size > 0);
    // Flat site id of each (element, op); -1 for writes/waits.
    site_id_.resize(test_.size());
    int next = 0;
    for (std::size_t e = 0; e < test_.size(); ++e) {
        site_id_[e].assign(test_[e].ops.size(), -1);
        for (std::size_t o = 0; o < test_[e].ops.size(); ++o)
            if (test_[e].ops[o].kind == OpKind::Read) site_id_[e][o] = next++;
    }
}

BatchRunner::ChunkResult BatchRunner::run_chunk(const InjectedFault* faults,
                                                int count,
                                                bool want_traces) const {
    MTG_EXPECTS(count > 0 && count <= kChunk);
    const int n = opts_.memory_size;
    const LaneMask used = used_lanes(count);

    ChunkResult out;
    out.detected = used;
    out.site_fail.assign(sites_.size(), used);
    if (want_traces)
        out.observation_fail.assign(sites_.size() * static_cast<std::size_t>(n),
                                    used);

    std::vector<LaneMask> site_now(sites_.size());
    std::vector<LaneMask> obs_now(
        want_traces ? sites_.size() * static_cast<std::size_t>(n) : 0);

    for (unsigned choice : expansions_) {
        PackedSimMemory memory(n);
        for (int i = 0; i < count; ++i)
            memory.inject(faults[i], LaneMask{1} << (i + 1));
        std::fill(site_now.begin(), site_now.end(), 0);
        std::fill(obs_now.begin(), obs_now.end(), 0);

        int any_seen = 0;
        for (std::size_t e = 0; e < test_.size(); ++e) {
            const auto& element = test_[e];
            bool desc = element.order == AddressOrder::Descending;
            if (element.order == AddressOrder::Any) {
                desc = ((choice >> any_seen) & 1u) != 0;
                ++any_seen;
            }
            for (int step = 0; step < n; ++step) {
                const int cell = desc ? n - 1 - step : step;
                for (std::size_t o = 0; o < element.ops.size(); ++o) {
                    const MarchOp& op = element.ops[o];
                    switch (op.kind) {
                        case OpKind::Write:
                            memory.write(cell, op.value);
                            break;
                        case OpKind::Wait:
                            memory.wait();
                            break;
                        case OpKind::Read: {
                            const auto got = memory.read(cell);
                            const LaneMask expected =
                                op.value ? kAllLanes : LaneMask{0};
                            // Only definite mismatches detect (X cannot be
                            // guaranteed to differ from the expected value).
                            const LaneMask mismatch =
                                got.known & (got.value ^ expected) & used;
                            if (!mismatch) break;
                            const auto sid = static_cast<std::size_t>(
                                site_id_[e][o]);
                            site_now[sid] |= mismatch;
                            if (want_traces)
                                obs_now[sid * static_cast<std::size_t>(n) +
                                        static_cast<std::size_t>(cell)] |=
                                    mismatch;
                            break;
                        }
                    }
                }
            }
        }

        LaneMask detected_now = 0;
        for (std::size_t s = 0; s < sites_.size(); ++s) {
            detected_now |= site_now[s];
            out.site_fail[s] &= site_now[s];
        }
        out.detected &= detected_now;
        for (std::size_t k = 0; k < obs_now.size(); ++k)
            out.observation_fail[k] &= obs_now[k];
        if (!want_traces && out.detected == 0) break;  // every lane escaped
    }
    return out;
}

std::vector<bool> BatchRunner::detects(
    const std::vector<InjectedFault>& population) const {
    std::vector<bool> result(population.size(), false);
    for (std::size_t base = 0; base < population.size(); base += kChunk) {
        const int count = static_cast<int>(
            std::min<std::size_t>(kChunk, population.size() - base));
        const ChunkResult chunk =
            run_chunk(population.data() + base, count, /*want_traces=*/false);
        for (int i = 0; i < count; ++i)
            result[base + static_cast<std::size_t>(i)] =
                ((chunk.detected >> (i + 1)) & 1u) != 0;
    }
    return result;
}

bool BatchRunner::detects_all(
    const std::vector<InjectedFault>& population) const {
    for (std::size_t base = 0; base < population.size(); base += kChunk) {
        const int count = static_cast<int>(
            std::min<std::size_t>(kChunk, population.size() - base));
        const ChunkResult chunk =
            run_chunk(population.data() + base, count, /*want_traces=*/false);
        if (chunk.detected != used_lanes(count)) return false;
    }
    return true;
}

std::vector<RunTrace> BatchRunner::run(
    const std::vector<InjectedFault>& population) const {
    const int n = opts_.memory_size;
    std::vector<RunTrace> result(population.size());
    for (std::size_t base = 0; base < population.size(); base += kChunk) {
        const int count = static_cast<int>(
            std::min<std::size_t>(kChunk, population.size() - base));
        const ChunkResult chunk =
            run_chunk(population.data() + base, count, /*want_traces=*/true);
        for (int i = 0; i < count; ++i) {
            const LaneMask lane = LaneMask{1} << (i + 1);
            RunTrace& trace = result[base + static_cast<std::size_t>(i)];
            trace.detected = (chunk.detected & lane) != 0;
            for (std::size_t s = 0; s < sites_.size(); ++s) {
                if (chunk.site_fail[s] & lane)
                    trace.failing_reads.push_back(sites_[s]);
                for (int cell = 0; cell < n; ++cell)
                    if (chunk.observation_fail[s * static_cast<std::size_t>(n) +
                                               static_cast<std::size_t>(cell)] &
                        lane)
                        trace.failing_observations.push_back(
                            {sites_[s], cell});
            }
        }
    }
    return result;
}

std::vector<InjectedFault> full_population(fault::FaultKind kind,
                                           int memory_size) {
    std::vector<InjectedFault> population;
    if (fault::is_two_cell(kind)) {
        population.reserve(static_cast<std::size_t>(memory_size) *
                           static_cast<std::size_t>(memory_size - 1));
        for (int a = 0; a < memory_size; ++a)
            for (int v = 0; v < memory_size; ++v)
                if (a != v)
                    population.push_back(InjectedFault::coupling(kind, a, v));
    } else {
        population.reserve(static_cast<std::size_t>(memory_size));
        for (int c = 0; c < memory_size; ++c)
            population.push_back(InjectedFault::single(kind, c));
    }
    return population;
}

}  // namespace mtg::sim
