#include "sim/batch_runner.hpp"

#include "fault/instance.hpp"
#include "fault/placement.hpp"
#include "sim/lane_dispatch.hpp"

namespace mtg::sim {

using march::MarchTest;

BatchRunner::BatchRunner(const MarchTest& test, const RunOptions& opts,
                         util::ThreadPool* pool, int lane_width)
    : width_(lane_width != 0 ? lane_width : active_lane_width()),
      adaptive_(lane_width == 0 && !lane_width_forced()) {
    MTG_EXPECTS(opts.memory_size > 0);
    MTG_EXPECTS(lane_width_supported(width_));
    plan_.test = test;
    plan_.opts = opts;
    plan_.pool = pool != nullptr ? pool : &util::ThreadPool::global();
    plan_.expansions = expansion_choices(test, opts);
    plan_.sites = read_sites(test);
    plan_.site_id = read_site_ids(test);
}

int BatchRunner::width_for(std::size_t population) const {
    return adaptive_ ? clamp_lane_width(width_, population) : width_;
}

LaneIsa BatchRunner::isa_for(std::size_t population) const {
    // Work items = total pass executions of the job; the zmm-vs-ymm
    // heuristic (resolve_lane_isa) keys off how long the job runs.
    return active_lane_isa(block_chunk_total<LaneBlock<8>>(population) *
                           plan_.expansions.size());
}

std::vector<bool> BatchRunner::detects(
    std::span<const InjectedFault> population) const {
    switch (width_for(population.size())) {
        case 4:
            return detail::sim_detects<LaneBlock<4>>(
                plan_, detail::sim_pass_w4(), population);
        case 8:
            return detail::sim_detects<LaneBlock<8>>(
                plan_, detail::sim_pass_w8(isa_for(population.size())),
                population);
        default:
            return detail::sim_detects<LaneMask>(plan_,
                                                 detail::sim_pass_w1(),
                                                 population);
    }
}

bool BatchRunner::detects_all(
    std::span<const InjectedFault> population) const {
    switch (width_for(population.size())) {
        case 4:
            return detail::sim_detects_all<LaneBlock<4>>(
                plan_, detail::sim_pass_w4(), population);
        case 8:
            return detail::sim_detects_all<LaneBlock<8>>(
                plan_, detail::sim_pass_w8(isa_for(population.size())),
                population);
        default:
            return detail::sim_detects_all<LaneMask>(
                plan_, detail::sim_pass_w1(), population);
    }
}

std::vector<RunTrace> BatchRunner::run(
    std::span<const InjectedFault> population) const {
    switch (width_for(population.size())) {
        case 4:
            return detail::sim_run<LaneBlock<4>>(plan_,
                                                 detail::sim_pass_w4(),
                                                 population);
        case 8:
            return detail::sim_run<LaneBlock<8>>(
                plan_, detail::sim_pass_w8(isa_for(population.size())),
                population);
        default:
            return detail::sim_run<LaneMask>(plan_, detail::sim_pass_w1(),
                                             population);
    }
}

std::vector<InjectedFault> full_population(fault::FaultKind kind,
                                           int memory_size) {
    std::vector<InjectedFault> population;
    if (memory_size <= 0) return population;
    if (fault::is_two_cell(kind)) {
        if (memory_size < 2) return population;  // no ordered pair exists
        population.reserve(static_cast<std::size_t>(memory_size) *
                           static_cast<std::size_t>(memory_size - 1));
        for (int a = 0; a < memory_size; ++a)
            for (int v = 0; v < memory_size; ++v)
                if (a != v)
                    population.push_back(InjectedFault::coupling(kind, a, v));
    } else {
        population.reserve(static_cast<std::size_t>(memory_size));
        for (int c = 0; c < memory_size; ++c)
            population.push_back(InjectedFault::single(kind, c));
    }
    return population;
}

std::vector<InjectedFault> full_population(
    const std::vector<fault::FaultKind>& kinds, int memory_size) {
    std::vector<InjectedFault> population;
    for (fault::FaultKind kind : kinds) {
        const std::vector<InjectedFault> placed =
            full_population(kind, memory_size);
        population.insert(population.end(), placed.begin(), placed.end());
    }
    return population;
}

InjectedFault place_instance(const fault::FaultInstance& instance,
                             int memory_size) {
    const auto [lo, hi] = fault::canonical_slots(memory_size);
    MTG_EXPECTS(lo != hi);
    if (!fault::is_two_cell(instance.kind))
        return InjectedFault::single(instance.kind, lo);
    if (fault::aggressor_at_lo(instance))
        return InjectedFault::coupling(instance.kind, lo, hi);
    return InjectedFault::coupling(instance.kind, hi, lo);
}

}  // namespace mtg::sim
