#pragma once

/// \file gts.hpp
/// Global Test Sequences (paper §4): the flat memory-operation string
/// obtained by concatenating the Test Patterns along the ATSP path.
///
/// Each symbol carries the paper's annotations: terminal marking (ŝ), the
/// Red/Blue colouring used by the March-generation rules, plus provenance
/// (which TP the op realises and in which role) that the rewrite and
/// March-generation phases rely on.

#include <string>
#include <vector>

#include "fault/test_pattern.hpp"
#include "fsm/abstract_op.hpp"

namespace mtg::core {

/// Role of a GTS symbol within its Test Pattern.
enum class SymbolRole : std::uint8_t {
    InitWrite,  ///< establishes the TP's initialisation state
    Excite,     ///< the TP's exciting operation E
    Observe,    ///< the TP's observing read O
};

/// Colour marks of the §4 rewrite formalism.
enum class Colour : std::uint8_t { None, Red, Blue };

/// One symbol of the GTS string.
struct GtsSymbol {
    fsm::AbstractOp op;
    SymbolRole role{SymbolRole::InitWrite};
    int tp_index{-1};  ///< index into the TP path (not the TPG node id)
    Colour colour{Colour::None};
    bool terminal{false};  ///< the paper's ŝ end-symbol marking

    /// "w0i", "[r1j]R", "^r0i" (^ marks terminal symbols).
    [[nodiscard]] std::string str() const;
};

/// The GTS: symbol string plus the TP chain it realises.
struct Gts {
    std::vector<GtsSymbol> symbols;
    std::vector<fault::TestPattern> chain;  ///< TPs in path order

    /// Plain operation view (annotations dropped) for the two-cell
    /// simulator.
    [[nodiscard]] std::vector<fsm::AbstractOp> ops() const;

    /// Number of memory operations (wait excluded).
    [[nodiscard]] int op_count() const;

    [[nodiscard]] std::string str() const;
};

/// Builds the GTS along a TP path: for each TP, emit the initialisation
/// writes not already satisfied by the running good-machine state (i-cell
/// writes first), then E, then O. Weight-0 edges contribute no writes, as
/// in the paper's §4 example.
[[nodiscard]] Gts concatenate_tps(const std::vector<fault::TestPattern>& path);

}  // namespace mtg::core
