#include "core/rewrite.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace mtg::core {

using fsm::Cell;

namespace {

/// Erases symbol at position k.
Gts without_symbol(const Gts& gts, std::size_t k) {
    Gts out = gts;
    out.symbols.erase(out.symbols.begin() + static_cast<std::ptrdiff_t>(k));
    return out;
}

}  // namespace

Gts reorder(Gts gts) {
    auto& symbols = gts.symbols;

    // Rules M1-M3: inside each maximal run of initialisation writes, order
    // cell-i writes before cell-j writes (stable).
    std::size_t k = 0;
    while (k < symbols.size()) {
        if (symbols[k].role != SymbolRole::InitWrite) {
            ++k;
            continue;
        }
        std::size_t end = k;
        while (end < symbols.size() &&
               symbols[end].role == SymbolRole::InitWrite)
            ++end;
        std::stable_sort(
            symbols.begin() + static_cast<std::ptrdiff_t>(k),
            symbols.begin() + static_cast<std::ptrdiff_t>(end),
            [](const GtsSymbol& a, const GtsSymbol& b) {
                return a.op.cell < b.op.cell;
            });
        k = end;
    }

    // Rule M4: colour cross-cell excite/observe pairs Red/Blue. The marks
    // flag subsequences that §4.3 rule 2 must keep inside one March element.
    for (std::size_t x = 0; x < symbols.size(); ++x) {
        if (symbols[x].role != SymbolRole::Excite) continue;
        for (std::size_t y = x + 1; y < symbols.size(); ++y) {
            if (symbols[y].tp_index != symbols[x].tp_index) continue;
            if (symbols[y].role != SymbolRole::Observe) continue;
            if (!symbols[x].op.is_wait() &&
                symbols[y].op.cell != symbols[x].op.cell) {
                symbols[x].colour = Colour::Red;
                symbols[y].colour = Colour::Blue;
            }
            break;
        }
    }

    // Termination: every symbol becomes terminal (ŝ).
    for (GtsSymbol& s : symbols) s.terminal = true;
    return gts;
}

Gts minimise(Gts gts, const GtsValidator& validator) {
    MTG_EXPECTS(validator != nullptr);
    MTG_EXPECTS(validator(gts) && "input GTS must already be acceptable");

    bool changed = true;
    while (changed) {
        changed = false;

        // Syntactic family: adjacent duplicate write/read on the same cell.
        for (std::size_t k = 0; k + 1 < gts.symbols.size(); ++k) {
            const GtsSymbol& a = gts.symbols[k];
            const GtsSymbol& b = gts.symbols[k + 1];
            if (a.op == b.op && a.role == SymbolRole::InitWrite &&
                b.role == SymbolRole::InitWrite) {
                Gts candidate = without_symbol(gts, k + 1);
                if (validator(candidate)) {
                    gts = std::move(candidate);
                    changed = true;
                    break;
                }
            }
        }
        if (changed) continue;

        // Gated deletion of initialisation writes (generalised
        // block-collapse): left-to-right, drop any init write whose removal
        // keeps the GTS acceptable.
        for (std::size_t k = 0; k < gts.symbols.size(); ++k) {
            if (gts.symbols[k].role != SymbolRole::InitWrite) continue;
            Gts candidate = without_symbol(gts, k);
            if (validator(candidate)) {
                gts = std::move(candidate);
                changed = true;
                break;
            }
        }
    }
    return gts;
}

bool is_minimal(const Gts& gts, const GtsValidator& validator) {
    for (std::size_t k = 0; k < gts.symbols.size(); ++k) {
        if (gts.symbols[k].role != SymbolRole::InitWrite) continue;
        if (validator(without_symbol(gts, k))) return false;
    }
    return true;
}

}  // namespace mtg::core
