#include "core/generator.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/march_builder.hpp"
#include "core/rewrite.hpp"
#include "core/test_pattern_graph.hpp"
#include "engine/engine.hpp"
#include "sim/two_cell_sim.hpp"
#include "util/contracts.hpp"

namespace mtg::core {

using fault::FaultInstance;
using fault::FaultKind;
using fault::TestPattern;
using fault::TpClass;
using march::MarchTest;

namespace {

/// True when executing `covering` necessarily exercises `covered`:
/// identical E and O, and every initialisation constraint of `covered` is
/// enforced (not merely allowed) by `covering`.
bool tp_subsumes(const TestPattern& covering, const TestPattern& covered) {
    if (covering.excite != covered.excite) return false;
    if (covering.observe != covered.observe) return false;
    const auto enforced = [&](Trit need, Trit have) {
        return !is_known(need) || need == have;
    };
    return enforced(covered.init.i, covering.init.i) &&
           enforced(covered.init.j, covering.init.j);
}

/// Cheap subsumption prefilter key: tp_subsumes demands exact (E, O)
/// equality, so only TPs sharing this signature can ever subsume each
/// other. Packs the op kind/site/value of E (plus its presence) and O
/// into one int.
int tp_signature(const TestPattern& tp) {
    const auto op_bits = [](const fsm::AbstractOp& op) {
        return (static_cast<int>(op.kind) << 2) |
               (static_cast<int>(op.cell) << 1) |
               static_cast<int>(op.value != 0);
    };
    const int excite_bits =
        tp.excite.has_value() ? (1 << 4) | op_bits(*tp.excite) : 0;
    return (excite_bits << 4) | op_bits(tp.observe);
}

/// Simulator check: the March test covers every placement of the target
/// list — one fail-fast all-kind Engine query instead of a
/// covers_everywhere call (and runner setup) per kind. The placed
/// population only depends on (kinds, memory_size), so the Engine's
/// population cache hands every candidate probe the same expansion.
bool march_valid(const MarchTest& test,
                 const std::vector<FaultKind>& kinds,
                 const sim::RunOptions& run) {
    if (test.empty()) return false;
    if (!sim::is_well_formed(test, run)) return false;
    return engine::Engine::global().covers_all(test, kinds, run);
}

/// Greedy deletion pass: removes single operations, then whole elements,
/// while the test remains valid. Guarantees block-level non-redundancy of
/// the final result.
MarchTest march_minimise_pass(MarchTest test,
                              const std::vector<FaultKind>& kinds,
                              const sim::RunOptions& run) {
    bool changed = true;
    while (changed) {
        changed = false;
        // Single-operation deletions.
        for (std::size_t e = 0; !changed && e < test.size(); ++e) {
            for (std::size_t o = 0; !changed && o < test[e].ops.size(); ++o) {
                std::vector<march::MarchElement> elements = test.elements();
                auto& ops = elements[e].ops;
                ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(o));
                if (ops.empty())
                    elements.erase(elements.begin() +
                                   static_cast<std::ptrdiff_t>(e));
                MarchTest candidate(elements);
                if (march_valid(candidate, kinds, run)) {
                    test = std::move(candidate);
                    changed = true;
                }
            }
        }
        // Whole-element deletions.
        for (std::size_t e = 0; e < test.size() && !changed; ++e) {
            std::vector<march::MarchElement> elements = test.elements();
            elements.erase(elements.begin() + static_cast<std::ptrdiff_t>(e));
            if (elements.empty()) continue;
            MarchTest candidate(elements);
            if (march_valid(candidate, kinds, run)) {
                test = std::move(candidate);
                changed = true;
            }
        }
    }
    return test;
}

/// Odometer over class alternative indices. Returns false when exhausted.
bool advance(std::vector<std::size_t>& digits,
             const std::vector<TpClass>& classes) {
    for (std::size_t k = 0; k < digits.size(); ++k) {
        if (++digits[k] < classes[k].alternatives.size()) return true;
        digits[k] = 0;
    }
    return false;
}

}  // namespace

std::string GenerationResult::summary() const {
    std::ostringstream os;
    os << test.str() << "  " << complexity << "n"
       << (valid ? "" : "  [INVALID]");
    return os.str();
}

Generator::Generator(GeneratorOptions options) : options_(std::move(options)) {}

GenerationResult Generator::generate_for(const std::string& list) const {
    return generate(fault::parse_fault_kinds(list));
}

GenerationResult Generator::generate(const std::vector<FaultKind>& kinds) const {
    if (kinds.empty()) throw std::invalid_argument("empty fault list");
    const auto t0 = std::chrono::steady_clock::now();

    GenerationResult result;

    // --- fault modelling: instances -> BFEs -> TPs + §5 classes ---------
    std::vector<TpClass> classes = fault::extract_tp_classes(kinds);

    // Mandatory TPs: alternatives of singleton classes.
    std::vector<TestPattern> mandatory;
    std::vector<FaultInstance> mandatory_instances;
    std::vector<TpClass> choice_classes;
    for (const TpClass& cls : classes) {
        MTG_ASSERT(!cls.alternatives.empty());
        if (cls.alternatives.size() == 1) {
            mandatory.push_back(cls.alternatives.front());
            mandatory_instances.push_back(cls.instance);
        } else {
            choice_classes.push_back(cls);
        }
    }

    // Cross-class dedup (reduces the §5 product): a choice class any of
    // whose alternatives is subsumed by a mandatory TP is already covered.
    if (options_.cross_class_dedup) {
        std::vector<TpClass> kept;
        for (const TpClass& cls : choice_classes) {
            bool covered = false;
            for (const TestPattern& alt : cls.alternatives) {
                for (const TestPattern& m : mandatory) {
                    if (tp_subsumes(m, alt)) {
                        covered = true;
                        break;
                    }
                }
                if (covered) break;
            }
            if (!covered) kept.push_back(cls);
        }
        choice_classes = std::move(kept);
        // Dedup mandatory TPs subsumed by other mandatory TPs. Subsumption
        // needs identical (E, O), so kept TPs are bucketed by that
        // signature and each candidate runs the full check only against
        // its own (typically tiny) bucket instead of every kept TP.
        std::vector<TestPattern> unique_mandatory;
        std::vector<FaultInstance> unique_instances;
        std::map<int, std::vector<std::size_t>> by_signature;
        for (std::size_t k = 0; k < mandatory.size(); ++k) {
            const int signature = tp_signature(mandatory[k]);
            auto& bucket = by_signature[signature];
            bool dup = false;
            for (const std::size_t m : bucket)
                if (tp_subsumes(unique_mandatory[m], mandatory[k])) {
                    dup = true;
                    break;
                }
            if (!dup) {
                bucket.push_back(unique_mandatory.size());
                unique_mandatory.push_back(mandatory[k]);
                unique_instances.push_back(mandatory_instances[k]);
            }
        }
        mandatory = std::move(unique_mandatory);
        mandatory_instances = std::move(unique_instances);
    }

    result.classes = classes;

    // All fault instances of the target list (for the GTS-level semantic
    // gate of §4.2), kept in move-to-front order: minimisation probes a
    // chain of shrinking candidates, and a candidate that drops a needed
    // op keeps failing on the same instance, so fronting the last failure
    // makes rejected probes fail on the first few gts_detects calls
    // instead of rescanning from instance 0. (Order never affects the
    // gate's verdict, only how fast a failure is found.)
    std::vector<FaultInstance> probe_order = fault::instantiate(kinds);

    // --- §5 enumeration over class alternatives -------------------------
    std::vector<std::size_t> digits(choice_classes.size(), 0);
    std::set<std::string> seen_tests;
    int combos = 0;
    bool have_best = false;

    auto consider_combination = [&](const std::vector<TestPattern>& tps,
                                    bool constrained) {
        TestPatternGraph tpg(tps);
        auto path = tpg.solve(constrained, &result.atsp_stats);
        if (!path) return;

        std::vector<TestPattern> chain;
        chain.reserve(path->order.size());
        for (int node : path->order)
            chain.push_back(tps[static_cast<std::size_t>(node)]);

        Gts raw = concatenate_tps(chain);
        Gts reordered = reorder(raw);
        const GtsValidator gate = [&](const Gts& g) {
            const auto ops = g.ops();
            if (!sim::gts_well_formed(ops)) return false;
            for (std::size_t i = 0; i < probe_order.size(); ++i)
                if (!sim::gts_detects(ops, probe_order[i])) {
                    // Move-to-front: the next shrinking probe almost
                    // always fails on the same instance.
                    std::rotate(probe_order.begin(),
                                probe_order.begin() +
                                    static_cast<std::ptrdiff_t>(i),
                                probe_order.begin() +
                                    static_cast<std::ptrdiff_t>(i + 1));
                    return false;
                }
            return true;
        };
        Gts minimised = gate(reordered) ? minimise(reordered, gate) : reordered;

        MarchTest synthesised = build_march(minimised);
        if (!seen_tests.insert(synthesised.str()).second) return;
        if (!march_valid(synthesised, kinds, options_.sim)) return;

        MarchTest final_test = synthesised;
        if (options_.march_minimise)
            final_test = march_minimise_pass(final_test, kinds, options_.sim);

        const int complexity = final_test.complexity();
        if (!have_best || complexity < result.complexity ||
            (complexity == result.complexity &&
             final_test.size() < result.test.size())) {
            have_best = true;
            result.test = final_test;
            result.test_unminimised = synthesised;
            result.complexity = complexity;
            result.valid = true;
            result.chain = chain;
            result.gts_raw = std::move(raw);
            result.gts_reordered = std::move(reordered);
            result.gts_minimised = std::move(minimised);
        }
    };

    while (true) {
        if (combos >= options_.max_class_combinations) break;
        ++combos;

        // Assemble the TP set for this combination, dropping duplicates.
        std::vector<TestPattern> tps = mandatory;
        for (std::size_t k = 0; k < choice_classes.size(); ++k) {
            const TestPattern& alt =
                choice_classes[k].alternatives[digits[k]];
            bool dup = false;
            for (const TestPattern& existing : tps)
                if (tp_subsumes(existing, alt)) {
                    dup = true;
                    break;
                }
            if (!dup) tps.push_back(alt);
        }
        MTG_ASSERT(!tps.empty());

        if (options_.constrain_start) consider_combination(tps, true);
        if (!options_.constrain_start || options_.try_both_start_modes)
            consider_combination(tps, false);

        if (choice_classes.empty() || !advance(digits, choice_classes)) break;
    }
    result.combinations_tried = combos;

    // --- §6 verdict ------------------------------------------------------
    if (result.valid)
        result.redundancy =
            setcover::analyse_redundancy(result.test, kinds, options_.sim);

    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return result;
}

}  // namespace mtg::core
