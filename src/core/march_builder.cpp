#include "core/march_builder.hpp"

#include <optional>

#include "util/contracts.hpp"

namespace mtg::core {

using fault::TestPattern;
using fsm::AbstractOp;
using fsm::Cell;
using march::AddressOrder;
using march::MarchOp;
using march::OpKind;

namespace {

/// A March element under construction.
struct Proto {
    AddressOrder order{AddressOrder::Any};  ///< Any until a rule anchors it
    std::vector<MarchOp> ops;

    [[nodiscard]] bool has_write() const {
        for (const MarchOp& op : ops)
            if (op.kind == OpKind::Write) return true;
        return false;
    }

    /// Value left in every cell by this element's writes; X when none.
    [[nodiscard]] Trit net() const {
        Trit value = Trit::X;
        for (const MarchOp& op : ops)
            if (op.kind == OpKind::Write) value = trit_from_bit(op.value);
        return value;
    }

    /// True when `op` occurs before the first write (a "leading read").
    [[nodiscard]] bool has_leading_read(const MarchOp& op) const {
        for (const MarchOp& existing : ops) {
            if (existing.kind == OpKind::Write) return false;
            if (existing == op) return true;
        }
        return false;
    }

    /// Order-constraint merge; false on conflict.
    bool constrain(AddressOrder required) {
        if (required == AddressOrder::Any) return true;
        if (order == AddressOrder::Any) {
            order = required;
            return true;
        }
        return order == required;
    }
};

class Builder {
public:
    Builder() { elements_.emplace_back(); }

    void place(const TestPattern& tp) {
        const bool cross = tp.excite && !tp.excite->is_wait() &&
                           tp.excite->cell != tp.observe.cell;
        if (cross) {
            place_cross(tp);
        } else {
            place_single(tp);
        }
    }

    [[nodiscard]] march::MarchTest finish() {
        march::MarchTest test;
        for (const Proto& proto : elements_) {
            if (proto.ops.empty()) continue;
            test.push_back(march::MarchElement(proto.order, proto.ops));
        }
        return test;
    }

private:
    std::vector<Proto> elements_;  // last entry is the open element
    Trit background_{Trit::X};     // uniform value before the open element

    Proto& open() { return elements_.back(); }

    /// Value every cell will hold once the open element has swept.
    [[nodiscard]] Trit value_after_open() const {
        const Trit net = elements_.back().net();
        return is_known(net) ? net : background_;
    }

    void close() {
        background_ = value_after_open();
        elements_.emplace_back();
    }

    void close_if_nonempty() {
        if (!open().ops.empty()) close();
    }

    // --- single-cell TPs (Rule 1 / Rule 5) ------------------------------

    /// Ops a same-cell TP appends for its observed cell: init write (when
    /// the running value differs), excite, observe read.
    [[nodiscard]] std::vector<MarchOp> single_ops(const TestPattern& tp,
                                                  Trit running) const {
        std::vector<MarchOp> ops;
        const Trit required = tp.init.get(tp.observe.cell);
        if (is_known(required) && running != required)
            ops.push_back(MarchOp::w(trit_bit(required)));
        if (tp.excite) {
            if (tp.excite->is_wait())
                ops.push_back(MarchOp::del());
            else if (tp.excite->is_read())
                // Disturbing-read excitation (RDF/DRDF): the exciting read
                // expects the good value.
                ops.push_back(MarchOp::r(tp.excite->value));
            else
                ops.push_back(MarchOp::w(tp.excite->value));
        }
        ops.push_back(MarchOp::r(tp.observe.value));
        return ops;
    }

    void place_single(const TestPattern& tp) {
        const Cell c = tp.observe.cell;
        const Trit other_required = tp.init.get(fsm::other(c));

        if (!is_known(other_required)) {
            // Genuinely single-cell: no order anchor, the element stays ⇕
            // unless a cross-cell TP constrains it later (Rule 5).
            append_single(tp);
            return;
        }

        // The TP constrains the companion cell (e.g. the aggressor state of
        // a CFst victim). Under sweep semantics, at the observed cell's
        // visit the companion holds either the pre-element background
        // (companion visited later) or the element's net value (companion
        // visited earlier). Pick a satisfiable variant, fixing the
        // background when needed.
        const AddressOrder companion_later =
            c == Cell::I ? AddressOrder::Ascending : AddressOrder::Descending;
        const AddressOrder companion_first =
            c == Cell::I ? AddressOrder::Descending : AddressOrder::Ascending;

        // Variant A: companion visited later, holds the background.
        {
            Proto probe = open();
            if (background_ == other_required &&
                probe.constrain(companion_later)) {
                const bool ok = open().constrain(companion_later);
                MTG_ASSERT(ok);
                append_single(tp);
                return;
            }
        }
        // Variant B: companion visited first, holds the element net after
        // this TP's ops are appended.
        {
            Proto probe = open();
            for (const MarchOp& op : single_ops(tp, value_after_open()))
                probe.ops.push_back(op);
            if (probe.net() == other_required &&
                probe.constrain(companion_first)) {
                const bool ok = open().constrain(companion_first);
                MTG_ASSERT(ok);
                append_single(tp);
                return;
            }
        }
        // Fallback: set the background to the companion's value, then use
        // variant A in a fresh element.
        if (value_after_open() != other_required) {
            close_if_nonempty();
            open().ops.push_back(MarchOp::w(trit_bit(other_required)));
        }
        close_if_nonempty();
        const bool ok = open().constrain(companion_later);
        MTG_ASSERT(ok);
        append_single(tp);
    }

    void append_single(const TestPattern& tp) {
        bool first = true;
        for (const MarchOp& op : single_ops(tp, value_after_open())) {
            // Share an identical trailing read left by a previous TP — but
            // never collapse ops *within* this TP (a DRDF needs both its
            // exciting and its observing read).
            if (first && op.kind == OpKind::Read && !open().ops.empty() &&
                open().ops.back() == op) {
                first = false;
                continue;
            }
            first = false;
            open().ops.push_back(op);
        }
    }

    // --- cross-cell TPs (Rules 2/3/4) -----------------------------------

    struct Candidate {
        int cost{0};
        int preference{0};  // lower wins on cost ties
        enum class Kind { WithinShare, WithinAppend, Across, Fresh } kind;
    };

    void place_cross(const TestPattern& tp) {
        const Cell a = tp.excite->cell;
        const Trit va = tp.init.get(a);
        const Trit vv = tp.init.get(tp.observe.cell);
        MTG_EXPECTS(is_known(vv));
        MTG_EXPECTS(trit_bit(vv) == tp.observe.value &&
                    "cross-cell observe must expect the victim background");

        std::optional<Candidate> best;
        if (auto c = try_within_share(tp)) consider(best, *c);
        if (auto c = try_within_append(tp)) consider(best, *c);
        if (auto c = try_across(tp)) consider(best, *c);
        // Fresh placement always works.
        Candidate fresh{fresh_cost(tp), 3, Candidate::Kind::Fresh};
        consider(best, fresh);

        switch (best->kind) {
            case Candidate::Kind::WithinShare: apply_within_share(tp); break;
            case Candidate::Kind::WithinAppend: apply_within_append(tp); break;
            case Candidate::Kind::Across: apply_across(tp); break;
            case Candidate::Kind::Fresh: apply_fresh(tp); break;
        }
        (void)va;
    }

    static void consider(std::optional<Candidate>& best, const Candidate& c) {
        if (!best || c.cost < best->cost ||
            (c.cost == best->cost && c.preference < best->preference))
            best = c;
    }

    /// Orientation visiting the aggressor before the victim.
    static AddressOrder aggressor_first(Cell a) {
        return a == Cell::I ? AddressOrder::Ascending
                            : AddressOrder::Descending;
    }
    /// Orientation visiting the aggressor after the victim.
    static AddressOrder aggressor_last(Cell a) {
        return a == Cell::I ? AddressOrder::Descending
                            : AddressOrder::Ascending;
    }

    [[nodiscard]] MarchOp excite_op(const TestPattern& tp) const {
        // A disturbing read excites with the good value as expectation.
        if (tp.excite->is_read()) return MarchOp::r(tp.excite->value);
        return MarchOp::w(tp.excite->value);
    }
    [[nodiscard]] MarchOp observe_op(const TestPattern& tp) const {
        return MarchOp::r(tp.observe.value);
    }

    /// T-within with every op already present: the open element contains the
    /// leading observe read and the excite write, the orientation fits, the
    /// backgrounds agree. Zero new ops.
    std::optional<Candidate> try_within_share(const TestPattern& tp) {
        Proto& element = open();
        const Trit vv = tp.init.get(tp.observe.cell);
        if (background_ != vv) return std::nullopt;
        if (!element.has_leading_read(observe_op(tp))) return std::nullopt;
        // The excite op must be present; the aggressor's pre-excite value is
        // the running value just before it.
        Trit running = background_;
        bool found = false;
        for (const MarchOp& op : element.ops) {
            if (op == excite_op(tp)) {
                const Trit va = tp.init.get(tp.excite->cell);
                if (!is_known(va) || va == running) found = true;
            }
            if (op.kind == OpKind::Write) running = trit_from_bit(op.value);
        }
        if (!found) return std::nullopt;
        Proto probe = element;
        if (!probe.constrain(aggressor_first(tp.excite->cell)))
            return std::nullopt;
        return Candidate{0, 0, Candidate::Kind::WithinShare};
    }

    void apply_within_share(const TestPattern& tp) {
        const bool ok = open().constrain(aggressor_first(tp.excite->cell));
        MTG_ASSERT(ok);
    }

    /// T-within appending to a write-free open element.
    std::optional<Candidate> try_within_append(const TestPattern& tp) {
        Proto& element = open();
        if (element.has_write()) return std::nullopt;
        const Trit vv = tp.init.get(tp.observe.cell);
        if (background_ != vv) return std::nullopt;
        Proto probe = element;
        if (!probe.constrain(aggressor_first(tp.excite->cell)))
            return std::nullopt;
        const Trit va = tp.init.get(tp.excite->cell);
        int cost = 1;  // the excite write
        if (!element.has_leading_read(observe_op(tp))) ++cost;
        if (is_known(va) && va != background_) ++cost;
        return Candidate{cost, 1, Candidate::Kind::WithinAppend};
    }

    void apply_within_append(const TestPattern& tp) {
        Proto& element = open();
        const bool ok = element.constrain(aggressor_first(tp.excite->cell));
        MTG_ASSERT(ok);
        if (!element.has_leading_read(observe_op(tp)))
            element.ops.push_back(observe_op(tp));
        const Trit va = tp.init.get(tp.excite->cell);
        if (is_known(va) && va != background_)
            element.ops.push_back(MarchOp::w(trit_bit(va)));
        element.ops.push_back(excite_op(tp));
    }

    /// T-across: excite as the final write of the open element (aggressor
    /// visited last), observe as the leading read of the next element.
    std::optional<Candidate> try_across(const TestPattern& tp) {
        Proto& element = open();
        const MarchOp excite = excite_op(tp);
        const Trit vv = tp.init.get(tp.observe.cell);
        Proto probe = element;
        if (!probe.constrain(aggressor_last(tp.excite->cell)))
            return std::nullopt;
        const bool shared =
            !element.ops.empty() && element.ops.back() == excite;
        // Aggressor pre-excite value: the value just before the (possibly
        // shared) final excite op.
        Trit pre = background_;
        const std::size_t limit =
            shared ? element.ops.size() - 1 : element.ops.size();
        for (std::size_t k = 0; k < limit; ++k)
            if (element.ops[k].kind == OpKind::Write)
                pre = trit_from_bit(element.ops[k].value);
        const Trit va = tp.init.get(tp.excite->cell);
        if (is_known(va) && va != pre) return std::nullopt;
        // Victim was already swept: it holds the element's net value (a
        // write excite becomes that net as the final write).
        const Trit net_after =
            excite.kind == OpKind::Write ? trit_from_bit(excite.value) : pre;
        if (vv != net_after) return std::nullopt;
        return Candidate{(shared ? 0 : 1) + 1, 2, Candidate::Kind::Across};
    }

    void apply_across(const TestPattern& tp) {
        Proto& element = open();
        const bool ok = element.constrain(aggressor_last(tp.excite->cell));
        MTG_ASSERT(ok);
        if (element.ops.empty() || element.ops.back() != excite_op(tp))
            element.ops.push_back(excite_op(tp));
        close();
        // The observe element must sweep the victim first = same direction
        // as the excite element.
        const bool ok2 = open().constrain(aggressor_last(tp.excite->cell));
        MTG_ASSERT(ok2);
        open().ops.push_back(observe_op(tp));
    }

    [[nodiscard]] int fresh_cost(const TestPattern& tp) const {
        const Trit vv = tp.init.get(tp.observe.cell);
        const Trit va = tp.init.get(tp.excite->cell);
        int cost = 2;  // leading read + excite write
        if (value_after_open() != vv) ++cost;  // background fix
        if (is_known(va) && va != vv) ++cost;  // aggressor pre-write
        return cost;
    }

    void apply_fresh(const TestPattern& tp) {
        const AddressOrder direction = aggressor_first(tp.excite->cell);
        const Trit vv = tp.init.get(tp.observe.cell);
        if (value_after_open() != vv) {
            close_if_nonempty();
            // A background element carrying write transitions can itself
            // excite coupling faults; sweeping it in the SAME direction as
            // the element it prepares makes the outcome deterministic:
            // below-aggressor corruption is overwritten by the victim's own
            // background write, above-aggressor corruption survives into the
            // next element where the leading read flags it.
            open().ops.push_back(MarchOp::w(trit_bit(vv)));
            const bool bg_ok = open().constrain(direction);
            MTG_ASSERT(bg_ok);
        }
        close_if_nonempty();
        Proto& element = open();
        const bool ok = element.constrain(direction);
        MTG_ASSERT(ok);
        element.ops.push_back(observe_op(tp));
        const Trit va = tp.init.get(tp.excite->cell);
        if (is_known(va) && va != background_)
            element.ops.push_back(MarchOp::w(trit_bit(va)));
        element.ops.push_back(excite_op(tp));
    }
};

}  // namespace

march::MarchTest build_march(const Gts& gts) {
    MTG_EXPECTS(!gts.chain.empty());
    Builder builder;
    for (const TestPattern& tp : gts.chain) builder.place(tp);
    return builder.finish();
}

}  // namespace mtg::core
