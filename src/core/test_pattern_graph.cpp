#include "core/test_pattern_graph.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace mtg::core {

using fault::TestPattern;
using fsm::PairState;

TestPatternGraph::TestPatternGraph(std::vector<TestPattern> patterns)
    : patterns_(std::move(patterns)) {
    MTG_EXPECTS(!patterns_.empty());
}

int TestPatternGraph::weight(int from, int to) const {
    MTG_EXPECTS(from >= 0 && from < size() && to >= 0 && to < size());
    const PairState source =
        patterns_[static_cast<std::size_t>(from)].observation_state();
    const PairState target = patterns_[static_cast<std::size_t>(to)].init;
    return fsm::write_distance(source, target);
}

int TestPatternGraph::start_cost(int v) const {
    MTG_EXPECTS(v >= 0 && v < size());
    return patterns_[static_cast<std::size_t>(v)].init_cost();
}

bool TestPatternGraph::uniform_start(int v) const {
    MTG_EXPECTS(v >= 0 && v < size());
    const PairState& init = patterns_[static_cast<std::size_t>(v)].init;
    if (!is_known(init.i) || !is_known(init.j)) return true;  // 0x, x1, xx...
    return init.i == init.j;  // 00 or 11
}

atsp::CostMatrix TestPatternGraph::cost_matrix() const {
    atsp::CostMatrix costs(size());
    for (int from = 0; from < size(); ++from)
        for (int to = 0; to < size(); ++to)
            if (from != to) costs.set(from, to, weight(from, to));
    return costs;
}

std::optional<atsp::Path> TestPatternGraph::solve(
    bool constrain_start, atsp::SolveStats* stats) const {
    atsp::PathOptions options;
    options.start_cost.reserve(static_cast<std::size_t>(size()));
    for (int v = 0; v < size(); ++v)
        options.start_cost.push_back(start_cost(v));
    if (constrain_start) {
        for (int v = 0; v < size(); ++v)
            if (uniform_start(v)) options.allowed_starts.push_back(v);
        if (options.allowed_starts.empty()) return std::nullopt;
    }
    return atsp::solve_shortest_path(cost_matrix(), options, stats);
}

std::string TestPatternGraph::str() const {
    std::ostringstream os;
    for (int v = 0; v < size(); ++v) {
        os << "TP" << v + 1 << " = "
           << patterns_[static_cast<std::size_t>(v)].str()
           << "  obs=" << patterns_[static_cast<std::size_t>(v)]
                              .observation_state()
                              .str()
           << "  start_cost=" << start_cost(v) << '\n';
    }
    os << "weights (row -> column):\n     ";
    for (int to = 0; to < size(); ++to) os << " TP" << to + 1;
    os << '\n';
    for (int from = 0; from < size(); ++from) {
        os << " TP" << from + 1 << ' ';
        for (int to = 0; to < size(); ++to) {
            if (from == to)
                os << "   -";
            else
                os << "   " << weight(from, to);
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace mtg::core
