#pragma once

/// \file generator.hpp
/// Top-level March test generator — the paper's end-to-end flow:
///
///   fault list -> FSM fault models -> BFEs/TPs (+ §5 equivalence classes)
///     -> Test Pattern Graph -> exact ATSP (minimum-length GTS, f.4.4
///     start constraint) -> rewrite phases (§4.1, §4.2) -> March test
///     (§4.3) -> fault-simulator validation + set-covering non-redundancy
///     (§6).
///
/// The §5 enumeration tries every combination of equivalence-class
/// alternatives (capped), solving one ATSP per combination, and keeps the
/// lowest-complexity March test that the fault simulator verifies.

#include <string>
#include <vector>

#include "atsp/branch_bound.hpp"
#include "core/gts.hpp"
#include "fault/fault_list.hpp"
#include "fault/test_pattern.hpp"
#include "march/march_test.hpp"
#include "setcover/coverage_matrix.hpp"
#include "sim/march_runner.hpp"

namespace mtg::core {

/// Generation options.
struct GeneratorOptions {
    /// Apply the paper's f.4.4 start constraint (first TP must initialise
    /// to a uniform background). When try_both_start_modes is set the
    /// unconstrained search also runs and the better result wins.
    bool constrain_start{true};
    bool try_both_start_modes{true};

    /// §5: cap on the number of equivalence-class combinations enumerated.
    int max_class_combinations{4096};

    /// Drop alternative classes already covered by a mandatory TP
    /// (cross-class dedup; reduces the §5 product E).
    bool cross_class_dedup{true};

    /// Post-synthesis March-level minimisation: greedily delete operations
    /// and elements while the simulator still confirms full coverage.
    bool march_minimise{true};

    /// Simulator settings used for validation.
    sim::RunOptions sim{};
};

/// Everything the generator produced, including the intermediate artifacts
/// of the winning §5 combination.
struct GenerationResult {
    march::MarchTest test;            ///< the generated March test
    int complexity{0};                ///< ops per cell ("kn")
    bool valid{false};                ///< simulator-confirmed full coverage

    std::vector<fault::TpClass> classes;     ///< §5 classes (after dedup)
    std::vector<fault::TestPattern> chain;   ///< winning TP order
    Gts gts_raw;                             ///< §4   concatenation
    Gts gts_reordered;                       ///< §4.1 output
    Gts gts_minimised;                       ///< §4.2 output
    march::MarchTest test_unminimised;       ///< §4.3 output pre-deletion

    int combinations_tried{0};        ///< §5 enumeration effort
    atsp::SolveStats atsp_stats;      ///< accumulated over all solves
    double seconds{0.0};              ///< wall-clock generation time

    setcover::RedundancyReport redundancy;  ///< §6 verdict on `test`

    /// One-line summary for tables.
    [[nodiscard]] std::string summary() const;
};

/// The generator. Stateless apart from its options; thread-compatible.
class Generator {
public:
    explicit Generator(GeneratorOptions options = {});

    /// Generates a March test covering every primitive in `kinds`.
    /// Throws std::invalid_argument on an empty list.
    [[nodiscard]] GenerationResult generate(
        const std::vector<fault::FaultKind>& kinds) const;

    /// Convenience: parse + generate, e.g. generate_for("SAF,TF,ADF").
    [[nodiscard]] GenerationResult generate_for(const std::string& list) const;

    [[nodiscard]] const GeneratorOptions& options() const { return options_; }

private:
    GeneratorOptions options_;
};

}  // namespace mtg::core
