#pragma once

/// \file march_builder.hpp
/// §4.3 March Test Generation: turns the (reordered, minimised) GTS into a
/// March test.
///
/// The construction follows the paper's rules with the semantics spelled
/// out in DESIGN.md §4.6:
///  - Rule 1 (element boundaries): an observation read that would otherwise
///    follow a write inside the current element opens a new element — a
///    victim's observing read must be a *leading* read of its element so
///    that, at sweep time, it sees the pre-element (possibly corrupted)
///    value rather than the element's own writes.
///  - Rule 2 (Red/Blue joining): a cross-cell excite and the reads serving
///    its observation stay in one element (template "T-within") or in two
///    consecutive equal-direction elements (template "T-across") — the two
///    realisations of an aggressor/victim pair under March sweep order.
///  - Rules 3/4: elements anchored by an excite on cell i march ⇑, on cell
///    j march ⇓ (the sweep must visit the aggressor in the right relative
///    position).
///  - Rule 5: elements with no cross-cell anchor stay ⇕ (either order).

#include "core/gts.hpp"
#include "march/march_test.hpp"

namespace mtg::core {

/// Synthesises a March test realising every TP of the GTS chain. The
/// result is structurally valid by construction; end-to-end fault coverage
/// is re-checked by the generator with the fault simulator.
[[nodiscard]] march::MarchTest build_march(const Gts& gts);

}  // namespace mtg::core
