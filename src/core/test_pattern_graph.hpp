#pragma once

/// \file test_pattern_graph.hpp
/// The Test Pattern Graph of paper §4: a strongly connected weighted
/// digraph with one node per Test Pattern. The weight of edge (s, t) is the
/// generalised Hamming distance (f.4.1) between the observation state of s
/// and the initialisation state of t — the number of write operations
/// needed to chain t after s.

#include <string>
#include <vector>

#include "atsp/instance.hpp"
#include "atsp/path.hpp"
#include "fault/test_pattern.hpp"

namespace mtg::core {

/// The TPG over a concrete TP selection (one alternative per equivalence
/// class, paper §5).
class TestPatternGraph {
public:
    /// Builds the complete graph over `patterns`.
    explicit TestPatternGraph(std::vector<fault::TestPattern> patterns);

    [[nodiscard]] int size() const {
        return static_cast<int>(patterns_.size());
    }
    [[nodiscard]] const std::vector<fault::TestPattern>& patterns() const {
        return patterns_;
    }

    /// f.4.1 edge weight.
    [[nodiscard]] int weight(int from, int to) const;

    /// Cold-start cost of node v (writes needed to initialise its TP from
    /// an uninitialised memory) — the dummy-start edge weight.
    [[nodiscard]] int start_cost(int v) const;

    /// True when TP v may start the tour under the paper's f.4.4
    /// constraint: its initialisation state must be reachable from a
    /// uniform background, i.e. it must not constrain the two cells to
    /// different values.
    [[nodiscard]] bool uniform_start(int v) const;

    /// ATSP cost matrix over the TPs (no dummy node).
    [[nodiscard]] atsp::CostMatrix cost_matrix() const;

    /// Minimum-weight Hamiltonian path (the GTS skeleton). When
    /// `constrain_start` is set, only uniform_start nodes may begin the
    /// path; returns nullopt if that excludes every node.
    [[nodiscard]] std::optional<atsp::Path> solve(bool constrain_start,
                                                  atsp::SolveStats* stats =
                                                      nullptr) const;

    /// Adjacency rendering used by the Figure-4 bench.
    [[nodiscard]] std::string str() const;

private:
    std::vector<fault::TestPattern> patterns_;
};

}  // namespace mtg::core
