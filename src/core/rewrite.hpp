#pragma once

/// \file rewrite.hpp
/// The GTS rewrite phases of paper §4.1 (reordering) and §4.2
/// (minimisation).
///
/// The source text of the paper renders the rule tables illegibly, so the
/// rules are reconstructed with conservative semantics (see DESIGN.md §4):
/// every minimisation step must preserve (a) well-formedness of the GTS on
/// the good machine and (b) guaranteed detection of every chained fault
/// instance on the two-cell simulator. Callers supply the semantic gate;
/// rule applications that would violate it are rolled back.

#include <functional>

#include "core/gts.hpp"

namespace mtg::core {

/// §4.1 GTS reordering:
///  - initialisation writes inside a maximal init-run are ordered cell-i
///    first (rules M1-M3: commuting writes toward their mates);
///  - the excite/observe pair of every TP whose two operations address
///    different cells is coloured Red/Blue (rule M4) — the marks later
///    drive March-element joining (§4.3 rule 2);
///  - all symbols become terminal (ŝ) when no rule applies any more.
[[nodiscard]] Gts reorder(Gts gts);

/// Semantic gate: returns true when the rewritten GTS is still acceptable.
using GtsValidator = std::function<bool(const Gts&)>;

/// §4.2 GTS minimisation: deletes redundant operations.
///  - syntactic rules: duplicate adjacent writes / reads on the same cell
///    collapse (Table 2 first family);
///  - gated deletion: initialisation writes are tentatively removed
///    left-to-right and kept out only when `validator` accepts the result
///    (Table 2 block-collapse family, generalised).
/// Excite and Observe symbols are never deleted.
[[nodiscard]] Gts minimise(Gts gts, const GtsValidator& validator);

/// Returns true when `gts` contains no symbol deletable under `validator`
/// (used by tests to show minimise() reaches a fixed point).
[[nodiscard]] bool is_minimal(const Gts& gts, const GtsValidator& validator);

}  // namespace mtg::core
