#include "core/gts.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace mtg::core {

using fault::TestPattern;
using fsm::AbstractOp;
using fsm::Cell;
using fsm::PairState;

std::string GtsSymbol::str() const {
    std::string body = op.str();
    if (terminal) body = "^" + body;
    switch (colour) {
        case Colour::Red: return "[" + body + "]R";
        case Colour::Blue: return "[" + body + "]B";
        case Colour::None: return body;
    }
    return body;
}

std::vector<AbstractOp> Gts::ops() const {
    std::vector<AbstractOp> plain;
    plain.reserve(symbols.size());
    for (const GtsSymbol& s : symbols) plain.push_back(s.op);
    return plain;
}

int Gts::op_count() const {
    int count = 0;
    for (const GtsSymbol& s : symbols)
        if (!s.op.is_wait()) ++count;
    return count;
}

std::string Gts::str() const {
    std::ostringstream os;
    for (std::size_t k = 0; k < symbols.size(); ++k) {
        if (k) os << ", ";
        os << symbols[k].str();
    }
    return os.str();
}

Gts concatenate_tps(const std::vector<TestPattern>& path) {
    Gts gts;
    gts.chain = path;
    PairState state = PairState::any();
    for (std::size_t k = 0; k < path.size(); ++k) {
        const TestPattern& tp = path[k];
        const int tp_index = static_cast<int>(k);
        // Initialisation writes for constrained-but-unsatisfied cells,
        // cell i first (the paper's example emits w0i before w0j).
        for (Cell c : {Cell::I, Cell::J}) {
            const Trit required = tp.init.get(c);
            if (!is_known(required)) continue;
            if (state.get(c) == required) continue;
            const AbstractOp w = AbstractOp::write(c, trit_bit(required));
            gts.symbols.push_back({w, SymbolRole::InitWrite, tp_index,
                                   Colour::None, false});
            state = state.after(w);
        }
        MTG_ASSERT(state.satisfies(tp.init));
        if (tp.excite) {
            gts.symbols.push_back({*tp.excite, SymbolRole::Excite, tp_index,
                                   Colour::None, false});
            state = state.after(*tp.excite);
        }
        gts.symbols.push_back({tp.observe, SymbolRole::Observe, tp_index,
                               Colour::None, false});
        // Reads do not change the good state.
    }
    return gts;
}

}  // namespace mtg::core
