#include "baseline/exhaustive.hpp"

#include <chrono>

#include "util/contracts.hpp"
#include "util/trit.hpp"

namespace mtg::baseline {

using march::AddressOrder;
using march::MarchElement;
using march::MarchOp;
using march::MarchTest;
using march::OpKind;

namespace {

/// Depth-first enumerator over March tests of a fixed complexity.
///
/// State kept incrementally:
///  - `elements`: finished elements;
///  - `current`: ops of the open element;
///  - `background`: uniform cell value before the open element;
///  - `running`: per-cell value inside the open element (background until
///    the first write, then the value of the latest write).
/// A read is only enumerated with the value the good machine would return
/// (`running`), which is exactly the transition-tree consistency pruning —
/// any other expected value gives an ill-formed test.
class Enumerator {
public:
    Enumerator(int complexity, const std::vector<fault::FaultKind>* kinds,
               const sim::RunOptions& run, long long max_nodes)
        : target_(complexity), kinds_(kinds), run_(run), max_nodes_(max_nodes) {}

    /// Runs the enumeration; returns the first covering test in
    /// enumeration order (tests of equal complexity are equivalent for the
    /// optimality argument).
    std::optional<MarchTest> run() {
        dfs(0, Trit::X, Trit::X);
        return found_;
    }

    [[nodiscard]] long long nodes() const { return nodes_; }
    [[nodiscard]] long long candidates() const { return candidates_; }
    [[nodiscard]] bool budget_exhausted() const { return out_of_budget_; }

private:
    const int target_;
    const std::vector<fault::FaultKind>* kinds_;  // null => count only
    const sim::RunOptions run_;
    const long long max_nodes_;

    std::vector<MarchElement> elements_;
    std::vector<MarchOp> current_;
    std::optional<MarchTest> found_;
    long long nodes_ = 0;
    long long candidates_ = 0;
    bool out_of_budget_ = false;

    void complete_candidate() {
        ++candidates_;
        if (!kinds_) return;
        MarchTest test(elements_);
        if (sim::is_well_formed(test, run_) &&
            sim::covers_all(test, *kinds_, run_))
            found_ = test;
    }

    /// Closes the open element under each address order and recurses /
    /// completes.
    template <typename Next>
    void close_current(Next&& next) {
        if (current_.empty()) {
            next();
            return;
        }
        for (AddressOrder order : {AddressOrder::Any, AddressOrder::Ascending,
                                   AddressOrder::Descending}) {
            elements_.emplace_back(order, current_);
            std::vector<MarchOp> saved;
            saved.swap(current_);
            next();
            current_.swap(saved);
            elements_.pop_back();
            if (found_ || out_of_budget_) return;
        }
    }

    void dfs(int used, Trit background, Trit running) {
        if (found_ || out_of_budget_) return;
        if (++nodes_ > max_nodes_) {
            out_of_budget_ = true;
            return;
        }
        if (used == target_) {
            close_current([&] { complete_candidate(); });
            return;
        }

        // Extend the open element with a write.
        for (int d = 0; d < 2; ++d) {
            // Skip writes that repeat the running value twice in a row —
            // such a test is never shorter than one without the duplicate.
            if (!current_.empty() && current_.back() == MarchOp::w(d)) continue;
            current_.push_back(MarchOp::w(d));
            dfs(used + 1, background, trit_from_bit(d));
            current_.pop_back();
            if (found_ || out_of_budget_) return;
        }

        // Extend with the (single) well-formed read.
        if (is_known(running)) {
            const MarchOp read = MarchOp::r(trit_bit(running));
            if (current_.empty() || !(current_.back() == read)) {
                current_.push_back(read);
                dfs(used + 1, background, running);
                current_.pop_back();
                if (found_ || out_of_budget_) return;
            }
        }

        // Close the element and start a new one (only when non-empty).
        if (!current_.empty()) {
            const Trit new_background = running;
            close_current([&] {
                dfs(used, new_background, new_background);
            });
        }
    }
};

}  // namespace

ExhaustiveResult exhaustive_search(const std::vector<fault::FaultKind>& kinds,
                                   const ExhaustiveOptions& options) {
    MTG_EXPECTS(!kinds.empty());
    const auto t0 = std::chrono::steady_clock::now();
    ExhaustiveResult result;
    for (int complexity = 1; complexity <= options.max_complexity;
         ++complexity) {
        Enumerator enumerator(complexity, &kinds, options.sim,
                              options.max_nodes - result.nodes_explored);
        auto test = enumerator.run();
        result.nodes_explored += enumerator.nodes();
        result.candidates_checked += enumerator.candidates();
        if (enumerator.budget_exhausted()) {
            result.budget_exhausted = true;
            break;
        }
        if (test) {
            result.test = std::move(test);
            break;
        }
    }
    result.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
}

long long count_candidates(int complexity, long long max_nodes) {
    Enumerator enumerator(complexity, nullptr, sim::RunOptions{}, max_nodes);
    (void)enumerator.run();
    return enumerator.candidates();
}

}  // namespace mtg::baseline
