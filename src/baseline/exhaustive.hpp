#pragma once

/// \file exhaustive.hpp
/// The prior-art baseline the paper improves upon (§2): exhaustive
/// enumeration of March tests in increasing complexity, in the spirit of
/// the van de Goor / Smit transition-tree generators [refs 2-4] with the
/// branch-and-bound pruning of Zarrineh et al. [ref 5].
///
/// Tests are enumerated by iterative deepening on complexity; partial
/// tests are pruned by incremental well-formedness (a read must match the
/// running background, exactly the transition-tree consistency rule).
/// Every complete candidate is checked against the fault simulator. The
/// search is exponential in the complexity bound — which is the paper's
/// argument for replacing it with the TPG/ATSP formulation.

#include <optional>

#include "fault/kinds.hpp"
#include "march/march_test.hpp"
#include "sim/march_runner.hpp"

namespace mtg::baseline {

/// Search limits.
struct ExhaustiveOptions {
    int max_complexity{6};          ///< deepest complexity tried
    long long max_nodes{50'000'000};///< enumeration-node budget
    sim::RunOptions sim{};          ///< validation settings
};

/// Outcome of a search.
struct ExhaustiveResult {
    std::optional<march::MarchTest> test;  ///< shortest covering test found
    long long nodes_explored{0};           ///< partial tests expanded
    long long candidates_checked{0};       ///< complete tests simulated
    bool budget_exhausted{false};          ///< stopped on max_nodes
    double seconds{0.0};
};

/// Finds a minimum-complexity March test covering `kinds` by exhaustive
/// enumeration, or reports failure within the limits. Guarantees: when a
/// test is returned, no March test of lower complexity (within the
/// enumerated grammar) covers the list — used by tests to certify the
/// optimality of the generator's results.
[[nodiscard]] ExhaustiveResult exhaustive_search(
    const std::vector<fault::FaultKind>& kinds,
    const ExhaustiveOptions& options = {});

/// Counts complete well-formed March tests of exactly `complexity` — the
/// size of the transition-tree level, used by the baseline bench to show
/// the exponential growth the paper criticises.
[[nodiscard]] long long count_candidates(int complexity,
                                         long long max_nodes = 50'000'000);

}  // namespace mtg::baseline
