#include "diagnosis/word_dictionary.hpp"

#include <sstream>
#include <utility>

#include "diagnosis/signature_bucketing.hpp"
#include "engine/engine.hpp"

namespace mtg::diagnosis {

using fault::FaultInstance;
using fault::FaultKind;
using march::MarchTest;
using word::Background;
using word::InjectedBitFault;
using word::WordRunOptions;

std::string WordSignature::str() const {
    if (failing.empty()) return "(escape)";
    std::ostringstream os;
    for (std::size_t k = 0; k < failing.size(); ++k) {
        if (k) os << ' ';
        os << 'B' << failing[k].background << ".E"
           << failing[k].site.element << '.' << failing[k].site.op << "@w"
           << failing[k].word << '#' << std::hex << failing[k].bits
           << std::dec;
    }
    return os.str();
}

WordSignature word_signature_of(const MarchTest& test,
                                const std::vector<Background>& backgrounds,
                                const InjectedBitFault& fault,
                                const WordRunOptions& opts) {
    return WordSignature{
        word::guaranteed_failing_observations(test, backgrounds, fault,
                                              opts)};
}

WordFaultDictionary WordFaultDictionary::build(
    const MarchTest& test, const std::vector<Background>& backgrounds,
    const std::vector<FaultKind>& kinds, const WordRunOptions& opts) {
    WordFaultDictionary dictionary;

    // One engine dictionary sweep over the placed population; each
    // instance's guaranteed observations become its dictionary signature.
    engine::Result sweep = engine::Engine::global().dictionary_sweep(
        test, backgrounds, kinds, opts);

    std::vector<WordSignature> signatures;
    signatures.reserve(sweep.instances.size());
    for (word::WordRunTrace& trace : sweep.word_traces)
        signatures.push_back(
            WordSignature{std::move(trace.failing_observations)});
    auto bucketed = detail::bucket_by_signature<WordDictionaryEntry>(
        sweep.instances, std::move(signatures));
    dictionary.instance_count_ = static_cast<int>(sweep.instances.size());
    dictionary.detected_count_ = bucketed.detected;
    dictionary.entries_ = std::move(bucketed.entries);
    dictionary.index_ = std::move(bucketed.index);
    return dictionary;
}

int WordFaultDictionary::distinguished_count() const {
    int count = 0;
    for (const WordDictionaryEntry& entry : entries_)
        if (entry.signature.detected() && entry.instances.size() == 1)
            ++count;
    return count;
}

double WordFaultDictionary::resolution() const {
    if (detected_count_ == 0) return 0.0;
    return static_cast<double>(distinguished_count()) /
           static_cast<double>(detected_count_);
}

std::vector<FaultInstance> WordFaultDictionary::diagnose(
    const WordSignature& observed) const {
    const auto it = index_.find(observed.str());
    if (it == index_.end()) return {};
    return entries_[it->second].instances;
}

std::vector<FaultInstance> WordFaultDictionary::diagnose_linear(
    const WordSignature& observed) const {
    for (const WordDictionaryEntry& entry : entries_)
        if (entry.signature == observed) return entry.instances;
    return {};
}

std::string WordFaultDictionary::str() const {
    std::ostringstream os;
    for (const WordDictionaryEntry& entry : entries_) {
        os << entry.signature.str() << " -> ";
        for (std::size_t k = 0; k < entry.instances.size(); ++k) {
            if (k) os << ", ";
            os << entry.instances[k].name();
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace mtg::diagnosis
