#include "diagnosis/word_dictionary.hpp"

#include <algorithm>
#include <sstream>

#include "word/word_batch_runner.hpp"

namespace mtg::diagnosis {

using fault::FaultInstance;
using fault::FaultKind;
using march::MarchTest;
using word::Background;
using word::InjectedBitFault;
using word::WordRunOptions;

std::string WordSignature::str() const {
    if (failing.empty()) return "(escape)";
    std::ostringstream os;
    for (std::size_t k = 0; k < failing.size(); ++k) {
        if (k) os << ' ';
        os << 'B' << failing[k].background << ".E"
           << failing[k].site.element << '.' << failing[k].site.op << "@w"
           << failing[k].word << '#' << std::hex << failing[k].bits
           << std::dec;
    }
    return os.str();
}

WordSignature word_signature_of(const MarchTest& test,
                                const std::vector<Background>& backgrounds,
                                const InjectedBitFault& fault,
                                const WordRunOptions& opts) {
    return WordSignature{
        word::guaranteed_failing_observations(test, backgrounds, fault,
                                              opts)};
}

WordFaultDictionary WordFaultDictionary::build(
    const MarchTest& test, const std::vector<Background>& backgrounds,
    const std::vector<FaultKind>& kinds, const WordRunOptions& opts) {
    WordFaultDictionary dictionary;
    const std::vector<FaultInstance> instances = fault::instantiate(kinds);

    // One packed trace sweep over the placed population; each instance's
    // guaranteed observations become its dictionary signature.
    std::vector<InjectedBitFault> population;
    population.reserve(instances.size());
    for (const FaultInstance& inst : instances)
        population.push_back(word::place_instance(inst, opts));
    std::vector<word::WordRunTrace> traces =
        word::WordBatchRunner(test, backgrounds, opts).run(population);

    for (std::size_t i = 0; i < instances.size(); ++i) {
        const FaultInstance& inst = instances[i];
        ++dictionary.instance_count_;
        WordSignature sig{std::move(traces[i].failing_observations)};
        if (sig.detected()) ++dictionary.detected_count_;
        auto it = std::find_if(
            dictionary.entries_.begin(), dictionary.entries_.end(),
            [&](const WordDictionaryEntry& e) { return e.signature == sig; });
        if (it == dictionary.entries_.end()) {
            dictionary.entries_.push_back({std::move(sig), {inst}});
        } else {
            it->instances.push_back(inst);
        }
    }
    std::sort(dictionary.entries_.begin(), dictionary.entries_.end(),
              [](const WordDictionaryEntry& a, const WordDictionaryEntry& b) {
                  return a.signature < b.signature;
              });
    return dictionary;
}

int WordFaultDictionary::distinguished_count() const {
    int count = 0;
    for (const WordDictionaryEntry& entry : entries_)
        if (entry.signature.detected() && entry.instances.size() == 1)
            ++count;
    return count;
}

double WordFaultDictionary::resolution() const {
    if (detected_count_ == 0) return 0.0;
    return static_cast<double>(distinguished_count()) /
           static_cast<double>(detected_count_);
}

std::vector<FaultInstance> WordFaultDictionary::diagnose(
    const WordSignature& observed) const {
    for (const WordDictionaryEntry& entry : entries_)
        if (entry.signature == observed) return entry.instances;
    return {};
}

std::string WordFaultDictionary::str() const {
    std::ostringstream os;
    for (const WordDictionaryEntry& entry : entries_) {
        os << entry.signature.str() << " -> ";
        for (std::size_t k = 0; k < entry.instances.size(); ++k) {
            if (k) os << ", ";
            os << entry.instances[k].name();
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace mtg::diagnosis
