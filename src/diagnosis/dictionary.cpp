#include "diagnosis/dictionary.hpp"

#include <sstream>
#include <utility>

#include "diagnosis/signature_bucketing.hpp"
#include "engine/engine.hpp"

namespace mtg::diagnosis {

using fault::FaultInstance;
using fault::FaultKind;
using march::MarchTest;
using sim::InjectedFault;

std::string Signature::str() const {
    if (failing.empty()) return "(escape)";
    std::ostringstream os;
    for (std::size_t k = 0; k < failing.size(); ++k) {
        if (k) os << ' ';
        os << 'E' << failing[k].site.element << '.' << failing[k].site.op
           << "@c" << failing[k].cell;
    }
    return os.str();
}

Signature signature_of(const MarchTest& test, const InjectedFault& fault,
                       const sim::RunOptions& opts) {
    return Signature{sim::guaranteed_failing_observations(test, fault, opts)};
}

FaultDictionary FaultDictionary::build(const MarchTest& test,
                                       const std::vector<FaultKind>& kinds,
                                       const sim::RunOptions& opts) {
    FaultDictionary dictionary;

    // One engine dictionary sweep over the placed population; each
    // instance's guaranteed observations become its dictionary signature.
    engine::Result sweep =
        engine::Engine::global().dictionary_sweep(test, kinds, opts);

    std::vector<Signature> signatures;
    signatures.reserve(sweep.instances.size());
    for (sim::RunTrace& trace : sweep.traces)
        signatures.push_back(Signature{std::move(trace.failing_observations)});
    auto bucketed = detail::bucket_by_signature<DictionaryEntry>(
        sweep.instances, std::move(signatures));
    dictionary.instance_count_ = static_cast<int>(sweep.instances.size());
    dictionary.detected_count_ = bucketed.detected;
    dictionary.entries_ = std::move(bucketed.entries);
    dictionary.index_ = std::move(bucketed.index);
    return dictionary;
}

int FaultDictionary::distinguished_count() const {
    int count = 0;
    for (const DictionaryEntry& entry : entries_)
        if (entry.signature.detected() && entry.instances.size() == 1) ++count;
    return count;
}

double FaultDictionary::resolution() const {
    if (detected_count_ == 0) return 0.0;
    return static_cast<double>(distinguished_count()) /
           static_cast<double>(detected_count_);
}

std::vector<FaultInstance> FaultDictionary::diagnose(
    const Signature& observed) const {
    const auto it = index_.find(observed.str());
    if (it == index_.end()) return {};
    return entries_[it->second].instances;
}

std::vector<FaultInstance> FaultDictionary::diagnose_linear(
    const Signature& observed) const {
    for (const DictionaryEntry& entry : entries_)
        if (entry.signature == observed) return entry.instances;
    return {};
}

std::string FaultDictionary::str() const {
    std::ostringstream os;
    for (const DictionaryEntry& entry : entries_) {
        os << entry.signature.str() << " -> ";
        for (std::size_t k = 0; k < entry.instances.size(); ++k) {
            if (k) os << ", ";
            os << entry.instances[k].name();
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace mtg::diagnosis
