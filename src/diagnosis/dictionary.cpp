#include "diagnosis/dictionary.hpp"

#include <algorithm>
#include <sstream>

#include "sim/batch_runner.hpp"

namespace mtg::diagnosis {

using fault::FaultInstance;
using fault::FaultKind;
using march::MarchTest;
using sim::InjectedFault;

std::string Signature::str() const {
    if (failing.empty()) return "(escape)";
    std::ostringstream os;
    for (std::size_t k = 0; k < failing.size(); ++k) {
        if (k) os << ' ';
        os << 'E' << failing[k].site.element << '.' << failing[k].site.op
           << "@c" << failing[k].cell;
    }
    return os.str();
}

Signature signature_of(const MarchTest& test, const InjectedFault& fault,
                       const sim::RunOptions& opts) {
    return Signature{sim::guaranteed_failing_observations(test, fault, opts)};
}

FaultDictionary FaultDictionary::build(const MarchTest& test,
                                       const std::vector<FaultKind>& kinds,
                                       const sim::RunOptions& opts) {
    FaultDictionary dictionary;
    const std::vector<FaultInstance> instances = fault::instantiate(kinds);

    // One batched pass over the placed population; each instance's
    // guaranteed observations become its dictionary signature.
    std::vector<InjectedFault> population;
    population.reserve(instances.size());
    for (const FaultInstance& inst : instances)
        population.push_back(sim::place_instance(inst, opts.memory_size));
    std::vector<sim::RunTrace> traces =
        sim::BatchRunner(test, opts).run(population);

    for (std::size_t i = 0; i < instances.size(); ++i) {
        const FaultInstance& inst = instances[i];
        ++dictionary.instance_count_;
        Signature sig{std::move(traces[i].failing_observations)};
        if (sig.detected()) ++dictionary.detected_count_;
        auto it = std::find_if(
            dictionary.entries_.begin(), dictionary.entries_.end(),
            [&](const DictionaryEntry& e) { return e.signature == sig; });
        if (it == dictionary.entries_.end()) {
            dictionary.entries_.push_back({std::move(sig), {inst}});
        } else {
            it->instances.push_back(inst);
        }
    }
    std::sort(dictionary.entries_.begin(), dictionary.entries_.end(),
              [](const DictionaryEntry& a, const DictionaryEntry& b) {
                  return a.signature < b.signature;
              });
    return dictionary;
}

int FaultDictionary::distinguished_count() const {
    int count = 0;
    for (const DictionaryEntry& entry : entries_)
        if (entry.signature.detected() && entry.instances.size() == 1) ++count;
    return count;
}

double FaultDictionary::resolution() const {
    if (detected_count_ == 0) return 0.0;
    return static_cast<double>(distinguished_count()) /
           static_cast<double>(detected_count_);
}

std::vector<FaultInstance> FaultDictionary::diagnose(
    const Signature& observed) const {
    for (const DictionaryEntry& entry : entries_)
        if (entry.signature == observed) return entry.instances;
    return {};
}

std::string FaultDictionary::str() const {
    std::ostringstream os;
    for (const DictionaryEntry& entry : entries_) {
        os << entry.signature.str() << " -> ";
        for (std::size_t k = 0; k < entry.instances.size(); ++k) {
            if (k) os << ", ";
            os << entry.instances[k].name();
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace mtg::diagnosis
