#pragma once

/// \file signature_bucketing.hpp
/// The bucket/sort/index machinery shared by FaultDictionary and
/// WordFaultDictionary — one implementation over both signature types so
/// the two build paths cannot drift (the same reason the expansion and
/// placement twins live in march/expansion.hpp and fault/placement.hpp).
///
/// Buckets instances by their signature's rendered string (the rendering
/// is an injective encoding of the observation list, so string equality ⇔
/// signature equality), sorts the buckets into the canonical
/// rendered-string order (operator<=> on both signature types compares by
/// str(), so this equals the signature order), and emits the
/// rendered-string → entry-index map diagnose() serves from. Each
/// signature is rendered exactly once: the bucket keys are reused for the
/// sort and for the final index instead of re-rendering after the sort.

#include <algorithm>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/instance.hpp"

namespace mtg::diagnosis::detail {

/// Result of bucketing: `entries` sorted by signature, `index` keyed by
/// the rendered signature, `detected` = instances with a non-empty
/// signature.
template <typename Entry>
struct Bucketed {
    std::vector<Entry> entries;
    std::unordered_map<std::string, std::size_t> index;
    int detected{0};
};

/// `signatures[i]` is the (moved-from afterwards) signature of
/// `instances[i]`.
template <typename Entry, typename Signature>
Bucketed<Entry> bucket_by_signature(
    const std::vector<fault::FaultInstance>& instances,
    std::vector<Signature> signatures) {
    Bucketed<Entry> out;
    std::vector<Entry> buckets;
    std::vector<std::string> rendered;  // aligned with `buckets`
    std::unordered_map<std::string, std::size_t> bucket_of;
    for (std::size_t i = 0; i < instances.size(); ++i) {
        std::string key = signatures[i].str();
        const auto [it, inserted] =
            bucket_of.try_emplace(std::move(key), buckets.size());
        if (inserted) {
            buckets.push_back({std::move(signatures[i]), {instances[i]}});
            rendered.push_back(it->first);
        } else {
            buckets[it->second].instances.push_back(instances[i]);
        }
    }

    std::vector<std::size_t> order(buckets.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return rendered[a] < rendered[b];
              });

    out.entries.reserve(buckets.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
        Entry& bucket = buckets[order[k]];
        if (bucket.signature.detected())
            out.detected += static_cast<int>(bucket.instances.size());
        out.index.emplace(std::move(rendered[order[k]]), k);
        out.entries.push_back(std::move(bucket));
    }
    return out;
}

}  // namespace mtg::diagnosis::detail
