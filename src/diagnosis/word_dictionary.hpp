#pragma once

/// \file word_dictionary.hpp
/// Word-path fault diagnosis by output tracing — the word-oriented
/// counterpart of dictionary.hpp. The signature of a bit fault under a
/// word test (bit test × background set) is its set of guaranteed failing
/// word observations: (background, read site, word address, failing bit
/// mask) entries stable across every ⇕ expansion. Signatures are built by
/// one packed WordBatchRunner::run() sweep over the placed instance
/// population (63·W faults per memory pass); the scalar
/// word::guaranteed_failing_observations stays available as the oracle
/// through word_signature_of.
///
/// At width 1 with the solid background a word test degenerates to the
/// bit test, and this dictionary reproduces the bit-path FaultDictionary
/// bucket-for-bucket ((background 0, site, word w, bits 0b1) ⇔ (site,
/// cell w)) — enforced by tests/word_dictionary_test.cpp.

#include <string>
#include <unordered_map>
#include <vector>

#include "fault/instance.hpp"
#include "march/march_test.hpp"
#include "word/word_trace.hpp"

namespace mtg::diagnosis {

/// Output trace of one bit fault under one word test, in the canonical
/// word-trace order (background, textual site, ascending word).
struct WordSignature {
    std::vector<word::WordObservation> failing;

    [[nodiscard]] bool detected() const { return !failing.empty(); }

    /// "B0.E1.0@w2#5 B1.E4.2@w3#1" style rendering (bit masks in hex).
    [[nodiscard]] std::string str() const;

    friend bool operator==(const WordSignature&,
                           const WordSignature&) = default;
    friend auto operator<=>(const WordSignature& a, const WordSignature& b) {
        return a.str() <=> b.str();
    }
};

/// Signature of a concrete injected bit fault, via the scalar oracle.
[[nodiscard]] WordSignature word_signature_of(
    const march::MarchTest& test,
    const std::vector<word::Background>& backgrounds,
    const word::InjectedBitFault& fault,
    const word::WordRunOptions& opts = {});

/// One dictionary bucket: all instances sharing a signature.
struct WordDictionaryEntry {
    WordSignature signature;
    std::vector<fault::FaultInstance> instances;
};

/// The fault dictionary of a word test over a fault list. Instances are
/// placed at the canonical (word, bit) positions of word::place_instance.
class WordFaultDictionary {
public:
    /// Builds the dictionary with one packed trace sweep.
    static WordFaultDictionary build(
        const march::MarchTest& test,
        const std::vector<word::Background>& backgrounds,
        const std::vector<fault::FaultKind>& kinds,
        const word::WordRunOptions& opts = {});

    [[nodiscard]] const std::vector<WordDictionaryEntry>& entries() const {
        return entries_;
    }

    /// Total instances considered / detected (non-empty signature).
    [[nodiscard]] int instance_count() const { return instance_count_; }
    [[nodiscard]] int detected_count() const { return detected_count_; }

    /// Instances whose signature is unique — fully diagnosed by the test.
    [[nodiscard]] int distinguished_count() const;

    /// distinguished / detected; 0 when nothing is detected.
    [[nodiscard]] double resolution() const;

    /// All instances compatible with an observed signature (empty when the
    /// signature is unknown to the dictionary). O(1): hash lookup of the
    /// rendered signature (the rendering is an injective encoding of the
    /// observation list, so string equality ⇔ signature equality).
    [[nodiscard]] std::vector<fault::FaultInstance> diagnose(
        const WordSignature& observed) const;

    /// The original linear bucket scan, kept as the reference path the
    /// hash lookup is differentially tested against.
    [[nodiscard]] std::vector<fault::FaultInstance> diagnose_linear(
        const WordSignature& observed) const;

    /// Table rendering: signature -> instance names.
    [[nodiscard]] std::string str() const;

private:
    std::vector<WordDictionaryEntry> entries_;  // sorted by signature
    /// Rendered signature -> index into entries_.
    std::unordered_map<std::string, std::size_t> index_;
    int instance_count_{0};
    int detected_count_{0};
};

}  // namespace mtg::diagnosis
