#pragma once

/// \file dictionary.hpp
/// Fault diagnosis by output tracing, after the paper's reference [6]
/// (Niggemeyer, Redeker, Rudnick — "Diagnostic Testing of Embedded
/// Memories based on Output Tracing"): the *signature* of a fault under a
/// March test is the set of read operations that observe it. A fault
/// dictionary maps signatures to fault instances; its *resolution* measures
/// how many instances the test distinguishes — the diagnostic quality
/// metric that separates e.g. PMOVI from March C-.

#include <string>
#include <unordered_map>
#include <vector>

#include "fault/instance.hpp"
#include "march/march_test.hpp"
#include "sim/march_runner.hpp"

namespace mtg::diagnosis {

/// Output trace of one fault under one March test: the (read site, failing
/// address) observations with a guaranteed mismatch (stable across ⇕
/// expansions), in execution order. Address-awareness is what lets the
/// dictionary separate faults that fail the same reads at different cells
/// (e.g. the two roles of a decoder-map fault).
struct Signature {
    std::vector<sim::Observation> failing;

    [[nodiscard]] bool detected() const { return !failing.empty(); }

    /// "E1.0@c2 E4.2@c5" style rendering.
    [[nodiscard]] std::string str() const;

    friend bool operator==(const Signature&, const Signature&) = default;
    friend auto operator<=>(const Signature& a, const Signature& b) {
        return a.str() <=> b.str();
    }
};

/// Signature of a concrete injected fault.
[[nodiscard]] Signature signature_of(const march::MarchTest& test,
                                     const sim::InjectedFault& fault,
                                     const sim::RunOptions& opts = {});

/// One dictionary bucket: all instances sharing a signature.
struct DictionaryEntry {
    Signature signature;
    std::vector<fault::FaultInstance> instances;
};

/// The fault dictionary of a March test over a fault list. Instances are
/// placed at the canonical cells used by the §6 coverage matrix.
class FaultDictionary {
public:
    /// Builds the dictionary (one simulation sweep per instance).
    static FaultDictionary build(const march::MarchTest& test,
                                 const std::vector<fault::FaultKind>& kinds,
                                 const sim::RunOptions& opts = {});

    [[nodiscard]] const std::vector<DictionaryEntry>& entries() const {
        return entries_;
    }

    /// Total instances considered / detected (non-empty signature).
    [[nodiscard]] int instance_count() const { return instance_count_; }
    [[nodiscard]] int detected_count() const { return detected_count_; }

    /// Instances whose signature is unique — fully diagnosed by the test.
    [[nodiscard]] int distinguished_count() const;

    /// distinguished / detected; 0 when nothing is detected. The
    /// diagnostic-resolution metric of [6].
    [[nodiscard]] double resolution() const;

    /// All instances compatible with an observed signature (empty when the
    /// signature is unknown to the dictionary). O(1): hash lookup of the
    /// rendered signature (the rendering is an injective encoding of the
    /// observation list, so string equality ⇔ signature equality).
    [[nodiscard]] std::vector<fault::FaultInstance> diagnose(
        const Signature& observed) const;

    /// The original linear bucket scan, kept as the reference path the
    /// hash lookup is differentially tested against.
    [[nodiscard]] std::vector<fault::FaultInstance> diagnose_linear(
        const Signature& observed) const;

    /// Table rendering: signature -> instance names.
    [[nodiscard]] std::string str() const;

private:
    std::vector<DictionaryEntry> entries_;  // sorted by signature
    /// Rendered signature -> index into entries_.
    std::unordered_map<std::string, std::size_t> index_;
    int instance_count_{0};
    int detected_count_{0};
};

}  // namespace mtg::diagnosis
