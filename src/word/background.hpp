#pragma once

/// \file background.hpp
/// Data backgrounds for word-oriented memories.
///
/// The paper's model (like all March theory) is bit-oriented; real SRAMs
/// read and write W-bit words. The standard lift [van de Goor & van de
/// Wiel] re-runs a bit-oriented March test once per *data background* b:
/// every w0 becomes "write b", w1 "write ~b", r0 "read, expect b", r1
/// "read, expect ~b". Intra-word coupling faults between bits i and j are
/// sensitised only under a background with b_i != b_j, so the background
/// set must distinguish every bit pair: the log2(W)+1 "binary counting"
/// backgrounds (solid 0, 0101.., 0011.., 00001111..) are the classical
/// minimal such set.

#include <cstdint>
#include <string>
#include <vector>

namespace mtg::word {

/// A W-bit data background, LSB = bit 0.
struct Background {
    int width{1};
    std::uint64_t bits{0};

    /// Value of bit `b` (0 or 1).
    [[nodiscard]] int bit(int b) const;

    /// Bitwise complement within the word width.
    [[nodiscard]] Background complement() const;

    /// "00001111" (MSB first).
    [[nodiscard]] std::string str() const;

    friend bool operator==(const Background&, const Background&) = default;
};

/// The binary-counting background set for word width W (a power of two,
/// 1..64): the solid background plus log2(W) alternating patterns.
/// Guarantees: for every bit pair (i, j), some background separates them.
[[nodiscard]] std::vector<Background> counting_backgrounds(int width);

/// Just the solid all-zero background (the naive, insufficient choice).
[[nodiscard]] std::vector<Background> solid_background(int width);

/// True when for every pair of distinct bit positions some background in
/// the set assigns them different values — the condition for intra-word
/// coupling coverage.
[[nodiscard]] bool separates_all_bit_pairs(const std::vector<Background>& set);

}  // namespace mtg::word
