#pragma once

/// \file packed_word_memory.hpp
/// Bit-parallel counterpart of WordMemory: 64·W independent bit-fault
/// instances are simulated at once against the same word-oriented RAM.
///
/// Packing layout: the memory holds words × width bit positions; every bit
/// position owns a `value` and a `known` lane block (W plane words, see
/// lane_block.hpp), lane l of a block belonging to simulation lane l — the
/// same value/known plane-pair scheme sim::PackedSimMemoryT uses for
/// bit-oriented cells, lifted to the (word, bit) grid. A whole-word write
/// touches `width` block pairs with a handful of bitwise operations each;
/// a whole-word read returns one {value, known} lane block per bit. Bit 0
/// of every plane word is left fault-free as the reference by convention,
/// which keeps each plane word bit-identical to the scalar W=1 path.
///
/// Word semantics mirror the scalar WordMemory exactly: writes resolve
/// every bit's own value first (phase 1), store the word, and only then
/// apply coupling effects of the aggressor-bit transitions (phase 2), so
/// an intra-word victim written in the same cycle is corrupted after its
/// own write; AfMap redirects whole-word accesses (word-level decoders
/// fail for whole words), and intra-word AfMap is inert, as in the scalar
/// model. Per-fault coupling/static/map entries are word-sparse (one lane
/// lives in one plane word), so their cost stays scalar at any width.
///
/// Restriction: at most ONE injected fault per lane (multi-fault
/// composition is injection-order-dependent and has no bitwise
/// equivalent). WordMemory remains the multi-fault oracle;
/// tests/word_batch_test.cpp proves lane-for-lane equivalence against it.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/lane_block.hpp"
#include "word/word_memory.hpp"

namespace mtg::word {

/// One bit per simulation lane; packing helpers shared with the
/// bit-oriented kernel.
using sim::block_lane_count;
using sim::chunk_count;
using sim::for_each_block_word;
using sim::kAllLanes;
using sim::kChunkLanes;
using sim::kLaneCount;
using sim::LaneBlock;
using sim::LaneMask;
using sim::used_lanes;

/// words × width RAM simulating up to 64·W bit-fault instances in
/// parallel. All bits start uninitialised (X) in every lane.
template <typename Block>
class PackedWordMemoryT {
public:
    PackedWordMemoryT(int words, int width)
        : words_(words), width_(width),
          value_(static_cast<std::size_t>(words) *
                     static_cast<std::size_t>(width),
                 sim::block_zero<Block>()),
          known_(value_.size(), sim::block_zero<Block>()),
          single_(value_.size()),
          coupling_(static_cast<std::size_t>(words)),
          afmap_(static_cast<std::size_t>(words)) {
        MTG_EXPECTS(words > 0);
        MTG_EXPECTS(width >= 1 && width <= 64);
    }

    [[nodiscard]] int words() const { return words_; }
    [[nodiscard]] int width() const { return width_; }

    /// Re-arms the memory for a fresh pass (possibly a new geometry):
    /// every bit back to X, every fault forgotten, every allocation kept
    /// at its high-water capacity. Dirty-index lists bound the cost by
    /// the bit positions faults actually touched, so the batch kernels'
    /// thread-local scratch memories pay no per-pass malloc traffic for
    /// the 63·W injects per chunk (ROADMAP SIMD follow-on (a)).
    void reset(int words, int width) {
        MTG_EXPECTS(words > 0);
        MTG_EXPECTS(width >= 1 && width <= 64);
        for (std::size_t at : single_dirty_) single_[at] = SingleBitMasks{};
        single_dirty_.clear();
        for (std::size_t w : coupling_dirty_) coupling_[w].clear();
        coupling_dirty_.clear();
        for (std::size_t w : afmap_dirty_) afmap_[w].clear();
        afmap_dirty_.clear();
        static_.clear();
        occupied_ = sim::block_zero<Block>();
        words_ = words;
        width_ = width;
        const std::size_t bits = static_cast<std::size_t>(words) *
                                 static_cast<std::size_t>(width);
        if (bits != value_.size()) {
            value_.resize(bits);
            known_.resize(bits);
            single_.resize(bits);
        }
        const auto word_count = static_cast<std::size_t>(words);
        if (word_count != coupling_.size()) {
            coupling_.resize(word_count);
            afmap_.resize(word_count);
        }
        std::fill(value_.begin(), value_.end(), sim::block_zero<Block>());
        std::fill(known_.begin(), known_.end(), sim::block_zero<Block>());
    }

    /// Injects `fault` into every lane of `lanes`. Lanes must not already
    /// hold a fault (one-fault-per-lane restriction).
    void inject(const InjectedBitFault& fault, Block lanes) {
        const std::size_t a = index(fault.a);
        MTG_EXPECTS(sim::block_none(occupied_ & lanes));  // one per lane
        occupied_ |= lanes;

        if (!fault::is_two_cell(fault.kind)) single_dirty_.push_back(a);
        auto& s = single_[a];
        switch (fault.kind) {
            case fault::FaultKind::Saf0: s.saf0 |= lanes; return;
            case fault::FaultKind::Saf1: s.saf1 |= lanes; return;
            case fault::FaultKind::TfUp: s.tf_up |= lanes; return;
            case fault::FaultKind::TfDown: s.tf_down |= lanes; return;
            case fault::FaultKind::Wdf0: s.wdf0 |= lanes; return;
            case fault::FaultKind::Wdf1: s.wdf1 |= lanes; return;
            case fault::FaultKind::Rdf0: s.rdf0 |= lanes; return;
            case fault::FaultKind::Rdf1: s.rdf1 |= lanes; return;
            case fault::FaultKind::Drdf0: s.drdf0 |= lanes; return;
            case fault::FaultKind::Drdf1: s.drdf1 |= lanes; return;
            case fault::FaultKind::Irf0: s.irf0 |= lanes; return;
            case fault::FaultKind::Irf1: s.irf1 |= lanes; return;
            case fault::FaultKind::Drf0: s.drf0 |= lanes; return;
            case fault::FaultKind::Drf1: s.drf1 |= lanes; return;
            case fault::FaultKind::CfinUp:
            case fault::FaultKind::CfinDown:
            case fault::FaultKind::CfidUp0:
            case fault::FaultKind::CfidUp1:
            case fault::FaultKind::CfidDown0:
            case fault::FaultKind::CfidDown1:
            case fault::FaultKind::Af:
                coupling_dirty_.push_back(
                    static_cast<std::size_t>(fault.a.word));
                for_each_block_word(lanes, [&](int w, LaneMask m) {
                    coupling_[static_cast<std::size_t>(fault.a.word)]
                        .push_back({fault.kind, fault.a.bit, index(fault.b),
                                    w, m});
                });
                return;
            case fault::FaultKind::CfstS0F0:
                push_static(a, index(fault.b), false, false, lanes);
                return;
            case fault::FaultKind::CfstS0F1:
                push_static(a, index(fault.b), false, true, lanes);
                return;
            case fault::FaultKind::CfstS1F0:
                push_static(a, index(fault.b), true, false, lanes);
                return;
            case fault::FaultKind::CfstS1F1:
                push_static(a, index(fault.b), true, true, lanes);
                return;
            case fault::FaultKind::AfMap:
                // Word-level decoder fault; intra-word AfMap is inert in
                // the scalar model, so it stays inert here too.
                (void)index(fault.b);
                if (!fault.intra_word()) {
                    afmap_dirty_.push_back(
                        static_cast<std::size_t>(fault.a.word));
                    for_each_block_word(lanes, [&](int w, LaneMask m) {
                        afmap_[static_cast<std::size_t>(fault.a.word)]
                            .push_back({fault.b.word, w, m});
                    });
                }
                return;
        }
        MTG_ASSERT(false && "unhandled fault kind");
    }

    /// Per-lane outcome of one bit of a word read: lane l of `value` is
    /// the value lane l sees, valid only where lane l of `known` is set.
    struct ReadResult {
        Block value{};
        Block known{};
    };

    /// Writes the W-bit `value` to `word` in every lane, applying fault
    /// effects (the written word is the same for all lanes; the stored
    /// result differs per lane).
    void write(int word, std::uint64_t value) {
        MTG_EXPECTS(word >= 0 && word < words_);
        const auto w = static_cast<std::size_t>(word);
        const std::size_t base = w * static_cast<std::size_t>(width_);

        // Decoder-map lanes: the whole word access lands on the victim
        // word. Entries are word-sparse within the lane block.
        Block redirected = sim::block_zero<Block>();
        for (const MapEntry& m : afmap_[w]) {
            const std::size_t vbase = static_cast<std::size_t>(m.victim_word) *
                                      static_cast<std::size_t>(width_);
            for (int b = 0; b < width_; ++b) {
                const LaneMask dword =
                    ((value >> b) & 1u) ? kAllLanes : LaneMask{0};
                LaneMask& vv = sim::block_word_ref(
                    value_[vbase + static_cast<std::size_t>(b)], m.word);
                vv = (vv & ~m.lanes) | (dword & m.lanes);
                sim::block_word_ref(
                    known_[vbase + static_cast<std::size_t>(b)], m.word) |=
                    m.lanes;
            }
            sim::block_word_ref(redirected, m.word) |= m.lanes;
        }
        const Block active = ~redirected;

        // Phase 1: per-bit effective values (single-bit effects on own
        // bit). The pre-write planes are captured first so phase 2 can
        // derive the aggressor transitions of this whole-word store.
        Block old_v[64];
        Block old_k[64];
        for (int b = 0; b < width_; ++b) {
            old_v[b] = value_[base + static_cast<std::size_t>(b)];
            old_k[b] = known_[base + static_cast<std::size_t>(b)];
        }

        for (int b = 0; b < width_; ++b) {
            const std::size_t at = base + static_cast<std::size_t>(b);
            const int d = static_cast<int>((value >> b) & 1u);
            const Block dmask = sim::block_fill<Block>(d != 0);
            const Block old0 = old_k[b] & ~old_v[b];
            const Block old1 = old_k[b] & old_v[b];

            // The single-bit masks are disjoint lane-wise (one fault per
            // lane), so sequential application is exact.
            const SingleBitMasks& s = single_[at];
            Block eff = dmask;
            eff = (eff & ~s.saf0) | s.saf1;
            if (d == 1) {
                eff &= ~(s.tf_up & old0);  // 0 -> 1 transition fails
                eff &= ~(s.wdf1 & old1);   // w1 over a 1 flips the bit to 0
            } else {
                eff |= s.tf_down & old1;  // 1 -> 0 transition fails
                eff |= s.wdf0 & old0;     // w0 over a 0 flips the bit to 1
            }

            value_[at] = (old_v[b] & ~active) | (eff & active);
            known_[at] |= active;
        }

        // Phase 2: coupling sensitised by the aggressor-bit transitions of
        // this store, applied after the whole word is written. Per-fault
        // entries touch one plane word each.
        for (const CouplingEntry& c : coupling_[w]) {
            const int b = c.aggressor_bit;
            const std::size_t at = base + static_cast<std::size_t>(b);
            const int bw = c.word;
            const LaneMask new_v = sim::block_word(value_[at], bw);
            const LaneMask new_k = sim::block_word(known_[at], bw);
            const LaneMask ov = sim::block_word(old_v[b], bw);
            const LaneMask ok = sim::block_word(old_k[b], bw);
            const LaneMask rising = ok & ~ov & new_k & new_v;
            const LaneMask falling = ok & ov & new_k & ~new_v;
            const std::size_t v = c.victim;
            LaneMask t = 0;
            switch (c.kind) {
                case fault::FaultKind::CfinUp:
                    t = c.lanes & rising;
                    sim::block_word_ref(value_[v], bw) ^=
                        t & sim::block_word(known_[v], bw);  // X stays X
                    continue;
                case fault::FaultKind::CfinDown:
                    t = c.lanes & falling;
                    sim::block_word_ref(value_[v], bw) ^=
                        t & sim::block_word(known_[v], bw);
                    continue;
                case fault::FaultKind::CfidUp0:
                case fault::FaultKind::CfidUp1:
                    t = c.lanes & rising;
                    break;
                case fault::FaultKind::CfidDown0:
                case fault::FaultKind::CfidDown1:
                    t = c.lanes & falling;
                    break;
                case fault::FaultKind::Af:
                    t = c.lanes & sim::block_word(active, bw);
                    break;
                default:
                    MTG_ASSERT(false && "not a coupling kind");
                    break;
            }
            if (!t) continue;
            switch (c.kind) {
                case fault::FaultKind::CfidUp0:
                case fault::FaultKind::CfidDown0:
                    sim::block_word_ref(value_[v], bw) &= ~t;
                    break;
                case fault::FaultKind::CfidUp1:
                case fault::FaultKind::CfidDown1:
                    sim::block_word_ref(value_[v], bw) |= t;
                    break;
                case fault::FaultKind::Af: {
                    // Shorted decoder: the victim tracks the aggressor's
                    // newly stored value on every write to its word.
                    LaneMask& vv = sim::block_word_ref(value_[v], bw);
                    vv = (vv & ~t) | (new_v & t);
                    break;
                }
                default:
                    break;
            }
            sim::block_word_ref(known_[v], bw) |= t;
        }

        enforce_static_coupling();
    }

    /// Reads `word` in every lane, applying read-fault effects. `out` must
    /// point at width() entries, one per bit position.
    void read(int word, ReadResult* out) {
        MTG_EXPECTS(word >= 0 && word < words_);
        MTG_EXPECTS(out != nullptr);
        const auto w = static_cast<std::size_t>(word);
        const std::size_t base = w * static_cast<std::size_t>(width_);

        // Decoder-map lanes observe the victim word instead.
        Block redirected = sim::block_zero<Block>();
        for (int b = 0; b < width_; ++b) out[b] = ReadResult{};
        for (const MapEntry& m : afmap_[w]) {
            const std::size_t vbase = static_cast<std::size_t>(m.victim_word) *
                                      static_cast<std::size_t>(width_);
            for (int b = 0; b < width_; ++b) {
                sim::block_word_ref(out[b].value, m.word) |=
                    sim::block_word(
                        value_[vbase + static_cast<std::size_t>(b)], m.word) &
                    m.lanes;
                sim::block_word_ref(out[b].known, m.word) |=
                    sim::block_word(
                        known_[vbase + static_cast<std::size_t>(b)], m.word) &
                    m.lanes;
            }
            sim::block_word_ref(redirected, m.word) |= m.lanes;
        }
        const Block active = ~redirected;

        for (int b = 0; b < width_; ++b) {
            const std::size_t at = base + static_cast<std::size_t>(b);
            const Block cell_v = value_[at];
            const Block cell_k = known_[at];
            const Block is0 = cell_k & ~cell_v;
            const Block is1 = cell_k & cell_v;
            const SingleBitMasks& s = single_[at];

            Block seen_v = cell_v;
            Block seen_k = cell_k;
            // Stuck-at bits always read back the stuck value, even before
            // any write has initialised them.
            seen_v = (seen_v & ~s.saf0) | s.saf1;
            seen_k |= s.saf0 | s.saf1;

            Block t;
            t = s.rdf0 & is0;  // flips the bit and returns the wrong value
            value_[at] |= t;
            seen_v |= t;
            t = s.rdf1 & is1;
            value_[at] = value_[at] & ~t;
            seen_v = seen_v & ~t;
            t = s.drdf0 & is0;  // deceptive: flips, returns the old value
            value_[at] |= t;
            t = s.drdf1 & is1;
            value_[at] = value_[at] & ~t;
            seen_v |= s.irf0 & is0;  // wrong value, no flip
            seen_v = seen_v & ~(s.irf1 & is1);

            out[b].value |= seen_v & active;
            out[b].known |= seen_k & active;
            out[b].value &= out[b].known;  // normalise: X lanes report 0
        }

        enforce_static_coupling();
    }

    /// Elapses the data-retention period in every lane.
    void wait() {
        for (std::size_t at = 0; at < value_.size(); ++at) {
            const SingleBitMasks& s = single_[at];
            if (sim::block_none(s.drf0 | s.drf1)) continue;
            const Block is0 = known_[at] & ~value_[at];
            const Block is1 = known_[at] & value_[at];
            value_[at] =
                (value_[at] & ~(s.drf0 & is1)) | (s.drf1 & is0);
        }
        enforce_static_coupling();
    }

    /// Raw bit value of one lane without triggering read faults (tests).
    [[nodiscard]] Trit peek(BitAddr at, int lane) const {
        MTG_EXPECTS(lane >= 0 && lane < block_lane_count<Block>);
        const std::size_t i = index(at);
        if (!sim::block_test(known_[i], lane)) return Trit::X;
        return sim::block_test(value_[i], lane) ? Trit::One : Trit::Zero;
    }

private:
    /// Per-bit-position lane blocks of the single-bit fault kinds
    /// (aggregated across faults, so these stay dense).
    struct SingleBitMasks {
        Block saf0{}, saf1{};
        Block tf_up{}, tf_down{};
        Block wdf0{}, wdf1{};
        Block rdf0{}, rdf1{};
        Block drdf0{}, drdf1{};
        Block irf0{}, irf1{};
        Block drf0{}, drf1{};
    };
    /// Transition/Af coupling bound to an aggressor bit of some word.
    struct CouplingEntry {
        fault::FaultKind kind;
        int aggressor_bit;
        std::size_t victim;  ///< flat (word, bit) index
        int word;            ///< plane word of the block holding the lanes
        LaneMask lanes;
    };
    /// State coupling ⟨sv,fv⟩ — enforced after every state change.
    struct StaticEntry {
        std::size_t aggressor;
        std::size_t victim;
        bool sense;  ///< aggressor value that sensitises
        bool force;  ///< value forced onto the victim
        int word;
        LaneMask lanes;
    };
    /// Word-decoder fault: whole-word accesses land on `victim_word`.
    struct MapEntry {
        int victim_word;
        int word;
        LaneMask lanes;
    };

    int words_;
    int width_;
    std::vector<Block> value_;  ///< word-major (word * width + bit)
    std::vector<Block> known_;
    std::vector<SingleBitMasks> single_;
    std::vector<std::vector<CouplingEntry>> coupling_;  ///< by aggr. word
    std::vector<std::vector<MapEntry>> afmap_;          ///< by aggr. word
    std::vector<StaticEntry> static_;
    Block occupied_{};  ///< lanes already holding a fault
    // Flat bit / aggressor-word indices a reset() must undo (duplicates
    // are fine — clearing is idempotent).
    std::vector<std::size_t> single_dirty_;
    std::vector<std::size_t> coupling_dirty_;
    std::vector<std::size_t> afmap_dirty_;

    [[nodiscard]] std::size_t index(BitAddr at) const {
        MTG_EXPECTS(at.word >= 0 && at.word < words_);
        MTG_EXPECTS(at.bit >= 0 && at.bit < width_);
        return static_cast<std::size_t>(at.word) *
                   static_cast<std::size_t>(width_) +
               static_cast<std::size_t>(at.bit);
    }

    void push_static(std::size_t aggressor, std::size_t victim, bool sense,
                     bool force, const Block& lanes) {
        for_each_block_word(lanes, [&](int w, LaneMask m) {
            static_.push_back({aggressor, victim, sense, force, w, m});
        });
    }

    void enforce_static_coupling() {
        for (const StaticEntry& s : static_) {
            const LaneMask av = sim::block_word(value_[s.aggressor], s.word);
            const LaneMask ak = sim::block_word(known_[s.aggressor], s.word);
            const LaneMask match = s.lanes & ak & (s.sense ? av : ~av);
            if (!match) continue;
            LaneMask& vv = sim::block_word_ref(value_[s.victim], s.word);
            vv = s.force ? (vv | match) : (vv & ~match);
            sim::block_word_ref(known_[s.victim], s.word) |= match;
        }
    }
};

/// The scalar 64-lane word memory of PR 2 — template instantiated at W=1.
using PackedWordMemory = PackedWordMemoryT<LaneMask>;

}  // namespace mtg::word
