#pragma once

/// \file packed_word_memory.hpp
/// Bit-parallel counterpart of WordMemory: 64 independent bit-fault
/// instances are simulated at once against the same word-oriented RAM.
///
/// Packing layout: the memory holds words × width bit positions; every bit
/// position owns a `value` and a `known` lane plane (uint64_t), bit l of a
/// plane belonging to simulation lane l — the same value/known plane-pair
/// scheme sim::PackedSimMemory uses for bit-oriented cells, lifted to the
/// (word, bit) grid. A whole-word write touches `width` plane pairs with a
/// handful of bitwise operations each; a whole-word read returns one
/// {value, known} lane mask per bit. Lane 0 is left fault-free as the
/// reference by convention.
///
/// Word semantics mirror the scalar WordMemory exactly: writes resolve
/// every bit's own value first (phase 1), store the word, and only then
/// apply coupling effects of the aggressor-bit transitions (phase 2), so
/// an intra-word victim written in the same cycle is corrupted after its
/// own write; AfMap redirects whole-word accesses (word-level decoders
/// fail for whole words), and intra-word AfMap is inert, as in the scalar
/// model.
///
/// Restriction: at most ONE injected fault per lane (multi-fault
/// composition is injection-order-dependent and has no bitwise
/// equivalent). WordMemory remains the multi-fault oracle;
/// tests/word_batch_test.cpp proves lane-for-lane equivalence against it.

#include <cstdint>
#include <vector>

#include "sim/packed_memory.hpp"
#include "word/word_memory.hpp"

namespace mtg::word {

/// One bit per simulation lane; packing helpers shared with the
/// bit-oriented kernel.
using sim::chunk_count;
using sim::kAllLanes;
using sim::kChunkLanes;
using sim::kLaneCount;
using sim::LaneMask;
using sim::used_lanes;

/// words × width RAM simulating up to 64 bit-fault instances in parallel.
/// All bits start uninitialised (X) in every lane.
class PackedWordMemory {
public:
    PackedWordMemory(int words, int width);

    [[nodiscard]] int words() const { return words_; }
    [[nodiscard]] int width() const { return width_; }

    /// Injects `fault` into every lane of `lanes`. Lanes must not already
    /// hold a fault (one-fault-per-lane restriction).
    void inject(const InjectedBitFault& fault, LaneMask lanes);

    /// Per-lane outcome of one bit of a word read: bit l of `value` is the
    /// value lane l sees, valid only where bit l of `known` is set.
    struct ReadResult {
        LaneMask value{0};
        LaneMask known{0};
    };

    /// Writes the W-bit `value` to `word` in every lane, applying fault
    /// effects (the written word is the same for all lanes; the stored
    /// result differs per lane).
    void write(int word, std::uint64_t value);

    /// Reads `word` in every lane, applying read-fault effects. `out` must
    /// point at width() entries, one per bit position.
    void read(int word, ReadResult* out);

    /// Elapses the data-retention period in every lane.
    void wait();

    /// Raw bit value of one lane without triggering read faults (tests).
    [[nodiscard]] Trit peek(BitAddr at, int lane) const;

private:
    /// Per-bit-position lane masks of the single-bit fault kinds. A zero
    /// mask means "no lane has this fault here".
    struct SingleBitMasks {
        LaneMask saf0{0}, saf1{0};
        LaneMask tf_up{0}, tf_down{0};
        LaneMask wdf0{0}, wdf1{0};
        LaneMask rdf0{0}, rdf1{0};
        LaneMask drdf0{0}, drdf1{0};
        LaneMask irf0{0}, irf1{0};
        LaneMask drf0{0}, drf1{0};
    };
    /// Transition/Af coupling bound to an aggressor bit of some word.
    struct CouplingEntry {
        fault::FaultKind kind;
        int aggressor_bit;
        std::size_t victim;  ///< flat (word, bit) index
        LaneMask lanes;
    };
    /// State coupling ⟨sv,fv⟩ — enforced after every state change.
    struct StaticEntry {
        std::size_t aggressor;
        std::size_t victim;
        bool sense;  ///< aggressor value that sensitises
        bool force;  ///< value forced onto the victim
        LaneMask lanes;
    };
    /// Word-decoder fault: whole-word accesses land on `victim_word`.
    struct MapEntry {
        int victim_word;
        LaneMask lanes;
    };

    int words_;
    int width_;
    std::vector<LaneMask> value_;  ///< word-major (word * width + bit)
    std::vector<LaneMask> known_;
    std::vector<SingleBitMasks> single_;
    std::vector<std::vector<CouplingEntry>> coupling_;  ///< by aggressor word
    std::vector<std::vector<MapEntry>> afmap_;          ///< by aggressor word
    std::vector<StaticEntry> static_;
    LaneMask occupied_{0};  ///< lanes already holding a fault

    [[nodiscard]] std::size_t index(BitAddr at) const;
    void enforce_static_coupling();
};

}  // namespace mtg::word
