#include "word/background.hpp"

#include "util/contracts.hpp"

namespace mtg::word {

int Background::bit(int b) const {
    MTG_EXPECTS(b >= 0 && b < width);
    return static_cast<int>((bits >> b) & 1u);
}

Background Background::complement() const {
    const std::uint64_t mask =
        width == 64 ? ~0ULL : ((1ULL << width) - 1);
    return Background{width, ~bits & mask};
}

std::string Background::str() const {
    std::string out;
    for (int b = width - 1; b >= 0; --b)
        out.push_back(static_cast<char>('0' + bit(b)));
    return out;
}

std::vector<Background> counting_backgrounds(int width) {
    MTG_EXPECTS(width >= 1 && width <= 64);
    MTG_EXPECTS((width & (width - 1)) == 0 && "width must be a power of two");
    std::vector<Background> set;
    set.push_back(Background{width, 0});  // solid
    // Alternating blocks of size 1, 2, 4, ... width/2: bit b of pattern k
    // is ((b >> k) & 1).
    for (int k = 0; (1 << k) < width; ++k) {
        std::uint64_t bits = 0;
        for (int b = 0; b < width; ++b)
            if ((b >> k) & 1) bits |= 1ULL << b;
        set.push_back(Background{width, bits});
    }
    return set;
}

std::vector<Background> solid_background(int width) {
    MTG_EXPECTS(width >= 1 && width <= 64);
    return {Background{width, 0}};
}

bool separates_all_bit_pairs(const std::vector<Background>& set) {
    if (set.empty()) return false;
    const int width = set.front().width;
    for (int i = 0; i < width; ++i) {
        for (int j = i + 1; j < width; ++j) {
            bool separated = false;
            for (const Background& bg : set) {
                if (bg.bit(i) != bg.bit(j)) {
                    separated = true;
                    break;
                }
            }
            if (!separated) return false;
        }
    }
    return true;
}

}  // namespace mtg::word
