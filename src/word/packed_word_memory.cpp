#include "word/packed_word_memory.hpp"

namespace mtg::word {

using fault::FaultKind;

PackedWordMemory::PackedWordMemory(int words, int width)
    : words_(words), width_(width),
      value_(static_cast<std::size_t>(words) * static_cast<std::size_t>(width),
             0),
      known_(value_.size(), 0), single_(value_.size()),
      coupling_(static_cast<std::size_t>(words)),
      afmap_(static_cast<std::size_t>(words)) {
    MTG_EXPECTS(words > 0);
    MTG_EXPECTS(width >= 1 && width <= 64);
}

std::size_t PackedWordMemory::index(BitAddr at) const {
    MTG_EXPECTS(at.word >= 0 && at.word < words_);
    MTG_EXPECTS(at.bit >= 0 && at.bit < width_);
    return static_cast<std::size_t>(at.word) *
               static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(at.bit);
}

void PackedWordMemory::inject(const InjectedBitFault& fault, LaneMask lanes) {
    const std::size_t a = index(fault.a);
    MTG_EXPECTS((occupied_ & lanes) == 0);  // one fault per lane
    occupied_ |= lanes;

    auto& s = single_[a];
    switch (fault.kind) {
        case FaultKind::Saf0: s.saf0 |= lanes; return;
        case FaultKind::Saf1: s.saf1 |= lanes; return;
        case FaultKind::TfUp: s.tf_up |= lanes; return;
        case FaultKind::TfDown: s.tf_down |= lanes; return;
        case FaultKind::Wdf0: s.wdf0 |= lanes; return;
        case FaultKind::Wdf1: s.wdf1 |= lanes; return;
        case FaultKind::Rdf0: s.rdf0 |= lanes; return;
        case FaultKind::Rdf1: s.rdf1 |= lanes; return;
        case FaultKind::Drdf0: s.drdf0 |= lanes; return;
        case FaultKind::Drdf1: s.drdf1 |= lanes; return;
        case FaultKind::Irf0: s.irf0 |= lanes; return;
        case FaultKind::Irf1: s.irf1 |= lanes; return;
        case FaultKind::Drf0: s.drf0 |= lanes; return;
        case FaultKind::Drf1: s.drf1 |= lanes; return;
        case FaultKind::CfinUp:
        case FaultKind::CfinDown:
        case FaultKind::CfidUp0:
        case FaultKind::CfidUp1:
        case FaultKind::CfidDown0:
        case FaultKind::CfidDown1:
        case FaultKind::Af:
            coupling_[static_cast<std::size_t>(fault.a.word)].push_back(
                {fault.kind, fault.a.bit, index(fault.b), lanes});
            return;
        case FaultKind::CfstS0F0:
            static_.push_back({a, index(fault.b), false, false, lanes});
            return;
        case FaultKind::CfstS0F1:
            static_.push_back({a, index(fault.b), false, true, lanes});
            return;
        case FaultKind::CfstS1F0:
            static_.push_back({a, index(fault.b), true, false, lanes});
            return;
        case FaultKind::CfstS1F1:
            static_.push_back({a, index(fault.b), true, true, lanes});
            return;
        case FaultKind::AfMap:
            // Word-level decoder fault; intra-word AfMap is inert in the
            // scalar model, so it stays inert here too.
            (void)index(fault.b);
            if (!fault.intra_word())
                afmap_[static_cast<std::size_t>(fault.a.word)].push_back(
                    {fault.b.word, lanes});
            return;
    }
    MTG_ASSERT(false && "unhandled fault kind");
}

void PackedWordMemory::enforce_static_coupling() {
    for (const StaticEntry& s : static_) {
        const LaneMask av = value_[s.aggressor];
        const LaneMask ak = known_[s.aggressor];
        const LaneMask match = s.lanes & ak & (s.sense ? av : ~av);
        if (!match) continue;
        LaneMask& vv = value_[s.victim];
        vv = s.force ? (vv | match) : (vv & ~match);
        known_[s.victim] |= match;
    }
}

void PackedWordMemory::write(int word, std::uint64_t value) {
    MTG_EXPECTS(word >= 0 && word < words_);
    const auto w = static_cast<std::size_t>(word);
    const std::size_t base = w * static_cast<std::size_t>(width_);

    // Decoder-map lanes: the whole word access lands on the victim word.
    LaneMask redirected = 0;
    for (const MapEntry& m : afmap_[w]) {
        const std::size_t vbase = static_cast<std::size_t>(m.victim_word) *
                                  static_cast<std::size_t>(width_);
        for (int b = 0; b < width_; ++b) {
            const LaneMask dmask = ((value >> b) & 1u) ? kAllLanes : 0;
            value_[vbase + static_cast<std::size_t>(b)] =
                (value_[vbase + static_cast<std::size_t>(b)] & ~m.lanes) |
                (dmask & m.lanes);
            known_[vbase + static_cast<std::size_t>(b)] |= m.lanes;
        }
        redirected |= m.lanes;
    }
    const LaneMask active = ~redirected;

    // Phase 1: per-bit effective values (single-bit effects on own bit).
    // The pre-write planes are captured first so phase 2 can derive the
    // aggressor transitions of this whole-word store.
    LaneMask old_v[64];
    LaneMask old_k[64];
    for (int b = 0; b < width_; ++b) {
        old_v[b] = value_[base + static_cast<std::size_t>(b)];
        old_k[b] = known_[base + static_cast<std::size_t>(b)];
    }

    for (int b = 0; b < width_; ++b) {
        const std::size_t at = base + static_cast<std::size_t>(b);
        const int d = static_cast<int>((value >> b) & 1u);
        const LaneMask dmask = d ? kAllLanes : LaneMask{0};
        const LaneMask old0 = old_k[b] & ~old_v[b];
        const LaneMask old1 = old_k[b] & old_v[b];

        // The single-bit masks are disjoint lane-wise (one fault per
        // lane), so sequential application is exact.
        const SingleBitMasks& s = single_[at];
        LaneMask eff = dmask;
        eff = (eff & ~s.saf0) | s.saf1;
        if (d == 1) {
            eff &= ~(s.tf_up & old0);  // 0 -> 1 transition fails
            eff &= ~(s.wdf1 & old1);   // w1 over a 1 flips the bit to 0
        } else {
            eff |= s.tf_down & old1;  // 1 -> 0 transition fails
            eff |= s.wdf0 & old0;     // w0 over a 0 flips the bit to 1
        }

        value_[at] = (old_v[b] & ~active) | (eff & active);
        known_[at] |= active;
    }

    // Phase 2: coupling sensitised by the aggressor-bit transitions of
    // this store, applied after the whole word is written.
    for (const CouplingEntry& c : coupling_[w]) {
        const int b = c.aggressor_bit;
        const std::size_t at = base + static_cast<std::size_t>(b);
        const LaneMask new_v = value_[at];
        const LaneMask new_k = known_[at];
        const LaneMask rising = old_k[b] & ~old_v[b] & new_k & new_v;
        const LaneMask falling = old_k[b] & old_v[b] & new_k & ~new_v;
        const std::size_t v = c.victim;
        LaneMask t = 0;
        switch (c.kind) {
            case FaultKind::CfinUp:
                t = c.lanes & rising;
                value_[v] ^= t & known_[v];  // X victims stay X
                continue;
            case FaultKind::CfinDown:
                t = c.lanes & falling;
                value_[v] ^= t & known_[v];
                continue;
            case FaultKind::CfidUp0: t = c.lanes & rising; break;
            case FaultKind::CfidUp1: t = c.lanes & rising; break;
            case FaultKind::CfidDown0: t = c.lanes & falling; break;
            case FaultKind::CfidDown1: t = c.lanes & falling; break;
            case FaultKind::Af: t = c.lanes & active; break;
            default: MTG_ASSERT(false && "not a coupling kind"); break;
        }
        if (!t) continue;
        switch (c.kind) {
            case FaultKind::CfidUp0:
            case FaultKind::CfidDown0: value_[v] &= ~t; break;
            case FaultKind::CfidUp1:
            case FaultKind::CfidDown1: value_[v] |= t; break;
            case FaultKind::Af:
                // Shorted decoder: the victim tracks the aggressor's newly
                // stored value on every write to the aggressor's word.
                value_[v] = (value_[v] & ~t) | (new_v & t);
                break;
            default: break;
        }
        known_[v] |= t;
    }

    enforce_static_coupling();
}

void PackedWordMemory::read(int word, ReadResult* out) {
    MTG_EXPECTS(word >= 0 && word < words_);
    MTG_EXPECTS(out != nullptr);
    const auto w = static_cast<std::size_t>(word);
    const std::size_t base = w * static_cast<std::size_t>(width_);

    // Decoder-map lanes observe the victim word instead.
    LaneMask redirected = 0;
    for (int b = 0; b < width_; ++b) out[b] = ReadResult{};
    for (const MapEntry& m : afmap_[w]) {
        const std::size_t vbase = static_cast<std::size_t>(m.victim_word) *
                                  static_cast<std::size_t>(width_);
        for (int b = 0; b < width_; ++b) {
            out[b].value |= value_[vbase + static_cast<std::size_t>(b)] &
                            m.lanes;
            out[b].known |= known_[vbase + static_cast<std::size_t>(b)] &
                            m.lanes;
        }
        redirected |= m.lanes;
    }
    const LaneMask active = ~redirected;

    for (int b = 0; b < width_; ++b) {
        const std::size_t at = base + static_cast<std::size_t>(b);
        const LaneMask cell_v = value_[at];
        const LaneMask cell_k = known_[at];
        const LaneMask is0 = cell_k & ~cell_v;
        const LaneMask is1 = cell_k & cell_v;
        const SingleBitMasks& s = single_[at];

        LaneMask seen_v = cell_v;
        LaneMask seen_k = cell_k;
        // Stuck-at bits always read back the stuck value, even before any
        // write has initialised them.
        seen_v = (seen_v & ~s.saf0) | s.saf1;
        seen_k |= s.saf0 | s.saf1;

        LaneMask t;
        t = s.rdf0 & is0;  // flips the bit and returns the wrong value
        value_[at] |= t;
        seen_v |= t;
        t = s.rdf1 & is1;
        value_[at] &= ~t;
        seen_v &= ~t;
        t = s.drdf0 & is0;  // deceptive: flips the bit, returns the old value
        value_[at] |= t;
        t = s.drdf1 & is1;
        value_[at] &= ~t;
        seen_v |= s.irf0 & is0;  // wrong value, no flip
        seen_v &= ~(s.irf1 & is1);

        out[b].value |= seen_v & active;
        out[b].known |= seen_k & active;
        out[b].value &= out[b].known;  // normalise: X lanes report 0
    }

    enforce_static_coupling();
}

void PackedWordMemory::wait() {
    for (std::size_t at = 0; at < value_.size(); ++at) {
        const SingleBitMasks& s = single_[at];
        if (!(s.drf0 | s.drf1)) continue;
        const LaneMask is0 = known_[at] & ~value_[at];
        const LaneMask is1 = known_[at] & value_[at];
        value_[at] = (value_[at] & ~(s.drf0 & is1)) | (s.drf1 & is0);
    }
    enforce_static_coupling();
}

Trit PackedWordMemory::peek(BitAddr at, int lane) const {
    MTG_EXPECTS(lane >= 0 && lane < kLaneCount);
    const std::size_t i = index(at);
    const LaneMask bit = LaneMask{1} << lane;
    if (!(known_[i] & bit)) return Trit::X;
    return (value_[i] & bit) ? Trit::One : Trit::Zero;
}

}  // namespace mtg::word
