#pragma once

/// \file word_march.hpp
/// Word-oriented March execution: a bit-oriented March test plus a data
/// background set defines a word test — the test is run once per
/// background b with w0/r0 meaning write/expect b and w1/r1 meaning
/// write/expect ~b.
///
/// covers_everywhere is a thin compatibility wrapper over the
/// process-wide engine::Engine session (see engine/engine.hpp);
/// run_once_detects/detects remain the scalar oracle.

#include <optional>

#include "march/march_test.hpp"
#include "word/background.hpp"
#include "word/word_memory.hpp"

namespace mtg::word {

/// Execution options.
struct WordRunOptions {
    int words{8};
    int width{8};
    int max_any_expansion{4};  ///< 2^k ⇕ expansions per background run
};

/// Complexity of the expanded word test: per-word operations summed over
/// all backgrounds.
[[nodiscard]] int word_complexity(const march::MarchTest& test,
                                  const std::vector<Background>& backgrounds);

/// Runs the word test once (fixed ⇕ choices) against a fresh memory with
/// the fault injected; true when some read mismatches its expected word.
[[nodiscard]] bool run_once_detects(const march::MarchTest& test,
                                    const std::vector<Background>& backgrounds,
                                    const InjectedBitFault& fault,
                                    unsigned any_choices,
                                    const WordRunOptions& opts = {});

/// Guaranteed detection: every ⇕ expansion detects.
[[nodiscard]] bool detects(const march::MarchTest& test,
                           const std::vector<Background>& backgrounds,
                           const InjectedBitFault& fault,
                           const WordRunOptions& opts = {});

/// The concrete ⇕ resolutions evaluated by detects() and the batched word
/// runner: all 2^k choices when the test has k <= opts.max_any_expansion ⇕
/// elements, otherwise only the two uniform sweeps (the same capped scheme
/// as the bit-oriented runner).
[[nodiscard]] std::vector<unsigned> expansion_choices(
    const march::MarchTest& test, const WordRunOptions& opts = {});

/// Exhaustive placement check for a fault kind:
///  - single-bit kinds: every (word, bit);
///  - two-cell kinds: every intra-word bit pair (both orders) in a
///    representative word AND every inter-word pair of representative bits
///    (both orders).
[[nodiscard]] bool covers_everywhere(const march::MarchTest& test,
                                     const std::vector<Background>& backgrounds,
                                     fault::FaultKind kind,
                                     const WordRunOptions& opts = {});

/// Sanity: on a fault-free memory every read sees its expected word under
/// every background and ⇕ expansion.
[[nodiscard]] bool is_well_formed(const march::MarchTest& test,
                                  const std::vector<Background>& backgrounds,
                                  const WordRunOptions& opts = {});

}  // namespace mtg::word
