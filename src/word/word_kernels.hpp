#pragma once

/// \file word_kernels.hpp
/// Width-generic grid kernels behind word::WordBatchRunner.
///
/// Same structure as sim_kernels.hpp, lifted to the word-oriented model:
/// one `word_run_pass` streams the whole background set through a chunk of
/// 63·W bit faults on the SAME packed memory (state carries across
/// backgrounds exactly like the scalar word runner) under one fixed ⇕
/// choice, and the drivers shard the (chunk × expansion) grid across a
/// util::ThreadPool with atomic-free per-worker AND accumulators and an
/// atomic fail-fast flag. Results are bit-identical across widths and
/// worker counts.
///
/// Traces: when the optional per-pass sinks are supplied, the pass also
/// records which lanes mismatched per (background, site) and per
/// (background, site, word, bit) coordinate; word_run_chunk intersects
/// those across the ⇕ expansions and word_run shards chunks across the
/// pool with each chunk writing a disjoint slice of the WordRunTrace
/// vector — the word::guaranteed_trace semantics, 63·W faults per sweep.
///
/// The (background, site) read grid is small and stays dense
/// (sim::detail::GuaranteedMasks). The (background, site, word, bit)
/// observation grid is O(words · width) dense but a fault lane only
/// mismatches at words holding one of its victim bits, so by default it
/// is kept as site-major sparse runs (sim::detail::SparseGuaranteedRuns:
/// sorted (word, bit, lanes) entries per (background, site), intersected
/// by merge-walking) — O(touched cells) memory, which unlocks word
/// memories the dense grid cannot allocate (words=4096 × width=8 needs
/// multiple GiB dense, a few MiB sparse). The PR 4 dense grid stays
/// compiled behind sim::set_dense_trace_grids(true) for one release so
/// the sparse-vs-dense differential can exercise both.

#include <atomic>
#include <optional>
#include <span>
#include <vector>

#include "march/march_test.hpp"
#include "sim/lane_block.hpp"
#include "sim/lane_dispatch.hpp"
#include "sim/march_runner.hpp"
#include "sim/trace_masks.hpp"
#include "util/thread_pool.hpp"
#include "word/packed_word_memory.hpp"
#include "word/word_march.hpp"
#include "word/word_trace.hpp"

namespace mtg::word::detail {

using sim::block_chunk_count;
using sim::block_chunk_total;
using sim::block_fault_lanes;
using sim::block_fill;
using sim::block_lane_bit;
using sim::block_none;
using sim::block_ones;
using sim::block_test;
using sim::block_used_lanes;
using sim::block_zero;
using sim::fault_lane;

/// Everything a WordBatchRunner precomputes once; shared by the kernels of
/// every width.
struct WordPlan {
    march::MarchTest test;
    std::vector<Background> backgrounds;
    WordRunOptions opts;
    util::ThreadPool* pool{nullptr};
    std::vector<unsigned> expansions;
    std::vector<sim::ReadSite> sites;
    std::vector<std::vector<int>> site_id;  ///< (element, op) -> flat site
};

/// Flat coordinate of the (background, site) read grid.
inline std::size_t word_site_index(const WordPlan& plan, std::size_t bkg,
                                   std::size_t site) {
    return bkg * plan.sites.size() + site;
}

/// Flat coordinate of the (background, site, word, bit) observation grid.
inline std::size_t word_obs_index(const WordPlan& plan, std::size_t bkg,
                                  std::size_t site, int word, int bit) {
    return ((bkg * plan.sites.size() + site) *
                static_cast<std::size_t>(plan.opts.words) +
            static_cast<std::size_t>(word)) *
               static_cast<std::size_t>(plan.opts.width) +
           static_cast<std::size_t>(bit);
}

/// Where a tracing pass records its per-(background, site, word, bit)
/// observation mismatches: exactly one of the two grids is non-null. The
/// sparse runs are the default; the dense grid is the test-only fallback
/// (see set_dense_trace_grids).
template <typename Block>
struct WordObsSink {
    std::vector<Block>* dense{nullptr};
    sim::detail::SparseGuaranteedRuns<Block>* sparse{nullptr};
};

/// One full (all backgrounds, fixed ⇕ choice) execution of one chunk;
/// writes the lanes with at least one definite read mismatch to
/// `*detected_out`; when site_now/obs_sink are non-null they receive the
/// per-(background, site) and per-(background, site, word, bit) mismatch
/// masks of this single pass. Pointer-only signature: the AVX-attributed
/// wrappers and their generic callers disagree on the register convention
/// for returning a 256/512-bit vector by value.
template <typename Block>
using WordPassFn = void (*)(const WordPlan&, const InjectedBitFault*, int,
                            unsigned, Block*, std::vector<Block>*,
                            WordObsSink<Block>*);

template <typename Block>
void word_run_pass(const WordPlan& plan, const InjectedBitFault* faults,
                   int count, unsigned choice, Block* detected_out,
                   std::vector<Block>* site_now,
                   WordObsSink<Block>* obs_sink) {
    const Block used = block_used_lanes<Block>(count);

    // Per-pass scratch pooling (ROADMAP SIMD follow-on (a)): workers are
    // long-lived, so a thread-local memory re-armed with reset() keeps the
    // plane vectors and the per-fault coupling/static/map tables at their
    // high-water capacity instead of reallocating 63·W injects per chunk.
    std::optional<PackedWordMemoryT<Block>> fresh;
    PackedWordMemoryT<Block>* mem;
    if (sim::pass_scratch_enabled()) {
        thread_local PackedWordMemoryT<Block> scratch(plan.opts.words,
                                                      plan.opts.width);
        scratch.reset(plan.opts.words, plan.opts.width);
        mem = &scratch;
    } else {
        fresh.emplace(plan.opts.words, plan.opts.width);
        mem = &*fresh;
    }
    PackedWordMemoryT<Block>& memory = *mem;
    for (int i = 0; i < count; ++i)
        memory.inject(faults[i], block_lane_bit<Block>(fault_lane(i)));

    typename PackedWordMemoryT<Block>::ReadResult got[64];
    Block detected = block_zero<Block>();
    // Backgrounds stream through the packed lanes on the same memory, so
    // state carries from one background run into the next exactly as in
    // the scalar word runner.
    for (std::size_t k = 0; k < plan.backgrounds.size(); ++k) {
        const std::uint64_t b0 = plan.backgrounds[k].bits;
        const std::uint64_t b1 = plan.backgrounds[k].complement().bits;
        int any_seen = 0;
        for (std::size_t e = 0; e < plan.test.size(); ++e) {
            const auto& element = plan.test[e];
            bool desc = element.order == march::AddressOrder::Descending;
            if (element.order == march::AddressOrder::Any) {
                desc = ((choice >> any_seen) & 1u) != 0;
                ++any_seen;
            }
            const int n = plan.opts.words;
            for (int step = 0; step < n; ++step) {
                const int word = desc ? n - 1 - step : step;
                for (std::size_t o = 0; o < element.ops.size(); ++o) {
                    const march::MarchOp& op = element.ops[o];
                    switch (op.kind) {
                        case march::OpKind::Write:
                            memory.write(word, op.value ? b1 : b0);
                            break;
                        case march::OpKind::Wait:
                            memory.wait();
                            break;
                        case march::OpKind::Read: {
                            const std::uint64_t expected =
                                op.value ? b1 : b0;
                            memory.read(word, got);
                            Block site_mask = block_zero<Block>();
                            for (int bit = 0; bit < plan.opts.width; ++bit) {
                                const Block expmask = block_fill<Block>(
                                    ((expected >> bit) & 1u) != 0);
                                const Block mismatch =
                                    got[bit].known &
                                    (got[bit].value ^ expmask) & used;
                                if (block_none(mismatch)) continue;
                                detected |= mismatch;
                                site_mask |= mismatch;
                                if (obs_sink != nullptr) {
                                    const auto site = static_cast<
                                        std::size_t>(plan.site_id[e][o]);
                                    // A site reads each word once per
                                    // background per pass, so this
                                    // (word, bit) key is fresh — the
                                    // append-once invariant the sparse
                                    // runs intersect under.
                                    if (obs_sink->sparse != nullptr)
                                        obs_sink->sparse->append(
                                            word_site_index(plan, k, site),
                                            word, bit, mismatch);
                                    else
                                        (*obs_sink->dense)[word_obs_index(
                                            plan, k, site, word, bit)] |=
                                            mismatch;
                                }
                            }
                            if (site_now != nullptr &&
                                !block_none(site_mask))
                                (*site_now)[word_site_index(
                                    plan, k,
                                    static_cast<std::size_t>(
                                        plan.site_id[e][o]))] |= site_mask;
                            break;
                        }
                    }
                }
            }
        }
    }
    *detected_out = detected;
}

template <typename Block>
std::vector<bool> word_detects(
    const WordPlan& plan, WordPassFn<Block> pass,
    std::span<const InjectedBitFault> population) {
    std::vector<bool> result(population.size(), false);
    if (population.empty()) return result;
    const std::size_t chunks = block_chunk_total<Block>(population.size());
    const std::size_t expansions = plan.expansions.size();
    const auto per = static_cast<std::size_t>(block_fault_lanes<Block>);

    // Fused (chunk × expansion) grid with per-worker AND accumulators,
    // merged after the drain — identical results for any worker count.
    std::vector<std::vector<Block>> acc(
        plan.pool->worker_count(),
        std::vector<Block>(chunks, block_ones<Block>()));
    plan.pool->parallel_for(
        chunks * expansions, [&](std::size_t item, unsigned worker) {
            const std::size_t c = item / expansions;
            const unsigned choice = plan.expansions[item % expansions];
            Block detected = block_zero<Block>();
            pass(plan, population.data() + c * per,
                 block_chunk_count<Block>(population.size(), c), choice,
                 &detected, nullptr, nullptr);
            acc[worker][c] &= detected;
        });

    for (std::size_t c = 0; c < chunks; ++c) {
        const int count = block_chunk_count<Block>(population.size(), c);
        Block detected = block_used_lanes<Block>(count);
        for (const auto& worker_acc : acc) detected &= worker_acc[c];
        for (int i = 0; i < count; ++i)
            result[c * per + static_cast<std::size_t>(i)] =
                block_test(detected, fault_lane(i));
    }
    return result;
}

template <typename Block>
bool word_detects_all(const WordPlan& plan, WordPassFn<Block> pass,
                      std::span<const InjectedBitFault> population) {
    if (population.empty()) return true;
    const std::size_t chunks = block_chunk_total<Block>(population.size());
    const std::size_t expansions = plan.expansions.size();
    const auto per = static_cast<std::size_t>(block_fault_lanes<Block>);

    std::atomic<bool> escape{false};
    plan.pool->parallel_for(
        chunks * expansions, [&](std::size_t item, unsigned) {
            if (escape.load(std::memory_order_relaxed)) return;
            const std::size_t c = item / expansions;
            const unsigned choice = plan.expansions[item % expansions];
            const int count =
                block_chunk_count<Block>(population.size(), c);
            Block detected = block_zero<Block>();
            pass(plan, population.data() + c * per, count, choice,
                 &detected, nullptr, nullptr);
            if (!(detected == block_used_lanes<Block>(count)))
                escape.store(true, std::memory_order_relaxed);
        });
    return !escape.load(std::memory_order_relaxed);
}

/// Per-coordinate failing-lane masks of one population chunk, already
/// intersected across every ⇕ expansion (see word_site_index /
/// word_obs_index for the grid layouts). Observations live in exactly one
/// of the two representations: sparse runs per (background, site) by
/// default, the flat dense grid when sim::dense_trace_grids() was set.
template <typename Block>
struct WordChunkResult {
    Block detected{};
    std::vector<Block> site_fail;  ///< [background × site]
    /// Sparse: per (background × site) run sorted by (word, bit).
    std::vector<std::vector<sim::detail::SparseObsEntry<Block>>>
        sparse_observations;
    std::vector<Block> observation_fail;  ///< dense fallback only
    bool dense{false};
};

template <typename Block>
WordChunkResult<Block> word_run_chunk(const WordPlan& plan,
                                      WordPassFn<Block> pass,
                                      const InjectedBitFault* faults,
                                      int count) {
    MTG_EXPECTS(count > 0 && count <= block_fault_lanes<Block>);
    const Block used = block_used_lanes<Block>(count);
    const std::size_t site_cells =
        plan.backgrounds.size() * plan.sites.size();

    WordChunkResult<Block> out;
    out.detected = used;
    out.dense = sim::dense_trace_grids();
    sim::detail::GuaranteedMasks<Block> sites(site_cells, used);

    Block pass_detected = block_zero<Block>();
    if (out.dense) {
        // PR 4 dense fallback (test-only, one release): the full
        // (background × site × word × bit) slab, AND-ed per pass.
        const std::size_t obs_cells =
            site_cells * static_cast<std::size_t>(plan.opts.words) *
            static_cast<std::size_t>(plan.opts.width);
        sim::detail::GuaranteedMasks<Block> observations(obs_cells, used);
        for (unsigned choice : plan.expansions) {
            sites.begin_pass();
            observations.begin_pass();
            WordObsSink<Block> sink{observations.pass_grid(), nullptr};
            pass(plan, faults, count, choice, &pass_detected,
                 sites.pass_grid(), &sink);
            out.detected &= pass_detected;
            sites.commit_pass();
            observations.commit_pass();
        }
        out.observation_fail.resize(obs_cells);
        for (std::size_t s = 0; s < obs_cells; ++s)
            out.observation_fail[s] = observations.guaranteed(s);
    } else {
        sim::detail::SparseGuaranteedRuns<Block> observations(site_cells);
        for (unsigned choice : plan.expansions) {
            sites.begin_pass();
            observations.begin_pass();
            WordObsSink<Block> sink{nullptr, &observations};
            pass(plan, faults, count, choice, &pass_detected,
                 sites.pass_grid(), &sink);
            out.detected &= pass_detected;
            sites.commit_pass();
            observations.commit_pass();
        }
        out.sparse_observations = observations.take();
    }

    out.site_fail.resize(site_cells);
    for (std::size_t s = 0; s < site_cells; ++s)
        out.site_fail[s] = sites.guaranteed(s);
    return out;
}

/// Lane-major trace extraction from the dense fallback grid — the PR 4
/// loop, kept verbatim for the sparse-vs-dense differential.
template <typename Block>
void word_extract_dense(const WordPlan& plan,
                        const WordChunkResult<Block>& chunk,
                        WordRunTrace* traces, int count) {
    for (int i = 0; i < count; ++i) {
        const int lane = fault_lane(i);
        WordRunTrace& trace = traces[i];
        // Extraction order IS the canonical trace order: background,
        // then textual site, then ascending word (bits as a mask).
        for (std::size_t k = 0; k < plan.backgrounds.size(); ++k)
            for (std::size_t s = 0; s < plan.sites.size(); ++s) {
                if (block_test(chunk.site_fail[word_site_index(plan, k, s)],
                               lane))
                    trace.failing_reads.push_back(
                        {static_cast<int>(k), plan.sites[s]});
                for (int w = 0; w < plan.opts.words; ++w) {
                    std::uint64_t bits = 0;
                    for (int b = 0; b < plan.opts.width; ++b)
                        if (block_test(
                                chunk.observation_fail[word_obs_index(
                                    plan, k, s, w, b)],
                                lane))
                            bits |= std::uint64_t{1} << b;
                    if (bits != 0)
                        trace.failing_observations.push_back(
                            {static_cast<int>(k), plan.sites[s], w, bits});
                }
            }
    }
}

template <typename Block>
std::vector<WordRunTrace> word_run(
    const WordPlan& plan, WordPassFn<Block> pass,
    std::span<const InjectedBitFault> population) {
    std::vector<WordRunTrace> result(population.size());
    if (population.empty()) return result;
    const std::size_t chunks = block_chunk_total<Block>(population.size());
    const auto per = static_cast<std::size_t>(block_fault_lanes<Block>);

    // Chunk-wise sharding: each item expands every ⇕ choice itself (the
    // per-(bkg, site, word, bit) grids would make a fused grid's
    // per-worker state quadratic) and writes a disjoint result slice.
    plan.pool->parallel_for(chunks, [&](std::size_t c, unsigned) {
        const std::size_t base = c * per;
        const int count = block_chunk_count<Block>(population.size(), c);
        const WordChunkResult<Block> chunk =
            word_run_chunk<Block>(plan, pass, population.data() + base,
                                  count);
        for (int i = 0; i < count; ++i)
            result[base + static_cast<std::size_t>(i)].detected =
                block_test(chunk.detected, fault_lane(i));
        if (chunk.dense) {
            word_extract_dense(plan, chunk, result.data() + base, count);
            return;
        }
        // Sparse extraction, entry-major: lane-major probing would undo
        // the sparse win (O(lanes · words · width) per coord), so walk
        // each (background, site) run once and fan every entry's lane
        // mask out to the per-fault traces. Coordinates ascend (bkg,
        // site) and runs are sorted by (word, bit), so each trace sees
        // its words in ascending order — the canonical order the dense
        // lane-major loop produced.
        const auto lane_result = [&](int lane) -> WordRunTrace& {
            // Inverse of fault_lane: population index of a fault lane.
            return result[base +
                          static_cast<std::size_t>(
                              (lane / sim::kLaneCount) * sim::kChunkLanes +
                              lane % sim::kLaneCount - 1)];
        };
        struct LaneAcc {
            std::int32_t word{-1};
            std::uint64_t bits{0};
        };
        std::vector<LaneAcc> acc(
            static_cast<std::size_t>(sim::block_lane_count<Block>));
        for (std::size_t k = 0; k < plan.backgrounds.size(); ++k)
            for (std::size_t s = 0; s < plan.sites.size(); ++s) {
                const std::size_t coord = word_site_index(plan, k, s);
                sim::for_each_lane(
                    chunk.site_fail[coord], [&](int lane) {
                        lane_result(lane).failing_reads.push_back(
                            {static_cast<int>(k), plan.sites[s]});
                    });
                // Each lane keeps one open (word, bits) accumulator,
                // flushed when the run moves that lane to a new word and
                // once more when the run ends.
                Block dirty = block_zero<Block>();
                for (const auto& entry : chunk.sparse_observations[coord]) {
                    sim::for_each_lane(entry.lanes, [&](int lane) {
                        LaneAcc& a = acc[static_cast<std::size_t>(lane)];
                        if (a.word != entry.word) {
                            if (a.word >= 0)
                                lane_result(lane)
                                    .failing_observations.push_back(
                                        {static_cast<int>(k),
                                         plan.sites[s], a.word, a.bits});
                            a.word = entry.word;
                            a.bits = 0;
                        }
                        a.bits |= std::uint64_t{1} << entry.bit;
                    });
                    dirty |= entry.lanes;
                }
                sim::for_each_lane(dirty, [&](int lane) {
                    LaneAcc& a = acc[static_cast<std::size_t>(lane)];
                    lane_result(lane).failing_observations.push_back(
                        {static_cast<int>(k), plan.sites[s], a.word,
                         a.bits});
                    a.word = -1;
                    a.bits = 0;
                });
            }
    });
    return result;
}

/// Pass-function getters mirroring sim_kernels.hpp: the widest safe
/// codegen per width, defined in lane_kernels.cpp. The W=8 getter picks
/// between the zmm wrapper, the 256-bit (ymm-pair) clone and the generic
/// instantiation per the resolved LaneIsa — all bit-identical.
[[nodiscard]] WordPassFn<LaneMask> word_pass_w1();
[[nodiscard]] WordPassFn<LaneBlock<4>> word_pass_w4();
[[nodiscard]] WordPassFn<LaneBlock<8>> word_pass_w8(
    sim::LaneIsa isa = sim::LaneIsa::Avx512);

}  // namespace mtg::word::detail
