#pragma once

/// \file word_kernels.hpp
/// Width-generic grid kernels behind word::WordBatchRunner.
///
/// Same structure as sim_kernels.hpp, lifted to the word-oriented model:
/// one `word_run_pass` streams the whole background set through a chunk of
/// 63·W bit faults on the SAME packed memory (state carries across
/// backgrounds exactly like the scalar word runner) under one fixed ⇕
/// choice, and the drivers shard the (chunk × expansion) grid across a
/// util::ThreadPool with atomic-free per-worker AND accumulators and an
/// atomic fail-fast flag. Results are bit-identical across widths and
/// worker counts.

#include <atomic>
#include <vector>

#include "march/march_test.hpp"
#include "sim/lane_block.hpp"
#include "util/thread_pool.hpp"
#include "word/packed_word_memory.hpp"
#include "word/word_march.hpp"

namespace mtg::word::detail {

using sim::block_chunk_count;
using sim::block_chunk_total;
using sim::block_fault_lanes;
using sim::block_fill;
using sim::block_lane_bit;
using sim::block_none;
using sim::block_ones;
using sim::block_test;
using sim::block_used_lanes;
using sim::block_zero;
using sim::fault_lane;

/// Everything a WordBatchRunner precomputes once; shared by the kernels of
/// every width.
struct WordPlan {
    march::MarchTest test;
    std::vector<Background> backgrounds;
    WordRunOptions opts;
    util::ThreadPool* pool{nullptr};
    std::vector<unsigned> expansions;
};

/// One full (all backgrounds, fixed ⇕ choice) execution of one chunk;
/// writes the lanes with at least one definite read mismatch to
/// `*detected_out`. Pointer-only signature: the AVX-attributed wrappers
/// and their generic callers disagree on the register convention for
/// returning a 256/512-bit vector by value.
template <typename Block>
using WordPassFn = void (*)(const WordPlan&, const InjectedBitFault*, int,
                            unsigned, Block*);

template <typename Block>
void word_run_pass(const WordPlan& plan, const InjectedBitFault* faults,
                   int count, unsigned choice, Block* detected_out) {
    const Block used = block_used_lanes<Block>(count);
    PackedWordMemoryT<Block> memory(plan.opts.words, plan.opts.width);
    for (int i = 0; i < count; ++i)
        memory.inject(faults[i], block_lane_bit<Block>(fault_lane(i)));

    typename PackedWordMemoryT<Block>::ReadResult got[64];
    Block detected = block_zero<Block>();
    // Backgrounds stream through the packed lanes on the same memory, so
    // state carries from one background run into the next exactly as in
    // the scalar word runner.
    for (const Background& background : plan.backgrounds) {
        const std::uint64_t b0 = background.bits;
        const std::uint64_t b1 = background.complement().bits;
        int any_seen = 0;
        for (const auto& element : plan.test.elements()) {
            bool desc = element.order == march::AddressOrder::Descending;
            if (element.order == march::AddressOrder::Any) {
                desc = ((choice >> any_seen) & 1u) != 0;
                ++any_seen;
            }
            const int n = plan.opts.words;
            for (int step = 0; step < n; ++step) {
                const int word = desc ? n - 1 - step : step;
                for (const march::MarchOp& op : element.ops) {
                    switch (op.kind) {
                        case march::OpKind::Write:
                            memory.write(word, op.value ? b1 : b0);
                            break;
                        case march::OpKind::Wait:
                            memory.wait();
                            break;
                        case march::OpKind::Read: {
                            const std::uint64_t expected =
                                op.value ? b1 : b0;
                            memory.read(word, got);
                            for (int bit = 0; bit < plan.opts.width; ++bit) {
                                const Block expmask = block_fill<Block>(
                                    ((expected >> bit) & 1u) != 0);
                                detected |= got[bit].known &
                                            (got[bit].value ^ expmask) &
                                            used;
                            }
                            break;
                        }
                    }
                }
            }
        }
    }
    *detected_out = detected;
}

template <typename Block>
std::vector<bool> word_detects(
    const WordPlan& plan, WordPassFn<Block> pass,
    const std::vector<InjectedBitFault>& population) {
    std::vector<bool> result(population.size(), false);
    if (population.empty()) return result;
    const std::size_t chunks = block_chunk_total<Block>(population.size());
    const std::size_t expansions = plan.expansions.size();
    const auto per = static_cast<std::size_t>(block_fault_lanes<Block>);

    // Fused (chunk × expansion) grid with per-worker AND accumulators,
    // merged after the drain — identical results for any worker count.
    std::vector<std::vector<Block>> acc(
        plan.pool->worker_count(),
        std::vector<Block>(chunks, block_ones<Block>()));
    plan.pool->parallel_for(
        chunks * expansions, [&](std::size_t item, unsigned worker) {
            const std::size_t c = item / expansions;
            const unsigned choice = plan.expansions[item % expansions];
            Block detected = block_zero<Block>();
            pass(plan, population.data() + c * per,
                 block_chunk_count<Block>(population.size(), c), choice,
                 &detected);
            acc[worker][c] &= detected;
        });

    for (std::size_t c = 0; c < chunks; ++c) {
        const int count = block_chunk_count<Block>(population.size(), c);
        Block detected = block_used_lanes<Block>(count);
        for (const auto& worker_acc : acc) detected &= worker_acc[c];
        for (int i = 0; i < count; ++i)
            result[c * per + static_cast<std::size_t>(i)] =
                block_test(detected, fault_lane(i));
    }
    return result;
}

template <typename Block>
bool word_detects_all(const WordPlan& plan, WordPassFn<Block> pass,
                      const std::vector<InjectedBitFault>& population) {
    if (population.empty()) return true;
    const std::size_t chunks = block_chunk_total<Block>(population.size());
    const std::size_t expansions = plan.expansions.size();
    const auto per = static_cast<std::size_t>(block_fault_lanes<Block>);

    std::atomic<bool> escape{false};
    plan.pool->parallel_for(
        chunks * expansions, [&](std::size_t item, unsigned) {
            if (escape.load(std::memory_order_relaxed)) return;
            const std::size_t c = item / expansions;
            const unsigned choice = plan.expansions[item % expansions];
            const int count =
                block_chunk_count<Block>(population.size(), c);
            Block detected = block_zero<Block>();
            pass(plan, population.data() + c * per, count, choice,
                 &detected);
            if (!(detected == block_used_lanes<Block>(count)))
                escape.store(true, std::memory_order_relaxed);
        });
    return !escape.load(std::memory_order_relaxed);
}

/// Pass-function getters mirroring sim_kernels.hpp: the widest safe
/// codegen per width, defined in lane_kernels.cpp.
[[nodiscard]] WordPassFn<LaneMask> word_pass_w1();
[[nodiscard]] WordPassFn<LaneBlock<4>> word_pass_w4();
[[nodiscard]] WordPassFn<LaneBlock<8>> word_pass_w8();

}  // namespace mtg::word::detail
