#pragma once

/// \file word_memory.hpp
/// Behavioural model of a word-oriented RAM (n words of W bits) with
/// bit-granular fault injection. Word accesses are atomic: a word write
/// first resolves every bit's own value (single-bit fault effects), stores
/// the word, and only then applies coupling effects of the aggressor-bit
/// transitions — so an intra-word victim written in the same cycle is
/// corrupted *after* its own write, the standard sensitisation model for
/// intra-word coupling faults.

#include <cstdint>
#include <vector>

#include "fault/kinds.hpp"
#include "util/contracts.hpp"
#include "util/trit.hpp"

namespace mtg::word {

/// A bit position in the memory.
struct BitAddr {
    int word{0};
    int bit{0};

    friend bool operator==(const BitAddr&, const BitAddr&) = default;
};

/// A fault primitive bound to concrete bit positions. Two-cell primitives
/// may couple bits of the same word (intra-word) or different words.
struct InjectedBitFault {
    fault::FaultKind kind{fault::FaultKind::Saf0};
    BitAddr a;       ///< faulty / aggressor bit
    BitAddr b;       ///< victim bit (two-cell only)

    static InjectedBitFault single(fault::FaultKind k, BitAddr at) {
        MTG_EXPECTS(!fault::is_two_cell(k));
        return {k, at, {}};
    }
    static InjectedBitFault coupling(fault::FaultKind k, BitAddr aggressor,
                                     BitAddr victim) {
        MTG_EXPECTS(fault::is_two_cell(k));
        MTG_EXPECTS(!(aggressor == victim));
        return {k, aggressor, victim};
    }

    [[nodiscard]] bool intra_word() const { return a.word == b.word; }

    friend bool operator==(const InjectedBitFault&,
                           const InjectedBitFault&) = default;
};

/// The memory. Words start fully unknown.
class WordMemory {
public:
    WordMemory(int words, int width);

    [[nodiscard]] int words() const { return words_; }
    [[nodiscard]] int width() const { return width_; }

    void inject(const InjectedBitFault& fault);

    /// Writes a W-bit value to `word`.
    void write(int word, std::uint64_t value);

    /// Reads `word`; each returned trit is a bit (X when unknown). Read
    /// faults (RDF/IRF/...) apply per affected bit.
    [[nodiscard]] std::vector<Trit> read(int word);

    /// Elapses the retention period.
    void wait();

    /// Raw bit value without read side effects.
    [[nodiscard]] Trit peek(BitAddr at) const;

private:
    int words_;
    int width_;
    std::vector<Trit> bits_;  // word-major
    std::vector<InjectedBitFault> faults_;

    [[nodiscard]] std::size_t index(BitAddr at) const;
    Trit& cell(BitAddr at);
    void enforce_static_coupling();
};

}  // namespace mtg::word
