#pragma once

/// \file word_batch_runner.hpp
/// Evaluates one word-oriented March test (bit test × background set)
/// against a whole bit-fault population per pass.
///
/// The runner packs up to 63·W bit-fault instances into the lanes of one
/// PackedWordMemoryT lane block (bit 0 of every plane word stays
/// fault-free as the reference) and streams the background set through
/// them: one pass executes the test once per background on the SAME packed
/// memory, exactly like the scalar word runner, so background-boundary
/// transitions (re-initialising from ~b_k to b_{k+1}) keep their
/// fault-sensitising effect. Per-lane mismatch masks are OR-ed across
/// backgrounds within a pass and intersected across the ⇕ expansions —
/// the guaranteed-detection semantics of word::detects, one memory sweep
/// per 63·W faults instead of one per fault.
///
/// The block width W ∈ {1, 4, 8} follows the same CPUID dispatch /
/// MTG_LANE_WIDTH override as sim::BatchRunner (see lane_dispatch.hpp) and
/// is bit-identical across widths. Like sim::BatchRunner, the (chunk ×
/// expansion) work grid is sharded across a util::ThreadPool with
/// atomic-free per-worker accumulators, and detects_all fail-fasts through
/// a shared atomic flag. Results are bit-identical for every worker count.

#include <span>
#include <vector>

#include "march/march_test.hpp"
#include "util/thread_pool.hpp"
#include "word/word_kernels.hpp"
#include "word/word_march.hpp"
#include "word/word_trace.hpp"

namespace mtg::fault {
struct FaultInstance;
}

namespace mtg::word {

/// Reusable batched evaluator for one word test. Precomputes the ⇕
/// expansion set once, then serves any number of populations.
/// `lane_width` forces a block width (1, 4 or 8) for testing; 0 uses the
/// process-wide active_lane_width().
class WordBatchRunner {
public:
    WordBatchRunner(const march::MarchTest& test,
                    std::vector<Background> backgrounds,
                    const WordRunOptions& opts = {},
                    util::ThreadPool* pool = nullptr, int lane_width = 0);

    /// Guaranteed detection under EVERY ⇕ expansion (the word::detects
    /// semantics), element i answering for population[i].
    [[nodiscard]] std::vector<bool> detects(
        std::span<const InjectedBitFault> population) const;

    /// True when every population member is detected; an atomic flag stops
    /// the remaining work items at the first escaping lane.
    [[nodiscard]] bool detects_all(
        std::span<const InjectedBitFault> population) const;

    /// Full guaranteed traces: element i holds the (background, site)
    /// reads and (background, site, word, bits) observations of
    /// population[i] that fail in EVERY ⇕ expansion, in canonical order —
    /// bit-identical to the scalar word::guaranteed_trace oracle. Sharded
    /// chunk-wise (each chunk writes a disjoint result range).
    [[nodiscard]] std::vector<WordRunTrace> run(
        std::span<const InjectedBitFault> population) const;

    [[nodiscard]] const march::MarchTest& test() const { return plan_.test; }
    [[nodiscard]] const WordRunOptions& options() const {
        return plan_.opts;
    }

    /// Block width this runner executes with (1, 4 or 8 plane words). An
    /// auto-detected width is an upper bound: per call the runner clamps
    /// to the narrowest block the population fills (results are
    /// bit-identical at every width); explicit ctor / MTG_LANE_WIDTH
    /// widths are exact.
    [[nodiscard]] int lane_width() const { return width_; }

private:
    detail::WordPlan plan_;
    int width_;
    bool adaptive_;

    [[nodiscard]] int width_for(std::size_t population) const;
    /// Resolved W=8 codegen flavour (zmm / ymm clone / generic) for a
    /// population of this size — see sim::resolve_lane_isa.
    [[nodiscard]] sim::LaneIsa isa_for(std::size_t population) const;
};

/// The exact placement set word::covers_everywhere sweeps for `kind`:
/// every (word, bit) for single-bit kinds; for two-cell kinds every
/// ordered intra-word bit pair of the representative word, every ordered
/// inter-word pair on the representative bit, plus one cross-bit pair.
[[nodiscard]] std::vector<InjectedBitFault> coverage_population(
    fault::FaultKind kind, const WordRunOptions& opts);

/// Canonical concrete placement of a fault instance on a words × width
/// memory: representative words words/3 and 2·words/3 (ordered by the
/// instance's aggressor role) on the representative bit width/2 — the
/// word-path analogue of sim::place_instance, so the word diagnosis
/// dictionary's population lines up with the bit dictionary's (at
/// width 1 and words = memory_size the placements coincide).
[[nodiscard]] InjectedBitFault place_instance(
    const fault::FaultInstance& instance, const WordRunOptions& opts);

}  // namespace mtg::word
