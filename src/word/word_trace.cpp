#include "word/word_trace.hpp"

#include <algorithm>
#include <iterator>
#include <tuple>

#include "word/word_memory.hpp"

namespace mtg::word {

using march::AddressOrder;
using march::MarchOp;
using march::MarchTest;
using march::OpKind;

namespace {

/// Trace of one full execution (all backgrounds, fixed ⇕ choice), in
/// canonical order. Observations are unique per (background, site, word)
/// — a site reads each word exactly once per background — so sorting the
/// execution-order records canonicalises without merging.
WordRunTrace run_once_trace(const MarchTest& test,
                            const std::vector<Background>& backgrounds,
                            const InjectedBitFault& fault,
                            unsigned any_choices, const WordRunOptions& opts) {
    WordMemory memory(opts.words, opts.width);
    memory.inject(fault);

    WordRunTrace trace;
    for (std::size_t k = 0; k < backgrounds.size(); ++k) {
        const std::uint64_t b0 = backgrounds[k].bits;
        const std::uint64_t b1 = backgrounds[k].complement().bits;
        int any_seen = 0;
        for (std::size_t e = 0; e < test.size(); ++e) {
            const auto& element = test[e];
            bool desc = element.order == AddressOrder::Descending;
            if (element.order == AddressOrder::Any) {
                desc = ((any_choices >> any_seen) & 1u) != 0;
                ++any_seen;
            }
            const int n = opts.words;
            for (int step = 0; step < n; ++step) {
                const int word = desc ? n - 1 - step : step;
                for (std::size_t o = 0; o < element.ops.size(); ++o) {
                    const MarchOp& op = element.ops[o];
                    switch (op.kind) {
                        case OpKind::Write:
                            memory.write(word, op.value ? b1 : b0);
                            break;
                        case OpKind::Wait:
                            memory.wait();
                            break;
                        case OpKind::Read: {
                            const std::uint64_t expected = op.value ? b1 : b0;
                            const std::vector<Trit> got = memory.read(word);
                            std::uint64_t bits = 0;
                            for (int b = 0; b < opts.width; ++b) {
                                const Trit t =
                                    got[static_cast<std::size_t>(b)];
                                const int want = static_cast<int>(
                                    (expected >> b) & 1u);
                                if (is_known(t) && trit_bit(t) != want)
                                    bits |= std::uint64_t{1} << b;
                            }
                            if (bits == 0) break;
                            trace.detected = true;
                            const sim::ReadSite site{static_cast<int>(e),
                                                     static_cast<int>(o)};
                            trace.failing_observations.push_back(
                                {static_cast<int>(k), site, word, bits});
                            if (trace.failing_reads.empty() ||
                                !(trace.failing_reads.back() ==
                                  WordReadSite{static_cast<int>(k), site}))
                                trace.failing_reads.push_back(
                                    {static_cast<int>(k), site});
                            break;
                        }
                    }
                }
            }
        }
    }

    const auto read_key = [](const WordReadSite& r) {
        return std::tuple(r.background, r.site.element, r.site.op);
    };
    const auto obs_key = [](const WordObservation& o) {
        return std::tuple(o.background, o.site.element, o.site.op, o.word);
    };
    std::sort(trace.failing_reads.begin(), trace.failing_reads.end(),
              [&](const auto& a, const auto& b) {
                  return read_key(a) < read_key(b);
              });
    // A site can re-fail after another site interleaved (element with two
    // reads, fault failing at several words), so the execution-order
    // last-entry check above is only a pre-filter.
    trace.failing_reads.erase(
        std::unique(trace.failing_reads.begin(), trace.failing_reads.end()),
        trace.failing_reads.end());
    std::sort(trace.failing_observations.begin(),
              trace.failing_observations.end(),
              [&](const auto& a, const auto& b) {
                  return obs_key(a) < obs_key(b);
              });
    return trace;
}

/// Intersects `next` into `into`: reads survive by membership,
/// observations AND their bit masks (and die when the mask empties).
void intersect(WordRunTrace& into, const WordRunTrace& next) {
    into.detected = into.detected && next.detected;

    std::vector<WordReadSite> reads;
    std::set_intersection(
        into.failing_reads.begin(), into.failing_reads.end(),
        next.failing_reads.begin(), next.failing_reads.end(),
        std::back_inserter(reads), [](const auto& a, const auto& b) {
            return std::tuple(a.background, a.site.element, a.site.op) <
                   std::tuple(b.background, b.site.element, b.site.op);
        });
    into.failing_reads = std::move(reads);

    std::vector<WordObservation> obs;
    auto a = into.failing_observations.begin();
    auto b = next.failing_observations.begin();
    const auto key = [](const WordObservation& o) {
        return std::tuple(o.background, o.site.element, o.site.op, o.word);
    };
    while (a != into.failing_observations.end() &&
           b != next.failing_observations.end()) {
        if (key(*a) < key(*b)) {
            ++a;
        } else if (key(*b) < key(*a)) {
            ++b;
        } else {
            const std::uint64_t bits = a->bits & b->bits;
            if (bits != 0) obs.push_back({a->background, a->site, a->word, bits});
            ++a;
            ++b;
        }
    }
    into.failing_observations = std::move(obs);
}

}  // namespace

WordRunTrace guaranteed_trace(const MarchTest& test,
                              const std::vector<Background>& backgrounds,
                              const InjectedBitFault& fault,
                              const WordRunOptions& opts) {
    const std::vector<unsigned> choices = expansion_choices(test, opts);
    MTG_EXPECTS(!choices.empty());
    WordRunTrace result =
        run_once_trace(test, backgrounds, fault, choices.front(), opts);
    for (std::size_t c = 1; c < choices.size(); ++c)
        intersect(result,
                  run_once_trace(test, backgrounds, fault, choices[c], opts));
    return result;
}

std::vector<WordReadSite> guaranteed_failing_reads(
    const MarchTest& test, const std::vector<Background>& backgrounds,
    const InjectedBitFault& fault, const WordRunOptions& opts) {
    return guaranteed_trace(test, backgrounds, fault, opts).failing_reads;
}

std::vector<WordObservation> guaranteed_failing_observations(
    const MarchTest& test, const std::vector<Background>& backgrounds,
    const InjectedBitFault& fault, const WordRunOptions& opts) {
    return guaranteed_trace(test, backgrounds, fault, opts)
        .failing_observations;
}

}  // namespace mtg::word
