#include "word/word_memory.hpp"

namespace mtg::word {

using fault::FaultKind;

WordMemory::WordMemory(int words, int width)
    : words_(words),
      width_(width),
      bits_(static_cast<std::size_t>(words) * static_cast<std::size_t>(width),
            Trit::X) {
    MTG_EXPECTS(words > 0);
    MTG_EXPECTS(width >= 1 && width <= 64);
}

std::size_t WordMemory::index(BitAddr at) const {
    MTG_EXPECTS(at.word >= 0 && at.word < words_);
    MTG_EXPECTS(at.bit >= 0 && at.bit < width_);
    return static_cast<std::size_t>(at.word) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(at.bit);
}

Trit& WordMemory::cell(BitAddr at) { return bits_[index(at)]; }

void WordMemory::inject(const InjectedBitFault& fault) {
    (void)index(fault.a);
    if (fault::is_two_cell(fault.kind)) (void)index(fault.b);
    faults_.push_back(fault);
}

void WordMemory::enforce_static_coupling() {
    for (const auto& f : faults_) {
        int sv = 0, fv = 0;
        switch (f.kind) {
            case FaultKind::CfstS0F0: sv = 0; fv = 0; break;
            case FaultKind::CfstS0F1: sv = 0; fv = 1; break;
            case FaultKind::CfstS1F0: sv = 1; fv = 0; break;
            case FaultKind::CfstS1F1: sv = 1; fv = 1; break;
            default: continue;
        }
        const Trit a = bits_[index(f.a)];
        if (is_known(a) && trit_bit(a) == sv) cell(f.b) = trit_from_bit(fv);
    }
}

void WordMemory::write(int word, std::uint64_t value) {
    MTG_EXPECTS(word >= 0 && word < words_);

    // Decoder-map faults redirect whole-word accesses when any bit of the
    // word is the aggressor of an AfMap (modelled at word granularity:
    // word-level decoders fail for whole words).
    for (const auto& f : faults_) {
        if (f.kind == FaultKind::AfMap && f.a.word == word &&
            !f.intra_word()) {
            write(f.b.word, value);
            return;
        }
    }

    // Phase 1: per-bit effective values (single-bit effects on own bit).
    std::vector<Trit> old(static_cast<std::size_t>(width_));
    for (int b = 0; b < width_; ++b)
        old[static_cast<std::size_t>(b)] = bits_[index({word, b})];

    for (int b = 0; b < width_; ++b) {
        const int d = static_cast<int>((value >> b) & 1u);
        const Trit before = old[static_cast<std::size_t>(b)];
        Trit effective = trit_from_bit(d);
        for (const auto& f : faults_) {
            if (fault::is_two_cell(f.kind) || !(f.a == BitAddr{word, b}))
                continue;
            switch (f.kind) {
                case FaultKind::Saf0: effective = Trit::Zero; break;
                case FaultKind::Saf1: effective = Trit::One; break;
                case FaultKind::TfUp:
                    if (d == 1 && before == Trit::Zero) effective = Trit::Zero;
                    break;
                case FaultKind::TfDown:
                    if (d == 0 && before == Trit::One) effective = Trit::One;
                    break;
                case FaultKind::Wdf0:
                    if (d == 0 && before == Trit::Zero) effective = Trit::One;
                    break;
                case FaultKind::Wdf1:
                    if (d == 1 && before == Trit::One) effective = Trit::Zero;
                    break;
                default: break;
            }
        }
        cell({word, b}) = effective;
    }

    // Phase 2: coupling effects of aggressor-bit transitions, applied after
    // the whole word is stored (simultaneously-written intra-word victims
    // get corrupted after their own write).
    for (const auto& f : faults_) {
        if (!fault::is_two_cell(f.kind) || f.a.word != word) continue;
        const Trit before = old[static_cast<std::size_t>(f.a.bit)];
        const Trit after = bits_[index(f.a)];
        const bool rising = before == Trit::Zero && after == Trit::One;
        const bool falling = before == Trit::One && after == Trit::Zero;
        Trit& victim = cell(f.b);
        switch (f.kind) {
            case FaultKind::CfinUp:
                if (rising) victim = trit_not(victim);
                break;
            case FaultKind::CfinDown:
                if (falling) victim = trit_not(victim);
                break;
            case FaultKind::CfidUp0:
                if (rising) victim = Trit::Zero;
                break;
            case FaultKind::CfidUp1:
                if (rising) victim = Trit::One;
                break;
            case FaultKind::CfidDown0:
                if (falling) victim = Trit::Zero;
                break;
            case FaultKind::CfidDown1:
                if (falling) victim = Trit::One;
                break;
            case FaultKind::Af:
                victim = after;
                break;
            default: break;
        }
    }

    enforce_static_coupling();
}

std::vector<Trit> WordMemory::read(int word) {
    MTG_EXPECTS(word >= 0 && word < words_);

    for (const auto& f : faults_) {
        if (f.kind == FaultKind::AfMap && f.a.word == word &&
            !f.intra_word()) {
            return read(f.b.word);
        }
    }

    std::vector<Trit> out(static_cast<std::size_t>(width_));
    for (int b = 0; b < width_; ++b) {
        Trit value = bits_[index({word, b})];
        for (const auto& f : faults_) {
            if (fault::is_two_cell(f.kind) || !(f.a == BitAddr{word, b}))
                continue;
            switch (f.kind) {
                case FaultKind::Saf0: value = Trit::Zero; break;
                case FaultKind::Saf1: value = Trit::One; break;
                case FaultKind::Rdf0:
                    if (value == Trit::Zero) {
                        cell({word, b}) = Trit::One;
                        value = Trit::One;
                    }
                    break;
                case FaultKind::Rdf1:
                    if (value == Trit::One) {
                        cell({word, b}) = Trit::Zero;
                        value = Trit::Zero;
                    }
                    break;
                case FaultKind::Drdf0:
                    if (value == Trit::Zero) cell({word, b}) = Trit::One;
                    break;
                case FaultKind::Drdf1:
                    if (value == Trit::One) cell({word, b}) = Trit::Zero;
                    break;
                case FaultKind::Irf0:
                    if (value == Trit::Zero) value = Trit::One;
                    break;
                case FaultKind::Irf1:
                    if (value == Trit::One) value = Trit::Zero;
                    break;
                default: break;
            }
        }
        out[static_cast<std::size_t>(b)] = value;
    }
    enforce_static_coupling();
    return out;
}

void WordMemory::wait() {
    for (const auto& f : faults_) {
        switch (f.kind) {
            case FaultKind::Drf0:
                if (bits_[index(f.a)] == Trit::One) cell(f.a) = Trit::Zero;
                break;
            case FaultKind::Drf1:
                if (bits_[index(f.a)] == Trit::Zero) cell(f.a) = Trit::One;
                break;
            default: break;
        }
    }
    enforce_static_coupling();
}

Trit WordMemory::peek(BitAddr at) const { return bits_[index(at)]; }

}  // namespace mtg::word
