#pragma once

/// \file word_trace.hpp
/// Guaranteed failing reads / failing observations for word-oriented March
/// tests — the word-path counterpart of sim::RunTrace.
///
/// A word test executes the bit test once per data background, so the unit
/// of a failing *read* is the (background index, read site) pair, and the
/// unit of a failing *observation* is (background index, read site, word
/// address) plus the mask of bit positions that mismatched in that word
/// read. A trace entry is *guaranteed* when it fails under EVERY ⇕
/// expansion: reads/observations are set-intersected across expansions and
/// the per-word bit masks are AND-ed (an observation survives only with a
/// non-empty guaranteed bit mask).
///
/// Canonical ordering (asserted by tests/word_trace_test.cpp and relied on
/// by the word diagnosis dictionary's signature comparison): failing reads
/// ascend by (background, element, op); failing observations by
/// (background, element, op, word). Failing bits live in the `bits` mask,
/// so the bit dimension never needs an ordering.
///
/// The scalar functions below run one WordMemory per ⇕ expansion — the
/// cross-validation oracle. The production path is the packed
/// WordBatchRunner::run(), which extracts bit-identical traces for 63·W
/// faults per memory sweep (see word_kernels.hpp).

#include <cstdint>
#include <vector>

#include "march/march_test.hpp"
#include "sim/march_runner.hpp"
#include "word/background.hpp"
#include "word/word_march.hpp"

namespace mtg::word {

/// One guaranteed-failing word read: site `site` of the bit test observed
/// a definite mismatch (some word, some bit) during background
/// `background` in every ⇕ expansion.
struct WordReadSite {
    int background{0};
    sim::ReadSite site;

    friend bool operator==(const WordReadSite&, const WordReadSite&) = default;
};

/// One guaranteed-failing word observation: reading word `word` at site
/// `site` during background `background` mismatches at every bit position
/// of `bits` (LSB = bit 0) in every ⇕ expansion.
struct WordObservation {
    int background{0};
    sim::ReadSite site;
    int word{0};
    std::uint64_t bits{0};

    friend bool operator==(const WordObservation&,
                           const WordObservation&) = default;
};

/// Guaranteed trace of one bit fault under a word test. `detected` is the
/// word::detects verdict (every expansion mismatches *somewhere*) — it can
/// be true with empty trace vectors when different expansions fail
/// different reads.
struct WordRunTrace {
    bool detected{false};
    std::vector<WordReadSite> failing_reads;
    std::vector<WordObservation> failing_observations;

    friend bool operator==(const WordRunTrace&, const WordRunTrace&) = default;
};

/// Full guaranteed trace via the scalar WordMemory, one run per ⇕
/// expansion — the oracle the packed word kernel is differenced against.
[[nodiscard]] WordRunTrace guaranteed_trace(
    const march::MarchTest& test, const std::vector<Background>& backgrounds,
    const InjectedBitFault& fault, const WordRunOptions& opts = {});

/// Just the guaranteed (background, site) reads, canonical order.
[[nodiscard]] std::vector<WordReadSite> guaranteed_failing_reads(
    const march::MarchTest& test, const std::vector<Background>& backgrounds,
    const InjectedBitFault& fault, const WordRunOptions& opts = {});

/// Just the guaranteed (background, site, word, bits) observations,
/// canonical order — the word dictionary's signature material.
[[nodiscard]] std::vector<WordObservation> guaranteed_failing_observations(
    const march::MarchTest& test, const std::vector<Background>& backgrounds,
    const InjectedBitFault& fault, const WordRunOptions& opts = {});

}  // namespace mtg::word
