#include "word/word_march.hpp"

#include "engine/engine.hpp"
#include "march/expansion.hpp"

namespace mtg::word {

using march::AddressOrder;
using march::MarchOp;
using march::MarchTest;
using march::OpKind;

int word_complexity(const MarchTest& test,
                    const std::vector<Background>& backgrounds) {
    return test.complexity() * static_cast<int>(backgrounds.size());
}

namespace {

/// Runs the test under one background; returns true on any definite
/// mismatch, false otherwise; `well_formed` (when non-null) is cleared if a
/// read returns an unknown bit or a fault-free expectation would fail.
bool run_background(const MarchTest& test, const Background& background,
                    WordMemory& memory, unsigned any_choices) {
    const std::uint64_t b0 = background.bits;
    const std::uint64_t b1 = background.complement().bits;

    bool detected = false;
    int any_seen = 0;
    for (const auto& element : test.elements()) {
        bool desc = element.order == AddressOrder::Descending;
        if (element.order == AddressOrder::Any) {
            desc = ((any_choices >> any_seen) & 1u) != 0;
            ++any_seen;
        }
        const int n = memory.words();
        for (int step = 0; step < n; ++step) {
            const int word = desc ? n - 1 - step : step;
            for (const MarchOp& op : element.ops) {
                switch (op.kind) {
                    case OpKind::Write:
                        memory.write(word, op.value ? b1 : b0);
                        break;
                    case OpKind::Wait:
                        memory.wait();
                        break;
                    case OpKind::Read: {
                        const std::uint64_t expected = op.value ? b1 : b0;
                        const std::vector<Trit> got = memory.read(word);
                        for (int bit = 0; bit < memory.width(); ++bit) {
                            const Trit t = got[static_cast<std::size_t>(bit)];
                            const int want =
                                static_cast<int>((expected >> bit) & 1u);
                            if (is_known(t) && trit_bit(t) != want)
                                detected = true;
                        }
                        break;
                    }
                }
            }
        }
    }
    return detected;
}

}  // namespace

bool run_once_detects(const MarchTest& test,
                      const std::vector<Background>& backgrounds,
                      const InjectedBitFault& fault, unsigned any_choices,
                      const WordRunOptions& opts) {
    WordMemory memory(opts.words, opts.width);
    memory.inject(fault);
    bool detected = false;
    for (const Background& background : backgrounds)
        detected = run_background(test, background, memory, any_choices) ||
                   detected;
    return detected;
}

std::vector<unsigned> expansion_choices(const MarchTest& test,
                                        const WordRunOptions& opts) {
    return march::expansion_choices(test, opts.max_any_expansion);
}

bool detects(const MarchTest& test, const std::vector<Background>& backgrounds,
             const InjectedBitFault& fault, const WordRunOptions& opts) {
    for (unsigned choice : expansion_choices(test, opts)) {
        if (!run_once_detects(test, backgrounds, fault, choice, opts))
            return false;
    }
    return true;
}

bool covers_everywhere(const MarchTest& test,
                       const std::vector<Background>& backgrounds,
                       fault::FaultKind kind, const WordRunOptions& opts) {
    // One engine query over the whole (cached) placement set; the scalar
    // per-fault loop remains available through detects() as the oracle.
    return engine::Engine::global().covers_everywhere(test, backgrounds, kind,
                                                      opts);
}

bool is_well_formed(const MarchTest& test,
                    const std::vector<Background>& backgrounds,
                    const WordRunOptions& opts) {
    for (unsigned choice : expansion_choices(test, opts)) {
        WordMemory memory(opts.words, opts.width);
        // A fault-free run must produce no mismatch and no unknown read
        // after initialisation; reuse run_background and additionally
        // demand zero detections.
        for (const Background& background : backgrounds) {
            if (run_background(test, background, memory, choice)) return false;
        }
    }
    return true;
}

}  // namespace mtg::word
