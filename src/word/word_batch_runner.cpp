#include "word/word_batch_runner.hpp"

#include <algorithm>
#include <atomic>

namespace mtg::word {

using march::AddressOrder;
using march::MarchOp;
using march::MarchTest;
using march::OpKind;

WordBatchRunner::WordBatchRunner(const MarchTest& test,
                                 std::vector<Background> backgrounds,
                                 const WordRunOptions& opts,
                                 util::ThreadPool* pool)
    : test_(test), backgrounds_(std::move(backgrounds)), opts_(opts),
      pool_(pool != nullptr ? pool : &util::ThreadPool::global()),
      expansions_(expansion_choices(test, opts)) {
    MTG_EXPECTS(opts.words > 0);
    MTG_EXPECTS(opts.width >= 1 && opts.width <= 64);
    MTG_EXPECTS(!backgrounds_.empty());
}

LaneMask WordBatchRunner::run_pass(const InjectedBitFault* faults, int count,
                                   unsigned choice) const {
    const LaneMask used = used_lanes(count);
    PackedWordMemory memory(opts_.words, opts_.width);
    for (int i = 0; i < count; ++i)
        memory.inject(faults[i], LaneMask{1} << (i + 1));

    PackedWordMemory::ReadResult got[64];
    LaneMask detected = 0;
    // Backgrounds stream through the packed lanes on the same memory, so
    // state carries from one background run into the next exactly as in
    // the scalar word runner.
    for (const Background& background : backgrounds_) {
        const std::uint64_t b0 = background.bits;
        const std::uint64_t b1 = background.complement().bits;
        int any_seen = 0;
        for (const auto& element : test_.elements()) {
            bool desc = element.order == AddressOrder::Descending;
            if (element.order == AddressOrder::Any) {
                desc = ((choice >> any_seen) & 1u) != 0;
                ++any_seen;
            }
            const int n = opts_.words;
            for (int step = 0; step < n; ++step) {
                const int word = desc ? n - 1 - step : step;
                for (const MarchOp& op : element.ops) {
                    switch (op.kind) {
                        case OpKind::Write:
                            memory.write(word, op.value ? b1 : b0);
                            break;
                        case OpKind::Wait:
                            memory.wait();
                            break;
                        case OpKind::Read: {
                            const std::uint64_t expected = op.value ? b1 : b0;
                            memory.read(word, got);
                            for (int bit = 0; bit < opts_.width; ++bit) {
                                const LaneMask expmask =
                                    ((expected >> bit) & 1u) ? kAllLanes
                                                             : LaneMask{0};
                                detected |= got[bit].known &
                                            (got[bit].value ^ expmask) & used;
                            }
                            break;
                        }
                    }
                }
            }
        }
    }
    return detected;
}

std::vector<bool> WordBatchRunner::detects(
    const std::vector<InjectedBitFault>& population) const {
    std::vector<bool> result(population.size(), false);
    if (population.empty()) return result;
    const std::size_t chunks = (population.size() + kChunkLanes - 1) / kChunkLanes;
    const std::size_t expansions = expansions_.size();

    // Fused (chunk × expansion) grid with per-worker AND accumulators,
    // merged after the drain — identical results for any worker count.
    std::vector<std::vector<LaneMask>> acc(
        pool_->worker_count(), std::vector<LaneMask>(chunks, kAllLanes));
    pool_->parallel_for(
        chunks * expansions, [&](std::size_t item, unsigned worker) {
            const std::size_t c = item / expansions;
            const unsigned choice = expansions_[item % expansions];
            acc[worker][c] &= run_pass(population.data() + c * kChunkLanes,
                                       chunk_count(population.size(), c),
                                       choice);
        });

    for (std::size_t c = 0; c < chunks; ++c) {
        const int count = chunk_count(population.size(), c);
        LaneMask detected = used_lanes(count);
        for (const auto& worker_acc : acc) detected &= worker_acc[c];
        for (int i = 0; i < count; ++i)
            result[c * kChunkLanes + static_cast<std::size_t>(i)] =
                ((detected >> (i + 1)) & 1u) != 0;
    }
    return result;
}

bool WordBatchRunner::detects_all(
    const std::vector<InjectedBitFault>& population) const {
    if (population.empty()) return true;
    const std::size_t chunks = (population.size() + kChunkLanes - 1) / kChunkLanes;
    const std::size_t expansions = expansions_.size();

    std::atomic<bool> escape{false};
    pool_->parallel_for(
        chunks * expansions, [&](std::size_t item, unsigned) {
            if (escape.load(std::memory_order_relaxed)) return;
            const std::size_t c = item / expansions;
            const unsigned choice = expansions_[item % expansions];
            const int count = chunk_count(population.size(), c);
            if (run_pass(population.data() + c * kChunkLanes, count, choice) !=
                used_lanes(count))
                escape.store(true, std::memory_order_relaxed);
        });
    return !escape.load(std::memory_order_relaxed);
}

std::vector<InjectedBitFault> coverage_population(fault::FaultKind kind,
                                                  const WordRunOptions& opts) {
    std::vector<InjectedBitFault> population;
    if (!fault::is_two_cell(kind)) {
        population.reserve(static_cast<std::size_t>(opts.words) *
                           static_cast<std::size_t>(opts.width));
        for (int w = 0; w < opts.words; ++w)
            for (int b = 0; b < opts.width; ++b)
                population.push_back(InjectedBitFault::single(kind, {w, b}));
        return population;
    }
    // Intra-word: every ordered bit pair of a representative word.
    const int word = opts.words / 2;
    for (int a = 0; a < opts.width; ++a)
        for (int v = 0; v < opts.width; ++v)
            if (a != v)
                population.push_back(
                    InjectedBitFault::coupling(kind, {word, a}, {word, v}));
    // Inter-word: every ordered word pair on a representative bit, plus a
    // cross-bit pair to exercise bit-position asymmetry.
    const int bit = opts.width / 2;
    for (int wa = 0; wa < opts.words; ++wa)
        for (int wv = 0; wv < opts.words; ++wv)
            if (wa != wv)
                population.push_back(
                    InjectedBitFault::coupling(kind, {wa, bit}, {wv, bit}));
    if (opts.width >= 2)
        population.push_back(InjectedBitFault::coupling(
            kind, {0, 0}, {opts.words - 1, opts.width - 1}));
    return population;
}

}  // namespace mtg::word
