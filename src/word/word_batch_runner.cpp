#include "word/word_batch_runner.hpp"

#include "fault/instance.hpp"
#include "fault/placement.hpp"
#include "sim/lane_dispatch.hpp"

namespace mtg::word {

using march::MarchTest;

WordBatchRunner::WordBatchRunner(const MarchTest& test,
                                 std::vector<Background> backgrounds,
                                 const WordRunOptions& opts,
                                 util::ThreadPool* pool, int lane_width)
    : width_(lane_width != 0 ? lane_width : sim::active_lane_width()),
      adaptive_(lane_width == 0 && !sim::lane_width_forced()) {
    MTG_EXPECTS(opts.words > 0);
    MTG_EXPECTS(opts.width >= 1 && opts.width <= 64);
    MTG_EXPECTS(!backgrounds.empty());
    MTG_EXPECTS(sim::lane_width_supported(width_));
    plan_.test = test;
    plan_.backgrounds = std::move(backgrounds);
    plan_.opts = opts;
    plan_.pool = pool != nullptr ? pool : &util::ThreadPool::global();
    plan_.expansions = expansion_choices(test, opts);
    plan_.sites = sim::read_sites(test);
    plan_.site_id = sim::read_site_ids(test);
}

int WordBatchRunner::width_for(std::size_t population) const {
    return adaptive_ ? sim::clamp_lane_width(width_, population) : width_;
}

sim::LaneIsa WordBatchRunner::isa_for(std::size_t population) const {
    // Work items = total pass executions of the job; the zmm-vs-ymm
    // heuristic (resolve_lane_isa) keys off how long the job runs.
    return sim::active_lane_isa(
        sim::block_chunk_total<LaneBlock<8>>(population) *
        plan_.expansions.size());
}

std::vector<bool> WordBatchRunner::detects(
    std::span<const InjectedBitFault> population) const {
    switch (width_for(population.size())) {
        case 4:
            return detail::word_detects<LaneBlock<4>>(
                plan_, detail::word_pass_w4(), population);
        case 8:
            return detail::word_detects<LaneBlock<8>>(
                plan_, detail::word_pass_w8(isa_for(population.size())),
                population);
        default:
            return detail::word_detects<LaneMask>(
                plan_, detail::word_pass_w1(), population);
    }
}

bool WordBatchRunner::detects_all(
    std::span<const InjectedBitFault> population) const {
    switch (width_for(population.size())) {
        case 4:
            return detail::word_detects_all<LaneBlock<4>>(
                plan_, detail::word_pass_w4(), population);
        case 8:
            return detail::word_detects_all<LaneBlock<8>>(
                plan_, detail::word_pass_w8(isa_for(population.size())),
                population);
        default:
            return detail::word_detects_all<LaneMask>(
                plan_, detail::word_pass_w1(), population);
    }
}

std::vector<WordRunTrace> WordBatchRunner::run(
    std::span<const InjectedBitFault> population) const {
    switch (width_for(population.size())) {
        case 4:
            return detail::word_run<LaneBlock<4>>(
                plan_, detail::word_pass_w4(), population);
        case 8:
            return detail::word_run<LaneBlock<8>>(
                plan_, detail::word_pass_w8(isa_for(population.size())),
                population);
        default:
            return detail::word_run<LaneMask>(plan_, detail::word_pass_w1(),
                                              population);
    }
}

std::vector<InjectedBitFault> coverage_population(fault::FaultKind kind,
                                                  const WordRunOptions& opts) {
    std::vector<InjectedBitFault> population;
    if (!fault::is_two_cell(kind)) {
        population.reserve(static_cast<std::size_t>(opts.words) *
                           static_cast<std::size_t>(opts.width));
        for (int w = 0; w < opts.words; ++w)
            for (int b = 0; b < opts.width; ++b)
                population.push_back(InjectedBitFault::single(kind, {w, b}));
        return population;
    }
    // Intra-word: every ordered bit pair of a representative word.
    const int word = opts.words / 2;
    for (int a = 0; a < opts.width; ++a)
        for (int v = 0; v < opts.width; ++v)
            if (a != v)
                population.push_back(
                    InjectedBitFault::coupling(kind, {word, a}, {word, v}));
    // Inter-word: every ordered word pair on a representative bit, plus a
    // cross-bit pair to exercise bit-position asymmetry.
    const int bit = opts.width / 2;
    for (int wa = 0; wa < opts.words; ++wa)
        for (int wv = 0; wv < opts.words; ++wv)
            if (wa != wv)
                population.push_back(
                    InjectedBitFault::coupling(kind, {wa, bit}, {wv, bit}));
    // Only when it is genuinely cross-word: at words == 1 the pair
    // {0,0} -> {0, width-1} already exists in the intra-word block above
    // and re-adding it would duplicate a placement.
    if (opts.words >= 2 && opts.width >= 2)
        population.push_back(InjectedBitFault::coupling(
            kind, {0, 0}, {opts.words - 1, opts.width - 1}));
    return population;
}

InjectedBitFault place_instance(const fault::FaultInstance& instance,
                                const WordRunOptions& opts) {
    const auto [lo, hi] = fault::canonical_slots(opts.words);
    MTG_EXPECTS(lo != hi);
    const int bit = opts.width / 2;
    if (!fault::is_two_cell(instance.kind))
        return InjectedBitFault::single(instance.kind, {lo, bit});
    if (fault::aggressor_at_lo(instance))
        return InjectedBitFault::coupling(instance.kind, {lo, bit},
                                          {hi, bit});
    return InjectedBitFault::coupling(instance.kind, {hi, bit}, {lo, bit});
}

}  // namespace mtg::word
