#pragma once

/// \file scorer.hpp
/// Fitness oracle of the synthesis search: batched coverage probes
/// through an engine::Engine session.
///
/// A probe renders the candidate skeleton and issues one Want::Detects
/// query over the kind-expanded bit universe; the per-fault verdicts are
/// folded through the cached population's per-kind offsets into a
/// per-kind covered count — the fitness signal the beam search ranks on
/// — without ever re-expanding a population. Probes default to the
/// dominance-pruned expansion (fault/dominance.hpp): dominated faults
/// add no signal, so the pruned sweep is the same ranking for a fraction
/// of the per-probe work.
///
/// Acceptance is a *different* question from fitness: accepts_full()
/// issues Want::DetectsAll with prune=false over the full universe, so a
/// test is only ever declared covering on the unreduced population. This
/// is the safety net that makes dominance pruning a pure accelerator.
///
/// Identical-rendering candidates are deduplicated by a bounded FIFO
/// probe cache keyed on the canonical rendered text — the same key the
/// determinism battery round-trips through the parser.

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "fault/kinds.hpp"
#include "synth/skeleton.hpp"

namespace mtg::synth {

/// Coverage verdict of one probe.
struct Score {
    std::size_t covered{0};  ///< detected faults in the probed population
    std::size_t total{0};    ///< probed population size
    /// Covered / total per kind, aligned with ScorerConfig::kinds in
    /// canonical order (engine::canonical_kinds).
    std::vector<std::size_t> kind_covered;
    std::vector<std::size_t> kind_total;

    [[nodiscard]] bool full() const { return covered == total; }
    /// Number of kinds with every probed placement covered.
    [[nodiscard]] std::size_t kinds_full() const;
};

struct ScorerConfig {
    std::vector<fault::FaultKind> kinds;  ///< target universe (any order)
    sim::RunOptions opts{};
    bool prune{true};   ///< probe the dominance-pruned expansion
    std::size_t probe_cache_capacity{4096};  ///< 0 disables the cache
};

class Scorer {
public:
    /// `engine` must outlive the Scorer. Kinds are canonicalised once;
    /// Score vectors follow that order (see kinds()).
    Scorer(const engine::Engine& engine, ScorerConfig config);

    /// Canonical target kinds — the order of Score::kind_covered.
    [[nodiscard]] const std::vector<fault::FaultKind>& kinds() const {
        return kinds_;
    }

    /// Fitness probe (pruned universe by default). Cached by canonical
    /// rendered text.
    [[nodiscard]] Score probe(const Skeleton& candidate);

    /// Acceptance gate: Want::DetectsAll over the FULL universe,
    /// prune=false, regardless of config. Never cached through the probe
    /// cache (the Engine's population cache still serves the expansion).
    [[nodiscard]] bool accepts_full(const Skeleton& candidate) const;
    [[nodiscard]] bool accepts_full(const march::MarchTest& test) const;

    struct Stats {
        std::size_t probes{0};       ///< probe() calls
        std::size_t cache_hits{0};   ///< served from the probe cache
        std::size_t full_checks{0};  ///< accepts_full() calls
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

    [[nodiscard]] const ScorerConfig& config() const { return config_; }

private:
    const engine::Engine& engine_;
    ScorerConfig config_;
    std::vector<fault::FaultKind> kinds_;

    std::map<std::string, Score> cache_;
    std::deque<std::string> cache_order_;  ///< FIFO eviction
    mutable Stats stats_;
};

}  // namespace mtg::synth
