#pragma once

/// \file skeleton.hpp
/// Slot-level intermediate representation for March test synthesis.
///
/// The search (beam_search.hpp) does not mutate march::MarchTest
/// directly: concrete data values are entangled — the value an element
/// reads is whatever the previous element left behind — so naive
/// point mutations mostly produce ill-formed tests (reads of wrong or
/// uninitialised values) that waste oracle probes. A Skeleton factors
/// that entanglement out. Each slot is a March element template: an
/// address order plus a sequence of *abstract* operations interpreted
/// against the tracked fault-free data value v:
///
///     Read       -> r(v)
///     WriteFlip  -> w(1-v), v := 1-v      (transition write)
///     WriteSame  -> w(v)                  (non-transition write)
///     Delay      -> del
///
/// v starts at the skeleton's init polarity — the one free data
/// polarity; every other polarity in the rendered test is derived by the
/// WriteFlip toggles, which is exactly the polarity structure of every
/// known March test. A skeleton whose first operation is a write renders
/// to a well-formed test *by construction* (every read expects the value
/// the memory provably holds), so the search space contains no wasted
/// candidates and rewrites (drop an op, flip the init polarity, merge
/// two slots) re-bind all downstream polarities automatically.
///
/// Rendering goes through the ordinary march::MarchTest so the rendered
/// text round-trips the parser (asserted in tests — the synthesis probe
/// cache keys on exactly this canonical text).

#include <cstdint>
#include <string>
#include <vector>

#include "march/march_test.hpp"

namespace mtg::synth {

/// Abstract operation of a slot, interpreted against the tracked value.
enum class SlotOp : std::uint8_t {
    Read,       ///< r(v)
    WriteFlip,  ///< w(1-v), toggles v
    WriteSame,  ///< w(v) — non-transition write (initialisation when first)
    Delay,      ///< del (retention faults)
};

/// Printable name of an abstract op ("r", "w!", "w=", "del").
[[nodiscard]] std::string slot_op_name(SlotOp op);

/// One March element template: an address order plus abstract ops.
struct Slot {
    march::AddressOrder order{march::AddressOrder::Any};
    std::vector<SlotOp> ops;

    friend bool operator==(const Slot&, const Slot&) = default;
};

/// A candidate March test under construction.
struct Skeleton {
    int init_polarity{0};     ///< v before the first operation (0 or 1)
    std::vector<Slot> slots;

    friend bool operator==(const Skeleton&, const Skeleton&) = default;

    [[nodiscard]] bool empty() const { return slots.empty(); }

    /// True when the first abstract operation is a write — the condition
    /// under which render() is well-formed by construction.
    [[nodiscard]] bool starts_with_write() const;

    /// Memory operations of the rendered test (Delay excluded), without
    /// rendering.
    [[nodiscard]] int complexity() const;

    /// Concrete March test: walk the slots tracking v from
    /// init_polarity.
    [[nodiscard]] march::MarchTest render() const;

    /// Canonical text of the rendered test (Ascii notation) — the probe
    /// cache key: skeletons that render identically share one oracle
    /// verdict.
    [[nodiscard]] std::string canonical_text() const;
};

/// The slot-template library the search expands candidates from. Every
/// template is a short abstract op sequence; the search crosses them
/// with the three address orders (and, for the opening slot, both init
/// polarities). `include_delay` adds the retention templates (only
/// useful when the target universe contains DRF kinds).
[[nodiscard]] const std::vector<std::vector<SlotOp>>& slot_templates(
    bool include_delay);

}  // namespace mtg::synth
