#pragma once

/// \file beam_search.hpp
/// Beam search over Skeleton space, plus the post-acceptance refiner.
///
/// The search grows candidates slot by slot. Each round expands every
/// beam survivor by one slot (every template from slot_templates ×
/// every address order), probes the children through the Scorer, and
/// keeps the best `beam_width` by a length-penalised objective
///
///     objective = covered − length_penalty · complexity
///
/// so a child that covers the same faults with fewer operations always
/// outranks the longer one. With `lookahead > 0` a child's rank is the
/// best objective reachable within `lookahead` further greedy steps — a
/// depth-limited rollout that lets the search climb through plateau
/// slots (e.g. the w-only sensitiser element that pays off only after
/// the next read element lands).
///
/// **Determinism is load-bearing**: same (kinds, beam, lookahead, seed)
/// must synthesise byte-identical tests on any worker count, lane width
/// or backend. The ingredients: Engine results are bit-identical across
/// backends; candidate generation iterates fixed-order vectors (no
/// unordered containers); ranking ties break by (complexity asc, seeded
/// hash asc, canonical text asc) where the hash is FNV-1a of the
/// canonical text mixed with the seed through SplitMix64 — seeded
/// diversity without wall-clock or global RNG state. The determinism
/// battery (tests/synth_test.cpp) holds this contract across backends
/// and thread counts.
///
/// Acceptance: a candidate whose *pruned* probe is full is re-validated
/// with Scorer::accepts_full (full universe, prune=false); only then is
/// it accepted. The LookaheadRefiner then applies drop-op /
/// flip-polarity / merge-element rewrites, keeping a rewrite only when
/// the rewritten test still passes the full-universe gate and improves
/// (shorter, or equal length with lexicographically smaller canonical
/// text — a well-founded descent, so refinement terminates).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "synth/scorer.hpp"
#include "synth/skeleton.hpp"

namespace mtg::synth {

struct SearchConfig {
    int beam_width{8};
    int lookahead{1};       ///< greedy rollout depth for ranking (0 = off)
    int max_slots{8};       ///< give up after this many growth rounds
    std::uint64_t seed{0};  ///< tie-break diversity; same seed = same test
    double length_penalty{0.125};  ///< objective cost per memory op
    /// Offer Delay slots (retention faults). Callers normally set this to
    /// fault::needs_wait of the target kinds.
    bool include_delay{false};
};

/// Outcome of one synthesis run.
struct SearchResult {
    std::optional<Skeleton> skeleton;  ///< accepted candidate, if any
    march::MarchTest test;             ///< rendering of *skeleton* (refined)
    int rounds{0};                     ///< growth rounds executed
    Scorer::Stats probe_stats;         ///< scorer counters at completion
    /// Best pruned-universe coverage seen, for diagnostics on failure.
    std::size_t best_covered{0};
    std::size_t best_total{0};

    [[nodiscard]] bool found() const { return skeleton.has_value(); }
};

/// Seeded tie-break hash: FNV-1a of `text` mixed with `seed` through one
/// SplitMix64 round. Exposed for the determinism tests.
[[nodiscard]] std::uint64_t tie_break_hash(const std::string& text,
                                           std::uint64_t seed);

class BeamSearch {
public:
    BeamSearch(Scorer& scorer, SearchConfig config);

    /// Runs rounds until a candidate passes the full-universe acceptance
    /// gate or `max_slots` rounds elapse. The accepted candidate is
    /// refined before being returned.
    [[nodiscard]] SearchResult run();

    [[nodiscard]] const SearchConfig& config() const { return config_; }

private:
    struct Ranked {
        Skeleton skeleton;
        Score score;
        int complexity{0};
        double objective{0.0};       ///< immediate objective
        double rank_value{0.0};      ///< objective after lookahead rollout
        std::uint64_t tie_hash{0};
        std::string text;
    };

    Scorer& scorer_;
    SearchConfig config_;

    [[nodiscard]] double objective_of(const Score& score,
                                      int complexity) const;
    [[nodiscard]] Ranked rank(Skeleton skeleton) const;
    /// All one-slot extensions of `parent` (templates × orders), ranked.
    [[nodiscard]] std::vector<Ranked> children_of(const Skeleton& parent) const;
    /// Best objective reachable from `from` in up to `depth` greedy steps.
    [[nodiscard]] double rollout(const Skeleton& from, int depth) const;
    static void sort_ranked(std::vector<Ranked>& pool);
};

/// Post-acceptance simplifier: greedy first-improvement descent over
/// drop-op, merge-element and flip-polarity rewrites, each kept only if
/// the rewritten skeleton still passes the full-universe gate.
class LookaheadRefiner {
public:
    explicit LookaheadRefiner(Scorer& scorer) : scorer_(scorer) {}

    /// Returns the refined skeleton (possibly unchanged). `accepted`
    /// must already pass Scorer::accepts_full.
    [[nodiscard]] Skeleton refine(Skeleton accepted) const;

private:
    Scorer& scorer_;

    /// All single-rewrite neighbours, in deterministic generation order.
    [[nodiscard]] static std::vector<Skeleton> rewrites(const Skeleton& s);
};

}  // namespace mtg::synth
