#include "synth/beam_search.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <tuple>
#include <utility>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace mtg::synth {

std::uint64_t tie_break_hash(const std::string& text, std::uint64_t seed) {
    // FNV-1a over the canonical text, then one SplitMix64 round keyed by
    // the seed: different seeds permute the tie order without any global
    // RNG state, identical inputs always hash identically.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return SplitMix64(h ^ seed).next();
}

BeamSearch::BeamSearch(Scorer& scorer, SearchConfig config)
    : scorer_(scorer), config_(config) {
    MTG_EXPECTS(config_.beam_width > 0);
    MTG_EXPECTS(config_.lookahead >= 0);
    MTG_EXPECTS(config_.max_slots > 0);
}

double BeamSearch::objective_of(const Score& score, int complexity) const {
    return static_cast<double>(score.covered) -
           config_.length_penalty * static_cast<double>(complexity);
}

BeamSearch::Ranked BeamSearch::rank(Skeleton skeleton) const {
    Ranked ranked;
    ranked.score = scorer_.probe(skeleton);
    ranked.text = skeleton.canonical_text();
    ranked.complexity = skeleton.complexity();
    ranked.objective = objective_of(ranked.score, ranked.complexity);
    ranked.rank_value = ranked.objective;
    ranked.tie_hash = tie_break_hash(ranked.text, config_.seed);
    ranked.skeleton = std::move(skeleton);
    return ranked;
}

std::vector<BeamSearch::Ranked> BeamSearch::children_of(
    const Skeleton& parent) const {
    static constexpr std::array<march::AddressOrder, 3> kOrders{
        march::AddressOrder::Any, march::AddressOrder::Ascending,
        march::AddressOrder::Descending};

    std::vector<Ranked> children;
    for (const std::vector<SlotOp>& ops :
         slot_templates(config_.include_delay)) {
        for (const march::AddressOrder order : kOrders) {
            Skeleton child = parent;
            child.slots.push_back(Slot{order, ops});
            // An opening element that reads before any write renders an
            // ill-formed test (undefined expected value) — never probe it.
            if (!child.starts_with_write()) continue;
            children.push_back(rank(std::move(child)));
        }
    }
    return children;
}

double BeamSearch::rollout(const Skeleton& from, int depth) const {
    if (depth <= 0) return objective_of(scorer_.probe(from), from.complexity());
    std::vector<Ranked> children = children_of(from);
    if (children.empty())
        return objective_of(scorer_.probe(from), from.complexity());
    sort_ranked(children);
    // Greedy descent through the single best child; the rollout value is
    // the best objective seen anywhere along the chain.
    const double here = objective_of(scorer_.probe(from), from.complexity());
    return std::max(here, rollout(children.front().skeleton, depth - 1));
}

void BeamSearch::sort_ranked(std::vector<Ranked>& pool) {
    std::sort(pool.begin(), pool.end(), [](const Ranked& a, const Ranked& b) {
        if (a.rank_value != b.rank_value) return a.rank_value > b.rank_value;
        if (a.complexity != b.complexity) return a.complexity < b.complexity;
        if (a.tie_hash != b.tie_hash) return a.tie_hash < b.tie_hash;
        return a.text < b.text;
    });
}

SearchResult BeamSearch::run() {
    SearchResult result;

    std::vector<Skeleton> beam;
    // Roots: the empty skeleton at both init polarities. Round 1 grows
    // them into every one-slot opener that starts with a write.
    beam.push_back(Skeleton{0, {}});
    beam.push_back(Skeleton{1, {}});

    for (int round = 1; round <= config_.max_slots; ++round) {
        result.rounds = round;

        // Expand every beam survivor; dedup by rendered text so the beam
        // spends its width on distinct tests, keeping the first (= best
        // parent's) occurrence.
        std::vector<Ranked> pool;
        std::set<std::string> seen;
        for (const Skeleton& parent : beam) {
            for (Ranked& child : children_of(parent)) {
                if (!seen.insert(child.text).second) continue;
                pool.push_back(std::move(child));
            }
        }
        if (pool.empty()) break;
        sort_ranked(pool);

        for (const Ranked& candidate : pool) {
            result.best_covered =
                std::max(result.best_covered, candidate.score.covered);
            result.best_total = candidate.score.total;
        }

        // Acceptance pass: a full pruned probe is a *hypothesis*; only
        // the full-universe DetectsAll gate accepts. Ranked order makes
        // the first accept the shortest (length-penalised) covering test.
        for (const Ranked& candidate : pool) {
            if (!candidate.score.full()) continue;
            if (!scorer_.accepts_full(candidate.skeleton)) continue;
            Skeleton refined =
                LookaheadRefiner(scorer_).refine(candidate.skeleton);
            result.test = refined.render();
            result.skeleton = std::move(refined);
            result.probe_stats = scorer_.stats();
            return result;
        }

        // Lookahead re-rank of the head of the pool: a child's worth is
        // the best objective reachable within `lookahead` greedy steps.
        const std::size_t head = std::min(
            pool.size(), static_cast<std::size_t>(config_.beam_width) * 4);
        if (config_.lookahead > 0) {
            for (std::size_t i = 0; i < head; ++i) {
                pool[i].rank_value = std::max(
                    pool[i].objective,
                    rollout(pool[i].skeleton, config_.lookahead));
            }
            std::vector<Ranked> head_pool(pool.begin(),
                                          pool.begin() + static_cast<std::ptrdiff_t>(head));
            sort_ranked(head_pool);
            std::move(head_pool.begin(), head_pool.end(), pool.begin());
        }

        beam.clear();
        const std::size_t width = std::min(
            pool.size(), static_cast<std::size_t>(config_.beam_width));
        for (std::size_t i = 0; i < width; ++i)
            beam.push_back(std::move(pool[i].skeleton));
    }

    result.probe_stats = scorer_.stats();
    return result;
}

Skeleton LookaheadRefiner::refine(Skeleton accepted) const {
    bool improved = true;
    while (improved) {
        improved = false;
        const int complexity = accepted.complexity();
        const std::string text = accepted.canonical_text();
        for (Skeleton& candidate : rewrites(accepted)) {
            if (candidate.slots.empty() || !candidate.starts_with_write())
                continue;
            const int rewritten = candidate.complexity();
            const std::string rewritten_text = candidate.canonical_text();
            // Well-founded descent: strictly shorter, or same length with
            // lexicographically smaller canonical text (flip-polarity and
            // merge-element preserve complexity but canonicalise).
            const bool better =
                rewritten < complexity ||
                (rewritten == complexity && rewritten_text < text);
            if (!better) continue;
            if (!scorer_.accepts_full(candidate)) continue;
            accepted = std::move(candidate);
            improved = true;
            break;  // first improvement; restart the rewrite scan
        }
    }
    return accepted;
}

std::vector<Skeleton> LookaheadRefiner::rewrites(const Skeleton& s) {
    std::vector<Skeleton> out;
    // Drop-op: every single-op deletion (removing the slot if it empties).
    for (std::size_t i = 0; i < s.slots.size(); ++i) {
        for (std::size_t j = 0; j < s.slots[i].ops.size(); ++j) {
            Skeleton candidate = s;
            candidate.slots[i].ops.erase(
                candidate.slots[i].ops.begin() + static_cast<std::ptrdiff_t>(j));
            if (candidate.slots[i].ops.empty())
                candidate.slots.erase(candidate.slots.begin() +
                                      static_cast<std::ptrdiff_t>(i));
            out.push_back(std::move(candidate));
        }
    }
    // Merge-element: fuse adjacent slots with compatible orders (equal, or
    // one side ⇕ which specialises to the other).
    for (std::size_t i = 0; i + 1 < s.slots.size(); ++i) {
        const march::AddressOrder a = s.slots[i].order;
        const march::AddressOrder b = s.slots[i + 1].order;
        if (a != b && a != march::AddressOrder::Any &&
            b != march::AddressOrder::Any)
            continue;
        Skeleton candidate = s;
        candidate.slots[i].order = (a == march::AddressOrder::Any) ? b : a;
        candidate.slots[i].ops.insert(candidate.slots[i].ops.end(),
                                      s.slots[i + 1].ops.begin(),
                                      s.slots[i + 1].ops.end());
        candidate.slots.erase(candidate.slots.begin() +
                              static_cast<std::ptrdiff_t>(i) + 1);
        out.push_back(std::move(candidate));
    }
    // Flip-polarity: re-bind every derived data value to the other phase.
    Skeleton flipped = s;
    flipped.init_polarity = 1 - flipped.init_polarity;
    out.push_back(std::move(flipped));
    return out;
}

}  // namespace mtg::synth
