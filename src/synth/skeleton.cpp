#include "synth/skeleton.hpp"

#include "util/contracts.hpp"

namespace mtg::synth {

std::string slot_op_name(SlotOp op) {
    switch (op) {
        case SlotOp::Read: return "r";
        case SlotOp::WriteFlip: return "w!";
        case SlotOp::WriteSame: return "w=";
        case SlotOp::Delay: return "del";
    }
    MTG_ASSERT(false);
    return "?";
}

bool Skeleton::starts_with_write() const {
    for (const Slot& slot : slots) {
        for (SlotOp op : slot.ops) {
            if (op == SlotOp::Delay) continue;
            return op == SlotOp::WriteFlip || op == SlotOp::WriteSame;
        }
    }
    return false;
}

int Skeleton::complexity() const {
    int ops = 0;
    for (const Slot& slot : slots)
        for (SlotOp op : slot.ops)
            if (op != SlotOp::Delay) ++ops;
    return ops;
}

march::MarchTest Skeleton::render() const {
    MTG_EXPECTS(init_polarity == 0 || init_polarity == 1);
    march::MarchTest test;
    int v = init_polarity;
    for (const Slot& slot : slots) {
        if (slot.ops.empty()) continue;
        std::vector<march::MarchOp> ops;
        ops.reserve(slot.ops.size());
        for (SlotOp op : slot.ops) {
            switch (op) {
                case SlotOp::Read:
                    ops.push_back(march::MarchOp::r(v));
                    break;
                case SlotOp::WriteFlip:
                    v = 1 - v;
                    ops.push_back(march::MarchOp::w(v));
                    break;
                case SlotOp::WriteSame:
                    ops.push_back(march::MarchOp::w(v));
                    break;
                case SlotOp::Delay:
                    ops.push_back(march::MarchOp::del());
                    break;
            }
        }
        test.push_back(march::MarchElement(slot.order, std::move(ops)));
    }
    return test;
}

std::string Skeleton::canonical_text() const {
    return render().str(march::Notation::Ascii);
}

const std::vector<std::vector<SlotOp>>& slot_templates(bool include_delay) {
    using enum SlotOp;
    static const std::vector<std::vector<SlotOp>> base{
        // Initialisers / re-initialisers.
        {WriteSame},                    // ~(w v)
        {WriteFlip},                    // ~(w !v)
        // Observation-only.
        {Read},                         // (r v)
        // The workhorse element shapes of the known library tests.
        {Read, WriteFlip},              // (r v, w !v)      MATS+/March C-
        {Read, WriteFlip, Read},        // (r v, w !v, r !v) MATS++/March B
        {Read, WriteFlip, WriteFlip},   // (r v, w !v, w v)  March Y/B flavour
        {Read, WriteFlip, Read, WriteFlip},  // PMOVI-style double transition
        {WriteFlip, Read},              // (w !v, r !v)
        {WriteFlip, WriteFlip},         // (w !v, w v)       WDF sensitisers
        {Read, Read},                   // (r v, r v)        DRDF/IRF probes
        {Read, WriteSame},              // (r v, w v)        non-transition w
        {WriteFlip, Read, WriteFlip, Read},  // March A/B inner shape
    };
    static const std::vector<std::vector<SlotOp>> with_delay = [] {
        std::vector<std::vector<SlotOp>> all = base;
        all.push_back({Delay});              // standalone retention pause
        all.push_back({Delay, Read});        // pause then verify
        all.push_back({Delay, Read, WriteFlip});
        all.push_back({WriteFlip, Delay, Read});  // sensitise, pause, verify
        return all;
    }();
    return include_delay ? with_delay : base;
}

}  // namespace mtg::synth
