#include "synth/scorer.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace mtg::synth {

std::size_t Score::kinds_full() const {
    MTG_EXPECTS(kind_covered.size() == kind_total.size());
    std::size_t full_kinds = 0;
    for (std::size_t k = 0; k < kind_covered.size(); ++k)
        if (kind_covered[k] == kind_total[k]) ++full_kinds;
    return full_kinds;
}

Scorer::Scorer(const engine::Engine& engine, ScorerConfig config)
    : engine_(engine),
      config_(std::move(config)),
      kinds_(engine::canonical_kinds(config_.kinds)) {
    MTG_EXPECTS(!kinds_.empty());
}

Score Scorer::probe(const Skeleton& candidate) {
    ++stats_.probes;
    const std::string key = candidate.canonical_text();
    if (config_.probe_cache_capacity > 0) {
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            ++stats_.cache_hits;
            return it->second;
        }
    }

    engine::Query query;
    query.test = candidate.render();
    query.universe = engine::BitUniverse{config_.opts};
    query.want = engine::Want::Detects;
    query.kinds = kinds_;
    query.prune = config_.prune;
    const engine::Result result = engine_.run(query);

    // Per-kind attribution through the cached population's fence posts —
    // the verdict vector is laid out in exactly this order.
    const auto entry = engine_.bit_population(kinds_, config_.opts.memory_size,
                                              config_.prune);
    MTG_ASSERT(result.detected.size() == entry->faults.size());
    MTG_ASSERT(entry->offsets.size() == kinds_.size() + 1);

    Score score;
    score.total = result.detected.size();
    score.kind_covered.assign(kinds_.size(), 0);
    score.kind_total.assign(kinds_.size(), 0);
    for (std::size_t k = 0; k + 1 < entry->offsets.size(); ++k) {
        score.kind_total[k] = entry->offsets[k + 1] - entry->offsets[k];
        for (std::size_t i = entry->offsets[k]; i < entry->offsets[k + 1]; ++i)
            if (result.detected[i]) ++score.kind_covered[k];
        score.covered += score.kind_covered[k];
    }

    if (config_.probe_cache_capacity > 0) {
        if (cache_order_.size() >= config_.probe_cache_capacity) {
            cache_.erase(cache_order_.front());
            cache_order_.pop_front();
        }
        cache_.emplace(key, score);
        cache_order_.push_back(key);
    }
    return score;
}

bool Scorer::accepts_full(const Skeleton& candidate) const {
    return accepts_full(candidate.render());
}

bool Scorer::accepts_full(const march::MarchTest& test) const {
    ++stats_.full_checks;
    engine::Query query;
    query.test = test;
    query.universe = engine::BitUniverse{config_.opts};
    query.want = engine::Want::DetectsAll;
    query.kinds = kinds_;
    query.prune = false;  // acceptance is always proved on the full universe
    return engine_.run(query).all;
}

}  // namespace mtg::synth
