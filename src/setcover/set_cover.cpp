#include "setcover/set_cover.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace mtg::setcover {

namespace {

/// Column bitmask view of the matrix: per row, the set of covered columns
/// packed into 64-bit blocks.
struct Packed {
    int rows{0};
    int cols{0};
    int blocks{0};
    std::vector<std::uint64_t> bits;  // rows * blocks

    explicit Packed(const BoolMatrix& m) {
        rows = static_cast<int>(m.size());
        cols = rows ? static_cast<int>(m[0].size()) : 0;
        blocks = (cols + 63) / 64;
        bits.assign(static_cast<std::size_t>(rows * blocks), 0);
        for (int r = 0; r < rows; ++r) {
            MTG_EXPECTS(static_cast<int>(m[static_cast<std::size_t>(r)].size()) == cols);
            for (int c = 0; c < cols; ++c)
                if (m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)])
                    bits[static_cast<std::size_t>(r * blocks + c / 64)] |=
                        1ULL << (c % 64);
        }
    }

    [[nodiscard]] const std::uint64_t* row(int r) const {
        return bits.data() + static_cast<std::size_t>(r * blocks);
    }
};

using Mask = std::vector<std::uint64_t>;

bool all_zero(const Mask& m) {
    for (auto b : m)
        if (b) return false;
    return true;
}

int popcount(const Mask& m) {
    int n = 0;
    for (auto b : m) n += __builtin_popcountll(b);
    return n;
}

/// Depth-first branch and bound.
class Solver {
public:
    explicit Solver(const Packed& p) : p_(p) {}

    std::optional<std::vector<int>> solve() {
        // Feasibility: every column covered by some row.
        Mask all(static_cast<std::size_t>(p_.blocks), 0);
        for (int c = 0; c < p_.cols; ++c)
            all[static_cast<std::size_t>(c / 64)] |= 1ULL << (c % 64);
        Mask reachable(static_cast<std::size_t>(p_.blocks), 0);
        for (int r = 0; r < p_.rows; ++r)
            for (int b = 0; b < p_.blocks; ++b)
                reachable[static_cast<std::size_t>(b)] |=
                    p_.row(r)[b];
        for (int b = 0; b < p_.blocks; ++b)
            if ((reachable[static_cast<std::size_t>(b)] &
                 all[static_cast<std::size_t>(b)]) !=
                all[static_cast<std::size_t>(b)])
                return std::nullopt;

        // Greedy incumbent.
        best_ = greedy(all);
        std::vector<int> chosen;
        dfs(all, chosen);
        return best_;
    }

private:
    const Packed& p_;
    std::optional<std::vector<int>> best_;

    std::optional<std::vector<int>> greedy(Mask uncovered) const {
        std::vector<int> picked;
        while (!all_zero(uncovered)) {
            int best_row = -1, best_gain = -1;
            for (int r = 0; r < p_.rows; ++r) {
                int gain = 0;
                for (int b = 0; b < p_.blocks; ++b)
                    gain += __builtin_popcountll(
                        p_.row(r)[b] & uncovered[static_cast<std::size_t>(b)]);
                if (gain > best_gain) {
                    best_gain = gain;
                    best_row = r;
                }
            }
            if (best_gain <= 0) return std::nullopt;
            picked.push_back(best_row);
            for (int b = 0; b < p_.blocks; ++b)
                uncovered[static_cast<std::size_t>(b)] &= ~p_.row(best_row)[b];
        }
        std::sort(picked.begin(), picked.end());
        return picked;
    }

    /// Lower bound: ceil(uncovered / max row coverage).
    int lower_bound(const Mask& uncovered) const {
        const int remaining = popcount(uncovered);
        if (remaining == 0) return 0;
        int best_row_cover = 0;
        for (int r = 0; r < p_.rows; ++r) {
            int cover = 0;
            for (int b = 0; b < p_.blocks; ++b)
                cover += __builtin_popcountll(
                    p_.row(r)[b] & uncovered[static_cast<std::size_t>(b)]);
            best_row_cover = std::max(best_row_cover, cover);
        }
        if (best_row_cover == 0) return p_.rows + 1;  // infeasible branch
        return (remaining + best_row_cover - 1) / best_row_cover;
    }

    void dfs(const Mask& uncovered, std::vector<int>& chosen) {
        if (all_zero(uncovered)) {
            if (!best_ || chosen.size() < best_->size()) {
                best_ = chosen;
                std::sort(best_->begin(), best_->end());
            }
            return;
        }
        if (best_ && static_cast<int>(chosen.size()) + lower_bound(uncovered) >=
                         static_cast<int>(best_->size()))
            return;

        // Branch on the uncovered column with the fewest covering rows.
        int branch_col = -1, fewest = p_.rows + 1;
        for (int c = 0; c < p_.cols; ++c) {
            if (!(uncovered[static_cast<std::size_t>(c / 64)] >> (c % 64) & 1ULL))
                continue;
            int covering = 0;
            for (int r = 0; r < p_.rows; ++r)
                if (p_.row(r)[c / 64] >> (c % 64) & 1ULL) ++covering;
            if (covering < fewest) {
                fewest = covering;
                branch_col = c;
            }
        }
        MTG_ASSERT(branch_col >= 0);

        for (int r = 0; r < p_.rows; ++r) {
            if (!(p_.row(r)[branch_col / 64] >> (branch_col % 64) & 1ULL))
                continue;
            Mask next = uncovered;
            for (int b = 0; b < p_.blocks; ++b)
                next[static_cast<std::size_t>(b)] &= ~p_.row(r)[b];
            chosen.push_back(r);
            dfs(next, chosen);
            chosen.pop_back();
        }
    }
};

}  // namespace

std::optional<std::vector<int>> minimum_cover(const BoolMatrix& covers) {
    if (covers.empty()) return std::vector<int>{};
    if (covers[0].empty()) return std::vector<int>{};
    Packed packed(covers);
    Solver solver(packed);
    return solver.solve();
}

std::optional<std::vector<int>> greedy_cover(const BoolMatrix& covers) {
    if (covers.empty()) return std::vector<int>{};
    if (covers[0].empty()) return std::vector<int>{};
    const int rows = static_cast<int>(covers.size());
    const int cols = static_cast<int>(covers[0].size());
    std::vector<bool> covered(static_cast<std::size_t>(cols), false);
    std::vector<int> picked;
    int remaining = cols;
    while (remaining > 0) {
        int best_row = -1, best_gain = 0;
        for (int r = 0; r < rows; ++r) {
            int gain = 0;
            for (int c = 0; c < cols; ++c)
                if (!covered[static_cast<std::size_t>(c)] &&
                    covers[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)])
                    ++gain;
            if (gain > best_gain) {
                best_gain = gain;
                best_row = r;
            }
        }
        if (best_row < 0) return std::nullopt;
        picked.push_back(best_row);
        for (int c = 0; c < cols; ++c)
            if (covers[static_cast<std::size_t>(best_row)][static_cast<std::size_t>(c)] &&
                !covered[static_cast<std::size_t>(c)]) {
                covered[static_cast<std::size_t>(c)] = true;
                --remaining;
            }
    }
    std::sort(picked.begin(), picked.end());
    return picked;
}

std::vector<int> individually_removable_rows(const BoolMatrix& covers) {
    std::vector<int> removable;
    if (covers.empty() || covers[0].empty()) return removable;
    const int rows = static_cast<int>(covers.size());
    const int cols = static_cast<int>(covers[0].size());
    for (int drop = 0; drop < rows; ++drop) {
        bool still_covered = true;
        for (int c = 0; c < cols && still_covered; ++c) {
            bool any = false;
            for (int r = 0; r < rows; ++r) {
                if (r == drop) continue;
                if (covers[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]) {
                    any = true;
                    break;
                }
            }
            // Columns covered only by `drop` forbid its removal; columns
            // covered by nobody (infeasible input) are ignored here.
            if (!any && covers[static_cast<std::size_t>(drop)][static_cast<std::size_t>(c)])
                still_covered = false;
        }
        if (still_covered) removable.push_back(drop);
    }
    return removable;
}

}  // namespace mtg::setcover
