#pragma once

/// \file coverage_matrix.hpp
/// The paper-§6 Coverage Matrix: rows are the elementary blocks of a March
/// test (each read observation point together with the operations that
/// sensitise it), columns are the target fault instances. Entry (r, c) is 1
/// when block r observes instance c with certainty (mismatch under every
/// ⇕-order expansion).

#include <string>
#include <vector>

#include "fault/instance.hpp"
#include "march/march_test.hpp"
#include "setcover/set_cover.hpp"
#include "sim/march_runner.hpp"

namespace mtg::setcover {

/// The coverage matrix plus labels.
struct CoverageMatrix {
    std::vector<sim::ReadSite> blocks;       ///< rows: one per read site
    std::vector<std::string> block_names;    ///< "E2.op0(r0)"
    std::vector<std::string> fault_names;    ///< columns
    BoolMatrix covers;                       ///< blocks × faults

    /// ASCII rendering (rows = blocks).
    [[nodiscard]] std::string str() const;
};

/// Verdict of the §6 analysis.
///
/// The paper's elementary block couples a fault excitation with its
/// observation. Reads that observe no fault themselves (e.g. the exciting
/// read of a deceptive read-disturb) are *support* operations belonging to
/// the following block; they are excluded from the covering computation and
/// reported separately.
struct RedundancyReport {
    bool complete{false};        ///< every column covered by some block
    bool non_redundant{false};   ///< min cover needs ALL observing blocks
    int min_cover_size{0};
    int block_count{0};          ///< observing blocks only
    std::vector<int> support_blocks;    ///< reads observing no fault
    std::vector<int> removable_blocks;  ///< individually droppable rows
};

/// Builds the coverage matrix for a March test against a fault list. Each
/// fault primitive contributes its role instances as columns; instances are
/// placed at representative cells of the simulated memory (the March
/// structure makes placements symmetric — validated separately by
/// sim::covers_everywhere).
[[nodiscard]] CoverageMatrix build_coverage_matrix(
    const march::MarchTest& test, const std::vector<fault::FaultKind>& kinds,
    const sim::RunOptions& opts = {});

/// Runs the set-covering analysis of the matrix.
[[nodiscard]] RedundancyReport analyse_redundancy(const CoverageMatrix& matrix);

/// Convenience: build + analyse.
[[nodiscard]] RedundancyReport analyse_redundancy(
    const march::MarchTest& test, const std::vector<fault::FaultKind>& kinds,
    const sim::RunOptions& opts = {});

}  // namespace mtg::setcover
