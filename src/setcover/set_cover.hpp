#pragma once

/// \file set_cover.hpp
/// Set-covering solvers used for the paper-§6 non-redundancy analysis: the
/// March test is non-redundant iff the minimum number of coverage-matrix
/// rows needed to cover all columns equals the total number of rows.

#include <optional>
#include <vector>

namespace mtg::setcover {

/// A 0/1 covering matrix: entry (r, c) true when row r covers column c.
using BoolMatrix = std::vector<std::vector<bool>>;

/// Exact minimum set cover by branch and bound (branching on the hardest
/// uncovered column, greedy upper bound, simple lower bound pruning).
/// Returns the chosen row indices, or nullopt when some column is covered
/// by no row (infeasible). Intended for the moderate sizes of coverage
/// matrices (tens of rows/columns).
[[nodiscard]] std::optional<std::vector<int>> minimum_cover(
    const BoolMatrix& covers);

/// Classical greedy heuristic (pick the row covering the most uncovered
/// columns). Returns nullopt when infeasible.
[[nodiscard]] std::optional<std::vector<int>> greedy_cover(
    const BoolMatrix& covers);

/// Rows that can each be dropped individually while the remaining rows
/// still cover everything (empty for a non-redundant matrix). Infeasible
/// matrices yield an empty list.
[[nodiscard]] std::vector<int> individually_removable_rows(
    const BoolMatrix& covers);

}  // namespace mtg::setcover
