#include "setcover/coverage_matrix.hpp"

#include <algorithm>
#include <sstream>

#include "engine/engine.hpp"
#include "util/contracts.hpp"

namespace mtg::setcover {

using fault::FaultInstance;
using fault::FaultKind;
using march::MarchTest;
using sim::InjectedFault;
using sim::ReadSite;

std::string CoverageMatrix::str() const {
    std::ostringstream os;
    os << "block";
    for (const auto& f : fault_names) os << '\t' << f;
    os << '\n';
    for (std::size_t r = 0; r < blocks.size(); ++r) {
        os << block_names[r];
        for (std::size_t c = 0; c < fault_names.size(); ++c)
            os << '\t' << (covers[r][c] ? '1' : '0');
        os << '\n';
    }
    return os.str();
}

CoverageMatrix build_coverage_matrix(const MarchTest& test,
                                     const std::vector<FaultKind>& kinds,
                                     const sim::RunOptions& opts) {
    CoverageMatrix matrix;
    matrix.blocks = sim::read_sites(test);
    for (const ReadSite& site : matrix.blocks) {
        std::ostringstream name;
        name << 'E' << site.element << ".op" << site.op << '('
             << test[static_cast<std::size_t>(site.element)]
                    .ops[static_cast<std::size_t>(site.op)]
                    .str()
             << ')';
        matrix.block_names.push_back(name.str());
    }

    // One engine dictionary sweep: canonically placed instances plus
    // their guaranteed traces, aligned.
    const engine::Result sweep =
        engine::Engine::global().dictionary_sweep(test, kinds, opts);
    const std::vector<FaultInstance>& instances = sweep.instances;
    const std::vector<sim::RunTrace>& traces = sweep.traces;
    matrix.covers.assign(matrix.blocks.size(),
                         std::vector<bool>(instances.size(), false));
    for (const FaultInstance& inst : instances)
        matrix.fault_names.push_back(inst.name());
    for (std::size_t c = 0; c < instances.size(); ++c) {
        const auto& failing = traces[c].failing_reads;
        for (std::size_t r = 0; r < matrix.blocks.size(); ++r) {
            if (std::find(failing.begin(), failing.end(), matrix.blocks[r]) !=
                failing.end())
                matrix.covers[r][c] = true;
        }
    }
    return matrix;
}

RedundancyReport analyse_redundancy(const CoverageMatrix& matrix) {
    RedundancyReport report;

    // Partition reads into observing blocks (cover >= 1 column) and
    // support operations (cover none — excitations of the next block).
    BoolMatrix observing;
    std::vector<int> original_index;
    for (std::size_t r = 0; r < matrix.covers.size(); ++r) {
        const bool observes =
            std::any_of(matrix.covers[r].begin(), matrix.covers[r].end(),
                        [](bool b) { return b; });
        if (observes) {
            observing.push_back(matrix.covers[r]);
            original_index.push_back(static_cast<int>(r));
        } else {
            report.support_blocks.push_back(static_cast<int>(r));
        }
    }

    report.block_count = static_cast<int>(observing.size());
    const auto cover = minimum_cover(observing);
    report.complete = cover.has_value() && !observing.empty();
    if (matrix.fault_names.empty()) report.complete = true;
    if (cover) {
        report.min_cover_size = static_cast<int>(cover->size());
        report.non_redundant = report.min_cover_size == report.block_count;
    }
    for (int row : individually_removable_rows(observing))
        report.removable_blocks.push_back(
            original_index[static_cast<std::size_t>(row)]);
    return report;
}

RedundancyReport analyse_redundancy(const MarchTest& test,
                                    const std::vector<FaultKind>& kinds,
                                    const sim::RunOptions& opts) {
    return analyse_redundancy(build_coverage_matrix(test, kinds, opts));
}

}  // namespace mtg::setcover
