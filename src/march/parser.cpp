#include "march/parser.hpp"

#include <cctype>

namespace mtg::march {

namespace {

/// Simple cursor over the input text.
class Cursor {
public:
    explicit Cursor(std::string_view text) : text_(text) {}

    [[nodiscard]] bool done() const { return pos_ >= text_.size(); }
    [[nodiscard]] std::size_t pos() const { return pos_; }

    [[nodiscard]] char peek() const { return done() ? '\0' : text_[pos_]; }

    char take() {
        char c = peek();
        if (!done()) ++pos_;
        return c;
    }

    void skip_ws() {
        while (!done() && (std::isspace(static_cast<unsigned char>(peek())) != 0))
            ++pos_;
    }

    /// Consumes `s` if it is next; returns whether it was consumed.
    bool try_consume(std::string_view s) {
        if (text_.substr(pos_, s.size()) == s) {
            pos_ += s.size();
            return true;
        }
        return false;
    }

private:
    std::string_view text_;
    std::size_t pos_ = 0;
};

/// Parses an address-order marker. Unicode arrows arrive as multi-byte
/// UTF-8 sequences, so they are matched as strings.
AddressOrder parse_order(Cursor& cur) {
    if (cur.try_consume("⇑")) return AddressOrder::Ascending;
    if (cur.try_consume("⇓")) return AddressOrder::Descending;
    if (cur.try_consume("⇕")) return AddressOrder::Any;
    char c = cur.peek();
    switch (c) {
        case '^': cur.take(); return AddressOrder::Ascending;
        case 'v':
        case 'V': cur.take(); return AddressOrder::Descending;
        case '~': cur.take(); return AddressOrder::Any;
        default:
            throw ParseError("expected address order marker (^, v, ~)", cur.pos());
    }
}

MarchOp parse_op(Cursor& cur) {
    cur.skip_ws();
    if (cur.try_consume("del") || cur.try_consume("Del") || cur.try_consume("DEL"))
        return MarchOp::del();
    char k = cur.take();
    if (k != 'r' && k != 'w' && k != 'R' && k != 'W')
        throw ParseError("expected operation (r0, r1, w0, w1, del)", cur.pos() - 1);
    char d = cur.take();
    if (d != '0' && d != '1')
        throw ParseError("expected operation value 0 or 1", cur.pos() - 1);
    int value = d - '0';
    return (k == 'r' || k == 'R') ? MarchOp::r(value) : MarchOp::w(value);
}

MarchElement parse_element(Cursor& cur) {
    AddressOrder order = parse_order(cur);
    cur.skip_ws();
    if (cur.take() != '(')
        throw ParseError("expected '(' after address order", cur.pos() - 1);
    std::vector<MarchOp> ops;
    cur.skip_ws();
    if (cur.peek() == ')')
        throw ParseError("empty March element", cur.pos());
    while (true) {
        ops.push_back(parse_op(cur));
        cur.skip_ws();
        char c = cur.take();
        if (c == ')') break;
        if (c != ',')
            throw ParseError("expected ',' or ')' in element", cur.pos() - 1);
    }
    return MarchElement(order, std::move(ops));
}

}  // namespace

MarchTest parse_march(std::string_view text) {
    Cursor cur(text);
    cur.skip_ws();
    bool braced = cur.try_consume("{");
    std::vector<MarchElement> elements;
    while (true) {
        cur.skip_ws();
        if (cur.done()) break;
        if (cur.peek() == '}') {
            cur.take();
            break;
        }
        if (cur.peek() == ';') {
            cur.take();
            continue;
        }
        elements.push_back(parse_element(cur));
    }
    cur.skip_ws();
    if (braced && !cur.done())
        throw ParseError("trailing characters after '}'", cur.pos());
    if (elements.empty()) throw ParseError("empty March test", cur.pos());
    return MarchTest(std::move(elements));
}

bool is_valid_march_syntax(std::string_view text) {
    try {
        (void)parse_march(text);
        return true;
    } catch (const ParseError&) {
        return false;
    }
}

}  // namespace mtg::march
