#include "march/library.hpp"

#include <stdexcept>

#include "march/parser.hpp"

namespace mtg::march {

MarchTest scan() { return parse_march("{~(w0); ~(r0); ~(w1); ~(r1)}"); }

MarchTest mats() { return parse_march("{~(w0); ~(r0,w1); ~(r1)}"); }

MarchTest mats_plus() { return parse_march("{~(w0); ^(r0,w1); v(r1,w0)}"); }

MarchTest mats_plus_plus() {
    return parse_march("{~(w0); ^(r0,w1); v(r1,w0,r0)}");
}

MarchTest march_x() {
    return parse_march("{~(w0); ^(r0,w1); v(r1,w0); ~(r0)}");
}

MarchTest march_y() {
    return parse_march("{~(w0); ^(r0,w1,r1); v(r1,w0,r0); ~(r0)}");
}

MarchTest march_c_minus() {
    return parse_march(
        "{~(w0); ^(r0,w1); ^(r1,w0); v(r0,w1); v(r1,w0); ~(r0)}");
}

MarchTest march_c() {
    return parse_march(
        "{~(w0); ^(r0,w1); ^(r1,w0); ~(r0); v(r0,w1); v(r1,w0); ~(r0)}");
}

MarchTest march_a() {
    return parse_march(
        "{~(w0); ^(r0,w1,w0,w1); ^(r1,w0,w1); v(r1,w0,w1,w0); v(r0,w1,w0)}");
}

MarchTest march_b() {
    return parse_march(
        "{~(w0); ^(r0,w1,r1,w0,r0,w1); ^(r1,w0,w1); v(r1,w0,w1,w0); "
        "v(r0,w1,w0)}");
}

MarchTest march_u() {
    return parse_march(
        "{~(w0); ^(r0,w1,r1,w0); ^(r0,w1); v(r1,w0,r0,w1); v(r1,w0)}");
}

MarchTest march_lr() {
    return parse_march(
        "{~(w0); v(r0,w1); ^(r1,w0,r0,w1); ^(r1,w0); ^(r0,w1,r1,w0); ^(r0)}");
}

MarchTest march_sr() {
    return parse_march(
        "{v(w0); ^(r0,w1,r1,w0); ^(r0,r0); ^(w1); v(r1,w0,r0,w1); v(r1,r1)}");
}

MarchTest march_ss() {
    return parse_march(
        "{~(w0); ^(r0,r0,w0,r0,w1); ^(r1,r1,w1,r1,w0); v(r0,r0,w0,r0,w1); "
        "v(r1,r1,w1,r1,w0); ~(r0)}");
}

MarchTest pmovi() {
    return parse_march(
        "{v(w0); ^(r0,w1,r1); ^(r1,w0,r0); v(r0,w1,r1); v(r1,w0,r0)}");
}

MarchTest mats_plus_retention() {
    return parse_march("{~(w0); ^(r0,w1); ~(del); v(r1,w0); ~(del); ~(r0)}");
}

const std::vector<NamedMarchTest>& known_march_tests() {
    static const std::vector<NamedMarchTest> tests = {
        {"SCAN", scan(), "SAF"},
        {"MATS", mats(), "SAF"},
        {"MATS+", mats_plus(), "SAF, AF"},
        {"MATS++", mats_plus_plus(), "SAF, TF, AF"},
        {"March X", march_x(), "SAF, TF, AF, CFin"},
        {"March Y", march_y(), "SAF, TF, AF, CFin, linked TF"},
        {"March C-", march_c_minus(), "SAF, TF, AF, CFin, CFid, CFst"},
        {"March C", march_c(), "SAF, TF, AF, CFin, CFid, CFst (redundant)"},
        {"March A", march_a(), "SAF, TF, AF, CFin, linked CFid"},
        {"March B", march_b(), "SAF, TF, AF, CFin, linked CFid, linked TF"},
        {"March U", march_u(), "SAF, TF, AF, unlinked CFs"},
        {"March LR", march_lr(), "SAF, TF, AF, linked realistic faults"},
        {"March SR", march_sr(), "simple static faults incl. read disturbs"},
        {"March SS", march_ss(), "all simple static single/two-cell faults"},
        {"PMOVI", pmovi(), "SAF, TF, AF, CFs; diagnosis-friendly"},
        {"MATS+Del", mats_plus_retention(), "SAF, AF, DRF"},
    };
    return tests;
}

const NamedMarchTest& find_march_test(const std::string& name) {
    for (const auto& t : known_march_tests())
        if (t.name == name) return t;
    throw std::invalid_argument("unknown March test: " + name);
}

}  // namespace mtg::march
