#pragma once

/// \file march_test.hpp
/// Intermediate representation of March tests.
///
/// A March test is a sequence of March elements; each element is a sequence
/// of read/write operations applied to every memory cell in a given address
/// order (ascending, descending, or either) before moving to the next cell
/// [van de Goor 1991, paper §1]. The complexity of a March test is the total
/// number of memory operations applied per cell.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace mtg::march {

/// Kind of a single March operation.
enum class OpKind : std::uint8_t {
    Read,   ///< read the cell and verify the value ("read-and-verify" r_d)
    Write,  ///< write a value
    Wait,   ///< wait/delay (the paper's `T` input, for data-retention faults)
};

/// One operation of a March element.
struct MarchOp {
    OpKind kind{OpKind::Read};
    std::uint8_t value{0};  ///< expected value for Read, written value for Write

    /// Read-and-verify of value `d` (0 or 1).
    static constexpr MarchOp r(int d) {
        return MarchOp{OpKind::Read, static_cast<std::uint8_t>(d != 0)};
    }
    /// Write of value `d` (0 or 1).
    static constexpr MarchOp w(int d) {
        return MarchOp{OpKind::Write, static_cast<std::uint8_t>(d != 0)};
    }
    /// Wait for the data-retention delay.
    static constexpr MarchOp del() { return MarchOp{OpKind::Wait, 0}; }

    /// A Wait carries no data value: every simulator ignores `value` for
    /// Wait ops and "del" prints without one, so comparison must too —
    /// otherwise a hand-built `{Wait, 1}` breaks the parse(render(t)) == t
    /// round trip that the synthesis probe cache keys on.
    friend constexpr bool operator==(const MarchOp& a, const MarchOp& b) {
        if (a.kind != b.kind) return false;
        return a.kind == OpKind::Wait || a.value == b.value;
    }

    /// "r0", "w1", "del".
    [[nodiscard]] std::string str() const;
};

/// Address order of a March element.
enum class AddressOrder : std::uint8_t {
    Ascending,   ///< ⇑ : cells visited from address 0 upward
    Descending,  ///< ⇓ : cells visited from the top address downward
    Any,         ///< ⇕ : either order may be used by the implementation
};

/// Returns the opposite concrete order (Ascending <-> Descending).
constexpr AddressOrder opposite(AddressOrder o) {
    MTG_EXPECTS(o != AddressOrder::Any);
    return o == AddressOrder::Ascending ? AddressOrder::Descending
                                        : AddressOrder::Ascending;
}

/// Printing style for March tests.
enum class Notation : std::uint8_t {
    Ascii,    ///< ^ (asc), v (desc), ~ (any)
    Unicode,  ///< ⇑, ⇓, ⇕
};

/// One March element: an address order plus the per-cell operation sequence.
struct MarchElement {
    AddressOrder order{AddressOrder::Any};
    std::vector<MarchOp> ops;

    MarchElement() = default;
    MarchElement(AddressOrder o, std::vector<MarchOp> operations)
        : order(o), ops(std::move(operations)) {
        MTG_EXPECTS(!ops.empty());
    }
    MarchElement(AddressOrder o, std::initializer_list<MarchOp> operations)
        : MarchElement(o, std::vector<MarchOp>(operations)) {}

    friend bool operator==(const MarchElement&, const MarchElement&) = default;

    /// e.g. "^(r0,w1)".
    [[nodiscard]] std::string str(Notation n = Notation::Ascii) const;

    /// Number of memory operations (Wait excluded, as in the paper's
    /// complexity metric which counts memory operations).
    [[nodiscard]] int op_count() const;
};

/// A complete March test.
class MarchTest {
public:
    MarchTest() = default;
    explicit MarchTest(std::vector<MarchElement> elements)
        : elements_(std::move(elements)) {}
    MarchTest(std::initializer_list<MarchElement> elements)
        : elements_(elements) {}

    [[nodiscard]] const std::vector<MarchElement>& elements() const {
        return elements_;
    }
    [[nodiscard]] bool empty() const { return elements_.empty(); }
    [[nodiscard]] std::size_t size() const { return elements_.size(); }
    [[nodiscard]] const MarchElement& operator[](std::size_t i) const {
        MTG_EXPECTS(i < elements_.size());
        return elements_[i];
    }

    void push_back(MarchElement e) { elements_.push_back(std::move(e)); }

    /// Complexity = total number of memory operations per cell. A test of
    /// complexity k is conventionally written "kn". Wait operations are not
    /// counted (they are delays, not memory operations).
    [[nodiscard]] int complexity() const;

    /// Total number of read operations (observation points).
    [[nodiscard]] int read_count() const;

    /// True if the test contains at least one Wait (needed for DRF).
    [[nodiscard]] bool has_wait() const;

    /// e.g. "{~(w0); ^(r0,w1); v(r1,w0)}".
    [[nodiscard]] std::string str(Notation n = Notation::Ascii) const;

    friend bool operator==(const MarchTest&, const MarchTest&) = default;

private:
    std::vector<MarchElement> elements_;
};

}  // namespace mtg::march
