#pragma once

/// \file expansion.hpp
/// The ⇕ (either-order) expansion scheme shared by the bit and word
/// simulation stacks.
///
/// A March test only *guarantees* detection when every combination of ⇕
/// order choices detects the fault, so the runners enumerate concrete
/// resolutions: all 2^k choices when the test has k <= cap ⇕ elements,
/// otherwise only the two uniform (all-ascending, all-descending) sweeps.
/// Bit j of a choice resolves the j-th ⇕ element (set = descending).
///
/// Both sim::expansion_choices and word::expansion_choices are thin
/// wrappers over this helper, so the two stacks can never drift apart on
/// the capped-expansion semantics.

#include <vector>

#include "march/march_test.hpp"

namespace mtg::march {

/// Number of ⇕ elements of a test.
[[nodiscard]] int any_order_count(const MarchTest& test);

/// The concrete ⇕ resolutions described above.
[[nodiscard]] std::vector<unsigned> expansion_choices(const MarchTest& test,
                                                      int max_any_expansion);

}  // namespace mtg::march
