#include "march/expansion.hpp"

namespace mtg::march {

int any_order_count(const MarchTest& test) {
    int k = 0;
    for (const auto& e : test.elements())
        if (e.order == AddressOrder::Any) ++k;
    return k;
}

std::vector<unsigned> expansion_choices(const MarchTest& test,
                                        int max_any_expansion) {
    const int k = any_order_count(test);
    if (k <= max_any_expansion) {
        std::vector<unsigned> all;
        all.reserve(std::size_t{1} << k);
        for (unsigned c = 0; c < (1u << k); ++c) all.push_back(c);
        return all;
    }
    return {0u, ~0u};
}

}  // namespace mtg::march
