#pragma once

/// \file parser.hpp
/// Text parser for March tests in the conventional notation, e.g.
///
///     {~(w0); ^(r0,w1); v(r1,w0,r0)}
///
/// Accepted order markers: `^` / `⇑` ascending, `v` / `⇓` descending,
/// `~` / `⇕` either. Operations: `r0`, `r1`, `w0`, `w1`, `del` (wait).
/// Braces and semicolons are optional separators; whitespace is ignored.

#include <stdexcept>
#include <string>
#include <string_view>

#include "march/march_test.hpp"

namespace mtg::march {

/// Thrown on malformed March test text.
class ParseError : public std::runtime_error {
public:
    ParseError(const std::string& message, std::size_t position)
        : std::runtime_error(message + " (at offset " + std::to_string(position) + ")"),
          position_(position) {}

    [[nodiscard]] std::size_t position() const { return position_; }

private:
    std::size_t position_;
};

/// Parses a March test from text. Throws ParseError on malformed input.
[[nodiscard]] MarchTest parse_march(std::string_view text);

/// Round-trip helper: true when `text` parses and re-prints to an
/// equivalent test.
[[nodiscard]] bool is_valid_march_syntax(std::string_view text);

}  // namespace mtg::march
