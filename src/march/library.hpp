#pragma once

/// \file library.hpp
/// Library of March tests from the literature [van de Goor 1991, 1993].
/// These are the "Equivalent Known March Test" baselines of the paper's
/// Table 3, plus further classical tests used by the examples and the
/// validation suite.

#include <string>
#include <vector>

#include "march/march_test.hpp"

namespace mtg::march {

/// A known March test with provenance metadata.
struct NamedMarchTest {
    std::string name;         ///< conventional name, e.g. "MATS+"
    MarchTest test;           ///< the element sequence
    std::string coverage;     ///< documented fault coverage, informational
};

/// SCAN (4n): {~(w0); ~(r0); ~(w1); ~(r1)} — SAF only.
[[nodiscard]] MarchTest scan();

/// MATS (4n): {~(w0); ~(r0,w1); ~(r1)} — SAF (and some AF in OR-type
/// technologies).
[[nodiscard]] MarchTest mats();

/// MATS+ (5n): {~(w0); ^(r0,w1); v(r1,w0)} — SAF, AF.
[[nodiscard]] MarchTest mats_plus();

/// MATS++ (6n): {~(w0); ^(r0,w1); v(r1,w0,r0)} — SAF, TF, AF.
[[nodiscard]] MarchTest mats_plus_plus();

/// March X (6n): {~(w0); ^(r0,w1); v(r1,w0); ~(r0)} — SAF, TF, AF, CFin.
[[nodiscard]] MarchTest march_x();

/// March Y (8n): {~(w0); ^(r0,w1,r1); v(r1,w0,r0); ~(r0)} — March X plus
/// linked TF.
[[nodiscard]] MarchTest march_y();

/// March C- (10n): {~(w0); ^(r0,w1); ^(r1,w0); v(r0,w1); v(r1,w0); ~(r0)} —
/// SAF, TF, AF, CFin, CFid, CFst.
[[nodiscard]] MarchTest march_c_minus();

/// March C (11n): the original Marinescu test; March C- plus a redundant
/// ~(r0) element. Kept as a deliberately *redundant* specimen for the
/// set-covering analysis.
[[nodiscard]] MarchTest march_c();

/// March A (15n): {~(w0); ^(r0,w1,w0,w1); ^(r1,w0,w1); v(r1,w0,w1,w0);
/// v(r0,w1,w0)} — SAF, TF, AF, CFin, linked CFid.
[[nodiscard]] MarchTest march_a();

/// March B (17n): {~(w0); ^(r0,w1,r1,w0,r0,w1); ^(r1,w0,w1);
/// v(r1,w0,w1,w0); v(r0,w1,w0)} — March A plus linked TF.
[[nodiscard]] MarchTest march_b();

/// March U (13n): {~(w0); ^(r0,w1,r1,w0); ^(r0,w1); v(r1,w0,r0,w1);
/// v(r1,w0)} — SAF, TF, AF, unlinked CFs.
[[nodiscard]] MarchTest march_u();

/// March LR (14n): {~(w0); v(r0,w1); ^(r1,w0,r0,w1); ^(r1,w0);
/// ^(r0,w1,r1,w0); ^(r0)} — realistic linked faults.
[[nodiscard]] MarchTest march_lr();

/// March SR (14n): {v(w0); ^(r0,w1,r1,w0); ^(r0,r0); ^(w1);
/// v(r1,w0,r0,w1); v(r1,r1)} — simple static faults incl. read disturbs.
[[nodiscard]] MarchTest march_sr();

/// March SS (22n): {~(w0); ^(r0,r0,w0,r0,w1); ^(r1,r1,w1,r1,w0);
/// v(r0,r0,w0,r0,w1); v(r1,r1,w1,r1,w0); ~(r0)} — all simple static faults.
[[nodiscard]] MarchTest march_ss();

/// PMOVI (13n): {v(w0); ^(r0,w1,r1); ^(r1,w0,r0); v(r0,w1,r1);
/// v(r1,w0,r0)} — diagnosis-friendly variant of March C.
[[nodiscard]] MarchTest pmovi();

/// MATS+ with retention delays and a trailing read (6n + 2 del): the
/// delay/read pairs exercise DRF in both data states.
[[nodiscard]] MarchTest mats_plus_retention();

/// All known tests, in complexity order. The registry the examples and
/// benches iterate over.
[[nodiscard]] const std::vector<NamedMarchTest>& known_march_tests();

/// Looks up a known test by (case-sensitive) name; throws
/// std::invalid_argument if absent.
[[nodiscard]] const NamedMarchTest& find_march_test(const std::string& name);

}  // namespace mtg::march
