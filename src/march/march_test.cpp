#include "march/march_test.hpp"

#include <sstream>

namespace mtg::march {

std::string MarchOp::str() const {
    switch (kind) {
        case OpKind::Read: return value ? "r1" : "r0";
        case OpKind::Write: return value ? "w1" : "w0";
        case OpKind::Wait: return "del";
    }
    return "?";
}

namespace {

std::string order_str(AddressOrder o, Notation n) {
    if (n == Notation::Unicode) {
        switch (o) {
            case AddressOrder::Ascending: return "⇑";   // ⇑
            case AddressOrder::Descending: return "⇓";  // ⇓
            case AddressOrder::Any: return "⇕";         // ⇕
        }
    }
    switch (o) {
        case AddressOrder::Ascending: return "^";
        case AddressOrder::Descending: return "v";
        case AddressOrder::Any: return "~";
    }
    return "?";
}

}  // namespace

std::string MarchElement::str(Notation n) const {
    std::ostringstream os;
    os << order_str(order, n) << '(';
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (i) os << ',';
        os << ops[i].str();
    }
    os << ')';
    return os.str();
}

int MarchElement::op_count() const {
    int count = 0;
    for (const auto& op : ops)
        if (op.kind != OpKind::Wait) ++count;
    return count;
}

int MarchTest::complexity() const {
    int total = 0;
    for (const auto& e : elements_) total += e.op_count();
    return total;
}

int MarchTest::read_count() const {
    int total = 0;
    for (const auto& e : elements_)
        for (const auto& op : e.ops)
            if (op.kind == OpKind::Read) ++total;
    return total;
}

bool MarchTest::has_wait() const {
    for (const auto& e : elements_)
        for (const auto& op : e.ops)
            if (op.kind == OpKind::Wait) return true;
    return false;
}

std::string MarchTest::str(Notation n) const {
    std::ostringstream os;
    os << '{';
    for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i) os << "; ";
        os << elements_[i].str(n);
    }
    os << '}';
    return os.str();
}

}  // namespace mtg::march
