#include "atsp/instance.hpp"

#include <algorithm>

namespace mtg::atsp {

CostMatrix::CostMatrix(int n, Cost fill)
    : n_(n), cost_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), fill) {
    MTG_EXPECTS(n > 0);
    for (int v = 0; v < n; ++v) forbid(v, v);
}

Cost tour_cost(const CostMatrix& costs, const std::vector<int>& order) {
    MTG_EXPECTS(!order.empty());
    Cost total = 0;
    for (std::size_t k = 0; k < order.size(); ++k) {
        const int from = order[k];
        const int to = order[(k + 1) % order.size()];
        total += costs.at(from, to);
    }
    return total;
}

bool tour_feasible(const CostMatrix& costs, const std::vector<int>& order) {
    if (static_cast<int>(order.size()) != costs.size()) return false;
    std::vector<bool> seen(order.size(), false);
    for (int v : order) {
        if (v < 0 || v >= costs.size() || seen[static_cast<std::size_t>(v)])
            return false;
        seen[static_cast<std::size_t>(v)] = true;
    }
    for (std::size_t k = 0; k < order.size(); ++k) {
        if (costs.is_forbidden(order[k], order[(k + 1) % order.size()]))
            return false;
    }
    return true;
}

std::vector<int> rotate_to_front(std::vector<int> order, int front) {
    auto it = std::find(order.begin(), order.end(), front);
    MTG_EXPECTS(it != order.end());
    std::rotate(order.begin(), it, order.end());
    return order;
}

}  // namespace mtg::atsp
