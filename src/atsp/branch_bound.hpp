#pragma once

/// \file branch_bound.hpp
/// Exact ATSP solver: assignment-problem relaxation + subtour-elimination
/// branching (the Bellmore–Malone scheme as refined by Carpaneto,
/// Dell'Amico and Toth — the ACM TOMS 750 algorithm the paper calls out).
///
/// At each node the AP relaxation is solved; a single-cycle assignment is a
/// candidate tour, otherwise the smallest subtour is broken by branching on
/// its arcs (child k forbids arc k and forces arcs 1..k-1). A heuristic
/// incumbent provides the initial upper bound.

#include <optional>

#include "atsp/instance.hpp"

namespace mtg::atsp {

/// Solver statistics for the benchmark ablations.
struct SolveStats {
    long long nodes_explored{0};  ///< branch-and-bound nodes
    long long ap_solves{0};       ///< assignment relaxations solved
};

/// Exact minimum tour, or nullopt when no feasible tour exists.
/// `stats`, when non-null, receives search statistics.
[[nodiscard]] std::optional<Tour> solve_exact(const CostMatrix& costs,
                                              SolveStats* stats = nullptr);

/// Reference solver: full permutation enumeration. Only for n <= 11; the
/// testing oracle for solve_exact.
[[nodiscard]] std::optional<Tour> solve_brute_force(const CostMatrix& costs);

}  // namespace mtg::atsp
