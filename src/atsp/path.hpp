#pragma once

/// \file path.hpp
/// Shortest Hamiltonian *path* on an asymmetric instance — the form the
/// GTS search actually needs (paper §4: "the solution of the ATSP is a
/// cycle whereas a GTS is identified by a non-cyclic path"). The paper
/// closes the cycle with dummy nodes; we use the standard single dummy
/// node: entering it is free, leaving it costs the per-node start cost
/// (the cold-start initialisation writes of the first TP).

#include <optional>
#include <vector>

#include "atsp/branch_bound.hpp"
#include "atsp/instance.hpp"

namespace mtg::atsp {

/// A Hamiltonian path and its cost (start costs included).
struct Path {
    std::vector<int> order;
    Cost cost{0};
};

/// Options for the path search.
struct PathOptions {
    /// start_cost[v] = cost of beginning the path at node v. Empty means 0
    /// for every node.
    std::vector<Cost> start_cost;
    /// When non-empty, only these nodes may start the path (the paper's
    /// f.4.4 constraint restricting the first TP's initialisation state).
    std::vector<int> allowed_starts;
};

/// Exact minimum Hamiltonian path via the dummy-node reduction and the
/// exact branch-and-bound. Returns nullopt when infeasible (e.g. the
/// allowed-start set is empty or unreachable).
[[nodiscard]] std::optional<Path> solve_shortest_path(
    const CostMatrix& costs, const PathOptions& options = {},
    SolveStats* stats = nullptr);

}  // namespace mtg::atsp
