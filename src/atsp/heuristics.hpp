#pragma once

/// \file heuristics.hpp
/// ATSP construction and improvement heuristics. Used to seed the exact
/// branch-and-bound with an incumbent upper bound (and benchmarked on their
/// own as an ablation against the exact solver).

#include <optional>

#include "atsp/instance.hpp"

namespace mtg::atsp {

/// Nearest-neighbour tour from a given start node. Returns nullopt when it
/// runs into a dead end of forbidden arcs.
[[nodiscard]] std::optional<Tour> nearest_neighbour(const CostMatrix& costs,
                                                    int start);

/// Best nearest-neighbour tour over all start nodes.
[[nodiscard]] std::optional<Tour> best_nearest_neighbour(const CostMatrix& costs);

/// Or-opt improvement: repeatedly relocates segments of 1..3 consecutive
/// nodes to better positions (direction-preserving, hence valid for
/// asymmetric instances). Runs to a local optimum.
[[nodiscard]] Tour or_opt(const CostMatrix& costs, Tour tour);

/// Construction + improvement; the standard incumbent used by the exact
/// solver. Returns nullopt when no feasible tour could be constructed
/// (the exact solver then starts without an upper bound).
[[nodiscard]] std::optional<Tour> heuristic_tour(const CostMatrix& costs);

}  // namespace mtg::atsp
